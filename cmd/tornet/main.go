// Command tornet deploys the paper's §3.2 Tor network in a chosen SGX
// phase, runs an anonymous fetch through a three-hop circuit, and
// (optionally) demonstrates the attacks the SGX deployments exclude.
//
// Usage:
//
//	tornet -mode baseline -attack exit-tamper
//	tornet -mode sgx-ors  -attack exit-tamper   # admission rejects it
//	tornet -mode sgx-full
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"sgxnet/internal/tor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tornet: ")
	modeFlag := flag.String("mode", "baseline", "deployment: baseline | sgx-dir | sgx-ors | sgx-full")
	attack := flag.String("attack", "", "simulate an attack: exit-tamper | snoop | dir-subvert")
	relays := flag.Int("relays", 3, "non-exit onion routers")
	exits := flag.Int("exits", 2, "exit onion routers")
	auths := flag.Int("authorities", 3, "directory authorities")
	flag.Parse()

	var mode tor.DeployMode
	switch *modeFlag {
	case "baseline":
		mode = tor.ModeBaseline
	case "sgx-dir":
		mode = tor.ModeSGXDirectory
	case "sgx-ors":
		mode = tor.ModeSGXORs
	case "sgx-full":
		mode = tor.ModeSGXFull
	default:
		log.Fatalf("unknown mode %q", *modeFlag)
	}
	cfg := tor.NetworkConfig{Mode: mode, Authorities: *auths, Relays: *relays, Exits: *exits, Seed: 1}
	if mode == tor.ModeSGXFull {
		cfg.Authorities = 0
	}
	tn, err := tor.Deploy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %v: %d ORs", mode, len(tn.ORs))
	if mode == tor.ModeSGXFull {
		fmt.Printf(", DHT membership (%d-node Chord ring, no directory authorities)\n", tn.Ring.Size())
	} else {
		fmt.Printf(", %d directory authorities\n", len(tn.Auths))
	}

	switch *attack {
	case "exit-tamper":
		runExitTamper(tn, mode)
		return
	case "snoop":
		runSnoop(tn, mode)
		return
	case "dir-subvert":
		runDirSubvert(tn, mode)
		return
	case "":
	default:
		log.Fatalf("unknown attack %q", *attack)
	}

	client, err := tn.NewClient("client", 7)
	if err != nil {
		log.Fatal(err)
	}
	consensus, err := tn.Discover(client)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client learned %d relays", len(consensus))
	if client.Attestations > 0 {
		fmt.Printf(" (%d remote attestations)", client.Attestations)
	}
	fmt.Println()
	path, err := client.PickPath(consensus, 3)
	if err != nil {
		log.Fatal(err)
	}
	var names []string
	for _, d := range path {
		names = append(names, d.Name)
	}
	circ, err := client.BuildCircuit(path)
	if err != nil {
		log.Fatal(err)
	}
	defer circ.Close()
	resp, err := circ.Get(tor.WebHost+"|"+tor.WebService, []byte("GET /index"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s → fetched %q\n", strings.Join(names, " → "), resp)
}

func runExitTamper(tn *tor.TorNet, mode tor.DeployMode) {
	evil, err := tn.AddOR(tor.ORConfig{
		Name: "evil-exit", Exit: true,
		SGX:      mode >= tor.ModeSGXORs,
		Behavior: tor.BehaveTamperExit,
	})
	if err != nil {
		fmt.Printf("malicious exit REFUSED at admission: %v\n", err)
		fmt.Println("→ the enclave integrity check caught the tampered build (§3.2)")
		return
	}
	client, err := tn.NewClient("victim", 3)
	if err != nil {
		log.Fatal(err)
	}
	consensus, err := tn.Discover(client)
	if err != nil {
		log.Fatal(err)
	}
	var path []tor.Descriptor
	for _, d := range consensus {
		if !d.Exit && len(path) < 2 {
			path = append(path, d)
		}
	}
	path = append(path, evil.Descriptor())
	circ, err := client.BuildCircuit(path)
	if err != nil {
		log.Fatal(err)
	}
	defer circ.Close()
	resp, err := circ.Get(tor.WebHost+"|"+tor.WebService, []byte("GET /login"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim received %q\n", resp)
	if strings.HasPrefix(string(resp), "EVIL:") {
		fmt.Println("→ the manually-admitted malicious exit modified the plaintext undetected (spoiled onions)")
	}
}

func runSnoop(tn *tor.TorNet, mode tor.DeployMode) {
	evil, err := tn.AddOR(tor.ORConfig{
		Name: "snoop-exit", Exit: true,
		SGX:      mode >= tor.ModeSGXORs,
		Behavior: tor.BehaveSnoop,
	})
	if err != nil {
		fmt.Printf("snooping exit REFUSED at admission: %v\n", err)
		return
	}
	client, _ := tn.NewClient("victim", 4)
	consensus, err := tn.Discover(client)
	if err != nil {
		log.Fatal(err)
	}
	var path []tor.Descriptor
	for _, d := range consensus {
		if !d.Exit && len(path) < 2 {
			path = append(path, d)
		}
	}
	path = append(path, evil.Descriptor())
	circ, err := client.BuildCircuit(path)
	if err != nil {
		log.Fatal(err)
	}
	defer circ.Close()
	if _, err := circ.Get(tor.WebHost+"|"+tor.WebService, []byte("GET /secret-profile")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snooping exit recorded: %v\n", evil.SnoopLog())
	fmt.Println("→ one bad apple: the exit profiles plaintext traffic (§3.2)")
}

func runDirSubvert(tn *tor.TorNet, mode tor.DeployMode) {
	if mode == tor.ModeSGXFull {
		fmt.Println("fully-SGX mode has no directory authorities to subvert")
		return
	}
	evil := tor.Descriptor{Name: "ghost-or", Host: "nowhere", Exit: true}
	n := len(tn.Auths)/2 + 1 // a majority
	for _, a := range tn.Auths[:n] {
		a.Subvert()
		if err := a.InjectMaliciousVote(evil); err != nil {
			fmt.Printf("authority %s: %v — enclave votes cannot be altered, attacker reduced to DoS\n", a.Name, err)
		} else {
			fmt.Printf("authority %s subverted: now voting for ghost-or\n", a.Name)
		}
	}
	consensus := tor.Consensus(tn.Auths)
	for _, d := range consensus {
		if d.Name == "ghost-or" {
			fmt.Println("→ consensus POISONED: a majority of subverted directories admitted the attacker's OR")
			return
		}
	}
	fmt.Printf("→ consensus of the %d surviving authorities stays honest (%d relays, no ghost-or)\n",
		len(tn.Auths)-n, len(consensus))
}
