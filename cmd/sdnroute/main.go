// Command sdnroute runs the paper's §3.1 application end to end:
// SGX-enabled software-defined inter-domain routing over a random AS
// topology, with the native deployment as comparison and optional
// predicate verification.
//
// Usage:
//
//	sdnroute -as 30 -seed 42 -predicates
package main

import (
	"flag"
	"fmt"
	"log"

	"sgxnet/internal/bgp"
	"sgxnet/internal/sdnctl"
	"sgxnet/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdnroute: ")
	nAS := flag.Int("as", 30, "number of ASes")
	seed := flag.Int64("seed", 42, "topology seed")
	predicates := flag.Bool("predicates", false, "demonstrate predicate verification")
	nativeOnly := flag.Bool("native-only", false, "run only the non-SGX baseline")
	flag.Parse()

	tp, err := topo.Random(topo.Config{N: *nAS, Seed: *seed, PrefJitter: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d ASes, %d links (seed %d)\n", tp.N(), tp.Links(), *seed)

	native, err := sdnctl.RunNative(tp)
	if err != nil {
		log.Fatalf("native run: %v", err)
	}
	fmt.Printf("native:  inter-domain %d normal inst; AS-local avg %d; %d route updates in %d rounds\n",
		native.InterDomain.Normal, native.ASLocalAvg().Normal, native.Stats.Updates, native.Stats.Rounds)
	if !bgp.AllValleyFree(tp, native.RIBs) || !bgp.LoopFree(native.RIBs) {
		log.Fatal("native routes violate Gao–Rexford invariants")
	}
	if *nativeOnly {
		return
	}

	runPredicates := func(_ *sdnctl.Controller, locals []*sdnctl.ASLocal) error {
		if !*predicates {
			return nil
		}
		// AS1 promises AS2 that its routes avoid AS0.
		pred := sdnctl.Predicate{ID: "avoid-0", ASa: 1, ASb: 2, Kind: sdnctl.PredAvoids, Arg: 0}
		for _, asn := range []int{1, 2} {
			resp, err := locals[asn].Do(&sdnctl.Request{Register: &pred})
			if err != nil || resp.Err != "" {
				return fmt.Errorf("register by AS%d: %v %s", asn, err, resp.Err)
			}
		}
		resp, err := locals[2].Do(&sdnctl.Request{Verify: "avoid-0"})
		if err != nil || resp.Verdict == nil {
			return fmt.Errorf("verify: %v %+v", err, resp)
		}
		fmt.Printf("predicate %q (AS1 promises AS2 to avoid AS0): holds=%v — verified inside the enclave, nothing else disclosed\n",
			resp.Verdict.PredicateID, resp.Verdict.Holds)
		return nil
	}

	sgx, err := sdnctl.RunSGXWithPredicates(tp, runPredicates)
	if err != nil {
		log.Fatalf("SGX run: %v", err)
	}
	fmt.Printf("SGX:     inter-domain %d normal + %d SGX(U) inst; AS-local avg %d normal + %d SGX(U)\n",
		sgx.InterDomain.Normal, sgx.InterDomain.SGXU, sgx.ASLocalAvg().Normal, sgx.ASLocalAvg().SGXU)
	fmt.Printf("         %d remote attestations (one per AS controller — Table 3)\n", sgx.Attestations)
	fmt.Printf("overhead: inter-domain +%.0f%%, AS-local +%.0f%% (paper: +82%% / +69%%)\n",
		100*(float64(sgx.InterDomain.Normal)/float64(native.InterDomain.Normal)-1),
		100*(float64(sgx.ASLocalAvg().Normal)/float64(native.ASLocalAvg().Normal)-1))
	if !bgp.RIBsEqual(native.RIBs, sgx.RIBs) {
		log.Fatal("SGX and native deployments computed different routes")
	}
	fmt.Println("SGX and native routes identical; policies never left the enclaves in the SGX run")
}
