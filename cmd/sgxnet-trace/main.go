// Command sgxnet-trace analyzes a JSONL trace produced by
// sgxnet-tables -trace: it validates the stream, attributes each
// track's run total to named spans, and ranks the spans that spent the
// most SGX instructions.
//
// Usage:
//
//	sgxnet-trace out.trace             # per-track cost attribution
//	sgxnet-trace -check out.trace      # validate well-formedness, exit 1 on problems
//	sgxnet-trace -top 10 out.trace     # also rank the top spans by SGX(U) delta
//	sgxnet-trace -metrics out.trace    # also dump the metric registry counters
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"

	"sgxnet/internal/core"
	"sgxnet/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sgxnet-trace: ")
	check := flag.Bool("check", false, "validate the trace (dense sequences, monotone clocks, LIFO spans) and exit non-zero on problems")
	top := flag.Int("top", 0, "also print the N spans with the largest SGX(U) deltas")
	metrics := flag.Bool("metrics", false, "also print the metric registry counters")
	minCoverage := flag.Float64("min-coverage", 0, "fail unless spans attribute at least this fraction of the reported run totals (e.g. 0.95)")
	flag.Parse()

	if flag.NArg() != 1 {
		log.Fatal("usage: sgxnet-trace [flags] trace.jsonl")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	events, err := obs.ReadJSONL(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if len(events) == 0 {
		log.Fatal("empty trace")
	}

	if *check {
		if errs := obs.Check(events); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "invalid:", e)
			}
			os.Exit(1)
		}
		fmt.Printf("ok: %d events, well-formed\n", len(events))
	}

	a := obs.Analyze(events)
	render(os.Stdout, a, *top, *metrics)

	if *minCoverage > 0 && a.Coverage() < *minCoverage {
		log.Fatalf("coverage %.1f%% below required %.1f%%",
			100*a.Coverage(), 100**minCoverage)
	}
}

func tally(t core.Tally) string {
	return fmt.Sprintf("%d\t%d\t%d", t.SGXU, t.Normal, t.Cycles())
}

// render prints the per-track attribution tables and the overall
// coverage line — the analyzer's main product: where every estimated
// cycle of the run went, with the unattributed residual explicit.
func render(w io.Writer, a *obs.Analysis, top int, metrics bool) {
	for i := range a.Tracks {
		t := &a.Tracks[i]
		if len(t.Spans) == 0 && !t.HasTotal {
			continue // instant-only track (e.g. fault events)
		}
		fmt.Fprintf(w, "track %s (%d spans, %d instants)\n", t.Name, len(t.Spans), t.Instants)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  phase\tcount\tSGX(U)\tnormal\tcycles")
		for _, p := range t.Phases() {
			fmt.Fprintf(tw, "  %s\t%d\t%s\n", p.Name, p.Count, tally(p.Self))
		}
		src := "= span sum"
		if t.HasTotal {
			src = "reported"
		}
		fmt.Fprintf(tw, "  total (%s)\t\t%s\n", src, tally(t.Total))
		if t.HasTotal {
			fmt.Fprintf(tw, "  attributed\t\t%s\n", tally(t.Attributed))
			fmt.Fprintf(tw, "  residual\t\t%s\n", tally(t.Residual()))
		}
		tw.Flush()
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "coverage: %.1f%% of reported totals attributed to spans (%d of %d cycles)\n",
		100*a.Coverage(), a.CoveredAttr.Cycles(), a.CoveredTotal.Cycles())

	if top > 0 {
		fmt.Fprintf(w, "\ntop %d spans by SGX(U) delta:\n", top)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  track\tspan\tSGX(U)\tnormal\tcycles")
		for _, s := range a.TopSpans(top) {
			fmt.Fprintf(tw, "  %s\t%s\t%s\n", s.Track, s.Name, tally(s.Delta))
		}
		tw.Flush()
	}

	if metrics {
		fmt.Fprintln(w, "\nmetrics:")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, m := range a.Metrics {
			fmt.Fprintf(tw, "  %s\t%d\n", m.Name, m.Value)
		}
		tw.Flush()
	}
}
