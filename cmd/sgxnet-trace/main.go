// Command sgxnet-trace analyzes a JSONL trace produced by
// sgxnet-tables -trace: it validates the stream, attributes each
// track's run total to named spans, and ranks the spans that spent the
// most SGX instructions. With -series it instead analyzes a windowed
// time-series CSV produced by sgxnet-tables -series: per-window top
// movers, unbounded-growth detection on gauges, and SLO burn-rate
// alert evaluation over viol./done. counter pairs.
//
// Usage:
//
//	sgxnet-trace out.trace             # per-track cost attribution
//	sgxnet-trace -check out.trace      # validate well-formedness, exit 1 on problems
//	sgxnet-trace -top 10 out.trace     # also rank the top spans by SGX(U) delta
//	sgxnet-trace -metrics out.trace    # also dump the metric registry counters
//	sgxnet-trace -series out.csv       # analyze windowed series (movers, growth, burn)
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"sgxnet/internal/core"
	"sgxnet/internal/obs"
	"sgxnet/internal/obs/series"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sgxnet-trace: ")
	check := flag.Bool("check", false, "validate the trace (dense sequences, monotone clocks, LIFO spans) and exit non-zero on problems")
	top := flag.Int("top", 0, "also print the N spans with the largest SGX(U) deltas (with -series: top per-window movers, default 10)")
	metrics := flag.Bool("metrics", false, "also print the metric registry counters")
	minCoverage := flag.Float64("min-coverage", 0, "fail unless spans attribute at least this fraction of the reported run totals (e.g. 0.95)")
	seriesMode := flag.Bool("series", false, "analyze a windowed time-series CSV (from sgxnet-tables -series) instead of a trace")
	growthTrailing := flag.Int("growth-trailing", 8, "series: trailing windows the monotone-growth detector examines")
	burnBudget := flag.Float64("burn-budget", series.DefaultBurnRule.Budget, "series: SLO error budget (violation fraction)")
	burnThreshold := flag.Float64("burn-threshold", series.DefaultBurnRule.Threshold, "series: burn-rate multiple that fires the alert")
	burnShort := flag.Int("burn-short", series.DefaultBurnRule.Short, "series: short trailing span, windows")
	burnLong := flag.Int("burn-long", series.DefaultBurnRule.Long, "series: long trailing span, windows")
	flag.Parse()

	if flag.NArg() != 1 {
		log.Fatal("usage: sgxnet-trace [flags] trace.jsonl")
	}

	if *seriesMode {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		set, err := series.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		rule := series.BurnRule{Budget: *burnBudget, Threshold: *burnThreshold, Short: *burnShort, Long: *burnLong}
		n := *top
		if n <= 0 {
			n = 10
		}
		renderSeries(os.Stdout, set, n, *growthTrailing, rule)
		return
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	events, err := obs.ReadJSONL(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if len(events) == 0 {
		log.Fatal("empty trace")
	}

	if *check {
		if errs := obs.Check(events); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "invalid:", e)
			}
			os.Exit(1)
		}
		fmt.Printf("ok: %d events, well-formed\n", len(events))
	}

	a := obs.Analyze(events)
	render(os.Stdout, a, *top, *metrics)

	if *minCoverage > 0 && a.Coverage() < *minCoverage {
		renderResiduals(os.Stderr, a)
		log.Fatalf("coverage %.1f%% below required %.1f%%",
			100*a.Coverage(), 100**minCoverage)
	}
}

func tally(t core.Tally) string {
	return fmt.Sprintf("%d\t%d\t%d", t.SGXU, t.Normal, t.Cycles())
}

// render prints the per-track attribution tables and the overall
// coverage line — the analyzer's main product: where every estimated
// cycle of the run went, with the unattributed residual explicit.
func render(w io.Writer, a *obs.Analysis, top int, metrics bool) {
	for i := range a.Tracks {
		t := &a.Tracks[i]
		if len(t.Spans) == 0 && !t.HasTotal {
			continue // instant-only track (e.g. fault events)
		}
		fmt.Fprintf(w, "track %s (%d spans, %d instants)\n", t.Name, len(t.Spans), t.Instants)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  phase\tcount\tSGX(U)\tnormal\tcycles")
		for _, p := range t.Phases() {
			fmt.Fprintf(tw, "  %s\t%d\t%s\n", p.Name, p.Count, tally(p.Self))
		}
		src := "= span sum"
		if t.HasTotal {
			src = "reported"
		}
		fmt.Fprintf(tw, "  total (%s)\t\t%s\n", src, tally(t.Total))
		if t.HasTotal {
			fmt.Fprintf(tw, "  attributed\t\t%s\n", tally(t.Attributed))
			fmt.Fprintf(tw, "  residual\t\t%s\n", tally(t.Residual()))
		}
		tw.Flush()
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "coverage: %.1f%% of reported totals attributed to spans (%d of %d cycles)\n",
		100*a.Coverage(), a.CoveredAttr.Cycles(), a.CoveredTotal.Cycles())

	if top > 0 {
		fmt.Fprintf(w, "\ntop %d spans by SGX(U) delta:\n", top)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  track\tspan\tSGX(U)\tnormal\tcycles")
		for _, s := range a.TopSpans(top) {
			fmt.Fprintf(tw, "  %s\t%s\t%s\n", s.Track, s.Name, tally(s.Delta))
		}
		tw.Flush()
	}

	if metrics {
		fmt.Fprintln(w, "\nmetrics:")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, m := range a.Metrics {
			fmt.Fprintf(tw, "  %s\t%d\n", m.Name, m.Value)
		}
		tw.Flush()
	}
}

// residualBreakdownTop bounds the per-track residual listing on a
// -min-coverage failure.
const residualBreakdownTop = 15

// renderResiduals prints the per-track unattributed residuals, largest
// first — which tracks to instrument next, instead of just the overall
// percentage.
func renderResiduals(w io.Writer, a *obs.Analysis) {
	type row struct {
		name            string
		residual, total uint64
	}
	var rows []row
	for i := range a.Tracks {
		t := &a.Tracks[i]
		if !t.HasTotal {
			continue
		}
		if res := t.Residual().Cycles(); res > 0 {
			rows = append(rows, row{t.Name, res, t.Total.Cycles()})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].residual != rows[j].residual {
			return rows[i].residual > rows[j].residual
		}
		return rows[i].name < rows[j].name
	})
	fmt.Fprintf(w, "residual breakdown (%d tracks with unattributed cycles):\n", len(rows))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  track\tresidual-cycles\ttrack-total\tunattributed")
	for i, r := range rows {
		if i == residualBreakdownTop {
			fmt.Fprintf(tw, "  … %d more\t\t\t\n", len(rows)-residualBreakdownTop)
			break
		}
		pct := 0.0
		if r.total > 0 {
			pct = 100 * float64(r.residual) / float64(r.total)
		}
		fmt.Fprintf(tw, "  %s\t%d\t%d\t%.1f%%\n", r.name, r.residual, r.total, pct)
	}
	tw.Flush()
}

// renderSeries is the -series analyzer: a summary of the set, the
// largest window-to-window movers, gauges growing monotonically over
// the trailing windows (the unbounded-backlog signal), and the SLO
// burn-rate alert evaluation for every viol./done. counter pair.
func renderSeries(w io.Writer, set *series.Set, top, trailing int, rule series.BurnRule) {
	names := set.Names()
	var windows int
	for _, n := range names {
		windows += set.Get(n).Len()
	}
	fmt.Fprintf(w, "series: %d instruments, %d observed windows, window = %d cycles\n\n",
		len(names), windows, set.Window())

	movers := series.TopMovers(set, top)
	fmt.Fprintf(w, "top %d movers (largest window-to-window delta):\n", top)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  series\tkind\twindow\tfrom\tto\tdelta")
	for _, m := range movers {
		sign := "+"
		if m.To < m.From {
			sign = "-"
		}
		fmt.Fprintf(tw, "  %s\t%s\t%d\t%d\t%d\t%s%d\n", m.Series, m.Kind, m.Window, m.From, m.To, sign, m.Delta)
	}
	tw.Flush()

	fmt.Fprintf(w, "\nmonotone growth over trailing %d windows (gauges):\n", trailing)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	grew := 0
	for _, n := range names {
		s := set.Get(n)
		if s.Kind != series.Gauge {
			continue
		}
		if g, ok := series.DetectGrowth(s, trailing); ok {
			grew++
			fmt.Fprintf(tw, "  %s\t%d windows\t%d -> %d\tGROWING\n", g.Series, g.Windows, g.First, g.Last)
		}
	}
	if grew == 0 {
		fmt.Fprintln(tw, "  none\t(no gauge grows monotonically over the trailing windows)")
	}
	tw.Flush()

	pairs := series.BurnPairs(set)
	fmt.Fprintf(w, "\nburn-rate alerts (budget %.3f, threshold %.1fx, spans %d/%d windows):\n",
		rule.Budget, rule.Threshold, rule.Short, rule.Long)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(pairs) == 0 {
		fmt.Fprintln(tw, "  none\t(no viol./done. counter pairs in the set)")
	}
	for _, p := range pairs {
		pts := series.BurnRate(p.Viol, p.Done, rule)
		firing := 0
		var first, last uint64
		var peak float64
		for _, b := range pts {
			if b.Alert {
				if firing == 0 {
					first = b.Window
				}
				last = b.Window
				firing++
			}
			if b.Short > peak {
				peak = b.Short
			}
		}
		status := "ok"
		if firing > 0 {
			status = fmt.Sprintf("ALERT in %d windows [%d..%d]", firing, first, last)
		}
		fmt.Fprintf(tw, "  %s\tpeak burn %.1fx\t%s\n", p.Stream, peak, status)
	}
	tw.Flush()
}
