// Command mboxtls runs the paper's §3.3 application: a TLS session
// through a chain of in-path middleboxes; the client remote-attests each
// middlebox enclave and provisions its session keys over the secure
// channel, enabling in-enclave deep packet inspection of traffic the
// boxes could not otherwise read.
//
// Usage:
//
//	mboxtls -mboxes 2
//	mboxtls -mboxes 1 -tampered    # attestation refuses the rogue box
package main

import (
	"flag"
	"fmt"
	"log"

	"sgxnet/internal/eval"
	"sgxnet/internal/middlebox"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mboxtls: ")
	nMbox := flag.Int("mboxes", 2, "number of in-path middleboxes")
	tampered := flag.Bool("tampered", false, "also try a tampered middlebox build")
	flag.Parse()

	rig, err := eval.NewMboxRig(*nMbox)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TLS handshake completed through %d middlebox(es); DPI rules: %v\n", *nMbox, eval.DPIPatterns)

	if err := rig.Session.Send([]byte("GET /report")); err != nil {
		log.Fatal(err)
	}
	if _, err := rig.Session.Recv(); err != nil {
		log.Fatal(err)
	}
	for _, mb := range rig.Mboxes {
		fmt.Printf("%s before key provisioning: %d alerts (sees only ciphertext)\n", mb.Name, len(mb.Alerts()))
	}

	n, err := rig.ProvisionAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provisioned session keys to %d middleboxes (%d remote attestations — Table 3)\n", n, n)

	if err := rig.Session.Send([]byte("POST /exfiltrate?payload=malware")); err != nil {
		log.Fatal(err)
	}
	if _, err := rig.Session.Recv(); err != nil {
		log.Fatal(err)
	}
	for _, mb := range rig.Mboxes {
		fmt.Printf("%s after provisioning: %d alerts", mb.Name, len(mb.Alerts()))
		for _, a := range mb.Alerts() {
			fmt.Printf(" [%s@%d]", a.Match.Pattern, a.Match.Offset)
		}
		fmt.Println()
	}

	if *tampered {
		mb, err := rig.AddTamperedMbox("rogue-mbox")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := middlebox.Provision(rig.Endpoint, rig.EpShim, rig.Client,
			mb.Host.Name(), "client", rig.Session.ExportKeys()); err != nil {
			fmt.Printf("tampered middlebox provisioning REFUSED: %v\n", err)
			fmt.Println("→ the modified build never sees a session key (§3.3)")
		} else {
			log.Fatal("tampered middlebox was provisioned — attestation failed to protect the keys")
		}
	}
}
