package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// The bench-regression gate: compare a fresh BENCH_results.json against
// the committed BENCH_baseline.json on a small set of headline metrics
// and fail when any regresses past the threshold. The gate is a pure
// file-vs-file comparison — it never reruns benchmarks — so the caller
// decides how the "current" file was produced (make bench locally, a
// fresh benchjson run in CI).
//
// Two of the six gated metrics (FullSweep wall time, ScaleSweep
// events/sec) are wall-clock and move with the machine; the other four
// (LoadSweep worst p999/p50, XcallSweep min speedup, RATLSSweep worst
// warm/cold ratio, ChainSweep worst per-hop sgx/native overhead) are
// ratios of virtual-cycle quantities and are deterministic. CI
// therefore runs the gate with a wider -max-regress than the local
// default.

// gateMetric names one headline metric: which benchmark it lives on,
// which reported unit carries it (empty = ns/op), and which direction is
// better.
type gateMetric struct {
	bench        string // sub-benchmark name, without the -GOMAXPROCS suffix
	metric       string // Metrics key; "" means the ns/op field
	higherBetter bool
	label        string // human-readable row name
}

// gateMetrics is the gated set: one summary number per committed sweep
// benchmark, chosen so a regression names the subsystem at fault.
var gateMetrics = []gateMetric{
	{"BenchmarkFullSweep/workers=1", "", false,
		"full-sweep wall ns/op"},
	{"BenchmarkScaleSweep/workers=1", "events/sec", true,
		"scale-sweep kernel throughput"},
	{"BenchmarkLoadSweep/workers=1", "worst-p999/p50-x", false,
		"load-sweep worst tail amplification"},
	{"BenchmarkXcallSweep/workers=1", "min-speedup-x", true,
		"xcall min batching speedup"},
	{"BenchmarkRATLSSweep/workers=1", "worst-warm/cold-ratio", false,
		"ratls worst warm/cold amortization"},
	{"BenchmarkChainSweep/workers=1", "worst-sgx/native-hop-ratio", false,
		"chain worst per-hop sgx/native overhead"},
}

// gateRow is one evaluated metric.
type gateRow struct {
	label   string
	base    float64
	cur     float64
	regress float64 // fractional regression (negative = improved)
	failed  bool
	missing string // non-empty: which side lacked the metric
}

// findResult locates a benchmark by its logical name, tolerating the
// "-8"-style GOMAXPROCS suffix go test appends on multi-core machines
// (the committed baseline was recorded at GOMAXPROCS=1 and has none).
func findResult(rep *Report, bench string) *Result {
	for i := range rep.Results {
		name := collisionSuffix.ReplaceAllString(rep.Results[i].Name, "")
		if name == bench || strings.HasPrefix(name, bench+"-") {
			return &rep.Results[i]
		}
	}
	return nil
}

// metricValue extracts the gated unit from a result.
func metricValue(r *Result, metric string) (float64, bool) {
	if metric == "" {
		return r.NsPerOp, r.NsPerOp > 0
	}
	v, ok := r.Metrics[metric]
	return v, ok
}

// usable reports whether a metric value can anchor a comparison: finite
// and non-zero. A benchmark that recorded exactly 0, NaN, or ±Inf did
// not measure anything — NaN in particular poisons the regression ratio
// into comparisons that are all false, which would read as "pass".
// Such a value must fail the gate exactly like a vanished metric.
func usable(v float64) bool {
	return v != 0 && !math.IsNaN(v) && !math.IsInf(v, 0)
}

// evalGate compares every gated metric. A metric missing from either
// report fails the gate: a silently vanished benchmark must not read as
// "no regression".
func evalGate(baseline, current *Report, maxRegress float64) []gateRow {
	rows := make([]gateRow, 0, len(gateMetrics))
	for _, g := range gateMetrics {
		row := gateRow{label: g.label}
		br := findResult(baseline, g.bench)
		cr := findResult(current, g.bench)
		switch {
		case br == nil:
			row.missing, row.failed = "baseline: no "+g.bench, true
		case cr == nil:
			row.missing, row.failed = "current: no "+g.bench, true
		default:
			bv, bok := metricValue(br, g.metric)
			cv, cok := metricValue(cr, g.metric)
			switch {
			case !bok || !usable(bv):
				row.missing, row.failed = "baseline: no usable value", true
			case !cok || !usable(cv):
				row.missing, row.failed = "current: no usable value", true
			default:
				row.base, row.cur = bv, cv
				if g.higherBetter {
					row.regress = (bv - cv) / bv
				} else {
					row.regress = (cv - bv) / bv
				}
				row.failed = row.regress > maxRegress
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// renderGate prints the comparison table and returns the failure count.
func renderGate(w io.Writer, rows []gateRow, maxRegress float64) int {
	failures := 0
	for _, r := range rows {
		status := "ok"
		if r.failed {
			failures++
			status = "FAIL"
		}
		if r.missing != "" {
			fmt.Fprintf(w, "%-4s %-36s %s\n", status, r.label, r.missing)
			continue
		}
		fmt.Fprintf(w, "%-4s %-36s base %14.3f  cur %14.3f  regress %+6.1f%% (limit %.0f%%)\n",
			status, r.label, r.base, r.cur, 100*r.regress, 100*maxRegress)
	}
	return failures
}

// readReport loads one benchjson output file.
func readReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
