package main

import (
	"math"
	"strings"
	"testing"
)

// report builds a minimal Report carrying the six gated metrics, with
// multipliers applied to each so tests can dial regressions in
// per-metric. Order: fullsweep ns/op, scalesweep events/sec, loadsweep
// p999/p50, xcall min speedup, ratls warm/cold ratio, chain per-hop
// sgx/native ratio.
func report(suffix string, mul [6]float64) *Report {
	return &Report{Results: []Result{
		{Name: "BenchmarkFullSweep/workers=1" + suffix, NsPerOp: 1e9 * mul[0]},
		// A same-benchmark sibling the matcher must not confuse with the
		// workers=1 variant (it also reports events/sec).
		{Name: "BenchmarkScaleSweep/sdn-1024" + suffix, NsPerOp: 5e8,
			Metrics: map[string]float64{"events/sec": 1}},
		{Name: "BenchmarkScaleSweep/workers=1" + suffix, NsPerOp: 2e9,
			Metrics: map[string]float64{"events/sec": 5e6 * mul[1]}},
		{Name: "BenchmarkLoadSweep/workers=1" + suffix, NsPerOp: 3e9,
			Metrics: map[string]float64{"worst-p999/p50-x": 6 * mul[2]}},
		{Name: "BenchmarkXcallSweep/workers=1" + suffix, NsPerOp: 4e9,
			Metrics: map[string]float64{"min-speedup-x": 2 * mul[3]}},
		{Name: "BenchmarkRATLSSweep/workers=1" + suffix, NsPerOp: 5e9,
			Metrics: map[string]float64{"worst-warm/cold-ratio": 0.002 * mul[4]}},
		{Name: "BenchmarkChainSweep/workers=1" + suffix, NsPerOp: 6e9,
			Metrics: map[string]float64{"worst-sgx/native-hop-ratio": 1.0 * mul[5]}},
	}}
}

func failures(rows []gateRow) int {
	n := 0
	for _, r := range rows {
		if r.failed {
			n++
		}
	}
	return n
}

func TestGateIdenticalPasses(t *testing.T) {
	one := [6]float64{1, 1, 1, 1, 1, 1}
	rows := evalGate(report("", one), report("", one), 0.25)
	if len(rows) != len(gateMetrics) {
		t.Fatalf("got %d rows, want %d", len(rows), len(gateMetrics))
	}
	if n := failures(rows); n != 0 {
		t.Fatalf("identical reports failed %d metrics: %+v", n, rows)
	}
}

// TestGateDirections: for each metric, a change past the threshold in
// the bad direction fails, and the same-magnitude change in the good
// direction passes — the gate must know which way is up.
func TestGateDirections(t *testing.T) {
	one := [6]float64{1, 1, 1, 1, 1, 1}
	base := report("", one)
	// worse: slower wall, lower throughput, fatter tail, less speedup
	worse := [6]float64{1.5, 0.5, 1.5, 0.5, 1.5, 1.5}
	better := [6]float64{0.5, 1.5, 0.5, 1.5, 0.5, 0.5}
	for i, g := range gateMetrics {
		mul := one
		mul[i] = worse[i]
		rows := evalGate(base, report("", mul), 0.25)
		if !rows[i].failed {
			t.Errorf("%s: regression in bad direction did not fail (regress %.2f)", g.label, rows[i].regress)
		}
		if n := failures(rows); n != 1 {
			t.Errorf("%s: regression bled into other rows (%d failures)", g.label, n)
		}
		mul[i] = better[i]
		if rows := evalGate(base, report("", mul), 0.25); failures(rows) != 0 {
			t.Errorf("%s: improvement flagged as regression", g.label)
		}
	}
}

func TestGateThresholdBoundary(t *testing.T) {
	one := [6]float64{1, 1, 1, 1, 1, 1}
	base := report("", one)
	// Exactly at the threshold passes (> not >=), just past it fails.
	at := evalGate(base, report("", [6]float64{1.25, 1, 1, 1, 1, 1}), 0.25)
	if at[0].failed {
		t.Fatalf("regression exactly at threshold should pass, got regress %.4f", at[0].regress)
	}
	past := evalGate(base, report("", [6]float64{1.26, 1, 1, 1, 1, 1}), 0.25)
	if !past[0].failed {
		t.Fatalf("regression past threshold should fail, got regress %.4f", past[0].regress)
	}
}

// TestGateMultiCoreSuffix: the current report may carry "-8"-style
// GOMAXPROCS suffixes the single-core baseline lacks; matching is by
// logical name.
func TestGateMultiCoreSuffix(t *testing.T) {
	one := [6]float64{1, 1, 1, 1, 1, 1}
	rows := evalGate(report("", one), report("-8", one), 0.25)
	if n := failures(rows); n != 0 {
		t.Fatalf("suffix mismatch broke matching: %+v", rows)
	}
}

// TestGateMissingBenchmarkFails: a vanished benchmark must read as a
// gate failure, not as "no regression".
func TestGateMissingBenchmarkFails(t *testing.T) {
	one := [6]float64{1, 1, 1, 1, 1, 1}
	cur := report("", one)
	cur.Results = cur.Results[1:] // drop FullSweep
	rows := evalGate(report("", one), cur, 0.25)
	if !rows[0].failed || !strings.Contains(rows[0].missing, "current") {
		t.Fatalf("missing benchmark not flagged: %+v", rows[0])
	}
	// And a metric present on the benchmark but missing its unit.
	cur2 := report("", one)
	delete(cur2.Results[4].Metrics, "min-speedup-x")
	rows2 := evalGate(report("", one), cur2, 0.25)
	if !rows2[3].failed {
		t.Fatalf("missing metric unit not flagged: %+v", rows2[3])
	}
}

// TestGateUnusableValueFails: a metric that is exactly 0, NaN, or ±Inf
// on either side must hard-fail the gate like a vanished metric. NaN is
// the insidious case — it poisons the regression ratio into comparisons
// that are all false, which the old gate read as "pass".
func TestGateUnusableValueFails(t *testing.T) {
	one := [6]float64{1, 1, 1, 1, 1, 1}
	for _, v := range []float64{0, math.NaN(), math.Inf(1), math.Inf(-1)} {
		base := report("", one)
		base.Results[2].Metrics["events/sec"] = v
		rows := evalGate(base, report("", one), 0.25)
		if !rows[1].failed || !strings.Contains(rows[1].missing, "baseline") {
			t.Errorf("baseline value %v not flagged: %+v", v, rows[1])
		}
		cur := report("", one)
		cur.Results[3].Metrics["worst-p999/p50-x"] = v
		rows = evalGate(report("", one), cur, 0.25)
		if !rows[2].failed || !strings.Contains(rows[2].missing, "current") {
			t.Errorf("current value %v not flagged: %+v", v, rows[2])
		}
	}
}

// TestGateAgainstCommittedBaseline keeps the gate table honest: every
// gated metric must actually exist in the committed baseline file, so a
// benchmark rename cannot silently decouple the gate from reality.
func TestGateAgainstCommittedBaseline(t *testing.T) {
	base, err := readReport("../../BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	rows := evalGate(base, base, 0.25)
	for _, r := range rows {
		if r.missing != "" {
			t.Errorf("%s: %s — gate table out of sync with BENCH_baseline.json", r.label, r.missing)
		}
		if r.failed {
			t.Errorf("%s: self-comparison failed", r.label)
		}
	}
}
