// Command benchjson runs the repository's benchmarks and records the
// results as machine-readable JSON (BENCH_results.json at the repo root,
// via make bench). Committing the file gives every PR a baseline to diff
// perf work against without re-deriving it from CI logs.
//
// With -gate it instead compares an existing results file against the
// committed baseline and exits non-zero when a headline metric regressed
// past -max-regress — the CI perf gate.
//
// Usage:
//
//	benchjson [-out BENCH_results.json] [-benchtime 1s] [-pattern .]
//	benchjson -gate [-baseline BENCH_baseline.json] [-results BENCH_results.json] [-max-regress 0.25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every other reported unit (the harness's custom
	// b.ReportMetric values, e.g. "target-normal-inst").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file's top-level shape.
type Report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Command    string   `json:"command"`
	Results    []Result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "BENCH_results.json", "output file")
	benchtime := flag.String("benchtime", "1s", "passed to go test -benchtime")
	pattern := flag.String("pattern", ".", "passed to go test -bench")
	gate := flag.Bool("gate", false, "compare -results against -baseline instead of running benchmarks; exit 1 on regression")
	baseline := flag.String("baseline", "BENCH_baseline.json", "gate: committed baseline report")
	results := flag.String("results", "BENCH_results.json", "gate: current report to judge")
	maxRegress := flag.Float64("max-regress", 0.25, "gate: fail when a metric regresses by more than this fraction")
	flag.Parse()

	if *gate {
		base, err := readReport(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		cur, err := readReport(*results)
		if err != nil {
			log.Fatal(err)
		}
		rows := evalGate(base, cur, *maxRegress)
		if n := renderGate(os.Stdout, rows, *maxRegress); n > 0 {
			log.Fatalf("%d of %d gated metrics regressed past %.0f%%", n, len(rows), 100**maxRegress)
		}
		fmt.Printf("gate ok: %d metrics within %.0f%% of baseline\n", len(rows), 100**maxRegress)
		return
	}

	args := []string{"test", "-run", "^$", "-bench", *pattern,
		"-benchmem", "-benchtime", *benchtime, "./..."}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	// go test exits nonzero when any package fails; the benchmark lines
	// that did run are still worth keeping, so report but continue.
	if err != nil {
		log.Printf("go %s: %v (parsing partial output)", strings.Join(args, " "), err)
	}

	rep := &Report{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Command:    "go " + strings.Join(args, " "),
	}
	rep.Results = parseResults(string(raw))
	if len(rep.Results) == 0 {
		log.Fatal("no benchmark lines parsed")
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d results to %s\n", len(rep.Results), *out)
}

// collisionSuffix matches the "#01"-style disambiguator go test appends
// when two sub-benchmarks resolve to the same name (e.g. a workers=1
// and a workers=GOMAXPROCS run collapsing on a single-core machine).
var collisionSuffix = regexp.MustCompile(`#\d+`)

// parseResults decodes every benchmark line, dropping collision
// duplicates: a "Name#01" line reruns the same benchmark as "Name", and
// keeping both would put two entries under one logical key in the JSON
// (the first run is the one diff tooling expects).
func parseResults(raw string) []Result {
	var out []Result
	seen := make(map[string]bool)
	for _, line := range strings.Split(raw, "\n") {
		r, ok := parseLine(line)
		if !ok {
			continue
		}
		key := collisionSuffix.ReplaceAllString(r.Name, "")
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, r)
	}
	return out
}

// parseLine decodes one line of standard go-test benchmark output:
//
//	BenchmarkName-8   100   1234 ns/op   56 B/op   7 allocs/op   9 extra-unit
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
