package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkFullSweep/workers=1-8   5   1234567 ns/op   56 B/op   7 allocs/op   3.14 worst-x")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkFullSweep/workers=1-8" || r.Iterations != 5 ||
		r.NsPerOp != 1234567 || r.BytesPerOp != 56 || r.AllocsPerOp != 7 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["worst-x"] != 3.14 {
		t.Fatalf("custom metric missing: %+v", r.Metrics)
	}
	for _, junk := range []string{"", "goos: linux", "PASS", "Benchmark   notanumber   1 ns/op"} {
		if _, ok := parseLine(junk); ok {
			t.Errorf("parsed junk line %q", junk)
		}
	}
}

// TestParseResultsDedupesCollisions is the regression test for the
// BENCH_results.json duplicate: on a single-core runner the workers=1
// and workers=GOMAXPROCS sub-benchmarks collide, go test renames the
// rerun "workers=1#01", and both lines used to land in the file. Only
// the first may survive.
func TestParseResultsDedupes(t *testing.T) {
	raw := `goos: linux
BenchmarkFullSweep/workers=1-2         	       1	9000 ns/op	   100 B/op	       2 allocs/op
BenchmarkFullSweep/workers=1#01-2      	       1	9100 ns/op	   100 B/op	       2 allocs/op
BenchmarkEPCSweep/workers=1-2          	       2	4000 ns/op	3.50 worst-overhead-x
BenchmarkEPCSweep/workers=1#01-2       	       2	4100 ns/op	3.50 worst-overhead-x
BenchmarkEPCSweep/workers=8-2          	       2	1000 ns/op	3.50 worst-overhead-x
PASS
`
	results := parseResults(raw)
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(results), results)
	}
	want := []string{
		"BenchmarkFullSweep/workers=1-2",
		"BenchmarkEPCSweep/workers=1-2",
		"BenchmarkEPCSweep/workers=8-2",
	}
	for i, w := range want {
		if results[i].Name != w {
			t.Errorf("result %d = %q, want %q", i, results[i].Name, w)
		}
	}
	// The kept line must be the first run, not the #01 rerun.
	if results[0].NsPerOp != 9000 {
		t.Errorf("kept the rerun instead of the first run: %+v", results[0])
	}
}
