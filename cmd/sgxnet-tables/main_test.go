package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenCases are the deterministic CLI invocations. The fault sweep is
// deliberately absent: its numbers depend on real timeouts.
var goldenCases = []struct {
	name string
	o    options
}{
	{"all", options{}},
	{"table1", options{table: 1}},
	{"table2", options{table: 2}},
	{"table3", options{table: 3}},
	{"table4", options{table: 4}},
	{"fig3", options{fig: 3}},
	{"fig3-csv", options{fig: 3, csv: true}},
	{"ablations", options{ablations: true}},
	{"epc-sweep", options{epcSweep: true}},
	{"xcall-sweep", options{xcallSweep: true}},
	{"load-sweep", options{loadSweep: true}},
	{"scale-sweep", options{scaleSweep: true}},
	{"ratls-sweep", options{ratlsSweep: true}},
	{"chain-sweep", options{chainSweep: true}},
}

func golden(name string) string { return filepath.Join("testdata", name+".golden") }

// TestGoldenUpdate regenerates every golden transcript from scratch.
// Run with -update after an intentional change to the instruction model
// or the renderers; otherwise it is a no-op.
func TestGoldenUpdate(t *testing.T) {
	if !*update {
		t.Skip("run with -update to rewrite the golden files")
	}
	for _, tc := range goldenCases {
		var b bytes.Buffer
		if err := emit(&b, tc.o); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := os.WriteFile(golden(tc.name), b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGolden checks the default run against all.golden byte for byte,
// then checks each single-section golden without recomputing: emit
// writes the same section bytes whether selected alone or as part of
// the default run, so all.golden must be exactly the concatenation of
// the per-section transcripts. Figure 3's sweep dominates the runtime;
// this keeps the full golden sweep to one simulation pass.
func TestGolden(t *testing.T) {
	if *update {
		t.Skip("goldens being rewritten")
	}
	var b bytes.Buffer
	if err := emit(&b, options{}); err != nil {
		t.Fatal(err)
	}
	all, err := os.ReadFile(golden("all"))
	if err != nil {
		t.Fatalf("missing golden (rerun with -update): %v", err)
	}
	if !bytes.Equal(b.Bytes(), all) {
		t.Fatalf("default output diverges from %s (rerun with -update if intended)\ngot:\n%s\nwant:\n%s",
			golden("all"), b.Bytes(), all)
	}
	var concat []byte
	for _, name := range []string{"table1", "table2", "table3", "table4", "fig3", "ablations", "epc-sweep", "xcall-sweep", "load-sweep", "scale-sweep", "ratls-sweep", "chain-sweep"} {
		sec, err := os.ReadFile(golden(name))
		if err != nil {
			t.Fatalf("missing golden (rerun with -update): %v", err)
		}
		if !bytes.Contains(all, sec) {
			t.Errorf("%s is not a slice of all.golden (rerun with -update)", golden(name))
		}
		concat = append(concat, sec...)
	}
	if !bytes.Equal(concat, all) {
		t.Error("per-section goldens do not concatenate to all.golden (rerun with -update)")
	}
}

// TestParallelSerialEquivalence is the evaluation engine's end-to-end
// determinism gate: the full transcript rendered strictly serially
// (-workers 1) and at high parallelism (-workers 8, oversubscribed on
// small machines on purpose) must be byte-identical. CI runs this under
// -race, so it also shakes out data races in the fan-out itself.
func TestParallelSerialEquivalence(t *testing.T) {
	if *update {
		t.Skip("goldens being rewritten")
	}
	if testing.Short() {
		t.Skip("renders the full transcript twice; slow under -short")
	}
	var serial, parallel bytes.Buffer
	if err := emit(&serial, options{workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := emit(&parallel, options{workers: 8}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Errorf("-workers 8 transcript diverges from -workers 1\nserial:\n%s\nparallel:\n%s",
			serial.Bytes(), parallel.Bytes())
	}
}

// TestEPCSweepWorkersEquivalence is the acceptance gate for the EPC
// sweep specifically: its transcript must be byte-identical at
// -workers 1 and -workers 8. (The sweep also rides in the default run,
// so TestParallelSerialEquivalence covers it there; this test keeps
// the guarantee even when the sweep is selected alone, and is cheap
// enough to run under -short.)
func TestEPCSweepWorkersEquivalence(t *testing.T) {
	if *update {
		t.Skip("goldens being rewritten")
	}
	var serial, parallel bytes.Buffer
	if err := emit(&serial, options{epcSweep: true, workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := emit(&parallel, options{epcSweep: true, workers: 8}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Errorf("-epc-sweep at -workers 8 diverges from -workers 1\nserial:\n%s\nparallel:\n%s",
			serial.Bytes(), parallel.Bytes())
	}
}

// TestXcallSweepWorkersEquivalence is the acceptance gate for the
// switchless-call ablation: its transcript must be byte-identical at
// -workers 1 and -workers 8, cheap enough to run under -short.
func TestXcallSweepWorkersEquivalence(t *testing.T) {
	if *update {
		t.Skip("goldens being rewritten")
	}
	var serial, parallel bytes.Buffer
	if err := emit(&serial, options{xcallSweep: true, workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := emit(&parallel, options{xcallSweep: true, workers: 8}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Errorf("-xcall-sweep at -workers 8 diverges from -workers 1\nserial:\n%s\nparallel:\n%s",
			serial.Bytes(), parallel.Bytes())
	}
}

// TestLoadSweepWorkersEquivalence is the acceptance gate for the
// open-loop load sweep: latency percentiles, violation counts, and
// utilization must be byte-identical at -workers 1 and -workers 8 —
// the histogram merge and per-point rate calibration cannot let the
// worker count show through.
func TestLoadSweepWorkersEquivalence(t *testing.T) {
	if *update {
		t.Skip("goldens being rewritten")
	}
	var serial, parallel bytes.Buffer
	if err := emit(&serial, options{loadSweep: true, workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := emit(&parallel, options{loadSweep: true, workers: 8}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Errorf("-load-sweep at -workers 8 diverges from -workers 1\nserial:\n%s\nparallel:\n%s",
			serial.Bytes(), parallel.Bytes())
	}
}

// TestScaleSweepWorkersEquivalence is the acceptance gate for the
// discrete-event scale sweep: each cell is one single-threaded kernel
// run, so the transcript — event counts, peak backlog, makespans, and
// per-op overheads for thousands of hosts — must be byte-identical at
// -workers 1 and -workers 8. CI runs this under -race as the kernel's
// end-to-end determinism check.
func TestScaleSweepWorkersEquivalence(t *testing.T) {
	if *update {
		t.Skip("goldens being rewritten")
	}
	var serial, parallel bytes.Buffer
	if err := emit(&serial, options{scaleSweep: true, workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := emit(&parallel, options{scaleSweep: true, workers: 8}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Errorf("-scale-sweep at -workers 8 diverges from -workers 1\nserial:\n%s\nparallel:\n%s",
			serial.Bytes(), parallel.Bytes())
	}
}

// TestRATLSSweepWorkersEquivalence is the acceptance gate for the
// attested-channel sweep: its transcript — cold/warm verification
// splits, hit rates, per-connection cycle costs — must be
// byte-identical at -workers 1 and -workers 8. Each cell additionally
// fans its warm phase across goroutines internally, so this also
// checks that in-cell concurrency cannot show through the tallies.
func TestRATLSSweepWorkersEquivalence(t *testing.T) {
	if *update {
		t.Skip("goldens being rewritten")
	}
	var serial, parallel bytes.Buffer
	if err := emit(&serial, options{ratlsSweep: true, workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := emit(&parallel, options{ratlsSweep: true, workers: 8}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Errorf("-ratls-sweep at -workers 8 diverges from -workers 1\nserial:\n%s\nparallel:\n%s",
			serial.Bytes(), parallel.Bytes())
	}
}

// TestChainSweepWorkersEquivalence is the acceptance gate for the
// trusted NF-chain sweep: its transcript — hop counts, routing
// outcomes, per-hop crossing costs, rule-engine shares — must be
// byte-identical at -workers 1 and -workers 8. Each SGX cell builds a
// private network, platform, and verifier, so nothing a worker does can
// show through another cell's tallies.
func TestChainSweepWorkersEquivalence(t *testing.T) {
	if *update {
		t.Skip("goldens being rewritten")
	}
	var serial, parallel bytes.Buffer
	if err := emit(&serial, options{chainSweep: true, workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := emit(&parallel, options{chainSweep: true, workers: 8}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Errorf("-chain-sweep at -workers 8 diverges from -workers 1\nserial:\n%s\nparallel:\n%s",
			serial.Bytes(), parallel.Bytes())
	}
}

// TestGoldenCSV covers the one output shape all.golden cannot: the CSV
// rendering of Figure 3's points.
func TestGoldenCSV(t *testing.T) {
	if *update {
		t.Skip("goldens being rewritten")
	}
	if testing.Short() {
		t.Skip("repeats the Figure 3 sweep; slow under -short")
	}
	var b bytes.Buffer
	if err := emit(&b, options{fig: 3, csv: true}); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(golden("fig3-csv"))
	if err != nil {
		t.Fatalf("missing golden (rerun with -update): %v", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("CSV output diverges from %s (rerun with -update if intended)\ngot:\n%s\nwant:\n%s",
			golden("fig3-csv"), b.Bytes(), want)
	}
}
