// Command sgxnet-tables regenerates the tables and figures of the
// paper's evaluation (§5) plus the ablations.
//
// Usage:
//
//	sgxnet-tables              # everything
//	sgxnet-tables -table 1     # one table (1–4)
//	sgxnet-tables -fig 3       # Figure 3 sweep
//	sgxnet-tables -ablations   # ablation experiments only
//	sgxnet-tables -faults      # fault-tolerance sweep (wall-clock sensitive)
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"sgxnet/internal/eval"
)

// options selects which sections emit produces.
type options struct {
	table     int
	fig       int
	ablations bool
	faults    bool
	csv       bool
}

// all reports whether every deterministic section should run. The fault
// sweep races real timeouts against goroutine scheduling, so its numbers
// are not byte-reproducible; it only runs on request.
func (o options) all() bool {
	return o.table == 0 && o.fig == 0 && !o.ablations && !o.faults
}

// emit writes the selected sections. Everything except the fault sweep
// is byte-for-byte reproducible — the golden tests depend on it.
func emit(w io.Writer, o options) error {
	if o.table == 1 || o.all() {
		rows, err := eval.Table1()
		if err != nil {
			return fmt.Errorf("table 1: %w", err)
		}
		eval.RenderTable1(w, rows)
		fmt.Fprintln(w)
	}
	if o.table == 2 || o.all() {
		rows, err := eval.Table2()
		if err != nil {
			return fmt.Errorf("table 2: %w", err)
		}
		eval.RenderTable2(w, rows)
		fmt.Fprintln(w)
	}
	if o.table == 3 || o.all() {
		rows, err := eval.Table3()
		if err != nil {
			return fmt.Errorf("table 3: %w", err)
		}
		eval.RenderTable3(w, rows)
		fmt.Fprintln(w)
	}
	if o.table == 4 || o.all() {
		r, err := eval.Table4()
		if err != nil {
			return fmt.Errorf("table 4: %w", err)
		}
		eval.RenderTable4(w, r)
		fmt.Fprintln(w)
	}
	if o.fig == 3 || o.all() {
		pts, err := eval.Figure3(nil)
		if err != nil {
			return fmt.Errorf("figure 3: %w", err)
		}
		if o.csv {
			fmt.Fprintln(w, "ases,native_cycles,sgx_cycles")
			for _, p := range pts {
				fmt.Fprintf(w, "%d,%d,%d\n", p.N, p.NativeCycles, p.SGXCycles)
			}
		} else {
			eval.RenderFigure3(w, pts)
		}
		fmt.Fprintln(w)
	}
	if o.ablations || o.all() {
		bpts, err := eval.AblationBatchSweep(nil)
		if err != nil {
			return fmt.Errorf("batch ablation: %w", err)
		}
		eval.RenderBatchSweep(w, bpts)
		fmt.Fprintln(w)
		sc, err := eval.AblationSMPC()
		if err != nil {
			return fmt.Errorf("smpc ablation: %w", err)
		}
		eval.RenderSMPC(w, sc)
		fmt.Fprintln(w)
		dpts, err := eval.AblationDHTLookups(nil)
		if err != nil {
			return fmt.Errorf("dht ablation: %w", err)
		}
		eval.RenderDHTSweep(w, dpts)
		fmt.Fprintln(w)
		mc, err := eval.AblationMiddleboxApproaches()
		if err != nil {
			return fmt.Errorf("middlebox ablation: %w", err)
		}
		eval.RenderMboxApproaches(w, mc)
		fmt.Fprintln(w)
	}
	if o.faults {
		fpts, err := eval.AblationFaultTolerance(nil, 0)
		if err != nil {
			return fmt.Errorf("fault-tolerance sweep: %w", err)
		}
		eval.RenderFaultTolerance(w, fpts)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sgxnet-tables: ")
	var o options
	flag.IntVar(&o.table, "table", 0, "regenerate one table (1-4); 0 = all")
	flag.IntVar(&o.fig, "fig", 0, "regenerate one figure (3); 0 = all")
	flag.BoolVar(&o.ablations, "ablations", false, "run only the ablation experiments")
	flag.BoolVar(&o.faults, "faults", false, "run the fault-tolerance sweep (timing-dependent, excluded from -ablations and the default run)")
	flag.BoolVar(&o.csv, "csv", false, "emit Figure 3 as CSV (for plotting) instead of the text chart")
	flag.Parse()

	if err := emit(os.Stdout, o); err != nil {
		log.Fatal(err)
	}
}
