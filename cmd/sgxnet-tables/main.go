// Command sgxnet-tables regenerates the tables and figures of the
// paper's evaluation (§5) plus the ablations.
//
// Usage:
//
//	sgxnet-tables              # everything
//	sgxnet-tables -table 1     # one table (1–4)
//	sgxnet-tables -fig 3       # Figure 3 sweep
//	sgxnet-tables -ablations   # ablation experiments only
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sgxnet/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sgxnet-tables: ")
	table := flag.Int("table", 0, "regenerate one table (1-4); 0 = all")
	fig := flag.Int("fig", 0, "regenerate one figure (3); 0 = all")
	ablations := flag.Bool("ablations", false, "run only the ablation experiments")
	csv := flag.Bool("csv", false, "emit Figure 3 as CSV (for plotting) instead of the text chart")
	flag.Parse()

	w := os.Stdout
	all := *table == 0 && *fig == 0 && !*ablations

	if *table == 1 || all {
		rows, err := eval.Table1()
		if err != nil {
			log.Fatalf("table 1: %v", err)
		}
		eval.RenderTable1(w, rows)
		fmt.Fprintln(w)
	}
	if *table == 2 || all {
		rows, err := eval.Table2()
		if err != nil {
			log.Fatalf("table 2: %v", err)
		}
		eval.RenderTable2(w, rows)
		fmt.Fprintln(w)
	}
	if *table == 3 || all {
		rows, err := eval.Table3()
		if err != nil {
			log.Fatalf("table 3: %v", err)
		}
		eval.RenderTable3(w, rows)
		fmt.Fprintln(w)
	}
	if *table == 4 || all {
		r, err := eval.Table4()
		if err != nil {
			log.Fatalf("table 4: %v", err)
		}
		eval.RenderTable4(w, r)
		fmt.Fprintln(w)
	}
	if *fig == 3 || all {
		pts, err := eval.Figure3(nil)
		if err != nil {
			log.Fatalf("figure 3: %v", err)
		}
		if *csv {
			fmt.Fprintln(w, "ases,native_cycles,sgx_cycles")
			for _, p := range pts {
				fmt.Fprintf(w, "%d,%d,%d\n", p.N, p.NativeCycles, p.SGXCycles)
			}
		} else {
			eval.RenderFigure3(w, pts)
		}
		fmt.Fprintln(w)
	}
	if *ablations || all {
		bpts, err := eval.AblationBatchSweep(nil)
		if err != nil {
			log.Fatalf("batch ablation: %v", err)
		}
		eval.RenderBatchSweep(w, bpts)
		fmt.Fprintln(w)
		sc, err := eval.AblationSMPC()
		if err != nil {
			log.Fatalf("smpc ablation: %v", err)
		}
		eval.RenderSMPC(w, sc)
		fmt.Fprintln(w)
		dpts, err := eval.AblationDHTLookups(nil)
		if err != nil {
			log.Fatalf("dht ablation: %v", err)
		}
		eval.RenderDHTSweep(w, dpts)
		fmt.Fprintln(w)
		mc, err := eval.AblationMiddleboxApproaches()
		if err != nil {
			log.Fatalf("middlebox ablation: %v", err)
		}
		eval.RenderMboxApproaches(w, mc)
	}
}
