// Command sgxnet-tables regenerates the tables and figures of the
// paper's evaluation (§5) plus the ablations.
//
// Usage:
//
//	sgxnet-tables                  # everything
//	sgxnet-tables -table 1         # one table (1–4)
//	sgxnet-tables -fig 3           # Figure 3 sweep
//	sgxnet-tables -ablations       # ablation experiments only
//	sgxnet-tables -epc-sweep       # EPC oversubscription sweep only
//	sgxnet-tables -xcall-sweep     # switchless-call crossing ablation only
//	sgxnet-tables -load-sweep      # open-loop load sweep (latency percentiles)
//	sgxnet-tables -scale-sweep     # discrete-event scale sweep (thousands of hosts)
//	sgxnet-tables -ratls-sweep     # attested-channel sweep (cold vs warm quote verification)
//	sgxnet-tables -chain-sweep     # trusted NF-chain sweep (depth x batch x rule-set size)
//	sgxnet-tables -faults          # fault-tolerance sweep (wall-clock sensitive)
//	sgxnet-tables -workers 8       # evaluation-engine parallelism (0 = GOMAXPROCS)
//	sgxnet-tables -trace out.trace # also record a deterministic trace (JSONL)
//	sgxnet-tables -trace out.json -trace-format chrome  # Perfetto-viewable
//	sgxnet-tables -series out.csv  # also record windowed time-series metrics
//	sgxnet-tables -series out.om -series-format openmetrics
//	sgxnet-tables -debug-addr :6060                     # pprof/expvar server
package main

import (
	"bytes"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"

	"sgxnet/internal/core"
	"sgxnet/internal/eval"
	"sgxnet/internal/obs"
	"sgxnet/internal/obs/series"
)

// options selects which sections emit produces.
type options struct {
	table        int
	fig          int
	ablations    bool
	epcSweep     bool
	xcallSweep   bool
	loadSweep    bool
	scaleSweep   bool
	ratlsSweep   bool
	chainSweep   bool
	faults       bool
	csv          bool
	workers      int    // evaluation-engine parallelism; 0 = GOMAXPROCS
	trace        string // trace output path; "" disables tracing
	traceFormat  string // "jsonl" (default) or "chrome"
	series       string // series output path; "" disables the sampler layer
	seriesFormat string // "csv" (default) or "openmetrics"
	seriesWindow uint64 // window width in cycles; 0 = series.DefaultWindowCycles
}

// all reports whether every deterministic section should run. The fault
// sweep races real timeouts against goroutine scheduling, so its numbers
// are not byte-reproducible; it only runs on request.
func (o options) all() bool {
	return o.table == 0 && o.fig == 0 && !o.ablations && !o.epcSweep && !o.xcallSweep && !o.loadSweep && !o.scaleSweep && !o.ratlsSweep && !o.chainSweep && !o.faults
}

// emit writes the selected sections. Each section is an independent
// scenario run: it renders into a private buffer on the evaluation
// engine's worker pool, and the buffers are concatenated in canonical
// section order. Everything except the fault sweep is byte-for-byte
// reproducible at any worker count — the golden tests depend on it.
func emit(w io.Writer, o options) error {
	r := eval.NewRunner(o.workers)
	var tr *obs.Trace
	if o.trace != "" {
		// The registry observes every SGX instruction the scenarios
		// execute: platforms created from here on inherit it as their
		// probe. Its counters ride along in the trace's "metrics" track.
		reg := obs.NewRegistry()
		tr = obs.New(reg)
		core.SetDefaultProbe(reg)
		defer core.SetDefaultProbe(nil)
		r.SetTrace(tr)
	}
	var set *series.Set
	if o.series != "" {
		// The windowed sampler layer: instrumented sweeps observe
		// per-window counters and gauges on their virtual clocks. The
		// reduction is order-invariant and tracks are per-cell, so the
		// exported series are byte-identical at any -workers count.
		set = series.NewSet(o.seriesWindow)
		r.SetSeries(set)
	}
	section := func(name string, render func(w io.Writer) error) eval.Section {
		return func() ([]byte, error) {
			var b bytes.Buffer
			if err := render(&b); err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			fmt.Fprintln(&b)
			return b.Bytes(), nil
		}
	}

	var sections []eval.Section
	if o.table == 1 || o.all() {
		sections = append(sections, section("table 1", func(w io.Writer) error {
			rows, err := eval.Table1Traced(tr)
			if err != nil {
				return err
			}
			eval.RenderTable1(w, rows)
			return nil
		}))
	}
	if o.table == 2 || o.all() {
		sections = append(sections, section("table 2", func(w io.Writer) error {
			rows, err := eval.Table2Traced(tr)
			if err != nil {
				return err
			}
			eval.RenderTable2(w, rows)
			return nil
		}))
	}
	if o.table == 3 || o.all() {
		sections = append(sections, section("table 3", func(w io.Writer) error {
			rows, err := eval.Table3Traced(tr)
			if err != nil {
				return err
			}
			eval.RenderTable3(w, rows)
			return nil
		}))
	}
	if o.table == 4 || o.all() {
		sections = append(sections, section("table 4", func(w io.Writer) error {
			res, err := r.Table4At(30)
			if err != nil {
				return err
			}
			eval.RenderTable4(w, res)
			return nil
		}))
	}
	if o.fig == 3 || o.all() {
		sections = append(sections, section("figure 3", func(w io.Writer) error {
			pts, err := r.Figure3(nil)
			if err != nil {
				return err
			}
			if o.csv {
				fmt.Fprintln(w, "ases,native_cycles,sgx_cycles")
				for _, p := range pts {
					fmt.Fprintf(w, "%d,%d,%d\n", p.N, p.NativeCycles, p.SGXCycles)
				}
			} else {
				eval.RenderFigure3(w, pts)
			}
			return nil
		}))
	}
	if o.ablations || o.all() {
		// RenderAblations emits the blank line after each of its four
		// sub-blocks itself, so this section skips the shared trailer.
		sections = append(sections, func() ([]byte, error) {
			var b bytes.Buffer
			s, err := r.Ablations()
			if err != nil {
				return nil, fmt.Errorf("ablations: %w", err)
			}
			eval.RenderAblations(&b, s)
			return b.Bytes(), nil
		})
	}
	if o.epcSweep || o.all() {
		sections = append(sections, section("epc sweep", func(w io.Writer) error {
			pts, err := r.EPCSweep()
			if err != nil {
				return err
			}
			eval.RenderEPCSweep(w, pts)
			return nil
		}))
	}
	if o.xcallSweep || o.all() {
		sections = append(sections, section("xcall sweep", func(w io.Writer) error {
			pts, err := r.XcallSweep()
			if err != nil {
				return err
			}
			eval.RenderXcallSweep(w, pts)
			return nil
		}))
	}
	if o.loadSweep || o.all() {
		sections = append(sections, section("load sweep", func(w io.Writer) error {
			pts, err := r.LoadSweep()
			if err != nil {
				return err
			}
			eval.RenderLoadSweep(w, pts)
			return nil
		}))
	}
	if o.scaleSweep || o.all() {
		sections = append(sections, section("scale sweep", func(w io.Writer) error {
			pts, err := r.ScaleSweep()
			if err != nil {
				return err
			}
			eval.RenderScaleSweep(w, pts)
			return nil
		}))
	}
	if o.ratlsSweep || o.all() {
		sections = append(sections, section("ratls sweep", func(w io.Writer) error {
			pts, err := r.RATLSSweep()
			if err != nil {
				return err
			}
			eval.RenderRATLSSweep(w, pts)
			return nil
		}))
	}
	if o.chainSweep || o.all() {
		sections = append(sections, section("chain sweep", func(w io.Writer) error {
			pts, err := r.ChainSweep()
			if err != nil {
				return err
			}
			eval.RenderChainSweep(w, pts)
			return nil
		}))
	}
	if o.faults {
		sections = append(sections, func() ([]byte, error) {
			fpts, err := r.FaultTolerance(nil, 0)
			if err != nil {
				return nil, fmt.Errorf("fault-tolerance sweep: %w", err)
			}
			var b bytes.Buffer
			eval.RenderFaultTolerance(&b, fpts)
			return b.Bytes(), nil
		})
	}

	outs, err := r.RenderAll(sections)
	if err != nil {
		return err
	}
	for _, out := range outs {
		if _, err := w.Write(out); err != nil {
			return err
		}
	}
	if tr != nil {
		if err := writeTrace(o.trace, o.traceFormat, tr); err != nil {
			return err
		}
	}
	if set != nil {
		if err := writeSeries(o.series, o.seriesFormat, set); err != nil {
			return err
		}
	}
	return nil
}

// writeSeries exports the series set to path in the chosen format.
func writeSeries(path, format string, set *series.Set) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case "", "csv":
		err = series.WriteCSV(f, set)
	case "openmetrics":
		err = series.WriteOpenMetrics(f, set)
	default:
		err = fmt.Errorf("unknown -series-format %q (want csv or openmetrics)", format)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeTrace exports the trace to path in the chosen format.
func writeTrace(path, format string, tr *obs.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	events := tr.Events()
	switch format {
	case "", "jsonl":
		err = obs.WriteJSONL(f, events)
	case "chrome":
		err = obs.WriteChrome(f, events)
	default:
		err = fmt.Errorf("unknown -trace-format %q (want jsonl or chrome)", format)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sgxnet-tables: ")
	var o options
	flag.IntVar(&o.table, "table", 0, "regenerate one table (1-4); 0 = all")
	flag.IntVar(&o.fig, "fig", 0, "regenerate one figure (3); 0 = all")
	flag.BoolVar(&o.ablations, "ablations", false, "run only the ablation experiments")
	flag.BoolVar(&o.epcSweep, "epc-sweep", false, "run only the EPC oversubscription sweep (multi-tenant paging overhead)")
	flag.BoolVar(&o.xcallSweep, "xcall-sweep", false, "run only the switchless-call ablation (ring batching vs synchronous crossings)")
	flag.BoolVar(&o.loadSweep, "load-sweep", false, "run only the open-loop load sweep (latency percentiles under seeded arrivals)")
	flag.BoolVar(&o.scaleSweep, "scale-sweep", false, "run only the discrete-event scale sweep (thousands of ASes/relays, millions of flows on the event kernel)")
	flag.BoolVar(&o.ratlsSweep, "ratls-sweep", false, "run only the attested-channel sweep (cold vs warm RA-TLS quote verification across client counts)")
	flag.BoolVar(&o.chainSweep, "chain-sweep", false, "run only the trusted NF-chain sweep (pipeline depth x xcall batch x rule-set size, native vs SGX)")
	flag.BoolVar(&o.faults, "faults", false, "run the fault-tolerance sweep (timing-dependent, excluded from -ablations and the default run)")
	flag.BoolVar(&o.csv, "csv", false, "emit Figure 3 as CSV (for plotting) instead of the text chart")
	flag.IntVar(&o.workers, "workers", 0, "evaluation-engine worker pool size; 0 = GOMAXPROCS, 1 = serial")
	flag.StringVar(&o.trace, "trace", "", "write a deterministic trace of the run to this file")
	flag.StringVar(&o.traceFormat, "trace-format", "jsonl", "trace format: jsonl (for sgxnet-trace) or chrome (for Perfetto)")
	flag.StringVar(&o.series, "series", "", "write windowed time-series metrics (virtual-clock windows) to this file")
	flag.StringVar(&o.seriesFormat, "series-format", "csv", "series format: csv (for sgxnet-trace -series) or openmetrics")
	flag.Uint64Var(&o.seriesWindow, "series-window", 0, "series window width in cycles; 0 = the default 4Mi")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. :6060); off by default")
	flag.Parse()

	if *debugAddr != "" {
		// Wall-clock profiling of the harness itself (worker-pool
		// utilization, GC); the deterministic cost model never reads it.
		expvar.Publish("workers", expvar.Func(func() any { return o.workers }))
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
	}

	if err := emit(os.Stdout, o); err != nil {
		log.Fatal(err)
	}
}
