package sgxnet

import (
	"sgxnet/internal/attest"
	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
)

// The facade re-exports the library's primary types so applications read
// naturally against one import, while the implementations stay in
// focused internal packages.

type (
	// Platform is a simulated SGX machine: CPU-held secrets, an EPC, and
	// launched enclaves.
	Platform = core.Platform
	// PlatformConfig parameterizes a platform.
	PlatformConfig = core.PlatformConfig
	// Enclave is a measured, isolated execution container.
	Enclave = core.Enclave
	// Env is the trusted-side view an enclave handler receives.
	Env = core.Env
	// Program is the code loaded into an enclave; its Image() is the
	// measured identity.
	Program = core.Program
	// Handler is an enclave entry point.
	Handler = core.Handler
	// Signer holds an enclave-signing key (MRSIGNER identity).
	Signer = core.Signer
	// Measurement is a SHA-256 enclave or signer identity.
	Measurement = core.Measurement
	// Meter tallies SGX(U) and normal instructions.
	Meter = core.Meter
	// Tally is a Meter snapshot.
	Tally = core.Tally

	// Network is the in-memory network substrate.
	Network = netsim.Network
	// Host is a machine on the network.
	Host = netsim.SimHost
	// Conn is a reliable bidirectional connection.
	Conn = netsim.Conn
	// IOShim bridges enclave OCALLs to the network.
	IOShim = netsim.IOShim
	// MultiHost routes OCALLs to mounted host services by prefix.
	MultiHost = netsim.MultiHost

	// Quote is a signed remote-attestation statement.
	Quote = attest.Quote
	// Identity is an attested enclave identity.
	Identity = attest.Identity
	// AttestPolicy is a challenger's quote-acceptance policy.
	AttestPolicy = attest.Policy
	// AttestAgent is a host's quoting-enclave runtime.
	AttestAgent = attest.Agent
	// TargetState is the in-enclave state of an attestation target.
	TargetState = attest.TargetState
	// ChallengerState is the in-enclave state of an attestation
	// challenger.
	ChallengerState = attest.ChallengerState
	// Session is an attested session (peer identity + secure channel).
	Session = attest.Session
)

// NewNetwork creates an empty simulated network.
func NewNetwork() *Network { return netsim.New() }

// NewArchSigner generates the architectural ("Intel") signer that
// provisions quoting enclaves. One per simulated world.
func NewArchSigner() (*Signer, error) { return core.NewSigner() }

// NewSigner generates an enclave-signing keypair.
func NewSigner() (*Signer, error) { return core.NewSigner() }

// NewSGXHost adds an SGX-enabled host to the network: a platform
// provisioned with the architectural signer and a running quoting
// enclave, ready to serve remote attestations.
func NewSGXHost(net *Network, name string, arch *Signer) (*Host, error) {
	plat, err := core.NewPlatform(name, core.PlatformConfig{
		EPCFrames:  1024,
		ArchSigner: arch.MRSigner(),
	})
	if err != nil {
		return nil, err
	}
	host, err := net.AddHostWithPlatform(name, plat)
	if err != nil {
		return nil, err
	}
	if _, err := attest.NewAgent(host, arch); err != nil {
		return nil, err
	}
	return host, nil
}

// NewPlainHost adds a host without SGX (baseline machines, web servers).
func NewPlainHost(net *Network, name string) (*Host, error) {
	return net.AddHost(name, core.PlatformConfig{EPCFrames: 64})
}

// MeasureProgram computes the MRENCLAVE a program will have when
// launched — what verifiers whitelist (the deterministic-build
// assumption of the paper's §4).
func MeasureProgram(p *Program) Measurement { return core.MeasureProgram(p) }

// AddTargetHandlers mounts the attestation-target role on a program.
func AddTargetHandlers(p *Program, st *TargetState) { attest.AddTargetHandlers(p, st) }

// AddChallengerHandlers mounts the attestation-challenger role.
func AddChallengerHandlers(p *Program, st *ChallengerState) { attest.AddChallengerHandlers(p, st) }

// NewTargetState creates attestation-target state.
func NewTargetState() *TargetState { return attest.NewTargetState() }

// NewChallengerState creates challenger state with the given policy.
func NewChallengerState(p AttestPolicy) *ChallengerState { return attest.NewChallengerState(p) }

// NewMsgShim creates a control-plane OCALL shim charging I/O costs to
// the meter.
func NewMsgShim(h *Host, m *Meter) *IOShim { return netsim.NewMsgShim(h, m) }

// NewIOShim creates the data-plane OCALL shim (per-packet enclave
// boundary costs, Table 2 model).
func NewIOShim(h *Host, m *Meter) *IOShim { return netsim.NewIOShim(h, m) }

// Challenge drives the challenger side of a remote attestation over
// conn; on success the enclave holds a Session for the returned connID.
func Challenge(enc *Enclave, shim *IOShim, conn *Conn, wantDH bool) (uint32, Identity, error) {
	return attest.Challenge(enc, shim, conn, wantDH)
}

// Respond drives the target side of a remote attestation over conn.
func Respond(enc *Enclave, shim *IOShim, host *Host, conn *Conn) (uint32, error) {
	return attest.Respond(enc, shim, host, conn)
}

// CyclesOf converts an instruction tally to estimated CPU cycles with
// the paper's formula (10,000 cycles per SGX(U) instruction + 1.8 per
// normal instruction).
func CyclesOf(sgxU, normal uint64) uint64 { return core.CyclesOf(sgxU, normal) }
