module sgxnet

go 1.22
