package sgxnet_test

import (
	"testing"

	"sgxnet"
)

// TestFacadeAttestationFlow exercises the public API end to end: two SGX
// hosts, a target and a challenger enclave, remote attestation with DH,
// and a message over the bootstrapped channel.
func TestFacadeAttestationFlow(t *testing.T) {
	net := sgxnet.NewNetwork()
	arch, err := sgxnet.NewArchSigner()
	if err != nil {
		t.Fatal(err)
	}
	hostT, err := sgxnet.NewSGXHost(net, "server", arch)
	if err != nil {
		t.Fatal(err)
	}
	hostC, err := sgxnet.NewSGXHost(net, "client", arch)
	if err != nil {
		t.Fatal(err)
	}

	signer, err := sgxnet.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	tst := sgxnet.NewTargetState()
	tprog := &sgxnet.Program{Name: "facade-target", Version: "1", Handlers: map[string]sgxnet.Handler{}}
	sgxnet.AddTargetHandlers(tprog, tst)
	target, err := hostT.Platform().Launch(tprog, signer)
	if err != nil {
		t.Fatal(err)
	}
	tShim := sgxnet.NewMsgShim(hostT, target.Meter())
	var mhT sgxnet.MultiHost
	mhT.Mount("msg.", tShim)
	target.BindHost(&mhT)

	cst := sgxnet.NewChallengerState(sgxnet.AttestPolicy{
		AllowedEnclaves: []sgxnet.Measurement{sgxnet.MeasureProgram(tprog)},
	})
	cprog := &sgxnet.Program{Name: "facade-challenger", Version: "1", Handlers: map[string]sgxnet.Handler{}}
	sgxnet.AddChallengerHandlers(cprog, cst)
	challenger, err := hostC.Platform().Launch(cprog, signer)
	if err != nil {
		t.Fatal(err)
	}
	cShim := sgxnet.NewMsgShim(hostC, challenger.Meter())
	var mhC sgxnet.MultiHost
	mhC.Mount("msg.", cShim)
	challenger.BindHost(&mhC)

	l, err := hostT.Listen("app")
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		cid uint32
		err error
	}
	ch := make(chan res, 1)
	go func() {
		sc, err := l.Accept()
		if err != nil {
			ch <- res{0, err}
			return
		}
		cid, err := sgxnet.Respond(target, tShim, hostT, sc)
		ch <- res{cid, err}
	}()
	conn, err := hostC.Dial("server", "app")
	if err != nil {
		t.Fatal(err)
	}
	ccid, id, err := sgxnet.Challenge(challenger, cShim, conn, true)
	if err != nil {
		t.Fatal(err)
	}
	if id.MREnclave != target.MREnclave() {
		t.Fatal("attested identity mismatch")
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}

	// The bootstrapped channels interoperate.
	cs, ok := cst.Session(ccid)
	if !ok || cs.Channel == nil {
		t.Fatal("challenger session missing")
	}
	ts, ok := tst.Session(r.cid)
	if !ok || ts.Channel == nil {
		t.Fatal("target session missing")
	}
	m := sgxnet.Meter{}
	sealed, err := cs.Channel.Seal(&m, []byte("hello enclave"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ts.Channel.Open(&m, sealed)
	if err != nil || string(got) != "hello enclave" {
		t.Fatalf("%q %v", got, err)
	}
	if sgxnet.CyclesOf(1, 10) != 10_018 {
		t.Fatal("cycle formula broken")
	}
}
