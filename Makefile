# Convenience targets; CI runs the same commands directly.

.PHONY: build test race bench bench-smoke tables trace

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# bench regenerates BENCH_results.json — the committed perf baseline.
# Run it on an idle machine; the JSON records GOMAXPROCS and the date.
bench:
	go run ./cmd/benchjson -out BENCH_results.json

# bench-smoke is the CI guard: every benchmark must still run (one
# iteration each), without asserting anything about its speed.
bench-smoke:
	go test -run '^$$' -bench=. -benchtime=1x ./...

tables:
	go run ./cmd/sgxnet-tables

# trace records a deterministic trace of the full deterministic run and
# validates it with the analyzer: well-formed, and named spans must
# explain >= 95% of the reported run totals.
trace:
	go run ./cmd/sgxnet-tables -trace out.trace > /dev/null
	go run ./cmd/sgxnet-trace -check -min-coverage 0.95 out.trace
