# Convenience targets; CI runs the same commands directly.

.PHONY: build test race bench bench-smoke bench-gate tables trace series ratls chain

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# bench regenerates BENCH_results.json — the committed perf baseline.
# Run it on an idle machine; the JSON records GOMAXPROCS and the date.
bench:
	go run ./cmd/benchjson -out BENCH_results.json

# bench-smoke is the CI guard: every benchmark must still run (one
# iteration each), without asserting anything about its speed.
bench-smoke:
	go test -run '^$$' -bench=. -benchtime=1x ./...

# bench-gate runs the six headline benchmarks fresh and fails if any
# regressed past 25% of the committed BENCH_baseline.json. Run on the
# same class of machine as the baseline; CI uses a wider threshold
# because two of the six metrics are wall-clock.
bench-gate:
	go run ./cmd/benchjson -out /tmp/bench-gate.json -benchtime 1x \
		-pattern 'FullSweep|ScaleSweep|LoadSweep|XcallSweep|RATLSSweep|ChainSweep'
	go run ./cmd/benchjson -gate -results /tmp/bench-gate.json

tables:
	go run ./cmd/sgxnet-tables

# trace records a deterministic trace of the full deterministic run and
# validates it with the analyzer: well-formed, and named spans must
# explain >= 95% of the reported run totals.
trace:
	go run ./cmd/sgxnet-tables -trace out.trace > /dev/null
	go run ./cmd/sgxnet-trace -check -min-coverage 0.95 out.trace

# ratls runs the attested-channel acceptance gates: the -ratls-sweep
# golden transcript, its workers-1-vs-8 byte-equivalence, and the
# sharded verification cache's concurrency property under -race.
ratls:
	go test ./cmd/sgxnet-tables -run 'TestGolden$$|TestRATLSSweepWorkersEquivalence' -v
	go test -race ./internal/ratls -v

# chain runs the trusted NF-chain acceptance gates: the -chain-sweep
# golden transcript, its workers-1-vs-8 byte-equivalence, and the
# nfchain package (stages, rule engine, admission) under -race.
chain:
	go test ./cmd/sgxnet-tables -run 'TestGolden$$|TestChainSweepWorkersEquivalence' -v
	go test -race ./internal/nfchain -v

# series records the windowed time-series export of the load sweep and
# runs the analyzer over it: top movers, monotone-growth gauges, and the
# multi-window SLO burn-rate alerts.
series:
	go run ./cmd/sgxnet-tables -load-sweep -series out.csv > /dev/null
	go run ./cmd/sgxnet-trace -series out.csv
