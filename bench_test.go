package sgxnet_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablation benches DESIGN.md calls out. Each
// iteration regenerates the corresponding experiment end to end, so
// ns/op is the cost of reproducing that artifact; the experiment's own
// result (instruction tallies) is reported through custom metrics.
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"runtime"
	"testing"

	"sgxnet/internal/eval"
	"sgxnet/internal/eval/scale"
	"sgxnet/internal/topo"
	"sgxnet/internal/tor"

	"sgxnet/internal/bgp"
	"sgxnet/internal/sdnctl"
)

// benchWorkerCounts is the worker-count axis for the engine benches: 1
// and GOMAXPROCS. On a single-core runner the two collapse to the same
// count; emitting "workers=1" twice would make go test disambiguate the
// second as "workers=1#01", which then lands in BENCH_results.json as a
// duplicate key — so the collapsed case runs once.
func benchWorkerCounts() []int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// BenchmarkFullSweep runs the Figure 3 sweep — the transcript's dominant
// workload — through the evaluation engine at worker counts 1 and
// GOMAXPROCS. The ratio of the two ns/op numbers is the engine's
// speedup on this machine (1× on a single-core runner, where the
// caller-runs pool degrades to serial by design); BENCH_results.json
// records both.
func BenchmarkFullSweep(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := eval.NewRunner(workers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pts, err := r.Figure3(nil)
				if err != nil {
					b.Fatal(err)
				}
				if len(pts) != 10 {
					b.Fatal("missing points")
				}
			}
		})
	}
}

// BenchmarkTable1RemoteAttestation regenerates Table 1 (remote
// attestation instruction counts, with and without DH).
func BenchmarkTable1RemoteAttestation(b *testing.B) {
	for _, dh := range []struct {
		name string
		dh   bool
	}{{"noDH", false}, {"DH", true}} {
		b.Run(dh.name, func(b *testing.B) {
			b.ReportAllocs()
			var lastTarget uint64
			for i := 0; i < b.N; i++ {
				rows, err := eval.Table1()
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Role == "target" && r.WithDH == dh.dh {
						lastTarget = r.Tally.Normal
					}
				}
			}
			b.ReportMetric(float64(lastTarget), "target-normal-inst")
		})
	}
}

// BenchmarkTable2PacketIO regenerates Table 2 (enclave packet I/O).
func BenchmarkTable2PacketIO(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		n      int
		crypto bool
	}{
		{"1pkt-plain", 1, false},
		{"1pkt-crypto", 1, true},
		{"100pkt-plain", 100, false},
		{"100pkt-crypto", 100, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			var last uint64
			for i := 0; i < b.N; i++ {
				t, err := eval.MeasureSend(cfg.n, cfg.crypto)
				if err != nil {
					b.Fatal(err)
				}
				last = t.Normal
			}
			b.ReportMetric(float64(last), "normal-inst")
		})
	}
}

// BenchmarkTable3AttestationCounts regenerates Table 3 (attestations per
// design).
func BenchmarkTable3AttestationCounts(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkTable4InterDomain regenerates Table 4 (30-AS SDN routing,
// native and SGX).
func BenchmarkTable4InterDomain(b *testing.B) {
	tp, err := topo.Random(topo.Config{N: 30, Seed: eval.CanonicalSeed, PrefJitter: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("native", func(b *testing.B) {
		b.ReportAllocs()
		var last uint64
		for i := 0; i < b.N; i++ {
			rep, err := sdnctl.RunNative(tp)
			if err != nil {
				b.Fatal(err)
			}
			last = rep.InterDomain.Normal
		}
		b.ReportMetric(float64(last), "normal-inst")
	})
	b.Run("sgx", func(b *testing.B) {
		b.ReportAllocs()
		var last uint64
		for i := 0; i < b.N; i++ {
			rep, err := sdnctl.RunSGX(tp)
			if err != nil {
				b.Fatal(err)
			}
			last = rep.InterDomain.Normal
		}
		b.ReportMetric(float64(last), "normal-inst")
	})
}

// BenchmarkFigure3Scaling regenerates the Figure 3 sweep (a short one:
// the full 5–50 sweep runs via cmd/sgxnet-tables -fig 3).
func BenchmarkFigure3Scaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := eval.Figure3([]int{5, 15, 25})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 3 {
			b.Fatal("missing points")
		}
	}
}

// BenchmarkEPCSweep regenerates the EPC oversubscription sweep — the
// multi-tenant paging experiment — at worker counts 1 and GOMAXPROCS,
// and reports the worst-case (4 tenants, ratio 2.0, CLOCK) per-op
// overhead as a custom metric so BENCH_results.json tracks the paging
// penalty over time.
func BenchmarkEPCSweep(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := eval.NewRunner(workers)
			b.ReportAllocs()
			var worst float64
			for i := 0; i < b.N; i++ {
				pts, err := r.EPCSweep()
				if err != nil {
					b.Fatal(err)
				}
				worst = 0
				for _, p := range pts {
					if p.Overhead > worst {
						worst = p.Overhead
					}
				}
			}
			b.ReportMetric(worst, "worst-overhead-x")
		})
	}
}

// BenchmarkXcallSweep regenerates the switchless-call ablation at
// worker counts 1 and GOMAXPROCS, and reports the minimum speedup over
// the batch ≥16 points as a custom metric — the acceptance bar is 2×,
// so BENCH_results.json tracks how much headroom the ring model keeps.
func BenchmarkXcallSweep(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := eval.NewRunner(workers)
			b.ReportAllocs()
			var minSpeedup float64
			for i := 0; i < b.N; i++ {
				pts, err := r.XcallSweep()
				if err != nil {
					b.Fatal(err)
				}
				minSpeedup = 0
				for _, p := range pts {
					if p.Mode != "switchless" || p.Batch < 16 {
						continue
					}
					if minSpeedup == 0 || p.Speedup < minSpeedup {
						minSpeedup = p.Speedup
					}
				}
			}
			b.ReportMetric(minSpeedup, "min-speedup-x")
		})
	}
}

// BenchmarkLoadSweep regenerates the open-loop load sweep at worker
// counts 1 and GOMAXPROCS, and reports the worst tail amplification
// (max p999/p50 across the grid) as a custom metric — the number that
// would regress first if a model change put hidden cost spikes on a
// request path.
func BenchmarkLoadSweep(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := eval.NewRunner(workers)
			b.ReportAllocs()
			var worst float64
			for i := 0; i < b.N; i++ {
				pts, err := r.LoadSweep()
				if err != nil {
					b.Fatal(err)
				}
				worst = 0
				for _, p := range pts {
					if p.P50 == 0 {
						continue
					}
					if amp := float64(p.P999) / float64(p.P50); amp > worst {
						worst = amp
					}
				}
			}
			b.ReportMetric(worst, "worst-p999/p50-x")
		})
	}
}

// BenchmarkScaleSweep measures the discrete-event kernel. The sdn-1024
// sub-bench drives the 1024-AS Figure 3 cell alone — its ns/op is the
// cost of simulating 4096 route updates through a serialized
// controller, and events/sec is the kernel's raw throughput at that
// cell. The workers=N sub-benches run the full canonical grid (up to
// 4096 ASes and a million-flow Tor cell) through the evaluation
// engine; both land in BENCH_results.json so kernel regressions are
// diffable.
func BenchmarkScaleSweep(b *testing.B) {
	b.Run("sdn-1024", func(b *testing.B) {
		s, err := scale.ParseSpec("sdn:ases=1024,updates=4,rate=100,seed=42")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		var events uint64
		for i := 0; i < b.N; i++ {
			res, err := scale.Run(s)
			if err != nil {
				b.Fatal(err)
			}
			events += res.Events
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	})
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := eval.NewRunner(workers)
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				pts, err := r.ScaleSweep()
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range pts {
					events += p.Events
				}
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkRATLSSweep regenerates the attested-channel sweep at worker
// counts 1 and GOMAXPROCS, and reports the worst warm/cold amortization
// ratio across the 10^6-client cells as a custom metric — the number the
// 5% acceptance bar bounds, so BENCH_results.json tracks how much
// headroom the verification cache keeps.
func BenchmarkRATLSSweep(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := eval.NewRunner(workers)
			b.ReportAllocs()
			var worst float64
			for i := 0; i < b.N; i++ {
				pts, err := r.RATLSSweep()
				if err != nil {
					b.Fatal(err)
				}
				worst = 0
				for _, p := range pts {
					if p.Clients == 1_000_000 && p.WarmOverCold > worst {
						worst = p.WarmOverCold
					}
				}
			}
			b.ReportMetric(worst, "worst-warm/cold-ratio")
		})
	}
}

// BenchmarkChainSweep regenerates the trusted NF-chain sweep at worker
// counts 1 and GOMAXPROCS, and reports the worst SGX/native per-hop
// cycle ratio at batch 64 as a custom metric — the composition tax the
// chain-sweep acceptance bar bounds. A regression here means either the
// xcall amortization or the in-enclave rule engine got more expensive
// relative to the native pipeline.
func BenchmarkChainSweep(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := eval.NewRunner(workers)
			b.ReportAllocs()
			var worst float64
			for i := 0; i < b.N; i++ {
				pts, err := r.ChainSweep()
				if err != nil {
					b.Fatal(err)
				}
				native := map[[2]int]uint64{}
				for _, p := range pts {
					if p.Mode == "native" {
						native[[2]int{p.Depth, p.Rules}] = p.PerHop
					}
				}
				worst = 0
				for _, p := range pts {
					if p.Mode != "sgx" || p.Batch != 64 {
						continue
					}
					if n := native[[2]int{p.Depth, p.Rules}]; n > 0 {
						if ratio := float64(p.PerHop) / float64(n); ratio > worst {
							worst = ratio
						}
					}
				}
			}
			b.ReportMetric(worst, "worst-sgx/native-hop-ratio")
		})
	}
}

// BenchmarkAblationBatching sweeps enclave I/O batch sizes.
func BenchmarkAblationBatching(b *testing.B) {
	b.ReportAllocs()
	var perPkt uint64
	for i := 0; i < b.N; i++ {
		pts, err := eval.AblationBatchSweep([]int{1, 10, 100})
		if err != nil {
			b.Fatal(err)
		}
		perPkt = pts[len(pts)-1].PerPacket
	}
	b.ReportMetric(float64(perPkt), "batched-normal-inst/pkt")
}

// BenchmarkAblationSMPC runs the GMW private route comparison — the
// expensive alternative the SGX design replaces (§3.1).
func BenchmarkAblationSMPC(b *testing.B) {
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		c, err := eval.AblationSMPC()
		if err != nil {
			b.Fatal(err)
		}
		ratio = c.CostRatio
	}
	b.ReportMetric(ratio, "smpc-vs-sgx-ratio")
}

// BenchmarkAblationDHTLookup measures directory-less membership lookups.
func BenchmarkAblationDHTLookup(b *testing.B) {
	b.ReportAllocs()
	var hops float64
	for i := 0; i < b.N; i++ {
		pts, err := eval.AblationDHTLookups([]int{64})
		if err != nil {
			b.Fatal(err)
		}
		hops = pts[0].AvgHops
	}
	b.ReportMetric(hops, "avg-hops")
}

// BenchmarkAblationTorCircuit measures end-to-end circuit build + fetch
// through each deployment mode.
func BenchmarkAblationTorCircuit(b *testing.B) {
	for _, mode := range []tor.DeployMode{tor.ModeBaseline, tor.ModeSGXORs} {
		b.Run(mode.String(), func(b *testing.B) {
			tn, err := tor.Deploy(tor.NetworkConfig{Mode: mode, Authorities: 3, Relays: 3, Exits: 2, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			client, err := tn.NewClient("bench-client", 1)
			if err != nil {
				b.Fatal(err)
			}
			consensus, err := tn.Discover(client)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				path, err := client.PickPath(consensus, 3)
				if err != nil {
					b.Fatal(err)
				}
				circ, err := client.BuildCircuit(path)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := circ.Get(tor.WebHost+"|"+tor.WebService, []byte("bench")); err != nil {
					b.Fatal(err)
				}
				circ.Close()
			}
		})
	}
}

// BenchmarkAblationRouteCompute isolates the centralized path
// computation from the deployment costs.
func BenchmarkAblationRouteCompute(b *testing.B) {
	for _, n := range []int{10, 30, 50} {
		b.Run(bname(n), func(b *testing.B) {
			tp, err := topo.Random(topo.Config{N: n, Seed: eval.CanonicalSeed, PrefJitter: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var updates int
			for i := 0; i < b.N; i++ {
				_, st := bgp.ComputeAll(tp)
				updates = st.Updates
			}
			b.ReportMetric(float64(updates), "route-updates")
		})
	}
}

func bname(n int) string {
	return "n=" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}
