// Package netsim is the network substrate the paper's applications run on:
// an in-memory message network connecting simulated SGX hosts. It provides
// addressable hosts, reliable bidirectional connections (a net.Conn-like
// Send/Recv pair), a request/response helper, link statistics, and the
// enclave packet-I/O shim whose cost accounting reproduces Table 2.
//
// The substrate is deliberately synchronous-friendly: connections are
// backed by buffered channels, so protocol code can be written as
// straight-line request/response logic (the style of the paper's
// controller and attestation flows) while still supporting concurrent
// hosts.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sgxnet/internal/core"
	"sgxnet/internal/netsim/des"
)

// Network connects hosts by name.
type Network struct {
	mu    sync.Mutex
	hosts map[string]*SimHost
	conns map[*Conn]struct{}

	// faults, when set, is the installed disturbance plan consulted on
	// every Send (see faults.go).
	faults atomic.Pointer[FaultSchedule]

	// kernel, when set, is the discrete-event scheduler the fault
	// engine's delay/jitter/reorder pipeline rides: delayed deliveries
	// become virtual-clock events instead of wall-clock sleeps.
	kernel atomic.Pointer[des.Kernel]

	// Stats
	messages atomic.Uint64
	bytes    atomic.Uint64
}

// New creates an empty network.
func New() *Network {
	return &Network{hosts: make(map[string]*SimHost), conns: make(map[*Conn]struct{})}
}

// SetFaults installs a fault schedule; nil removes it. Install before
// traffic starts — the virtual clock counts from the first Send the
// schedule observes.
func (n *Network) SetFaults(s *FaultSchedule) { n.faults.Store(s) }

// Faults returns the installed fault schedule, if any.
func (n *Network) Faults() *FaultSchedule { return n.faults.Load() }

// SetKernel attaches a discrete-event kernel; nil detaches it. With a
// kernel attached, the fault engine's latency/jitter delays and reorder
// holds are realized as virtual-clock events — deterministic per link
// and free of real-time dependence — instead of wall-clock sleeps and
// timers. The kernel must be draining (des.Kernel.Background) while the
// goroutine-driven protocol rigs run, or delayed deliveries would sit
// in the heap forever. Attach before traffic starts.
func (n *Network) SetKernel(k *des.Kernel) { n.kernel.Store(k) }

// Kernel returns the attached discrete-event kernel, if any.
func (n *Network) Kernel() *des.Kernel { return n.kernel.Load() }

// Messages reports the total messages delivered.
func (n *Network) Messages() uint64 { return n.messages.Load() }

// Bytes reports the total payload bytes delivered.
func (n *Network) Bytes() uint64 { return n.bytes.Load() }

// SimHost is one machine on the network: an addressable node that owns a
// simulated SGX platform and a set of listening services.
type SimHost struct {
	name string
	net  *Network
	plat *core.Platform
	down atomic.Bool

	mu        sync.Mutex
	listeners map[string]*Listener
}

// AddHost creates a host with a fresh SGX platform.
func (n *Network) AddHost(name string, cfg core.PlatformConfig) (*SimHost, error) {
	plat, err := core.NewPlatform(name, cfg)
	if err != nil {
		return nil, err
	}
	return n.AddHostWithPlatform(name, plat)
}

// AddHostWithPlatform registers a host backed by an existing platform.
func (n *Network) AddHostWithPlatform(name string, plat *core.Platform) (*SimHost, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.hosts[name]; dup {
		return nil, fmt.Errorf("netsim: duplicate host %q", name)
	}
	h := &SimHost{name: name, net: n, plat: plat, listeners: make(map[string]*Listener)}
	n.hosts[name] = h
	return h, nil
}

// RemoveHost drops a host from the network (modelling a crash — the
// denial-of-service an SGX adversary can always inflict). Its listeners
// stop accepting.
func (n *Network) RemoveHost(name string) {
	n.mu.Lock()
	h := n.hosts[name]
	delete(n.hosts, name)
	n.mu.Unlock()
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, l := range h.listeners {
		l.close()
	}
	h.listeners = map[string]*Listener{}
}

// Crash takes a host down without deregistering it: listeners close,
// live connections touching the host die, and dials to it fail with
// ErrHostDown until Restart. This models a reboot rather than
// RemoveHost's permanent disappearance.
func (n *Network) Crash(name string) {
	n.mu.Lock()
	h := n.hosts[name]
	var victims []*Conn
	for c := range n.conns {
		select {
		case <-c.closed: // already dead; drop the registry entry
			delete(n.conns, c)
		default:
			if c.local == name || c.remote == name {
				victims = append(victims, c)
				delete(n.conns, c)
			}
		}
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
	if h == nil {
		return
	}
	h.down.Store(true)
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, l := range h.listeners {
		l.close()
	}
	h.listeners = map[string]*Listener{}
}

// Restart brings a crashed host back up. Reachability returns; services
// must be re-registered with Listen (a reboot forgets its sockets).
func (n *Network) Restart(name string) {
	n.mu.Lock()
	h := n.hosts[name]
	n.mu.Unlock()
	if h != nil {
		h.down.Store(false)
	}
}

// Down reports whether a host is currently crashed.
func (n *Network) Down(name string) bool {
	n.mu.Lock()
	h := n.hosts[name]
	n.mu.Unlock()
	return h != nil && h.down.Load()
}

// Host looks up a host by name.
func (n *Network) Host(name string) (*SimHost, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[name]
	return h, ok
}

// Hosts returns the names of all registered hosts.
func (n *Network) Hosts() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.hosts))
	for name := range n.hosts {
		out = append(out, name)
	}
	return out
}

// Name returns the host's network name.
func (h *SimHost) Name() string { return h.name }

// Platform returns the host's SGX platform.
func (h *SimHost) Platform() *core.Platform { return h.plat }

// Network returns the network the host is attached to.
func (h *SimHost) Network() *Network { return h.net }

// connBuf is the per-direction channel buffer of a connection.
const connBuf = 256

// Conn is one end of a reliable bidirectional connection.
type Conn struct {
	net    *Network
	local  string
	remote string
	send   chan []byte
	recv   chan []byte
	closed chan struct{}
	once   *sync.Once // shared by both ends

	faultMu sync.Mutex
	corrupt int // messages to corrupt (bit-flip) before delivery
	drop    int // messages to silently drop
}

// InjectCorrupt flips one bit in each of the next n payloads sent from
// this end — an on-path attacker or a faulty link. Protocol code is
// expected to detect it (MACs, onion layers, record tags).
func (c *Conn) InjectCorrupt(n int) {
	c.faultMu.Lock()
	c.corrupt += n
	c.faultMu.Unlock()
}

// InjectDrop silently discards the next n payloads sent from this end.
func (c *Conn) InjectDrop(n int) {
	c.faultMu.Lock()
	c.drop += n
	c.faultMu.Unlock()
}

// ErrClosed is returned on operations against a closed connection.
var ErrClosed = errors.New("netsim: connection closed")

// ErrNoRoute is returned when dialing an unknown host or service.
var ErrNoRoute = errors.New("netsim: no route to host/service")

// ErrHostDown is returned when dialing a crashed host.
var ErrHostDown = errors.New("netsim: host down")

// ErrTimeout is returned by RecvTimeout when the deadline expires. The
// connection stays usable — timeouts are how protocol drivers detect
// loss and decide to retry.
var ErrTimeout = errors.New("netsim: receive timed out")

// Send delivers a payload to the peer. The payload is copied.
func (c *Conn) Send(p []byte) error {
	cp := append([]byte(nil), p...)
	c.faultMu.Lock()
	if c.drop > 0 {
		c.drop--
		c.faultMu.Unlock()
		c.net.messages.Add(1) // the sender believes it sent
		return nil
	}
	if c.corrupt > 0 && len(cp) > 0 {
		c.corrupt--
		// Flip a bit near the head of the payload: fixed-size frames
		// (cells) are zero-padded at the tail, where a flip would be
		// invisible to the receiver.
		idx := 9
		if idx >= len(cp) {
			idx = len(cp) / 2
		}
		cp[idx] ^= 0x40
	}
	c.faultMu.Unlock()
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	if plan := c.net.faults.Load(); plan != nil {
		if !plan.process(c.net, c.local, c.remote, cp, c.deliver) {
			// Consumed by the schedule: dropped, held for reordering, or
			// delivered asynchronously after its scheduled delay.
			return nil
		}
	}
	select {
	case c.send <- cp:
		c.net.messages.Add(1)
		c.net.bytes.Add(uint64(len(p)))
		return nil
	case <-c.closed:
		return ErrClosed
	}
}

// deliver pushes an (engine-scheduled) payload to the peer, dropping it
// if the connection has died in the meantime.
func (c *Conn) deliver(p []byte) {
	// Prefer the buffered channel even when the connection has closed:
	// Recv drains buffered payloads before reporting closure, so a
	// delayed in-flight message that lands just after a close is still
	// readable — like data flushed by TCP before a FIN.
	select {
	case c.send <- p:
		c.net.messages.Add(1)
		c.net.bytes.Add(uint64(len(p)))
		return
	default:
	}
	select {
	case c.send <- p:
		c.net.messages.Add(1)
		c.net.bytes.Add(uint64(len(p)))
	case <-c.closed:
	}
}

// Recv blocks for the next payload from the peer.
func (c *Conn) Recv() ([]byte, error) {
	select {
	case p, ok := <-c.recv:
		if !ok {
			return nil, ErrClosed
		}
		return p, nil
	case <-c.closed:
		// Drain anything already delivered before reporting closure.
		select {
		case p, ok := <-c.recv:
			if ok {
				return p, nil
			}
		default:
		}
		return nil, ErrClosed
	}
}

// RecvTimeout blocks for the next payload, giving up after d. A zero or
// negative d means no deadline. On ErrTimeout the connection remains
// usable; a late payload stays queued for the next receive.
func (c *Conn) RecvTimeout(d time.Duration) ([]byte, error) {
	if d <= 0 {
		return c.Recv()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case p, ok := <-c.recv:
		if !ok {
			return nil, ErrClosed
		}
		return p, nil
	case <-c.closed:
		select {
		case p, ok := <-c.recv:
			if ok {
				return p, nil
			}
		default:
		}
		return nil, ErrClosed
	case <-timer.C:
		return nil, ErrTimeout
	}
}

// Close tears down both ends.
func (c *Conn) Close() {
	c.once.Do(func() { close(c.closed) })
}

// LocalHost and RemoteHost name the endpoints.
func (c *Conn) LocalHost() string  { return c.local }
func (c *Conn) RemoteHost() string { return c.remote }

// Request sends p and waits for a single reply — the request/response
// idiom used by the controller protocols.
func (c *Conn) Request(p []byte) ([]byte, error) {
	if err := c.Send(p); err != nil {
		return nil, err
	}
	return c.Recv()
}

// Listener accepts inbound connections on a (host, service) address.
type Listener struct {
	host    *SimHost
	service string
	backlog chan *Conn
	done    chan struct{}
	once    sync.Once
}

// Accept blocks for the next inbound connection.
func (l *Listener) Accept() (*Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// Close stops the listener and frees the service name for reuse.
func (l *Listener) Close() {
	l.close()
	if l.host != nil {
		l.host.mu.Lock()
		if l.host.listeners[l.service] == l {
			delete(l.host.listeners, l.service)
		}
		l.host.mu.Unlock()
	}
}

func (l *Listener) close() { l.once.Do(func() { close(l.done) }) }

// Listen registers a service on the host.
func (h *SimHost) Listen(service string) (*Listener, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.listeners[service]; dup {
		return nil, fmt.Errorf("netsim: %s already listening on %q", h.name, service)
	}
	l := &Listener{host: h, service: service, backlog: make(chan *Conn, 64), done: make(chan struct{})}
	h.listeners[service] = l
	return l, nil
}

// Serve accepts connections and handles each in its own goroutine until
// the listener closes.
func (l *Listener) Serve(handle func(*Conn)) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go handle(c)
	}
}

// Dial opens a connection from this host to a service on a remote host.
func (h *SimHost) Dial(remote, service string) (*Conn, error) {
	h.net.mu.Lock()
	rh, ok := h.net.hosts[remote]
	h.net.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: host %q", ErrNoRoute, remote)
	}
	if h.down.Load() {
		return nil, fmt.Errorf("%w: %q (local)", ErrHostDown, h.name)
	}
	if rh.down.Load() {
		return nil, fmt.Errorf("%w: %q", ErrHostDown, remote)
	}
	rh.mu.Lock()
	l, ok := rh.listeners[service]
	rh.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: service %q on %q", ErrNoRoute, service, remote)
	}
	a2b := make(chan []byte, connBuf)
	b2a := make(chan []byte, connBuf)
	closed := make(chan struct{})
	once := new(sync.Once)
	local := &Conn{net: h.net, local: h.name, remote: remote, send: a2b, recv: b2a, closed: closed, once: once}
	peer := &Conn{net: h.net, local: remote, remote: h.name, send: b2a, recv: a2b, closed: closed, once: once}
	select {
	case l.backlog <- peer:
	case <-l.done:
		return nil, ErrClosed
	}
	h.net.mu.Lock()
	h.net.conns[local] = struct{}{}
	h.net.mu.Unlock()
	return local, nil
}
