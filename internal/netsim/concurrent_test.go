package netsim

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sgxnet/internal/core"
)

// Two identically-seeded networks must behave identically even when
// their traffic interleaves on the scheduler: every piece of simulator
// state — hosts, connections, the fault engine's virtual clock, and
// each link's decision RNG — is owned by one Network, so concurrent
// independent runs share nothing. This is the property the parallel
// evaluation engine (internal/eval) rests on; keep it under -race.

// floodRun drives one self-contained network: a seeded fault schedule
// on every link, a sender flooding msgs messages, and a receiver
// draining until the sender closes. It returns the schedule's stats,
// which are fully determined at Send time by the per-link RNG stream.
// Plain errors, not t.Fatal: it runs on non-test goroutines.
func floodRun(seed int64, msgs int) (FaultStats, error) {
	n := New()
	a, err := n.AddHost("a", core.PlatformConfig{EPCFrames: 16})
	if err != nil {
		return FaultStats{}, err
	}
	b, err := n.AddHost("b", core.PlatformConfig{EPCFrames: 16})
	if err != nil {
		return FaultStats{}, err
	}
	fs := NewFaultSchedule(seed).AddLink(LinkFaults{
		Latency:     50 * time.Microsecond,
		Jitter:      50 * time.Microsecond,
		DupProb:     0.10,
		ReorderProb: 0.05,
	})
	n.SetFaults(fs)

	l, err := b.Listen("sink")
	if err != nil {
		return FaultStats{}, err
	}
	defer l.Close()
	go l.Serve(func(c *Conn) {
		defer c.Close()
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	})
	c, err := a.Dial("b", "sink")
	if err != nil {
		return FaultStats{}, err
	}
	payload := []byte("deterministic-fault-probe")
	for i := 0; i < msgs; i++ {
		if err := c.Send(payload); err != nil {
			return FaultStats{}, fmt.Errorf("send %d: %w", i, err)
		}
	}
	c.Close()
	// All fault decisions are drawn synchronously on the Send path, so
	// the stats are final once the sender returns — delivery timing
	// cannot change them.
	return fs.Stats(), nil
}

func TestConcurrentNetworksAreIndependent(t *testing.T) {
	const seed, msgs, runs = 9001, 400, 4
	want, err := floodRun(seed, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if want.Duplicated == 0 || want.Reordered == 0 || want.Delayed == 0 {
		t.Fatalf("schedule too quiet to be a meaningful probe: %+v", want)
	}
	got := make([]FaultStats, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = floodRun(seed, msgs)
		}(i)
	}
	wg.Wait()
	for i := range got {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		if got[i] != want {
			t.Errorf("concurrent run %d diverged from the isolated run: %+v vs %+v", i, got[i], want)
		}
	}
}

// TestConcurrentNetworksDistinctSeeds: different seeds draw different
// decision streams — guards against a schedule accidentally reading a
// process-global RNG that would make the previous test pass vacuously.
func TestConcurrentNetworksDistinctSeeds(t *testing.T) {
	a, err := floodRun(1, 400)
	if err != nil {
		t.Fatal(err)
	}
	b, err := floodRun(2, 400)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("distinct seeds produced identical fault streams; per-network RNG isolation is suspect")
	}
}
