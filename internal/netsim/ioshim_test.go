package netsim

import (
	"testing"

	"sgxnet/internal/core"
	"sgxnet/internal/sgxcrypto"
)

// senderProgram is the Table 2 workload: a server program that sends MTU
// packets from inside an enclave, singly or batched, with or without
// symmetric encryption.
func senderProgram() *core.Program {
	return &core.Program{
		Name:    "packet-sender",
		Version: "1",
		Handlers: map[string]core.Handler{
			// arg: [0]=count, [1]=crypto flag, [2:6]=connID
			"send": func(env *core.Env, arg []byte) ([]byte, error) {
				count := int(arg[0])
				withCrypto := arg[1] == 1
				connID := uint32(arg[2]) | uint32(arg[3])<<8 | uint32(arg[4])<<16 | uint32(arg[5])<<24
				var c *sgxcrypto.Cipher
				if withCrypto {
					key, err := env.GetKey(core.KeySealEnclave)
					if err != nil {
						return nil, err
					}
					// Cipher context set up once per call: this is what
					// amortizes over a batch (Table 2).
					cc, err := sgxcrypto.NewAES(env.Meter(), key[:16])
					if err != nil {
						return nil, err
					}
					c = cc
				}
				pkt := make([]byte, core.MTUBytes)
				mk := func() []byte {
					if c != nil {
						return c.SealECB(env.Meter(), pkt)
					}
					return pkt
				}
				if count == 1 {
					_, err := env.OCall("net.send", EncodeSend(connID, mk()))
					return nil, err
				}
				packets := make([][]byte, count)
				for i := range packets {
					packets[i] = mk()
				}
				_, err := env.OCall("net.batch", EncodeBatch(connID, packets))
				return nil, err
			},
		},
	}
}

// runSend launches the sender enclave, wires its shim, and returns the
// instruction tally of sending count packets. The EGETKEY SGX instruction
// used for key derivation in the crypto path is subtracted so the tally
// isolates the transmission itself, as the paper's table does.
func runSend(t *testing.T, count int, withCrypto bool) core.Tally {
	t.Helper()
	n := New()
	src, err := n.AddHost("src", core.PlatformConfig{EPCFrames: 128})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := n.AddHost("dst", core.PlatformConfig{EPCFrames: 128})
	if err != nil {
		t.Fatal(err)
	}
	l, err := dst.Listen("sink")
	if err != nil {
		t.Fatal(err)
	}
	received := make(chan int, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		got := 0
		for got < count {
			if _, err := c.Recv(); err != nil {
				break
			}
			got++
		}
		received <- got
	}()

	signer, err := core.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := src.Platform().Launch(senderProgram(), signer)
	if err != nil {
		t.Fatal(err)
	}
	shim := NewIOShim(src, enc.Meter())
	enc.BindHost(shim)
	conn, err := src.Dial("dst", "sink")
	if err != nil {
		t.Fatal(err)
	}
	id := shim.Adopt(conn)

	enc.Meter().Reset()
	arg := []byte{byte(count), 0, byte(id), byte(id >> 8), byte(id >> 16), byte(id >> 24)}
	if withCrypto {
		arg[1] = 1
	}
	if _, err := enc.Call("send", arg); err != nil {
		t.Fatal(err)
	}
	tally := enc.Meter().Snapshot()
	if withCrypto {
		tally.SGXU-- // EGETKEY for the session key, not part of Table 2
	}
	if got := <-received; got != count {
		t.Fatalf("sink received %d/%d packets", got, count)
	}
	return tally
}

// TestTable2PacketTransmission reproduces Table 2 of the paper: the
// SGX(U) column exactly, the normal column within 1%.
func TestTable2PacketTransmission(t *testing.T) {
	cases := []struct {
		count      int
		crypto     bool
		wantSGX    uint64
		wantNormal uint64 // paper's value
	}{
		{1, false, 6, 13_000},
		{1, true, 6, 97_000},
		{100, false, 204, 136_000},
		{100, true, 204, 972_000},
	}
	for _, c := range cases {
		got := runSend(t, c.count, c.crypto)
		if got.SGXU != c.wantSGX {
			t.Errorf("count=%d crypto=%v: SGX(U)=%d, want %d", c.count, c.crypto, got.SGXU, c.wantSGX)
		}
		lo := c.wantNormal * 98 / 100
		hi := c.wantNormal * 102 / 100
		if got.Normal < lo || got.Normal > hi {
			t.Errorf("count=%d crypto=%v: normal=%d, want %d ±2%%", c.count, c.crypto, got.Normal, c.wantNormal)
		}
	}
}

// TestBatchingAmortizesIO checks the paper's §5 conclusion: "while the
// cost of a single I/O operation is high, the cost can be amortized with
// batched I/O" — per-packet cost in a 100-batch must be well under half
// the single-packet cost.
func TestBatchingAmortizesIO(t *testing.T) {
	single := runSend(t, 1, false)
	batch := runSend(t, 100, false)
	perPacket := batch.Normal / 100
	if perPacket*2 >= single.Normal {
		t.Fatalf("batching did not amortize: single=%d, batched per-packet=%d", single.Normal, perPacket)
	}
}

func TestIOShimErrors(t *testing.T) {
	n := New()
	h, err := n.AddHost("h", core.PlatformConfig{EPCFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	shim := NewIOShim(h, core.NewMeter())
	if _, err := shim.OCall("net.send", []byte{1}); err == nil {
		t.Fatal("short arg accepted")
	}
	if _, err := shim.OCall("net.send", EncodeSend(99, []byte("x"))); err == nil {
		t.Fatal("unknown connID accepted")
	}
	if _, err := shim.OCall("net.dial", []byte("no-separator")); err == nil {
		t.Fatal("malformed dial accepted")
	}
	if _, err := shim.OCall("nope", nil); err == nil {
		t.Fatal("unknown service accepted")
	}
	if _, err := shim.OCall("net.batch", EncodeSend(99, nil)); err == nil {
		t.Fatal("batch on unknown conn accepted")
	}
}

func TestIOShimDialAndRecv(t *testing.T) {
	n := New()
	a, _ := n.AddHost("a", core.PlatformConfig{EPCFrames: 64})
	b, _ := n.AddHost("b", core.PlatformConfig{EPCFrames: 64})
	l, _ := b.Listen("svc")
	go l.Serve(func(c *Conn) {
		m, err := c.Recv()
		if err != nil {
			return
		}
		c.Send(append([]byte("pong:"), m...))
	})
	shim := NewIOShim(a, core.NewMeter())
	idb, err := shim.OCall("net.dial", []byte("b|svc"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shim.OCall("net.send", append(idb, []byte("ping")...)); err != nil {
		t.Fatal(err)
	}
	reply, err := shim.OCall("net.recv", idb)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "pong:ping" {
		t.Fatalf("reply = %q", reply)
	}
	if _, err := shim.OCall("net.close", idb); err != nil {
		t.Fatal(err)
	}
}

func TestMultiHostRouting(t *testing.T) {
	var m MultiHost
	m.Mount("net.", core.HostFunc(func(s string, a []byte) ([]byte, error) { return []byte("net"), nil }))
	m.Mount("net.special", core.HostFunc(func(s string, a []byte) ([]byte, error) { return []byte("special"), nil }))
	m.Mount("app.", core.HostFunc(func(s string, a []byte) ([]byte, error) { return []byte("app"), nil }))
	if out, _ := m.OCall("net.send", nil); string(out) != "net" {
		t.Fatalf("net.send → %q", out)
	}
	if out, _ := m.OCall("net.special.x", nil); string(out) != "special" {
		t.Fatal("longest prefix must win")
	}
	if out, _ := m.OCall("app.thing", nil); string(out) != "app" {
		t.Fatalf("app.thing → %q", out)
	}
	if _, err := m.OCall("other", nil); err == nil {
		t.Fatal("unmounted service accepted")
	}
}
