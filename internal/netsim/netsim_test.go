package netsim

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"sgxnet/internal/core"
)

func newNet(t *testing.T, names ...string) (*Network, map[string]*SimHost) {
	t.Helper()
	n := New()
	hosts := make(map[string]*SimHost)
	for _, name := range names {
		h, err := n.AddHost(name, core.PlatformConfig{EPCFrames: 128})
		if err != nil {
			t.Fatal(err)
		}
		hosts[name] = h
	}
	return n, hosts
}

func TestDialSendRecv(t *testing.T) {
	_, hs := newNet(t, "a", "b")
	l, err := hs["b"].Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		msg, err := c.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- c.Send(append([]byte("re:"), msg...))
	}()
	c, err := hs["a"].Dial("b", "svc")
	if err != nil {
		t.Fatal(err)
	}
	reply, err := c.Request([]byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "re:ping" {
		t.Fatalf("reply = %q", reply)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDialUnknown(t *testing.T) {
	_, hs := newNet(t, "a", "b")
	if _, err := hs["a"].Dial("ghost", "svc"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
	if _, err := hs["a"].Dial("b", "nosvc"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateHostAndListener(t *testing.T) {
	n, hs := newNet(t, "a")
	if _, err := n.AddHost("a", core.PlatformConfig{}); err == nil {
		t.Fatal("duplicate host accepted")
	}
	if _, err := hs["a"].Listen("s"); err != nil {
		t.Fatal(err)
	}
	if _, err := hs["a"].Listen("s"); err == nil {
		t.Fatal("duplicate listener accepted")
	}
}

func TestCloseUnblocksBothEnds(t *testing.T) {
	_, hs := newNet(t, "a", "b")
	l, _ := hs["b"].Listen("svc")
	acc := make(chan *Conn, 1)
	go func() {
		c, _ := l.Accept()
		acc <- c
	}()
	c, err := hs["a"].Dial("b", "svc")
	if err != nil {
		t.Fatal(err)
	}
	peer := <-acc
	c.Close()
	c.Close() // idempotent, shared once must not double-close
	if _, err := peer.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer recv after close: %v", err)
	}
	if err := peer.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer send after close: %v", err)
	}
}

func TestRecvDrainsDeliveredBeforeClose(t *testing.T) {
	_, hs := newNet(t, "a", "b")
	l, _ := hs["b"].Listen("svc")
	acc := make(chan *Conn, 1)
	go func() { c, _ := l.Accept(); acc <- c }()
	c, err := hs["a"].Dial("b", "svc")
	if err != nil {
		t.Fatal(err)
	}
	peer := <-acc
	if err := c.Send([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	got, err := peer.Recv()
	if err != nil || string(got) != "last words" {
		t.Fatalf("got %q, %v — in-flight data lost on close", got, err)
	}
}

func TestRemoveHostStopsListeners(t *testing.T) {
	n, hs := newNet(t, "a", "b")
	l, _ := hs["b"].Listen("svc")
	n.RemoveHost("b")
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Fatal("listener survived host removal")
	}
	if _, err := hs["a"].Dial("b", "svc"); !errors.Is(err, ErrNoRoute) {
		t.Fatal("dial to removed host succeeded")
	}
}

func TestNetworkStats(t *testing.T) {
	n, hs := newNet(t, "a", "b")
	l, _ := hs["b"].Listen("svc")
	go l.Serve(func(c *Conn) {
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	})
	c, err := hs["a"].Dial("b", "svc")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Send(make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if n.Messages() != 5 || n.Bytes() != 50 {
		t.Fatalf("messages=%d bytes=%d", n.Messages(), n.Bytes())
	}
}

func TestConcurrentConnections(t *testing.T) {
	_, hs := newNet(t, "a", "b")
	l, _ := hs["b"].Listen("echo")
	go l.Serve(func(c *Conn) {
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			if err := c.Send(m); err != nil {
				return
			}
		}
	})
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := hs["a"].Dial("b", "echo")
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			msg := []byte(fmt.Sprintf("msg-%d", i))
			got, err := c.Request(msg)
			if err != nil || !bytes.Equal(got, msg) {
				t.Errorf("conn %d: got %q err %v", i, got, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestHostsListing(t *testing.T) {
	n, _ := newNet(t, "x", "y", "z")
	if got := len(n.Hosts()); got != 3 {
		t.Fatalf("hosts = %d", got)
	}
	if _, ok := n.Host("y"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := n.Host("nope"); ok {
		t.Fatal("phantom host")
	}
}

func TestFaultInjection(t *testing.T) {
	_, hs := newNet(t, "a", "b")
	l, _ := hs["b"].Listen("svc")
	acc := make(chan *Conn, 1)
	go func() { c, _ := l.Accept(); acc <- c }()
	c, err := hs["a"].Dial("b", "svc")
	if err != nil {
		t.Fatal(err)
	}
	peer := <-acc
	// Corrupt: payload arrives altered.
	c.InjectCorrupt(1)
	if err := c.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := peer.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == "hello" {
		t.Fatal("corruption did not apply")
	}
	// Next message is clean.
	if err := c.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got, _ := peer.Recv(); string(got) != "hello" {
		t.Fatalf("clean message altered: %q", got)
	}
	// Drop: message vanishes; the following one arrives.
	c.InjectDrop(1)
	if err := c.Send([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if got, _ := peer.Recv(); string(got) != "after" {
		t.Fatalf("dropped message delivered: %q", got)
	}
}
