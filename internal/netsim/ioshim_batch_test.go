package netsim

import (
	"testing"

	"sgxnet/internal/core"
	"sgxnet/internal/xcall"
)

// Batched-mode edge cases: the shim's windowed accounting (fixed cost
// once per window, no per-packet boundary SGX) composed with the xcall
// ring's fallbacks, zero-length batches, and an active fault schedule.
// The concurrent pieces run under -race in CI like every other test.

// batchRig wires two hosts, a sink that drains count packets, and a
// data-plane shim on the sender charging the given meter.
func batchRig(t *testing.T, n *Network, meter *core.Meter, count int) (*IOShim, uint32, chan int) {
	t.Helper()
	src, err := n.AddHost("src", core.PlatformConfig{EPCFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := n.AddHost("dst", core.PlatformConfig{EPCFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	l, err := dst.Listen("sink")
	if err != nil {
		t.Fatal(err)
	}
	received := make(chan int, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			received <- 0
			return
		}
		got := 0
		for got < count {
			if _, err := c.Recv(); err != nil {
				break
			}
			got++
		}
		received <- got
	}()
	shim := NewIOShim(src, meter)
	conn, err := src.Dial("dst", "sink")
	if err != nil {
		t.Fatal(err)
	}
	return shim, shim.Adopt(conn), received
}

func TestBatchedModeAmortizesFixedCost(t *testing.T) {
	meter := core.NewMeter()
	shim, id, received := batchRig(t, New(), meter, 8)
	shim.SetBatched(4)
	for i := 0; i < 8; i++ {
		if _, err := shim.OCall("net.send", EncodeSend(id, []byte("pkt"))); err != nil {
			t.Fatal(err)
		}
	}
	tal := meter.Snapshot()
	// Two windows of 4: fixed twice, per-packet eight times, no
	// boundary SGX (the data rides the shared ring).
	want := uint64(2*core.CostIOCallFixed + 8*core.CostIOPerPacket)
	if tal.Normal != want {
		t.Fatalf("normal = %d, want %d", tal.Normal, want)
	}
	if tal.SGXU != 0 {
		t.Fatalf("batched sends charged %d SGX, want 0", tal.SGXU)
	}
	if got := <-received; got != 8 {
		t.Fatalf("sink received %d/8", got)
	}

	// Disabling restores per-call accounting, boundary SGX included.
	shim.SetBatched(1)
	meter.Reset()
	if _, err := shim.OCall("net.send", EncodeSend(id, []byte("pkt"))); err != nil {
		t.Fatal(err)
	}
	tal = meter.Snapshot()
	if tal.Normal != core.CostIOCallFixed+core.CostIOPerPacket || tal.SGXU != core.SGXInstIOPerPacket {
		t.Fatalf("sync send after disable: %+v", tal)
	}
}

func TestBatchedModeZeroLengthBatch(t *testing.T) {
	meter := core.NewMeter()
	shim, id, _ := batchRig(t, New(), meter, 0)
	shim.SetBatched(4)
	// A zero-length net.batch in batched mode charges nothing — there
	// is no call boundary to pay for.
	if _, err := shim.OCall("net.batch", EncodeBatch(id, nil)); err != nil {
		t.Fatal(err)
	}
	if tal := meter.Snapshot(); tal != (core.Tally{}) {
		t.Fatalf("zero-length batch charged %+v", tal)
	}
	// Flushing with no open window is also free.
	shim.FlushBatch()
	if tal := meter.Snapshot(); tal != (core.Tally{}) {
		t.Fatalf("empty flush charged %+v", tal)
	}
}

func TestBatchedModeFlushClosesWindow(t *testing.T) {
	meter := core.NewMeter()
	shim, id, received := batchRig(t, New(), meter, 3)
	shim.SetBatched(4)
	shim.OCall("net.send", EncodeSend(id, []byte("a")))
	shim.OCall("net.send", EncodeSend(id, []byte("b")))
	shim.FlushBatch()
	shim.OCall("net.send", EncodeSend(id, []byte("c")))
	tal := meter.Snapshot()
	// The flush closed the half-full window, so the third send opens a
	// new one: fixed charged twice for three packets.
	want := uint64(2*core.CostIOCallFixed + 3*core.CostIOPerPacket)
	if tal.Normal != want {
		t.Fatalf("normal = %d, want %d", tal.Normal, want)
	}
	if got := <-received; got != 3 {
		t.Fatalf("sink received %d/3", got)
	}
}

// ringShimEnclave builds an enclave whose OCALLs ride an xcall ring in
// front of a batched shim — the full switchless send path.
func ringShimEnclave(t *testing.T, n *Network, cfg xcall.Config, count int) (*core.Enclave, *xcall.OCallRing, *IOShim, uint32, chan int) {
	t.Helper()
	plat, err := core.NewPlatform("ring-src", core.PlatformConfig{EPCFrames: 64, Seed: []byte("ring-src")})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := core.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := plat.Launch(&core.Program{
		Name: "ring-sender", Version: "1",
		Handlers: map[string]core.Handler{"noop": func(env *core.Env, arg []byte) ([]byte, error) { return nil, nil }},
	}, signer)
	if err != nil {
		t.Fatal(err)
	}
	src, err := n.AddHostWithPlatform("src", plat)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := n.AddHost("dst", core.PlatformConfig{EPCFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	l, err := dst.Listen("sink")
	if err != nil {
		t.Fatal(err)
	}
	received := make(chan int, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			received <- 0
			return
		}
		got := 0
		for got < count {
			if _, err := c.Recv(); err != nil {
				break
			}
			got++
		}
		received <- got
	}()
	shim := NewIOShim(src, enc.Meter())
	ring := xcall.NewOCallRing(enc, shim, cfg)
	enc.BindHost(ring)
	enc.SetSwitchlessOCalls(true)
	conn, err := src.Dial("dst", "sink")
	if err != nil {
		t.Fatal(err)
	}
	id := shim.Adopt(conn)
	shim.SetBatched(cfg.WithDefaults().Batch)
	enc.Meter().Reset()
	return enc, ring, shim, id, received
}

func TestBatchedRingFullFallback(t *testing.T) {
	// Capacity below the batch target: the ring fills and later sends
	// fall back to synchronous crossings even though the shim stays in
	// batched mode.
	const sends = 6
	enc, ring, _, id, received := ringShimEnclave(t, New(),
		xcall.Config{Capacity: 2, Batch: 8, SpinBudget: 1000}, sends)
	for i := 0; i < sends; i++ {
		if _, err := ring.OCall("net.send", EncodeSend(id, []byte("pkt"))); err != nil {
			t.Fatal(err)
		}
	}
	st := ring.Stats()
	// Send 1 doorbell, sends 2–3 enqueue, sends 4–6 ring-full.
	if st.ParkedFallbacks != 1 || st.Calls != 2 || st.FullFallbacks != 3 {
		t.Fatalf("stats: %+v", st)
	}
	// Crossings: 4 fallbacks × EEXIT/ERESUME, no drains yet.
	if tal := enc.Meter().Snapshot(); tal.SGXU != 8 {
		t.Fatalf("SGX = %d, want 8", tal.SGXU)
	}
	if got := <-received; got != sends {
		t.Fatalf("sink received %d/%d", got, sends)
	}
}

func TestBatchedModeUnderPartitionMidBatch(t *testing.T) {
	// A partition cuts src↔dst partway through the window. Sends keep
	// succeeding from the enclave's perspective (the loss is silent),
	// charges stay fully deterministic, and the fault engine records
	// the partition drops.
	run := func() (core.Tally, xcall.Stats, uint64) {
		n := New()
		n.SetFaults(NewFaultSchedule(42).AddPartition(Partition{
			A: []string{"src"}, B: []string{"dst"},
			FromMessage: 4, UntilMessage: 1 << 62,
		}))
		enc, ring, shim, id, received := ringShimEnclave(t, n,
			xcall.Config{Capacity: 16, Batch: 4, SpinBudget: 1000}, 0)
		for i := 0; i < 8; i++ {
			if _, err := ring.OCall("net.send", EncodeSend(id, []byte("pkt"))); err != nil {
				t.Fatal(err)
			}
		}
		if err := ring.Flush(); err != nil {
			t.Fatal(err)
		}
		shim.FlushBatch()
		if got := <-received; got != 0 {
			// The sink counts toward 0, so it reports immediately; the
			// partition guarantees no packet is double-counted anyway.
			t.Fatalf("sink received %d", got)
		}
		return enc.Meter().Snapshot(), ring.Stats(), n.Faults().Stats().Partitioned
	}
	t1, s1, drops1 := run()
	t2, s2, drops2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("nondeterministic under partition: %+v/%+v vs %+v/%+v", t1, s1, t2, s2)
	}
	if drops1 != drops2 || drops1 == 0 {
		t.Fatalf("partition drops: %d vs %d", drops1, drops2)
	}
	if s1.Calls == 0 || s1.Drains == 0 {
		t.Fatalf("ring never went switchless: %+v", s1)
	}
}

func TestBatchedModeUnderDropMidBatch(t *testing.T) {
	// DropProb=1 discards every packet mid-flight; the send path (ring
	// accounting + windowed charges) must be oblivious: identical meter
	// tallies with and without the schedule.
	tally := func(faulty bool) core.Tally {
		n := New()
		if faulty {
			n.SetFaults(NewFaultSchedule(7).AddLink(LinkFaults{From: "src", To: "dst", DropProb: 1}))
		}
		enc, ring, shim, id, _ := ringShimEnclave(t, n,
			xcall.Config{Capacity: 16, Batch: 4, SpinBudget: 1000}, 0)
		for i := 0; i < 9; i++ {
			if _, err := ring.OCall("net.send", EncodeSend(id, []byte("pkt"))); err != nil {
				t.Fatal(err)
			}
		}
		if err := ring.Flush(); err != nil {
			t.Fatal(err)
		}
		shim.FlushBatch()
		return enc.Meter().Snapshot()
	}
	clean, dropped := tally(false), tally(true)
	if clean != dropped {
		t.Fatalf("drop schedule changed send-side charges: %+v vs %+v", clean, dropped)
	}
}
