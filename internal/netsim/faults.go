package netsim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sgxnet/internal/netsim/des"
)

// Fault-schedule engine: seeded, per-link disturbance layered on the
// per-connection injectors (InjectCorrupt / InjectDrop). The paper's
// threat model gives the network adversary delay, loss, duplication,
// reordering, and denial of service — everything except forging what the
// enclaves authenticate — and the ROADMAP's "heavy traffic" north star
// needs those disturbances to be reproducible, so the engine is
// deterministic per seed:
//
//   - every directed link (from→to) draws its decisions from its own RNG
//     stream, seeded by schedule-seed ⊕ FNV-1a(from→to), so a link's k-th
//     message receives the same verdict regardless of how goroutines
//     interleave traffic on other links;
//   - partitions and host crash/restart events trigger on the global
//     message counter (a virtual clock every Send ticks), not wall time.
//
// Latency and jitter are realized as delays on a per-link delivery
// pipeline that preserves FIFO order unless reordering is explicitly
// scheduled, so "slow" and "shuffled" are independent axes. With a
// des.Kernel attached to the network the delays are virtual-clock
// events (one cycle per nanosecond of configured latency) executed in
// deterministic (timestamp, seq) order with no real-time dependence;
// without one they fall back to wall-clock sleeps on the link worker.

// LinkFaults is the disturbance profile of one directed link. Empty
// From/To act as wildcards, letting one rule cover the whole network.
type LinkFaults struct {
	From, To string

	// Latency delays every delivery; Jitter adds a uniform extra in
	// [0, Jitter). Delivery order within the link is preserved.
	Latency time.Duration
	Jitter  time.Duration

	// DropProb silently discards a message; DupProb delivers it twice;
	// CorruptProb flips one bit (the receiver's MACs must catch it);
	// ReorderProb holds a message back so the link's next message
	// overtakes it.
	DropProb    float64
	DupProb     float64
	CorruptProb float64
	ReorderProb float64
}

// HostCrash schedules a crash (and optional restart) on the virtual
// clock: when the network's AtMessage-th message is sent, the host goes
// down — listeners close, its connections die, dials to it fail — and
// comes back up RestartAfter messages later (0 = stays down). Restart
// restores reachability only; services must be re-registered by the
// application, exactly as a real reboot forgets its listening sockets.
type HostCrash struct {
	Host         string
	AtMessage    uint64
	RestartAfter uint64
}

// Partition splits the network between host groups A and B for a window
// of the virtual clock: messages crossing the cut in either direction are
// silently dropped while the partition is active.
type Partition struct {
	A, B                      []string
	FromMessage, UntilMessage uint64
}

// FaultStats counts the engine's interventions.
type FaultStats struct {
	Dropped     uint64
	Duplicated  uint64
	Corrupted   uint64
	Reordered   uint64
	Delayed     uint64
	Partitioned uint64
	Crashes     uint64
	Restarts    uint64
}

// FaultObserver receives one notification per engine intervention,
// tagged with the intervention kind ("drop", "dup", "corrupt",
// "reorder", "delay", "partition", "crash", "restart"), the directed
// link (crash/restart carry the host in from, empty to), and the
// virtual-clock tick it fired on. Together with the schedule's String()
// recipe this is enough to replay the run: the recipe rebuilds the
// decision streams, the tick pins each event to the message clock.
//
// The interface is structural so the observability layer can satisfy
// it without netsim importing it; obs.FaultRecorder is the canonical
// implementation. Observers are called from network goroutines and must
// be safe for concurrent use.
type FaultObserver interface {
	FaultEvent(kind, from, to string, tick uint64)
}

type faultObsHolder struct{ o FaultObserver }

// FaultSchedule is a deterministic, seeded disturbance plan for a
// Network. Build one with NewFaultSchedule, add rules, then install it
// with Network.SetFaults before traffic starts.
type FaultSchedule struct {
	seed    int64
	links   []LinkFaults
	parts   []Partition
	crashes []crashState

	tick atomic.Uint64 // virtual clock: one tick per Send

	mu    sync.Mutex
	lstat map[string]*linkState

	dropped     atomic.Uint64
	duplicated  atomic.Uint64
	corrupted   atomic.Uint64
	reordered   atomic.Uint64
	delayed     atomic.Uint64
	partitioned atomic.Uint64
	crashCount  atomic.Uint64
	restarts    atomic.Uint64

	observer atomic.Pointer[faultObsHolder]
}

// SetObserver installs (or, with nil, removes) the intervention
// observer. Install it together with the schedule, before traffic
// starts, so no intervention goes unrecorded.
func (s *FaultSchedule) SetObserver(o FaultObserver) {
	if o == nil {
		s.observer.Store(nil)
		return
	}
	s.observer.Store(&faultObsHolder{o: o})
}

func (s *FaultSchedule) notify(kind, from, to string, tick uint64) {
	if h := s.observer.Load(); h != nil {
		h.o.FaultEvent(kind, from, to, tick)
	}
}

type crashState struct {
	HostCrash
	crashed   atomic.Bool
	restarted atomic.Bool
}

// linkState is one directed link's deterministic decision stream and
// delivery pipeline. Delayed deliveries go through a FIFO queue drained
// by a single worker goroutine — concurrent timers would race at
// near-equal release times and turn latency into accidental reordering.
// In DES mode the kernel decides *when* a message is released (virtual
// clock) and the queue decides *who* delivers it (the link worker, so a
// full connection buffer can only stall its own link, never the kernel
// drainer).
type linkState struct {
	mu       sync.Mutex
	rng      *rand.Rand
	held     *heldMsg // message held back for reordering
	queue    []delayedMsg
	working  bool
	vrelease uint64 // DES mode: last virtual release time on this link
}

type heldMsg struct {
	payload []byte
	deliver func([]byte)
	timer   *time.Timer // wall-clock mode only; nil under a DES kernel
}

type delayedMsg struct {
	payload []byte
	deliver func([]byte)
	release time.Time // zero when the DES kernel already waited out the delay
}

// enqueue appends a delayed delivery and ensures a worker is draining the
// queue. Caller holds ls.mu.
func (ls *linkState) enqueue(m delayedMsg) {
	ls.queue = append(ls.queue, m)
	if !ls.working {
		ls.working = true
		go ls.work()
	}
}

func (ls *linkState) work() {
	for {
		ls.mu.Lock()
		if len(ls.queue) == 0 {
			ls.working = false
			ls.mu.Unlock()
			return
		}
		m := ls.queue[0]
		ls.queue = ls.queue[1:]
		ls.mu.Unlock()
		// DES-released messages carry a zero release: their delay already
		// elapsed on the virtual clock, so the worker never sleeps.
		if !m.release.IsZero() {
			time.Sleep(time.Until(m.release))
		}
		m.deliver(m.payload)
	}
}

// NewFaultSchedule creates an empty schedule. The same seed and rule set
// reproduce the same per-link decision sequence.
func NewFaultSchedule(seed int64) *FaultSchedule {
	return &FaultSchedule{seed: seed, lstat: make(map[string]*linkState)}
}

// AddLink appends a link rule. The first matching rule wins; add specific
// links before wildcards.
func (s *FaultSchedule) AddLink(f LinkFaults) *FaultSchedule {
	s.links = append(s.links, f)
	return s
}

// AddPartition appends a partition window.
func (s *FaultSchedule) AddPartition(p Partition) *FaultSchedule {
	s.parts = append(s.parts, p)
	return s
}

// AddCrash appends a crash/restart event.
func (s *FaultSchedule) AddCrash(c HostCrash) *FaultSchedule {
	s.crashes = append(s.crashes, crashState{HostCrash: c})
	return s
}

// Seed returns the schedule's seed — log it with any failure so the run
// can be replayed.
func (s *FaultSchedule) Seed() int64 { return s.seed }

// Messages returns the virtual-clock reading (messages seen so far).
func (s *FaultSchedule) Messages() uint64 { return s.tick.Load() }

// Stats snapshots the intervention counters.
func (s *FaultSchedule) Stats() FaultStats {
	return FaultStats{
		Dropped:     s.dropped.Load(),
		Duplicated:  s.duplicated.Load(),
		Corrupted:   s.corrupted.Load(),
		Reordered:   s.reordered.Load(),
		Delayed:     s.delayed.Load(),
		Partitioned: s.partitioned.Load(),
		Crashes:     s.crashCount.Load(),
		Restarts:    s.restarts.Load(),
	}
}

// String describes the schedule — the reproduction recipe.
func (s *FaultSchedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault-schedule seed=%d", s.seed)
	for _, l := range s.links {
		from, to := l.From, l.To
		if from == "" {
			from = "*"
		}
		if to == "" {
			to = "*"
		}
		fmt.Fprintf(&b, " link[%s→%s lat=%v jit=%v drop=%.2f dup=%.2f corrupt=%.2f reorder=%.2f]",
			from, to, l.Latency, l.Jitter, l.DropProb, l.DupProb, l.CorruptProb, l.ReorderProb)
	}
	for _, p := range s.parts {
		fmt.Fprintf(&b, " partition[%v|%v @%d..%d]", p.A, p.B, p.FromMessage, p.UntilMessage)
	}
	for i := range s.crashes {
		c := &s.crashes[i]
		fmt.Fprintf(&b, " crash[%s @%d restart+%d]", c.Host, c.AtMessage, c.RestartAfter)
	}
	return b.String()
}

// rule returns the first matching link rule, if any.
func (s *FaultSchedule) rule(from, to string) (LinkFaults, bool) {
	for _, l := range s.links {
		if (l.From == "" || l.From == from) && (l.To == "" || l.To == to) {
			return l, true
		}
	}
	return LinkFaults{}, false
}

func (s *FaultSchedule) link(from, to string) *linkState {
	key := from + "\x00" + to
	s.mu.Lock()
	defer s.mu.Unlock()
	ls, ok := s.lstat[key]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(key))
		ls = &linkState{rng: rand.New(rand.NewSource(s.seed ^ int64(h.Sum64())))}
		s.lstat[key] = ls
	}
	return ls
}

func memberOf(set []string, host string) bool {
	for _, h := range set {
		if h == host {
			return true
		}
	}
	return false
}

// partitioned reports whether a message from→to crosses an active cut.
func (s *FaultSchedule) isPartitioned(tick uint64, from, to string) bool {
	for _, p := range s.parts {
		if tick < p.FromMessage || tick >= p.UntilMessage {
			continue
		}
		if (memberOf(p.A, from) && memberOf(p.B, to)) || (memberOf(p.B, from) && memberOf(p.A, to)) {
			return true
		}
	}
	return false
}

// advance ticks the virtual clock and fires due crash/restart events.
func (s *FaultSchedule) advance(n *Network) uint64 {
	tick := s.tick.Add(1)
	for i := range s.crashes {
		c := &s.crashes[i]
		if tick >= c.AtMessage && c.crashed.CompareAndSwap(false, true) {
			n.Crash(c.Host)
			s.crashCount.Add(1)
			s.notify("crash", c.Host, "", tick)
		}
		if c.RestartAfter > 0 && tick >= c.AtMessage+c.RestartAfter &&
			c.crashed.Load() && c.restarted.CompareAndSwap(false, true) {
			n.Restart(c.Host)
			s.restarts.Add(1)
			s.notify("restart", c.Host, "", tick)
		}
	}
	return tick
}

// maxHold bounds how long a reorder-held message waits for a successor
// before a timer flushes it — keeps the link live when the held message
// was the last one in flight (the pathological case retries must survive,
// but the engine should not wedge a link forever).
const maxHold = 10 * time.Millisecond

// process applies the schedule to one Send. payload is already copied and
// past the per-connection injectors; deliver pushes bytes to the peer.
// It returns false when the message was consumed (dropped or held).
func (s *FaultSchedule) process(n *Network, from, to string, payload []byte, deliver func([]byte)) bool {
	tick := s.advance(n)

	if s.isPartitioned(tick, from, to) {
		s.partitioned.Add(1)
		s.dropped.Add(1)
		s.notify("partition", from, to, tick)
		return false
	}

	f, ok := s.rule(from, to)
	if !ok {
		return true // no rule: deliver inline, engine untouched
	}
	ls := s.link(from, to)
	ls.mu.Lock()

	drop := f.DropProb > 0 && ls.rng.Float64() < f.DropProb
	dup := f.DupProb > 0 && ls.rng.Float64() < f.DupProb
	corrupt := f.CorruptProb > 0 && ls.rng.Float64() < f.CorruptProb
	reorder := f.ReorderProb > 0 && ls.rng.Float64() < f.ReorderProb
	var jitter time.Duration
	if f.Jitter > 0 {
		jitter = time.Duration(ls.rng.Int63n(int64(f.Jitter)))
	}

	// Take over any held predecessor: it is delivered right after this
	// message (overtaken), or flushed on its own if this one is dropped.
	var prev *heldMsg
	if h := ls.held; h != nil {
		ls.held = nil
		if h.timer != nil {
			h.timer.Stop()
		}
		prev = h
	}

	if drop {
		ls.mu.Unlock()
		s.dropped.Add(1)
		s.notify("drop", from, to, tick)
		if prev != nil {
			prev.deliver(prev.payload)
		}
		return false
	}
	wrapped := prev != nil || dup
	if prev != nil {
		orig := deliver
		held := prev
		deliver = func(p []byte) {
			orig(p)
			held.deliver(held.payload)
		}
	}
	if corrupt && len(payload) > 0 {
		idx := 9
		if idx >= len(payload) {
			idx = len(payload) / 2
		}
		payload[idx] ^= 0x40
		s.corrupted.Add(1)
		s.notify("corrupt", from, to, tick)
	}
	if dup {
		orig := deliver
		deliver = func(p []byte) {
			orig(p)
			orig(append([]byte(nil), p...))
		}
		s.duplicated.Add(1)
		s.notify("dup", from, to, tick)
	}

	kernel := n.Kernel()

	if reorder {
		// Hold this message; the link's next message (or the flush —
		// a virtual-clock event under a DES kernel, a wall timer
		// otherwise) releases it.
		h := &heldMsg{payload: payload, deliver: deliver}
		flush := func() {
			ls.mu.Lock()
			if ls.held != h {
				ls.mu.Unlock()
				return
			}
			ls.held = nil
			ls.mu.Unlock()
			h.deliver(h.payload)
		}
		if kernel != nil {
			kernel.AfterFunc(des.DurationCycles(maxHold), func(uint64) { flush() })
		} else {
			h.timer = time.AfterFunc(maxHold, flush)
		}
		ls.held = h
		ls.mu.Unlock()
		s.reordered.Add(1)
		s.notify("reorder", from, to, tick)
		return false
	}

	delay := f.Latency + jitter
	if delay <= 0 {
		ls.mu.Unlock()
		if wrapped {
			// Duplication or an overtaken predecessor lives in the deliver
			// closure; the caller's inline path would bypass it.
			deliver(payload)
			return false
		}
		return true
	}
	if kernel != nil {
		// Virtual-clock delay: the kernel fires at the release cycle and
		// hands the message to the link worker, which delivers without
		// sleeping. Release times are clamped per link so latency can
		// never reorder a link on its own (same FIFO guarantee as the
		// wall-clock pipeline), and the whole path is free of real time.
		release := kernel.Now() + des.DurationCycles(delay)
		if release < ls.vrelease {
			release = ls.vrelease
		}
		ls.vrelease = release
		m := delayedMsg{payload: payload, deliver: deliver}
		kernel.AtFunc(release, func(uint64) {
			ls.mu.Lock()
			ls.enqueue(m)
			ls.mu.Unlock()
		})
	} else {
		ls.enqueue(delayedMsg{payload: payload, deliver: deliver, release: time.Now().Add(delay)})
	}
	ls.mu.Unlock()
	s.delayed.Add(1)
	s.notify("delay", from, to, tick)
	return false
}

// PartitionHosts is a convenience for an even two-way split of the given
// hosts (sorted for determinism), useful when a test just needs "one
// partition" without caring about the cut.
func PartitionHosts(hosts []string, from, until uint64) Partition {
	sorted := append([]string(nil), hosts...)
	sort.Strings(sorted)
	half := len(sorted) / 2
	return Partition{A: sorted[:half], B: sorted[half:], FromMessage: from, UntilMessage: until}
}
