package netsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sgxnet/internal/core"
)

// IOShim is the untrusted runtime's network service surface for an
// enclave: it implements core.Host and bridges OCALLs to netsim
// connections. Its cost accounting is the Table 2 model: every I/O OCALL
// charges a fixed overhead plus a per-packet cost, and each packet crosses
// the enclave boundary (2 SGX(U) instructions per packet) — so batched
// sends amortize the fixed part exactly as the paper reports.
//
// Services (argument encodings are little-endian):
//
//	net.dial   "remote|service"                 → connID (4 bytes)
//	net.send   connID(4) ‖ packet               → empty
//	net.batch  connID(4) ‖ n(4) ‖ n×(len(4)‖pkt) → empty
//	net.recv   connID(4)                        → packet
//	net.close  connID(4)                        → empty
type IOShim struct {
	host  *SimHost
	meter *core.Meter
	// boundarySGX is the per-packet SGX(U) charge. The data-plane shim
	// (NewIOShim) charges core.SGXInstIOPerPacket — packets cross the
	// enclave boundary individually. The control-plane shim (NewMsgShim)
	// charges none: control messages ride in the OCALL argument buffer,
	// inside the EEXIT/ERESUME pair Env.OCall already accounts.
	boundarySGX uint64
	prefix      string

	mu     sync.Mutex
	conns  map[uint32]*Conn
	nextID uint32

	// recvTimeout bounds every recv OCALL; 0 blocks forever (the seed's
	// behavior). A timed-out recv charges CostRecvTimeout — the enclave
	// re-entered just to learn nothing arrived — and returns ErrTimeout
	// so the protocol driver can retry.
	recvTimeout atomic.Int64

	// batchWin > 1 enables batched mode: outgoing packets ride the
	// switchless subsystem's shared ring instead of individual OCALL
	// buffers, so the per-call fixed cost is charged once per window of
	// batchWin sends and the per-packet boundary-crossing SGX charge is
	// dropped entirely (the data never crosses by itself; the ring
	// drain's amortized crossing, charged by internal/xcall, covers
	// it). Receives keep synchronous accounting: the host-side posting
	// into the response slot is still per-call work, and none of the
	// adopters batch their reads. Window progress evolves on the send
	// clock — deterministic, like the rest of the model.
	batchWin  atomic.Int64
	batchMu   sync.Mutex
	batchLeft int
}

// NewIOShim creates the data-plane shim for an enclave on the given host;
// I/O costs are charged to the supplied meter (normally the enclave's).
// Its services are net.dial / net.send / net.batch / net.recv / net.close.
func NewIOShim(host *SimHost, meter *core.Meter) *IOShim {
	return &IOShim{host: host, meter: meter, boundarySGX: core.SGXInstIOPerPacket,
		prefix: "net.", conns: make(map[uint32]*Conn), nextID: 1}
}

// NewMsgShim creates the control-plane shim (services msg.dial / msg.send
// / msg.recv / msg.close): same normal-instruction I/O costs, no
// per-packet boundary SGX charge.
func NewMsgShim(host *SimHost, meter *core.Meter) *IOShim {
	return &IOShim{host: host, meter: meter, boundarySGX: 0,
		prefix: "msg.", conns: make(map[uint32]*Conn), nextID: 1}
}

// Adopt registers an already-open connection with the shim and returns its
// connID, letting enclave code take over a connection the untrusted host
// accepted.
func (s *IOShim) Adopt(c *Conn) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	s.conns[id] = c
	return id
}

// Conn returns the connection behind a connID.
func (s *IOShim) Conn(id uint32) (*Conn, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.conns[id]
	return c, ok
}

var errBadIOArg = errors.New("netsim: malformed I/O OCALL argument")

// OCall implements core.Host.
func (s *IOShim) OCall(service string, arg []byte) ([]byte, error) {
	op := service
	if len(op) > len(s.prefix) && op[:len(s.prefix)] == s.prefix {
		op = op[len(s.prefix):]
	}
	switch op {
	case "dial":
		return s.dial(arg)
	case "send":
		return s.send(arg)
	case "batch":
		return s.batch(arg)
	case "recv":
		return s.recv(arg)
	case "close":
		return s.closeConn(arg)
	default:
		return nil, fmt.Errorf("netsim: unknown OCALL service %q", service)
	}
}

func (s *IOShim) dial(arg []byte) ([]byte, error) {
	s.meter.ChargeNormal(core.CostIOCallFixed)
	var remote, svc string
	for i := 0; i < len(arg); i++ {
		if arg[i] == '|' {
			remote, svc = string(arg[:i]), string(arg[i+1:])
			break
		}
	}
	if remote == "" || svc == "" {
		return nil, errBadIOArg
	}
	c, err := s.host.Dial(remote, svc)
	if err != nil {
		return nil, err
	}
	id := s.Adopt(c)
	out := make([]byte, 4)
	binary.LittleEndian.PutUint32(out, id)
	return out, nil
}

func (s *IOShim) lookup(arg []byte) (*Conn, []byte, error) {
	if len(arg) < 4 {
		return nil, nil, errBadIOArg
	}
	id := binary.LittleEndian.Uint32(arg[:4])
	c, ok := s.Conn(id)
	if !ok {
		return nil, nil, fmt.Errorf("netsim: unknown connID %d", id)
	}
	return c, arg[4:], nil
}

// SetBatched enables (window > 1) or disables (window <= 1) batched
// accounting for outgoing packets; see the batchWin field. Flushing an
// open window is the caller's job at phase boundaries (FlushBatch).
func (s *IOShim) SetBatched(window int) {
	if window <= 1 {
		window = 0
	}
	s.batchWin.Store(int64(window))
	if window == 0 {
		s.batchMu.Lock()
		s.batchLeft = 0
		s.batchMu.Unlock()
	}
}

// FlushBatch closes the current send window, if one is open: the next
// send pays the fixed per-call cost again. Flushing with no open
// window (zero-length batch) charges nothing.
func (s *IOShim) FlushBatch() {
	s.batchMu.Lock()
	s.batchLeft = 0
	s.batchMu.Unlock()
}

// chargePacket accounts one outgoing packet under the current mode.
func (s *IOShim) chargePacket() {
	if w := s.batchWin.Load(); w > 1 {
		s.batchMu.Lock()
		if s.batchLeft == 0 {
			s.meter.ChargeNormal(core.CostIOCallFixed)
			s.batchLeft = int(w)
		}
		s.batchLeft--
		s.batchMu.Unlock()
		s.meter.ChargeNormal(core.CostIOPerPacket)
		return
	}
	s.meter.ChargeNormal(core.CostIOCallFixed + core.CostIOPerPacket)
	s.meter.ChargeSGX(s.boundarySGX)
}

func (s *IOShim) send(arg []byte) ([]byte, error) {
	c, pkt, err := s.lookup(arg)
	if err != nil {
		return nil, err
	}
	s.chargePacket()
	return nil, c.Send(pkt)
}

func (s *IOShim) batch(arg []byte) ([]byte, error) {
	c, rest, err := s.lookup(arg)
	if err != nil {
		return nil, err
	}
	if len(rest) < 4 {
		return nil, errBadIOArg
	}
	n := binary.LittleEndian.Uint32(rest[:4])
	rest = rest[4:]
	// In batched mode every packet goes through the windowed charge (a
	// zero-length batch is then free); otherwise the call's fixed cost
	// is paid once up front, per Table 2.
	batched := s.batchWin.Load() > 1
	if !batched {
		s.meter.ChargeNormal(core.CostIOCallFixed)
	}
	for i := uint32(0); i < n; i++ {
		if len(rest) < 4 {
			return nil, errBadIOArg
		}
		l := binary.LittleEndian.Uint32(rest[:4])
		rest = rest[4:]
		if uint32(len(rest)) < l {
			return nil, errBadIOArg
		}
		if batched {
			s.chargePacket()
		} else {
			s.meter.ChargeNormal(core.CostIOPerPacket)
			s.meter.ChargeSGX(s.boundarySGX)
		}
		if err := c.Send(rest[:l]); err != nil {
			return nil, err
		}
		rest = rest[l:]
	}
	return nil, nil
}

// SetRecvTimeout bounds all subsequent recv OCALLs through this shim;
// d <= 0 restores blocking receives.
func (s *IOShim) SetRecvTimeout(d time.Duration) { s.recvTimeout.Store(int64(d)) }

func (s *IOShim) recv(arg []byte) ([]byte, error) {
	c, _, err := s.lookup(arg)
	if err != nil {
		return nil, err
	}
	s.meter.ChargeNormal(core.CostIOCallFixed + core.CostIOPerPacket)
	s.meter.ChargeSGX(s.boundarySGX)
	p, err := c.RecvTimeout(time.Duration(s.recvTimeout.Load()))
	if errors.Is(err, ErrTimeout) {
		s.meter.ChargeNormal(core.CostRecvTimeout)
	}
	return p, err
}

func (s *IOShim) closeConn(arg []byte) ([]byte, error) {
	c, _, err := s.lookup(arg)
	if err != nil {
		return nil, err
	}
	c.Close()
	return nil, nil
}

// EncodeBatch builds the net.batch argument for a connection and packets.
func EncodeBatch(connID uint32, packets [][]byte) []byte {
	size := 8
	for _, p := range packets {
		size += 4 + len(p)
	}
	out := make([]byte, 0, size)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], connID)
	out = append(out, b4[:]...)
	binary.LittleEndian.PutUint32(b4[:], uint32(len(packets)))
	out = append(out, b4[:]...)
	for _, p := range packets {
		binary.LittleEndian.PutUint32(b4[:], uint32(len(p)))
		out = append(out, b4[:]...)
		out = append(out, p...)
	}
	return out
}

// EncodeSend builds the net.send / net.recv / net.close argument.
func EncodeSend(connID uint32, pkt []byte) []byte {
	out := make([]byte, 4+len(pkt))
	binary.LittleEndian.PutUint32(out[:4], connID)
	copy(out[4:], pkt)
	return out
}

// MultiHost fans OCALLs out to several core.Host implementations by
// service prefix, so one enclave can reach both the network shim and
// application-specific host services.
type MultiHost struct {
	mu    sync.RWMutex
	hosts []prefixed
}

type prefixed struct {
	prefix string
	h      core.Host
}

// Mount registers a host for services beginning with prefix. Longest
// prefix wins.
func (m *MultiHost) Mount(prefix string, h core.Host) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hosts = append(m.hosts, prefixed{prefix, h})
}

// OCall implements core.Host.
func (m *MultiHost) OCall(service string, arg []byte) ([]byte, error) {
	m.mu.RLock()
	best := -1
	for i, p := range m.hosts {
		if len(service) >= len(p.prefix) && service[:len(p.prefix)] == p.prefix {
			if best < 0 || len(p.prefix) > len(m.hosts[best].prefix) {
				best = i
			}
		}
	}
	var h core.Host
	if best >= 0 {
		h = m.hosts[best].h
	}
	m.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("netsim: no host mounted for service %q", service)
	}
	return h.OCall(service, arg)
}
