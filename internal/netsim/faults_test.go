package netsim

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sgxnet/internal/core"
)

// pair builds a two-host network with an accepted connection a→b.
func pair(t *testing.T) (*Network, *Conn, *Conn) {
	t.Helper()
	n := New()
	a, err := n.AddHost("a", core.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddHost("b", core.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := b.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := a.Dial("b", "svc")
	if err != nil {
		t.Fatal(err)
	}
	peer, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	return n, conn, peer
}

// drain collects everything the peer receives until quiet for the grace
// period.
func drain(peer *Conn, grace time.Duration) []string {
	var got []string
	for {
		p, err := peer.RecvTimeout(grace)
		if err != nil {
			return got
		}
		got = append(got, string(p))
	}
}

func TestFaultScheduleDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []string {
		_, conn, peer := pair(t)
		conn.net.SetFaults(NewFaultSchedule(seed).AddLink(LinkFaults{DropProb: 0.3}))
		for i := 0; i < 200; i++ {
			if err := conn.Send([]byte(fmt.Sprintf("m%03d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return drain(peer, 50*time.Millisecond)
	}
	first := run(7)
	second := run(7)
	if len(first) == 0 || len(first) == 200 {
		t.Fatalf("drop prob 0.3 delivered %d/200 — injector inert or total", len(first))
	}
	if len(first) != len(second) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed diverged at %d: %q vs %q", i, first[i], second[i])
		}
	}
}

func TestLatencyPreservesFIFO(t *testing.T) {
	n, conn, peer := pair(t)
	n.SetFaults(NewFaultSchedule(1).AddLink(LinkFaults{
		Latency: time.Millisecond, Jitter: 2 * time.Millisecond,
	}))
	const total = 30
	for i := 0; i < total; i++ {
		if err := conn.Send([]byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := drain(peer, 100*time.Millisecond)
	if len(got) != total {
		t.Fatalf("delivered %d/%d under latency", len(got), total)
	}
	for i, p := range got {
		if want := fmt.Sprintf("m%03d", i); p != want {
			t.Fatalf("jitter broke FIFO at %d: got %q want %q", i, p, want)
		}
	}
	if st := n.Faults().Stats(); st.Delayed != total {
		t.Fatalf("Delayed = %d, want %d", st.Delayed, total)
	}
}

func TestDuplication(t *testing.T) {
	n, conn, peer := pair(t)
	n.SetFaults(NewFaultSchedule(1).AddLink(LinkFaults{DupProb: 1}))
	for i := 0; i < 5; i++ {
		if err := conn.Send([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := drain(peer, 50*time.Millisecond)
	if len(got) != 10 {
		t.Fatalf("DupProb=1 delivered %d messages, want 10", len(got))
	}
	for i := 0; i < 5; i++ {
		if got[2*i] != got[2*i+1] {
			t.Fatalf("duplicate %d differs: %q vs %q", i, got[2*i], got[2*i+1])
		}
	}
	if st := n.Faults().Stats(); st.Duplicated != 5 {
		t.Fatalf("Duplicated = %d, want 5", st.Duplicated)
	}
}

func TestCorruptionFlipsOneBit(t *testing.T) {
	n, conn, peer := pair(t)
	n.SetFaults(NewFaultSchedule(1).AddLink(LinkFaults{CorruptProb: 1}))
	msg := []byte("0123456789abcdef")
	if err := conn.Send(msg); err != nil {
		t.Fatal(err)
	}
	p, err := peer.RecvTimeout(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(p) == string(msg) {
		t.Fatal("CorruptProb=1 delivered the payload unmodified")
	}
	if p[9] != msg[9]^0x40 {
		t.Fatalf("expected single bit flip at byte 9, got %q", p)
	}
}

func TestReorderSwapsWithSuccessor(t *testing.T) {
	n, conn, peer := pair(t)
	n.SetFaults(NewFaultSchedule(1).AddLink(LinkFaults{ReorderProb: 1}))
	if err := conn.Send([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("second")); err != nil {
		t.Fatal(err)
	}
	got := drain(peer, 200*time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("delivered %d/2 under reordering (held message lost?)", len(got))
	}
	if got[0] != "second" || got[1] != "first" {
		t.Fatalf("expected overtake [second first], got %v", got)
	}
	if st := n.Faults().Stats(); st.Reordered == 0 {
		t.Fatal("Reordered counter never moved")
	}
}

func TestReorderFlushTimerReleasesLoneMessage(t *testing.T) {
	n, conn, peer := pair(t)
	n.SetFaults(NewFaultSchedule(1).AddLink(LinkFaults{ReorderProb: 1}))
	if err := conn.Send([]byte("lonely")); err != nil {
		t.Fatal(err)
	}
	// No successor ever comes; only the maxHold flush can deliver it.
	p, err := peer.RecvTimeout(50 * maxHold)
	if err != nil {
		t.Fatalf("held message never flushed: %v", err)
	}
	if string(p) != "lonely" {
		t.Fatalf("got %q", p)
	}
}

func TestReorderHeldSurvivesDroppedSuccessor(t *testing.T) {
	// First message reordered (held), second dropped by the engine: the
	// held message must be flushed on the drop path, not lost with its
	// successor. Probe the per-link RNG stream (draw order per message:
	// drop, then reorder) for a seed where msg1 survives and msg2 drops.
	const dropProb = 0.5
	var seed int64
	for ; ; seed++ {
		rng := NewFaultSchedule(seed).link("a", "b").rng
		d1 := rng.Float64() < dropProb
		_ = rng.Float64() // msg1 reorder draw
		d2 := rng.Float64() < dropProb
		if !d1 && d2 {
			break
		}
	}
	n, conn, peer := pair(t)
	n.SetFaults(NewFaultSchedule(seed).AddLink(LinkFaults{DropProb: dropProb, ReorderProb: 1}))
	if err := conn.Send([]byte("held")); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("victim")); err != nil {
		t.Fatal(err)
	}
	p, err := peer.RecvTimeout(50 * maxHold)
	if err != nil {
		t.Fatalf("held message lost when its successor was dropped: %v", err)
	}
	if string(p) != "held" {
		t.Fatalf("got %q", p)
	}
	if st := n.Faults().Stats(); st.Dropped != 1 || st.Reordered != 1 {
		t.Fatalf("stats = %+v, want 1 drop 1 reorder", st)
	}
}

func TestPartitionWindow(t *testing.T) {
	n, conn, peer := pair(t)
	n.SetFaults(NewFaultSchedule(1).AddPartition(Partition{
		A: []string{"a"}, B: []string{"b"}, FromMessage: 1, UntilMessage: 3,
	}))
	for i := 1; i <= 5; i++ {
		if err := conn.Send([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := drain(peer, 50*time.Millisecond)
	want := []string{"m3", "m4", "m5"}
	if len(got) != len(want) {
		t.Fatalf("partition window delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("partition window delivered %v, want %v", got, want)
		}
	}
	if st := n.Faults().Stats(); st.Partitioned != 2 {
		t.Fatalf("Partitioned = %d, want 2", st.Partitioned)
	}
}

func TestPartitionHostsSplitsEvenly(t *testing.T) {
	p := PartitionHosts([]string{"c", "a", "d", "b"}, 10, 20)
	if len(p.A) != 2 || len(p.B) != 2 {
		t.Fatalf("uneven split: %v | %v", p.A, p.B)
	}
	if p.A[0] != "a" || p.A[1] != "b" || p.B[0] != "c" || p.B[1] != "d" {
		t.Fatalf("split not sorted/deterministic: %v | %v", p.A, p.B)
	}
}

func TestCrashAndRestart(t *testing.T) {
	n, conn, peer := pair(t)
	a, _ := n.Host("a")
	b, _ := n.Host("b")

	n.Crash("b")
	if !n.Down("b") {
		t.Fatal("b not reported down after Crash")
	}
	if err := conn.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send to crashed host: err = %v, want ErrClosed", err)
	}
	if _, err := peer.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv on crashed host's conn: err = %v, want ErrClosed", err)
	}
	if _, err := a.Dial("b", "svc"); !errors.Is(err, ErrHostDown) {
		t.Fatalf("Dial to crashed host: err = %v, want ErrHostDown", err)
	}

	n.Restart("b")
	if n.Down("b") {
		t.Fatal("b still down after Restart")
	}
	// A reboot forgets listening sockets: the service must re-register.
	if _, err := a.Dial("b", "svc"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("Dial after restart, before re-Listen: err = %v, want ErrNoRoute", err)
	}
	if _, err := b.Listen("svc"); err != nil {
		t.Fatalf("re-Listen after restart: %v", err)
	}
	if _, err := a.Dial("b", "svc"); err != nil {
		t.Fatalf("Dial after re-Listen: %v", err)
	}
}

func TestScheduledCrashFiresOnVirtualClock(t *testing.T) {
	n := New()
	for _, name := range []string{"a", "b", "c"} {
		if _, err := n.AddHost(name, core.PlatformConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := n.Host("a")
	c, _ := n.Host("c")
	if _, err := c.Listen("svc"); err != nil {
		t.Fatal(err)
	}
	conn, err := a.Dial("c", "svc")
	if err != nil {
		t.Fatal(err)
	}
	n.SetFaults(NewFaultSchedule(1).AddCrash(HostCrash{Host: "b", AtMessage: 2, RestartAfter: 2}))

	if err := conn.Send([]byte("1")); err != nil {
		t.Fatal(err)
	}
	if n.Down("b") {
		t.Fatal("b crashed a message early")
	}
	if err := conn.Send([]byte("2")); err != nil {
		t.Fatal(err)
	}
	if !n.Down("b") {
		t.Fatal("b not down at message 2")
	}
	if err := conn.Send([]byte("3")); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("4")); err != nil {
		t.Fatal(err)
	}
	if n.Down("b") {
		t.Fatal("b not restarted at message 4")
	}
	st := n.Faults().Stats()
	if st.Crashes != 1 || st.Restarts != 1 {
		t.Fatalf("stats = %+v, want 1 crash 1 restart", st)
	}
}

func TestRecvTimeout(t *testing.T) {
	_, conn, peer := pair(t)
	start := time.Now()
	if _, err := peer.RecvTimeout(20 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("idle RecvTimeout: err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("RecvTimeout returned before the deadline")
	}
	if err := conn.Send([]byte("late")); err != nil {
		t.Fatal(err)
	}
	p, err := peer.RecvTimeout(time.Second)
	if err != nil {
		t.Fatalf("conn unusable after a timeout: %v", err)
	}
	if string(p) != "late" {
		t.Fatalf("got %q", p)
	}
}

func TestWildcardRuleAndFirstMatchWins(t *testing.T) {
	n, conn, peer := pair(t)
	// Specific rule for a→b (clean) listed before a wildcard that drops
	// everything: traffic a→b must be untouched.
	n.SetFaults(NewFaultSchedule(1).
		AddLink(LinkFaults{From: "a", To: "b"}).
		AddLink(LinkFaults{DropProb: 1}))
	for i := 0; i < 10; i++ {
		if err := conn.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := drain(peer, 50*time.Millisecond); len(got) != 10 {
		t.Fatalf("specific clean rule shadowed by wildcard: %d/10 delivered", len(got))
	}
	// The reverse direction b→a only matches the wildcard: all dropped.
	for i := 0; i < 10; i++ {
		if err := peer.Send([]byte("y")); err != nil {
			t.Fatal(err)
		}
	}
	if got := drain(conn, 50*time.Millisecond); len(got) != 0 {
		t.Fatalf("wildcard drop rule leaked %d messages", len(got))
	}
}

func TestScheduleStringIsReplayRecipe(t *testing.T) {
	s := NewFaultSchedule(42).
		AddLink(LinkFaults{From: "a", Latency: time.Millisecond, DropProb: 0.5}).
		AddPartition(Partition{A: []string{"a"}, B: []string{"b"}, FromMessage: 1, UntilMessage: 9}).
		AddCrash(HostCrash{Host: "c", AtMessage: 3, RestartAfter: 4})
	got := s.String()
	for _, want := range []string{"seed=42", "a→*", "drop=0.50", "partition[[a]|[b] @1..9]", "crash[c @3 restart+4]"} {
		if !contains(got, want) {
			t.Fatalf("String() = %q, missing %q", got, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// recordObserver satisfies the structural FaultObserver interface from
// test code without importing the observability layer.
type recordObserver struct {
	mu     sync.Mutex
	events []struct {
		kind, from, to string
		tick           uint64
	}
}

func (o *recordObserver) FaultEvent(kind, from, to string, tick uint64) {
	o.mu.Lock()
	o.events = append(o.events, struct {
		kind, from, to string
		tick           uint64
	}{kind, from, to, tick})
	o.mu.Unlock()
}

func (o *recordObserver) count(kind string) (n uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, e := range o.events {
		if e.kind == kind {
			n++
		}
	}
	return n
}

// TestFaultObserverSeesEveryIntervention installs an observer on a
// lossy schedule and checks that the notification stream agrees with
// the engine's own counters — nothing dropped goes unrecorded.
func TestFaultObserverSeesEveryIntervention(t *testing.T) {
	_, conn, peer := pair(t)
	fs := NewFaultSchedule(11).AddLink(LinkFaults{DropProb: 0.4, DupProb: 0.2})
	obs := &recordObserver{}
	fs.SetObserver(obs)
	conn.net.SetFaults(fs)
	for i := 0; i < 150; i++ {
		if err := conn.Send([]byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	drain(peer, 50*time.Millisecond)
	st := fs.Stats()
	if st.Dropped == 0 || st.Duplicated == 0 {
		t.Fatalf("schedule inert: %+v", st)
	}
	if got := obs.count("drop"); got != st.Dropped {
		t.Errorf("observed %d drops, engine counted %d", got, st.Dropped)
	}
	if got := obs.count("dup"); got != st.Duplicated {
		t.Errorf("observed %d dups, engine counted %d", got, st.Duplicated)
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	var lastTick uint64
	for _, e := range obs.events {
		if e.from != "a" || e.to != "b" {
			t.Fatalf("event on unexpected link %s→%s", e.from, e.to)
		}
		if e.tick == 0 {
			t.Fatal("intervention carried tick 0 — virtual clock not threaded through")
		}
		if e.tick < lastTick {
			t.Fatalf("ticks regressed: %d after %d", e.tick, lastTick)
		}
		lastTick = e.tick
	}
}

// TestFaultObserverRemovable checks that SetObserver(nil) detaches the
// observer without disturbing the schedule.
func TestFaultObserverRemovable(t *testing.T) {
	_, conn, peer := pair(t)
	fs := NewFaultSchedule(3).AddLink(LinkFaults{DropProb: 1})
	obs := &recordObserver{}
	fs.SetObserver(obs)
	conn.net.SetFaults(fs)
	if err := conn.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	drain(peer, 20*time.Millisecond)
	if obs.count("drop") != 1 {
		t.Fatalf("observed %d drops before detach, want 1", obs.count("drop"))
	}
	fs.SetObserver(nil)
	if err := conn.Send([]byte("y")); err != nil {
		t.Fatal(err)
	}
	drain(peer, 20*time.Millisecond)
	if obs.count("drop") != 1 {
		t.Error("detached observer still notified")
	}
	if fs.Stats().Dropped != 2 {
		t.Errorf("Dropped = %d, want 2 (detaching must not disturb the engine)", fs.Stats().Dropped)
	}
}
