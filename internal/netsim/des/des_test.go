package des

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// recorder collects (now, arg) pairs in firing order.
type recorder struct {
	mu    sync.Mutex
	times []uint64
	args  []uint64
}

func (r *recorder) OnEvent(now, arg uint64) {
	r.mu.Lock()
	r.times = append(r.times, now)
	r.args = append(r.args, arg)
	r.mu.Unlock()
}

// TestFIFOAmongEqualTimestamps: events scheduled at the same virtual
// instant fire in schedule order — the (timestamp, seq) tie-break.
func TestFIFOAmongEqualTimestamps(t *testing.T) {
	k := New()
	rec := &recorder{}
	const n = 1000
	// Interleave three timestamp groups so FIFO within a group has to
	// survive heap restructuring by the other groups.
	for i := 0; i < n; i++ {
		k.At(uint64(100+(i%3)*50), rec, uint64(i))
	}
	k.Run()
	var perGroup [3][]uint64
	for i, arg := range rec.args {
		g := int(rec.times[i]-100) / 50
		perGroup[g] = append(perGroup[g], arg)
	}
	for g, args := range perGroup {
		for i := 1; i < len(args); i++ {
			if args[i] < args[i-1] {
				t.Fatalf("group %d: arg %d fired before %d — FIFO among equal timestamps violated",
					g, args[i], args[i-1])
			}
		}
	}
}

// TestMonotoneClock: the virtual clock never runs backwards, events
// never fire before their timestamp, and past-dated At clamps to Now.
func TestMonotoneClock(t *testing.T) {
	k := New()
	rec := &recorder{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		k.At(uint64(rng.Intn(1<<20)), rec, uint64(i))
	}
	st := k.Run()
	for i := 1; i < len(rec.times); i++ {
		if rec.times[i] < rec.times[i-1] {
			t.Fatalf("clock ran backwards: event %d at %d after %d", i, rec.times[i], rec.times[i-1])
		}
	}
	if st.Now != rec.times[len(rec.times)-1] {
		t.Fatalf("final clock %d != last event time %d", st.Now, rec.times[len(rec.times)-1])
	}

	// Past-dated schedule from inside a handler clamps to the clock.
	k2 := New()
	k2.AtFunc(1000, func(now uint64) {
		k2.AtFunc(5, func(lateNow uint64) { // 5 << 1000: must clamp
			if lateNow < now {
				t.Errorf("past-dated event fired at %d, before the clock at %d", lateNow, now)
			}
		})
	})
	k2.Run()
}

// TestPopAllEqualsSortedInsertOrder: draining the heap yields exactly
// the stable sort of the inserts by (timestamp, insertion sequence).
func TestPopAllEqualsSortedInsertOrder(t *testing.T) {
	type ins struct {
		at  uint64
		arg uint64
	}
	rng := rand.New(rand.NewSource(42))
	k := New()
	rec := &recorder{}
	var inserts []ins
	for i := 0; i < 20000; i++ {
		e := ins{at: uint64(rng.Intn(4096)), arg: uint64(i)}
		inserts = append(inserts, e)
		k.At(e.at, rec, e.arg)
	}
	k.Run()
	sort.SliceStable(inserts, func(i, j int) bool { return inserts[i].at < inserts[j].at })
	if len(rec.args) != len(inserts) {
		t.Fatalf("fired %d events, inserted %d", len(rec.args), len(inserts))
	}
	for i := range inserts {
		if rec.args[i] != inserts[i].arg || rec.times[i] != inserts[i].at {
			t.Fatalf("pop %d = (t=%d, arg=%d), want (t=%d, arg=%d)",
				i, rec.times[i], rec.args[i], inserts[i].at, inserts[i].arg)
		}
	}
}

// TestHandlerScheduling: handlers scheduling follow-up events see them
// fire in order, and stats count both generations.
func TestHandlerScheduling(t *testing.T) {
	k := New()
	var order []uint64
	var chain func(now uint64)
	hops := 0
	chain = func(now uint64) {
		order = append(order, now)
		if hops++; hops < 10 {
			k.AfterFunc(100, chain)
		}
	}
	k.AtFunc(50, chain)
	st := k.Run()
	if len(order) != 10 {
		t.Fatalf("chain fired %d times, want 10", len(order))
	}
	for i, now := range order {
		if want := uint64(50 + 100*i); now != want {
			t.Fatalf("hop %d at %d, want %d", i, now, want)
		}
	}
	if st.Processed != 10 || st.Scheduled != 10 {
		t.Fatalf("stats %+v, want 10 processed / 10 scheduled", st)
	}
	if st.PeakLive != 1 {
		t.Fatalf("peak live %d, want 1 (strict chain)", st.PeakLive)
	}
}

// TestRunDeterminism: two kernels fed the same schedule produce
// identical firing sequences and identical stats.
func TestRunDeterminism(t *testing.T) {
	run := func() (*recorder, Stats) {
		k := New()
		rec := &recorder{}
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 10000; i++ {
			k.At(uint64(rng.Intn(1<<16)), rec, uint64(i))
		}
		return rec, k.Run()
	}
	r1, s1 := run()
	r2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverge: %+v vs %+v", s1, s2)
	}
	for i := range r1.args {
		if r1.args[i] != r2.args[i] || r1.times[i] != r2.times[i] {
			t.Fatalf("event %d diverges across identical runs", i)
		}
	}
}

// TestRunUntil: the horizon cuts the schedule and advances the clock to
// the horizon even when no event lands on it.
func TestRunUntil(t *testing.T) {
	k := New()
	rec := &recorder{}
	for _, at := range []uint64{10, 20, 500, 900} {
		k.At(at, rec, at)
	}
	st := k.RunUntil(100)
	if len(rec.args) != 2 {
		t.Fatalf("fired %d events before horizon, want 2", len(rec.args))
	}
	if st.Now != 100 {
		t.Fatalf("clock at %d after RunUntil(100)", st.Now)
	}
	st = k.Run()
	if len(rec.args) != 4 || st.Now != 900 {
		t.Fatalf("resume fired %d events, clock %d; want 4, 900", len(rec.args), st.Now)
	}
}

// TestBackgroundDrains: the background drainer executes scheduled
// events promptly in wall time regardless of how far apart they sit in
// virtual time, preserving (timestamp, seq) order.
func TestBackgroundDrains(t *testing.T) {
	k := New()
	rec := &recorder{}
	done := make(chan struct{})
	stop := k.Background()
	defer stop()
	// An hour of virtual time between events; wall time must not care.
	for i := 0; i < 100; i++ {
		k.At(uint64(i)*DurationCycles(time.Hour), rec, uint64(i))
	}
	k.AtFunc(101*DurationCycles(time.Hour), func(uint64) { close(done) })
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("background drainer did not reach the sentinel event in wall time")
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for i := 1; i < len(rec.args); i++ {
		if rec.args[i] < rec.args[i-1] {
			t.Fatalf("background drain reordered events: %d before %d", rec.args[i], rec.args[i-1])
		}
	}
	if len(rec.args) != 100 {
		t.Fatalf("drained %d events, want 100", len(rec.args))
	}
}

// TestBackgroundConcurrentSchedulers: many goroutines scheduling into a
// draining kernel lose no events and never see the clock move backwards
// per (timestamp-ordered) firing — the -race job leans on this test.
func TestBackgroundConcurrentSchedulers(t *testing.T) {
	k := New()
	rec := &recorder{}
	stop := k.Background()
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				k.After(uint64(rng.Intn(1000)), rec, uint64(g*per+i))
			}
		}(g)
	}
	wg.Wait()
	// Drain: wait until everything scheduled has been processed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := k.Stats()
		if st.Processed == goroutines*per {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d events processed", st.Processed, goroutines*per)
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.args) != goroutines*per {
		t.Fatalf("recorded %d events, want %d", len(rec.args), goroutines*per)
	}
	seen := make(map[uint64]bool, len(rec.args))
	for _, a := range rec.args {
		if seen[a] {
			t.Fatalf("event %d fired twice", a)
		}
		seen[a] = true
	}
}

// TestDurationCycles pins the wall↔virtual exchange rate.
func TestDurationCycles(t *testing.T) {
	if got := DurationCycles(time.Microsecond); got != 1000 {
		t.Fatalf("1µs = %d cycles, want 1000", got)
	}
	if got := DurationCycles(-time.Second); got != 0 {
		t.Fatalf("negative duration = %d cycles, want 0", got)
	}
}
