// Package des is the discrete-event simulation kernel under netsim and
// the scale sweeps: a binary event heap ordered by virtual timestamp,
// a virtual cycle clock, and two execution modes — single-threaded
// run-to-completion (the deterministic core of eval.ScaleSweep) and a
// background drainer (the compat shim that lets the goroutine-driven
// netsim rigs keep their blocking channel API while fault delays ride
// virtual time instead of wall-clock sleeps).
//
// Virtual time is counted in modeled CPU cycles — the same unit as
// core.Meter tallies and the obs.Trace span clock (core.CyclesOf), so a
// handler that charges a meter can schedule its completion event exactly
// one tally delta later and the trace, the meters, and the event heap
// all agree on when things happened. For wall-clock-denominated inputs
// (the fault engine's latency/jitter durations) the conversion is fixed
// at one cycle per nanosecond: a modeled 1 GHz part, coarse but uniform.
//
// Determinism: events fire in (timestamp, sequence) order. Sequence
// numbers are assigned at schedule time, so two events at the same
// virtual instant fire in the order they were scheduled — FIFO among
// equal timestamps. A single-threaded Run over a fixed schedule is
// therefore a pure function of its inputs: same spec, same event order,
// same stats, at any -workers (parallelism lives across kernels, never
// inside one).
package des

import (
	"sync"
	"time"
)

// CyclesPerSecond fixes the wall-clock↔virtual-clock exchange rate used
// when durations (not cycle counts) enter the kernel: 1 GHz, i.e. one
// cycle per nanosecond.
const CyclesPerSecond = 1_000_000_000

// DurationCycles converts a wall-clock duration to virtual cycles at
// the fixed CyclesPerSecond rate. Negative durations clamp to zero.
func DurationCycles(d time.Duration) uint64 {
	if d <= 0 {
		return 0
	}
	return uint64(d) // time.Duration is nanoseconds; 1 cycle = 1 ns
}

// Sampler is the windowed-metrics hook: the kernel samples its event
// throughput and backlog at every pop when one is attached. The
// interface is structural (internal/obs/series.Sampler satisfies it)
// so des keeps its zero-dependency footprint.
type Sampler interface {
	// CountAt adds n occurrences of the named counter at virtual time t.
	CountAt(name string, t, n uint64)
	// GaugeAt records level v of the named gauge at virtual time t.
	GaugeAt(name string, t, v uint64)
}

// Handler consumes one event. Implementations dispatch on arg — an
// opaque word the scheduler passes through, typically a packed
// (operation index, stage) pair — so a million-event simulation needs
// one handler value and zero per-event allocations.
type Handler interface {
	OnEvent(now uint64, arg uint64)
}

// funcHandler adapts a closure to Handler for callers (the netsim fault
// path) that need to capture state per event and can afford the
// allocation.
type funcHandler struct{ fn func(now uint64) }

func (h *funcHandler) OnEvent(now uint64, _ uint64) { h.fn(now) }

// event is one heap entry. Ordering is (at, seq): seq breaks timestamp
// ties in schedule order, which makes the pop order a total order that
// never depends on heap internals.
type event struct {
	at  uint64
	seq uint64
	h   Handler
	arg uint64
}

// before is the heap ordering predicate.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Stats is a kernel snapshot.
type Stats struct {
	Processed uint64 // events executed
	Scheduled uint64 // events ever pushed
	PeakLive  int    // high-water mark of the event heap
	Now       uint64 // virtual clock, cycles
}

// Kernel is one discrete-event scheduler. The zero value is not ready;
// use New. All methods are safe for concurrent use — the lock is
// uncontended (and cheap) in single-threaded Run mode, and required in
// Background mode where network goroutines schedule against the
// draining goroutine.
type Kernel struct {
	mu   sync.Mutex
	cond *sync.Cond
	heap []event
	seq  uint64
	now  uint64

	processed uint64
	peakLive  int

	bg      bool // background drainer active
	stopped bool // drainer told to exit

	series Sampler // windowed-metrics hook; nil = off
}

// New creates an empty kernel with the clock at zero.
func New() *Kernel {
	k := &Kernel{}
	k.cond = sync.NewCond(&k.mu)
	return k
}

// SetSeries attaches (or, with nil, detaches) the windowed-metrics
// sampler. Every event pop then records one "des.events" count and a
// "des.backlog" gauge (heap length after the pop) at the event's
// virtual timestamp — the events-per-window and backlog-growth series
// the scale sweep exports. Attach before scheduling; sampling is a
// per-pop branch when detached.
func (k *Kernel) SetSeries(s Sampler) {
	k.mu.Lock()
	k.series = s
	k.mu.Unlock()
}

// samplePop records one pop at time t. Caller holds k.mu.
func (k *Kernel) samplePop(t uint64) {
	if k.series != nil {
		k.series.CountAt("des.events", t, 1)
		k.series.GaugeAt("des.backlog", t, uint64(len(k.heap)))
	}
}

// Now returns the virtual clock: the timestamp of the most recently
// fired event (events run "at" their timestamp, so inside a handler Now
// equals the handler's own time).
func (k *Kernel) Now() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.now
}

// At schedules h.OnEvent(t, arg). A timestamp in the past clamps to the
// current clock — the kernel never runs time backwards.
func (k *Kernel) At(t uint64, h Handler, arg uint64) {
	k.mu.Lock()
	if t < k.now {
		t = k.now
	}
	k.push(event{at: t, seq: k.seq, h: h, arg: arg})
	k.seq++
	if k.bg {
		k.cond.Signal()
	}
	k.mu.Unlock()
}

// After schedules h.OnEvent at Now()+d cycles.
func (k *Kernel) After(d uint64, h Handler, arg uint64) {
	k.mu.Lock()
	t := k.now + d
	k.push(event{at: t, seq: k.seq, h: h, arg: arg})
	k.seq++
	if k.bg {
		k.cond.Signal()
	}
	k.mu.Unlock()
}

// AtFunc schedules a closure; one allocation per call. Prefer At with a
// shared Handler on hot paths.
func (k *Kernel) AtFunc(t uint64, fn func(now uint64)) {
	k.At(t, &funcHandler{fn: fn}, 0)
}

// AfterFunc schedules a closure at Now()+d cycles.
func (k *Kernel) AfterFunc(d uint64, fn func(now uint64)) {
	k.After(d, &funcHandler{fn: fn}, 0)
}

// Len reports the number of pending events.
func (k *Kernel) Len() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.heap)
}

// Stats snapshots the kernel counters.
func (k *Kernel) Stats() Stats {
	k.mu.Lock()
	defer k.mu.Unlock()
	return Stats{Processed: k.processed, Scheduled: k.seq, PeakLive: k.peakLive, Now: k.now}
}

// Step pops and executes the earliest event, advancing the clock to its
// timestamp. It reports false when the heap is empty. The handler runs
// outside the kernel lock, so it may schedule freely.
func (k *Kernel) Step() bool {
	k.mu.Lock()
	if len(k.heap) == 0 {
		k.mu.Unlock()
		return false
	}
	e := k.pop()
	k.now = e.at
	k.processed++
	k.samplePop(e.at)
	k.mu.Unlock()
	e.h.OnEvent(e.at, e.arg)
	return true
}

// Run executes events in (timestamp, seq) order until the heap drains,
// then returns the final stats. Handlers may schedule new events; Run
// is single-threaded, so a run over a fixed initial schedule is fully
// deterministic.
func (k *Kernel) Run() Stats {
	for k.Step() {
	}
	return k.Stats()
}

// RunUntil executes events with timestamps <= t, then sets the clock to
// t (even if no event reached it). Used by tests that cut a simulation
// at a horizon.
func (k *Kernel) RunUntil(t uint64) Stats {
	for {
		k.mu.Lock()
		if len(k.heap) == 0 || k.heap[0].at > t {
			if k.now < t {
				k.now = t
			}
			k.mu.Unlock()
			return k.Stats()
		}
		e := k.pop()
		k.now = e.at
		k.processed++
		k.samplePop(e.at)
		k.mu.Unlock()
		e.h.OnEvent(e.at, e.arg)
	}
}

// Background starts a drainer goroutine that executes events as soon as
// they are scheduled, in (timestamp, seq) order, with the virtual clock
// leaping to each event's timestamp — no wall-clock sleeping, ever.
// This is the compat mode for the channel-based netsim surface: protocol
// goroutines block on their connections exactly as before, while the
// fault engine's delayed deliveries ride virtual time. The returned stop
// function drains nothing further, waits for the in-flight handler to
// finish, and is idempotent.
func (k *Kernel) Background() (stop func()) {
	k.mu.Lock()
	if k.bg {
		k.mu.Unlock()
		panic("des: Background called twice")
	}
	k.bg = true
	k.stopped = false
	done := make(chan struct{})
	k.mu.Unlock()
	go func() {
		defer close(done)
		for {
			k.mu.Lock()
			for len(k.heap) == 0 && !k.stopped {
				k.cond.Wait()
			}
			if k.stopped {
				k.mu.Unlock()
				return
			}
			e := k.pop()
			k.now = e.at
			k.processed++
			k.samplePop(e.at)
			k.mu.Unlock()
			e.h.OnEvent(e.at, e.arg)
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			k.mu.Lock()
			k.stopped = true
			k.bg = false
			k.cond.Broadcast()
			k.mu.Unlock()
			<-done
		})
	}
}

// push inserts an event. Caller holds k.mu.
func (k *Kernel) push(e event) {
	k.heap = append(k.heap, e)
	i := len(k.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !k.heap[i].before(&k.heap[parent]) {
			break
		}
		k.heap[i], k.heap[parent] = k.heap[parent], k.heap[i]
		i = parent
	}
	if len(k.heap) > k.peakLive {
		k.peakLive = len(k.heap)
	}
}

// pop removes and returns the earliest event. Caller holds k.mu and
// guarantees the heap is non-empty.
func (k *Kernel) pop() event {
	top := k.heap[0]
	last := len(k.heap) - 1
	k.heap[0] = k.heap[last]
	k.heap[last] = event{} // release the Handler reference
	k.heap = k.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && k.heap[l].before(&k.heap[min]) {
			min = l
		}
		if r < last && k.heap[r].before(&k.heap[min]) {
			min = r
		}
		if min == i {
			break
		}
		k.heap[i], k.heap[min] = k.heap[min], k.heap[i]
		i = min
	}
	return top
}
