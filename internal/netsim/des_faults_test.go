package netsim

import (
	"fmt"
	"testing"
	"time"

	"sgxnet/internal/core"
	"sgxnet/internal/netsim/des"
)

// DES-mode fault engine tests: with a kernel attached, latency, jitter,
// and reorder holds are virtual-clock events. Hours of modeled delay
// must cost microseconds of wall clock, per-link FIFO must survive the
// virtual pipeline, and identical runs must produce identical stats —
// the determinism the wall-clock path could never promise.

// desPair builds a two-host network with a draining kernel attached and
// a server echoing every payload back.
func desPair(t *testing.T, s *FaultSchedule) (client *Conn, k *des.Kernel, stop func()) {
	t.Helper()
	n := New()
	k = des.New()
	n.SetKernel(k)
	kstop := k.Background()
	if s != nil {
		n.SetFaults(s)
	}
	a, err := n.AddHost("a", core.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddHost("b", core.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := b.Listen("echo")
	if err != nil {
		t.Fatal(err)
	}
	go l.Serve(func(c *Conn) {
		for {
			p, err := c.Recv()
			if err != nil {
				return
			}
			if err := c.Send(p); err != nil {
				return
			}
		}
	})
	client, err = a.Dial("b", "echo")
	if err != nil {
		t.Fatal(err)
	}
	return client, k, kstop
}

// TestDESDelayIsVirtual: an hour of configured link latency completes in
// wall-clock test time because the delay elapses on the virtual clock.
func TestDESDelayIsVirtual(t *testing.T) {
	s := NewFaultSchedule(1).AddLink(LinkFaults{Latency: time.Hour, Jitter: 30 * time.Minute})
	c, k, stop := desPair(t, s)
	defer stop()
	start := time.Now()
	const msgs = 50
	for i := 0; i < msgs; i++ {
		reply, err := c.Request([]byte(fmt.Sprintf("m%02d", i)))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if want := fmt.Sprintf("m%02d", i); string(reply) != want {
			t.Fatalf("request %d: got %q, want %q — virtual delay pipeline reordered the link", i, reply, want)
		}
	}
	if wall := time.Since(start); wall > 30*time.Second {
		t.Fatalf("50 round trips with 1h virtual latency took %v of wall clock", wall)
	}
	st := s.Stats()
	if st.Delayed != 2*msgs { // both directions ride the wildcard rule
		t.Fatalf("delayed %d messages, want %d", st.Delayed, 2*msgs)
	}
	// The virtual clock advanced by modeled hours.
	if now := k.Now(); now < des.DurationCycles(time.Hour) {
		t.Fatalf("virtual clock at %d cycles, want >= one modeled hour (%d)", now, des.DurationCycles(time.Hour))
	}
}

// TestDESPipelineFIFO: a burst of one-way sends through a jittered link
// arrives in send order — the per-link release clamp keeps jitter from
// reordering on its own.
func TestDESPipelineFIFO(t *testing.T) {
	s := NewFaultSchedule(3).AddLink(LinkFaults{From: "a", To: "b", Latency: time.Second, Jitter: 5 * time.Second})
	c, _, stop := desPair(t, s)
	defer stop()
	const msgs = 200
	for i := 0; i < msgs; i++ {
		if err := c.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		p, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if p[0] != byte(i) {
			t.Fatalf("message %d arrived in position of %d — jitter reordered the link", p[0], i)
		}
	}
}

// TestDESReorderHoldFlushes: a reorder-held message with no successor is
// flushed by the virtual-clock hold timer, not a wall timer.
func TestDESReorderHoldFlushes(t *testing.T) {
	s := NewFaultSchedule(5).AddLink(LinkFaults{From: "a", To: "b", ReorderProb: 1})
	c, _, stop := desPair(t, s)
	defer stop()
	if err := c.Send([]byte("lonely")); err != nil {
		t.Fatal(err)
	}
	p, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(p) != "lonely" {
		t.Fatalf("flushed payload %q", p)
	}
	if st := s.Stats(); st.Reordered != 1 {
		t.Fatalf("reordered %d, want 1", st.Reordered)
	}
}

// TestDESFaultStatsDeterministic: two identical DES runs produce
// identical fault stats — the decision streams are seeded per link and
// the delays no longer sample wall time.
func TestDESFaultStatsDeterministic(t *testing.T) {
	run := func() FaultStats {
		s := NewFaultSchedule(11).AddLink(LinkFaults{
			Latency: 20 * time.Millisecond, Jitter: 80 * time.Millisecond,
			DropProb: 0.1, DupProb: 0.05,
		})
		c, _, stop := desPair(t, s)
		defer stop()
		for i := 0; i < 100; i++ {
			if err := c.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		// Drain whatever survived the drops; duplicates may add extras.
		for {
			if _, err := c.RecvTimeout(200 * time.Millisecond); err != nil {
				break
			}
		}
		return s.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fault stats diverge across identical DES runs:\n%+v\n%+v", a, b)
	}
	if a.Delayed == 0 || a.Dropped == 0 {
		t.Fatalf("schedule intervened too little to be a meaningful determinism check: %+v", a)
	}
}
