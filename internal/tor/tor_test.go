package tor

import (
	"strings"
	"testing"
)

// deploy builds a small network: 3 authorities, 3 relays, 2 exits.
func deploy(t *testing.T, mode DeployMode) *TorNet {
	t.Helper()
	tn, err := Deploy(NetworkConfig{Mode: mode, Authorities: 3, Relays: 3, Exits: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

func fetchThroughCircuit(t *testing.T, tn *TorNet, seed int64) ([]byte, []Descriptor) {
	t.Helper()
	c, err := tn.NewClient("client", seed)
	if err != nil {
		t.Fatal(err)
	}
	consensus, err := tn.Discover(c)
	if err != nil {
		t.Fatal(err)
	}
	path, err := c.PickPath(consensus, 3)
	if err != nil {
		t.Fatal(err)
	}
	circ, err := c.BuildCircuit(path)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	resp, err := circ.Get(WebHost+"|"+WebService, []byte("GET /index"))
	if err != nil {
		t.Fatal(err)
	}
	return resp, path
}

func TestBaselineCircuitEndToEnd(t *testing.T) {
	tn := deploy(t, ModeBaseline)
	resp, path := fetchThroughCircuit(t, tn, 7)
	if string(resp) != "content:GET /index" {
		t.Fatalf("response %q", resp)
	}
	if len(path) != 3 {
		t.Fatalf("path length %d", len(path))
	}
	if !path[2].Exit {
		t.Fatal("last hop is not an exit")
	}
}

func TestCircuitThroughEveryMode(t *testing.T) {
	for _, mode := range []DeployMode{ModeBaseline, ModeSGXDirectory, ModeSGXORs, ModeSGXFull} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cfg := NetworkConfig{Mode: mode, Authorities: 3, Relays: 3, Exits: 2, Seed: 1}
			if mode == ModeSGXFull {
				cfg.Authorities = 0
			}
			tn, err := Deploy(cfg)
			if err != nil {
				t.Fatal(err)
			}
			resp, _ := fetchThroughCircuit(t, tn, 99)
			if string(resp) != "content:GET /index" {
				t.Fatalf("mode %v: response %q", mode, resp)
			}
		})
	}
}

// TestExitTamperingSucceedsInBaseline demonstrates the "spoiled onions"
// attack: a manually admitted malicious exit modifies plaintext and the
// client cannot tell.
func TestExitTamperingSucceedsInBaseline(t *testing.T) {
	tn := deploy(t, ModeBaseline)
	if _, err := tn.AddOR(ORConfig{Name: "evil-exit", Exit: true, Behavior: BehaveTamperExit}); err != nil {
		t.Fatal(err)
	}
	c, err := tn.NewClient("victim", 3)
	if err != nil {
		t.Fatal(err)
	}
	consensus, err := tn.Discover(c)
	if err != nil {
		t.Fatal(err)
	}
	inConsensus := false
	for _, d := range consensus {
		if d.Name == "evil-exit" {
			inConsensus = true
		}
	}
	if !inConsensus {
		t.Fatal("baseline admission should accept the malicious volunteer")
	}
	// Build a circuit that uses the evil exit explicitly.
	var path []Descriptor
	for _, d := range consensus {
		if !d.Exit && len(path) < 2 {
			path = append(path, d)
		}
	}
	for _, d := range consensus {
		if d.Name == "evil-exit" {
			path = append(path, d)
		}
	}
	circ, err := c.BuildCircuit(path)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	resp, err := circ.Get(WebHost+"|"+WebService, []byte("req"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(resp), "EVIL:") {
		t.Fatalf("expected tampered response, got %q — attack did not manifest", resp)
	}
}

// TestBadAppleSnoopingInBaseline: a snooping exit records plaintext.
func TestBadAppleSnoopingInBaseline(t *testing.T) {
	tn := deploy(t, ModeBaseline)
	evil, err := tn.AddOR(ORConfig{Name: "snoop-exit", Exit: true, Behavior: BehaveSnoop})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := tn.NewClient("victim", 4)
	consensus, _ := tn.Discover(c)
	var path []Descriptor
	for _, d := range consensus {
		if !d.Exit && len(path) < 2 {
			path = append(path, d)
		}
	}
	path = append(path, evil.Descriptor())
	circ, err := c.BuildCircuit(path)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	if _, err := circ.Get(WebHost+"|"+WebService, []byte("secret-query")); err != nil {
		t.Fatal(err)
	}
	log := evil.SnoopLog()
	if len(log) == 0 || !strings.Contains(log[0], "secret-query") {
		t.Fatalf("snoop log %v — the bad-apple attack should observe plaintext", log)
	}
}

// TestSGXAdmissionRejectsTamperedOR: in the incremental deployment, a
// misbehaving build fails the enclave integrity check at admission.
func TestSGXAdmissionRejectsTamperedOR(t *testing.T) {
	tn := deploy(t, ModeSGXORs)
	_, err := tn.AddOR(ORConfig{Name: "evil-exit", Exit: true, SGX: true, Behavior: BehaveTamperExit})
	if err == nil {
		t.Fatal("tampered SGX OR was admitted")
	}
	// It must not appear in any authority's view.
	for _, a := range tn.Auths {
		for _, d := range a.Vote() {
			if d.Name == "evil-exit" {
				t.Fatal("tampered OR present in authority view")
			}
		}
	}
	// Honest circuits still work.
	resp, _ := fetchThroughCircuit(t, tn, 11)
	if string(resp) != "content:GET /index" {
		t.Fatalf("response %q", resp)
	}
}

// TestFullySGXRefusesTamperedAndNonSGX: in the fully SGX-enabled setting
// a tampered build cannot join the DHT usefully — clients attest every
// OR they discover.
func TestFullySGXExcludesTamperedOR(t *testing.T) {
	tn, err := Deploy(NetworkConfig{Mode: ModeSGXFull, Relays: 3, Exits: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Non-SGX volunteer is refused outright.
	if _, err := tn.AddOR(ORConfig{Name: "legacy", Exit: true}); err == nil {
		t.Fatal("non-SGX OR accepted in fully-SGX network")
	}
	// Tampered SGX build joins the DHT (nothing stops it writing) but
	// fails client attestation during discovery.
	if _, err := tn.AddOR(ORConfig{Name: "evil", Exit: true, SGX: true, Behavior: BehaveTamperExit}); err != nil {
		t.Logf("tampered OR join: %v", err)
	}
	c, err := tn.NewClient("client", 8)
	if err != nil {
		t.Fatal(err)
	}
	found, err := tn.Discover(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range found {
		if d.Name == "evil" {
			t.Fatal("client accepted tampered OR after attestation")
		}
	}
	if len(found) != 5 {
		t.Fatalf("discovered %d honest ORs, want 5", len(found))
	}
}

// TestDirectorySubversionBaseline: with a majority of authorities
// subverted, the attacker votes a malicious OR into the baseline
// consensus.
func TestDirectorySubversionBaseline(t *testing.T) {
	tn := deploy(t, ModeBaseline)
	evil := Descriptor{Name: "ghost-or", Host: "nowhere", Exit: true}
	// Subvert 2 of 3 authorities (a majority).
	for _, a := range tn.Auths[:2] {
		a.Subvert()
		if err := a.InjectMaliciousVote(evil); err != nil {
			t.Fatal(err)
		}
	}
	consensus := Consensus(tn.Auths)
	found := false
	for _, d := range consensus {
		if d.Name == "ghost-or" {
			found = true
		}
	}
	if !found {
		t.Fatal("majority-subverted baseline directories failed to poison the consensus")
	}
}

// TestDirectorySubversionSGX: subverting SGX authorities degrades to
// denial of service — the consensus of the surviving authorities stays
// honest.
func TestDirectorySubversionSGX(t *testing.T) {
	tn := deploy(t, ModeSGXDirectory)
	evil := Descriptor{Name: "ghost-or", Host: "nowhere", Exit: true}
	for _, a := range tn.Auths[:2] {
		a.Subvert() // kills the enclave-backed authority
		if err := a.InjectMaliciousVote(evil); err == nil {
			t.Fatal("attacker altered an SGX authority's votes")
		}
	}
	consensus := Consensus(tn.Auths)
	if len(consensus) == 0 {
		t.Fatal("surviving authority should still produce a consensus")
	}
	for _, d := range consensus {
		if d.Name == "ghost-or" {
			t.Fatal("poisoned consensus despite SGX directories")
		}
	}
}

// TestClientAttestsAuthorities covers Table 3's client row: one remote
// attestation per authority.
func TestClientAttestsAuthorities(t *testing.T) {
	tn := deploy(t, ModeSGXDirectory)
	c, err := tn.NewClient("client", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Discover(c); err != nil {
		t.Fatal(err)
	}
	if c.Attestations != len(tn.Auths) {
		t.Fatalf("client performed %d attestations, want %d (one per authority)", c.Attestations, len(tn.Auths))
	}
}

// TestAuthorityAttestationCount covers Table 3's authority row: the
// admission scan attests each SGX OR once per authority.
func TestAuthorityAttestationCount(t *testing.T) {
	tn := deploy(t, ModeSGXORs)
	total := 5 // 3 relays + 2 exits
	for _, a := range tn.Auths {
		if a.Attestations != total {
			t.Fatalf("authority %s attested %d ORs, want %d", a.Name, a.Attestations, total)
		}
	}
}

// TestSGXDirClientRejectsFakeAuthority: a host impersonating an
// authority without the right enclave fails client attestation.
func TestSGXDirClientRejectsFakeAuthority(t *testing.T) {
	tn := deploy(t, ModeSGXDirectory)
	// Launch a non-SGX "authority" on a new host and offer it to the client.
	host, err := tn.newHost("fake-auth", false)
	if err != nil {
		t.Fatal(err)
	}
	fake, err := LaunchAuthority(host, AuthorityConfig{Name: "fake", SGX: false})
	if err != nil {
		t.Fatal(err)
	}
	fake.AdmitManually(Descriptor{Name: "ghost", Host: "nowhere", Exit: true})
	c, _ := tn.NewClient("client", 5)
	hosts := append(tn.AuthorityHosts(), "fake-auth")
	consensus, err := c.FetchConsensus(hosts)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range consensus {
		if d.Name == "ghost" {
			t.Fatal("fake authority influenced an SGX client")
		}
	}
}

func TestDeployModeString(t *testing.T) {
	for _, m := range []DeployMode{ModeBaseline, ModeSGXDirectory, ModeSGXORs, ModeSGXFull, DeployMode(9)} {
		if m.String() == "" {
			t.Fatal("empty mode string")
		}
	}
}

func TestDeployValidation(t *testing.T) {
	if _, err := Deploy(NetworkConfig{Mode: ModeBaseline}); err == nil {
		t.Fatal("directory mode without authorities accepted")
	}
}
