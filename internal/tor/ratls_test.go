package tor

import (
	"errors"
	"strings"
	"testing"

	"sgxnet/internal/core"
	"sgxnet/internal/ratls"
)

// deployRATLS builds an incremental-SGX network admitting relays by
// RA-TLS certificate instead of per-admission challenge/response.
func deployRATLS(t *testing.T) *TorNet {
	t.Helper()
	tn, err := Deploy(NetworkConfig{
		Mode: ModeSGXORs, Authorities: 2, Relays: 2, Exits: 1,
		Seed: 1, RATLS: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

// TestRATLSDeployEndToEnd: a certificate-admitted network still carries
// circuits, every relay enters the consensus, and admissions are cold
// (first sight of each certificate).
func TestRATLSDeployEndToEnd(t *testing.T) {
	tn := deployRATLS(t)
	resp, _ := fetchThroughCircuit(t, tn, 7)
	if string(resp) != "content:GET /index" {
		t.Fatalf("response %q", resp)
	}
	cons := Consensus(tn.Auths)
	if len(cons) != 3 {
		t.Fatalf("consensus has %d relays, want 3", len(cons))
	}
	for _, a := range tn.Auths {
		if a.CertAdmissions != 3 {
			t.Fatalf("%s counted %d certificate admissions, want 3", a.Name, a.CertAdmissions)
		}
		st := a.RATLSStats()
		if st.Cold != 3 || st.Warm != 0 || st.Rejects != 0 {
			t.Fatalf("%s stats %+v, want 3 cold / 0 warm / 0 rejects", a.Name, st)
		}
	}
}

// TestRATLSReadmissionIsWarm: presenting the same certificate again —
// reconnect, periodic re-scan — hits the cache instead of re-running
// both signature verifications.
func TestRATLSReadmissionIsWarm(t *testing.T) {
	tn := deployRATLS(t)
	a, o := tn.Auths[0], tn.ORs[0]
	if err := a.AdmitByCertificate(o.Descriptor(), o.Certificate()); err != nil {
		t.Fatalf("re-admission: %v", err)
	}
	st := a.RATLSStats()
	if st.Warm != 1 {
		t.Fatalf("re-admission was not warm: %+v", st)
	}
	if st.HitRate() <= 0 {
		t.Fatalf("hit rate %v after a warm admission", st.HitRate())
	}
}

// TestRATLSTamperedBuildRejected: a relay running a non-whitelisted
// build mints a perfectly genuine certificate — and the policy check
// still refuses it. Legacy non-SGX relays keep the manual path.
func TestRATLSTamperedBuildRejected(t *testing.T) {
	tn := deployRATLS(t)
	_, err := tn.AddOR(ORConfig{Name: "or-rogue", Exit: true, SGX: true, Version: "9.9"})
	if err == nil {
		t.Fatal("tampered build admitted by certificate")
	}
	if !errors.Is(err, ratls.ErrRejected) {
		t.Fatalf("rejection not via ratls.ErrRejected: %v", err)
	}
	if !strings.Contains(err.Error(), "not admitted") {
		t.Fatalf("unexpected error shape: %v", err)
	}
	if _, err := tn.AddOR(ORConfig{Name: "or-legacy", Exit: false, SGX: false}); err != nil {
		t.Fatalf("legacy relay refused: %v", err)
	}
}

// TestRATLSSybilReRegistrationRejected: replaying a relay's certificate
// under a fresh descriptor name (the Sybil re-registration attack) is
// refused by the instance-ID table, warm path included.
func TestRATLSSybilReRegistrationRejected(t *testing.T) {
	tn := deployRATLS(t)
	a, o := tn.Auths[0], tn.ORs[0]
	d := o.Descriptor()
	d.Name = "or-sybil"
	err := a.AdmitByCertificate(d, o.Certificate())
	if !errors.Is(err, ratls.ErrRejected) {
		t.Fatalf("Sybil re-registration not rejected: %v", err)
	}
	if st := a.RATLSStats(); st.Rejects != 1 {
		t.Fatalf("reject not counted: %+v", st)
	}
	// The honest name still re-admits fine afterwards.
	if err := a.AdmitByCertificate(o.Descriptor(), o.Certificate()); err != nil {
		t.Fatalf("honest re-admission after Sybil attempt: %v", err)
	}
}

// TestRATLSWhitelistRotationRevokes: rotating the authority whitelist
// bumps the cache epoch — relays admitted under the old policy are
// fully re-verified and refused if their build fell off the list.
func TestRATLSWhitelistRotationRevokes(t *testing.T) {
	tn := deployRATLS(t)
	a, o := tn.Auths[0], tn.ORs[0]
	if err := a.SetORWhitelist([]core.Measurement{ORMeasurementForVersionRATLS("2.0")}); err != nil {
		t.Fatal(err)
	}
	err := a.AdmitByCertificate(o.Descriptor(), o.Certificate())
	if !errors.Is(err, ratls.ErrRejected) {
		t.Fatalf("revoked build still admitted: %v", err)
	}
	// Restoring the whitelist re-admits — cold again (epoch moved on).
	if err := a.SetORWhitelist([]core.Measurement{HonestORMeasurementRATLS()}); err != nil {
		t.Fatal(err)
	}
	if err := a.AdmitByCertificate(o.Descriptor(), o.Certificate()); err != nil {
		t.Fatalf("re-admission after restore: %v", err)
	}
	if st := a.RATLSStats(); st.Cold < 4 {
		t.Fatalf("post-rotation admission was not a full re-verification: %+v", st)
	}
}
