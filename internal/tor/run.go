package tor

import (
	"fmt"

	"sgxnet/internal/attest"
	"sgxnet/internal/chord"
	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/ratls"
	"sgxnet/internal/xcall"
)

// Deployment orchestration for the paper's three phases (§3.2):
//
//	ModeBaseline      — today's Tor: nothing attested, volunteers admitted
//	                    manually.
//	ModeSGXDirectory  — authorities run in enclaves: keys and relay lists
//	                    can't be stolen or altered; compromise degrades to
//	                    denial of service.
//	ModeSGXORs        — incremental deployment: SGX ORs are admitted
//	                    automatically by attestation; tampered builds
//	                    fail the integrity check.
//	ModeSGXFull       — everything SGX-enabled; a Chord DHT tracks
//	                    membership and directory authorities disappear.
type DeployMode uint8

const (
	ModeBaseline DeployMode = iota
	ModeSGXDirectory
	ModeSGXORs
	ModeSGXFull
)

func (m DeployMode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeSGXDirectory:
		return "sgx-directory"
	case ModeSGXORs:
		return "sgx-incremental-ors"
	case ModeSGXFull:
		return "sgx-full"
	default:
		return fmt.Sprintf("DeployMode(%d)", uint8(m))
	}
}

// WebService is the destination service deployed for streams.
const WebService = "http"

// WebHost is the destination host name.
const WebHost = "web"

// NetworkConfig sizes a Tor deployment.
type NetworkConfig struct {
	Mode        DeployMode
	Authorities int
	Relays      int // non-exit ORs
	Exits       int
	Seed        int64

	// Xcall, when non-nil, makes every SGX OR relay cells switchlessly
	// through xcall rings sized by this config (see ORConfig.Xcall).
	Xcall *xcall.Config

	// RATLS switches relay admission to attested channels (DESIGN.md
	// §15): every SGX OR mints an RA-TLS certificate at launch,
	// authorities admit by certificate through an amortizing
	// verification cache, and re-admissions hit the warm path. Off by
	// default — the extra certificate handlers change the OR
	// measurement, so baselines stay byte-stable.
	RATLS bool

	// RATLSShards sizes each authority's verification cache (default 4).
	RATLSShards int
}

// TorNet is a deployed Tor network.
type TorNet struct {
	Mode  DeployMode
	Net   *netsim.Network
	Auths []*Authority
	ORs   []*OR
	Ring  *chord.Ring // fully-SGX mode membership
	arch  *core.Signer
	ratls bool
	seq   int
}

// Deploy builds a Tor network in the given mode, with a web destination
// host answering requests with "content:<request>".
func Deploy(cfg NetworkConfig) (*TorNet, error) {
	if cfg.Authorities == 0 && cfg.Mode != ModeSGXFull {
		return nil, fmt.Errorf("tor: mode %v needs authorities", cfg.Mode)
	}
	tn := &TorNet{Mode: cfg.Mode, Net: netsim.New(), ratls: cfg.RATLS}
	arch, err := core.NewSigner()
	if err != nil {
		return nil, err
	}
	tn.arch = arch

	// Destination web server.
	web, err := tn.Net.AddHost(WebHost, core.PlatformConfig{EPCFrames: 64})
	if err != nil {
		return nil, err
	}
	wl, err := web.Listen(WebService)
	if err != nil {
		return nil, err
	}
	go wl.Serve(func(c *netsim.Conn) {
		defer c.Close()
		for {
			req, err := c.Recv()
			if err != nil {
				return
			}
			if err := c.Send(append([]byte("content:"), req...)); err != nil {
				return
			}
		}
	})

	// Directory authorities.
	sgxDirs := cfg.Mode >= ModeSGXDirectory && cfg.Mode != ModeSGXFull
	orMeasure := HonestORMeasurement()
	if cfg.RATLS {
		orMeasure = HonestORMeasurementRATLS()
	}
	if cfg.Mode != ModeSGXFull {
		for i := 0; i < cfg.Authorities; i++ {
			host, err := tn.newHost(fmt.Sprintf("auth%d", i), sgxDirs)
			if err != nil {
				return nil, err
			}
			auth, err := LaunchAuthority(host, AuthorityConfig{
				Name:        fmt.Sprintf("auth%d", i),
				SGX:         sgxDirs,
				ORWhitelist: []core.Measurement{orMeasure},
				RATLS:       cfg.RATLS,
				RATLSShards: cfg.RATLSShards,
			})
			if err != nil {
				return nil, err
			}
			tn.Auths = append(tn.Auths, auth)
		}
	} else {
		tn.Ring = chord.NewRing()
	}

	// Onion routers.
	sgxORs := cfg.Mode >= ModeSGXORs
	for i := 0; i < cfg.Relays+cfg.Exits; i++ {
		exit := i >= cfg.Relays
		name := fmt.Sprintf("or%d", i)
		if _, err := tn.AddOR(ORConfig{Name: name, Exit: exit, SGX: sgxORs, Behavior: BehaveHonest, Xcall: cfg.Xcall, RATLS: cfg.RATLS && sgxORs}); err != nil {
			return nil, err
		}
	}
	return tn, nil
}

// newHost creates a host; SGX hosts get the architectural signer and a
// quoting-enclave agent.
func (tn *TorNet) newHost(name string, sgx bool) (*netsim.SimHost, error) {
	cfg := core.PlatformConfig{EPCFrames: 1024}
	if sgx {
		cfg.ArchSigner = tn.arch.MRSigner()
	}
	plat, err := core.NewPlatform(name, cfg)
	if err != nil {
		return nil, err
	}
	host, err := tn.Net.AddHostWithPlatform(name, plat)
	if err != nil {
		return nil, err
	}
	if sgx {
		if _, err := attest.NewAgent(host, tn.arch); err != nil {
			return nil, err
		}
	}
	return host, nil
}

// AddOR launches an OR, registers it per the deployment mode, and
// returns it. Admission outcome depends on the mode: manual approval in
// the baseline (anything gets in), attestation in SGX modes (tampered
// builds are refused).
func (tn *TorNet) AddOR(cfg ORConfig) (*OR, error) {
	if tn.ratls && cfg.SGX {
		// A RATLS deployment measures the certificate handlers into
		// every SGX relay — late joiners included, or their build would
		// not match the whitelist.
		cfg.RATLS = true
	}
	hostName := cfg.Name + "-host"
	host, err := tn.newHost(hostName, cfg.SGX)
	if err != nil {
		return nil, err
	}
	o, err := LaunchOR(host, cfg)
	if err != nil {
		return nil, err
	}
	tn.ORs = append(tn.ORs, o)

	if cfg.RATLS && cfg.SGX {
		// Mint the relay's attested-channel certificate at launch: the
		// host's quoting infrastructure signs a quote over the OR
		// enclave's channel key and instance ID (DESIGN.md §15).
		mt, err := ratls.NewMinter(host.Platform(), tn.arch)
		if err != nil {
			return o, err
		}
		if err := o.MintCertificate(mt); err != nil {
			return o, err
		}
	}

	switch tn.Mode {
	case ModeBaseline, ModeSGXDirectory:
		// Status-quo admission: volunteer operators are approved
		// manually; nothing verifies what the box actually runs.
		for _, a := range tn.Auths {
			a.AdmitManually(o.Descriptor())
		}
	case ModeSGXORs:
		if cfg.SGX {
			for _, a := range tn.Auths {
				if cfg.RATLS {
					if err := a.AdmitByCertificate(o.Descriptor(), o.Certificate()); err != nil {
						return o, fmt.Errorf("tor: %s not admitted: %w", cfg.Name, err)
					}
					continue
				}
				if err := a.AdmitByAttestation(o.Descriptor()); err != nil {
					return o, fmt.Errorf("tor: %s not admitted: %w", cfg.Name, err)
				}
			}
		} else {
			// Incremental phase: legacy non-SGX relays still rely on
			// manual admission.
			for _, a := range tn.Auths {
				a.AdmitManually(o.Descriptor())
			}
		}
	case ModeSGXFull:
		if !cfg.SGX {
			return o, fmt.Errorf("tor: fully SGX-enabled network refuses non-SGX OR %s", cfg.Name)
		}
		node, err := tn.Ring.Join(cfg.Name)
		if err != nil {
			return o, err
		}
		desc, err := EncodeAny(o.Descriptor())
		if err != nil {
			return o, err
		}
		if _, err := node.Put("or:"+cfg.Name, desc); err != nil {
			return o, err
		}
	}
	return o, nil
}

// FlushXcall drains every OR's rings at a phase boundary (no-op for
// synchronous deployments).
func (tn *TorNet) FlushXcall() error {
	for _, o := range tn.ORs {
		if err := o.FlushXcall(); err != nil {
			return err
		}
	}
	return nil
}

// XcallStats sums ring tallies across all ORs (zero when synchronous).
func (tn *TorNet) XcallStats() xcall.Stats {
	var st xcall.Stats
	for _, o := range tn.ORs {
		st = st.Add(o.XcallStats())
	}
	return st
}

// RelaySGX sums the SGX(U) instruction tally across all OR enclaves —
// the crossing-cost metric the xcall ablation compares.
func (tn *TorNet) RelaySGX() uint64 {
	var sum uint64
	for _, o := range tn.ORs {
		if o.Enclave() != nil {
			sum += o.Enclave().Meter().Snapshot().SGXU
		}
	}
	return sum
}

// AuthorityHosts lists the authority host names (what clients dial).
func (tn *TorNet) AuthorityHosts() []string {
	var out []string
	for _, a := range tn.Auths {
		out = append(out, a.Host.Name())
	}
	return out
}

// NewClient creates a client attached to this network with the
// mode-appropriate whitelist.
func (tn *TorNet) NewClient(name string, seed int64) (*Client, error) {
	host, err := tn.newHost(name, false)
	if err != nil {
		return nil, err
	}
	sgx := tn.Mode != ModeBaseline
	orMeasure := HonestORMeasurement()
	if tn.ratls {
		orMeasure = HonestORMeasurementRATLS()
	}
	return NewClient(host, ClientConfig{
		Name: name,
		SGX:  sgx,
		Whitelist: []core.Measurement{
			AuthorityMeasurement(),
			orMeasure,
		},
		Seed: seed,
	})
}

// Discover returns the OR membership a client would learn: the voted
// consensus in directory modes, or a DHT walk plus per-OR attestation in
// the fully SGX-enabled mode ("verification is done by hardware").
func (tn *TorNet) Discover(c *Client) ([]Descriptor, error) {
	if tn.Mode != ModeSGXFull {
		return c.FetchConsensus(tn.AuthorityHosts())
	}
	// Walk the ring: collect every live node by following successors
	// from a random lookup, fetch descriptors, attest each OR.
	if tn.Ring.Size() == 0 {
		return nil, fmt.Errorf("tor: empty DHT")
	}
	var any *chord.Node
	for _, o := range tn.ORs {
		if o.SGX {
			if n, _, err := findNode(tn.Ring, o.Name); err == nil {
				any = n
				break
			}
		}
	}
	if any == nil {
		return nil, fmt.Errorf("tor: no live DHT node")
	}
	var out []Descriptor
	start := any
	node := any
	for {
		raw, _, err := node.Get("or:" + node.Name())
		if err == nil {
			var d Descriptor
			if DecodeAny(raw, &d) == nil {
				if err := c.AttestOR(d); err == nil {
					out = append(out, d)
				}
			}
		}
		node = node.Successor()
		if node == nil || node == start {
			break
		}
	}
	return out, nil
}

func findNode(r *chord.Ring, name string) (*chord.Node, int, error) {
	// Any node can be found by looking up its own hash from any other
	// node; bootstrap via a throwaway join is unnecessary since we hold
	// the ring handle — walk from a successor lookup.
	n := r.SuccessorOf(chord.HashKey(name))
	if n == nil || n.Name() != name {
		return nil, 0, fmt.Errorf("tor: %s not in DHT", name)
	}
	return n, 0, nil
}
