package tor

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"time"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/sgxcrypto"
)

// EncodeAny and DecodeAny are the package's control-plane codec.
func EncodeAny(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("tor: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func DecodeAny(b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("tor: decode: %w", err)
	}
	return nil
}

// Client is a Tor client: it learns the OR membership (from directory
// authorities, or from the DHT in the fully SGX-enabled setting), builds
// telescoped circuits, and carries streams over them.
type Client struct {
	Name string
	Host *netsim.SimHost
	// SGX clients hold a challenger enclave used to attest authorities
	// (and ORs in the fully SGX-enabled setting).
	SGX bool
	// PreferSGX makes path selection favor hardware-verified relays
	// during the incremental deployment phase — one point in the
	// security-vs-anonymity-set trade-off the paper flags as an open
	// issue ("finding an interim solution that balances security and
	// privacy with performance and efficiency").
	PreferSGX bool

	enclave *core.Enclave
	cstate  *attest.ChallengerState
	shim    *netsim.IOShim
	meter   *core.Meter
	rng     *rand.Rand

	// retry, when set, arms every network operation with deadlines and
	// bounded retries (see SetRetryPolicy).
	retry       *attest.RetryPolicy
	recvTimeout time.Duration

	// Attestations counts remote attestations this client performed
	// (Table 3's "Tor network (Client)" row: one per authority).
	Attestations int
	// Retries counts retried attempts (attestation re-runs, circuit
	// re-picks) and Rebuilds counts full circuit teardown/rebuild cycles.
	Retries  int
	Rebuilds int
}

// SetRetryPolicy makes the client fault-tolerant: directory fetches and
// OR attestations retry with backoff, cell receives time out instead of
// blocking forever, and failed circuit builds re-pick a path around the
// relay they blame. Without it, behavior is the seed's: block, and fail
// permanently on the first lost message.
func (c *Client) SetRetryPolicy(pol attest.RetryPolicy) {
	c.retry = &pol
	c.recvTimeout = pol.RecvTimeout
	if c.shim != nil {
		c.shim.SetRecvTimeout(pol.RecvTimeout)
	}
}

// recv reads from conn under the client's receive deadline, charging the
// timeout's busy-wait cost when it expires (same accounting as the
// enclave I/O shim).
func (c *Client) recv(conn *netsim.Conn) ([]byte, error) {
	raw, err := conn.RecvTimeout(c.recvTimeout)
	if errors.Is(err, netsim.ErrTimeout) {
		c.meter.ChargeNormal(core.CostRecvTimeout)
	}
	return raw, err
}

// ClientConfig configures a client.
type ClientConfig struct {
	Name string
	SGX  bool
	// PreferSGX favors SGX relays in path selection (incremental phase).
	PreferSGX bool
	// Whitelist is the set of enclave measurements the client accepts
	// when attesting (authority build, OR build).
	Whitelist []core.Measurement
	Seed      int64
}

// clientProgram is the measured client build (challenger role only).
func clientProgram(cst *attest.ChallengerState) *core.Program {
	prog := &core.Program{
		Name:     "tor-client",
		Version:  "1.0",
		Handlers: map[string]core.Handler{},
	}
	attest.AddChallengerHandlers(prog, cst)
	return prog
}

// NewClient creates a client on the host.
func NewClient(host *netsim.SimHost, cfg ClientConfig) (*Client, error) {
	c := &Client{
		Name:      cfg.Name,
		Host:      host,
		SGX:       cfg.SGX,
		PreferSGX: cfg.PreferSGX,
		meter:     host.Platform().HostMeter,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.SGX {
		c.cstate = attest.NewChallengerState(attest.Policy{
			AllowedEnclaves: cfg.Whitelist,
			RejectDebug:     true,
		})
		signer, err := core.NewSigner()
		if err != nil {
			return nil, err
		}
		enc, err := host.Platform().Launch(clientProgram(c.cstate), signer)
		if err != nil {
			return nil, err
		}
		c.enclave = enc
		c.meter = enc.Meter()
		c.shim = netsim.NewMsgShim(host, enc.Meter())
		var mh netsim.MultiHost
		mh.Mount("msg.", c.shim)
		enc.BindHost(&mh)
	}
	return c, nil
}

// Meter returns the meter the client's work is charged on: the
// challenger enclave's meter for SGX clients, the host meter otherwise.
// The open-loop load rigs drain it per request to price the client side
// of a circuit exchange.
func (c *Client) Meter() *core.Meter { return c.meter }

// FetchConsensus retrieves the consensus from every authority and keeps
// the descriptors a majority agrees on. An SGX client remote-attests
// each authority before trusting its answer.
func (c *Client) FetchConsensus(authorityHosts []string) ([]Descriptor, error) {
	votes := make(map[string]int)
	descs := make(map[string]Descriptor)
	reached := 0
	for _, ah := range authorityHosts {
		ds, err := c.fetchOne(ah)
		if err != nil {
			continue // dead or refused authority
		}
		reached++
		for _, d := range ds {
			votes[d.Name]++
			descs[d.Name] = d
		}
	}
	if reached == 0 {
		return nil, fmt.Errorf("tor: no authority reachable")
	}
	quorum := reached/2 + 1
	var out []Descriptor
	for name, n := range votes {
		if n >= quorum {
			out = append(out, descs[name])
		}
	}
	return out, nil
}

func (c *Client) fetchOne(authorityHost string) ([]Descriptor, error) {
	var conn *netsim.Conn
	if c.SGX && c.retry != nil {
		dial := func() (*netsim.Conn, error) {
			cn, err := c.Host.Dial(authorityHost, DirService)
			if err != nil {
				return nil, err
			}
			if err := cn.Send([]byte("attest")); err != nil {
				cn.Close()
				return nil, err
			}
			return cn, nil
		}
		cn, _, _, retries, err := attest.ChallengeRetry(c.enclave, c.shim, c.cstate, dial, true, *c.retry)
		c.Retries += retries
		c.Attestations += 1 + retries
		if err != nil {
			return nil, fmt.Errorf("tor: authority %s failed attestation: %w", authorityHost, err)
		}
		conn = cn
	} else {
		cn, err := c.Host.Dial(authorityHost, DirService)
		if err != nil {
			return nil, err
		}
		conn = cn
		if c.SGX {
			if err := conn.Send([]byte("attest")); err != nil {
				conn.Close()
				return nil, err
			}
			c.Attestations++
			if _, _, err := attest.Challenge(c.enclave, c.shim, conn, true); err != nil {
				conn.Close()
				return nil, fmt.Errorf("tor: authority %s failed attestation: %w", authorityHost, err)
			}
		}
	}
	defer conn.Close()
	if err := conn.Send([]byte("consensus")); err != nil {
		return nil, err
	}
	raw, err := c.recv(conn)
	if err != nil {
		return nil, err
	}
	return decodeDescriptors(raw)
}

// AttestOR remote-attests an onion router directly (fully SGX-enabled
// setting: clients verify relays by hardware, no directory votes
// needed).
func (c *Client) AttestOR(d Descriptor) error {
	if !c.SGX {
		return fmt.Errorf("tor: non-SGX client cannot attest")
	}
	if c.retry != nil {
		dial := func() (*netsim.Conn, error) {
			cn, err := c.Host.Dial(d.Host, ORService)
			if err != nil {
				return nil, err
			}
			if err := cn.Send([]byte("attest")); err != nil {
				cn.Close()
				return nil, err
			}
			return cn, nil
		}
		conn, _, _, retries, err := attest.ChallengeRetry(c.enclave, c.shim, c.cstate, dial, true, *c.retry)
		c.Retries += retries
		c.Attestations += 1 + retries
		if err != nil {
			return fmt.Errorf("tor: OR %s failed attestation: %w", d.Name, err)
		}
		conn.Close()
		return nil
	}
	conn, err := c.Host.Dial(d.Host, ORService)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send([]byte("attest")); err != nil {
		return err
	}
	c.Attestations++
	if _, _, err := attest.Challenge(c.enclave, c.shim, conn, true); err != nil {
		return fmt.Errorf("tor: OR %s failed attestation: %w", d.Name, err)
	}
	return nil
}

// Circuit is a client-side circuit handle.
type Circuit struct {
	client *Client
	conn   *netsim.Conn
	circID uint32
	hops   []*sgxcrypto.Channel
	path   []Descriptor
	nextSt uint16
}

// Path returns the circuit's relays.
func (c *Circuit) Path() []Descriptor { return c.path }

// PickPath selects a circuit path from a consensus: distinct relays, the
// last one an exit.
func (c *Client) PickPath(consensus []Descriptor, length int) ([]Descriptor, error) {
	return c.PickPathFor(consensus, length, "")
}

// PickPathFor selects a path whose exit's policy permits the destination
// service, preferring a Guard-flagged relay for the first hop (as Tor
// does for its entry guards).
func (c *Client) PickPathFor(consensus []Descriptor, length int, destService string) ([]Descriptor, error) {
	pool := consensus
	if c.PreferSGX {
		// Use the hardware-verified subset when it can sustain a full
		// path with an exit; otherwise fall back to the mixed pool
		// (shrinking the pool too far hurts anonymity more than the
		// unverified relays hurt integrity).
		var sgxPool []Descriptor
		sgxExits := 0
		for _, d := range consensus {
			if d.SGX {
				sgxPool = append(sgxPool, d)
				if d.Exit && (destService == "" || d.Policy.Allows(destService)) {
					sgxExits++
				}
			}
		}
		if len(sgxPool) >= length && sgxExits > 0 {
			pool = sgxPool
		}
	}
	var exits, relays, guards []Descriptor
	for _, d := range pool {
		if d.Exit && (destService == "" || d.Policy.Allows(destService)) {
			exits = append(exits, d)
		}
		if d.Guard {
			guards = append(guards, d)
		}
		relays = append(relays, d)
	}
	if len(exits) == 0 {
		return nil, fmt.Errorf("tor: no exit permits service %q", destService)
	}
	if len(relays) < length {
		return nil, fmt.Errorf("tor: consensus too small for a %d-hop path", length)
	}
	exit := exits[c.rng.Intn(len(exits))]
	used := map[string]bool{exit.Name: true}
	path := []Descriptor{}
	// Entry hop: prefer a guard distinct from the exit.
	var entryPool []Descriptor
	for _, g := range guards {
		if !used[g.Name] {
			entryPool = append(entryPool, g)
		}
	}
	if length > 1 && len(entryPool) > 0 {
		entry := entryPool[c.rng.Intn(len(entryPool))]
		used[entry.Name] = true
		path = append(path, entry)
	}
	for len(path) < length-1 {
		cand := relays[c.rng.Intn(len(relays))]
		if used[cand.Name] {
			continue
		}
		used[cand.Name] = true
		path = append(path, cand)
	}
	return append(path, exit), nil
}

// BuildCircuit telescopes a circuit along the path: CREATE to the entry,
// then RelayExtend through the growing tunnel, with a fresh DH per hop.
func (c *Client) BuildCircuit(path []Descriptor) (*Circuit, error) {
	circ, _, err := c.buildBlamed(path)
	return circ, err
}

// buildBlamed is BuildCircuit returning which hop it blames for a
// failure (an index into path, or -1 when no relay is at fault). Dial
// and CREATE failures blame the entry; an EXTEND failure blames the hop
// being added — the client cannot see which relay inside the tunnel
// actually misbehaved, so the extend target is the best suspect, and
// BuildCircuitRetry's fresh random paths absorb a wrong guess.
func (c *Client) buildBlamed(path []Descriptor) (*Circuit, int, error) {
	if len(path) == 0 {
		return nil, -1, fmt.Errorf("tor: empty path")
	}
	conn, err := c.Host.Dial(path[0].Host, ORService)
	if err != nil {
		return nil, 0, err
	}
	circ := &Circuit{client: c, conn: conn, circID: uint32(c.rng.Int31()) | 1, path: path, nextSt: 1}

	// Hop 1: CREATE.
	dh, err := sgxcrypto.GenerateKey(c.meter, sgxcrypto.StandardGroup(), nil)
	if err != nil {
		conn.Close()
		return nil, -1, err
	}
	create := Cell{CircID: circ.circID, Cmd: CmdCreate, Payload: dh.Public.Bytes()}
	out, err := create.Marshal()
	if err != nil {
		conn.Close()
		return nil, -1, err
	}
	if err := conn.Send(out); err != nil {
		conn.Close()
		return nil, 0, err
	}
	created, err := c.expectCell(conn, circ.circID, CmdCreated)
	if err != nil {
		conn.Close()
		return nil, 0, fmt.Errorf("tor: CREATE to %s: %w", path[0].Name, err)
	}
	ch, err := c.deriveHop(dh, created.Payload)
	if err != nil {
		conn.Close()
		return nil, 0, err
	}
	circ.hops = append(circ.hops, ch)

	// Hops 2..n: EXTEND through the tunnel.
	for i, hop := range path[1:] {
		dh, err := sgxcrypto.GenerateKey(c.meter, sgxcrypto.StandardGroup(), nil)
		if err != nil {
			circ.Close()
			return nil, -1, err
		}
		data := append(append([]byte(hop.Host), 0), dh.Public.Bytes()...)
		rc := RelayCell{Cmd: RelayExtend, Data: data}
		reply, err := circ.exchange(rc)
		if err != nil {
			circ.Close()
			return nil, 1 + i, fmt.Errorf("tor: extending to %s: %w", hop.Name, err)
		}
		if reply.Cmd != RelayExtended {
			circ.Close()
			return nil, 1 + i, fmt.Errorf("tor: extend to %s refused: %s", hop.Name, reply.Data)
		}
		ch, err := c.deriveHop(dh, reply.Data)
		if err != nil {
			circ.Close()
			return nil, 1 + i, err
		}
		circ.hops = append(circ.hops, ch)
	}
	return circ, -1, nil
}

// filterDescriptors drops excluded relays from a consensus copy.
func filterDescriptors(ds []Descriptor, excluded map[string]bool) []Descriptor {
	if len(excluded) == 0 {
		return ds
	}
	out := make([]Descriptor, 0, len(ds))
	for _, d := range ds {
		if !excluded[d.Name] {
			out = append(out, d)
		}
	}
	return out
}

// BuildCircuitRetry picks a path and builds a circuit, retrying with
// fresh random paths under the client's retry policy when relays fail.
// Blamed relays are excluded from subsequent picks for the duration of
// the call (blame is forgiven if it starves the pool — a wrong guess
// must not make the build impossible). Each retry charges
// core.CostRetryAttempt. Without a retry policy it is a single-shot
// pick-and-build.
func (c *Client) BuildCircuitRetry(consensus []Descriptor, length int, destService string) (*Circuit, error) {
	if c.retry == nil {
		path, err := c.PickPathFor(consensus, length, destService)
		if err != nil {
			return nil, err
		}
		return c.BuildCircuit(path)
	}
	pol := *c.retry
	backoff := pol.Backoff
	excluded := make(map[string]bool)
	var lastErr error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			c.meter.ChargeNormal(core.CostRetryAttempt)
			c.Retries++
			time.Sleep(backoff)
			backoff *= 2
			if backoff > pol.BackoffMax {
				backoff = pol.BackoffMax
			}
		}
		path, err := c.PickPathFor(filterDescriptors(consensus, excluded), length, destService)
		if err != nil {
			if len(excluded) == 0 {
				return nil, err // the full consensus cannot support the path
			}
			excluded = make(map[string]bool)
			if path, err = c.PickPathFor(consensus, length, destService); err != nil {
				return nil, err
			}
		}
		circ, blamed, err := c.buildBlamed(path)
		if err == nil {
			return circ, nil
		}
		if blamed >= 0 && blamed < len(path) {
			excluded[path[blamed].Name] = true
		}
		lastErr = err
	}
	return nil, fmt.Errorf("tor: circuit build failed after %d attempts: %w", pol.Attempts, lastErr)
}

// RebuildCircuit tears down a dead circuit and builds a replacement —
// the relay-failure recovery path. Nothing is excluded a priori: the
// build-retry loop discovers which relay is unreachable and routes
// around it.
func (c *Client) RebuildCircuit(dead *Circuit, consensus []Descriptor, length int, destService string) (*Circuit, error) {
	if dead != nil {
		dead.Close()
	}
	c.Rebuilds++
	return c.BuildCircuitRetry(consensus, length, destService)
}

func (c *Client) deriveHop(dh *sgxcrypto.DHKey, peerPub []byte) (*sgxcrypto.Channel, error) {
	secret, err := dh.Shared(c.meter, new(big.Int).SetBytes(peerPub))
	if err != nil {
		return nil, err
	}
	return sgxcrypto.NewChannel(c.meter, secret)
}

// expectCell reads cells until one matches (circID, cmd), honoring the
// client's receive deadline so a lost cell surfaces as ErrTimeout
// instead of wedging the circuit forever.
func (c *Client) expectCell(conn *netsim.Conn, circID uint32, cmd Command) (Cell, error) {
	for {
		raw, err := c.recv(conn)
		if err != nil {
			return Cell{}, err
		}
		cell, err := UnmarshalCell(raw)
		if err != nil {
			return Cell{}, err
		}
		if cell.CircID == circID && cell.Cmd == cmd {
			return cell, nil
		}
		if cell.Cmd == CmdDestroy {
			return Cell{}, fmt.Errorf("tor: circuit destroyed")
		}
	}
}

// exchange sends a relay cell to the current last hop and waits for the
// backward reply, stripping one onion layer per built hop.
func (circ *Circuit) exchange(rc RelayCell) (RelayCell, error) {
	c := circ.client
	payload, err := WrapForward(c.meter, circ.hops, rc.Marshal())
	if err != nil {
		return RelayCell{}, err
	}
	cell := Cell{CircID: circ.circID, Cmd: CmdRelay, Payload: payload}
	out, err := cell.Marshal()
	if err != nil {
		return RelayCell{}, err
	}
	if err := circ.conn.Send(out); err != nil {
		return RelayCell{}, err
	}
	reply, err := c.expectCell(circ.conn, circ.circID, CmdRelay)
	if err != nil {
		return RelayCell{}, err
	}
	plain, err := UnwrapBackward(c.meter, circ.hops, len(circ.hops), reply.Payload)
	if err != nil {
		return RelayCell{}, err
	}
	return UnmarshalRelay(plain)
}

// Get performs one anonymous request/response exchange with a
// destination ("host|service") through the circuit.
func (circ *Circuit) Get(dest string, request []byte) ([]byte, error) {
	sid := circ.nextSt
	circ.nextSt++
	begin, err := circ.exchange(RelayCell{Cmd: RelayBegin, StreamID: sid, Data: []byte(dest)})
	if err != nil {
		return nil, err
	}
	if begin.Cmd != RelayConnected {
		return nil, fmt.Errorf("tor: begin refused: %s", begin.Data)
	}
	data := append(append([]byte(dest), 0), request...)
	reply, err := circ.exchange(RelayCell{Cmd: RelayData, StreamID: sid, Data: data})
	if err != nil {
		return nil, err
	}
	if reply.Cmd != RelayData {
		return nil, fmt.Errorf("tor: stream error: %s", reply.Data)
	}
	return reply.Data, nil
}

// Close tears the circuit down.
func (circ *Circuit) Close() {
	cell := Cell{CircID: circ.circID, Cmd: CmdDestroy}
	if out, err := cell.Marshal(); err == nil {
		circ.conn.Send(out)
	}
	circ.conn.Close()
}
