package tor

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/big"
	"math/rand"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/sgxcrypto"
)

// EncodeAny and DecodeAny are the package's control-plane codec.
func EncodeAny(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("tor: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func DecodeAny(b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("tor: decode: %w", err)
	}
	return nil
}

// Client is a Tor client: it learns the OR membership (from directory
// authorities, or from the DHT in the fully SGX-enabled setting), builds
// telescoped circuits, and carries streams over them.
type Client struct {
	Name string
	Host *netsim.SimHost
	// SGX clients hold a challenger enclave used to attest authorities
	// (and ORs in the fully SGX-enabled setting).
	SGX bool
	// PreferSGX makes path selection favor hardware-verified relays
	// during the incremental deployment phase — one point in the
	// security-vs-anonymity-set trade-off the paper flags as an open
	// issue ("finding an interim solution that balances security and
	// privacy with performance and efficiency").
	PreferSGX bool

	enclave *core.Enclave
	cstate  *attest.ChallengerState
	shim    *netsim.IOShim
	meter   *core.Meter
	rng     *rand.Rand

	// Attestations counts remote attestations this client performed
	// (Table 3's "Tor network (Client)" row: one per authority).
	Attestations int
}

// ClientConfig configures a client.
type ClientConfig struct {
	Name string
	SGX  bool
	// PreferSGX favors SGX relays in path selection (incremental phase).
	PreferSGX bool
	// Whitelist is the set of enclave measurements the client accepts
	// when attesting (authority build, OR build).
	Whitelist []core.Measurement
	Seed      int64
}

// clientProgram is the measured client build (challenger role only).
func clientProgram(cst *attest.ChallengerState) *core.Program {
	prog := &core.Program{
		Name:     "tor-client",
		Version:  "1.0",
		Handlers: map[string]core.Handler{},
	}
	attest.AddChallengerHandlers(prog, cst)
	return prog
}

// NewClient creates a client on the host.
func NewClient(host *netsim.SimHost, cfg ClientConfig) (*Client, error) {
	c := &Client{
		Name:      cfg.Name,
		Host:      host,
		SGX:       cfg.SGX,
		PreferSGX: cfg.PreferSGX,
		meter:     host.Platform().HostMeter,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.SGX {
		c.cstate = attest.NewChallengerState(attest.Policy{
			AllowedEnclaves: cfg.Whitelist,
			RejectDebug:     true,
		})
		signer, err := core.NewSigner()
		if err != nil {
			return nil, err
		}
		enc, err := host.Platform().Launch(clientProgram(c.cstate), signer)
		if err != nil {
			return nil, err
		}
		c.enclave = enc
		c.meter = enc.Meter()
		c.shim = netsim.NewMsgShim(host, enc.Meter())
		var mh netsim.MultiHost
		mh.Mount("msg.", c.shim)
		enc.BindHost(&mh)
	}
	return c, nil
}

// FetchConsensus retrieves the consensus from every authority and keeps
// the descriptors a majority agrees on. An SGX client remote-attests
// each authority before trusting its answer.
func (c *Client) FetchConsensus(authorityHosts []string) ([]Descriptor, error) {
	votes := make(map[string]int)
	descs := make(map[string]Descriptor)
	reached := 0
	for _, ah := range authorityHosts {
		ds, err := c.fetchOne(ah)
		if err != nil {
			continue // dead or refused authority
		}
		reached++
		for _, d := range ds {
			votes[d.Name]++
			descs[d.Name] = d
		}
	}
	if reached == 0 {
		return nil, fmt.Errorf("tor: no authority reachable")
	}
	quorum := reached/2 + 1
	var out []Descriptor
	for name, n := range votes {
		if n >= quorum {
			out = append(out, descs[name])
		}
	}
	return out, nil
}

func (c *Client) fetchOne(authorityHost string) ([]Descriptor, error) {
	conn, err := c.Host.Dial(authorityHost, DirService)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if c.SGX {
		if err := conn.Send([]byte("attest")); err != nil {
			return nil, err
		}
		c.Attestations++
		if _, _, err := attest.Challenge(c.enclave, c.shim, conn, true); err != nil {
			return nil, fmt.Errorf("tor: authority %s failed attestation: %w", authorityHost, err)
		}
	}
	raw, err := conn.Request([]byte("consensus"))
	if err != nil {
		return nil, err
	}
	return decodeDescriptors(raw)
}

// AttestOR remote-attests an onion router directly (fully SGX-enabled
// setting: clients verify relays by hardware, no directory votes
// needed).
func (c *Client) AttestOR(d Descriptor) error {
	if !c.SGX {
		return fmt.Errorf("tor: non-SGX client cannot attest")
	}
	conn, err := c.Host.Dial(d.Host, ORService)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send([]byte("attest")); err != nil {
		return err
	}
	c.Attestations++
	if _, _, err := attest.Challenge(c.enclave, c.shim, conn, true); err != nil {
		return fmt.Errorf("tor: OR %s failed attestation: %w", d.Name, err)
	}
	return nil
}

// Circuit is a client-side circuit handle.
type Circuit struct {
	client *Client
	conn   *netsim.Conn
	circID uint32
	hops   []*sgxcrypto.Channel
	path   []Descriptor
	nextSt uint16
}

// Path returns the circuit's relays.
func (c *Circuit) Path() []Descriptor { return c.path }

// PickPath selects a circuit path from a consensus: distinct relays, the
// last one an exit.
func (c *Client) PickPath(consensus []Descriptor, length int) ([]Descriptor, error) {
	return c.PickPathFor(consensus, length, "")
}

// PickPathFor selects a path whose exit's policy permits the destination
// service, preferring a Guard-flagged relay for the first hop (as Tor
// does for its entry guards).
func (c *Client) PickPathFor(consensus []Descriptor, length int, destService string) ([]Descriptor, error) {
	pool := consensus
	if c.PreferSGX {
		// Use the hardware-verified subset when it can sustain a full
		// path with an exit; otherwise fall back to the mixed pool
		// (shrinking the pool too far hurts anonymity more than the
		// unverified relays hurt integrity).
		var sgxPool []Descriptor
		sgxExits := 0
		for _, d := range consensus {
			if d.SGX {
				sgxPool = append(sgxPool, d)
				if d.Exit && (destService == "" || d.Policy.Allows(destService)) {
					sgxExits++
				}
			}
		}
		if len(sgxPool) >= length && sgxExits > 0 {
			pool = sgxPool
		}
	}
	var exits, relays, guards []Descriptor
	for _, d := range pool {
		if d.Exit && (destService == "" || d.Policy.Allows(destService)) {
			exits = append(exits, d)
		}
		if d.Guard {
			guards = append(guards, d)
		}
		relays = append(relays, d)
	}
	if len(exits) == 0 {
		return nil, fmt.Errorf("tor: no exit permits service %q", destService)
	}
	if len(relays) < length {
		return nil, fmt.Errorf("tor: consensus too small for a %d-hop path", length)
	}
	exit := exits[c.rng.Intn(len(exits))]
	used := map[string]bool{exit.Name: true}
	path := []Descriptor{}
	// Entry hop: prefer a guard distinct from the exit.
	var entryPool []Descriptor
	for _, g := range guards {
		if !used[g.Name] {
			entryPool = append(entryPool, g)
		}
	}
	if length > 1 && len(entryPool) > 0 {
		entry := entryPool[c.rng.Intn(len(entryPool))]
		used[entry.Name] = true
		path = append(path, entry)
	}
	for len(path) < length-1 {
		cand := relays[c.rng.Intn(len(relays))]
		if used[cand.Name] {
			continue
		}
		used[cand.Name] = true
		path = append(path, cand)
	}
	return append(path, exit), nil
}

// BuildCircuit telescopes a circuit along the path: CREATE to the entry,
// then RelayExtend through the growing tunnel, with a fresh DH per hop.
func (c *Client) BuildCircuit(path []Descriptor) (*Circuit, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("tor: empty path")
	}
	conn, err := c.Host.Dial(path[0].Host, ORService)
	if err != nil {
		return nil, err
	}
	circ := &Circuit{client: c, conn: conn, circID: uint32(c.rng.Int31()) | 1, path: path, nextSt: 1}

	// Hop 1: CREATE.
	dh, err := sgxcrypto.GenerateKey(c.meter, sgxcrypto.StandardGroup(), nil)
	if err != nil {
		return nil, err
	}
	create := Cell{CircID: circ.circID, Cmd: CmdCreate, Payload: dh.Public.Bytes()}
	out, err := create.Marshal()
	if err != nil {
		return nil, err
	}
	if err := conn.Send(out); err != nil {
		return nil, err
	}
	created, err := c.expectCell(conn, circ.circID, CmdCreated)
	if err != nil {
		return nil, fmt.Errorf("tor: CREATE to %s: %w", path[0].Name, err)
	}
	ch, err := c.deriveHop(dh, created.Payload)
	if err != nil {
		return nil, err
	}
	circ.hops = append(circ.hops, ch)

	// Hops 2..n: EXTEND through the tunnel.
	for _, hop := range path[1:] {
		dh, err := sgxcrypto.GenerateKey(c.meter, sgxcrypto.StandardGroup(), nil)
		if err != nil {
			return nil, err
		}
		data := append(append([]byte(hop.Host), 0), dh.Public.Bytes()...)
		rc := RelayCell{Cmd: RelayExtend, Data: data}
		reply, err := circ.exchange(rc)
		if err != nil {
			return nil, fmt.Errorf("tor: extending to %s: %w", hop.Name, err)
		}
		if reply.Cmd != RelayExtended {
			return nil, fmt.Errorf("tor: extend to %s refused: %s", hop.Name, reply.Data)
		}
		ch, err := c.deriveHop(dh, reply.Data)
		if err != nil {
			return nil, err
		}
		circ.hops = append(circ.hops, ch)
	}
	return circ, nil
}

func (c *Client) deriveHop(dh *sgxcrypto.DHKey, peerPub []byte) (*sgxcrypto.Channel, error) {
	secret, err := dh.Shared(c.meter, new(big.Int).SetBytes(peerPub))
	if err != nil {
		return nil, err
	}
	return sgxcrypto.NewChannel(c.meter, secret)
}

// expectCell reads cells until one matches (circID, cmd).
func (c *Client) expectCell(conn *netsim.Conn, circID uint32, cmd Command) (Cell, error) {
	for {
		raw, err := conn.Recv()
		if err != nil {
			return Cell{}, err
		}
		cell, err := UnmarshalCell(raw)
		if err != nil {
			return Cell{}, err
		}
		if cell.CircID == circID && cell.Cmd == cmd {
			return cell, nil
		}
		if cell.Cmd == CmdDestroy {
			return Cell{}, fmt.Errorf("tor: circuit destroyed")
		}
	}
}

// exchange sends a relay cell to the current last hop and waits for the
// backward reply, stripping one onion layer per built hop.
func (circ *Circuit) exchange(rc RelayCell) (RelayCell, error) {
	c := circ.client
	payload, err := WrapForward(c.meter, circ.hops, rc.Marshal())
	if err != nil {
		return RelayCell{}, err
	}
	cell := Cell{CircID: circ.circID, Cmd: CmdRelay, Payload: payload}
	out, err := cell.Marshal()
	if err != nil {
		return RelayCell{}, err
	}
	if err := circ.conn.Send(out); err != nil {
		return RelayCell{}, err
	}
	reply, err := c.expectCell(circ.conn, circ.circID, CmdRelay)
	if err != nil {
		return RelayCell{}, err
	}
	plain, err := UnwrapBackward(c.meter, circ.hops, len(circ.hops), reply.Payload)
	if err != nil {
		return RelayCell{}, err
	}
	return UnmarshalRelay(plain)
}

// Get performs one anonymous request/response exchange with a
// destination ("host|service") through the circuit.
func (circ *Circuit) Get(dest string, request []byte) ([]byte, error) {
	sid := circ.nextSt
	circ.nextSt++
	begin, err := circ.exchange(RelayCell{Cmd: RelayBegin, StreamID: sid, Data: []byte(dest)})
	if err != nil {
		return nil, err
	}
	if begin.Cmd != RelayConnected {
		return nil, fmt.Errorf("tor: begin refused: %s", begin.Data)
	}
	data := append(append([]byte(dest), 0), request...)
	reply, err := circ.exchange(RelayCell{Cmd: RelayData, StreamID: sid, Data: data})
	if err != nil {
		return nil, err
	}
	if reply.Cmd != RelayData {
		return nil, fmt.Errorf("tor: stream error: %s", reply.Data)
	}
	return reply.Data, nil
}

// Close tears the circuit down.
func (circ *Circuit) Close() {
	cell := Cell{CircID: circ.circID, Cmd: CmdDestroy}
	if out, err := cell.Marshal(); err == nil {
		circ.conn.Send(out)
	}
	circ.conn.Close()
}
