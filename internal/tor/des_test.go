package tor

import (
	"testing"
	"time"

	"sgxnet/internal/netsim"
	"sgxnet/internal/netsim/des"
)

// TestCircuitOverDESKernel is the compat-shim proof for the
// discrete-event kernel: an unmodified Tor rig — directory quorum,
// attested admission, circuit build, onion round trips — runs over a
// network whose fault delays are virtual-clock events. Seconds of
// modeled per-hop latency would make the wall-clock fault pipeline
// unusable in a test; under the kernel the run finishes promptly and
// the relayed bytes are exactly right.
func TestCircuitOverDESKernel(t *testing.T) {
	tn, err := Deploy(NetworkConfig{Mode: ModeSGXORs, Authorities: 3, Relays: 3, Exits: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	k := des.New()
	tn.Net.SetKernel(k)
	stop := k.Background()
	defer stop()
	tn.Net.SetFaults(netsim.NewFaultSchedule(21).
		AddLink(netsim.LinkFaults{Latency: 2 * time.Second, Jitter: time.Second}))

	start := time.Now()
	cl, err := tn.NewClient("des-client", 7)
	if err != nil {
		t.Fatal(err)
	}
	consensus, err := tn.Discover(cl)
	if err != nil {
		t.Fatal(err)
	}
	path, err := cl.PickPath(consensus, 3)
	if err != nil {
		t.Fatal(err)
	}
	circ, err := cl.BuildCircuit(path)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	for i := 0; i < 3; i++ {
		out, err := circ.Get(WebHost+"|"+WebService, []byte("des"))
		if err != nil {
			t.Fatalf("onion get %d under virtual latency: %v", i, err)
		}
		if string(out) != "content:des" {
			t.Fatalf("onion get %d: %q", i, out)
		}
	}
	if wall := time.Since(start); wall > 30*time.Second {
		t.Fatalf("rig took %v of wall clock despite virtual delays", wall)
	}
	if st := tn.Net.Faults().Stats(); st.Delayed == 0 {
		t.Fatal("no deliveries rode the virtual-delay path — the kernel shim was bypassed")
	}
	if k.Now() < des.DurationCycles(2*time.Second) {
		t.Fatalf("virtual clock at %d cycles, want at least one modeled 2s delay", k.Now())
	}
}
