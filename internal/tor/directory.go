package tor

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/obs"
	"sgxnet/internal/ratls"
)

// Directory authorities (§3.2). Tor runs a small set of authorities that
// perform admission control, flag or drop bad relays, and produce a
// consensus by majority vote. They are the system's trust root — and a
// compromise target: "multiple directory authorities have actually been
// compromised" [11]. The SGX deployment keeps authority keys and the
// relay list inside enclaves: a compromised host can kill the authority
// (denial of service) but cannot alter its votes or admit malicious ORs.

// AuthorityVersion is the community-verified directory build.
const AuthorityVersion = "1.0"

// DirService is the netsim service authorities listen on.
const DirService = "dir"

// Authority is one directory authority. In the SGX deployment the relay
// list lives inside the enclave ("they can keep authority keys and list
// of Tor nodes inside the enclaves", §3.2) and persists across restarts
// through sealed storage; the untrusted runtime holds only the sealed
// blob.
type Authority struct {
	Name string
	Host *netsim.SimHost
	SGX  bool

	mu        sync.Mutex
	approved  map[string]Descriptor // non-SGX view (attacker-reachable)
	killed    bool                  // DoS'd (all an attacker can do to an SGX authority)
	subverted bool                  // behavior-altered (possible only without SGX)

	enclave *core.Enclave
	view    *dirView // enclave-held view (SGX)
	tstate  *attest.TargetState
	cstate  *attest.ChallengerState
	shim    *netsim.IOShim
	signer  *core.Signer
	wl      []core.Measurement

	// verifier, when non-nil, admits relays by RA-TLS certificate with
	// an amortizing quote-verification cache (AuthorityConfig.RATLS).
	verifier *ratls.Verifier

	// Attestations counts remote attestations this authority performed
	// against ORs (Table 3's "Tor network (Authority)" row).
	Attestations int
	// CertAdmissions counts RA-TLS certificate admissions.
	CertAdmissions int

	trace   *obs.Trace
	trTrack string
}

// SetTrace makes the authority record each OR admission attestation as
// spans on the given track (carrying the authority enclave's tally
// delta), plus a "tor.admit" instant per admitted OR. Admissions on one
// authority are serialized by the callers (deploy and re-scan loops),
// so the track stays sequential.
func (a *Authority) SetTrace(tr *obs.Trace, track string) {
	a.mu.Lock()
	a.trace, a.trTrack = tr, track
	a.mu.Unlock()
}

// dirView is the enclave-private relay list.
type dirView struct {
	mu       sync.Mutex
	approved map[string]Descriptor
}

func newDirView() *dirView { return &dirView{approved: make(map[string]Descriptor)} }

func (v *dirView) list() []Descriptor {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]Descriptor, 0, len(v.approved))
	for _, d := range v.approved {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AuthorityConfig configures a launched authority.
type AuthorityConfig struct {
	Name   string
	SGX    bool
	Signer *core.Signer
	// ORWhitelist is the measurement set SGX authorities accept when
	// attesting onion routers.
	ORWhitelist []core.Measurement
	// RATLS equips the authority with an RA-TLS verifier so relays are
	// admitted by certificate (AdmitByCertificate) instead of the full
	// interactive attestation. The verifier caches verdicts: N
	// admissions of one certificate cost one verification, and the
	// instance-ID table rejects Sybil re-registration.
	RATLS bool
	// RATLSShards sizes the verifier's lock striping (default 4).
	RATLSShards int
}

// authorityProgram builds the authority enclave: attestation target (for
// clients attesting the directory), challenger (for the authority
// attesting ORs), and the in-enclave relay-list handlers, in one
// measured build.
func authorityProgram(tst *attest.TargetState, cst *attest.ChallengerState, view *dirView) *core.Program {
	prog := &core.Program{
		Name:    "tor-dirauth",
		Version: AuthorityVersion,
		Handlers: map[string]core.Handler{
			"dir.admit": func(env *core.Env, arg []byte) ([]byte, error) {
				var d Descriptor
				if err := DecodeAny(arg, &d); err != nil {
					return nil, err
				}
				view.mu.Lock()
				view.approved[d.Name] = d
				view.mu.Unlock()
				return nil, nil
			},
			"dir.drop": func(env *core.Env, arg []byte) ([]byte, error) {
				view.mu.Lock()
				delete(view.approved, string(arg))
				view.mu.Unlock()
				return nil, nil
			},
			"dir.vote": func(env *core.Env, arg []byte) ([]byte, error) {
				return encodeDescriptors(view.list())
			},
			// dir.seal / dir.restore persist the relay list across
			// restarts: the untrusted host stores only a sealed blob.
			"dir.seal": func(env *core.Env, arg []byte) ([]byte, error) {
				raw, err := EncodeAny(view.list())
				if err != nil {
					return nil, err
				}
				return env.SealData(core.KeySeal, raw)
			},
			"dir.restore": func(env *core.Env, arg []byte) ([]byte, error) {
				raw, err := env.UnsealData(core.KeySeal, arg)
				if err != nil {
					return nil, err
				}
				ds, err := decodeDescriptors(raw)
				if err != nil {
					return nil, err
				}
				view.mu.Lock()
				for _, d := range ds {
					view.approved[d.Name] = d
				}
				view.mu.Unlock()
				return nil, nil
			},
		},
	}
	attest.AddTargetHandlers(prog, tst)
	attest.AddChallengerHandlers(prog, cst)
	return prog
}

// AuthorityMeasurement is the whitelisted directory-authority identity.
func AuthorityMeasurement() core.Measurement {
	return core.MeasureProgram(authorityProgram(attest.NewTargetState(), attest.NewChallengerState(attest.Policy{}), newDirView()))
}

// LaunchAuthority starts a directory authority on the host.
func LaunchAuthority(host *netsim.SimHost, cfg AuthorityConfig) (*Authority, error) {
	a := &Authority{
		Name:     cfg.Name,
		Host:     host,
		SGX:      cfg.SGX,
		approved: make(map[string]Descriptor),
	}
	if cfg.SGX {
		signer := cfg.Signer
		if signer == nil {
			var err error
			signer, err = core.NewSigner()
			if err != nil {
				return nil, err
			}
		}
		a.signer = signer
		a.wl = append([]core.Measurement(nil), cfg.ORWhitelist...)
		if cfg.RATLS {
			shards := cfg.RATLSShards
			if shards == 0 {
				shards = 4
			}
			a.verifier = ratls.NewVerifier(attest.Policy{
				AllowedEnclaves: a.wl,
				RejectDebug:     true,
			}, shards)
		}
		if err := a.launchEnclave(); err != nil {
			return nil, err
		}
	}
	l, err := host.Listen(DirService)
	if err != nil {
		return nil, err
	}
	go l.Serve(a.serveConn)
	return a, nil
}

// SetRecvTimeout bounds the authority enclave's receives — required
// under a fault schedule, where a lost challenger message would
// otherwise wedge the responder inside a half-finished attestation.
func (a *Authority) SetRecvTimeout(d time.Duration) {
	if a.shim != nil {
		a.shim.SetRecvTimeout(d)
	}
}

// serveConn answers directory requests. SGX authorities first serve a
// remote attestation when the peer asks for one.
func (a *Authority) serveConn(conn *netsim.Conn) {
	defer conn.Close()
	first, err := conn.Recv()
	if err != nil {
		return
	}
	if string(first) == "attest" {
		if !a.SGX || a.Killed() {
			return
		}
		if _, err := attest.Respond(a.enclave, a.shim, a.Host, conn); err != nil {
			return
		}
		first, err = conn.Recv()
		if err != nil {
			return
		}
	}
	if string(first) != "consensus" {
		return
	}
	if a.Killed() {
		return
	}
	view := a.Vote()
	out, err := encodeDescriptors(view)
	if err != nil {
		return
	}
	if conn.Send(out) != nil {
		return
	}
	// Linger until the requester closes: under a fault schedule the
	// consensus may still be in flight (delayed), and closing now would
	// race its delivery.
	for {
		if _, err := conn.Recv(); err != nil {
			return
		}
	}
}

// launchEnclave (re)creates the authority enclave with a fresh view.
func (a *Authority) launchEnclave() error {
	a.tstate = attest.NewTargetState()
	a.cstate = attest.NewChallengerState(attest.Policy{
		AllowedEnclaves: a.wl,
		RejectDebug:     true,
	})
	a.view = newDirView()
	enc, err := a.Host.Platform().Launch(authorityProgram(a.tstate, a.cstate, a.view), a.signer)
	if err != nil {
		return err
	}
	a.enclave = enc
	a.shim = netsim.NewMsgShim(a.Host, enc.Meter())
	var mh netsim.MultiHost
	mh.Mount("msg.", a.shim)
	enc.BindHost(&mh)
	return nil
}

// Enclave returns the authority's enclave (nil when not SGX).
func (a *Authority) Enclave() *core.Enclave { return a.enclave }

// SealState exports the enclave's relay list as a sealed blob the
// untrusted host may store.
func (a *Authority) SealState() ([]byte, error) {
	if !a.SGX {
		return nil, fmt.Errorf("tor: authority %s is not SGX-enabled", a.Name)
	}
	return a.enclave.Call("dir.seal", nil)
}

// Restart models a reboot of an SGX authority: the enclave is destroyed
// and relaunched, then restored from the sealed blob. Keys and the relay
// list survive without ever being visible to the host.
func (a *Authority) Restart(sealed []byte) error {
	if !a.SGX {
		return fmt.Errorf("tor: authority %s is not SGX-enabled", a.Name)
	}
	a.enclave.Destroy()
	if err := a.launchEnclave(); err != nil {
		return err
	}
	if sealed != nil {
		if _, err := a.enclave.Call("dir.restore", sealed); err != nil {
			return err
		}
	}
	return nil
}

// AdmitManually approves an OR by operator fiat — the status quo the
// paper criticizes ("current model of manually admitting ORs essentially
// relies on trust on non-trustworthy volunteers").
func (a *Authority) AdmitManually(d Descriptor) {
	if a.SGX && !a.Killed() {
		if raw, err := EncodeAny(d); err == nil {
			a.enclave.Call("dir.admit", raw)
		}
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.approved[d.Name] = d
}

// AdmitByAttestation attests the OR's enclave and approves it only if
// the measurement matches the community-verified build. This is the
// paper's "incremental addition of SGX-enabled ORs": admission becomes
// automatic, and "malicious Tor nodes fail to pass an enclave integrity
// check".
func (a *Authority) AdmitByAttestation(d Descriptor) error {
	if !a.SGX {
		return fmt.Errorf("tor: authority %s is not SGX-enabled", a.Name)
	}
	if a.Killed() {
		return fmt.Errorf("tor: authority %s is down", a.Name)
	}
	conn, err := a.Host.Dial(d.Host, ORService)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send([]byte("attest")); err != nil {
		return err
	}
	a.mu.Lock()
	a.Attestations++
	tr, track := a.trace, a.trTrack
	a.mu.Unlock()
	if _, _, err := attest.ChallengeTrace(tr, track, a.enclave, a.shim, conn, true); err != nil {
		return fmt.Errorf("tor: OR %s failed attestation: %w", d.Name, err)
	}
	raw, err := EncodeAny(d)
	if err != nil {
		return err
	}
	if _, err := a.enclave.Call("dir.admit", raw); err != nil {
		return err
	}
	tr.Event(track, "tor.admit", map[string]string{"or": d.Name})
	return nil
}

// AdmitByCertificate admits an OR by its RA-TLS certificate: the quote
// embedded in the certificate proves the relay's build, so admission
// needs no interactive protocol — and the verification cache makes
// re-admission (directory re-scans, authority restarts against the
// same relay set) cost a cache lookup instead of two signature checks.
// The instance-ID table refuses the same enclave instance registering
// under a second relay name (Sybil re-registration).
func (a *Authority) AdmitByCertificate(d Descriptor, cert []byte) error {
	if a.verifier == nil {
		return fmt.Errorf("tor: authority %s has no RA-TLS verifier", a.Name)
	}
	if a.Killed() {
		return fmt.Errorf("tor: authority %s is down", a.Name)
	}
	a.mu.Lock()
	a.CertAdmissions++
	tr, track := a.trace, a.trTrack
	a.mu.Unlock()
	if _, err := a.verifier.Admit(a.enclave.Meter(), cert, d.Name); err != nil {
		return fmt.Errorf("tor: OR %s failed certificate admission: %w", d.Name, err)
	}
	raw, err := EncodeAny(d)
	if err != nil {
		return err
	}
	if _, err := a.enclave.Call("dir.admit", raw); err != nil {
		return err
	}
	tr.Event(track, "tor.admit", map[string]string{"or": d.Name, "via": "ratls"})
	return nil
}

// RATLSStats snapshots the authority's verification-cache counters
// (zero value when the authority has no RA-TLS verifier).
func (a *Authority) RATLSStats() ratls.Stats {
	if a.verifier == nil {
		return ratls.Stats{}
	}
	return a.verifier.Stats()
}

// Drop removes an OR from this authority's view.
func (a *Authority) Drop(name string) {
	if a.SGX && !a.Killed() {
		a.enclave.Call("dir.drop", []byte(name))
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.approved, name)
}

// Subvert models a host compromise. A non-SGX authority's behavior is
// fully attacker-controlled afterwards; an SGX authority can only be
// killed (denial of service), because the enclave's keys and logic are
// out of the attacker's reach.
func (a *Authority) Subvert() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.SGX {
		a.killed = true
		return
	}
	a.subverted = true
}

// Killed reports whether the authority is down.
func (a *Authority) Killed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.killed
}

// InjectMaliciousVote makes a subverted authority vote for an attacker
// OR. It fails on SGX authorities: there is no way to make the enclave
// cast that vote.
func (a *Authority) InjectMaliciousVote(d Descriptor) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.subverted {
		return fmt.Errorf("tor: authority %s is not attacker-controlled", a.Name)
	}
	a.approved[d.Name] = d
	return nil
}

// Vote returns the authority's current view (empty if killed).
func (a *Authority) Vote() []Descriptor {
	if a.Killed() {
		return nil
	}
	if a.SGX {
		raw, err := a.enclave.Call("dir.vote", nil)
		if err != nil {
			return nil
		}
		ds, err := decodeDescriptors(raw)
		if err != nil {
			return nil
		}
		return ds
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Descriptor, 0, len(a.approved))
	for _, d := range a.approved {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Consensus computes the OR set approved by a majority of *live*
// authorities — Tor's defense against individual authority compromise.
func Consensus(auths []*Authority) []Descriptor {
	votes := make(map[string]int)
	desc := make(map[string]Descriptor)
	live := 0
	for _, a := range auths {
		if a.Killed() {
			continue
		}
		live++
		for _, d := range a.Vote() {
			votes[d.Name]++
			desc[d.Name] = d
		}
	}
	if live == 0 {
		return nil
	}
	quorum := live/2 + 1
	var out []Descriptor
	for name, n := range votes {
		if n >= quorum {
			out = append(out, desc[name])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// encodeDescriptors / decodeDescriptors serialize a consensus document.
func encodeDescriptors(ds []Descriptor) ([]byte, error) {
	return EncodeAny(ds)
}

func decodeDescriptors(b []byte) ([]Descriptor, error) {
	var ds []Descriptor
	if err := DecodeAny(b, &ds); err != nil {
		return nil, err
	}
	return ds, nil
}

// SetORWhitelist replaces the measurement set the authority accepts when
// attesting onion routers — used when the authority follows a community
// release registry (§4) and a new release revokes an old build.
func (a *Authority) SetORWhitelist(ms []core.Measurement) error {
	if !a.SGX {
		return fmt.Errorf("tor: authority %s is not SGX-enabled", a.Name)
	}
	a.mu.Lock()
	a.wl = append([]core.Measurement(nil), ms...)
	a.mu.Unlock()
	a.cstate.SetPolicy(attest.Policy{AllowedEnclaves: ms, RejectDebug: true})
	if a.verifier != nil {
		// Revocation reaches the certificate cache too: the epoch bump
		// forces a full re-verification of every cached relay against
		// the new whitelist on its next admission.
		a.verifier.SetPolicy(attest.Policy{AllowedEnclaves: ms, RejectDebug: true})
	}
	return nil
}

// Reverify re-attests every OR in the authority's view against the
// current whitelist, dropping those that no longer pass — the ongoing
// integrity scanning the paper describes ("authorities can attest their
// integrity").
func (a *Authority) Reverify() (dropped []string) {
	for _, d := range a.Vote() {
		if !d.SGX {
			continue
		}
		if err := a.AdmitByAttestation(d); err != nil {
			a.Drop(d.Name)
			dropped = append(dropped, d.Name)
		}
	}
	return dropped
}
