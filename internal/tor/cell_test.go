package tor

import (
	"bytes"
	"testing"
	"testing/quick"

	"sgxnet/internal/core"
	"sgxnet/internal/sgxcrypto"
)

func TestCellMarshalRoundTrip(t *testing.T) {
	c := Cell{CircID: 0xdeadbeef, Cmd: CmdRelay, Payload: []byte("hello")}
	raw, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != CellSize {
		t.Fatalf("wire size %d", len(raw))
	}
	got, err := UnmarshalCell(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.CircID != c.CircID || got.Cmd != c.Cmd || !bytes.Equal(got.Payload, c.Payload) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestCellOversizeRejected(t *testing.T) {
	c := Cell{Cmd: CmdRelay, Payload: make([]byte, MaxPayload+1)}
	if _, err := c.Marshal(); err != ErrCellTooLarge {
		t.Fatalf("err=%v", err)
	}
	if _, err := UnmarshalCell(make([]byte, 10)); err != ErrBadCell {
		t.Fatalf("short cell err=%v", err)
	}
	// Length field larger than payload area.
	raw, _ := (&Cell{Cmd: CmdRelay}).Marshal()
	raw[5], raw[6] = 0xff, 0xff
	if _, err := UnmarshalCell(raw); err != ErrBadCell {
		t.Fatalf("bad length err=%v", err)
	}
}

func TestCellPropertyRoundTrip(t *testing.T) {
	f := func(circ uint32, cmd uint8, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		c := Cell{CircID: circ, Cmd: Command(cmd), Payload: payload}
		raw, err := c.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalCell(raw)
		return err == nil && got.CircID == c.CircID && got.Cmd == c.Cmd && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRelayCellRoundTrip(t *testing.T) {
	rc := RelayCell{Cmd: RelayData, StreamID: 7, Data: []byte("payload")}
	got, err := UnmarshalRelay(rc.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmd != rc.Cmd || got.StreamID != rc.StreamID || !bytes.Equal(got.Data, rc.Data) {
		t.Fatalf("%+v", got)
	}
	if _, err := UnmarshalRelay([]byte{1}); err != ErrBadCell {
		t.Fatal("short relay accepted")
	}
}

func TestCommandString(t *testing.T) {
	for _, c := range []Command{CmdCreate, CmdCreated, CmdRelay, CmdDestroy, Command(99)} {
		if c.String() == "" {
			t.Fatal("empty command string")
		}
	}
}

func makeHops(t *testing.T, n int) []*sgxcrypto.Channel {
	t.Helper()
	m := core.NewMeter()
	hops := make([]*sgxcrypto.Channel, n)
	for i := range hops {
		var secret [32]byte
		secret[0] = byte(i + 1)
		ch, err := sgxcrypto.NewChannel(m, secret)
		if err != nil {
			t.Fatal(err)
		}
		hops[i] = ch
	}
	return hops
}

func TestOnionForwardPeelsInOrder(t *testing.T) {
	m := core.NewMeter()
	hops := makeHops(t, 3)
	msg := []byte("relay payload")
	wrapped, err := WrapForward(m, hops, msg)
	if err != nil {
		t.Fatal(err)
	}
	// Hop 1 peels: forward marker.
	rest, deliver, err := peelForward(m, hops[0], wrapped)
	if err != nil || deliver {
		t.Fatalf("hop1: deliver=%v err=%v", deliver, err)
	}
	// Hop 2 peels: forward marker.
	rest, deliver, err = peelForward(m, hops[1], rest)
	if err != nil || deliver {
		t.Fatalf("hop2: deliver=%v err=%v", deliver, err)
	}
	// Hop 3 peels: deliver.
	rest, deliver, err = peelForward(m, hops[2], rest)
	if err != nil || !deliver {
		t.Fatalf("hop3: deliver=%v err=%v", deliver, err)
	}
	if !bytes.Equal(rest, msg) {
		t.Fatalf("payload %q", rest)
	}
}

func TestOnionWrongHopCannotPeel(t *testing.T) {
	m := core.NewMeter()
	hops := makeHops(t, 3)
	wrapped, _ := WrapForward(m, hops, []byte("x"))
	if _, _, err := peelForward(m, hops[1], wrapped); err == nil {
		t.Fatal("middle hop peeled the entry layer")
	}
}

func TestOnionBackwardRoundTrip(t *testing.T) {
	m := core.NewMeter()
	hops := makeHops(t, 3)
	msg := []byte("response")
	// Exit seals, middle seals, entry seals.
	payload := msg
	for i := len(hops) - 1; i >= 0; i-- {
		sealed, err := addBackward(m, hops[i], payload)
		if err != nil {
			t.Fatal(err)
		}
		payload = sealed
	}
	got, err := UnwrapBackward(m, hops, 3, payload)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("%q %v", got, err)
	}
	if _, err := UnwrapBackward(m, hops, 4, payload); err == nil {
		t.Fatal("depth beyond circuit accepted")
	}
}

func TestOnionTamperDetected(t *testing.T) {
	m := core.NewMeter()
	hops := makeHops(t, 2)
	wrapped, _ := WrapForward(m, hops, []byte("x"))
	wrapped[len(wrapped)/2] ^= 1
	if _, _, err := peelForward(m, hops[0], wrapped); err == nil {
		t.Fatal("tampered onion accepted")
	}
}

func TestOnionPropertyRoundTrip(t *testing.T) {
	m := core.NewMeter()
	hops := makeHops(t, 3)
	f := func(msg []byte) bool {
		if len(msg) > 300 {
			msg = msg[:300]
		}
		wrapped, err := WrapForward(m, hops, msg)
		if err != nil {
			return false
		}
		cur := wrapped
		for i := 0; i < 3; i++ {
			rest, deliver, err := peelForward(m, hops[i], cur)
			if err != nil {
				return false
			}
			if i < 2 && deliver {
				return false
			}
			if i == 2 {
				return deliver && bytes.Equal(rest, msg)
			}
			cur = rest
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWrapForwardEmptyHops(t *testing.T) {
	if _, err := WrapForward(core.NewMeter(), nil, []byte("x")); err == nil {
		t.Fatal("empty hop list accepted")
	}
}
