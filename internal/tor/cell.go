// Package tor implements the paper's §3.2 application: a Tor-style onion
// routing network and the three SGX deployment phases the paper explores
// — SGX-enabled directory authorities, incremental deployment of
// SGX-enabled onion routers with attestation-based admission, and the
// fully SGX-enabled setting where a Chord DHT replaces the directory
// authorities entirely.
//
// The network substrate is real: fixed-size cells, telescoped circuits
// built with per-hop Diffie-Hellman, layered onion encryption, exit
// streams to simulated destinations, and directory authorities that vote
// on consensus. The attacks the paper cites — exit-node tampering ("one
// bad apple", "spoiled onions") and directory subversion — are
// implemented and demonstrably excluded by the SGX deployments.
package tor

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// CellSize is the fixed on-wire cell size, as in Tor.
const CellSize = 512

// cellHeader is circID(4) + command(1) + length(2).
const cellHeader = 7

// MaxPayload is the usable payload per cell.
const MaxPayload = CellSize - cellHeader

// Command is a cell command.
type Command uint8

const (
	// CmdCreate opens a circuit hop: payload carries the client's DH
	// public value.
	CmdCreate Command = iota + 1
	// CmdCreated answers with the OR's DH public value.
	CmdCreated
	// CmdRelay carries an onion-encrypted relay payload.
	CmdRelay
	// CmdDestroy tears the circuit down.
	CmdDestroy
)

func (c Command) String() string {
	switch c {
	case CmdCreate:
		return "CREATE"
	case CmdCreated:
		return "CREATED"
	case CmdRelay:
		return "RELAY"
	case CmdDestroy:
		return "DESTROY"
	default:
		return fmt.Sprintf("Command(%d)", uint8(c))
	}
}

// Cell is one fixed-size Tor cell.
type Cell struct {
	CircID  uint32
	Cmd     Command
	Payload []byte
}

// ErrCellTooLarge reports an oversized payload.
var ErrCellTooLarge = errors.New("tor: payload exceeds cell capacity")

// ErrBadCell reports a malformed wire cell.
var ErrBadCell = errors.New("tor: malformed cell")

// Marshal encodes the cell into exactly CellSize bytes.
func (c *Cell) Marshal() ([]byte, error) {
	if len(c.Payload) > MaxPayload {
		return nil, ErrCellTooLarge
	}
	out := make([]byte, CellSize)
	binary.BigEndian.PutUint32(out[:4], c.CircID)
	out[4] = byte(c.Cmd)
	binary.BigEndian.PutUint16(out[5:7], uint16(len(c.Payload)))
	copy(out[cellHeader:], c.Payload)
	return out, nil
}

// UnmarshalCell decodes a wire cell.
func UnmarshalCell(b []byte) (Cell, error) {
	if len(b) != CellSize {
		return Cell{}, ErrBadCell
	}
	n := binary.BigEndian.Uint16(b[5:7])
	if int(n) > MaxPayload {
		return Cell{}, ErrBadCell
	}
	return Cell{
		CircID:  binary.BigEndian.Uint32(b[:4]),
		Cmd:     Command(b[4]),
		Payload: append([]byte(nil), b[cellHeader:cellHeader+int(n)]...),
	}, nil
}

// RelayCommand is the command inside a relay payload (visible only after
// all onion layers are stripped, i.e. at the addressed hop).
type RelayCommand uint8

const (
	// RelayExtend asks the current last hop to extend the circuit.
	RelayExtend RelayCommand = iota + 1
	// RelayExtended confirms an extension, carrying the new hop's DH
	// public value.
	RelayExtended
	// RelayBegin opens a stream to a destination ("host|service").
	RelayBegin
	// RelayConnected confirms a stream.
	RelayConnected
	// RelayData carries stream bytes.
	RelayData
	// RelayEnd closes a stream.
	RelayEnd
)

// RelayCell is the plaintext relay payload.
type RelayCell struct {
	Cmd      RelayCommand
	StreamID uint16
	Data     []byte
}

// Marshal encodes the relay cell: cmd(1) streamID(2) len(2) data.
func (r *RelayCell) Marshal() []byte {
	out := make([]byte, 5+len(r.Data))
	out[0] = byte(r.Cmd)
	binary.BigEndian.PutUint16(out[1:3], r.StreamID)
	binary.BigEndian.PutUint16(out[3:5], uint16(len(r.Data)))
	copy(out[5:], r.Data)
	return out
}

// UnmarshalRelay decodes a relay payload.
func UnmarshalRelay(b []byte) (RelayCell, error) {
	if len(b) < 5 {
		return RelayCell{}, ErrBadCell
	}
	n := int(binary.BigEndian.Uint16(b[3:5]))
	if len(b) < 5+n {
		return RelayCell{}, ErrBadCell
	}
	return RelayCell{
		Cmd:      RelayCommand(b[0]),
		StreamID: binary.BigEndian.Uint16(b[1:3]),
		Data:     append([]byte(nil), b[5:5+n]...),
	}, nil
}
