package tor

import (
	"testing"

	"sgxnet/internal/community"
)

// TestRegistryDrivenRollover exercises §4 end to end in the Tor setting:
// the foundation publishes release 1.0, authorities derive their
// whitelist from the verified history, admit 1.0 relays; then release
// 2.0 revokes 1.0, authorities update, re-verify, and drop the old
// builds while a 2.0 relay is admitted.
func TestRegistryDrivenRollover(t *testing.T) {
	foundation, err := community.NewFoundation("tor-or")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := foundation.Publish("1.0", ORMeasurementForVersion(ORVersion)); err != nil {
		t.Fatal(err)
	}
	registry, err := community.Follow("tor-or", foundation.HistoryPublicKey(), foundation.Chain(), foundation.Head())
	if err != nil {
		t.Fatal(err)
	}

	tn, err := Deploy(NetworkConfig{Mode: ModeSGXORs, Authorities: 2, Relays: 2, Exits: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Swap the deploy-time whitelist for the registry-derived one and
	// confirm the 1.0 relays still verify.
	for _, a := range tn.Auths {
		if err := a.SetORWhitelist(registry.Current()); err != nil {
			t.Fatal(err)
		}
		if dropped := a.Reverify(); len(dropped) != 0 {
			t.Fatalf("registry whitelist dropped current relays: %v", dropped)
		}
	}

	// Release 2.0 revokes 1.0 (say, a circuit-handling bug).
	if _, err := foundation.Publish("2.0", ORMeasurementForVersion("2.0"), "1.0"); err != nil {
		t.Fatal(err)
	}
	if err := registry.Update(foundation.Chain(), foundation.Head()); err != nil {
		t.Fatal(err)
	}
	for _, a := range tn.Auths {
		if err := a.SetORWhitelist(registry.Current()); err != nil {
			t.Fatal(err)
		}
	}

	// A relay running the new release is admitted…
	if _, err := tn.AddOR(ORConfig{Name: "or-new", Exit: true, SGX: true, Version: "2.0"}); err != nil {
		t.Fatalf("2.0 relay rejected: %v", err)
	}
	// …and the re-verification scan drops every 1.0 relay.
	for _, a := range tn.Auths {
		dropped := a.Reverify()
		if len(dropped) != 3 { // 2 relays + 1 exit from the original deploy
			t.Fatalf("authority %s dropped %v, want the three 1.0 relays", a.Name, dropped)
		}
	}
	consensus := Consensus(tn.Auths)
	if len(consensus) != 1 || consensus[0].Name != "or-new" {
		t.Fatalf("post-rollover consensus = %v", consensus)
	}
}

// TestRegistryForkDetectedByRelayOperator: a relay operator following
// the history spots a rewritten chain before trusting its whitelist.
func TestRegistryForkDetectedByRelayOperator(t *testing.T) {
	foundation, err := community.NewFoundation("tor-or")
	if err != nil {
		t.Fatal(err)
	}
	foundation.Publish("1.0", ORMeasurementForVersion(ORVersion))
	operator, err := community.Follow("tor-or", foundation.HistoryPublicKey(), foundation.Chain(), foundation.Head())
	if err != nil {
		t.Fatal(err)
	}
	foundation.Publish("1.1", ORMeasurementForVersion("1.1"))
	if err := operator.Update(foundation.Chain(), foundation.Head()); err != nil {
		t.Fatal(err)
	}
	// An attacker who somehow got the history key serves a rewritten
	// chain; the operator's local prefix disagrees.
	evil, _ := community.NewFoundation("tor-or")
	evil.Publish("1.0", ORMeasurementForVersion("1.0-evil"))
	if err := operator.Update(evil.Chain(), evil.Head()); err == nil {
		t.Fatal("operator accepted a rewritten history")
	}
}

// TestAuthorityRestartWithSealedState: the relay list survives an
// authority reboot via sealed storage, never visible to the host.
func TestAuthorityRestartWithSealedState(t *testing.T) {
	tn, err := Deploy(NetworkConfig{Mode: ModeSGXORs, Authorities: 2, Relays: 2, Exits: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := tn.Auths[0]
	before := a.Vote()
	if len(before) != 3 {
		t.Fatalf("view = %v", before)
	}
	sealed, err := a.SealState()
	if err != nil {
		t.Fatal(err)
	}
	// The sealed blob must not reveal relay names to the host.
	for _, d := range before {
		if bytesContains(sealed, []byte(d.Name)) {
			t.Fatalf("sealed state leaks relay name %q", d.Name)
		}
	}
	if err := a.Restart(sealed); err != nil {
		t.Fatal(err)
	}
	after := a.Vote()
	if len(after) != len(before) {
		t.Fatalf("view lost on restart: %d → %d", len(before), len(after))
	}
	for i := range before {
		if after[i].Name != before[i].Name {
			t.Fatalf("view differs after restart")
		}
	}
	// Restart without state yields an empty view (cold start).
	if err := a.Restart(nil); err != nil {
		t.Fatal(err)
	}
	if len(a.Vote()) != 0 {
		t.Fatal("cold restart retained state")
	}
	// Tampered sealed blob is rejected.
	sealed[8] ^= 1
	if err := a.Restart(sealed); err == nil {
		t.Fatal("tampered sealed state accepted")
	}
}

func bytesContains(haystack, needle []byte) bool {
	if len(needle) == 0 || len(haystack) < len(needle) {
		return false
	}
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// TestLivenessScanDropsDeadOR: Reverify drops an OR whose host vanished
// — the liveness determination authorities perform.
func TestLivenessScanDropsDeadOR(t *testing.T) {
	tn, err := Deploy(NetworkConfig{Mode: ModeSGXORs, Authorities: 1, Relays: 2, Exits: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	victim := tn.ORs[0]
	tn.Net.RemoveHost(victim.Host.Name())
	a := tn.Auths[0]
	dropped := a.Reverify()
	if len(dropped) != 1 || dropped[0] != victim.Name {
		t.Fatalf("dropped = %v, want [%s]", dropped, victim.Name)
	}
	if len(a.Vote()) != 2 {
		t.Fatalf("view = %v", a.Vote())
	}
}
