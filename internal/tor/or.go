package tor

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/big"
	"sync"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/ratls"
	"sgxnet/internal/sgxcrypto"
	"sgxnet/internal/xcall"
)

// ORService is the netsim service onion routers listen on.
const ORService = "or"

// ORVersion is the community-verified onion router build. A tampered
// build carries a different version string and therefore a different
// measurement — which is exactly how attestation-based admission spots
// it.
const ORVersion = "1.0"

// Behavior selects an OR's (mis)behavior for attack simulation.
type Behavior uint8

const (
	// BehaveHonest follows the protocol.
	BehaveHonest Behavior = iota
	// BehaveTamperExit modifies stream responses at the exit — the
	// "spoiled onions" exit tampering attack.
	BehaveTamperExit
	// BehaveSnoop records stream plaintext at the exit — the "one bad
	// apple" profiling attack.
	BehaveSnoop
)

// circKey addresses a circuit hop by (link, circuit ID).
type circKey struct {
	link uint32
	circ uint32
}

// circuit is one OR's per-circuit state.
type circuit struct {
	key     *sgxcrypto.Channel
	prev    circKey // toward the client
	next    circKey // toward the exit (valid when hasNext)
	hasNext bool
	// pendingExtend is set while a CREATE to the next hop is in flight.
	pendingExtend bool
}

// orState is the onion router logic — a cell-driven state machine shared
// by the native and the in-enclave deployments. All I/O goes through the
// send/dial/stream callbacks so the enclave build can route them through
// OCALLs.
type orState struct {
	name   string
	exit   bool
	behv   Behavior
	policy ExitPolicy

	mu       sync.Mutex
	circuits map[circKey]*circuit
	byNext   map[circKey]*circuit
	nextCirc uint32
	snoopLog []string

	send   func(m *core.Meter, link uint32, cell []byte) error
	dial   func(m *core.Meter, orHost string) (uint32, error)
	stream func(m *core.Meter, dest string, req []byte) ([]byte, error)
}

func newORState(name string, exit bool, behv Behavior) *orState {
	return &orState{
		name:     name,
		exit:     exit,
		behv:     behv,
		circuits: make(map[circKey]*circuit),
		byNext:   make(map[circKey]*circuit),
		nextCirc: 1,
	}
}

// SnoopLog returns what a snooping exit recorded.
func (s *orState) SnoopLog() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.snoopLog...)
}

// onCell processes one inbound cell from a link.
func (s *orState) onCell(m *core.Meter, link uint32, raw []byte) error {
	cell, err := UnmarshalCell(raw)
	if err != nil {
		return err
	}
	key := circKey{link: link, circ: cell.CircID}
	switch cell.Cmd {
	case CmdCreate:
		return s.onCreate(m, key, cell.Payload)
	case CmdCreated:
		return s.onCreated(m, key, cell.Payload)
	case CmdRelay:
		return s.onRelay(m, key, cell.Payload)
	case CmdDestroy:
		s.destroy(key)
		return nil
	default:
		return fmt.Errorf("tor: %s: unknown cell %v", s.name, cell.Cmd)
	}
}

// onCreate answers a circuit-open: run the responder half of the DH.
func (s *orState) onCreate(m *core.Meter, key circKey, payload []byte) error {
	clientPub := new(big.Int).SetBytes(payload)
	dh, err := sgxcrypto.GenerateKey(m, sgxcrypto.StandardGroup(), nil)
	if err != nil {
		return err
	}
	secret, err := dh.Shared(m, clientPub)
	if err != nil {
		return err
	}
	ch, err := sgxcrypto.NewChannel(m, secret)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.circuits[key] = &circuit{key: ch, prev: key}
	s.mu.Unlock()
	reply := Cell{CircID: key.circ, Cmd: CmdCreated, Payload: dh.Public.Bytes()}
	out, err := reply.Marshal()
	if err != nil {
		return err
	}
	return s.send(m, key.link, out)
}

// onCreated completes an extension this OR initiated on behalf of a
// client: forward the new hop's DH public value backward.
func (s *orState) onCreated(m *core.Meter, key circKey, payload []byte) error {
	s.mu.Lock()
	circ := s.byNext[key]
	if circ == nil || !circ.pendingExtend {
		s.mu.Unlock()
		return fmt.Errorf("tor: %s: CREATED for unknown extension", s.name)
	}
	circ.pendingExtend = false
	circ.hasNext = true
	s.mu.Unlock()
	rc := RelayCell{Cmd: RelayExtended, Data: payload}
	return s.sendBack(m, circ, rc.Marshal())
}

// onRelay handles a relay cell, distinguishing forward (from the client
// side) and backward (from the next hop) directions.
func (s *orState) onRelay(m *core.Meter, key circKey, payload []byte) error {
	s.mu.Lock()
	if circ, ok := s.byNext[key]; ok { // backward direction
		s.mu.Unlock()
		sealed, err := addBackward(m, circ.key, payload)
		if err != nil {
			return err
		}
		cell := Cell{CircID: circ.prev.circ, Cmd: CmdRelay, Payload: sealed}
		out, err := cell.Marshal()
		if err != nil {
			return err
		}
		return s.send(m, circ.prev.link, out)
	}
	circ, ok := s.circuits[key]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("tor: %s: relay on unknown circuit %v", s.name, key)
	}
	rest, deliver, err := peelForward(m, circ.key, payload)
	if err != nil {
		// Unrecognized or tampered cell: tear the circuit down and tell
		// the client side, so it fails fast instead of waiting forever.
		if out, merr := (&Cell{CircID: key.circ, Cmd: CmdDestroy}).Marshal(); merr == nil {
			s.send(m, key.link, out)
		}
		s.destroy(key)
		return err
	}
	if !deliver {
		s.mu.Lock()
		next, hasNext := circ.next, circ.hasNext
		s.mu.Unlock()
		if !hasNext {
			return fmt.Errorf("tor: %s: forward-marked cell at last hop", s.name)
		}
		cell := Cell{CircID: next.circ, Cmd: CmdRelay, Payload: rest}
		out, err := cell.Marshal()
		if err != nil {
			return err
		}
		return s.send(m, next.link, out)
	}
	rc, err := UnmarshalRelay(rest)
	if err != nil {
		return err
	}
	return s.handleRelay(m, circ, rc)
}

// handleRelay executes a relay command addressed to this hop.
func (s *orState) handleRelay(m *core.Meter, circ *circuit, rc RelayCell) error {
	switch rc.Cmd {
	case RelayExtend:
		target := string(rc.Data[:bytes.IndexByte(rc.Data, 0)])
		clientPub := rc.Data[bytes.IndexByte(rc.Data, 0)+1:]
		link, err := s.dial(m, target)
		if err != nil {
			return s.sendBack(m, circ, (&RelayCell{Cmd: RelayEnd, Data: []byte(err.Error())}).Marshal())
		}
		s.mu.Lock()
		outCirc := s.nextCirc
		s.nextCirc++
		circ.next = circKey{link: link, circ: outCirc}
		circ.pendingExtend = true
		s.byNext[circ.next] = circ
		s.mu.Unlock()
		cell := Cell{CircID: outCirc, Cmd: CmdCreate, Payload: clientPub}
		out, err := cell.Marshal()
		if err != nil {
			return err
		}
		return s.send(m, link, out)

	case RelayBegin:
		if !s.exit {
			return s.sendBack(m, circ, (&RelayCell{Cmd: RelayEnd, StreamID: rc.StreamID, Data: []byte("not an exit")}).Marshal())
		}
		// Streams are request/response in this substrate; BEGIN just
		// acknowledges — the destination is dialed per DATA exchange.
		return s.sendBack(m, circ, (&RelayCell{Cmd: RelayConnected, StreamID: rc.StreamID}).Marshal())

	case RelayData:
		if !s.exit {
			return s.sendBack(m, circ, (&RelayCell{Cmd: RelayEnd, StreamID: rc.StreamID, Data: []byte("not an exit")}).Marshal())
		}
		sep := bytes.IndexByte(rc.Data, 0)
		if sep < 0 {
			return s.sendBack(m, circ, (&RelayCell{Cmd: RelayEnd, StreamID: rc.StreamID, Data: []byte("bad begin")}).Marshal())
		}
		dest, req := string(rc.Data[:sep]), rc.Data[sep+1:]
		if svcSep := bytes.IndexByte([]byte(dest), '|'); svcSep >= 0 {
			if !s.policy.Allows(dest[svcSep+1:]) {
				return s.sendBack(m, circ, (&RelayCell{Cmd: RelayEnd, StreamID: rc.StreamID, Data: []byte("exit policy refused")}).Marshal())
			}
		}
		if s.behv == BehaveSnoop {
			// The bad-apple attack: the exit sees, and records, the
			// plaintext of every stream it carries.
			s.mu.Lock()
			s.snoopLog = append(s.snoopLog, fmt.Sprintf("%s → %q", dest, req))
			s.mu.Unlock()
		}
		resp, err := s.stream(m, dest, req)
		if err != nil {
			return s.sendBack(m, circ, (&RelayCell{Cmd: RelayEnd, StreamID: rc.StreamID, Data: []byte(err.Error())}).Marshal())
		}
		if s.behv == BehaveTamperExit {
			// Exit tampering: the client has no end-to-end integrity, so
			// a modified payload re-enters the onion unnoticed.
			resp = append([]byte("EVIL:"), resp...)
		}
		return s.sendBack(m, circ, (&RelayCell{Cmd: RelayData, StreamID: rc.StreamID, Data: resp}).Marshal())

	case RelayEnd:
		return nil

	default:
		return fmt.Errorf("tor: %s: unexpected relay command %d", s.name, rc.Cmd)
	}
}

// sendBack seals a relay payload with this hop's key and sends it toward
// the client.
func (s *orState) sendBack(m *core.Meter, circ *circuit, relay []byte) error {
	sealed, err := addBackward(m, circ.key, relay)
	if err != nil {
		return err
	}
	cell := Cell{CircID: circ.prev.circ, Cmd: CmdRelay, Payload: sealed}
	out, err := cell.Marshal()
	if err != nil {
		return err
	}
	return s.send(m, circ.prev.link, out)
}

func (s *orState) destroy(key circKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if circ, ok := s.circuits[key]; ok {
		delete(s.circuits, key)
		if circ.hasNext || circ.pendingExtend {
			delete(s.byNext, circ.next)
		}
	}
}

// OR is a deployed onion router: the state machine plus its host runtime
// (and, in the SGX deployment, the enclave it runs in).
type OR struct {
	Name  string
	Host  *netsim.SimHost
	Exit  bool
	Guard bool
	SGX   bool

	state      *orState
	enclave    *core.Enclave
	shim       *netsim.IOShim
	attestShim *netsim.IOShim      // control-plane shim for attestation
	tstate     *attest.TargetState // attestation target (SGX ORs)

	// Switchless relaying (ORConfig.Xcall): inbound cells enter through
	// callRing instead of Enclave.Call; outbound cells leave through
	// sendRing + the batched data-plane shim instead of per-cell
	// crossings. Attestation traffic (attestShim, msg.*) stays on the
	// synchronous path — admission is control-plane, not hot.
	callRing *xcall.CallRing
	sendRing *xcall.OCallRing

	mu       sync.Mutex
	links    map[uint32]*netsim.Conn
	shimIDs  map[uint32]uint32 // link → data-plane shim connID (switchless sends)
	nextLink uint32
	listener *netsim.Listener
	meter    *core.Meter
	cert     []byte // minted RA-TLS certificate (RATLS deployments)
}

// ExitPolicy restricts which destination services an exit serves. An
// empty AllowedServices list allows everything.
type ExitPolicy struct {
	AllowedServices []string
}

// Allows reports whether the policy permits a destination service.
func (p ExitPolicy) Allows(service string) bool {
	if len(p.AllowedServices) == 0 {
		return true
	}
	for _, s := range p.AllowedServices {
		if s == service {
			return true
		}
	}
	return false
}

// Descriptor describes an OR for directories/DHT.
type Descriptor struct {
	Name string
	Host string
	Exit bool
	SGX  bool
	// Guard marks relays stable enough for the first hop.
	Guard bool
	// Policy is the exit policy (meaningful when Exit).
	Policy ExitPolicy
}

// Descriptor returns the OR's directory descriptor.
func (o *OR) Descriptor() Descriptor {
	return Descriptor{Name: o.Name, Host: o.Host.Name(), Exit: o.Exit, SGX: o.SGX,
		Guard: o.Guard, Policy: o.state.policy}
}

// MintCertificate obtains the OR's RA-TLS certificate from a minter on
// its own platform and stores it for admission. Requires an enclave
// built with ORConfig.RATLS.
func (o *OR) MintCertificate(mt *ratls.Minter) error {
	if o.enclave == nil {
		return fmt.Errorf("tor: %s is not SGX-enabled", o.Name)
	}
	_, raw, err := mt.Mint(o.enclave)
	if err != nil {
		return fmt.Errorf("tor: minting certificate for %s: %w", o.Name, err)
	}
	o.mu.Lock()
	o.cert = raw
	o.mu.Unlock()
	return nil
}

// Certificate returns the OR's minted RA-TLS certificate (nil before
// MintCertificate).
func (o *OR) Certificate() []byte {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.cert
}

// SnoopLog exposes a malicious exit's recordings (attack verification).
func (o *OR) SnoopLog() []string { return o.state.SnoopLog() }

// Enclave returns the OR's enclave (nil for native ORs).
func (o *OR) Enclave() *core.Enclave { return o.enclave }

// ORConfig configures a launched OR.
type ORConfig struct {
	Name     string
	Exit     bool
	Behavior Behavior
	// SGX runs the OR inside an enclave. A non-honest behavior then
	// requires a tampered build, whose measurement admission checks will
	// reject.
	SGX    bool
	Signer *core.Signer
	// Version overrides the build version (default ORVersion) — used
	// when rolling out a new community release (§4).
	Version string
	// Guard marks the relay first-hop eligible.
	Guard bool
	// ExitPolicy restricts an exit's destinations.
	ExitPolicy ExitPolicy
	// Xcall, when non-nil and SGX is set, routes cell relaying through
	// switchless rings sized by this config instead of one
	// EENTER/EEXIT (in) and one EEXIT/ERESUME (out) per cell.
	Xcall *xcall.Config
	// RATLS, when set with SGX, builds the OR image with the RA-TLS
	// certificate handlers (internal/ratls) so the relay can present an
	// attested certificate at admission instead of running the full
	// interactive attestation per authority. The handlers participate in
	// the measurement: RA-TLS deployments whitelist
	// HonestORMeasurementRATLS, not HonestORMeasurement.
	RATLS bool
}

// LaunchOR starts an onion router on the host.
func LaunchOR(host *netsim.SimHost, cfg ORConfig) (*OR, error) {
	o := &OR{
		Name:  cfg.Name,
		Host:  host,
		Exit:  cfg.Exit,
		Guard: cfg.Guard,
		SGX:   cfg.SGX,
		state: newORState(cfg.Name, cfg.Exit, cfg.Behavior),
		links: make(map[uint32]*netsim.Conn),
	}
	o.state.policy = cfg.ExitPolicy
	if cfg.SGX {
		if err := o.launchEnclave(cfg); err != nil {
			return nil, err
		}
	} else {
		o.meter = host.Platform().HostMeter
		o.state.send = o.hostSend
		o.state.dial = o.hostDial
		o.state.stream = o.hostStream
	}
	l, err := host.Listen(ORService)
	if err != nil {
		return nil, err
	}
	o.listener = l
	go l.Serve(o.serveConn)
	return o, nil
}

// ORProgram is the measured onion-router build: version and behavior are
// part of the identity. Only {version ORVersion, BehaveHonest} is the
// community-verified build; anything else is a tampered binary.
func ORProgram(state *orState, tstate *attest.TargetState, version string, behv Behavior) *core.Program {
	cfg := []byte{byte(behv)}
	prog := &core.Program{
		Name:    "tor-or",
		Version: version,
		Config:  cfg,
		Handlers: map[string]core.Handler{
			"or.cell": func(env *core.Env, arg []byte) ([]byte, error) {
				if len(arg) < 4 {
					return nil, fmt.Errorf("tor: short cell arg")
				}
				link := binary.LittleEndian.Uint32(arg[:4])
				return nil, state.onCell(env.Meter(), link, arg[4:])
			},
		},
	}
	attest.AddTargetHandlers(prog, tstate)
	return prog
}

// ORProgramRATLS is the measured OR build of an RA-TLS deployment: the
// base image plus the certificate-request handlers. A distinct image
// means a distinct MRENCLAVE, so the community registry publishes both
// measurements and a deployment whitelists the one matching its
// admission mode.
func ORProgramRATLS(state *orState, tstate *attest.TargetState, version string, behv Behavior) *core.Program {
	prog := ORProgram(state, tstate, version, behv)
	ratls.AddSubjectHandlers(prog)
	return prog
}

// HonestORMeasurement is the whitelisted OR identity of the default
// release.
func HonestORMeasurement() core.Measurement {
	return ORMeasurementForVersion(ORVersion)
}

// ORMeasurementForVersion computes the honest OR identity of a given
// release version (what a community registry publishes per release).
func ORMeasurementForVersion(version string) core.Measurement {
	return core.MeasureProgram(ORProgram(newORState("m", false, BehaveHonest), attest.NewTargetState(), version, BehaveHonest))
}

// HonestORMeasurementRATLS is the whitelisted RA-TLS OR identity of the
// default release.
func HonestORMeasurementRATLS() core.Measurement {
	return ORMeasurementForVersionRATLS(ORVersion)
}

// ORMeasurementForVersionRATLS computes the honest RA-TLS OR identity
// of a given release version.
func ORMeasurementForVersionRATLS(version string) core.Measurement {
	return core.MeasureProgram(ORProgramRATLS(newORState("m", false, BehaveHonest), attest.NewTargetState(), version, BehaveHonest))
}

func (o *OR) launchEnclave(cfg ORConfig) error {
	version := cfg.Version
	if version == "" {
		version = ORVersion
	}
	if cfg.Behavior != BehaveHonest {
		// A misbehaving "SGX" OR is a tampered rebuild: same code base,
		// different image — hence a different, non-whitelisted
		// measurement.
		version += "-modified"
	}
	o.tstate = attest.NewTargetState()
	var prog *core.Program
	if cfg.RATLS {
		prog = ORProgramRATLS(o.state, o.tstate, version, cfg.Behavior)
	} else {
		prog = ORProgram(o.state, o.tstate, version, cfg.Behavior)
	}
	signer := cfg.Signer
	if signer == nil {
		var err error
		signer, err = core.NewSigner()
		if err != nil {
			return err
		}
	}
	enc, err := o.Host.Platform().Launch(prog, signer)
	if err != nil {
		return err
	}
	o.enclave = enc
	o.meter = enc.Meter()
	o.shim = netsim.NewIOShim(o.Host, enc.Meter())
	o.attestShim = netsim.NewMsgShim(o.Host, enc.Meter())
	var mh netsim.MultiHost
	mh.Mount("net.", o.shim)
	mh.Mount("msg.", o.attestShim)
	mh.Mount("tor.", core.HostFunc(o.torOCall))
	enc.BindHost(&mh)
	// Enclave-side I/O callbacks.
	if cfg.Xcall != nil {
		xc := cfg.Xcall.WithDefaults()
		o.callRing = xcall.NewCallRing(enc, xc)
		o.sendRing = xcall.NewOCallRing(enc, o.shim, xc)
		o.shim.SetBatched(xc.Batch)
		o.shimIDs = make(map[uint32]uint32)
		// Switchless send: the cell rides the shared ring to the
		// untrusted data-plane shim — ring ops plus the shim's windowed
		// batched charges; no per-cell crossing.
		o.state.send = func(m *core.Meter, link uint32, cell []byte) error {
			id, err := o.shimConnID(link)
			if err != nil {
				return err
			}
			_, err = o.sendRing.OCall("net.send", netsim.EncodeSend(id, cell))
			return err
		}
	} else {
		o.state.send = func(m *core.Meter, link uint32, cell []byte) error {
			o.mu.Lock()
			conn := o.links[link]
			o.mu.Unlock()
			if conn == nil {
				return fmt.Errorf("tor: %s: unknown link %d", o.Name, link)
			}
			// Data-plane send through the enclave boundary (Table 2 costs).
			m.ChargeNormal(core.CostIOCallFixed + core.CostIOPerPacket)
			m.ChargeSGX(core.SGXInstIOPerPacket + 2) // packet crossing + EEXIT/ERESUME
			return conn.Send(cell)
		}
	}
	o.state.dial = func(m *core.Meter, orHost string) (uint32, error) {
		m.ChargeSGX(2) // OCALL to the untrusted dialer
		return o.dialLink(orHost)
	}
	o.state.stream = func(m *core.Meter, dest string, req []byte) ([]byte, error) {
		m.ChargeSGX(2) // OCALL to the untrusted stream proxy
		m.ChargeNormal(core.CostIOCallFixed + 2*core.CostIOPerPacket)
		return o.doStream(dest, req)
	}
	return nil
}

// shimConnID maps a cell link to its data-plane shim connID, adopting
// the connection into the shim on first use (switchless sends address
// connections the shim way).
func (o *OR) shimConnID(link uint32) (uint32, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if id, ok := o.shimIDs[link]; ok {
		return id, nil
	}
	conn := o.links[link]
	if conn == nil {
		return 0, fmt.Errorf("tor: %s: unknown link %d", o.Name, link)
	}
	id := o.shim.Adopt(conn)
	o.shimIDs[link] = id
	return id, nil
}

// enterCell feeds one inbound cell to the enclave, switchlessly when a
// call ring is configured.
func (o *OR) enterCell(arg []byte) error {
	if o.callRing != nil {
		_, err := o.callRing.Call("or.cell", arg)
		return err
	}
	_, err := o.enclave.Call("or.cell", arg)
	return err
}

// FlushXcall drains the OR's rings and closes the shim's send window
// at a phase boundary (measurement snapshot, teardown). No-op for
// synchronous ORs.
func (o *OR) FlushXcall() error {
	if o.callRing == nil {
		return nil
	}
	if err := o.callRing.Flush(); err != nil {
		return err
	}
	if err := o.sendRing.Flush(); err != nil {
		return err
	}
	o.shim.FlushBatch()
	return nil
}

// XcallStats sums the OR's ring tallies (zero when synchronous).
func (o *OR) XcallStats() xcall.Stats {
	if o.callRing == nil {
		return xcall.Stats{}
	}
	return o.callRing.Stats().Add(o.sendRing.Stats())
}

// torOCall serves the enclave's tor.* host services (unused paths kept
// for future in-enclave dialing).
func (o *OR) torOCall(service string, arg []byte) ([]byte, error) {
	switch service {
	case "tor.dial":
		link, err := o.dialLink(string(arg))
		if err != nil {
			return nil, err
		}
		out := make([]byte, 4)
		binary.LittleEndian.PutUint32(out, link)
		return out, nil
	default:
		return nil, fmt.Errorf("tor: unknown service %q", service)
	}
}

// Native-side I/O callbacks.

func (o *OR) hostSend(m *core.Meter, link uint32, cell []byte) error {
	o.mu.Lock()
	conn := o.links[link]
	o.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("tor: %s: unknown link %d", o.Name, link)
	}
	return conn.Send(cell)
}

func (o *OR) hostDial(m *core.Meter, orHost string) (uint32, error) {
	return o.dialLink(orHost)
}

func (o *OR) hostStream(m *core.Meter, dest string, req []byte) ([]byte, error) {
	return o.doStream(dest, req)
}

// dialLink opens a cell link to another OR and starts pumping it.
func (o *OR) dialLink(orHost string) (uint32, error) {
	conn, err := o.Host.Dial(orHost, ORService)
	if err != nil {
		return 0, err
	}
	return o.adoptConn(conn), nil
}

// doStream performs one request/response exchange with a destination
// ("host|service").
func (o *OR) doStream(dest string, req []byte) ([]byte, error) {
	sep := bytes.IndexByte([]byte(dest), '|')
	if sep < 0 {
		return nil, fmt.Errorf("tor: bad destination %q", dest)
	}
	conn, err := o.Host.Dial(dest[:sep], dest[sep+1:])
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return conn.Request(req)
}

// adoptConn registers a link and starts its read pump.
func (o *OR) adoptConn(conn *netsim.Conn) uint32 {
	o.mu.Lock()
	o.nextLink++
	link := o.nextLink
	o.links[link] = conn
	o.mu.Unlock()
	go o.pump(link, conn)
	return link
}

func (o *OR) pump(link uint32, conn *netsim.Conn) {
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		if o.SGX {
			arg := make([]byte, 4+len(raw))
			binary.LittleEndian.PutUint32(arg[:4], link)
			copy(arg[4:], raw)
			if err := o.enterCell(arg); err != nil {
				continue // a bad cell must not kill the pump
			}
		} else {
			if err := o.state.onCell(o.meter, link, raw); err != nil {
				continue
			}
		}
	}
}

// serveConn handles an inbound link. For SGX ORs the first bytes may be
// an attestation handshake (challenge from an authority or client); a
// raw cell otherwise.
func (o *OR) serveConn(conn *netsim.Conn) {
	first, err := conn.Recv()
	if err != nil {
		return
	}
	if string(first) == "attest" && o.SGX {
		// Serve one remote attestation as target, then close.
		if _, err := attest.Respond(o.enclave, o.attestShim, o.Host, conn); err != nil {
			conn.Close()
		}
		return
	}
	// Treat as a cell link: process the first cell, then pump.
	link := o.adoptConn(conn)
	if o.SGX {
		arg := make([]byte, 4+len(first))
		binary.LittleEndian.PutUint32(arg[:4], link)
		copy(arg[4:], first)
		o.enterCell(arg)
	} else {
		o.state.onCell(o.meter, link, first)
	}
}

// Close stops the OR.
func (o *OR) Close() {
	o.listener.Close()
	if o.enclave != nil {
		o.enclave.Destroy()
	}
	o.mu.Lock()
	for _, c := range o.links {
		c.Close()
	}
	o.mu.Unlock()
}
