package tor

import (
	"errors"
	"fmt"
	"sync"

	"sgxnet/internal/core"
	"sgxnet/internal/sgxcrypto"
)

// Onion-layer cryptography. Each circuit hop shares an authenticated
// channel key with the client (established by the per-hop Diffie-Hellman
// of CREATE/EXTEND). Forward payloads are wrapped innermost-first with a
// direction marker per layer — markerDeliver addresses the final hop,
// markerForward tells an intermediate hop to pass the remainder along.
// Backward payloads gain one layer per hop; the client strips them in
// entry-to-exit order.

const (
	markerForward byte = 0xF0
	markerDeliver byte = 0xF1
)

// ErrOnion reports a failed layer operation (tampering, wrong key, or a
// malformed marker).
var ErrOnion = errors.New("tor: onion layer failure")

// onionBufs pools the intermediate layer buffers of WrapForward and
// UnwrapBackward. A three-hop exchange touches four intermediate
// buffers per direction; with CellSize-bounded payloads they stabilize
// at cell size and layering becomes allocation-free except for the
// returned slice (which escapes to the caller and must stay fresh).
var onionBufs = sync.Pool{New: func() any {
	b := make([]byte, 0, CellSize)
	return &b
}}

var fwdMarker = [1]byte{markerForward}

// WrapForward builds the forward onion for a relay payload addressed to
// the last hop of hops (client-side).
func WrapForward(m *core.Meter, hops []*sgxcrypto.Channel, relay []byte) ([]byte, error) {
	if len(hops) == 0 {
		return nil, fmt.Errorf("%w: no hops", ErrOnion)
	}
	// cur holds the current plaintext-to-seal; spare receives each
	// intermediate seal. Both come from the pool; the outermost seal
	// (hops[0]) allocates fresh because it escapes.
	curp, sparep := onionBufs.Get().(*[]byte), onionBufs.Get().(*[]byte)
	defer func() { onionBufs.Put(curp); onionBufs.Put(sparep) }()
	cur, spare := *curp, *sparep
	defer func() { *curp, *sparep = cur[:0], spare[:0] }()

	cur = append(cur[:0], markerDeliver)
	cur = append(cur, relay...)
	for i := len(hops) - 1; i >= 0; i-- {
		var marker []byte
		if i < len(hops)-1 {
			marker = fwdMarker[:]
		}
		if i == 0 {
			return hops[0].SealAppendParts(m, nil, marker, cur)
		}
		sealed, err := hops[i].SealAppendParts(m, spare[:0], marker, cur)
		if err != nil {
			return nil, err
		}
		cur, spare = sealed, cur
	}
	return nil, ErrOnion // unreachable: the i == 0 iteration returns
}

// UnwrapBackward strips depth backward layers in hop order (client-side).
func UnwrapBackward(m *core.Meter, hops []*sgxcrypto.Channel, depth int, payload []byte) ([]byte, error) {
	if depth > len(hops) {
		return nil, fmt.Errorf("%w: depth %d exceeds circuit length", ErrOnion, depth)
	}
	if depth == 0 {
		return payload, nil
	}
	// Alternate between two pooled buffers: OpenAppend's destination
	// must never alias the sealed input it reads.
	curp, sparep := onionBufs.Get().(*[]byte), onionBufs.Get().(*[]byte)
	defer func() { onionBufs.Put(curp); onionBufs.Put(sparep) }()
	cur, spare := *curp, *sparep
	defer func() { *curp, *sparep = cur[:0], spare[:0] }()

	for i := 0; i < depth-1; i++ {
		pt, err := hops[i].OpenAppend(m, spare[:0], payload)
		if err != nil {
			return nil, fmt.Errorf("%w: layer %d: %v", ErrOnion, i, err)
		}
		cur, spare = pt, cur
		payload = pt
	}
	// The final layer escapes to the caller: open into a fresh slice.
	pt, err := hops[depth-1].Open(m, payload)
	if err != nil {
		return nil, fmt.Errorf("%w: layer %d: %v", ErrOnion, depth-1, err)
	}
	return pt, nil
}

// peelForward strips one forward layer at an OR and classifies it.
// deliver=true means this hop is addressed; otherwise rest must be
// forwarded to the next hop.
func peelForward(m *core.Meter, key *sgxcrypto.Channel, payload []byte) (rest []byte, deliver bool, err error) {
	pt, err := key.Open(m, payload)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrOnion, err)
	}
	if len(pt) == 0 {
		return nil, false, ErrOnion
	}
	switch pt[0] {
	case markerDeliver:
		return pt[1:], true, nil
	case markerForward:
		return pt[1:], false, nil
	default:
		return nil, false, ErrOnion
	}
}

// addBackward adds one backward layer at an OR.
func addBackward(m *core.Meter, key *sgxcrypto.Channel, payload []byte) ([]byte, error) {
	return key.Seal(m, payload)
}
