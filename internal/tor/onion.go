package tor

import (
	"errors"
	"fmt"

	"sgxnet/internal/core"
	"sgxnet/internal/sgxcrypto"
)

// Onion-layer cryptography. Each circuit hop shares an authenticated
// channel key with the client (established by the per-hop Diffie-Hellman
// of CREATE/EXTEND). Forward payloads are wrapped innermost-first with a
// direction marker per layer — markerDeliver addresses the final hop,
// markerForward tells an intermediate hop to pass the remainder along.
// Backward payloads gain one layer per hop; the client strips them in
// entry-to-exit order.

const (
	markerForward byte = 0xF0
	markerDeliver byte = 0xF1
)

// ErrOnion reports a failed layer operation (tampering, wrong key, or a
// malformed marker).
var ErrOnion = errors.New("tor: onion layer failure")

// WrapForward builds the forward onion for a relay payload addressed to
// the last hop of hops (client-side).
func WrapForward(m *core.Meter, hops []*sgxcrypto.Channel, relay []byte) ([]byte, error) {
	if len(hops) == 0 {
		return nil, fmt.Errorf("%w: no hops", ErrOnion)
	}
	payload := append([]byte{markerDeliver}, relay...)
	for i := len(hops) - 1; i >= 0; i-- {
		if i < len(hops)-1 {
			payload = append([]byte{markerForward}, payload...)
		}
		sealed, err := hops[i].Seal(m, payload)
		if err != nil {
			return nil, err
		}
		payload = sealed
	}
	return payload, nil
}

// UnwrapBackward strips depth backward layers in hop order (client-side).
func UnwrapBackward(m *core.Meter, hops []*sgxcrypto.Channel, depth int, payload []byte) ([]byte, error) {
	if depth > len(hops) {
		return nil, fmt.Errorf("%w: depth %d exceeds circuit length", ErrOnion, depth)
	}
	for i := 0; i < depth; i++ {
		pt, err := hops[i].Open(m, payload)
		if err != nil {
			return nil, fmt.Errorf("%w: layer %d: %v", ErrOnion, i, err)
		}
		payload = pt
	}
	return payload, nil
}

// peelForward strips one forward layer at an OR and classifies it.
// deliver=true means this hop is addressed; otherwise rest must be
// forwarded to the next hop.
func peelForward(m *core.Meter, key *sgxcrypto.Channel, payload []byte) (rest []byte, deliver bool, err error) {
	pt, err := key.Open(m, payload)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrOnion, err)
	}
	if len(pt) == 0 {
		return nil, false, ErrOnion
	}
	switch pt[0] {
	case markerDeliver:
		return pt[1:], true, nil
	case markerForward:
		return pt[1:], false, nil
	default:
		return nil, false, ErrOnion
	}
}

// addBackward adds one backward layer at an OR.
func addBackward(m *core.Meter, key *sgxcrypto.Channel, payload []byte) ([]byte, error) {
	return key.Seal(m, payload)
}
