package tor

import (
	"fmt"
	"testing"

	"sgxnet/internal/xcall"
)

// xcallFetch deploys an SGX-OR network (optionally switchless), runs
// gets requests through one circuit, flushes the rings, and returns the
// relay-side SGX tally plus ring stats.
func xcallFetch(t *testing.T, xc *xcall.Config, gets int) (uint64, xcall.Stats) {
	t.Helper()
	tn, err := Deploy(NetworkConfig{
		Mode: ModeSGXORs, Authorities: 1, Relays: 2, Exits: 1, Seed: 1, Xcall: xc,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := tn.NewClient("client", 11)
	if err != nil {
		t.Fatal(err)
	}
	consensus, err := tn.Discover(c)
	if err != nil {
		t.Fatal(err)
	}
	path, err := c.PickPath(consensus, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Measure steady-state relaying only: reset the OR meters after
	// circuit building so attestation and handshake crossings (which
	// stay synchronous by design) don't dilute the comparison.
	circ, err := c.BuildCircuit(path)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	for _, o := range tn.ORs {
		o.Enclave().Meter().Reset()
	}
	for i := 0; i < gets; i++ {
		resp, err := circ.Get(WebHost+"|"+WebService, []byte(fmt.Sprintf("req-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) != fmt.Sprintf("content:req-%d", i) {
			t.Fatalf("get %d: %q", i, resp)
		}
	}
	if err := tn.FlushXcall(); err != nil {
		t.Fatal(err)
	}
	return tn.RelaySGX(), tn.XcallStats()
}

// TestSwitchlessRelayingAmortizes pins the tentpole claim for the Tor
// app: at batch 16 the rings cut relay-side crossing instructions ≥2×
// versus per-cell EENTER/EEXIT, with the doorbell fallbacks reported.
func TestSwitchlessRelayingAmortizes(t *testing.T) {
	const gets = 12
	syncSGX, syncStats := xcallFetch(t, nil, gets)
	if syncStats != (xcall.Stats{}) {
		t.Fatalf("sync run produced ring stats: %+v", syncStats)
	}
	swlSGX, st := xcallFetch(t, &xcall.Config{Batch: 16, SpinBudget: 64}, gets)
	if swlSGX*2 > syncSGX {
		t.Fatalf("switchless %d SGX vs sync %d: less than 2× reduction", swlSGX, syncSGX)
	}
	if st.Calls == 0 || st.Drains == 0 {
		t.Fatalf("ring never went switchless: %+v", st)
	}
	if st.Fallbacks == 0 {
		t.Fatalf("no fallbacks reported (doorbell wakes expected): %+v", st)
	}
}

// TestSwitchlessRelayingDeterministic pins that two identical switchless
// runs produce identical tallies and ring stats.
func TestSwitchlessRelayingDeterministic(t *testing.T) {
	xc := &xcall.Config{Batch: 4, SpinBudget: 16}
	sgx1, st1 := xcallFetch(t, xc, 6)
	sgx2, st2 := xcallFetch(t, xc, 6)
	if sgx1 != sgx2 || st1 != st2 {
		t.Fatalf("nondeterministic: %d/%+v vs %d/%+v", sgx1, st1, sgx2, st2)
	}
}
