package tor

import (
	"fmt"
	"strings"
	"testing"
)

func TestExitPolicyAllows(t *testing.T) {
	open := ExitPolicy{}
	if !open.Allows("http") || !open.Allows("anything") {
		t.Fatal("empty policy must allow everything")
	}
	restricted := ExitPolicy{AllowedServices: []string{"http", "dns"}}
	if !restricted.Allows("http") || restricted.Allows("smtp") {
		t.Fatal("restricted policy broken")
	}
}

func TestExitPolicyEnforcedAtExit(t *testing.T) {
	tn := deploy(t, ModeBaseline)
	// An exit that only serves "dns".
	restricted, err := tn.AddOR(ORConfig{
		Name: "dns-exit", Exit: true,
		ExitPolicy: ExitPolicy{AllowedServices: []string{"dns"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := tn.NewClient("client", 6)
	if err != nil {
		t.Fatal(err)
	}
	consensus, err := tn.Discover(c)
	if err != nil {
		t.Fatal(err)
	}
	var path []Descriptor
	for _, d := range consensus {
		if !d.Exit && len(path) < 2 {
			path = append(path, d)
		}
	}
	path = append(path, restricted.Descriptor())
	circ, err := c.BuildCircuit(path)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	// The web service is not in the exit's policy.
	_, err = circ.Get(WebHost+"|"+WebService, []byte("req"))
	if err == nil || !strings.Contains(err.Error(), "exit policy") {
		t.Fatalf("policy-violating stream err = %v", err)
	}
}

func TestPickPathForRespectsExitPolicy(t *testing.T) {
	tn := deploy(t, ModeBaseline)
	if _, err := tn.AddOR(ORConfig{
		Name: "dns-exit", Exit: true,
		ExitPolicy: ExitPolicy{AllowedServices: []string{"dns"}},
	}); err != nil {
		t.Fatal(err)
	}
	c, err := tn.NewClient("client", 2)
	if err != nil {
		t.Fatal(err)
	}
	consensus, err := tn.Discover(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		path, err := c.PickPathFor(consensus, 3, WebService)
		if err != nil {
			t.Fatal(err)
		}
		exit := path[len(path)-1]
		if exit.Name == "dns-exit" {
			t.Fatal("path selection chose an exit whose policy forbids the destination")
		}
		if !exit.Policy.Allows(WebService) {
			t.Fatalf("exit %s does not allow %s", exit.Name, WebService)
		}
	}
	// A service nobody allows.
	tnRestricted, err := Deploy(NetworkConfig{Mode: ModeBaseline, Authorities: 1, Relays: 2, Exits: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := tnRestricted.NewClient("c2", 1)
	cons2, err := tnRestricted.Discover(c2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.PickPathFor(cons2, 3, WebService); err == nil {
		t.Fatal("path found without any exit")
	}
}

func TestGuardPreferredAsEntry(t *testing.T) {
	tn := deploy(t, ModeBaseline)
	g, err := tn.AddOR(ORConfig{Name: "guard-1", Guard: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := tn.NewClient("client", 11)
	if err != nil {
		t.Fatal(err)
	}
	consensus, err := tn.Discover(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		path, err := c.PickPath(consensus, 3)
		if err != nil {
			t.Fatal(err)
		}
		if path[0].Name != g.Name {
			t.Fatalf("iteration %d: entry hop %s is not the guard", i, path[0].Name)
		}
	}
	// Circuits through the guard still work.
	path, _ := c.PickPath(consensus, 3)
	circ, err := c.BuildCircuit(path)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	resp, err := circ.Get(WebHost+"|"+WebService, []byte("x"))
	if err != nil || string(resp) != "content:x" {
		t.Fatalf("%q %v", resp, err)
	}
}

// TestOnPathCellCorruptionDetected: flipping bits in a relay cell breaks
// the onion layer MAC; the circuit fails rather than delivering
// corrupted data.
func TestOnPathCellCorruptionDetected(t *testing.T) {
	tn := deploy(t, ModeBaseline)
	c, err := tn.NewClient("client", 13)
	if err != nil {
		t.Fatal(err)
	}
	consensus, err := tn.Discover(c)
	if err != nil {
		t.Fatal(err)
	}
	path, err := c.PickPath(consensus, 3)
	if err != nil {
		t.Fatal(err)
	}
	circ, err := c.BuildCircuit(path)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	// Healthy exchange first.
	if resp, err := circ.Get(WebHost+"|"+WebService, []byte("a")); err != nil || string(resp) != "content:a" {
		t.Fatalf("%q %v", resp, err)
	}
	// Corrupt the next forward cell: the entry OR's peel fails, the
	// circuit is destroyed, and the client sees an error instead of
	// silently wrong data.
	circ.conn.InjectCorrupt(1)
	if _, err := circ.Get(WebHost+"|"+WebService, []byte("b")); err == nil {
		t.Fatal("corrupted cell produced a successful exchange")
	}
}

// TestPreferSGXPathSelection: in a mixed (incremental) deployment, a
// PreferSGX client builds all-SGX circuits when the verified pool
// suffices, and falls back gracefully when it does not.
func TestPreferSGXPathSelection(t *testing.T) {
	tn := deploy(t, ModeBaseline) // 5 legacy relays
	// Add an SGX sub-population large enough for a 3-hop path.
	for i := 0; i < 3; i++ {
		if _, err := tn.AddOR(ORConfig{Name: sprintfT("sgx-or%d", i), Exit: i == 0, SGX: true}); err != nil {
			t.Fatal(err)
		}
	}
	host, err := tn.newHost("pref-client", false)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(host, ClientConfig{Name: "pref-client", PreferSGX: true, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	consensus, err := tn.Discover(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		path, err := c.PickPath(consensus, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range path {
			if !d.SGX {
				t.Fatalf("PreferSGX path used legacy relay %s", d.Name)
			}
		}
	}
	// Fallback: a 4-hop path cannot be all-SGX (only 3 exist).
	path, err := c.PickPath(consensus, 4)
	if err != nil {
		t.Fatal(err)
	}
	legacy := 0
	for _, d := range path {
		if !d.SGX {
			legacy++
		}
	}
	if legacy == 0 {
		t.Fatal("4-hop path claims to be all-SGX with only 3 SGX relays")
	}
}

func sprintfT(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
