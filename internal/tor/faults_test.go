package tor

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sgxnet/internal/attest"
	"sgxnet/internal/netsim"
)

// Fault-tolerance tests: circuits are torn down and rebuilt around
// crashed relays, the directory quorum survives a dead authority, and
// onion round-trips still deliver the right bytes under seeded fault
// schedules.

func torRetryPolicy() attest.RetryPolicy {
	return attest.RetryPolicy{Attempts: 8, RecvTimeout: 400 * time.Millisecond,
		Backoff: 2 * time.Millisecond, BackoffMax: 20 * time.Millisecond}
}

func TestCircuitRebuildAfterRelayCrash(t *testing.T) {
	tn, err := Deploy(NetworkConfig{Mode: ModeSGXDirectory, Authorities: 1, Relays: 4, Exits: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := tn.NewClient("c0", 7)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetRetryPolicy(torRetryPolicy())
	consensus, err := tn.Discover(cl)
	if err != nil {
		t.Fatal(err)
	}
	circ, err := cl.BuildCircuitRetry(consensus, 3, WebService)
	if err != nil {
		t.Fatal(err)
	}
	dest := WebHost + "|" + WebService
	if out, err := circ.Get(dest, []byte("ping")); err != nil || string(out) != "content:ping" {
		t.Fatalf("clean Get: %q, %v", out, err)
	}

	// A mid-path relay host dies. The circuit is unusable: the next
	// exchange must fail (by timeout or closure), not wedge.
	crashed := circ.Path()[1]
	tn.Net.Crash(crashed.Host)
	if _, err := circ.Get(dest, []byte("ping2")); err == nil {
		t.Fatal("Get through a crashed relay succeeded")
	}

	// Teardown/rebuild: the retry loop must route around the dead relay.
	circ2, err := cl.RebuildCircuit(circ, consensus, 3, WebService)
	if err != nil {
		t.Fatalf("rebuild after relay crash: %v", err)
	}
	for _, d := range circ2.Path() {
		if d.Name == crashed.Name {
			t.Fatalf("rebuilt circuit still uses crashed relay %s", crashed.Name)
		}
	}
	if out, err := circ2.Get(dest, []byte("pong")); err != nil || string(out) != "content:pong" {
		t.Fatalf("Get after rebuild: %q, %v", out, err)
	}
	if cl.Rebuilds != 1 {
		t.Fatalf("Rebuilds = %d, want 1", cl.Rebuilds)
	}
	circ2.Close()
}

func TestFetchConsensusQuorumSurvivesAuthorityCrash(t *testing.T) {
	tn, err := Deploy(NetworkConfig{Mode: ModeSGXDirectory, Authorities: 3, Relays: 3, Exits: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := tn.NewClient("c0", 3)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetRetryPolicy(attest.RetryPolicy{Attempts: 3, RecvTimeout: 500 * time.Millisecond,
		Backoff: time.Millisecond, BackoffMax: 2 * time.Millisecond})

	tn.Net.Crash(tn.Auths[1].Host.Name())
	consensus, err := cl.FetchConsensus(tn.AuthorityHosts())
	if err != nil {
		t.Fatalf("consensus with one dead authority: %v", err)
	}
	if len(consensus) != 5 {
		t.Fatalf("quorum consensus has %d descriptors, want 5", len(consensus))
	}
}

func TestFetchConsensusUnderDrops(t *testing.T) {
	tn, err := Deploy(NetworkConfig{Mode: ModeSGXDirectory, Authorities: 1, Relays: 3, Exits: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := tn.NewClient("c0", 5)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetRetryPolicy(torRetryPolicy())
	tn.Auths[0].SetRecvTimeout(400 * time.Millisecond)

	fs := netsim.NewFaultSchedule(1).
		AddLink(netsim.LinkFaults{From: "c0", To: "auth0", DropProb: 0.1}).
		AddLink(netsim.LinkFaults{From: "auth0", To: "c0", DropProb: 0.1})
	tn.Net.SetFaults(fs)

	consensus, err := cl.FetchConsensus(tn.AuthorityHosts())
	if err != nil {
		t.Fatalf("consensus under drops (replay: %s): %v", fs, err)
	}
	if len(consensus) != 5 {
		t.Fatalf("consensus has %d descriptors, want 5", len(consensus))
	}
	if st := fs.Stats(); st.Dropped == 0 {
		t.Logf("note: schedule never dropped (seed too gentle): %+v", st)
	}
	t.Logf("stats %+v retries=%d attestations=%d", fs.Stats(), cl.Retries, cl.Attestations)
}

// TestQuickOnionRoundTripUnderFaults is the property test: for random
// schedule seeds, an anonymous request through a freshly built circuit
// still returns exactly the destination's answer — onion wrap/unwrap
// survives latency, jitter, and loss end to end (with rebuilds allowed).
func TestQuickOnionRoundTripUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow under -short")
	}
	tn, err := Deploy(NetworkConfig{Mode: ModeBaseline, Authorities: 1, Relays: 4, Exits: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := tn.NewClient("c0", 11)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetRetryPolicy(torRetryPolicy())
	consensus, err := tn.Discover(cl)
	if err != nil {
		t.Fatal(err)
	}
	dest := WebHost + "|" + WebService

	prop := func(seed int64, req []byte) bool {
		if len(req) == 0 {
			req = []byte("x")
		}
		fs := netsim.NewFaultSchedule(seed).AddLink(netsim.LinkFaults{
			Latency:  100 * time.Microsecond,
			Jitter:   100 * time.Microsecond,
			DropProb: 0.01,
		})
		tn.Net.SetFaults(fs)
		defer tn.Net.SetFaults(nil)

		circ, err := cl.BuildCircuitRetry(consensus, 3, WebService)
		if err != nil {
			t.Logf("seed %d (replay: %s): build: %v", seed, fs, err)
			return false
		}
		defer func() { circ.Close() }()
		var out []byte
		for attempt := 0; ; attempt++ {
			out, err = circ.Get(dest, req)
			if err == nil {
				break
			}
			if attempt >= 7 {
				t.Logf("seed %d (replay: %s): get: %v", seed, fs, err)
				return false
			}
			if circ, err = cl.RebuildCircuit(circ, consensus, 3, WebService); err != nil {
				t.Logf("seed %d (replay: %s): rebuild: %v", seed, fs, err)
				return false
			}
		}
		want := append([]byte("content:"), req...)
		if !bytes.Equal(out, want) {
			t.Logf("seed %d: got %q want %q", seed, out, want)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 4, Rand: rand.New(rand.NewSource(777))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
