package obs

import (
	"fmt"
	"sort"

	"sgxnet/internal/core"
)

// Trace analysis: replays the event stream per track, reconstructing
// the span tree, and attributes each track's reported run total to
// named spans. This is what sgxnet-trace builds its cost-attribution
// tables from, and what the ≥95%-attribution acceptance test measures.

// SpanStat is one closed span, reconstructed from its B/E pair.
type SpanStat struct {
	Track string
	Name  string
	Depth int
	Begin uint64 // track clock at open
	End   uint64 // track clock at close
	Delta core.Tally
	Self  core.Tally // Delta minus direct children's deltas (exclusive cost)
	Leaf  bool
}

// TrackStat aggregates one track.
type TrackStat struct {
	Name       string
	HasTotal   bool       // the run reported an independent total ("T" record)
	Total      core.Tally // that total (or Attributed when absent)
	Attributed core.Tally // sum of depth-0 span deltas
	Spans      []SpanStat
	Instants   int
}

// Residual is the unattributed part of the track's total.
func (t *TrackStat) Residual() core.Tally { return t.Total.Sub(t.Attributed) }

// Analysis is the digest of a full trace.
type Analysis struct {
	Tracks  []TrackStat // sorted by track name
	Metrics []Metric    // "M" records, in stream order

	// CoveredTotal / CoveredAttr sum Total and Attributed over tracks
	// that carry an independent total — the honest attribution check:
	// span sums measured against run-reported numbers, not themselves.
	CoveredTotal core.Tally
	CoveredAttr  core.Tally
}

// Coverage is the fraction of independently-reported cycles the spans
// explain (1 when the trace carries no totals to check against).
func (a *Analysis) Coverage() float64 {
	if a.CoveredTotal.Cycles() == 0 {
		return 1
	}
	c := float64(a.CoveredAttr.Cycles()) / float64(a.CoveredTotal.Cycles())
	if c > 1 {
		c = 1
	}
	return c
}

// openSpan is the analyzer's replay-stack entry.
type openSpan struct {
	name     string
	depth    int
	begin    uint64
	childSum core.Tally
	hadChild bool
}

// Analyze reconstructs span statistics from an event stream. Malformed
// traces are analyzed best-effort; run Check first for validation.
func Analyze(events []Event) *Analysis {
	byTrack := make(map[string][]Event)
	var names []string
	for _, ev := range events {
		if _, ok := byTrack[ev.Track]; !ok {
			names = append(names, ev.Track)
		}
		byTrack[ev.Track] = append(byTrack[ev.Track], ev)
	}
	sort.Strings(names)

	a := &Analysis{}
	for _, name := range names {
		ts := TrackStat{Name: name}
		var stack []openSpan
		for _, ev := range byTrack[name] {
			switch ev.Ph {
			case PhaseBegin:
				if len(stack) > 0 {
					stack[len(stack)-1].hadChild = true
				}
				stack = append(stack, openSpan{name: ev.Name, depth: ev.Depth, begin: ev.TS})
			case PhaseEnd:
				if len(stack) == 0 {
					continue
				}
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				delta := core.Tally{SGXU: ev.SGXU, Normal: ev.Normal}
				ts.Spans = append(ts.Spans, SpanStat{
					Track: name, Name: top.name, Depth: top.depth,
					Begin: top.begin, End: ev.TS,
					Delta: delta, Self: delta.Sub(top.childSum), Leaf: !top.hadChild,
				})
				if len(stack) > 0 {
					stack[len(stack)-1].childSum = stack[len(stack)-1].childSum.Add(delta)
				} else {
					ts.Attributed = ts.Attributed.Add(delta)
				}
			case PhaseInstant:
				ts.Instants++
			case PhaseTotal:
				ts.HasTotal = true
				ts.Total = ts.Total.Add(core.Tally{SGXU: ev.SGXU, Normal: ev.Normal})
			case PhaseMetric:
				a.Metrics = append(a.Metrics, Metric{Name: ev.Name, Value: ev.Value})
			}
		}
		if !ts.HasTotal {
			ts.Total = ts.Attributed
		} else {
			a.CoveredTotal = a.CoveredTotal.Add(ts.Total)
			a.CoveredAttr = a.CoveredAttr.Add(ts.Attributed)
		}
		if len(ts.Spans) > 0 || ts.HasTotal || ts.Instants > 0 {
			a.Tracks = append(a.Tracks, ts)
		}
	}
	return a
}

// Check validates trace well-formedness: dense per-track sequence
// numbers, monotone timestamps, LIFO-matched span begin/end pairs with
// consistent depths, and no spans left open. It returns every problem
// found (nil for a clean trace).
func Check(events []Event) []error {
	byTrack := make(map[string][]Event)
	var names []string
	for _, ev := range events {
		if _, ok := byTrack[ev.Track]; !ok {
			names = append(names, ev.Track)
		}
		byTrack[ev.Track] = append(byTrack[ev.Track], ev)
	}
	sort.Strings(names)

	var errs []error
	bad := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	for _, name := range names {
		evs := byTrack[name]
		var lastTS uint64
		type open struct {
			name  string
			depth int
			ts    uint64
		}
		var stack []open
		for i, ev := range evs {
			if ev.Seq != uint64(i) {
				bad("track %q: event %d has seq %d (sequence not dense)", name, i, ev.Seq)
			}
			if ev.Ph != PhaseMetric && ev.TS < lastTS {
				bad("track %q: event %d (%s %q) ts %d < previous %d (clock ran backwards)",
					name, i, ev.Ph, ev.Name, ev.TS, lastTS)
			}
			if ev.Ph != PhaseMetric {
				lastTS = ev.TS
			}
			switch ev.Ph {
			case PhaseBegin:
				if ev.Depth != len(stack) {
					bad("track %q: span %q opens at depth %d, expected %d", name, ev.Name, ev.Depth, len(stack))
				}
				stack = append(stack, open{name: ev.Name, depth: ev.Depth, ts: ev.TS})
			case PhaseEnd:
				if len(stack) == 0 {
					bad("track %q: span %q ends with no open span", name, ev.Name)
					continue
				}
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if top.name != ev.Name || top.depth != ev.Depth {
					bad("track %q: span end %q/depth %d does not match open span %q/depth %d (not LIFO)",
						name, ev.Name, ev.Depth, top.name, top.depth)
				}
				if ev.TS < top.ts {
					bad("track %q: span %q ends at %d before it began at %d", name, ev.Name, ev.TS, top.ts)
				}
				if got := core.CyclesOf(ev.SGXU, ev.Normal); ev.Cycles != got {
					bad("track %q: span %q cycles %d inconsistent with tallies (want %d)",
						name, ev.Name, ev.Cycles, got)
				}
			case PhaseInstant, PhaseTotal, PhaseMetric:
				// no structural constraints
			default:
				bad("track %q: event %d has unknown phase %q", name, i, ev.Ph)
			}
		}
		for _, o := range stack {
			bad("track %q: span %q (depth %d) never ended", name, o.name, o.depth)
		}
	}
	return errs
}

// PhaseRow is one line of a per-phase cost attribution table: all
// spans with the same name on a track, exclusive (self) costs summed
// so phases never double-count their children.
type PhaseRow struct {
	Name  string
	Count int
	Self  core.Tally
}

// Phases aggregates a track's spans by name, ordered by descending
// self cycles (ties broken by name for determinism).
func (t *TrackStat) Phases() []PhaseRow {
	idx := make(map[string]int)
	var rows []PhaseRow
	for _, s := range t.Spans {
		i, ok := idx[s.Name]
		if !ok {
			i = len(rows)
			idx[s.Name] = i
			rows = append(rows, PhaseRow{Name: s.Name})
		}
		rows[i].Count++
		rows[i].Self = rows[i].Self.Add(s.Self)
	}
	sort.Slice(rows, func(i, j int) bool {
		ci, cj := rows[i].Self.Cycles(), rows[j].Self.Cycles()
		if ci != cj {
			return ci > cj
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// TopSpans returns the n spans with the largest SGX-instruction deltas
// across all tracks (ties broken by cycles, then track/name).
func (a *Analysis) TopSpans(n int) []SpanStat {
	var all []SpanStat
	for _, t := range a.Tracks {
		all = append(all, t.Spans...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Delta.SGXU != all[j].Delta.SGXU {
			return all[i].Delta.SGXU > all[j].Delta.SGXU
		}
		if ci, cj := all[i].Delta.Cycles(), all[j].Delta.Cycles(); ci != cj {
			return ci > cj
		}
		if all[i].Track != all[j].Track {
			return all[i].Track < all[j].Track
		}
		return all[i].Name < all[j].Name
	})
	if n < len(all) {
		all = all[:n]
	}
	return all
}
