// Package obs is the deterministic observability layer: tracing spans
// and metric counters threaded through the simulator, timestamped by
// the instruction tallies the paper's evaluation is built on — never by
// wall clock — so a trace is byte-identical across -workers settings
// and replayable from a seed.
//
// # Span model
//
// A Trace is a set of named tracks. A track is one logical sequential
// lane (one table row, one Figure 3 point's SGX leg, one attestation
// rig); all events on a track are totally ordered by a per-track
// sequence number. Concurrent work must use distinct tracks — the eval
// runner gives every parallel leg its own track — which is what keeps
// the exported trace independent of scheduling: per-track order is
// program order, and the exporters emit tracks sorted by name.
//
// Spans nest on a track (strict LIFO). Each span carries the
// core.Tally delta its phase consumed, measured as the difference of
// its meters' snapshots between Begin and End; a span with no meters is
// an aggregate span whose delta is the sum of its direct children.
//
// # Deterministic clock
//
// Each track has a virtual clock in estimated cycles. Begin stamps the
// current clock; End stamps begin + delta.Cycles(), clamped monotone,
// and advances the clock there. Because deltas come from Meters —
// which PR 2 made exactly reproducible — timestamps are too.
//
// All Trace and Span methods are nil-receiver no-ops, so call sites
// stay unconditional and tracing-off costs one pointer test.
package obs

import (
	"sort"
	"sync"

	"sgxnet/internal/core"
)

// Event phase kinds, in the spirit of the Chrome trace-event format.
const (
	PhaseBegin   = "B" // span open
	PhaseEnd     = "E" // span close; carries the span's tally delta
	PhaseInstant = "I" // point event (fault injected, retry attempted…)
	PhaseTotal   = "T" // independently-reported run total, for attribution
	PhaseMetric  = "M" // final metric counter value
)

// Event is one trace record. The JSONL exporter writes these verbatim,
// one per line; field order (and encoding/json's sorted map keys for
// Attrs) makes the encoding deterministic.
type Event struct {
	Track  string            `json:"track"`
	Seq    uint64            `json:"seq"`
	TS     uint64            `json:"ts"` // virtual clock, estimated cycles
	Ph     string            `json:"ph"`
	Name   string            `json:"name"`
	Depth  int               `json:"depth,omitempty"`
	SGXU   uint64            `json:"sgxu,omitempty"`
	Normal uint64            `json:"normal,omitempty"`
	Cycles uint64            `json:"cycles,omitempty"`
	Value  uint64            `json:"value,omitempty"` // metric records only
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// track is one sequential lane of a Trace.
type track struct {
	mu     sync.Mutex
	name   string
	clock  uint64 // virtual cycles
	seq    uint64
	stack  []*Span
	events []Event
}

// emit appends an event with the next sequence number. Caller holds mu.
func (tk *track) emit(ev Event) {
	ev.Track = tk.name
	ev.Seq = tk.seq
	tk.seq++
	tk.events = append(tk.events, ev)
}

// Trace collects deterministic events across tracks. The zero value is
// not useful; use New. A nil *Trace is the disabled tracer: every
// method is a no-op and Begin returns a nil Span (also a no-op).
type Trace struct {
	mu     sync.Mutex
	tracks map[string]*track
	reg    *Registry
}

// New returns an empty Trace. If reg is non-nil, instant events also
// bump a per-event-kind counter ("event.<name>") in the registry, so
// fault injections and retry attempts show up in the metrics export
// without separate wiring.
func New(reg *Registry) *Trace {
	return &Trace{tracks: make(map[string]*track), reg: reg}
}

// Registry returns the attached registry (nil if none, or t is nil).
func (t *Trace) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

func (t *Trace) track(name string) *track {
	t.mu.Lock()
	tk := t.tracks[name]
	if tk == nil {
		tk = &track{name: name}
		t.tracks[name] = tk
	}
	t.mu.Unlock()
	return tk
}

// Span is an open trace span. End it exactly once, in LIFO order per
// track. A nil Span is a no-op.
type Span struct {
	tk     *track
	name   string
	meters []*core.Meter
	starts []core.Tally
	agg    core.Tally // accumulated deltas of direct children (aggregate spans)
	begin  uint64     // track clock at Begin
	depth  int
	ended  bool
}

// Begin opens a span on the named track, snapshotting the given meters.
// The span's delta at End is the summed growth of those meters; with no
// meters the span is an aggregate whose delta is the sum of its direct
// children's deltas.
func (t *Trace) Begin(trackName, name string, meters ...*core.Meter) *Span {
	if t == nil {
		return nil
	}
	tk := t.track(trackName)
	tk.mu.Lock()
	defer tk.mu.Unlock()
	s := &Span{tk: tk, name: name, meters: meters, begin: tk.clock, depth: len(tk.stack)}
	s.starts = make([]core.Tally, len(meters))
	for i, m := range meters {
		s.starts[i] = m.Snapshot()
	}
	tk.stack = append(tk.stack, s)
	tk.emit(Event{TS: tk.clock, Ph: PhaseBegin, Name: name, Depth: s.depth})
	return s
}

// End closes the span: computes its tally delta, stamps the end event
// at begin+delta cycles (clamped monotone), advances the track clock,
// and folds the delta into the nearest open aggregate ancestor.
func (s *Span) End() {
	if s == nil {
		return
	}
	tk := s.tk
	tk.mu.Lock()
	defer tk.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	var delta core.Tally
	if len(s.meters) == 0 {
		delta = s.agg
	} else {
		for i, m := range s.meters {
			delta = delta.Add(m.Snapshot().Sub(s.starts[i]))
		}
	}
	// Pop this span (and, defensively, anything opened after it that
	// was never ended — Check flags that as a trace bug).
	for len(tk.stack) > 0 {
		top := tk.stack[len(tk.stack)-1]
		tk.stack = tk.stack[:len(tk.stack)-1]
		if top == s {
			break
		}
	}
	end := s.begin + delta.Cycles()
	if end < tk.clock {
		end = tk.clock
	}
	tk.clock = end
	if len(tk.stack) > 0 {
		if p := tk.stack[len(tk.stack)-1]; len(p.meters) == 0 {
			p.agg = p.agg.Add(delta)
		}
	}
	tk.emit(Event{TS: end, Ph: PhaseEnd, Name: s.name,
		Depth: s.depth, SGXU: delta.SGXU, Normal: delta.Normal, Cycles: delta.Cycles()})
}

// RecordSpan emits a complete span (begin+end) for a phase whose delta
// was measured externally — e.g. with Meter.SnapshotAndReset at a
// period boundary. The delta still advances the clock and folds into an
// open aggregate ancestor, so recorded and live spans compose.
func (t *Trace) RecordSpan(trackName, name string, delta core.Tally) {
	if t == nil {
		return
	}
	tk := t.track(trackName)
	tk.mu.Lock()
	defer tk.mu.Unlock()
	depth := len(tk.stack)
	tk.emit(Event{TS: tk.clock, Ph: PhaseBegin, Name: name, Depth: depth})
	tk.clock += delta.Cycles()
	if len(tk.stack) > 0 {
		if p := tk.stack[len(tk.stack)-1]; len(p.meters) == 0 {
			p.agg = p.agg.Add(delta)
		}
	}
	tk.emit(Event{TS: tk.clock, Ph: PhaseEnd, Name: name,
		Depth: depth, SGXU: delta.SGXU, Normal: delta.Normal, Cycles: delta.Cycles()})
}

// RecordSpanAt emits a complete span whose begin is pinned to an
// explicit virtual timestamp — the open-loop load engine's shape, where
// a request starts at max(arrival, server-idle) rather than wherever
// the track clock happens to sit. The clock first advances to start
// (clamped monotone: a start in the past degrades to RecordSpan
// semantics), then by the delta, so queue idle gaps show up as gaps on
// the track instead of being silently compacted.
func (t *Trace) RecordSpanAt(trackName, name string, start uint64, delta core.Tally) {
	if t == nil {
		return
	}
	tk := t.track(trackName)
	tk.mu.Lock()
	defer tk.mu.Unlock()
	if start > tk.clock {
		tk.clock = start
	}
	depth := len(tk.stack)
	tk.emit(Event{TS: tk.clock, Ph: PhaseBegin, Name: name, Depth: depth})
	tk.clock += delta.Cycles()
	if len(tk.stack) > 0 {
		if p := tk.stack[len(tk.stack)-1]; len(p.meters) == 0 {
			p.agg = p.agg.Add(delta)
		}
	}
	tk.emit(Event{TS: tk.clock, Ph: PhaseEnd, Name: name,
		Depth: depth, SGXU: delta.SGXU, Normal: delta.Normal, Cycles: delta.Cycles()})
}

// Event records an instant event (a fault injection, a retry attempt, a
// protocol message) at the track's current clock. Attrs may be nil.
func (t *Trace) Event(trackName, name string, attrs map[string]string) {
	if t == nil {
		return
	}
	if t.reg != nil {
		t.reg.Add("event."+name, 1)
	}
	tk := t.track(trackName)
	tk.mu.Lock()
	tk.emit(Event{TS: tk.clock, Ph: PhaseInstant, Name: name, Depth: len(tk.stack), Attrs: attrs})
	tk.mu.Unlock()
}

// Total records an independently-measured run total on the track — the
// denominator the analyzer attributes span costs against. Use the same
// tallies the run reports to its tables, so trace attribution is
// checked against the published numbers, not against itself.
func (t *Trace) Total(trackName, name string, d core.Tally) {
	if t == nil {
		return
	}
	tk := t.track(trackName)
	tk.mu.Lock()
	tk.emit(Event{TS: tk.clock, Ph: PhaseTotal, Name: name,
		SGXU: d.SGXU, Normal: d.Normal, Cycles: d.Cycles()})
	tk.mu.Unlock()
}

// Events returns every recorded event plus final metric records from
// the attached registry, sorted by (track, seq) — the canonical export
// order. Open spans are not closed; Check reports them.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	names := make([]string, 0, len(t.tracks))
	for name := range t.tracks {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Event
	for _, name := range names {
		tk := t.tracks[name]
		tk.mu.Lock()
		out = append(out, tk.events...)
		tk.mu.Unlock()
	}
	t.mu.Unlock()
	if t.reg != nil {
		for i, m := range t.reg.Snapshot() {
			out = append(out, Event{Track: "metrics", Seq: uint64(i), Ph: PhaseMetric,
				Name: m.Name, Value: m.Value})
		}
	}
	return out
}
