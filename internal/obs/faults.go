package obs

import "strconv"

// FaultRecorder bridges the netsim fault engine into a trace: it
// satisfies netsim.FaultObserver (structurally — netsim does not import
// this package) and records every intervention as an instant event
// "fault.<kind>" with the directed link and virtual-clock tick, plus
// the schedule's replay recipe as a "fault.schedule" event. A trace of
// a failing fuzz or property run therefore carries everything needed
// to reproduce it: the recipe rebuilds the per-link decision streams
// and the ticks pin each intervention to the message clock.
//
// Interventions fire on network goroutines, so their arrival order on
// the track reflects real interleaving — faulty runs are excluded from
// byte-identical goldens for the same reason they are excluded from
// golden tables (wall-clock delays), but every event is still stamped
// with the deterministic tick that replays it.
type FaultRecorder struct {
	T     *Trace
	Track string
}

// RecordSchedule logs a schedule's replay recipe (its String()) and
// seed before traffic starts.
func (f *FaultRecorder) RecordSchedule(seed int64, recipe string) {
	if f == nil {
		return
	}
	f.T.Event(f.Track, "fault.schedule", map[string]string{
		"seed":   strconv.FormatInt(seed, 10),
		"recipe": recipe,
	})
}

// FaultEvent implements netsim.FaultObserver.
func (f *FaultRecorder) FaultEvent(kind, from, to string, tick uint64) {
	if f == nil {
		return
	}
	attrs := map[string]string{"tick": strconv.FormatUint(tick, 10)}
	if from != "" {
		attrs["from"] = from
	}
	if to != "" {
		attrs["to"] = to
	}
	f.T.Event(f.Track, "fault."+kind, attrs)
}
