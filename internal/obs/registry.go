package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is the metric layer: named monotonic counters fed by the
// core instruction probe (per-SGX-instruction-kind counts, enclave
// transitions, EPC paging and seal events) and by trace instant events
// (fault injections, retry attempts). Counter *values* are deterministic
// whenever the simulated workload is — the probe reports how often each
// modelled event happened, which does not depend on goroutine
// scheduling — so the final snapshot can appear in golden traces.
//
// Registry implements core.Probe; install it with core.SetDefaultProbe
// (all platforms created afterwards report to it) or per-platform with
// Platform.SetProbe.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*atomic.Uint64

	// strict mode (opt-in, see SetStrict): probe kinds arriving via
	// Observe that are not in the kind registry are remembered here.
	strict    atomic.Bool
	unknownMu sync.Mutex
	unknown   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*atomic.Uint64)}
}

// SetStrict toggles probe-kind auditing: with it on, every kind that
// reaches Observe without a RegisterKind doc string is recorded and
// reported by UnknownKinds. The counter is still bumped — strictness is
// an audit, not a filter — and Add is exempt (it carries derived
// summary counters and event.* names, not probe kinds). Off by default
// so the hot probe path stays one atomic load.
func (r *Registry) SetStrict(on bool) { r.strict.Store(on) }

// UnknownKinds returns the sorted probe kinds Observe saw while strict
// that were never registered with RegisterKind. Empty means every fired
// kind is documented.
func (r *Registry) UnknownKinds() []string {
	if r == nil {
		return nil
	}
	r.unknownMu.Lock()
	out := make([]string, 0, len(r.unknown))
	for k := range r.unknown {
		out = append(out, k)
	}
	r.unknownMu.Unlock()
	sort.Strings(out)
	return out
}

// Observe implements core.Probe: it adds n to the counter named kind.
func (r *Registry) Observe(kind string, n uint64) {
	if r == nil {
		return
	}
	if r.strict.Load() {
		if _, ok := KindDoc(kind); !ok {
			r.unknownMu.Lock()
			if r.unknown == nil {
				r.unknown = make(map[string]bool)
			}
			r.unknown[kind] = true
			r.unknownMu.Unlock()
		}
	}
	r.Add(kind, n)
}

// Add adds n to the named counter, creating it at zero first if needed.
// Safe for concurrent use; the common case is a read-locked map lookup
// plus one atomic add.
func (r *Registry) Add(name string, n uint64) {
	if r == nil {
		return
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c == nil {
		r.mu.Lock()
		c = r.counters[name]
		if c == nil {
			c = new(atomic.Uint64)
			r.counters[name] = c
		}
		r.mu.Unlock()
	}
	c.Add(n)
}

// Get returns the current value of a counter (0 if absent).
func (r *Registry) Get(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// Metric is one counter's final value.
type Metric struct {
	Name  string
	Value uint64
}

// Snapshot returns all counters sorted by name.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]Metric, 0, len(r.counters))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Value: c.Load()})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
