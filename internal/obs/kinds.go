package obs

import (
	"sort"
	"sync"

	"sgxnet/internal/core"
)

// Probe-kind documentation registry. Every kind a subsystem fires
// through core.Probe must be registered here with a one-line doc
// string, so the metric namespace stays a closed, documented set: a
// typo'd kind or an undocumented new instrument shows up as an unknown
// kind in a strict Registry instead of silently minting a counter. The
// kinds core itself reports are registered below; layered subsystems
// (internal/xcall's rings, internal/tlslite's record codec) register
// theirs from an init in their own package — they may import obs
// because obs never imports them.

var (
	kindMu   sync.RWMutex
	kindDocs = make(map[string]string)
)

// RegisterKind documents a probe kind. Registering the same name twice
// with different text panics at init time — two subsystems claiming one
// kind is a namespace collision, not a runtime condition.
func RegisterKind(name, doc string) {
	if name == "" || doc == "" {
		panic("obs: RegisterKind needs a name and a doc string")
	}
	kindMu.Lock()
	defer kindMu.Unlock()
	if prev, ok := kindDocs[name]; ok && prev != doc {
		panic("obs: probe kind " + name + " registered twice with different docs")
	}
	kindDocs[name] = doc
}

// KindDoc returns the doc string for a registered kind.
func KindDoc(name string) (string, bool) {
	kindMu.RLock()
	defer kindMu.RUnlock()
	doc, ok := kindDocs[name]
	return doc, ok
}

// KnownKinds returns every registered kind, sorted.
func KnownKinds() []string {
	kindMu.RLock()
	out := make([]string, 0, len(kindDocs))
	for name := range kindDocs {
		out = append(out, name)
	}
	kindMu.RUnlock()
	sort.Strings(out)
	return out
}

func init() {
	for _, k := range []struct{ name, doc string }{
		{core.KindEENTER, "ENCLU[EENTER]: synchronous enclave entry"},
		{core.KindEEXIT, "ENCLU[EEXIT]: synchronous enclave exit"},
		{core.KindERESUME, "ENCLU[ERESUME]: re-entry after an AEX or ocall"},
		{core.KindEGETKEY, "ENCLU[EGETKEY]: sealing-key derivation"},
		{core.KindEREPORT, "ENCLU[EREPORT]: local attestation report"},
		{core.KindECREATE, "ENCLS[ECREATE]: enclave control structure created"},
		{core.KindEADD, "ENCLS[EADD]: EPC page added at build time"},
		{core.KindEEXTEND, "ENCLS[EEXTEND]: 256-byte measurement chunk"},
		{core.KindEINIT, "ENCLS[EINIT]: enclave sealed and launched"},
		{core.KindEWB, "ENCLS[EWB]: EPC page encrypted and evicted"},
		{core.KindELDU, "ENCLS[ELDU]: evicted page verified and reloaded"},
		{core.KindEnclaveCall, "one completed ecall (enter + exit pair)"},
		{core.KindEnclaveOCall, "one completed ocall (exit + resume pair)"},
		{core.KindEnclaveAlloc, "bytes of enclave heap allocated"},
		{core.KindSeal, "one sealing operation over enclave state"},
		{core.KindUnseal, "one unsealing operation over sealed state"},
		{core.KindPageAdd, "EPC page committed to an enclave"},
		{core.KindPageEvict, "EPC page evicted by the paging layer"},
		{core.KindPageLoad, "EPC page reloaded by the paging layer"},
		{core.KindPagerFault, "pager access missed the EPC resident set"},
		{core.KindPagerHit, "pager access served from the resident set"},
		{core.KindPagerEvict, "pager victim page written back to make room"},
		{core.KindPagerReload, "pager fault served by reloading an evicted page"},
		{core.KindPagerDemandZero, "pager fault served by a fresh zero page"},
	} {
		RegisterKind(k.name, k.doc)
	}
}
