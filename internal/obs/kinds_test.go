package obs

import "testing"

func TestStrictRegistryFlagsUnknownKinds(t *testing.T) {
	r := NewRegistry()
	r.SetStrict(true)
	r.Observe("sgx.instr.EENTER", 1) // registered at init
	r.Observe("bogus.kind", 2)       // never registered
	r.Add("load.sweep.requests", 3)  // Add is exempt: not a probe kind

	if got := r.UnknownKinds(); len(got) != 1 || got[0] != "bogus.kind" {
		t.Fatalf("UnknownKinds = %v, want [bogus.kind]", got)
	}
	// Strictness audits, it does not filter: the counter still counts.
	if r.Get("bogus.kind") != 2 {
		t.Fatalf("strict mode dropped the observation: %d", r.Get("bogus.kind"))
	}
}

func TestStrictOffRecordsNothing(t *testing.T) {
	r := NewRegistry()
	r.Observe("bogus.kind", 1)
	if got := r.UnknownKinds(); len(got) != 0 {
		t.Fatalf("non-strict registry recorded unknowns: %v", got)
	}
}

func TestRegisterKindCollisionPanics(t *testing.T) {
	RegisterKind("test.kind.collision", "the original doc")
	RegisterKind("test.kind.collision", "the original doc") // same doc: idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different doc did not panic")
		}
	}()
	RegisterKind("test.kind.collision", "a different doc")
}

func TestKindDocResolvesCoreKinds(t *testing.T) {
	if doc, ok := KindDoc("pager.fault"); !ok || doc == "" {
		t.Fatalf("pager.fault undocumented (ok=%v doc=%q)", ok, doc)
	}
	kinds := KnownKinds()
	if len(kinds) < 20 {
		t.Fatalf("only %d registered kinds — core init registration shrank", len(kinds))
	}
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Fatalf("KnownKinds not sorted at %d: %q >= %q", i, kinds[i-1], kinds[i])
		}
	}
}
