package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Exporters. Both formats are deterministic: events come from
// Trace.Events() in (track, seq) order, struct field order is fixed,
// and encoding/json sorts map keys.

// WriteJSONL writes the trace as one JSON event per line — the format
// sgxnet-trace reads back.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace produced by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: event %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
}

// chromeEvent is one entry of the Chrome trace-event format ("JSON
// Array Format"), viewable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Timestamps are nominally microseconds; we emit the
// virtual clock's estimated cycles unscaled, so durations read as
// cycles directly in the viewer.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`    // instant scope
	Args map[string]any `json:"args,omitempty"` // tally deltas, attrs
}

// WriteChrome writes the trace in Chrome trace-event JSON. Each track
// becomes a named thread (tid assigned in sorted-track order); spans
// become B/E pairs, instant events become thread-scoped instants, and
// Total/Metric records become args on summary instants so they survive
// the round trip into a viewer.
func WriteChrome(w io.Writer, events []Event) error {
	tids := make(map[string]int)
	var names []string
	for i := range events {
		if _, ok := tids[events[i].Track]; !ok {
			tids[events[i].Track] = 0
			names = append(names, events[i].Track)
		}
	}
	sort.Strings(names)
	for i, name := range names {
		tids[name] = i + 1
	}

	out := make([]chromeEvent, 0, len(events)+len(names))
	for i, name := range names {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: i + 1,
			Args: map[string]any{"name": name},
		})
	}
	for i := range events {
		ev := &events[i]
		ce := chromeEvent{Name: ev.Name, TS: ev.TS, PID: 1, TID: tids[ev.Track]}
		switch ev.Ph {
		case PhaseBegin:
			ce.Ph = "B"
		case PhaseEnd:
			ce.Ph = "E"
			ce.Args = map[string]any{"sgxu": ev.SGXU, "normal": ev.Normal, "cycles": ev.Cycles}
		case PhaseInstant:
			ce.Ph = "i"
			ce.S = "t"
			if len(ev.Attrs) > 0 {
				ce.Args = map[string]any{}
				for k, v := range ev.Attrs {
					ce.Args[k] = v
				}
			}
		case PhaseTotal:
			ce.Ph = "i"
			ce.S = "t"
			ce.Args = map[string]any{"sgxu": ev.SGXU, "normal": ev.Normal, "cycles": ev.Cycles}
		case PhaseMetric:
			ce.Ph = "C" // counter sample
			ce.Args = map[string]any{"value": ev.Value}
		default:
			continue
		}
		out = append(out, ce)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i := range out {
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		b, err := json.Marshal(&out[i])
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
