package series

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Exporters. Both formats are canonical: rows sorted by (series name,
// window index), values as exact decimal integers, so a byte comparison
// of two exports is a semantic comparison of two sets — the property
// the -series golden and workers-equivalence gates rely on.

// csvHeader is the first line of the CSV format; the window width rides
// in it so ReadCSV can reconstruct the set exactly.
const csvHeader = "# sgxnet-series v1 window="

// WriteCSV writes the set as canonical CSV:
//
//	# sgxnet-series v1 window=4194304
//	series,kind,window,start_cycles,value
//	load-sweep/.../arrivals.tls,counter,3,12582912,17
func WriteCSV(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s%d\n", csvHeader, s.Window())
	fmt.Fprintln(bw, "series,kind,window,start_cycles,value")
	for _, name := range s.Names() {
		sr := s.Get(name)
		for _, win := range sr.Windows() {
			fmt.Fprintf(bw, "%s,%s,%d,%d,%d\n", name, sr.Kind, win, win*s.Window(), sr.Value(win))
		}
	}
	return bw.Flush()
}

// ReadCSV parses a WriteCSV export back into a Set (the sgxnet-trace
// -series analyzer's input path).
func ReadCSV(r io.Reader) (*Set, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("series: empty input")
	}
	head := sc.Text()
	if !strings.HasPrefix(head, csvHeader) {
		return nil, fmt.Errorf("series: not a sgxnet-series CSV (header %q)", head)
	}
	window, err := strconv.ParseUint(strings.TrimSpace(head[len(csvHeader):]), 10, 64)
	if err != nil || window == 0 {
		return nil, fmt.Errorf("series: bad window in header %q", head)
	}
	set := NewSet(window)
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "series,") {
			continue
		}
		// Series names may not contain commas (track names never do);
		// split from the right so the fixed tail fields stay unambiguous.
		f := strings.Split(text, ",")
		if len(f) < 5 {
			return nil, fmt.Errorf("series: line %d: want 5 fields, got %d", line, len(f))
		}
		name := strings.Join(f[:len(f)-4], ",")
		kind, ok := parseKind(f[len(f)-4])
		if !ok {
			return nil, fmt.Errorf("series: line %d: unknown kind %q", line, f[len(f)-4])
		}
		win, err := strconv.ParseUint(f[len(f)-3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("series: line %d: bad window: %v", line, err)
		}
		val, err := strconv.ParseUint(f[len(f)-1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("series: line %d: bad value: %v", line, err)
		}
		// Reconstructed gauges lose their intra-window timestamps; stamp
		// the window start so re-merging reads stay deterministic.
		set.get(name, kind).observe(win, win*window, val)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return set, nil
}

// sanitizeMetricName maps a series name onto the OpenMetrics charset
// [a-zA-Z0-9_:], collapsing everything else to '_'.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteOpenMetrics writes the set as OpenMetrics text: one family per
// series (counters get the conventional _total suffix), one sample per
// window labeled with its start cycle, timestamped in virtual seconds
// (cycles / 1e9 at the 1 GHz modeled clock). Rendered families are
// sorted by sanitized name so the export is canonical.
func WriteOpenMetrics(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	names := s.Names()
	type fam struct {
		metric string
		sr     *Series
	}
	fams := make([]fam, 0, len(names))
	for _, name := range names {
		sr := s.Get(name)
		metric := sanitizeMetricName(name)
		if sr.Kind != Gauge {
			metric += "_total"
		}
		fams = append(fams, fam{metric, sr})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].metric < fams[j].metric })
	for _, f := range fams {
		typ := "gauge"
		if f.sr.Kind != Gauge {
			typ = "counter"
		}
		fmt.Fprintf(bw, "# HELP %s windowed series %s (window=%d cycles, kind=%s)\n", f.metric, f.sr.Name, s.Window(), f.sr.Kind)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.metric, typ)
		for _, win := range f.sr.Windows() {
			start := win * s.Window()
			fmt.Fprintf(bw, "%s{window_start_cycles=\"%d\"} %d %s\n",
				f.metric, start, f.sr.Value(win), formatVirtualSeconds(start))
		}
	}
	fmt.Fprintln(bw, "# EOF")
	return bw.Flush()
}

// formatVirtualSeconds renders a cycle timestamp as seconds at the
// 1 cycle = 1 ns exchange rate, with exactly nine fractional digits so
// the rendering is locale- and float-free.
func formatVirtualSeconds(cycles uint64) string {
	return fmt.Sprintf("%d.%09d", cycles/1_000_000_000, cycles%1_000_000_000)
}
