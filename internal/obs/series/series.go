// Package series is the windowed time-series layer of the
// observability stack: deterministic counter/gauge/rate samples keyed
// to the virtual cycle clock the whole repo shares (core.Meter tallies,
// obs.Trace span timestamps, and des.Kernel virtual time all count the
// same modeled cycles at 1 cycle = 1 ns — des.CyclesPerSecond).
//
// A Set holds every series of one run, bucketed into fixed windows of N
// cycles. Instruments observe (timestamp, value) pairs; the set reduces
// them per window with order-invariant rules — counters sum, gauges
// keep the sample with the largest (timestamp, value) — so merging
// per-worker observations in any order yields byte-identical exports.
// That is the same guarantee the tables, traces, and goldens already
// give: `sgxnet-tables -series` is gated byte-identical at any
// -workers count.
//
// Timestamps are *virtual*: the load engine stamps requests with its
// FIFO server clock, the pager and the xcall rings borrow whatever
// clock their caller wires in (an engine clock, an accumulated meter),
// and the des kernel stamps events with its own heap clock. Wall time
// never appears, which is why the series are reproducible at all.
package series

import (
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultWindowCycles is the default window width: 4Mi cycles ≈ 4.2 ms
// of modeled time at the 1 GHz virtual clock — fine enough to resolve
// the load sweep's bursty on/off phases (period 64× mean service, tens
// of megacycles), coarse enough that million-event runs stay compact.
const DefaultWindowCycles = 4 << 20

// Kind classifies an instrument.
type Kind uint8

const (
	// Counter accumulates occurrences per window (faults, drains,
	// arrivals). The per-window value is already a delta.
	Counter Kind = iota
	// Gauge records a level (queue depth, ring occupancy, residency);
	// each window keeps the latest sample, ties broken toward the
	// larger value so merges stay order-invariant.
	Gauge
	// Rate is a counter that exporters and analyzers render per second
	// of virtual time (events/sec at 1 cycle = 1 ns).
	Rate
)

// String returns the CSV/OpenMetrics spelling.
func (k Kind) String() string {
	switch k {
	case Gauge:
		return "gauge"
	case Rate:
		return "rate"
	default:
		return "counter"
	}
}

// parseKind inverts String (ReadCSV).
func parseKind(s string) (Kind, bool) {
	switch s {
	case "counter":
		return Counter, true
	case "gauge":
		return Gauge, true
	case "rate":
		return Rate, true
	}
	return Counter, false
}

// Series is one named instrument's windowed samples. Window indices are
// sparse: only windows that saw an observation hold an entry.
type Series struct {
	Name string
	Kind Kind

	mu      sync.Mutex
	vals    map[uint64]uint64 // window index -> reduced value
	gaugeTS map[uint64]uint64 // gauges: timestamp of the kept sample
}

func newSeries(name string, kind Kind) *Series {
	s := &Series{Name: name, Kind: kind, vals: make(map[uint64]uint64)}
	if kind == Gauge {
		s.gaugeTS = make(map[uint64]uint64)
	}
	return s
}

// observe folds one sample into window w. Counter/Rate sum; Gauge keeps
// the max-(ts, value) sample — a total order, so the reduction commutes
// and merging workers in any order gives the same windows.
func (s *Series) observe(w, ts, v uint64) {
	s.mu.Lock()
	switch s.Kind {
	case Gauge:
		prevTS, have := s.gaugeTS[w]
		if !have || ts > prevTS || (ts == prevTS && v > s.vals[w]) {
			s.vals[w] = v
			s.gaugeTS[w] = ts
		}
	default:
		s.vals[w] += v
	}
	s.mu.Unlock()
}

// Windows returns the observed window indices in ascending order.
func (s *Series) Windows() []uint64 {
	s.mu.Lock()
	out := make([]uint64, 0, len(s.vals))
	for w := range s.vals {
		out = append(out, w)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Value returns window w's reduced value (0 if unobserved).
func (s *Series) Value(w uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[w]
}

// Sum totals the windows in [from, to] — counters only (a gauge sum has
// no meaning, but the arithmetic is still deterministic).
func (s *Series) Sum(from, to uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum uint64
	for w, v := range s.vals {
		if w >= from && w <= to {
			sum += v
		}
	}
	return sum
}

// Len reports how many windows were observed.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}

// merge folds o into s under both locks (ordered: s then o — callers
// only merge distinct sets, Set.Merge documents the discipline).
func (s *Series) merge(o *Series) {
	o.mu.Lock()
	for w, v := range o.vals {
		var ts uint64
		if o.Kind == Gauge {
			ts = o.gaugeTS[w]
		}
		s.observe(w, ts, v)
	}
	o.mu.Unlock()
}

// Set is one run's collection of series, all sharing a window width.
// Safe for concurrent use: scenarios on different Runner workers write
// their own (track-prefixed, therefore distinct) series, and the map
// lock only guards creation.
type Set struct {
	window uint64

	mu     sync.RWMutex
	series map[string]*Series
}

// NewSet builds an empty set. window <= 0 selects DefaultWindowCycles.
func NewSet(window uint64) *Set {
	if window == 0 {
		window = DefaultWindowCycles
	}
	return &Set{window: window, series: make(map[string]*Series)}
}

// Window returns the window width in cycles.
func (s *Set) Window() uint64 {
	if s == nil {
		return 0
	}
	return s.window
}

// WindowOf maps a timestamp to its window index.
func (s *Set) WindowOf(t uint64) uint64 { return t / s.window }

// get returns (creating if needed) the named series. A name keeps the
// kind of its first registration; a kind mismatch is a programming
// error and panics — silently coercing would corrupt merges.
func (s *Set) get(name string, kind Kind) *Series {
	s.mu.RLock()
	sr := s.series[name]
	s.mu.RUnlock()
	if sr == nil {
		s.mu.Lock()
		sr = s.series[name]
		if sr == nil {
			sr = newSeries(name, kind)
			s.series[name] = sr
		}
		s.mu.Unlock()
	}
	if sr.Kind != kind {
		panic("series: " + name + " registered as " + sr.Kind.String() + ", observed as " + kind.String())
	}
	return sr
}

// Get returns the named series, or nil.
func (s *Set) Get(name string) *Series {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.series[name]
}

// Names returns every series name in ascending order.
func (s *Set) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	out := make([]string, 0, len(s.series))
	for n := range s.series {
		out = append(out, n)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len reports the number of series.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.series)
}

// Merge folds o's series into s: counters sum per window, gauges keep
// the max-(timestamp, value) sample. Order-invariant — merging worker
// sets in any order (or observing directly into one shared set) yields
// identical exports. o must not be s and must not receive concurrent
// observations during the merge.
func (s *Set) Merge(o *Set) {
	if s == nil || o == nil {
		return
	}
	o.mu.RLock()
	others := make([]*Series, 0, len(o.series))
	for _, sr := range o.series {
		others = append(others, sr)
	}
	o.mu.RUnlock()
	for _, osr := range others {
		s.get(osr.Name, osr.Kind).merge(osr)
	}
}

// Sampler returns an instrument handle whose observations land in the
// set under prefix + "/" + name. Safe for concurrent use (the tor rigs
// submit from several OR goroutines); a nil receiver — the tracing-off
// path — makes every method a no-op, mirroring obs.Trace.
func (s *Set) Sampler(prefix string) *Sampler {
	if s == nil {
		return nil
	}
	return &Sampler{set: s, prefix: prefix + "/"}
}

// Sampler binds a name prefix (conventionally the scenario's trace
// track) to a Set and caches name→series resolution so hot paths (the
// des kernel observes every event) skip the string concatenation and
// the set-level map after first touch.
type Sampler struct {
	set    *Set
	prefix string

	mu    sync.RWMutex
	cache map[string]*Series
}

// resolve returns the series for a local name, consulting the cache.
func (sm *Sampler) resolve(name string, kind Kind) *Series {
	sm.mu.RLock()
	sr := sm.cache[name]
	sm.mu.RUnlock()
	if sr != nil {
		if sr.Kind != kind {
			panic("series: " + sr.Name + " registered as " + sr.Kind.String() + ", observed as " + kind.String())
		}
		return sr
	}
	sr = sm.set.get(sm.prefix+name, kind)
	sm.mu.Lock()
	if sm.cache == nil {
		sm.cache = make(map[string]*Series)
	}
	sm.cache[name] = sr
	sm.mu.Unlock()
	return sr
}

// CountAt adds n occurrences at virtual time t to the counter `name`.
func (sm *Sampler) CountAt(name string, t, n uint64) {
	if sm == nil || n == 0 {
		return
	}
	sm.resolve(name, Counter).observe(sm.set.WindowOf(t), t, n)
}

// GaugeAt records level v at virtual time t on the gauge `name`.
func (sm *Sampler) GaugeAt(name string, t, v uint64) {
	if sm == nil {
		return
	}
	sm.resolve(name, Gauge).observe(sm.set.WindowOf(t), t, v)
}

// RateAt adds n occurrences at virtual time t to the rate `name` (a
// counter rendered per-second by exporters).
func (sm *Sampler) RateAt(name string, t, n uint64) {
	if sm == nil || n == 0 {
		return
	}
	sm.resolve(name, Rate).observe(sm.set.WindowOf(t), t, n)
}

// Set returns the underlying set (nil for a nil sampler).
func (sm *Sampler) Set() *Set {
	if sm == nil {
		return nil
	}
	return sm.set
}

// Clock is a shared monotone virtual clock instruments can stamp from
// when their subsystem has none of its own: the load engine advances
// one to each request's start/finish, and the rigs' pagers and rings
// read it so their fault and drain samples land inside the request
// window that caused them. Safe for concurrent use; a nil clock reads
// as zero.
type Clock struct{ v atomic.Uint64 }

// Now returns the current virtual time.
func (c *Clock) Now() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Advance moves the clock to t if t is later (monotone; concurrent
// advances keep the max).
func (c *Clock) Advance(t uint64) {
	if c == nil {
		return
	}
	for {
		cur := c.v.Load()
		if t <= cur || c.v.CompareAndSwap(cur, t) {
			return
		}
	}
}
