package series

import (
	"sort"
	"strings"
)

// Analysis over windowed series: the SRE-style reductions the run-total
// tables cannot express. A run that ends with "434 of 600 requests
// violated the SLO" says nothing about *when* — a burn-rate series over
// trailing windows shows the violation mass concentrated in bursts, and
// a monotone-backlog test over trailing windows separates "slow but
// stable" from "growing without bound".

// BurnRule is a multi-window SLO burn-rate alert in the classic
// 2-of-{short, long} shape: the alert fires in a window only when the
// burn rate — violation fraction over the trailing window span, divided
// by the error budget — reaches Threshold over BOTH the short and the
// long trailing spans. The short window makes the alert fast, the long
// window keeps one bad window from paging; requiring both is what
// filters transients that self-heal from sustained budget burn.
type BurnRule struct {
	Budget    float64 // allowed violation fraction (1 − objective), e.g. 0.05
	Threshold float64 // burn multiple that fires, e.g. 4 (burning 4× budget)
	Short     int     // short trailing span, windows (the "5m" leg)
	Long      int     // long trailing span, windows (the "1h" leg)
}

// DefaultBurnRule mirrors the sweep's SLO shape: 95% of requests within
// SLO (budget 5%), alert at 4× burn over 3-window short and 24-window
// long trailing spans (≈13 ms / ≈100 ms of modeled time at the default
// window).
var DefaultBurnRule = BurnRule{Budget: 0.05, Threshold: 4, Short: 3, Long: 24}

// BurnPoint is one window's burn evaluation.
type BurnPoint struct {
	Window uint64  // window index
	Done   uint64  // requests finished in this window
	Viol   uint64  // SLO violations in this window
	Short  float64 // burn multiple over the trailing Short windows
	Long   float64 // burn multiple over the trailing Long windows
	Alert  bool    // both legs at or above Threshold
}

// BurnRate evaluates the rule over the viol/done counter pair for every
// window in done's observed range (empty windows participate: the
// trailing spans slide over them and the burn decays). Windows where
// the trailing done count is zero burn at 0.
func BurnRate(viol, done *Series, rule BurnRule) []BurnPoint {
	if done == nil || done.Len() == 0 || rule.Budget <= 0 {
		return nil
	}
	wins := done.Windows()
	lo, hi := wins[0], wins[len(wins)-1]
	n := int(hi - lo + 1)
	doneAt := make([]uint64, n)
	violAt := make([]uint64, n)
	for _, w := range wins {
		doneAt[w-lo] = done.Value(w)
	}
	if viol != nil {
		for _, w := range viol.Windows() {
			if w >= lo && w <= hi {
				violAt[w-lo] = viol.Value(w)
			}
		}
	}
	// Prefix sums so each trailing-span query is O(1).
	doneCum := make([]uint64, n+1)
	violCum := make([]uint64, n+1)
	for i := 0; i < n; i++ {
		doneCum[i+1] = doneCum[i] + doneAt[i]
		violCum[i+1] = violCum[i] + violAt[i]
	}
	trailing := func(cum []uint64, i, span int) uint64 {
		from := i + 1 - span
		if from < 0 {
			from = 0
		}
		return cum[i+1] - cum[from]
	}
	burn := func(i, span int) float64 {
		d := trailing(doneCum, i, span)
		if d == 0 {
			return 0
		}
		v := trailing(violCum, i, span)
		return float64(v) / float64(d) / rule.Budget
	}
	out := make([]BurnPoint, n)
	for i := 0; i < n; i++ {
		p := BurnPoint{
			Window: lo + uint64(i),
			Done:   doneAt[i],
			Viol:   violAt[i],
			Short:  burn(i, rule.Short),
			Long:   burn(i, rule.Long),
		}
		p.Alert = p.Short >= rule.Threshold && p.Long >= rule.Threshold
		out[i] = p
	}
	return out
}

// Growth is the verdict of the unbounded-growth test on one series.
type Growth struct {
	Series   string
	Windows  int    // trailing observed windows examined
	First    uint64 // value at the span's first window
	Last     uint64 // value at the span's last window
	Monotone bool   // non-decreasing across the whole span, strictly up overall
}

// DetectGrowth runs the monotone-backlog test: over the last `trailing`
// observed windows (all of them if fewer), does the series never
// decrease and end strictly above where it started? A queue that passes
// is growing without bound on the run's evidence — the ρ ≥ 1 signature
// — where a merely-loaded queue oscillates. Needs at least three
// observed windows to say anything.
func DetectGrowth(s *Series, trailing int) (Growth, bool) {
	g := Growth{Series: s.Name}
	wins := s.Windows()
	if trailing > 0 && len(wins) > trailing {
		wins = wins[len(wins)-trailing:]
	}
	g.Windows = len(wins)
	if len(wins) < 3 {
		return g, false
	}
	g.First = s.Value(wins[0])
	g.Last = s.Value(wins[len(wins)-1])
	g.Monotone = g.Last > g.First
	prev := g.First
	for _, w := range wins[1:] {
		v := s.Value(w)
		if v < prev {
			g.Monotone = false
			break
		}
		prev = v
	}
	return g, g.Monotone
}

// Mover is one series' largest window-to-window move.
type Mover struct {
	Series string
	Kind   Kind
	Window uint64 // window index where the move landed
	From   uint64 // previous observed window's value
	To     uint64 // this window's value
	Delta  uint64 // |To − From|
}

// TopMovers ranks every series by its largest absolute value change
// between consecutive *observed* windows — the "what shifted inside
// this run" view. Ties break by name so the ranking is deterministic.
func TopMovers(set *Set, n int) []Mover {
	var movers []Mover
	for _, name := range set.Names() {
		sr := set.Get(name)
		wins := sr.Windows()
		if len(wins) < 2 {
			continue
		}
		best := Mover{Series: name, Kind: sr.Kind}
		prev := sr.Value(wins[0])
		for _, w := range wins[1:] {
			v := sr.Value(w)
			d := v - prev
			if v < prev {
				d = prev - v
			}
			if d > best.Delta {
				best = Mover{Series: name, Kind: sr.Kind, Window: w, From: prev, To: v, Delta: d}
			}
			prev = v
		}
		if best.Delta > 0 {
			movers = append(movers, best)
		}
	}
	sort.Slice(movers, func(i, j int) bool {
		if movers[i].Delta != movers[j].Delta {
			return movers[i].Delta > movers[j].Delta
		}
		return movers[i].Series < movers[j].Series
	})
	if n > 0 && len(movers) > n {
		movers = movers[:n]
	}
	return movers
}

// BurnPair is one SLO stream: its violation and completion counters.
type BurnPair struct {
	Stream string // "<track>/<stream>" — the pair's identity
	Viol   *Series
	Done   *Series
}

// BurnPairs finds the (viol, done) counter pairs the load instruments
// emit — names ending in "/viol.<stream>" matched to a sibling
// "/done.<stream>" — so the analyzer can evaluate burn rules without
// being told the stream layout. Pairs are returned in name order.
func BurnPairs(set *Set) []BurnPair {
	var out []BurnPair
	for _, name := range set.Names() {
		i := strings.LastIndex(name, "/viol.")
		if i < 0 {
			continue
		}
		stream := name[i+len("/viol."):]
		done := set.Get(name[:i] + "/done." + stream)
		if done == nil {
			continue
		}
		out = append(out, BurnPair{Stream: name[:i] + "/" + stream, Viol: set.Get(name), Done: done})
	}
	return out
}
