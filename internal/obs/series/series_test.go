package series

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// splitmix is the test's seeded generator — stable across Go releases.
func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// obsRec is one recorded observation for replay in different orders.
type obsRec struct {
	name  string
	kind  Kind
	t, v  uint64
	gauge bool
}

// genObs builds a deterministic observation stream over a few series.
func genObs(seed uint64, n int) []obsRec {
	names := []string{"a/x", "a/y", "b/x", "c/deep/q"}
	out := make([]obsRec, n)
	for i := range out {
		r := splitmix(&seed)
		name := names[r%uint64(len(names))]
		gauge := strings.HasSuffix(name, "y")
		kind := Counter
		if gauge {
			kind = Gauge
		}
		out[i] = obsRec{
			name: name, kind: kind, gauge: gauge,
			t: splitmix(&seed) % (64 << 20),
			v: splitmix(&seed)%100 + 1,
		}
	}
	return out
}

func replay(set *Set, recs []obsRec) {
	for _, r := range recs {
		if r.gauge {
			set.get(r.name, Gauge).observe(set.WindowOf(r.t), r.t, r.v)
		} else {
			set.get(r.name, Counter).observe(set.WindowOf(r.t), r.t, r.v)
		}
	}
}

func csvBytes(t *testing.T, set *Set) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := WriteCSV(&b, set); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestMergeOrderInvariance: splitting one observation stream across K
// sets and merging them in any order must reproduce the single-set
// export byte for byte — the property the -workers gates rest on.
func TestMergeOrderInvariance(t *testing.T) {
	recs := genObs(7, 4000)
	single := NewSet(1 << 20)
	replay(single, recs)
	want := csvBytes(t, single)

	for _, workers := range []int{2, 3, 8} {
		parts := make([]*Set, workers)
		for i := range parts {
			parts[i] = NewSet(1 << 20)
		}
		for i, r := range recs {
			replay(parts[i%workers], []obsRec{r})
		}
		// Merge forward and reverse; both must match the single set.
		fwd := NewSet(1 << 20)
		for _, p := range parts {
			fwd.Merge(p)
		}
		if got := csvBytes(t, fwd); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d forward merge diverges from single set", workers)
		}
		rev := NewSet(1 << 20)
		for i := len(parts) - 1; i >= 0; i-- {
			rev.Merge(parts[i])
		}
		if got := csvBytes(t, rev); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d reverse merge diverges from single set", workers)
		}
	}
}

// TestGaugeReduction pins the gauge rule: latest timestamp wins, ties
// break toward the larger value, regardless of observation order.
func TestGaugeReduction(t *testing.T) {
	mk := func(order [][2]uint64) uint64 {
		s := NewSet(100)
		g := s.get("g", Gauge)
		for _, tv := range order {
			g.observe(0, tv[0], tv[1])
		}
		return g.Value(0)
	}
	if v := mk([][2]uint64{{5, 9}, {7, 3}}); v != 3 {
		t.Fatalf("later timestamp must win: got %d", v)
	}
	if v := mk([][2]uint64{{7, 3}, {5, 9}}); v != 3 {
		t.Fatalf("later timestamp must win in reverse order: got %d", v)
	}
	if v := mk([][2]uint64{{7, 3}, {7, 8}}); v != 8 {
		t.Fatalf("tie must keep larger value: got %d", v)
	}
	if v := mk([][2]uint64{{7, 8}, {7, 3}}); v != 8 {
		t.Fatalf("tie must keep larger value in reverse order: got %d", v)
	}
}

// TestCSVRoundTrip: WriteCSV → ReadCSV → WriteCSV must be identity.
func TestCSVRoundTrip(t *testing.T) {
	set := NewSet(2 << 20)
	replay(set, genObs(11, 1000))
	first := csvBytes(t, set)
	back, err := ReadCSV(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if back.Window() != set.Window() {
		t.Fatalf("window lost: %d != %d", back.Window(), set.Window())
	}
	if got := csvBytes(t, back); !bytes.Equal(got, first) {
		t.Fatalf("round trip not identity:\n%s\nvs\n%s", first, got)
	}
}

// TestOpenMetricsShape: counters get _total, names are sanitized, the
// stream ends with # EOF, and the export is deterministic.
func TestOpenMetricsShape(t *testing.T) {
	set := NewSet(1000)
	set.Sampler("load/rho=0.95").CountAt("done.tls", 1500, 3)
	set.Sampler("load/rho=0.95").GaugeAt("queue.depth", 2500, 7)
	var b bytes.Buffer
	if err := WriteOpenMetrics(&b, set); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"load_rho_0_95_done_tls_total{window_start_cycles=\"1000\"} 3 0.000001000",
		"# TYPE load_rho_0_95_done_tls_total counter",
		"load_rho_0_95_queue_depth{window_start_cycles=\"2000\"} 7 0.000002000",
		"# TYPE load_rho_0_95_queue_depth gauge",
		"# EOF\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("OpenMetrics export missing %q:\n%s", want, out)
		}
	}
	var b2 bytes.Buffer
	if err := WriteOpenMetrics(&b2, set); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatal("OpenMetrics export not deterministic")
	}
}

// TestKindMismatchPanics: observing one name as two kinds is a
// programming error the set must refuse loudly.
func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	set := NewSet(0)
	sm := set.Sampler("t")
	sm.CountAt("x", 1, 1)
	sm.GaugeAt("x", 2, 2)
}

// TestNilSafety: nil sets, samplers, and clocks are silent no-ops.
func TestNilSafety(t *testing.T) {
	var set *Set
	sm := set.Sampler("x")
	if sm != nil {
		t.Fatal("nil set must hand out a nil sampler")
	}
	sm.CountAt("a", 1, 1)
	sm.GaugeAt("a", 1, 1)
	sm.RateAt("a", 1, 1)
	if sm.Set() != nil {
		t.Fatal("nil sampler must report a nil set")
	}
	var clk *Clock
	clk.Advance(10)
	if clk.Now() != 0 {
		t.Fatal("nil clock must read zero")
	}
	set.Merge(NewSet(0))
	if set.Len() != 0 || set.Names() != nil || set.Get("a") != nil {
		t.Fatal("nil set accessors must be empty")
	}
}

// TestClockMonotone: Advance keeps the max under concurrency.
func TestClockMonotone(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Advance(uint64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if c.Now() != 7999 {
		t.Fatalf("clock = %d, want max advance 7999", c.Now())
	}
	c.Advance(5)
	if c.Now() != 7999 {
		t.Fatal("clock moved backwards")
	}
}

// TestSamplerPrefix: observations land under prefix + "/" + name and
// n=0 counter observations are dropped (no empty windows materialize).
func TestSamplerPrefix(t *testing.T) {
	set := NewSet(100)
	sm := set.Sampler("track/a")
	sm.CountAt("hits", 150, 2)
	sm.CountAt("hits", 160, 0)
	if s := set.Get("track/a/hits"); s == nil || s.Value(1) != 2 || s.Len() != 1 {
		t.Fatalf("prefixed counter wrong: %+v", set.Names())
	}
}

// TestBurnRate pins the multi-window rule on a hand-built pair: a
// transient burst trips the short leg only; a sustained burn trips
// both; recovery clears the alert.
func TestBurnRate(t *testing.T) {
	set := NewSet(1)
	done := set.get("t/done.s", Counter)
	viol := set.get("t/viol.s", Counter)
	// Windows 0..9: 10 done each. Violations: window 2 only (transient),
	// windows 6..9 all 10 (sustained full burn).
	for w := uint64(0); w < 10; w++ {
		done.observe(w, w, 10)
	}
	viol.observe(2, 2, 2) // 20% of one window: short burn 2/30/0.05 = 1.33
	for w := uint64(6); w < 10; w++ {
		viol.observe(w, w, 10)
	}
	rule := BurnRule{Budget: 0.05, Threshold: 4, Short: 2, Long: 8}
	pts := BurnRate(viol, done, rule)
	if len(pts) != 10 {
		t.Fatalf("want 10 burn points, got %d", len(pts))
	}
	byW := make(map[uint64]BurnPoint, len(pts))
	for _, p := range pts {
		byW[p.Window] = p
	}
	if byW[2].Alert {
		t.Fatal("transient window 2 must not fire the multi-window alert")
	}
	if byW[2].Short <= 0 {
		t.Fatal("transient window 2 must show short-leg burn")
	}
	if !byW[9].Alert {
		t.Fatalf("sustained burn must fire by window 9: %+v", byW[9])
	}
	// Sustained region: short leg = 10/10/0.05 = 20x from window 7 on;
	// long leg crosses 4x when trailing-8 violations reach 2 windows.
	if byW[9].Short < 19.9 || byW[9].Long < 4 {
		t.Fatalf("window 9 burn legs wrong: %+v", byW[9])
	}
}

// TestDetectGrowth: monotone gauges are flagged, oscillating and short
// series are not.
func TestDetectGrowth(t *testing.T) {
	set := NewSet(1)
	up := set.get("g/up", Gauge)
	for w := uint64(0); w < 6; w++ {
		up.observe(w, w, 10+w)
	}
	if g, ok := DetectGrowth(up, 4); !ok || g.First != 12 || g.Last != 15 {
		t.Fatalf("monotone gauge not detected: %+v ok=%v", g, ok)
	}
	osc := set.get("g/osc", Gauge)
	for w := uint64(0); w < 6; w++ {
		osc.observe(w, w, 10+(w%2)*5)
	}
	if _, ok := DetectGrowth(osc, 6); ok {
		t.Fatal("oscillating gauge flagged as growing")
	}
	flat := set.get("g/flat", Gauge)
	for w := uint64(0); w < 6; w++ {
		flat.observe(w, w, 10)
	}
	if _, ok := DetectGrowth(flat, 6); ok {
		t.Fatal("flat gauge flagged as growing")
	}
	short := set.get("g/short", Gauge)
	short.observe(0, 0, 1)
	short.observe(1, 1, 2)
	if _, ok := DetectGrowth(short, 8); ok {
		t.Fatal("two windows are not evidence of unbounded growth")
	}
}

// TestTopMovers: ranking is by delta desc then name, capped at n.
func TestTopMovers(t *testing.T) {
	set := NewSet(1)
	a := set.get("a", Counter)
	a.observe(0, 0, 10)
	a.observe(1, 1, 90) // delta 80
	b := set.get("b", Counter)
	b.observe(0, 0, 50)
	b.observe(1, 1, 10) // delta 40, downward
	c := set.get("c", Counter)
	c.observe(3, 3, 7) // single window: no move
	movers := TopMovers(set, 5)
	if len(movers) != 2 || movers[0].Series != "a" || movers[0].Delta != 80 ||
		movers[1].Series != "b" || movers[1].Delta != 40 {
		t.Fatalf("movers wrong: %+v", movers)
	}
	if got := TopMovers(set, 1); len(got) != 1 || got[0].Series != "a" {
		t.Fatalf("cap wrong: %+v", got)
	}
}

// TestBurnPairs: viol. names match their done. siblings; orphans don't.
func TestBurnPairs(t *testing.T) {
	set := NewSet(1)
	set.get("tr/done.x", Counter).observe(0, 0, 1)
	set.get("tr/viol.x", Counter).observe(0, 0, 1)
	set.get("tr/viol.orphan", Counter).observe(0, 0, 1)
	pairs := BurnPairs(set)
	if len(pairs) != 1 || pairs[0].Stream != "tr/x" {
		t.Fatalf("pairs wrong: %+v", pairs)
	}
	if pairs[0].Done.Name != "tr/done.x" || pairs[0].Viol.Name != "tr/viol.x" {
		t.Fatalf("pair members wrong: %+v", pairs[0])
	}
}
