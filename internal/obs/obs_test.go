package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"

	"sgxnet/internal/core"
)

// chargeSpan opens a span on tr, charges the meter, and closes it.
func chargeSpan(tr *Trace, track, name string, m *core.Meter, sgxu, normal uint64) {
	s := tr.Begin(track, name, m)
	m.ChargeSGX(sgxu)
	m.ChargeNormal(normal)
	s.End()
}

func TestSpanDeltaAndClock(t *testing.T) {
	tr := New(nil)
	m := core.NewMeter()
	chargeSpan(tr, "t", "a", m, 2, 100)
	chargeSpan(tr, "t", "b", m, 0, 50)
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	wantA := core.CyclesOf(2, 100)
	if evs[1].Ph != PhaseEnd || evs[1].SGXU != 2 || evs[1].Normal != 100 || evs[1].TS != wantA {
		t.Errorf("span a end = %+v, want delta {2 100} at ts %d", evs[1], wantA)
	}
	// The clock advanced: span b begins where a ended.
	if evs[2].TS != wantA {
		t.Errorf("span b begins at %d, want %d", evs[2].TS, wantA)
	}
	if wantB := wantA + core.CyclesOf(0, 50); evs[3].TS != wantB {
		t.Errorf("span b ends at %d, want %d", evs[3].TS, wantB)
	}
}

func TestAggregateSpanSumsChildren(t *testing.T) {
	tr := New(nil)
	m := core.NewMeter()
	outer := tr.Begin("t", "outer") // no meters: aggregate
	chargeSpan(tr, "t", "c1", m, 1, 10)
	chargeSpan(tr, "t", "c2", m, 0, 20)
	outer.End()
	evs := tr.Events()
	end := evs[len(evs)-1]
	if end.Name != "outer" || end.SGXU != 1 || end.Normal != 30 {
		t.Errorf("aggregate end = %+v, want delta {1 30}", end)
	}
	if errs := Check(evs); len(errs) > 0 {
		t.Errorf("Check: %v", errs)
	}
}

func TestNestedMeteredSpansDoNotDoubleCount(t *testing.T) {
	tr := New(nil)
	m := core.NewMeter()
	outer := tr.Begin("t", "outer", m) // metered parent
	chargeSpan(tr, "t", "inner", m, 0, 40)
	m.ChargeNormal(60)
	outer.End()
	a := Analyze(tr.Events())
	if len(a.Tracks) != 1 {
		t.Fatalf("got %d tracks", len(a.Tracks))
	}
	// Attribution counts depth-0 spans only: outer's delta is 100, and
	// inner's 40 are part of it, not added on top.
	if got := a.Tracks[0].Attributed.Normal; got != 100 {
		t.Errorf("attributed normal = %d, want 100", got)
	}
	for _, s := range a.Tracks[0].Spans {
		if s.Name == "outer" && s.Self.Normal != 60 {
			t.Errorf("outer self normal = %d, want 60 (delta minus child)", s.Self.Normal)
		}
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	s := tr.Begin("t", "x", core.NewMeter())
	s.End()
	tr.RecordSpan("t", "y", core.Tally{Normal: 1})
	tr.Event("t", "z", nil)
	tr.Total("t", "w", core.Tally{})
	if evs := tr.Events(); evs != nil {
		t.Errorf("nil trace produced events: %v", evs)
	}
}

func TestRecordSpanAndTotalAttribution(t *testing.T) {
	tr := New(nil)
	tr.RecordSpan("t", "setup", core.Tally{SGXU: 3, Normal: 100})
	tr.RecordSpan("t", "steady", core.Tally{SGXU: 7, Normal: 900})
	tr.Total("t", "run.total", core.Tally{SGXU: 10, Normal: 1000})
	a := Analyze(tr.Events())
	tk := a.Tracks[0]
	if !tk.HasTotal || tk.Residual() != (core.Tally{}) {
		t.Errorf("want zero residual, got %+v (total %+v attributed %+v)",
			tk.Residual(), tk.Total, tk.Attributed)
	}
	if a.Coverage() != 1 {
		t.Errorf("coverage = %v, want 1", a.Coverage())
	}
}

func TestRecordSpanAtPinsStart(t *testing.T) {
	tr := New(nil)
	// Start in the future: the clock must jump to 500 and the gap must
	// survive in the export (open-loop idle time is real).
	tr.RecordSpanAt("t", "req.a", 500, core.Tally{Normal: 100}) // 180 cycles
	evs := tr.Events()
	if evs[0].TS != 500 || evs[1].TS != 680 {
		t.Errorf("future start: ts = %d..%d, want 500..680", evs[0].TS, evs[1].TS)
	}
	// Start in the past: clamped monotone — degrades to RecordSpan at
	// the current clock, never rewinds.
	tr.RecordSpanAt("t", "req.b", 100, core.Tally{Normal: 100})
	evs = tr.Events()
	if evs[2].TS != 680 || evs[3].TS != 860 {
		t.Errorf("past start: ts = %d..%d, want 680..860", evs[2].TS, evs[3].TS)
	}
	// Total attribution composes with pinned spans like recorded ones.
	tr.Total("t", "run.total", core.Tally{Normal: 200})
	a := Analyze(tr.Events())
	if tk := a.Tracks[0]; !tk.HasTotal || tk.Residual() != (core.Tally{}) {
		t.Errorf("want zero residual, got %+v", tk.Residual())
	}
}

func TestRecordSpanAtFoldsIntoAggregate(t *testing.T) {
	tr := New(nil)
	agg := tr.Begin("t", "run") // aggregate: no meters
	tr.RecordSpanAt("t", "req", 50, core.Tally{SGXU: 2, Normal: 10})
	agg.End()
	evs := tr.Events()
	end := evs[len(evs)-1]
	if end.Name != "run" || end.SGXU != 2 || end.Normal != 10 {
		t.Errorf("aggregate did not absorb pinned span: %+v", end)
	}
	var nilTr *Trace
	nilTr.RecordSpanAt("t", "x", 1, core.Tally{}) // must not panic
}

func TestEventBumpsRegistry(t *testing.T) {
	reg := NewRegistry()
	tr := New(reg)
	tr.Event("t", "fault.drop", map[string]string{"tick": "7"})
	tr.Event("t", "fault.drop", nil)
	if got := reg.Get("event.fault.drop"); got != 2 {
		t.Errorf("event counter = %d, want 2", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Add("sgx.instr.EENTER", 5)
	tr := New(reg)
	m := core.NewMeter()
	chargeSpan(tr, "b-track", "x", m, 1, 2)
	tr.Event("a-track", "i", map[string]string{"k": "v"})
	want := tr.Events()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip diverges:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestEventsSortedByTrack(t *testing.T) {
	tr := New(nil)
	tr.Event("zz", "late", nil)
	tr.Event("aa", "early", nil)
	evs := tr.Events()
	if evs[0].Track != "aa" || evs[1].Track != "zz" {
		t.Errorf("events not sorted by track: %+v", evs)
	}
}

func TestCheckCatchesMalformedTraces(t *testing.T) {
	mk := func(mut func([]Event) []Event) []error {
		tr := New(nil)
		m := core.NewMeter()
		chargeSpan(tr, "t", "a", m, 1, 10)
		return Check(mut(tr.Events()))
	}
	if errs := mk(func(e []Event) []Event { return e }); len(errs) != 0 {
		t.Errorf("clean trace flagged: %v", errs)
	}
	// Unclosed span.
	if errs := mk(func(e []Event) []Event { return e[:1] }); len(errs) == 0 {
		t.Error("unclosed span not flagged")
	}
	// Broken sequence.
	if errs := mk(func(e []Event) []Event { e[1].Seq = 9; return e }); len(errs) == 0 {
		t.Error("sparse sequence not flagged")
	}
	// Tally/cycles mismatch.
	if errs := mk(func(e []Event) []Event { e[1].Cycles++; return e }); len(errs) == 0 {
		t.Error("cycle inconsistency not flagged")
	}
	// Clock running backwards.
	if errs := mk(func(e []Event) []Event { e[0].TS = e[1].TS + 1; return e }); len(errs) == 0 {
		t.Error("non-monotone clock not flagged")
	}
}

func TestWriteChromeShape(t *testing.T) {
	reg := NewRegistry()
	reg.Add("epc.ewb", 3)
	tr := New(reg)
	m := core.NewMeter()
	chargeSpan(tr, "t", "a", m, 1, 10)
	tr.Event("t", "inst", map[string]string{"k": "v"})
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.Bytes())
	}
	var phases []string
	for _, ev := range doc.TraceEvents {
		phases = append(phases, ev["ph"].(string))
	}
	joined := strings.Join(phases, "")
	for _, want := range []string{"M", "B", "E", "i", "C"} {
		if !strings.Contains(joined, want) {
			t.Errorf("chrome export missing phase %q (got %q)", want, joined)
		}
	}
}

func TestConcurrentTracksAreIndependent(t *testing.T) {
	tr := New(NewRegistry())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := core.NewMeter()
			track := string(rune('a' + i))
			for j := 0; j < 50; j++ {
				chargeSpan(tr, track, "work", m, 1, 10)
				tr.Event(track, "tick", nil)
			}
		}(i)
	}
	wg.Wait()
	evs := tr.Events()
	if errs := Check(evs); len(errs) > 0 {
		t.Fatalf("concurrent trace malformed: %v", errs)
	}
	// 8 tracks × 50 × (B+E+I) + 1 metric record ("event.tick").
	if want := 8*50*3 + 1; len(evs) != want {
		t.Errorf("got %d events, want %d", len(evs), want)
	}
}

func TestFaultRecorderNilSafe(t *testing.T) {
	var f *FaultRecorder
	f.RecordSchedule(1, "recipe")
	f.FaultEvent("drop", "a", "b", 3)
	rec := &FaultRecorder{T: New(nil), Track: "faults"}
	rec.RecordSchedule(42, "links=1")
	rec.FaultEvent("delay", "x", "y", 9)
	evs := rec.T.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Name != "fault.schedule" || evs[0].Attrs["seed"] != "42" {
		t.Errorf("schedule event = %+v", evs[0])
	}
	if evs[1].Name != "fault.delay" || evs[1].Attrs["tick"] != "9" || evs[1].Attrs["from"] != "x" {
		t.Errorf("fault event = %+v", evs[1])
	}
}
