// Package middlebox implements the paper's §3.3 application: secure
// in-network functions for TLS traffic. Endpoints remote-attest an
// in-path middlebox's enclave and hand it their TLS session keys over
// the attestation-bootstrapped secure channel; the middlebox then
// performs deep packet inspection on traffic it could not otherwise
// read, while the endpoints retain cryptographic assurance about exactly
// which code is doing the inspecting.
package middlebox

import (
	"fmt"
	"sort"
)

// DPI is a multi-pattern matcher (Aho–Corasick) — the inspection engine
// running inside the middlebox enclave.
type DPI struct {
	patterns []string
	// Automaton: per-node transition map, failure links, and output
	// pattern indices.
	next []map[byte]int
	fail []int
	out  [][]int
}

// NewDPI compiles a pattern set into an Aho–Corasick automaton.
func NewDPI(patterns []string) (*DPI, error) {
	d := &DPI{patterns: append([]string(nil), patterns...)}
	d.next = []map[byte]int{{}}
	d.fail = []int{0}
	d.out = [][]int{nil}
	for i, p := range patterns {
		if p == "" {
			return nil, fmt.Errorf("middlebox: empty DPI pattern %d", i)
		}
		cur := 0
		for j := 0; j < len(p); j++ {
			c := p[j]
			nxt, ok := d.next[cur][c]
			if !ok {
				nxt = len(d.next)
				d.next = append(d.next, map[byte]int{})
				d.fail = append(d.fail, 0)
				d.out = append(d.out, nil)
				d.next[cur][c] = nxt
			}
			cur = nxt
		}
		d.out[cur] = append(d.out[cur], i)
	}
	// BFS to build failure links: fail(v) for child v of u on byte c is
	// the goto of u's failure chain on c. Failure targets are always
	// shallower nodes, so their output sets are complete when merged.
	queue := make([]int, 0, len(d.next))
	for _, v := range d.next[0] {
		queue = append(queue, v)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for c, v := range d.next[u] {
			queue = append(queue, v)
			f := d.fail[u]
			for f != 0 {
				if _, ok := d.next[f][c]; ok {
					break
				}
				f = d.fail[f]
			}
			if w, ok := d.next[f][c]; ok && w != v {
				d.fail[v] = w
			} else {
				d.fail[v] = 0
			}
			d.out[v] = append(d.out[v], d.out[d.fail[v]]...)
		}
	}
	return d, nil
}

// Match is one DPI hit.
type Match struct {
	Pattern string
	// Offset is the byte offset of the match end in the scanned input.
	Offset int
}

// Scan runs the automaton over data and returns all pattern occurrences.
func (d *DPI) Scan(data []byte) []Match {
	var hits []Match
	s := 0
	for i := 0; i < len(data); i++ {
		c := data[i]
		for {
			if nxt, ok := d.next[s][c]; ok {
				s = nxt
				break
			}
			if s == 0 {
				break
			}
			s = d.fail[s]
		}
		for _, pi := range d.out[s] {
			hits = append(hits, Match{Pattern: d.patterns[pi], Offset: i + 1})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Offset != hits[j].Offset {
			return hits[i].Offset < hits[j].Offset
		}
		return hits[i].Pattern < hits[j].Pattern
	})
	return hits
}

// Patterns returns the compiled pattern set.
func (d *DPI) Patterns() []string { return append([]string(nil), d.patterns...) }
