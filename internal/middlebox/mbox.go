package middlebox

import (
	"encoding/binary"
	"fmt"
	"sync"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/sgxcrypto"
	"sgxnet/internal/tlslite"
)

// DataService is the middlebox's forwarding service (what clients and
// upstream middleboxes dial).
const DataService = "mbox.data"

// CtlService is the middlebox's control service (attestation + key
// provisioning).
const CtlService = "mbox.ctl"

// MboxVersion is the community-verified middlebox build.
const MboxVersion = "1.0"

// Alert is one DPI hit inside inspected traffic.
type Alert struct {
	Flow      uint32
	Direction tlslite.Direction
	Match     Match
}

// mboxState is the middlebox's enclave-private state: the attestation
// sessions, the provisioned key ring, the DPI automaton, and the alerts.
// TLS session keys live only here — the untrusted host forwards opaque
// frames and never sees a key.
type mboxState struct {
	attest *attest.TargetState
	dpi    *DPI

	mu           sync.Mutex
	requireBoth  bool
	keyring      []tlslite.Keys
	endorsements map[tlslite.Keys]map[string]bool // key block → endorsing party names
	alerts       []Alert
}

// provision installs a key block endorsed by a named party. With
// requireBoth set, inspection of that session starts only once two
// distinct parties (both endpoints, §3.3 "middleboxes that both
// end-points agree upon") have endorsed the same key block.
func (st *mboxState) provision(party string, keys tlslite.Keys) (active bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.endorsements[keys] == nil {
		st.endorsements[keys] = make(map[string]bool)
	}
	st.endorsements[keys][party] = true
	need := 1
	if st.requireBoth {
		need = 2
	}
	if len(st.endorsements[keys]) >= need {
		for _, k := range st.keyring {
			if k == keys {
				return true
			}
		}
		st.keyring = append(st.keyring, keys)
		return true
	}
	return false
}

// inspect tries to open a forwarded frame with every provisioned key
// block and scans plaintext on success. Records carry their direction
// and sequence number in a MAC-protected header, so the passive observer
// needs no per-flow counters. The frame is forwarded verbatim either way
// (passive inspection).
func (st *mboxState) inspect(m *core.Meter, flow uint32, frame []byte) {
	st.mu.Lock()
	ring := append([]tlslite.Keys(nil), st.keyring...)
	st.mu.Unlock()

	for _, keys := range ring {
		codec := tlslite.NewCodec(keys)
		dir, _, plain, err := codec.OpenAny(m, frame)
		if err != nil {
			continue
		}
		st.mu.Lock()
		for _, hit := range st.dpi.Scan(plain) {
			st.alerts = append(st.alerts, Alert{Flow: flow, Direction: dir, Match: hit})
		}
		st.mu.Unlock()
		return
	}
}

// Middlebox is a deployed in-path middlebox.
type Middlebox struct {
	Name string
	Host *netsim.SimHost
	// NextHop is "host|service" of the next element (another middlebox's
	// data service, or the server).
	NextHop string

	state   *mboxState
	enclave *core.Enclave
	shim    *netsim.IOShim

	flowMu   sync.Mutex
	nextFlow uint32
}

// Config configures a middlebox.
type Config struct {
	Name    string
	NextHop string
	// Patterns is the DPI rule set compiled into the enclave.
	Patterns []string
	// RequireBothEndpoints demands endorsement of a session's keys by
	// two distinct parties before inspecting it.
	RequireBothEndpoints bool
	Signer               *core.Signer
	// Tampered launches a modified build (for attack tests): its
	// measurement will not match the community-verified one.
	Tampered bool
}

// mboxProgram builds the middlebox enclave program.
func mboxProgram(st *mboxState, version string, patterns []string) *core.Program {
	cfg := []byte(fmt.Sprint(patterns))
	prog := &core.Program{
		Name:    "tls-middlebox",
		Version: version,
		Config:  cfg,
		Handlers: map[string]core.Handler{
			// mbox.provision: connID(4) ‖ party-name-len(1) ‖ name ‖ sealed keys
			"mbox.provision": func(env *core.Env, arg []byte) ([]byte, error) {
				if len(arg) < 5 {
					return nil, fmt.Errorf("middlebox: short provision arg")
				}
				cid := binary.LittleEndian.Uint32(arg[:4])
				nameLen := int(arg[4])
				if len(arg) < 5+nameLen {
					return nil, fmt.Errorf("middlebox: short provision arg")
				}
				party := string(arg[5 : 5+nameLen])
				// A key block has exactly one valid sealed length;
				// checking it before Open keeps a wrong-sized blob —
				// even one with an authentic MAC — from charging for
				// decryption it can never put to use.
				if len(arg[5+nameLen:]) != tlslite.KeysLen+sgxcrypto.Overhead {
					return nil, fmt.Errorf("middlebox: sealed key block is %d bytes, want %d",
						len(arg[5+nameLen:]), tlslite.KeysLen+sgxcrypto.Overhead)
				}
				plain, err := st.attest.Open(env.Meter(), cid, arg[5+nameLen:])
				if err != nil {
					return nil, fmt.Errorf("middlebox: opening key block: %w", err)
				}
				keys, ok := tlslite.UnmarshalKeys(plain)
				if !ok {
					return nil, fmt.Errorf("middlebox: malformed key block")
				}
				if st.provision(party, keys) {
					return []byte{1}, nil
				}
				return []byte{0}, nil
			},
			// mbox.inspect: flow(4) ‖ frame
			"mbox.inspect": func(env *core.Env, arg []byte) ([]byte, error) {
				if len(arg) < 4 {
					return nil, fmt.Errorf("middlebox: short inspect arg")
				}
				flow := binary.LittleEndian.Uint32(arg[:4])
				st.inspect(env.Meter(), flow, arg[4:])
				return nil, nil
			},
		},
	}
	attest.AddTargetHandlers(prog, st.attest)
	return prog
}

// Measurement returns the community-verified middlebox identity for a
// given DPI rule set — what endpoints whitelist before handing over
// session keys.
func Measurement(patterns []string, requireBoth bool) core.Measurement {
	st := &mboxState{attest: attest.NewTargetState(), requireBoth: requireBoth}
	return core.MeasureProgram(mboxProgram(st, MboxVersion, patterns))
}

// Launch starts a middlebox on the host.
func Launch(host *netsim.SimHost, cfg Config) (*Middlebox, error) {
	dpi, err := NewDPI(cfg.Patterns)
	if err != nil {
		return nil, err
	}
	st := &mboxState{
		attest:       attest.NewTargetState(),
		dpi:          dpi,
		requireBoth:  cfg.RequireBothEndpoints,
		endorsements: make(map[tlslite.Keys]map[string]bool),
	}
	version := MboxVersion
	if cfg.Tampered {
		version = MboxVersion + "-exfiltrate"
	}
	signer := cfg.Signer
	if signer == nil {
		signer, err = core.NewSigner()
		if err != nil {
			return nil, err
		}
	}
	enc, err := host.Platform().Launch(mboxProgram(st, version, cfg.Patterns), signer)
	if err != nil {
		return nil, err
	}
	shim := netsim.NewMsgShim(host, enc.Meter())
	var mh netsim.MultiHost
	mh.Mount("msg.", shim)
	enc.BindHost(&mh)

	mb := &Middlebox{Name: cfg.Name, Host: host, NextHop: cfg.NextHop, state: st, enclave: enc, shim: shim}

	dl, err := host.Listen(DataService)
	if err != nil {
		return nil, err
	}
	go dl.Serve(mb.serveData)
	cl, err := host.Listen(CtlService)
	if err != nil {
		return nil, err
	}
	go cl.Serve(mb.serveCtl)
	return mb, nil
}

// Enclave returns the middlebox enclave.
func (mb *Middlebox) Enclave() *core.Enclave { return mb.enclave }

// Alerts returns the DPI alerts raised so far.
func (mb *Middlebox) Alerts() []Alert {
	mb.state.mu.Lock()
	defer mb.state.mu.Unlock()
	return append([]Alert(nil), mb.state.alerts...)
}

// serveData splices a client-side connection to the next hop, passing
// every frame through the enclave for inspection.
func (mb *Middlebox) serveData(down *netsim.Conn) {
	sep := -1
	for i := 0; i < len(mb.NextHop); i++ {
		if mb.NextHop[i] == '|' {
			sep = i
			break
		}
	}
	if sep < 0 {
		down.Close()
		return
	}
	up, err := mb.Host.Dial(mb.NextHop[:sep], mb.NextHop[sep+1:])
	if err != nil {
		down.Close()
		return
	}
	mb.flowMu.Lock()
	mb.nextFlow++
	flow := mb.nextFlow
	mb.flowMu.Unlock()

	splice := func(src, dst *netsim.Conn) {
		for {
			frame, err := src.Recv()
			if err != nil {
				dst.Close()
				return
			}
			arg := make([]byte, 4+len(frame))
			binary.LittleEndian.PutUint32(arg[:4], flow)
			copy(arg[4:], frame)
			mb.enclave.Call("mbox.inspect", arg)
			if err := dst.Send(frame); err != nil {
				src.Close()
				return
			}
		}
	}
	go splice(down, up)
	go splice(up, down)
}

// serveCtl answers attestation + provisioning on the control plane.
func (mb *Middlebox) serveCtl(conn *netsim.Conn) {
	cid, err := attest.Respond(mb.enclave, mb.shim, mb.Host, conn)
	if err != nil {
		conn.Close()
		return
	}
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		// raw: party-name-len(1) ‖ name ‖ sealed key block
		arg := make([]byte, 4+len(raw))
		binary.LittleEndian.PutUint32(arg[:4], cid)
		copy(arg[4:], raw)
		out, err := mb.enclave.Call("mbox.provision", arg)
		if err != nil {
			conn.Close()
			return
		}
		if err := conn.Send(out); err != nil {
			return
		}
	}
}

// Provision is the endpoint-side driver: attest the middlebox from the
// endpoint's enclave, then send the session key block over the secure
// channel. Returns whether inspection is active (false when the
// middlebox still awaits the other endpoint's endorsement).
func Provision(endpoint *core.Enclave, shim *netsim.IOShim, host *netsim.SimHost,
	mboxHost, party string, keys tlslite.Keys) (bool, error) {
	conn, err := host.Dial(mboxHost, CtlService)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	cid, _, err := attest.Challenge(endpoint, shim, conn, true)
	if err != nil {
		return false, fmt.Errorf("middlebox: attestation failed: %w", err)
	}
	sealed, err := endpoint.Call("endpoint.sealkeys", sealArgs(cid, keys))
	if err != nil {
		return false, err
	}
	msg := make([]byte, 1+len(party)+len(sealed))
	msg[0] = byte(len(party))
	copy(msg[1:], party)
	copy(msg[1+len(party):], sealed)
	resp, err := conn.Request(msg)
	if err != nil {
		return false, err
	}
	return len(resp) == 1 && resp[0] == 1, nil
}

func sealArgs(cid uint32, keys tlslite.Keys) []byte {
	out := make([]byte, 4, 4+96)
	binary.LittleEndian.PutUint32(out[:4], cid)
	return append(out, keys.Marshal()...)
}

// EndpointState is the endpoint-side enclave state used to provision
// middleboxes: the challenger role plus a handler that seals key blocks
// under the attested channel.
type EndpointState struct {
	Attest *attest.ChallengerState
}

// NewEndpointState builds endpoint state whose policy pins the verified
// middlebox measurement(s).
func NewEndpointState(allowed []core.Measurement) *EndpointState {
	return &EndpointState{Attest: attest.NewChallengerState(attest.Policy{
		AllowedEnclaves: allowed,
		RejectDebug:     true,
	})}
}

// EndpointProgram builds an endpoint enclave program (e.g. the
// enterprise TLS client) able to attest and provision middleboxes.
func EndpointProgram(name string, st *EndpointState) *core.Program {
	prog := &core.Program{
		Name:    name,
		Version: "1.0",
		Handlers: map[string]core.Handler{
			"endpoint.sealkeys": func(env *core.Env, arg []byte) ([]byte, error) {
				if len(arg) < 4 {
					return nil, fmt.Errorf("middlebox: short sealkeys arg")
				}
				cid := binary.LittleEndian.Uint32(arg[:4])
				return st.Attest.Seal(env.Meter(), cid, arg[4:])
			},
		},
	}
	attest.AddChallengerHandlers(prog, st.Attest)
	return prog
}
