package middlebox

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/tlslite"
)

// --- DPI engine ---

func TestDPIBasicMatches(t *testing.T) {
	d, err := NewDPI([]string{"virus", "exploit", "usvi"})
	if err != nil {
		t.Fatal(err)
	}
	hits := d.Scan([]byte("the virusvirus carries an exploit"))
	var names []string
	for _, h := range hits {
		names = append(names, h.Pattern)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "virus") || !strings.Contains(joined, "exploit") {
		t.Fatalf("hits = %v", names)
	}
	// Overlapping match: "virusvirus" contains "usvi" spanning the two.
	if !strings.Contains(joined, "usvi") {
		t.Fatalf("overlapping pattern missed: %v", names)
	}
}

func TestDPINoFalsePositives(t *testing.T) {
	d, _ := NewDPI([]string{"attack"})
	if hits := d.Scan([]byte("attac katt ack")); len(hits) != 0 {
		t.Fatalf("phantom hits %v", hits)
	}
	if hits := d.Scan(nil); len(hits) != 0 {
		t.Fatal("hits on empty input")
	}
}

func TestDPISuffixPatterns(t *testing.T) {
	d, _ := NewDPI([]string{"he", "she", "his", "hers"})
	hits := d.Scan([]byte("ushers"))
	// Classic Aho–Corasick example: "she" at 4, "he" at 4, "hers" at 6.
	want := map[string]bool{"she": false, "he": false, "hers": false}
	for _, h := range hits {
		want[h.Pattern] = true
	}
	for p, seen := range want {
		if !seen {
			t.Fatalf("pattern %q missed in 'ushers' (hits %v)", p, hits)
		}
	}
	if len(hits) != 3 {
		t.Fatalf("want 3 hits, got %v", hits)
	}
}

func TestDPIEmptyPatternRejected(t *testing.T) {
	if _, err := NewDPI([]string{"ok", ""}); err == nil {
		t.Fatal("empty pattern accepted")
	}
}

// Property: Scan agrees with naive substring counting.
func TestDPIMatchesNaiveProperty(t *testing.T) {
	pats := []string{"ab", "bc", "abc", "ca", "aa"}
	d, err := NewDPI(pats)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []byte) bool {
		// Restrict alphabet to make matches likely.
		data := make([]byte, len(raw))
		for i, b := range raw {
			data[i] = 'a' + b%3
		}
		naive := 0
		for _, p := range pats {
			for i := 0; i+len(p) <= len(data); i++ {
				if string(data[i:i+len(p)]) == p {
					naive++
				}
			}
		}
		return len(d.Scan(data)) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// --- middlebox deployment ---

type mboxFixture struct {
	net      *netsim.Network
	arch     *core.Signer
	client   *netsim.SimHost
	server   *netsim.SimHost
	mboxes   []*Middlebox
	endpoint *core.Enclave
	epShim   *netsim.IOShim
	epState  *EndpointState
}

var testPatterns = []string{"malware", "exfiltrate"}

// newMboxFixture deploys client → mbox(es) → server with a TLS echo
// server.
func newMboxFixture(t *testing.T, nMbox int, requireBoth, tampered bool) *mboxFixture {
	t.Helper()
	f := &mboxFixture{net: netsim.New()}
	arch, err := core.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	f.arch = arch
	newHost := func(name string) *netsim.SimHost {
		plat, err := core.NewPlatform(name, core.PlatformConfig{EPCFrames: 512, ArchSigner: arch.MRSigner()})
		if err != nil {
			t.Fatal(err)
		}
		h, err := f.net.AddHostWithPlatform(name, plat)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := attest.NewAgent(h, arch); err != nil {
			t.Fatal(err)
		}
		return h
	}
	f.client = newHost("client")
	f.server = newHost("server")

	// TLS echo server.
	sl, err := f.server.Listen("tls")
	if err != nil {
		t.Fatal(err)
	}
	go sl.Serve(func(c *netsim.Conn) {
		s, err := tlslite.ServerHandshake(core.NewMeter(), c)
		if err != nil {
			c.Close()
			return
		}
		for {
			msg, err := s.Recv()
			if err != nil {
				return
			}
			if err := s.Send(append([]byte("echo:"), msg...)); err != nil {
				return
			}
		}
	})

	// Middlebox chain, last one points at the server.
	next := "server|tls"
	for i := nMbox - 1; i >= 0; i-- {
		host := newHost(sprintf("mbox%d", i))
		mb, err := Launch(host, Config{
			Name:                 sprintf("mbox%d", i),
			NextHop:              next,
			Patterns:             testPatterns,
			RequireBothEndpoints: requireBoth,
			Tampered:             tampered && i == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.mboxes = append([]*Middlebox{mb}, f.mboxes...)
		next = host.Name() + "|" + DataService
	}

	// Endpoint enclave on the client host.
	f.epState = NewEndpointState([]core.Measurement{Measurement(testPatterns, requireBoth)})
	signer, err := core.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := f.client.Platform().Launch(EndpointProgram("enterprise-client", f.epState), signer)
	if err != nil {
		t.Fatal(err)
	}
	f.endpoint = enc
	f.epShim = netsim.NewMsgShim(f.client, enc.Meter())
	var mh netsim.MultiHost
	mh.Mount("msg.", f.epShim)
	enc.BindHost(&mh)
	return f
}

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// entryHop returns where the client dials to reach the chain.
func (f *mboxFixture) entryHop() (string, string) {
	if len(f.mboxes) == 0 {
		return "server", "tls"
	}
	return f.mboxes[0].Host.Name(), DataService
}

// dialTLS runs a TLS handshake through the chain.
func (f *mboxFixture) dialTLS(t *testing.T) *tlslite.Session {
	t.Helper()
	host, svc := f.entryHop()
	conn, err := f.client.Dial(host, svc)
	if err != nil {
		t.Fatal(err)
	}
	s, err := tlslite.ClientHandshake(core.NewMeter(), conn)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTLSThroughChainWithoutKeys(t *testing.T) {
	f := newMboxFixture(t, 2, false, false)
	s := f.dialTLS(t)
	if err := s.Send([]byte("contains malware signature")); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Recv()
	if err != nil || string(resp) != "echo:contains malware signature" {
		t.Fatalf("%q %v", resp, err)
	}
	// Without session keys the middleboxes saw only ciphertext: no
	// alerts despite the pattern in the plaintext.
	for _, mb := range f.mboxes {
		if n := len(mb.Alerts()); n != 0 {
			t.Fatalf("%s raised %d alerts without keys — TLS is broken", mb.Name, n)
		}
	}
}

func TestUnilateralProvisioningEnablesDPI(t *testing.T) {
	f := newMboxFixture(t, 2, false, false)
	s := f.dialTLS(t)
	attested := 0
	for _, mb := range f.mboxes {
		active, err := Provision(f.endpoint, f.epShim, f.client, mb.Host.Name(), "client", s.ExportKeys())
		if err != nil {
			t.Fatal(err)
		}
		if !active {
			t.Fatalf("%s did not activate on unilateral provisioning", mb.Name)
		}
		attested++
	}
	// Table 3: one remote attestation per in-path middlebox.
	if attested != 2 {
		t.Fatalf("attestations = %d", attested)
	}
	if err := s.Send([]byte("please exfiltrate the database")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(); err != nil {
		t.Fatal(err)
	}
	for _, mb := range f.mboxes {
		alerts := mb.Alerts()
		if len(alerts) == 0 {
			t.Fatalf("%s raised no alerts after key provisioning", mb.Name)
		}
		if alerts[0].Match.Pattern != "exfiltrate" {
			t.Fatalf("%s alert %v", mb.Name, alerts[0])
		}
	}
}

func TestBilateralConsentRequired(t *testing.T) {
	f := newMboxFixture(t, 1, true, false)
	s := f.dialTLS(t)
	mb := f.mboxes[0]
	active, err := Provision(f.endpoint, f.epShim, f.client, mb.Host.Name(), "client", s.ExportKeys())
	if err != nil {
		t.Fatal(err)
	}
	if active {
		t.Fatal("middlebox activated on one endorsement despite RequireBothEndpoints")
	}
	if err := s.Send([]byte("malware inside")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(); err != nil {
		t.Fatal(err)
	}
	if len(mb.Alerts()) != 0 {
		t.Fatal("middlebox inspected with only one endpoint's consent")
	}
	// Server endorses the same keys (its own endpoint enclave).
	srvState := NewEndpointState([]core.Measurement{Measurement(testPatterns, true)})
	signer, _ := core.NewSigner()
	srvEnc, err := f.server.Platform().Launch(EndpointProgram("server-endpoint", srvState), signer)
	if err != nil {
		t.Fatal(err)
	}
	srvShim := netsim.NewMsgShim(f.server, srvEnc.Meter())
	var mh netsim.MultiHost
	mh.Mount("msg.", srvShim)
	srvEnc.BindHost(&mh)
	active, err = Provision(srvEnc, srvShim, f.server, mb.Host.Name(), "server", s.ExportKeys())
	if err != nil {
		t.Fatal(err)
	}
	if !active {
		t.Fatal("middlebox did not activate after both endorsements")
	}
	if err := s.Send([]byte("more malware here")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(); err != nil {
		t.Fatal(err)
	}
	if len(mb.Alerts()) == 0 {
		t.Fatal("no alerts after bilateral consent")
	}
}

func TestTamperedMiddleboxNeverGetsKeys(t *testing.T) {
	f := newMboxFixture(t, 1, false, true) // mbox0 is a tampered build
	s := f.dialTLS(t)
	mb := f.mboxes[0]
	if _, err := Provision(f.endpoint, f.epShim, f.client, mb.Host.Name(), "client", s.ExportKeys()); err == nil {
		t.Fatal("endpoint provisioned keys to a tampered middlebox")
	}
	if err := s.Send([]byte("malware payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(); err != nil {
		t.Fatal(err)
	}
	if len(mb.Alerts()) != 0 {
		t.Fatal("tampered middlebox decrypted traffic")
	}
}

func TestTrafficIntegrityThroughChain(t *testing.T) {
	f := newMboxFixture(t, 3, false, false)
	s := f.dialTLS(t)
	for i := 0; i < 5; i++ {
		msg := []byte(sprintf("message %d", i))
		if err := s.Send(msg); err != nil {
			t.Fatal(err)
		}
		resp, err := s.Recv()
		if err != nil || string(resp) != "echo:"+string(msg) {
			t.Fatalf("round %d: %q %v", i, resp, err)
		}
	}
}
