package middlebox

import (
	"testing"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
	"sgxnet/internal/sgxcrypto"
	"sgxnet/internal/tlslite"
)

// Charge-before-validate regression tests (the PR-9 audit discipline
// applied to middlebox): a provisioning attempt that fails its checks
// must charge the receiving box zero modelled work — the gap here was a
// sealed blob with an authentic MAC but the wrong plaintext length,
// which used to pay the full MAC+decrypt bill before UnmarshalKeys
// noticed. The fix rejects any sealed key block whose ciphertext length
// differs from the single valid value (tlslite.KeysLen +
// sgxcrypto.Overhead) before any metered crypto.

// TestProvisionWrongLengthChargesNothing forges an *authentic* sealed
// blob of the wrong plaintext length over a genuinely attested session
// and replays the endpoint's provisioning message with it: the mbox
// enclave must refuse, and the failed ECALL must cost exactly the
// EENTER/EEXIT pair.
func TestProvisionWrongLengthChargesNothing(t *testing.T) {
	f := newMboxFixture(t, 1, false, false)
	mb := f.mboxes[0]

	conn, err := f.client.Dial(mb.Host.Name(), CtlService)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cid, _, err := attest.Challenge(f.endpoint, f.epShim, conn, true)
	if err != nil {
		t.Fatal(err)
	}

	// Forge the blob host-side with the endpoint's session table: the
	// MAC authenticates, but the plaintext is 80 bytes, not KeysLen.
	forged, err := f.epState.Attest.Seal(core.NewMeter(), cid, make([]byte, 80))
	if err != nil {
		t.Fatal(err)
	}
	if len(forged) == tlslite.KeysLen+sgxcrypto.Overhead {
		t.Fatal("forgery accidentally has the valid length")
	}
	party := "enterprise-client"
	msg := make([]byte, 1+len(party)+len(forged))
	msg[0] = byte(len(party))
	copy(msg[1:], party)
	copy(msg[1+len(party):], forged)

	pre := mb.enclave.Meter().Snapshot()
	if err := conn.Send(msg); err != nil {
		t.Fatal(err)
	}
	// serveCtl closes the connection after the enclave call fails, so a
	// Recv error is both the rejection signal and the sync point.
	if _, err := conn.Recv(); err == nil {
		t.Fatal("wrong-length sealed key block was accepted")
	}
	if d := mb.enclave.Meter().Snapshot().Sub(pre); d != (core.Tally{SGXU: 2}) {
		t.Fatalf("failed provisioning charged %+v, want exactly {SGXU:2} (the crossing pair)", d)
	}
}

// TestMCTLSAcceptKeysWrongLengthChargesNothing is the same property on
// the mcTLS comparison path: after a legitimate provisioning has cached
// the channel, an authentic-but-wrong-length sealed block must be
// rejected with zero charge on the box's meter.
func TestMCTLSAcceptKeysWrongLengthChargesNothing(t *testing.T) {
	setup := core.NewMeter()
	box, err := NewMCTLSBox(setup, "mc0", testPatterns, false)
	if err != nil {
		t.Fatal(err)
	}
	ep := NewMCTLSEndpoint("client")
	if err := ep.Provision(setup, box, tlslite.Keys{}); err != nil {
		t.Fatal(err)
	}

	// The endpoint's cached channel seals an authentic blob around a
	// wrong-length plaintext.
	ep.mu.Lock()
	ch := ep.channels[box.Name]
	ep.mu.Unlock()
	forged, err := ch.Seal(setup, make([]byte, 80))
	if err != nil {
		t.Fatal(err)
	}

	m := core.NewMeter()
	if err := box.acceptKeys(m, "client", forged); err == nil {
		t.Fatal("wrong-length mcTLS key block was accepted")
	}
	if d := m.Snapshot(); d != (core.Tally{}) {
		t.Fatalf("failed acceptKeys charged %+v, want zero", d)
	}
	if len(box.keyring) != 1 {
		t.Fatalf("keyring has %d entries, want the 1 legitimate block", len(box.keyring))
	}
}
