package middlebox

import (
	"testing"

	"sgxnet/internal/core"
	"sgxnet/internal/tlslite"
)

func testKeys(b byte) tlslite.Keys {
	var k tlslite.Keys
	k.EncC2S[0], k.EncS2C[0] = b, b+1
	k.MacC2S[0], k.MacS2C[0] = b+2, b+3
	return k
}

func TestMCTLSProvisionAndInspect(t *testing.T) {
	m := core.NewMeter()
	box, err := NewMCTLSBox(m, "mc0", testPatterns, false)
	if err != nil {
		t.Fatal(err)
	}
	ep := NewMCTLSEndpoint("client")

	// Establish a real session's keys and provision them.
	var master [32]byte
	master[0] = 7
	codec := tlslite.NewCodec(deriveTestKeys(master))
	if err := ep.Provision(m, box, deriveTestKeys(master)); err != nil {
		t.Fatal(err)
	}
	if !box.HasKeys() {
		t.Fatal("box has no keys after provisioning")
	}
	rec, err := codec.Seal(m, tlslite.ClientToServer, 0, []byte("malware attachment"))
	if err != nil {
		t.Fatal(err)
	}
	box.Inspect(m, 1, rec)
	if len(box.Alerts()) == 0 {
		t.Fatal("mcTLS box failed to inspect with provisioned keys")
	}
}

// deriveTestKeys mirrors tlslite's internal derivation for tests in this
// package.
func deriveTestKeys(master [32]byte) tlslite.Keys {
	// Build via a Codec round trip: the key block is just bytes; use a
	// fixed synthetic block.
	var k tlslite.Keys
	copy(k.EncC2S[:], master[:16])
	copy(k.EncS2C[:], master[16:])
	copy(k.MacC2S[:], master[:])
	copy(k.MacS2C[:], master[:])
	k.MacS2C[0] ^= 1
	return k
}

// TestMCTLSFirstContactCaching: the expensive DH happens once per
// (endpoint, box) pair; later sessions reuse the channel.
func TestMCTLSFirstContactCaching(t *testing.T) {
	m := core.NewMeter()
	box, err := NewMCTLSBox(m, "mc0", testPatterns, false)
	if err != nil {
		t.Fatal(err)
	}
	ep := NewMCTLSEndpoint("client")
	m.Reset()
	if err := ep.Provision(m, box, testKeys(1)); err != nil {
		t.Fatal(err)
	}
	first := m.Normal()
	m.Reset()
	if err := ep.Provision(m, box, testKeys(50)); err != nil {
		t.Fatal(err)
	}
	second := m.Normal()
	if first < 10*second {
		t.Fatalf("first contact %d not dominated by DH vs cached %d", first, second)
	}
}

// TestMCTLSTrustGap is the §3.3 comparison the paper motivates: the
// mcTLS-style protocol hands session keys to whatever runs behind the
// box's public key — a tampered build included — while the SGX design's
// attestation refuses it (TestTamperedMiddleboxNeverGetsKeys).
func TestMCTLSTrustGap(t *testing.T) {
	m := core.NewMeter()
	tamperedBox, err := NewMCTLSBox(m, "evil", testPatterns, true)
	if err != nil {
		t.Fatal(err)
	}
	ep := NewMCTLSEndpoint("client")
	if err := ep.Provision(m, tamperedBox, testKeys(9)); err != nil {
		t.Fatalf("mcTLS provisioning errored: %v", err)
	}
	if !tamperedBox.HasKeys() {
		t.Fatal("setup broken")
	}
	// The protocol accepted: session keys now sit in software the
	// endpoint knows nothing about. With SGX, the equivalent flow fails
	// the measurement check — see TestTamperedMiddleboxNeverGetsKeys.
}

// TestMCTLSWrongChannelRejected: a box cannot accept keys from an
// endpoint it never exchanged with.
func TestMCTLSWrongChannelRejected(t *testing.T) {
	m := core.NewMeter()
	box, err := NewMCTLSBox(m, "mc0", testPatterns, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := box.acceptKeys(m, "stranger", []byte("junk")); err == nil {
		t.Fatal("keys accepted over nonexistent channel")
	}
}
