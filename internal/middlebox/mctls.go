package middlebox

import (
	"fmt"
	"math/big"
	"sync"

	"sgxnet/internal/core"
	"sgxnet/internal/sgxcrypto"
	"sgxnet/internal/tlslite"
)

// mcTLS-style comparison point (§3.3 cites mcTLS [28] as the
// protocol-modification alternative to SGX middleboxes). This is a
// minimal model of its key property: endpoints hand session/context keys
// to middleboxes identified by a *public key*, with no statement about
// what code runs behind that key. Provisioning is cheap — one
// ephemeral-static Diffie-Hellman on first contact, cached channel
// afterwards — but a middlebox that lies about its software receives the
// keys all the same. The SGX design (mbox.go) pays a full remote
// attestation on first contact and in exchange binds key release to a
// measured build.
//
// The eval ablation quantifies the cost side; TestMCTLSTrustGap
// demonstrates the trust side.

// MCTLSBox is a middlebox in the mcTLS trust model: identified by a
// static DH public key, trusted by fiat.
type MCTLSBox struct {
	Name string
	// Tampered marks a box whose operator modified the software. Nothing
	// in the protocol can see this flag — that is the point.
	Tampered bool

	static *sgxcrypto.DHKey
	dpi    *DPI

	mu       sync.Mutex
	channels map[string]*sgxcrypto.Channel // per provisioning peer
	keyring  []tlslite.Keys
	alerts   []Alert
}

// NewMCTLSBox creates a box with a fresh static keypair.
func NewMCTLSBox(m *core.Meter, name string, patterns []string, tampered bool) (*MCTLSBox, error) {
	dpi, err := NewDPI(patterns)
	if err != nil {
		return nil, err
	}
	static, err := sgxcrypto.GenerateKey(m, sgxcrypto.StandardGroup(), nil)
	if err != nil {
		return nil, err
	}
	return &MCTLSBox{
		Name:     name,
		Tampered: tampered,
		static:   static,
		dpi:      dpi,
		channels: make(map[string]*sgxcrypto.Channel),
	}, nil
}

// PublicKey returns the box's static public value — all an endpoint ever
// learns about it.
func (b *MCTLSBox) PublicKey() *big.Int { return new(big.Int).Set(b.static.Public) }

// MCTLSEndpoint is an endpoint's cached provisioning state toward boxes.
type MCTLSEndpoint struct {
	Name string

	mu       sync.Mutex
	channels map[string]*sgxcrypto.Channel
}

// NewMCTLSEndpoint creates endpoint state.
func NewMCTLSEndpoint(name string) *MCTLSEndpoint {
	return &MCTLSEndpoint{Name: name, channels: make(map[string]*sgxcrypto.Channel)}
}

// Provision hands the session key block to the box: on first contact an
// ephemeral-static DH establishes a cached channel; afterwards only a
// channel seal/open per session. No attestation anywhere.
func (e *MCTLSEndpoint) Provision(m *core.Meter, box *MCTLSBox, keys tlslite.Keys) error {
	e.mu.Lock()
	ch := e.channels[box.Name]
	e.mu.Unlock()
	if ch == nil {
		eph, err := sgxcrypto.GenerateKey(m, sgxcrypto.StandardGroup(), nil)
		if err != nil {
			return err
		}
		secret, err := eph.Shared(m, box.PublicKey())
		if err != nil {
			return err
		}
		ch, err = sgxcrypto.NewChannel(m, secret)
		if err != nil {
			return err
		}
		e.mu.Lock()
		e.channels[box.Name] = ch
		e.mu.Unlock()
		// The box derives the same channel from its static key.
		boxSecret, err := box.static.Shared(m, eph.Public)
		if err != nil {
			return err
		}
		boxCh, err := sgxcrypto.NewChannel(m, boxSecret)
		if err != nil {
			return err
		}
		box.mu.Lock()
		box.channels[e.Name] = boxCh
		box.mu.Unlock()
	}
	sealed, err := ch.Seal(m, keys.Marshal())
	if err != nil {
		return err
	}
	return box.acceptKeys(m, e.Name, sealed)
}

func (b *MCTLSBox) acceptKeys(m *core.Meter, from string, sealed []byte) error {
	b.mu.Lock()
	ch := b.channels[from]
	b.mu.Unlock()
	if ch == nil {
		return fmt.Errorf("middlebox: mcTLS box %s has no channel with %s", b.Name, from)
	}
	// Validate-then-charge: the only valid payload is a Marshal'd key
	// block, so a wrong-sized ciphertext is rejected before the metered
	// MAC/decrypt work — an authentic-looking blob of the wrong length
	// must cost the box nothing.
	if len(sealed) != tlslite.KeysLen+sgxcrypto.Overhead {
		return fmt.Errorf("middlebox: mcTLS sealed key block is %d bytes, want %d",
			len(sealed), tlslite.KeysLen+sgxcrypto.Overhead)
	}
	plain, err := ch.Open(m, sealed)
	if err != nil {
		return err
	}
	keys, ok := tlslite.UnmarshalKeys(plain)
	if !ok {
		return fmt.Errorf("middlebox: malformed mcTLS key block")
	}
	b.mu.Lock()
	b.keyring = append(b.keyring, keys)
	b.mu.Unlock()
	return nil
}

// HasKeys reports whether the box holds any session keys — what a
// tampered box exfiltrates in the attack demonstration.
func (b *MCTLSBox) HasKeys() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.keyring) > 0
}

// Inspect scans one record with the provisioned keys (same passive path
// as the SGX middlebox, minus the enclave).
func (b *MCTLSBox) Inspect(m *core.Meter, flow uint32, frame []byte) {
	b.mu.Lock()
	ring := append([]tlslite.Keys(nil), b.keyring...)
	b.mu.Unlock()
	for _, keys := range ring {
		codec := tlslite.NewCodec(keys)
		dir, _, plain, err := codec.OpenAny(m, frame)
		if err != nil {
			continue
		}
		b.mu.Lock()
		for _, hit := range b.dpi.Scan(plain) {
			b.alerts = append(b.alerts, Alert{Flow: flow, Direction: dir, Match: hit})
		}
		b.mu.Unlock()
		return
	}
}

// Alerts returns the box's DPI hits.
func (b *MCTLSBox) Alerts() []Alert {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Alert(nil), b.alerts...)
}
