package nfchain

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/ratls"
	"sgxnet/internal/xcall"
)

// ECALL entry points every stage enclave serves.
const (
	// ProcService processes one packet: strict unmarshal → stage body →
	// rule engine → verdict (and egress emission on terminate).
	ProcService = "chain.proc"
	// AdmitService admits the chain head's RA-TLS certificate through
	// the chain's shared verifier and opens the stage for traffic.
	AdmitService = "chain.admit"
)

// maxHops bounds one Process call's stage invocations. Compile proves
// the routing graph acyclic (every edge goes strictly forward), so each
// routed item finishes in ≤ len(stages) hops and the bound is pure
// belt-and-braces against a future engine bug, not load-bearing policy.
const maxHops = 1 << 16

// Stats is a chain's lifetime packet accounting, updated by the driver
// on the caller's goroutine (deterministic for a serial packet feed).
type Stats struct {
	Processed     uint64 // stage invocations (hops)
	Delivered     uint64 // packets emitted on egress (terminate)
	Dropped       uint64
	Forwarded     uint64 // forward actions, explicit or fallthrough
	Mirrored      uint64
	RulesExamined uint64 // total rules the engine walked (CostRuleEval each)
	RuleMatches   uint64
	Alerts        uint64 // DPI malware tags
}

// Config wires a chain together.
type Config struct {
	// Stages, in chain order. Names must be unique (Compile enforces
	// this through Rules).
	Stages []Stage
	// Rules must be compiled against exactly Stages' names in order.
	Rules *RuleSet
	// Batch selects the inter-hop transport: ≤1 means one synchronous
	// ECALL per hop (and synchronous per-packet egress OCALLs); ≥2
	// routes hops through per-stage xcall rings with this drain target
	// and batches egress through an OCALL ring + IOShim window of the
	// same size.
	Batch int
	// SpinBudget is passed to the rings (0 = xcall default, 4×Batch).
	SpinBudget int
	// Verifier, when non-nil, gates every hop: ProcService refuses
	// traffic until Admit has presented a certificate this verifier
	// accepts. One verifier shared by all N hops is the point — the
	// chain pays 1 cold verification and N−1 warm cache hits.
	Verifier *ratls.Verifier
	// Signer signs the stage enclaves (nil = fresh signer).
	Signer *core.Signer
	// Egress dials one sink connection per stage for terminate
	// emissions. Nil disables egress: terminated packets are counted
	// but not emitted (unit-test convenience).
	Egress func() (*netsim.Conn, error)
	// Probe receives chain.* observations (nil = the platform's probe).
	Probe core.Probe
	// Series, when non-nil, receives per-stage packet counters and
	// queue-depth gauges, plus the rings' occupancy series, timestamped
	// by Clock.
	Series core.SampleProbe
	Clock  func() uint64
}

// hop is one enclave-hosted stage plus its transport plumbing.
type hop struct {
	stage    Stage
	enc      *core.Enclave
	ring     *xcall.CallRing  // nil in sync mode
	oring    *xcall.OCallRing // nil in sync mode
	shim     *netsim.IOShim   // nil without egress
	egressID uint32
	admitted atomic.Bool
}

// Chain is an enclave-hosted NF pipeline: one enclave per stage on a
// shared platform, routed by the compiled rule set. The driver (Process)
// runs host-side — the untrusted dispatcher of the paper's split model —
// while classification, filtering, inspection, rewriting, re-encryption,
// and every rule evaluation happen inside the stage enclaves.
type Chain struct {
	cfg   Config
	plat  *core.Platform
	probe core.Probe
	hops  []*hop
	stats Stats
}

// New launches one enclave per stage on host's platform and wires the
// inter-hop and egress transports according to cfg.Batch.
func New(host *netsim.SimHost, cfg Config) (*Chain, error) {
	if cfg.Rules == nil {
		return nil, fmt.Errorf("nfchain: Config.Rules is required")
	}
	if len(cfg.Stages) != len(cfg.Rules.Stages()) {
		return nil, fmt.Errorf("nfchain: %d stages but rules compiled for %d", len(cfg.Stages), len(cfg.Rules.Stages()))
	}
	for i, s := range cfg.Stages {
		if s.Name() != cfg.Rules.Stages()[i] {
			return nil, fmt.Errorf("nfchain: stage %d is %q but rules compiled for %q", i, s.Name(), cfg.Rules.Stages()[i])
		}
	}
	signer := cfg.Signer
	if signer == nil {
		var err error
		if signer, err = core.NewSigner(); err != nil {
			return nil, err
		}
	}
	plat := host.Platform()
	c := &Chain{cfg: cfg, plat: plat, probe: cfg.Probe}
	if c.probe == nil {
		c.probe = plat.Probe()
	}
	batched := cfg.Batch >= 2
	ringCfg := xcall.Config{Batch: cfg.Batch, SpinBudget: cfg.SpinBudget}
	if cfg.Series != nil {
		ringCfg.Series = &xcall.SeriesConfig{Probe: cfg.Series, Clock: cfg.Clock}
	}
	for i, stage := range cfg.Stages {
		h := &hop{stage: stage}
		if cfg.Verifier == nil {
			h.admitted.Store(true)
		}
		prog := c.stageProgram(i, h)
		ratls.AddSubjectHandlers(prog)
		enc, err := plat.Launch(prog, signer)
		if err != nil {
			c.Destroy()
			return nil, fmt.Errorf("nfchain: launch stage %q: %w", stage.Name(), err)
		}
		h.enc = enc
		mh := &netsim.MultiHost{}
		if cfg.Egress != nil {
			conn, err := cfg.Egress()
			if err != nil {
				enc.Destroy()
				c.Destroy()
				return nil, fmt.Errorf("nfchain: egress dial for stage %q: %w", stage.Name(), err)
			}
			h.shim = netsim.NewIOShim(host, enc.Meter())
			h.egressID = h.shim.Adopt(conn)
			if batched {
				h.shim.SetBatched(cfg.Batch)
			}
			mh.Mount("net.", h.shim)
		}
		if batched {
			h.oring = xcall.NewOCallRing(enc, mh, ringCfg)
			enc.BindHost(h.oring)
			enc.SetSwitchlessOCalls(true)
			h.ring = xcall.NewCallRing(enc, ringCfg)
		} else {
			enc.BindHost(mh)
		}
		c.hops = append(c.hops, h)
	}
	return c, nil
}

// stageProgram builds one stage's enclave program. The stage index,
// rule set, probe, and admission gate are closed over; the program
// Config carries the stage name so each hop has a distinct measurement.
func (c *Chain) stageProgram(idx int, h *hop) *core.Program {
	return &core.Program{
		Name:    "nfchain-stage",
		Version: "1.0",
		Config:  []byte(fmt.Sprintf("%d:%s", idx, c.cfg.Stages[idx].Name())),
		Handlers: map[string]core.Handler{
			AdmitService: func(env *core.Env, arg []byte) ([]byte, error) {
				if c.cfg.Verifier == nil {
					h.admitted.Store(true)
					return nil, nil
				}
				if len(arg) < 2 {
					return nil, fmt.Errorf("nfchain: short admit arg")
				}
				n := int(binary.LittleEndian.Uint16(arg[:2]))
				if len(arg) < 2+n {
					return nil, fmt.Errorf("nfchain: truncated admit peer")
				}
				peer := string(arg[2 : 2+n])
				id, err := c.cfg.Verifier.Admit(env.Meter(), arg[2+n:], peer)
				if err != nil {
					return nil, err
				}
				h.admitted.Store(true)
				if c.probe != nil {
					c.probe.Observe(KindAdmit, 1)
				}
				return id.MREnclave[:], nil
			},
			ProcService: func(env *core.Env, arg []byte) ([]byte, error) {
				// Every check before the stage body runs charges
				// nothing: an unadmitted hop or malformed packet costs
				// the caller only the crossing itself.
				if !h.admitted.Load() {
					return nil, fmt.Errorf("nfchain: stage %q not admitted", h.stage.Name())
				}
				pkt, err := UnmarshalPacket(arg)
				if err != nil {
					return nil, err
				}
				v, alert, err := processOne(env.Meter(), h.stage, c.cfg.Rules, idx, &pkt, c.probe)
				if err != nil {
					return nil, err
				}
				if v.Action == ActTerminate && h.shim != nil {
					wire := AppendPacket(nil, &pkt)
					if _, err := env.OCall("net.send", netsim.EncodeSend(h.egressID, wire)); err != nil {
						return nil, fmt.Errorf("nfchain: egress send: %w", err)
					}
				}
				return encodeVerdict(v, alert, &pkt), nil
			},
		},
	}
}

// processOne is the shared per-hop body: stage logic, alert detection,
// rule evaluation, probe observations. Both hosting modes (enclave
// handler, native driver) run exactly this, so their packet outcomes and
// probe streams are identical and only the metering differs.
func processOne(m *core.Meter, stage Stage, rules *RuleSet, idx int, p *Packet, probe core.Probe) (Verdict, bool, error) {
	prevTag := p.Tag
	if err := stage.Process(m, p); err != nil {
		return Verdict{}, false, err
	}
	alert := p.Tag == TagMalware && prevTag != TagMalware
	v := rules.Evaluate(m, idx, p)
	if probe != nil {
		probe.Observe(KindProcess, 1)
		probe.Observe(KindRuleExamined, uint64(v.Examined))
		if v.Rule >= 0 {
			probe.Observe(KindRuleMatch, 1)
		}
		if alert {
			probe.Observe(KindAlert, 1)
		}
		switch v.Action {
		case ActForward:
			probe.Observe(KindForward, 1)
		case ActMirror:
			probe.Observe(KindMirror, 1)
		case ActDrop:
			probe.Observe(KindDrop, 1)
		case ActTerminate:
			probe.Observe(KindTerminate, 1)
		}
	}
	return v, alert, nil
}

// Verdict wire format: action(1) ‖ target(1) ‖ cont(1) ‖ alert(1) ‖
// matched(1) ‖ examined(4 LE) ‖ [packet wire, forward/mirror only].
// Stage indices ride one byte with 0xFF = none; Compile bounds chains
// far below 255 stages in practice (and encode checks).
const verdictHeaderLen = 9

func idxByte(i int) byte {
	if i < 0 {
		return 0xFF
	}
	return byte(i)
}

func encodeVerdict(v Verdict, alert bool, p *Packet) []byte {
	out := make([]byte, verdictHeaderLen, verdictHeaderLen+packetHeaderLen+len(p.Payload))
	out[0] = byte(v.Action)
	out[1] = idxByte(v.Target)
	out[2] = idxByte(v.Cont)
	if alert {
		out[3] = 1
	}
	if v.Rule >= 0 {
		out[4] = 1
	}
	binary.LittleEndian.PutUint32(out[5:], uint32(v.Examined))
	if v.Action == ActForward || v.Action == ActMirror {
		out = AppendPacket(out, p)
	}
	return out
}

func decodeVerdict(raw []byte) (Verdict, bool, Packet, error) {
	if len(raw) < verdictHeaderLen {
		return Verdict{}, false, Packet{}, fmt.Errorf("nfchain: short verdict (%d bytes)", len(raw))
	}
	v := Verdict{
		Action:   Action(raw[0]),
		Target:   -1,
		Cont:     -1,
		Examined: int(binary.LittleEndian.Uint32(raw[5:])),
		Rule:     -1,
	}
	if raw[1] != 0xFF {
		v.Target = int(raw[1])
	}
	if raw[2] != 0xFF {
		v.Cont = int(raw[2])
	}
	if raw[4] == 1 {
		v.Rule = 0 // matched; the index itself stays in-enclave
	}
	alert := raw[3] == 1
	var p Packet
	if v.Action == ActForward || v.Action == ActMirror {
		var err error
		if p, err = UnmarshalPacket(raw[verdictHeaderLen:]); err != nil {
			return Verdict{}, false, Packet{}, err
		}
	}
	return v, alert, p, nil
}

// routed is one work item in the driver queue.
type routed struct {
	stage int
	pkt   Packet
}

// drive is the routing loop both hosting modes share: a FIFO work queue
// of (stage, packet) items, each hop's verdict either retiring the item
// or enqueueing its successors. FIFO order makes the hop sequence — and
// therefore every meter, probe, and series stream — deterministic for a
// given packet.
func drive(run func(stage int, p Packet) (Verdict, Packet, bool, error),
	stats *Stats, series core.SampleProbe, clock func() uint64,
	stageName func(int) string, start Packet) error {
	queue := []routed{{0, start}}
	hops := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if hops++; hops > maxHops {
			return fmt.Errorf("nfchain: hop bound %d exceeded (routing loop?)", maxHops)
		}
		v, out, alert, err := run(cur.stage, cur.pkt)
		if err != nil {
			return err
		}
		stats.Processed++
		stats.RulesExamined += uint64(v.Examined)
		if v.Rule >= 0 {
			stats.RuleMatches++
		}
		if alert {
			stats.Alerts++
		}
		switch v.Action {
		case ActDrop:
			stats.Dropped++
		case ActTerminate:
			stats.Delivered++
		case ActForward:
			stats.Forwarded++
			queue = append(queue, routed{v.Target, out})
		case ActMirror:
			stats.Mirrored++
			mirror := out
			mirror.Payload = append([]byte(nil), out.Payload...)
			queue = append(queue, routed{v.Target, mirror}, routed{v.Cont, out})
		default:
			return fmt.Errorf("nfchain: unknown action %d", v.Action)
		}
		if series != nil {
			var now uint64
			if clock != nil {
				now = clock()
			}
			series.CountAt("chain."+stageName(cur.stage)+".packets", now, 1)
			series.GaugeAt("chain."+stageName(cur.stage)+".qdepth", now, uint64(len(queue)))
		}
	}
	return nil
}

// Admit presents the chain head's certificate to every hop through the
// shared verifier and returns the total admission tally across the
// chain's meters (1 cold verification + N−1 warm hits when the verifier
// cache is empty). Must be called before Process on a gated chain.
func (c *Chain) Admit(peer string, cert []byte) (core.Tally, error) {
	var total core.Tally
	for _, h := range c.hops {
		pre := h.enc.Meter().Snapshot()
		if _, err := h.enc.Call(AdmitService, ratls.EncodeAdmit(peer, cert)); err != nil {
			return total, fmt.Errorf("nfchain: admit stage %q: %w", h.stage.Name(), err)
		}
		total = total.Add(h.enc.Meter().Snapshot().Sub(pre))
	}
	return total, nil
}

// Process routes one packet through the chain, starting at stage 0.
func (c *Chain) Process(p *Packet) error {
	return drive(func(stage int, pkt Packet) (Verdict, Packet, bool, error) {
		h := c.hops[stage]
		wire := AppendPacket(nil, &pkt)
		var out []byte
		var err error
		if h.ring != nil {
			out, err = h.ring.Call(ProcService, wire)
		} else {
			out, err = h.enc.Call(ProcService, wire)
		}
		if err != nil {
			return Verdict{}, Packet{}, false, err
		}
		v, alert, next, err := decodeVerdict(out)
		return v, next, alert, err
	}, &c.stats, c.cfg.Series, c.cfg.Clock, c.stageName, *p)
}

func (c *Chain) stageName(i int) string { return c.cfg.Stages[i].Name() }

// Flush drains every hop's pending ring descriptors and buffered egress
// batches. Call at phase boundaries before reading meters.
func (c *Chain) Flush() error {
	for _, h := range c.hops {
		if h.ring != nil {
			if err := h.ring.Flush(); err != nil {
				return err
			}
		}
		if h.oring != nil {
			if err := h.oring.Flush(); err != nil {
				return err
			}
		}
		if h.shim != nil {
			h.shim.FlushBatch()
		}
	}
	return nil
}

// Stats returns the driver's packet accounting.
func (c *Chain) Stats() Stats { return c.stats }

// XcallStats sums ECALL- and OCALL-ring statistics across all hops.
func (c *Chain) XcallStats() xcall.Stats {
	var total xcall.Stats
	for _, h := range c.hops {
		if h.ring != nil {
			total = total.Add(h.ring.Stats())
		}
		if h.oring != nil {
			total = total.Add(h.oring.Stats())
		}
	}
	return total
}

// Tally sums the hop meters (the chain's total modelled work).
func (c *Chain) Tally() core.Tally {
	var total core.Tally
	for _, h := range c.hops {
		total = total.Add(h.enc.Meter().Snapshot())
	}
	return total
}

// ResetMeters zeroes every hop meter (e.g. after the admission phase,
// so the measured phase starts clean).
func (c *Chain) ResetMeters() {
	for _, h := range c.hops {
		h.enc.Meter().Reset()
	}
}

// Hops returns the number of stages.
func (c *Chain) Hops() int { return len(c.hops) }

// Meters returns the per-hop enclave meters in chain order (for trace
// spans and meter-derived clocks).
func (c *Chain) Meters() []*core.Meter {
	ms := make([]*core.Meter, len(c.hops))
	for i, h := range c.hops {
		ms[i] = h.enc.Meter()
	}
	return ms
}

// Destroy tears down every stage enclave.
func (c *Chain) Destroy() {
	for _, h := range c.hops {
		if h.enc != nil {
			h.enc.Destroy()
		}
	}
	c.hops = nil
}

// Native runs the identical stages and rule set without enclaves: every
// stage body and rule evaluation charges one flat meter, there are no
// crossings, and terminate pays only the plain (non-SGX) I/O cost. This
// is the sweep's baseline — the delta to Chain is purely the price of
// enclave hosting.
type Native struct {
	stages []Stage
	rules  *RuleSet
	meter  *core.Meter
	probe  core.Probe
	series core.SampleProbe
	clock  func() uint64
	stats  Stats
}

// NewNative builds the native-hosted chain. probe, series, and clock
// may be nil.
func NewNative(stages []Stage, rules *RuleSet, m *core.Meter, probe core.Probe, series core.SampleProbe, clock func() uint64) (*Native, error) {
	if rules == nil {
		return nil, fmt.Errorf("nfchain: rules are required")
	}
	if len(stages) != len(rules.Stages()) {
		return nil, fmt.Errorf("nfchain: %d stages but rules compiled for %d", len(stages), len(rules.Stages()))
	}
	for i, s := range stages {
		if s.Name() != rules.Stages()[i] {
			return nil, fmt.Errorf("nfchain: stage %d is %q but rules compiled for %q", i, s.Name(), rules.Stages()[i])
		}
	}
	if m == nil {
		m = core.NewMeter()
	}
	return &Native{stages: stages, rules: rules, meter: m, probe: probe, series: series, clock: clock}, nil
}

// Process routes one packet through the native chain.
func (n *Native) Process(p *Packet) error {
	return drive(func(stage int, pkt Packet) (Verdict, Packet, bool, error) {
		v, alert, err := processOne(n.meter, n.stages[stage], n.rules, stage, &pkt, n.probe)
		if err != nil {
			return Verdict{}, Packet{}, false, err
		}
		if v.Action == ActTerminate {
			// The native egress: one plain send syscall, no SGX boundary.
			n.meter.ChargeNormal(core.CostIOCallFixed + core.CostIOPerPacket)
		}
		return v, pkt, alert, nil
	}, &n.stats, n.series, n.clock, func(i int) string { return n.stages[i].Name() }, *p)
}

// Stats returns the driver's packet accounting.
func (n *Native) Stats() Stats { return n.stats }

// Tally returns the native meter total.
func (n *Native) Tally() core.Tally { return n.meter.Snapshot() }
