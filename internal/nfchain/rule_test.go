package nfchain

import (
	"fmt"
	"strings"
	"testing"

	"sgxnet/internal/core"
)

var testStages = []string{"classify", "filter", "dpi", "reencrypt"}

func TestParseGrammar(t *testing.T) {
	text := `
# deny-list
at classify match dst=23 -> drop
at classify match proto=17,flow=7 -> forward:dpi   # skip the filter
at classify match tag=dns -> mirror:dpi
at filter match tag=blocked -> drop
at dpi match * -> terminate
`
	rules, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(rules) != 5 {
		t.Fatalf("got %d rules, want 5", len(rules))
	}
	if rules[0].Action != ActDrop || !rules[0].Match.HasDst || rules[0].Match.Dst != 23 {
		t.Fatalf("rule 0 parsed wrong: %+v", rules[0])
	}
	if rules[1].Action != ActForward || rules[1].Target != "dpi" || !rules[1].Match.HasProto || !rules[1].Match.HasFlow {
		t.Fatalf("rule 1 parsed wrong: %+v", rules[1])
	}
	if rules[2].Action != ActMirror || rules[2].Target != "dpi" || rules[2].Match.Tag != TagDNS {
		t.Fatalf("rule 2 parsed wrong: %+v", rules[2])
	}
	if !rules[4].Match.Wild || rules[4].Action != ActTerminate {
		t.Fatalf("rule 4 parsed wrong: %+v", rules[4])
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"unknown-action", "at classify match * -> reject"},
		{"unknown-key", "at classify match port=80 -> drop"},
		{"unknown-tag", "at classify match tag=voip -> drop"},
		{"duplicate-key", "at classify match dst=80,dst=443 -> drop"},
		{"overflow-flow", "at classify match flow=4294967296 -> drop"},
		{"overflow-port", "at classify match dst=65536 -> drop"},
		{"signed-number", "at classify match dst=-1 -> drop"},
		{"hex-number", "at classify match dst=0x50 -> drop"},
		{"missing-target", "at classify match * -> forward:"},
		{"malformed-line", "classify match * -> drop"},
		{"bare-term", "at classify match dst -> drop"},
		{"duplicate-rule", "at classify match dst=80,proto=6 -> drop\nat classify match proto=6,dst=80 -> terminate"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.text); err == nil {
			t.Errorf("%s: Parse accepted %q", tc.name, tc.text)
		}
	}
}

func TestParseTableBound(t *testing.T) {
	var sb strings.Builder
	for i := 0; i <= MaxRules; i++ {
		fmt.Fprintf(&sb, "at classify match flow=%d -> drop\n", i)
	}
	if _, err := Parse(sb.String()); err == nil {
		t.Fatalf("Parse accepted %d rules (max %d)", MaxRules+1, MaxRules)
	}
	// Exactly MaxRules is fine.
	lines := strings.SplitAfter(sb.String(), "\n")
	if _, err := Parse(strings.Join(lines[:MaxRules], "")); err != nil {
		t.Fatalf("Parse rejected exactly %d rules: %v", MaxRules, err)
	}
}

func TestCompileRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"unknown-stage", "at nat match * -> drop"},
		{"unknown-target", "at classify match * -> forward:nat"},
		{"self-cycle", "at dpi match * -> forward:dpi"},
		{"backward-cycle", "at dpi match tag=tls -> mirror:classify"},
	}
	for _, tc := range cases {
		rules, err := Parse(tc.text)
		if err != nil {
			t.Fatalf("%s: Parse failed: %v", tc.name, err)
		}
		if _, err := Compile(rules, testStages); err == nil {
			t.Errorf("%s: Compile accepted %q", tc.name, tc.text)
		}
	}
	if _, err := Compile(nil, []string{"a", "a"}); err == nil {
		t.Error("Compile accepted duplicate stage names")
	}
	if _, err := Compile(nil, nil); err == nil {
		t.Error("Compile accepted an empty chain")
	}
}

func TestEvaluateFirstMatchAndCharging(t *testing.T) {
	rs, err := CompileText(`
at classify match flow=1 -> drop
at classify match flow=2 -> forward:dpi
at dpi match tag=malware -> drop
at classify match * -> terminate
`, testStages)
	if err != nil {
		t.Fatalf("CompileText: %v", err)
	}
	m := core.NewMeter()

	// flow=1 matches rule 0: one rule examined, one CostRuleEval.
	v := rs.Evaluate(m, 0, &Packet{Flow: 1})
	if v.Action != ActDrop || v.Examined != 1 {
		t.Fatalf("flow=1: got %v examined=%d", v.Action, v.Examined)
	}
	if got := m.SnapshotAndReset(); got.Normal != core.CostRuleEval || got.SGXU != 0 {
		t.Fatalf("flow=1 charge = %+v, want Normal=%d", got, core.CostRuleEval)
	}

	// flow=2 skips rule 0, matches rule 1 (explicit forward skips filter).
	v = rs.Evaluate(m, 0, &Packet{Flow: 2})
	if v.Action != ActForward || v.Target != 2 || v.Examined != 2 {
		t.Fatalf("flow=2: %+v", v)
	}
	if got := m.SnapshotAndReset(); got.Normal != 2*core.CostRuleEval {
		t.Fatalf("flow=2 charge = %+v", got)
	}

	// flow=3 falls to the wildcard terminate (examines rules 0,1,2,3 —
	// the dpi-scoped rule still costs an examination at classify).
	v = rs.Evaluate(m, 0, &Packet{Flow: 3})
	if v.Action != ActTerminate || v.Examined != 4 {
		t.Fatalf("flow=3: %+v", v)
	}
	if got := m.SnapshotAndReset(); got.Normal != 4*core.CostRuleEval {
		t.Fatalf("flow=3 charge = %+v", got)
	}

	// At the filter stage nothing is scoped: full walk, implicit
	// fallthrough to the next stage.
	v = rs.Evaluate(m, 1, &Packet{Flow: 3})
	if v.Action != ActForward || v.Target != 2 || v.Examined != 4 {
		t.Fatalf("filter fallthrough: %+v", v)
	}

	// At the last stage the fallthrough terminates.
	v = rs.Evaluate(m, 3, &Packet{Flow: 3})
	if v.Action != ActTerminate {
		t.Fatalf("last-stage fallthrough: %+v", v)
	}
}

func TestEvaluateMirrorContinuation(t *testing.T) {
	rs, err := CompileText("at classify match tag=dns -> mirror:dpi", testStages)
	if err != nil {
		t.Fatalf("CompileText: %v", err)
	}
	v := rs.Evaluate(core.NewMeter(), 0, &Packet{Tag: TagDNS})
	if v.Action != ActMirror || v.Target != 2 || v.Cont != 1 {
		t.Fatalf("mirror verdict: %+v", v)
	}
}

func TestPacketCodecStrict(t *testing.T) {
	p := Packet{Flow: 7, SrcPort: 40000, DstPort: 443, Proto: 6, Tag: TagTLS, Payload: []byte("hello")}
	got, err := UnmarshalPacket(p.Marshal())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if got.Flow != 7 || got.DstPort != 443 || string(got.Payload) != "hello" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	wire := p.Marshal()
	if _, err := UnmarshalPacket(wire[:len(wire)-1]); err == nil {
		t.Error("truncated packet accepted")
	}
	if _, err := UnmarshalPacket(append(wire, 0)); err == nil {
		t.Error("oversized packet accepted")
	}
	bad := p
	bad.Tag = Tag(200)
	if _, err := UnmarshalPacket(bad.Marshal()); err == nil {
		t.Error("unknown tag accepted")
	}
}
