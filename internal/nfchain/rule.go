package nfchain

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sgxnet/internal/core"
)

// The routing rule grammar. One rule per line:
//
//	at <stage> match <k=v{,k=v} | *> -> <action>
//
// Match keys: flow=<u32> src=<u16> dst=<u16> proto=<u8> tag=<name>.
// Actions: drop | terminate | forward:<stage> | mirror:<stage>.
// '#' starts a comment; blank lines are ignored.
//
// The grammar is deliberately strict — this text crosses into the
// enclave as operator-supplied configuration, so the parser is a trust
// boundary and a fuzz target (FuzzChainRules): unknown keys, unknown
// actions, duplicate keys, duplicate rules, out-of-range integers, and
// oversized tables are all hard errors, never silent no-ops.

// Action is what a matched rule does with the packet.
type Action uint8

const (
	// ActForward hands the packet to the named stage (skipping any in
	// between, as long as the target is strictly later in the chain).
	ActForward Action = iota
	// ActMirror copies the packet to the named stage while the original
	// continues to the next stage in order.
	ActMirror
	// ActDrop discards the packet.
	ActDrop
	// ActTerminate ends processing and emits the packet on the chain's
	// egress path.
	ActTerminate
)

func (a Action) String() string {
	switch a {
	case ActForward:
		return "forward"
	case ActMirror:
		return "mirror"
	case ActDrop:
		return "drop"
	case ActTerminate:
		return "terminate"
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// MaxRules bounds the table size; Parse rejects larger inputs before
// building anything (a fuzzer favorite: a million-line table must not
// allocate a million rules).
const MaxRules = 4096

// Match is one rule's predicate over the packet header. Absent fields
// are wildcards; Wild marks the explicit `*` form that matches anything.
type Match struct {
	Wild     bool
	HasFlow  bool
	Flow     uint32
	HasSrc   bool
	Src      uint16
	HasDst   bool
	Dst      uint16
	HasProto bool
	Proto    uint8
	HasTag   bool
	Tag      Tag
}

// canonical returns a normalized string form used for duplicate
// detection: two rules with the same scope and the same predicate are a
// configuration error regardless of key order in the source text.
func (m Match) canonical() string {
	if m.Wild {
		return "*"
	}
	parts := make([]string, 0, 5)
	if m.HasFlow {
		parts = append(parts, fmt.Sprintf("flow=%d", m.Flow))
	}
	if m.HasSrc {
		parts = append(parts, fmt.Sprintf("src=%d", m.Src))
	}
	if m.HasDst {
		parts = append(parts, fmt.Sprintf("dst=%d", m.Dst))
	}
	if m.HasProto {
		parts = append(parts, fmt.Sprintf("proto=%d", m.Proto))
	}
	if m.HasTag {
		parts = append(parts, fmt.Sprintf("tag=%s", m.Tag))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// matches reports whether the packet satisfies every present field.
func (m Match) matches(p *Packet) bool {
	if m.Wild {
		return true
	}
	if m.HasFlow && m.Flow != p.Flow {
		return false
	}
	if m.HasSrc && m.Src != p.SrcPort {
		return false
	}
	if m.HasDst && m.Dst != p.DstPort {
		return false
	}
	if m.HasProto && m.Proto != p.Proto {
		return false
	}
	if m.HasTag && m.Tag != p.Tag {
		return false
	}
	return true
}

// Rule is one parsed grammar line.
type Rule struct {
	At     string // stage scope: the rule fires only at this stage
	Match  Match
	Action Action
	Target string // forward/mirror destination stage ("" otherwise)
	Line   int    // 1-based source line, for error messages
}

// parseUint is the grammar's strict integer parser: decimal only, no
// sign, no whitespace, and overflow is an error (a flow=4294967296 rule
// must be rejected, not wrapped to flow=0).
func parseUint(s string, bits int) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	if s[0] == '+' || s[0] == '-' {
		return 0, fmt.Errorf("sign not allowed in %q", s)
	}
	v, err := strconv.ParseUint(s, 10, bits)
	if err != nil {
		return 0, fmt.Errorf("bad %d-bit number %q", bits, s)
	}
	return v, nil
}

// parseMatch parses the predicate part of a rule line.
func parseMatch(spec string) (Match, error) {
	var m Match
	if spec == "*" {
		m.Wild = true
		return m, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Match{}, fmt.Errorf("match term %q is not key=value", kv)
		}
		switch k {
		case "flow":
			if m.HasFlow {
				return Match{}, fmt.Errorf("duplicate key flow")
			}
			n, err := parseUint(v, 32)
			if err != nil {
				return Match{}, err
			}
			m.HasFlow, m.Flow = true, uint32(n)
		case "src":
			if m.HasSrc {
				return Match{}, fmt.Errorf("duplicate key src")
			}
			n, err := parseUint(v, 16)
			if err != nil {
				return Match{}, err
			}
			m.HasSrc, m.Src = true, uint16(n)
		case "dst":
			if m.HasDst {
				return Match{}, fmt.Errorf("duplicate key dst")
			}
			n, err := parseUint(v, 16)
			if err != nil {
				return Match{}, err
			}
			m.HasDst, m.Dst = true, uint16(n)
		case "proto":
			if m.HasProto {
				return Match{}, fmt.Errorf("duplicate key proto")
			}
			n, err := parseUint(v, 8)
			if err != nil {
				return Match{}, err
			}
			m.HasProto, m.Proto = true, uint8(n)
		case "tag":
			if m.HasTag {
				return Match{}, fmt.Errorf("duplicate key tag")
			}
			t, ok := ParseTag(v)
			if !ok {
				return Match{}, fmt.Errorf("unknown tag %q", v)
			}
			m.HasTag, m.Tag = true, t
		default:
			return Match{}, fmt.Errorf("unknown match key %q", k)
		}
	}
	return m, nil
}

// Parse parses rule text into an ordered rule list. It enforces the
// table bound, the line grammar, and rejects duplicate (scope,
// predicate) pairs — everything that can be checked without knowing the
// chain's stage list (Compile checks the rest).
func Parse(text string) ([]Rule, error) {
	var rules []Rule
	seen := make(map[string]int) // canonical (at, match) → line
	for i, line := range strings.Split(text, "\n") {
		lineNo := i + 1
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if len(rules) >= MaxRules {
			return nil, fmt.Errorf("line %d: rule table exceeds %d rules", lineNo, MaxRules)
		}
		fields := strings.Fields(line)
		if len(fields) != 6 || fields[0] != "at" || fields[2] != "match" || fields[4] != "->" {
			return nil, fmt.Errorf("line %d: want `at <stage> match <spec> -> <action>`, got %q", lineNo, line)
		}
		stage := fields[1]
		if stage == "" {
			return nil, fmt.Errorf("line %d: empty stage name", lineNo)
		}
		m, err := parseMatch(fields[3])
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		r := Rule{At: stage, Match: m, Line: lineNo}
		act := fields[5]
		switch {
		case act == "drop":
			r.Action = ActDrop
		case act == "terminate":
			r.Action = ActTerminate
		case strings.HasPrefix(act, "forward:"):
			r.Action, r.Target = ActForward, act[len("forward:"):]
		case strings.HasPrefix(act, "mirror:"):
			r.Action, r.Target = ActMirror, act[len("mirror:"):]
		default:
			return nil, fmt.Errorf("line %d: unknown action %q", lineNo, act)
		}
		if (r.Action == ActForward || r.Action == ActMirror) && r.Target == "" {
			return nil, fmt.Errorf("line %d: %s needs a target stage", lineNo, r.Action)
		}
		key := r.At + " " + m.canonical()
		if prev, dup := seen[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate of rule on line %d (same stage and predicate)", lineNo, prev)
		}
		seen[key] = lineNo
		rules = append(rules, r)
	}
	return rules, nil
}

// RuleSet is a rule list compiled against a concrete chain layout:
// stage names resolved to indices and the routing graph proven acyclic.
type RuleSet struct {
	rules  []Rule
	atIdx  []int // per rule: index of its scope stage
	target []int // per rule: resolved target stage index, -1 if none
	stages []string
}

// Compile resolves a parsed rule list against the chain's ordered stage
// names and rejects anything that could loop or dangle: unknown scope or
// target stages, and any explicit edge that does not go strictly forward.
//
// Acyclicity: the routing graph is the explicit forward/mirror edges
// plus the implicit fallthrough edge i→i+1 at every non-final stage. With
// every fallthrough present, the graph is acyclic iff every explicit
// edge goes strictly forward — an edge back to stage t ≤ a closes the
// cycle t → t+1 → … → a → t through fallthroughs. So the forward-only
// check below is a complete cycle test, not a heuristic.
func Compile(rules []Rule, stages []string) (*RuleSet, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("nfchain: chain needs at least one stage")
	}
	idx := make(map[string]int, len(stages))
	for i, s := range stages {
		if s == "" {
			return nil, fmt.Errorf("nfchain: stage %d has an empty name", i)
		}
		if _, dup := idx[s]; dup {
			return nil, fmt.Errorf("nfchain: duplicate stage name %q", s)
		}
		idx[s] = i
	}
	rs := &RuleSet{
		rules:  rules,
		atIdx:  make([]int, len(rules)),
		target: make([]int, len(rules)),
		stages: stages,
	}
	for i, r := range rules {
		at, ok := idx[r.At]
		if !ok {
			return nil, fmt.Errorf("line %d: unknown stage %q", r.Line, r.At)
		}
		rs.atIdx[i] = at
		rs.target[i] = -1
		if r.Target != "" {
			t, ok := idx[r.Target]
			if !ok {
				return nil, fmt.Errorf("line %d: unknown target stage %q", r.Line, r.Target)
			}
			if t <= at {
				return nil, fmt.Errorf("line %d: %s %q -> %q creates a routing cycle (targets must be later in the chain)",
					r.Line, r.Action, r.At, r.Target)
			}
			rs.target[i] = t
		}
	}
	return rs, nil
}

// CompileText is Parse + Compile in one step.
func CompileText(text string, stages []string) (*RuleSet, error) {
	rules, err := Parse(text)
	if err != nil {
		return nil, err
	}
	return Compile(rules, stages)
}

// Len returns the number of rules in the table.
func (rs *RuleSet) Len() int { return len(rs.rules) }

// Stages returns the chain layout the set was compiled against.
func (rs *RuleSet) Stages() []string { return rs.stages }

// Verdict is the rule engine's decision for one packet at one stage.
type Verdict struct {
	Action Action
	// Target is the next stage index: forward destination, or the
	// mirror copy's destination. -1 when the action has none.
	Target int
	// Cont is the stage the original packet continues to after a
	// mirror (the fallthrough successor). -1 when it terminates.
	Cont int
	// Examined counts rules the engine walked (and charged for).
	Examined int
	// Rule is the index of the matched rule, -1 on fallthrough.
	Rule int
}

// Evaluate runs the rule engine for one packet at one stage. The engine
// is a single linear table walked at every hop: each examined rule —
// including rules scoped to other stages — charges CostRuleEval, and the
// first rule whose scope and predicate both match wins. No match falls
// through: forward to the next stage, or terminate at the last. This is
// the cost model the chain sweep stresses: table size R costs up to
// R×CostRuleEval per packet per hop.
func (rs *RuleSet) Evaluate(m *core.Meter, stage int, p *Packet) Verdict {
	v := Verdict{Target: -1, Cont: -1, Rule: -1}
	for i := range rs.rules {
		v.Examined++
		if rs.atIdx[i] != stage || !rs.rules[i].Match.matches(p) {
			continue
		}
		m.ChargeNormal(uint64(v.Examined) * core.CostRuleEval)
		v.Rule = i
		v.Action = rs.rules[i].Action
		switch v.Action {
		case ActForward:
			v.Target = rs.target[i]
		case ActMirror:
			v.Target = rs.target[i]
			if stage+1 < len(rs.stages) {
				v.Cont = stage + 1
			}
		}
		return v
	}
	m.ChargeNormal(uint64(v.Examined) * core.CostRuleEval)
	if stage+1 < len(rs.stages) {
		v.Action, v.Target = ActForward, stage+1
	} else {
		v.Action = ActTerminate
	}
	return v
}
