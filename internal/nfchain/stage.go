package nfchain

import (
	"fmt"

	"sgxnet/internal/core"
	"sgxnet/internal/middlebox"
	"sgxnet/internal/tlslite"
)

// Stage is one network function in a chain. Process inspects and may
// mutate the packet in place; routing is not its job — the rule engine
// decides where the packet goes next. Stages take a bare Meter rather
// than a core.Env so the identical stage code runs both enclave-hosted
// (charged on the enclave meter, inside a chain.proc ECALL) and native
// (charged on a plain meter) — the sweep's native-vs-SGX comparison is
// then purely about hosting, never about divergent stage logic.
//
// Stages must follow the validate-then-charge discipline: work that
// fails its checks (a record that doesn't authenticate, a malformed
// header) must not charge for the work it refused to do.
type Stage interface {
	Name() string
	Process(m *core.Meter, p *Packet) error
}

// --- classify ---

type classifyStage struct{ name string }

// NewClassify returns the classification stage: tags packets by
// well-known destination port (443→tls, 80→http, 53→dns, else other).
func NewClassify(name string) Stage { return &classifyStage{name} }

func (s *classifyStage) Name() string { return s.name }

func (s *classifyStage) Process(m *core.Meter, p *Packet) error {
	m.ChargeNormal(core.CostChainClassify)
	switch p.DstPort {
	case 443:
		p.Tag = TagTLS
	case 80:
		p.Tag = TagHTTP
	case 53:
		p.Tag = TagDNS
	default:
		p.Tag = TagOther
	}
	return nil
}

// --- header filter ---

type filterStage struct {
	name string
	deny map[uint16]bool
}

// NewHeaderFilter returns the header-filter stage: packets to a denied
// destination port are tagged TagBlocked. The stage only tags — a
// `match tag=blocked -> drop` rule does the dropping, keeping policy in
// the rule table where it can be audited and fuzzed.
func NewHeaderFilter(name string, denyDst ...uint16) Stage {
	deny := make(map[uint16]bool, len(denyDst))
	for _, d := range denyDst {
		deny[d] = true
	}
	return &filterStage{name, deny}
}

func (s *filterStage) Name() string { return s.name }

func (s *filterStage) Process(m *core.Meter, p *Packet) error {
	m.ChargeNormal(core.CostChainFilter)
	if s.deny[p.DstPort] {
		p.Tag = TagBlocked
	}
	return nil
}

// --- DPI ---

type dpiStage struct {
	name  string
	dpi   *middlebox.DPI
	codec *tlslite.Codec
}

// NewDPIStage returns the deep-packet-inspection stage. It holds
// provisioned session keys (the mcTLS "middlebox gets read keys" model
// from internal/middlebox): a payload that authenticates as a tlslite
// record under those keys is decrypted and its plaintext scanned;
// anything else is scanned as-is (opaque traffic still passes the
// automaton, as a real IDS would run it over ciphertext). A pattern hit
// tags the packet TagMalware for the rule table to act on.
func NewDPIStage(name string, keys tlslite.Keys, patterns []string) (Stage, error) {
	d, err := middlebox.NewDPI(patterns)
	if err != nil {
		return nil, err
	}
	return &dpiStage{name, d, tlslite.NewCodec(keys)}, nil
}

func (s *dpiStage) Name() string { return s.name }

func (s *dpiStage) Process(m *core.Meter, p *Packet) error {
	data := p.Payload
	if _, _, plain, err := s.codec.OpenAny(m, p.Payload); err == nil {
		data = plain
	}
	m.ChargeNormal(core.CostChainScanPerByte * uint64(len(data)))
	if len(s.dpi.Scan(data)) > 0 {
		p.Tag = TagMalware
	}
	return nil
}

// --- transform ---

type transformStage struct {
	name     string
	srcPort  uint16
	dstPort  uint16
}

// NewTransform returns the header-rewrite stage (NAT-style): nonzero
// srcPort/dstPort arguments overwrite the corresponding header field.
// The payload is charged for the copy through the rewrite path but its
// bytes are never touched — a downstream stage must still be able to
// authenticate the record inside.
func NewTransform(name string, srcPort, dstPort uint16) Stage {
	return &transformStage{name, srcPort, dstPort}
}

func (s *transformStage) Name() string { return s.name }

func (s *transformStage) Process(m *core.Meter, p *Packet) error {
	m.ChargeNormal(core.CostChainRewritePerByte * uint64(packetHeaderLen+len(p.Payload)))
	if s.srcPort != 0 {
		p.SrcPort = s.srcPort
	}
	if s.dstPort != 0 {
		p.DstPort = s.dstPort
	}
	return nil
}

// --- re-encrypt ---

type reencryptStage struct {
	name string
	old  *tlslite.Codec
	next *tlslite.Codec
}

// NewReencrypt returns the key-rotation stage: a payload that
// authenticates as a record under the old keys is decrypted and
// re-sealed under the next keys with the same direction and sequence
// (tlslite IVs are deterministic in (dir, seq), so rotation is
// reproducible). Payloads that don't authenticate pass through
// unchanged — rejecting them is the rule table's decision, and the
// failed Open charges nothing (validate-then-charge).
func NewReencrypt(name string, old, next tlslite.Keys) Stage {
	return &reencryptStage{name, tlslite.NewCodec(old), tlslite.NewCodec(next)}
}

func (s *reencryptStage) Name() string { return s.name }

func (s *reencryptStage) Process(m *core.Meter, p *Packet) error {
	dir, seq, plain, err := s.old.OpenAny(m, p.Payload)
	if err != nil {
		return nil
	}
	resealed, err := s.next.Seal(m, dir, seq, plain)
	if err != nil {
		return fmt.Errorf("nfchain: re-encrypt %s: %w", s.name, err)
	}
	p.Payload = resealed
	return nil
}
