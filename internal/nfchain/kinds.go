package nfchain

import "sgxnet/internal/obs"

// Chain probe kinds, fired once per event at each hop (enclave-hosted
// chains fire them from inside the chain.proc/chain.admit handlers;
// native chains from the driver).
const (
	// KindProcess is one stage invocation on one packet.
	KindProcess = "chain.process"
	// KindRuleExamined counts rules the in-enclave engine walked (each
	// charging CostRuleEval); reported with n = rules examined.
	KindRuleExamined = "chain.rule.examined"
	// KindRuleMatch is a rule firing (first match wins).
	KindRuleMatch = "chain.rule.match"
	// KindForward is a packet handed to a later stage (explicit rule or
	// fallthrough).
	KindForward = "chain.forward"
	// KindMirror is a packet copied to a later stage while the original
	// continues in order.
	KindMirror = "chain.mirror"
	// KindDrop is a packet discarded by a drop rule.
	KindDrop = "chain.drop"
	// KindTerminate is a packet leaving the chain on the egress path.
	KindTerminate = "chain.terminate"
	// KindAlert is a DPI stage tagging a packet as malware.
	KindAlert = "chain.alert"
	// KindAdmit is one hop admitting the chain head's RA-TLS
	// certificate (cold on the first hop, warm on the rest).
	KindAdmit = "chain.admit"
)

// Register the chain's probe kinds so a strict obs.Registry can vouch
// that every kind this package fires is documented (obs never imports
// nfchain, so the import is cycle-free).
func init() {
	obs.RegisterKind(KindProcess, "NF chain stage processed one packet")
	obs.RegisterKind(KindRuleExamined, "NF chain rules examined by the rule engine")
	obs.RegisterKind(KindRuleMatch, "NF chain rule matched (first match wins)")
	obs.RegisterKind(KindForward, "NF chain packet forwarded to a later stage")
	obs.RegisterKind(KindMirror, "NF chain packet mirrored to a later stage")
	obs.RegisterKind(KindDrop, "NF chain packet dropped by rule")
	obs.RegisterKind(KindTerminate, "NF chain packet emitted on chain egress")
	obs.RegisterKind(KindAlert, "NF chain DPI stage raised a malware alert")
	obs.RegisterKind(KindAdmit, "NF chain hop admitted the chain-head certificate")
}
