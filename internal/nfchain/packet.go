// Package nfchain generalizes internal/middlebox from one hard-wired
// TLS-inspection box into composable enclave-hosted network-function
// pipeline stages (classify, header-filter, DPI, transform, re-encrypt)
// routed by a strict in-enclave rule engine. Inter-hop handoff rides
// xcall rings, egress rides the batched netsim.IOShim, and hop admission
// is gated by RA-TLS certificates through one shared ratls.Verifier per
// chain (1 cold verification + N−1 warm cache hits). DESIGN.md §16.
package nfchain

import (
	"encoding/binary"
	"fmt"
)

// Tag is the classification label a stage attaches to a packet. Tags are
// a closed enum so the rule grammar can reject unknown names at parse
// time instead of silently never matching.
type Tag uint8

const (
	TagOther Tag = iota
	TagHTTP
	TagTLS
	TagDNS
	TagBlocked
	TagMalware

	tagCount
)

var tagNames = [tagCount]string{"other", "http", "tls", "dns", "blocked", "malware"}

func (t Tag) String() string {
	if int(t) < len(tagNames) {
		return tagNames[t]
	}
	return fmt.Sprintf("tag(%d)", uint8(t))
}

// ParseTag resolves a grammar tag name; ok is false for unknown names.
func ParseTag(s string) (Tag, bool) {
	for i, n := range tagNames {
		if n == s {
			return Tag(i), true
		}
	}
	return 0, false
}

// Packet is the unit of work a chain processes: a flow-tuple header plus
// an opaque payload (for crypto-bearing stages, a tlslite record).
type Packet struct {
	Flow    uint32 // flow identifier (stands in for the 5-tuple hash)
	SrcPort uint16
	DstPort uint16
	Proto   uint8 // IP protocol number (6 = TCP, 17 = UDP)
	Tag     Tag
	Payload []byte
}

// packetHeaderLen is the fixed wire header:
// flow(4) ‖ src(2) ‖ dst(2) ‖ proto(1) ‖ tag(1) ‖ payloadLen(4).
const packetHeaderLen = 14

// MaxPayload bounds the payload length a stage will accept; anything
// larger is rejected before a single cycle is charged.
const MaxPayload = 64 * 1024

// AppendPacket appends p's wire encoding to dst and returns the result.
func AppendPacket(dst []byte, p *Packet) []byte {
	var hdr [packetHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], p.Flow)
	binary.LittleEndian.PutUint16(hdr[4:], p.SrcPort)
	binary.LittleEndian.PutUint16(hdr[6:], p.DstPort)
	hdr[8] = p.Proto
	hdr[9] = byte(p.Tag)
	binary.LittleEndian.PutUint32(hdr[10:], uint32(len(p.Payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, p.Payload...)
}

// Marshal returns p's wire encoding.
func (p *Packet) Marshal() []byte {
	return AppendPacket(make([]byte, 0, packetHeaderLen+len(p.Payload)), p)
}

// UnmarshalPacket strictly decodes one packet: the buffer must be exactly
// header+payloadLen bytes, the tag must be a known enum value, and the
// declared payload length must be within MaxPayload. This runs inside
// the enclave before any metered work, so a malformed packet is rejected
// for free (validate-then-charge).
func UnmarshalPacket(b []byte) (Packet, error) {
	if len(b) < packetHeaderLen {
		return Packet{}, fmt.Errorf("nfchain: packet too short (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b[10:])
	if n > MaxPayload {
		return Packet{}, fmt.Errorf("nfchain: payload length %d exceeds max %d", n, MaxPayload)
	}
	if uint32(len(b)-packetHeaderLen) != n {
		return Packet{}, fmt.Errorf("nfchain: payload length %d does not match remaining %d bytes",
			n, len(b)-packetHeaderLen)
	}
	if b[9] >= uint8(tagCount) {
		return Packet{}, fmt.Errorf("nfchain: unknown tag %d", b[9])
	}
	p := Packet{
		Flow:    binary.LittleEndian.Uint32(b[0:]),
		SrcPort: binary.LittleEndian.Uint16(b[4:]),
		DstPort: binary.LittleEndian.Uint16(b[6:]),
		Proto:   b[8],
		Tag:     Tag(b[9]),
	}
	if n > 0 {
		p.Payload = append([]byte(nil), b[packetHeaderLen:]...)
	}
	return p, nil
}
