package nfchain

import (
	"fmt"
	"testing"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/ratls"
	"sgxnet/internal/tlslite"
)

// testKeys returns deterministic session keys for generation g.
func testKeys(g byte) tlslite.Keys {
	var k tlslite.Keys
	for i := 0; i < 16; i++ {
		k.EncC2S[i] = byte(i) + g
		k.EncS2C[i] = byte(i+16) + g
	}
	for i := 0; i < 32; i++ {
		k.MacC2S[i] = byte(i+32) + g
		k.MacS2C[i] = byte(i+64) + g
	}
	return k
}

// chainRig is one SGX-hosted chain plus the native twin, over a
// four-stage layout: classify → filter → dpi → reencrypt.
type chainRig struct {
	net    *netsim.Network
	host   *netsim.SimHost
	chain  *Chain
	native *Native
	rules  *RuleSet
	stages []Stage
}

const testRules = `
at classify match tag=dns -> mirror:dpi
at filter match tag=blocked -> drop
at dpi match tag=malware -> drop
`

func newChainRig(t *testing.T, batch int, verifier *ratls.Verifier) *chainRig {
	t.Helper()
	net := netsim.New()
	seed := fmt.Sprintf("chain-test/batch=%d/gated=%v", batch, verifier != nil)
	host, err := net.AddHost("mbox", core.PlatformConfig{EPCFrames: 1024, Seed: []byte(seed)})
	if err != nil {
		t.Fatal(err)
	}
	sink, err := net.AddHost("sink", core.PlatformConfig{EPCFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	l, err := sink.Listen("sink")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					if _, err := c.Recv(); err != nil {
						return
					}
				}
			}()
		}
	}()

	newStages := func() []Stage {
		dpi, err := NewDPIStage("dpi", testKeys(0), []string{"malware"})
		if err != nil {
			t.Fatal(err)
		}
		return []Stage{
			NewClassify("classify"),
			NewHeaderFilter("filter", 23),
			dpi,
			NewReencrypt("reencrypt", testKeys(0), testKeys(1)),
		}
	}
	stages := newStages()
	names := make([]string, len(stages))
	for i, s := range stages {
		names[i] = s.Name()
	}
	rules, err := CompileText(testRules, names)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := New(host, Config{
		Stages:   stages,
		Rules:    rules,
		Batch:    batch,
		Verifier: verifier,
		Egress:   func() (*netsim.Conn, error) { return host.Dial("sink", "sink") },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(chain.Destroy)
	native, err := NewNative(newStages(), rules, core.NewMeter(), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &chainRig{net: net, host: host, chain: chain, native: native, rules: rules, stages: stages}
}

// testTraffic builds a deterministic packet mix: TLS records (some
// containing the DPI pattern), a denied port, and DNS to exercise the
// mirror rule.
func testTraffic(t *testing.T, n int) []Packet {
	t.Helper()
	codec := tlslite.NewCodec(testKeys(0))
	scratch := core.NewMeter()
	pkts := make([]Packet, 0, n)
	ports := []uint16{443, 80, 53, 23}
	for i := 0; i < n; i++ {
		plain := fmt.Sprintf("packet %03d payload padding-padding", i)
		if i%8 == 5 {
			plain = fmt.Sprintf("packet %03d carries malware payload", i)
		}
		rec, err := codec.Seal(scratch, tlslite.ClientToServer, uint64(i), []byte(plain))
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, Packet{
			Flow:    uint32(i),
			SrcPort: uint16(40000 + i),
			DstPort: ports[i%len(ports)],
			Proto:   6,
			Payload: rec,
		})
	}
	return pkts
}

// TestChainMatchesNative runs the same traffic through the enclave-
// hosted chain (sync and batched) and the native twin: packet outcomes
// must be identical, and the SGX tally must exceed native by crossing
// cost only when unbatched.
func TestChainMatchesNative(t *testing.T) {
	for _, batch := range []int{1, 16} {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			rig := newChainRig(t, batch, nil)
			pkts := testTraffic(t, 32)
			for i := range pkts {
				p := pkts[i]
				if err := rig.chain.Process(&p); err != nil {
					t.Fatalf("chain packet %d: %v", i, err)
				}
				p = pkts[i]
				if err := rig.native.Process(&p); err != nil {
					t.Fatalf("native packet %d: %v", i, err)
				}
			}
			if err := rig.chain.Flush(); err != nil {
				t.Fatal(err)
			}
			cs, ns := rig.chain.Stats(), rig.native.Stats()
			if cs != ns {
				t.Fatalf("stats diverge:\n  sgx    %+v\n  native %+v", cs, ns)
			}
			if cs.Dropped == 0 || cs.Delivered == 0 || cs.Mirrored == 0 || cs.Alerts == 0 {
				t.Fatalf("traffic mix too tame: %+v", cs)
			}
			sgx, nat := rig.chain.Tally(), rig.native.Tally()
			if sgx.SGXU == 0 {
				t.Fatal("SGX chain recorded no SGX instructions")
			}
			if nat.SGXU != 0 {
				t.Fatalf("native chain recorded SGX instructions: %+v", nat)
			}
			// In sync mode the SGX side charges the same stage/rule work
			// plus per-packet shim overhead, so its normal bill can only
			// exceed native's. (Batched mode legitimately undercuts the
			// native per-packet syscall cost — that's the point.)
			if batch == 1 && sgx.Normal < nat.Normal {
				t.Fatalf("SGX normal %d < native %d", sgx.Normal, nat.Normal)
			}
		})
	}
}

// TestChainBatchingAmortizesCrossings pins the tentpole claim at unit
// scale: the batched chain's SGX-instruction bill is strictly below the
// sync chain's on identical traffic.
func TestChainBatchingAmortizesCrossings(t *testing.T) {
	tally := func(batch int) core.Tally {
		rig := newChainRig(t, batch, nil)
		pkts := testTraffic(t, 32)
		for i := range pkts {
			p := pkts[i]
			if err := rig.chain.Process(&p); err != nil {
				t.Fatal(err)
			}
		}
		if err := rig.chain.Flush(); err != nil {
			t.Fatal(err)
		}
		return rig.chain.Tally()
	}
	sync, batched := tally(1), tally(16)
	if batched.SGXU >= sync.SGXU {
		t.Fatalf("batch=16 SGXU %d not below sync %d", batched.SGXU, sync.SGXU)
	}
}

// TestChainAdmission gates a chain behind a shared verifier: traffic
// before admission is refused with zero charge beyond the crossing, the
// N-hop admission costs 1 cold + N−1 warm verifications, and a foreign
// certificate is rejected.
func TestChainAdmission(t *testing.T) {
	arch, err := core.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New()
	host, err := net.AddHost("mbox", core.PlatformConfig{
		EPCFrames: 1024, ArchSigner: arch.MRSigner(), Seed: []byte("chain-admission"),
	})
	if err != nil {
		t.Fatal(err)
	}
	plat := host.Platform()
	mt, err := ratls.NewMinter(plat, arch)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := core.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	headProg := &core.Program{
		Name:     "nfchain-head",
		Version:  "1.0",
		Handlers: map[string]core.Handler{"noop": func(env *core.Env, arg []byte) ([]byte, error) { return arg, nil }},
	}
	ratls.AddSubjectHandlers(headProg)
	head, err := plat.Launch(headProg, signer)
	if err != nil {
		t.Fatal(err)
	}
	_, cert, err := mt.Mint(head)
	if err != nil {
		t.Fatal(err)
	}
	v := ratls.NewVerifier(attest.Policy{
		AllowedEnclaves: []core.Measurement{core.MeasureProgram(headProg)},
		RejectDebug:     true,
	}, 1)

	stages := []Stage{NewClassify("classify"), NewHeaderFilter("filter", 23)}
	rules, err := CompileText("at filter match tag=blocked -> drop", []string{"classify", "filter"})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := New(host, Config{Stages: stages, Rules: rules, Verifier: v, Signer: signer})
	if err != nil {
		t.Fatal(err)
	}
	defer chain.Destroy()

	// Unadmitted traffic: refused, and the refused ECALL charges
	// exactly the EENTER/EEXIT pair — nothing else.
	pre := chain.Tally()
	p := Packet{DstPort: 443, Proto: 6}
	if err := chain.Process(&p); err == nil {
		t.Fatal("unadmitted chain accepted traffic")
	}
	if d := chain.Tally().Sub(pre); d != (core.Tally{SGXU: 2}) {
		t.Fatalf("refused ECALL charged %+v, want {SGXU:2}", d)
	}

	// A certificate from a non-whitelisted program is rejected and no
	// hop opens.
	rogueProg := &core.Program{
		Name:     "nfchain-rogue",
		Version:  "1.0",
		Handlers: map[string]core.Handler{"noop": func(env *core.Env, arg []byte) ([]byte, error) { return arg, nil }},
	}
	ratls.AddSubjectHandlers(rogueProg)
	rogue, err := plat.Launch(rogueProg, signer)
	if err != nil {
		t.Fatal(err)
	}
	_, rogueCert, err := mt.Mint(rogue)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Admit("rogue", rogueCert); err == nil {
		t.Fatal("rogue certificate admitted")
	}

	// The genuine head certificate admits every hop: 1 cold + N−1 warm
	// on the shared verifier.
	if _, err := chain.Admit("chain-head", cert); err != nil {
		t.Fatalf("Admit: %v", err)
	}
	st := v.Stats()
	if st.Cold != 1 || st.Warm != uint64(len(stages)-1) {
		t.Fatalf("verifier saw cold=%d warm=%d, want 1/%d", st.Cold, st.Warm, len(stages)-1)
	}
	p = Packet{DstPort: 443, Proto: 6}
	if err := chain.Process(&p); err != nil {
		t.Fatalf("admitted chain refused traffic: %v", err)
	}
}

// TestChainMalformedPacketChargesNothing pins validate-then-charge at
// the chain boundary: a garbage ECALL argument costs the crossing pair
// and zero stage or rule work.
func TestChainMalformedPacketChargesNothing(t *testing.T) {
	rig := newChainRig(t, 1, nil)
	pre := rig.chain.Tally()
	if _, err := rig.chain.hops[0].enc.Call(ProcService, []byte("not a packet")); err == nil {
		t.Fatal("malformed packet accepted")
	}
	if d := rig.chain.Tally().Sub(pre); d != (core.Tally{SGXU: 2}) {
		t.Fatalf("malformed packet charged %+v, want {SGXU:2}", d)
	}
}

// TestReencryptRotatesKeys checks the key-rotation stage end to end: a
// record sealed under generation 0 leaves the stage authenticating only
// under generation 1, with direction and sequence preserved.
func TestReencryptRotatesKeys(t *testing.T) {
	m := core.NewMeter()
	codec0, codec1 := tlslite.NewCodec(testKeys(0)), tlslite.NewCodec(testKeys(1))
	rec, err := codec0.Seal(m, tlslite.ClientToServer, 7, []byte("rotate me"))
	if err != nil {
		t.Fatal(err)
	}
	stage := NewReencrypt("reencrypt", testKeys(0), testKeys(1))
	p := Packet{Payload: rec}
	if err := stage.Process(m, &p); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := codec0.OpenAny(m, p.Payload); err == nil {
		t.Fatal("rotated record still opens under the old keys")
	}
	dir, seq, plain, err := codec1.OpenAny(m, p.Payload)
	if err != nil {
		t.Fatalf("rotated record does not open under the new keys: %v", err)
	}
	if dir != tlslite.ClientToServer || seq != 7 || string(plain) != "rotate me" {
		t.Fatalf("rotation mangled the record: dir=%v seq=%d plain=%q", dir, seq, plain)
	}

	// A non-record payload passes through unchanged and the failed
	// authentication charges nothing.
	pre := m.Snapshot()
	p = Packet{Payload: []byte("opaque")}
	if err := stage.Process(m, &p); err != nil {
		t.Fatal(err)
	}
	if string(p.Payload) != "opaque" {
		t.Fatalf("pass-through mutated payload: %q", p.Payload)
	}
	if d := m.Snapshot().Sub(pre); d != (core.Tally{}) {
		t.Fatalf("failed open charged %+v", d)
	}
}
