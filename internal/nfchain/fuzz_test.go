package nfchain

import (
	"testing"

	"sgxnet/internal/core"
)

// FuzzChainRules fuzzes the rule-grammar trust boundary: operator-
// supplied rule text crosses into the enclave, so the parser must never
// panic, never exceed the table bound, and anything it does accept must
// compile into an engine that terminates and charges exactly
// CostRuleEval per examined rule. The checked-in corpus covers the
// interesting shapes: a genuine table, a table-bound overflow, a
// duplicate rule, an unknown action, and a routing cycle.
func FuzzChainRules(f *testing.F) {
	f.Add("at classify match dst=23 -> drop\nat dpi match tag=malware -> drop\n")
	f.Add("at classify match flow=4294967296 -> drop")
	f.Add("at dpi match * -> forward:classify")
	f.Add("at classify match proto=6,proto=6 -> terminate")
	f.Add("at classify match * -> mirror:\x00")
	f.Add("# comment only\n\n   \n")
	f.Fuzz(func(t *testing.T, text string) {
		rules, err := Parse(text)
		if err != nil {
			return
		}
		if len(rules) > MaxRules {
			t.Fatalf("Parse returned %d rules past the %d bound", len(rules), MaxRules)
		}
		rs, err := Compile(rules, testStages)
		if err != nil {
			return
		}
		m := core.NewMeter()
		pkt := Packet{Flow: 1, SrcPort: 40000, DstPort: 443, Proto: 6}
		for stage := range testStages {
			pre := m.Snapshot()
			v := rs.Evaluate(m, stage, &pkt)
			if v.Examined < 0 || v.Examined > len(rules) {
				t.Fatalf("stage %d examined %d of %d rules", stage, v.Examined, len(rules))
			}
			d := m.Snapshot().Sub(pre)
			if want := uint64(v.Examined) * core.CostRuleEval; d.Normal != want || d.SGXU != 0 {
				t.Fatalf("stage %d charged %+v, want Normal=%d", stage, d, want)
			}
			switch v.Action {
			case ActForward, ActMirror:
				if v.Target <= stage || v.Target >= len(testStages) {
					t.Fatalf("stage %d verdict targets %d — not strictly forward", stage, v.Target)
				}
			case ActDrop, ActTerminate:
			default:
				t.Fatalf("stage %d returned unknown action %d", stage, v.Action)
			}
		}
	})
}
