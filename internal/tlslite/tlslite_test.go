package tlslite

import (
	"bytes"
	"testing"
	"testing/quick"

	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/obs"
)

func connect(t *testing.T) (*netsim.Conn, *netsim.Conn) {
	t.Helper()
	n := netsim.New()
	a, err := n.AddHost("a", core.PlatformConfig{EPCFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddHost("b", core.PlatformConfig{EPCFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	l, err := b.Listen("tls")
	if err != nil {
		t.Fatal(err)
	}
	acc := make(chan *netsim.Conn, 1)
	go func() {
		c, _ := l.Accept()
		acc <- c
	}()
	cli, err := a.Dial("b", "tls")
	if err != nil {
		t.Fatal(err)
	}
	return cli, <-acc
}

func handshakePair(t *testing.T) (*Session, *Session) {
	t.Helper()
	cli, srv := connect(t)
	type res struct {
		s   *Session
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := ServerHandshake(core.NewMeter(), srv)
		ch <- res{s, err}
	}()
	cs, err := ClientHandshake(core.NewMeter(), cli)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	return cs, r.s
}

func TestHandshakeAndEcho(t *testing.T) {
	cs, ss := handshakePair(t)
	if err := cs.Send([]byte("GET /secret")); err != nil {
		t.Fatal(err)
	}
	got, err := ss.Recv()
	if err != nil || string(got) != "GET /secret" {
		t.Fatalf("%q %v", got, err)
	}
	if err := ss.Send([]byte("200 OK")); err != nil {
		t.Fatal(err)
	}
	got, err = cs.Recv()
	if err != nil || string(got) != "200 OK" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestSessionsDeriveSameKeys(t *testing.T) {
	cs, ss := handshakePair(t)
	if cs.ExportKeys() != ss.ExportKeys() {
		t.Fatal("endpoints derived different key blocks")
	}
}

func TestRecordOnWireIsOpaque(t *testing.T) {
	cli, srv := connect(t)
	done := make(chan *Session, 1)
	go func() {
		s, _ := ServerHandshake(core.NewMeter(), srv)
		done <- s
	}()
	cs, err := ClientHandshake(core.NewMeter(), cli)
	if err != nil {
		t.Fatal(err)
	}
	ss := <-done
	secret := []byte("visa 4111-1111-1111-1111")
	if err := cs.Send(secret); err != nil {
		t.Fatal(err)
	}
	// The server reads the raw record off the wire before opening it.
	got, err := ss.Recv()
	if err != nil || !bytes.Equal(got, secret) {
		t.Fatalf("%q %v", got, err)
	}
	// Direct wire inspection: seal a record and check the plaintext is
	// not visible.
	m := core.NewMeter()
	rec, err := cs.codec.Seal(m, ClientToServer, 99, secret)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(rec, secret) {
		t.Fatal("record leaks plaintext")
	}
}

func TestCodecSealOpenRoundTrip(t *testing.T) {
	var master [32]byte
	master[0] = 7
	codec := NewCodec(deriveKeys(master))
	m := core.NewMeter()
	for seq := uint64(0); seq < 4; seq++ {
		rec, err := codec.Seal(m, ServerToClient, seq, []byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := codec.Open(m, ServerToClient, seq, rec)
		if err != nil || string(got) != "payload" {
			t.Fatalf("seq %d: %q %v", seq, got, err)
		}
	}
}

func TestCodecRejectsReplayAndTamper(t *testing.T) {
	var master [32]byte
	codec := NewCodec(deriveKeys(master))
	m := core.NewMeter()
	rec, _ := codec.Seal(m, ClientToServer, 5, []byte("x"))
	// Wrong sequence (replay).
	if _, err := codec.Open(m, ClientToServer, 6, rec); err != ErrRecord {
		t.Fatalf("replayed record accepted: %v", err)
	}
	// Wrong direction (reflection).
	if _, err := codec.Open(m, ServerToClient, 5, rec); err != ErrRecord {
		t.Fatalf("reflected record accepted: %v", err)
	}
	// Bit flip.
	for i := 0; i < len(rec); i += 11 {
		cp := append([]byte{}, rec...)
		cp[i] ^= 1
		if _, err := codec.Open(m, ClientToServer, 5, cp); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
	// Truncation.
	if _, err := codec.Open(m, ClientToServer, 5, rec[:10]); err != ErrRecord {
		t.Fatal("truncated record accepted")
	}
}

func TestCodecDirectionalKeysDiffer(t *testing.T) {
	var master [32]byte
	k := deriveKeys(master)
	if k.EncC2S == k.EncS2C || k.MacC2S == k.MacS2C {
		t.Fatal("directional keys identical")
	}
}

func TestKeysMarshalRoundTrip(t *testing.T) {
	f := func(a, b [16]byte, c, d [32]byte) bool {
		k := Keys{EncC2S: a, EncS2C: b, MacC2S: c, MacS2C: d}
		got, ok := UnmarshalKeys(k.Marshal())
		return ok && got == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := UnmarshalKeys([]byte("short")); ok {
		t.Fatal("short key block parsed")
	}
}

func TestRecordPropertyRoundTrip(t *testing.T) {
	var master [32]byte
	master[3] = 9
	codec := NewCodec(deriveKeys(master))
	m := core.NewMeter()
	seq := uint64(0)
	f := func(payload []byte) bool {
		rec, err := codec.Seal(m, ClientToServer, seq, payload)
		if err != nil {
			return false
		}
		got, err := codec.Open(m, ClientToServer, seq, rec)
		seq++
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestMiddleboxStyleDecryption: a third party holding the exported key
// block can open records in both directions — the §3.3 capability.
func TestMiddleboxStyleDecryption(t *testing.T) {
	cs, ss := handshakePair(t)
	mbox := NewCodec(cs.ExportKeys())
	m := core.NewMeter()
	rec, err := cs.codec.Seal(m, ClientToServer, 0, []byte("inspect me"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := mbox.Open(m, ClientToServer, 0, rec)
	if err != nil || string(got) != "inspect me" {
		t.Fatalf("middlebox decrypt: %q %v", got, err)
	}
	rec, err = ss.codec.Seal(m, ServerToClient, 0, []byte("response"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := mbox.Open(m, ServerToClient, 0, rec); err != nil || string(got) != "response" {
		t.Fatalf("middlebox decrypt s2c: %q %v", got, err)
	}
	// Without the keys, nothing opens.
	other := NewCodec(deriveKeys([32]byte{1}))
	if _, err := other.Open(m, ServerToClient, 0, rec); err == nil {
		t.Fatal("wrong-key middlebox opened a record")
	}
}

// TestOnPathCorruptionDetected: an on-path attacker flipping record bits
// is caught by the record MAC.
func TestOnPathCorruptionDetected(t *testing.T) {
	cs, ss := handshakePair(t)
	cs.conn.InjectCorrupt(1)
	if err := cs.Send([]byte("payment details")); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Recv(); err == nil {
		t.Fatal("corrupted record accepted")
	}
}

// TestHandshakeCorruptionDetected: tampering with the handshake itself
// fails the Finished exchange.
func TestHandshakeCorruptionDetected(t *testing.T) {
	cli, srv := connect(t)
	done := make(chan error, 1)
	go func() {
		_, err := ServerHandshake(core.NewMeter(), srv)
		done <- err
	}()
	cli.InjectCorrupt(1) // corrupt the ClientHello
	_, cerr := ClientHandshake(core.NewMeter(), cli)
	serr := <-done
	if cerr == nil && serr == nil {
		t.Fatal("tampered handshake completed on both sides")
	}
}

// TestOpenRejectChargesZero is the validate-then-charge regression test
// for Codec.Open: every reject path — truncation, direction/sequence
// mismatch, length-field corruption, MAC failure — must charge nothing
// and fire only the reject probe; the successful path pays exactly the
// metered MAC plus cipher bill it always did.
func TestOpenRejectChargesZero(t *testing.T) {
	var keys Keys
	for i := range keys.MacC2S {
		keys.MacC2S[i] = byte(i)
	}
	c := NewCodec(keys)
	reg := obs.NewRegistry()
	c.Probe = reg

	setup := core.NewMeter()
	payload := []byte("application data")
	rec, err := c.Seal(setup, ClientToServer, 3, payload)
	if err != nil {
		t.Fatal(err)
	}
	flip := func(i int) []byte {
		bad := append([]byte(nil), rec...)
		bad[i] ^= 1
		return bad
	}
	rejects := 0
	check := func(name string, dir Direction, seq uint64, raw []byte) {
		t.Helper()
		m := core.NewMeter()
		if _, err := c.Open(m, dir, seq, raw); err != ErrRecord {
			t.Fatalf("%s: err = %v, want ErrRecord", name, err)
		}
		if m.Normal() != 0 || m.SGX() != 0 {
			t.Fatalf("%s: rejected open charged normal=%d sgx=%d, want zero", name, m.Normal(), m.SGX())
		}
		rejects++
		if got := reg.Get(KindRecordReject); got != uint64(rejects) {
			t.Fatalf("%s: reject probe count %d, want %d", name, got, rejects)
		}
	}
	check("truncated", ClientToServer, 3, rec[:recordHeader+31])
	check("wrong direction", ServerToClient, 3, rec)
	check("wrong sequence", ClientToServer, 4, rec)
	check("length field", ClientToServer, 3, flip(9))
	check("mac flip", ClientToServer, 3, flip(len(rec)-1))

	m := core.NewMeter()
	out, err := c.Open(m, ClientToServer, 3, rec)
	if err != nil || string(out) != string(payload) {
		t.Fatalf("genuine open failed: %q %v", out, err)
	}
	body := len(rec) - 32
	want := core.CostHMAC + uint64(body)*core.CostSHA256PerByte +
		core.CostAESKeySchedule + uint64(len(payload))*core.CostAESBlockPerByte
	if m.Normal() != want {
		t.Fatalf("genuine open charged %d, want %d", m.Normal(), want)
	}
}
