// Package tlslite is a from-scratch, simplified TLS: an ephemeral
// Diffie-Hellman handshake with transcript authentication and an
// AES-CTR + HMAC-SHA256 record layer with per-direction keys and
// sequence numbers.
//
// It exists for the paper's §3.3 middlebox design: a session-keyed record
// protocol whose keys the endpoints can hand to an attested in-path
// middlebox over an attestation-bootstrapped secure channel. X.509 and
// cipher negotiation are irrelevant to that code path and are omitted;
// endpoint authentication, when needed, rides on SGX attestation instead
// of certificates (the paper's point).
package tlslite

import (
	"bytes"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"sync"

	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/sgxcrypto"
)

// Direction tags a record's flow.
type Direction uint8

const (
	// ClientToServer records are sent by the client.
	ClientToServer Direction = iota
	// ServerToClient records are sent by the server.
	ServerToClient
)

// Keys is the session's exportable key material — what an endpoint hands
// to an attested middlebox ("endpoints ... give their session keys
// through the secure channel to in-path middleboxes", §3.3).
type Keys struct {
	EncC2S [16]byte // AES key, client→server
	EncS2C [16]byte
	MacC2S [32]byte // HMAC key, client→server
	MacS2C [32]byte
}

// KeysLen is the exact Marshal length of a key block. Receivers of a
// sealed key block can (and must) check the ciphertext length against
// KeysLen+sgxcrypto.Overhead before any metered decryption, so a
// wrong-sized blob is rejected for free (validate-then-charge).
const KeysLen = 96

// Marshal serializes the key block.
func (k *Keys) Marshal() []byte {
	out := make([]byte, 0, KeysLen)
	out = append(out, k.EncC2S[:]...)
	out = append(out, k.EncS2C[:]...)
	out = append(out, k.MacC2S[:]...)
	out = append(out, k.MacS2C[:]...)
	return out
}

// UnmarshalKeys parses a key block.
func UnmarshalKeys(b []byte) (Keys, bool) {
	if len(b) != KeysLen {
		return Keys{}, false
	}
	var k Keys
	copy(k.EncC2S[:], b[:16])
	copy(k.EncS2C[:], b[16:32])
	copy(k.MacC2S[:], b[32:64])
	copy(k.MacS2C[:], b[64:96])
	return k, true
}

// deriveKeys expands the master secret into the directional key block.
func deriveKeys(master [32]byte) Keys {
	expand := func(label string) []byte {
		h := hmac.New(sha256.New, master[:])
		h.Write([]byte(label))
		return h.Sum(nil)
	}
	var k Keys
	copy(k.EncC2S[:], expand("enc c2s"))
	copy(k.EncS2C[:], expand("enc s2c"))
	copy(k.MacC2S[:], expand("mac c2s"))
	copy(k.MacS2C[:], expand("mac s2c"))
	return k
}

// Record-layer probe kinds, observed once per operation.
const (
	KindRecordSeal   = "record.seal"   // a record was sealed for the wire
	KindRecordOpen   = "record.open"   // a record authenticated and decrypted
	KindRecordReject = "record.reject" // a record failed authentication/framing
)

// Codec seals and opens records given the key block — usable by the
// endpoints and by a key-provisioned middlebox alike.
type Codec struct {
	keys Keys

	// Probe, when non-nil, is notified once per record operation (the
	// Kind* constants above). Observations ride outside the meter — they
	// never charge instructions, so attaching a probe cannot perturb the
	// cost tables. Set it before the codec carries traffic.
	Probe core.Probe
}

// NewCodec builds a record codec over a key block.
func NewCodec(keys Keys) *Codec { return &Codec{keys: keys} }

func (c *Codec) observe(kind string) {
	if c.Probe != nil {
		c.Probe.Observe(kind, 1)
	}
}

// ErrRecord reports a failed record authentication or framing error.
var ErrRecord = errors.New("tlslite: record authentication failed")

// recordHeader is dir(1) ‖ seq(8) ‖ len(4).
const recordHeader = 13

// Seal builds the wire form of a record: header ‖ ciphertext ‖ tag. The
// sequence number is bound into the IV and the MAC, preventing replay
// and reordering.
func (c *Codec) Seal(m *core.Meter, dir Direction, seq uint64, payload []byte) ([]byte, error) {
	return c.sealAppend(m, nil, dir, seq, payload)
}

// sealAppend appends the sealed record to dst — the allocation-free
// path for senders that reuse an outbound buffer. payload must not
// alias dst.
func (c *Codec) sealAppend(m *core.Meter, dst []byte, dir Direction, seq uint64, payload []byte) ([]byte, error) {
	encKey, macKey := c.dirKeys(dir)
	cipher, err := sgxcrypto.NewAES(m, encKey)
	if err != nil {
		return nil, err
	}
	start := len(dst)
	var hdr [recordHeader]byte
	hdr[0] = byte(dir)
	binary.BigEndian.PutUint64(hdr[1:9], seq)
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	var iv [16]byte
	iv[0] = byte(dir)
	binary.BigEndian.PutUint64(iv[8:], seq)
	off := len(dst)
	dst = append(dst, payload...)
	cipher.XORKeyStreamCTR(m, iv, dst[off:], payload)
	tag := sgxcrypto.MAC(m, macKey, dst[start:])
	c.observe(KindRecordSeal)
	return append(dst, tag[:]...), nil
}

// Open verifies and decrypts a record, returning the payload. The caller
// supplies the expected sequence number; a mismatch (replayed or dropped
// record) fails authentication.
//
// Rejected records charge nothing (validate-then-charge): every framing
// check runs before any metered work, the MAC is computed unmetered,
// and the metered MAC cost is charged only once the tag authenticates.
// The successful-path tally is byte-for-byte what it always was.
func (c *Codec) Open(m *core.Meter, dir Direction, seq uint64, raw []byte) ([]byte, error) {
	if len(raw) < recordHeader+32 {
		c.observe(KindRecordReject)
		return nil, ErrRecord
	}
	body, tag := raw[:len(raw)-32], raw[len(raw)-32:]
	if Direction(body[0]) != dir || binary.BigEndian.Uint64(body[1:9]) != seq {
		c.observe(KindRecordReject)
		return nil, ErrRecord
	}
	n := binary.BigEndian.Uint32(body[9:13])
	if int(n) != len(body)-recordHeader {
		c.observe(KindRecordReject)
		return nil, ErrRecord
	}
	encKey, macKey := c.dirKeys(dir)
	want := sgxcrypto.RawMAC(macKey, body)
	if !hmac.Equal(want[:], tag) {
		c.observe(KindRecordReject)
		return nil, ErrRecord
	}
	sgxcrypto.ChargeMAC(m, len(body))
	cipher, err := sgxcrypto.NewAES(m, encKey)
	if err != nil {
		return nil, err
	}
	var iv [16]byte
	iv[0] = byte(dir)
	binary.BigEndian.PutUint64(iv[8:], seq)
	out := make([]byte, n)
	cipher.XORKeyStreamCTR(m, iv, out, body[recordHeader:])
	c.observe(KindRecordOpen)
	return out, nil
}

// OpenAny verifies and decrypts a record using the direction and
// sequence number carried in its (MAC-protected) header — the passive
// observer's entry point: a key-provisioned middlebox sees records
// mid-stream and cannot maintain the endpoints' counters, but the MAC
// binds the header, so a forged or replayed header still fails.
func (c *Codec) OpenAny(m *core.Meter, raw []byte) (Direction, uint64, []byte, error) {
	if len(raw) < recordHeader+32 {
		c.observe(KindRecordReject)
		return 0, 0, nil, ErrRecord
	}
	dir := Direction(raw[0])
	if dir != ClientToServer && dir != ServerToClient {
		c.observe(KindRecordReject)
		return 0, 0, nil, ErrRecord
	}
	seq := binary.BigEndian.Uint64(raw[1:9])
	out, err := c.Open(m, dir, seq, raw)
	return dir, seq, out, err
}

func (c *Codec) dirKeys(dir Direction) (enc, mac []byte) {
	if dir == ClientToServer {
		return c.keys.EncC2S[:], c.keys.MacC2S[:]
	}
	return c.keys.EncS2C[:], c.keys.MacS2C[:]
}

// Session is one endpoint's view of an established connection.
type Session struct {
	isClient bool
	codec    *Codec
	conn     *netsim.Conn
	meter    *core.Meter
	sendSeq  uint64
	recvSeq  uint64
}

// handshake wire messages (gob-free: fixed framing keeps the transcript
// hash simple).

func writeMsg(conn *netsim.Conn, transcript *bytes.Buffer, fields ...[]byte) error {
	var buf bytes.Buffer
	for _, f := range fields {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(f)))
		buf.Write(l[:])
		buf.Write(f)
	}
	transcript.Write(buf.Bytes())
	return conn.Send(buf.Bytes())
}

func readMsg(conn *netsim.Conn, transcript *bytes.Buffer, n int) ([][]byte, error) {
	raw, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	transcript.Write(raw)
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if len(raw) < 4 {
			return nil, fmt.Errorf("tlslite: truncated handshake message")
		}
		l := binary.BigEndian.Uint32(raw[:4])
		raw = raw[4:]
		if uint32(len(raw)) < l {
			return nil, fmt.Errorf("tlslite: truncated handshake field")
		}
		out = append(out, raw[:l])
		raw = raw[l:]
	}
	return out, nil
}

// ClientHandshake runs the client side of the handshake over conn. On
// failure the connection is closed (a half-completed handshake poisons
// it and would leave the peer blocked).
func ClientHandshake(m *core.Meter, conn *netsim.Conn) (*Session, error) {
	s, err := clientHandshake(m, conn)
	if err != nil {
		conn.Close()
	}
	return s, err
}

func clientHandshake(m *core.Meter, conn *netsim.Conn) (*Session, error) {
	var transcript bytes.Buffer
	var clientRandom [32]byte
	if _, err := rand.Read(clientRandom[:]); err != nil {
		return nil, err
	}
	if err := writeMsg(conn, &transcript, clientRandom[:]); err != nil {
		return nil, err
	}
	// ServerHello: serverRandom, DH prime, generator, server public.
	fields, err := readMsg(conn, &transcript, 4)
	if err != nil {
		return nil, err
	}
	params := &sgxcrypto.DHParams{P: new(big.Int).SetBytes(fields[1]), G: new(big.Int).SetBytes(fields[2])}
	if params.Bits() < 1024 {
		return nil, fmt.Errorf("tlslite: weak DH parameters (%d bits)", params.Bits())
	}
	key, err := sgxcrypto.GenerateKey(m, params, nil)
	if err != nil {
		return nil, err
	}
	secret, err := key.Shared(m, new(big.Int).SetBytes(fields[3]))
	if err != nil {
		return nil, err
	}
	if err := writeMsg(conn, &transcript, key.Public.Bytes()); err != nil {
		return nil, err
	}
	master := masterSecret(secret, clientRandom[:], fields[0])
	// Finished exchange authenticates the transcript both ways.
	if err := finished(m, conn, &transcript, master, true); err != nil {
		return nil, err
	}
	return &Session{isClient: true, codec: NewCodec(deriveKeys(master)), conn: conn, meter: m}, nil
}

// ServerHandshake runs the server side. On failure the connection is
// closed.
func ServerHandshake(m *core.Meter, conn *netsim.Conn) (*Session, error) {
	s, err := serverHandshake(m, conn)
	if err != nil {
		conn.Close()
	}
	return s, err
}

func serverHandshake(m *core.Meter, conn *netsim.Conn) (*Session, error) {
	var transcript bytes.Buffer
	fields, err := readMsg(conn, &transcript, 1)
	if err != nil {
		return nil, err
	}
	clientRandom := fields[0]
	var serverRandom [32]byte
	if _, err := rand.Read(serverRandom[:]); err != nil {
		return nil, err
	}
	params := sgxcrypto.StandardGroup()
	key, err := sgxcrypto.GenerateKey(m, params, nil)
	if err != nil {
		return nil, err
	}
	if err := writeMsg(conn, &transcript, serverRandom[:], params.P.Bytes(), params.G.Bytes(), key.Public.Bytes()); err != nil {
		return nil, err
	}
	fields, err = readMsg(conn, &transcript, 1)
	if err != nil {
		return nil, err
	}
	secret, err := key.Shared(m, new(big.Int).SetBytes(fields[0]))
	if err != nil {
		return nil, err
	}
	master := masterSecret(secret, clientRandom, serverRandom[:])
	if err := finished(m, conn, &transcript, master, false); err != nil {
		return nil, err
	}
	return &Session{isClient: false, codec: NewCodec(deriveKeys(master)), conn: conn, meter: m}, nil
}

func masterSecret(shared [32]byte, clientRandom, serverRandom []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("tlslite master"))
	h.Write(shared[:])
	h.Write(clientRandom)
	h.Write(serverRandom)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// finished exchanges transcript MACs: each side proves it saw the same
// handshake, detecting tampering with the unencrypted hello messages.
func finished(m *core.Meter, conn *netsim.Conn, transcript *bytes.Buffer, master [32]byte, client bool) error {
	snapshot := append([]byte(nil), transcript.Bytes()...)
	mine := sgxcrypto.MAC(m, master[:], append([]byte(label(client)), snapshot...))
	theirsLabel := label(!client)
	want := sgxcrypto.MAC(m, master[:], append([]byte(theirsLabel), snapshot...))
	if client {
		if err := conn.Send(mine[:]); err != nil {
			return err
		}
		got, err := conn.Recv()
		if err != nil {
			return err
		}
		if !hmac.Equal(got, want[:]) {
			return fmt.Errorf("tlslite: server Finished mismatch")
		}
		return nil
	}
	got, err := conn.Recv()
	if err != nil {
		return err
	}
	if !hmac.Equal(got, want[:]) {
		return fmt.Errorf("tlslite: client Finished mismatch")
	}
	return conn.Send(mine[:])
}

func label(client bool) string {
	if client {
		return "client finished"
	}
	return "server finished"
}

// ExportKeys returns the session's key block for provisioning an
// attested middlebox.
func (s *Session) ExportKeys() Keys { return s.codec.keys }

// sendBufs pools outbound record buffers: netsim copies every Send, so
// the sealed record's lifetime ends when Send returns and the buffer
// can be reused by the next record on any session.
var sendBufs = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// Send transmits one application record.
func (s *Session) Send(payload []byte) error {
	dir := ServerToClient
	if s.isClient {
		dir = ClientToServer
	}
	bufp := sendBufs.Get().(*[]byte)
	rec, err := s.codec.sealAppend(s.meter, (*bufp)[:0], dir, s.sendSeq, payload)
	if err != nil {
		sendBufs.Put(bufp)
		return err
	}
	s.sendSeq++
	err = s.conn.Send(rec)
	*bufp = rec[:0]
	sendBufs.Put(bufp)
	return err
}

// Recv receives and opens one application record.
func (s *Session) Recv() ([]byte, error) {
	dir := ClientToServer
	if s.isClient {
		dir = ServerToClient
	}
	raw, err := s.conn.Recv()
	if err != nil {
		return nil, err
	}
	out, err := s.codec.Open(s.meter, dir, s.recvSeq, raw)
	if err != nil {
		return nil, err
	}
	s.recvSeq++
	return out, nil
}
