package tlslite

import (
	"bytes"
	"testing"

	"sgxnet/internal/core"
	"sgxnet/internal/xcall"
)

func testKeys() Keys {
	var k Keys
	for i := range k.EncC2S {
		k.EncC2S[i] = byte(i)
		k.EncS2C[i] = byte(i + 16)
	}
	for i := range k.MacC2S {
		k.MacC2S[i] = byte(i + 32)
		k.MacS2C[i] = byte(i + 64)
	}
	return k
}

func newEngine(t *testing.T, xc *xcall.Config) *RecordEngine {
	t.Helper()
	plat, err := core.NewPlatform("tls-engine-test", core.PlatformConfig{Seed: []byte("tls-engine-test")})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := core.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewRecordEngine(plat, signer, testKeys(), xc)
	if err != nil {
		t.Fatal(err)
	}
	eng.Meter().Reset()
	return eng
}

func TestRecordEngineRoundTrip(t *testing.T) {
	for _, xc := range []*xcall.Config{nil, {Batch: 4}} {
		eng := newEngine(t, xc)
		payload := []byte("application data")
		rec, err := eng.Seal(ClientToServer, 7, payload)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Open(ClientToServer, 7, rec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip: %q", got)
		}
		// Wrong direction/sequence must still reject through the engine.
		if _, err := eng.Open(ServerToClient, 7, rec); err == nil {
			t.Fatal("wrong direction accepted")
		}
		if _, err := eng.Open(ClientToServer, 8, rec); err == nil {
			t.Fatal("wrong sequence accepted")
		}
	}
}

// TestRecordEngineMatchesCodec pins that hosting the codec in an
// enclave changes accounting, not bytes: engine output equals direct
// codec output for the same keys and sequence numbers.
func TestRecordEngineMatchesCodec(t *testing.T) {
	eng := newEngine(t, nil)
	codec := NewCodec(testKeys())
	m := core.NewMeter()
	for seq := uint64(0); seq < 3; seq++ {
		want, err := codec.Seal(m, ServerToClient, seq, []byte("abc"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Seal(ServerToClient, seq, []byte("abc"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("seq %d: engine record differs from codec record", seq)
		}
	}
}

// TestRecordEngineSwitchlessAmortizes pins the crossing reduction: at
// batch 16 the ring cuts the engine's SGX tally ≥2× vs synchronous.
func TestRecordEngineSwitchlessAmortizes(t *testing.T) {
	const records = 32
	run := func(xc *xcall.Config) uint64 {
		eng := newEngine(t, xc)
		for seq := uint64(0); seq < records; seq++ {
			rec, err := eng.Seal(ClientToServer, seq, []byte("payload"))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Open(ClientToServer, seq, rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		return eng.Meter().Snapshot().SGXU
	}
	syncSGX := run(nil)
	swl := run(&xcall.Config{Batch: 16})
	if swl*2 > syncSGX {
		t.Fatalf("switchless %d SGX, sync %d: less than 2× reduction", swl, syncSGX)
	}
}
