package tlslite

import "sgxnet/internal/obs"

// Register the record layer's probe kinds so a strict obs.Registry can
// vouch that every kind this package fires is documented (obs never
// imports tlslite, so the import is cycle-free).
func init() {
	obs.RegisterKind(KindRecordSeal, "record sealed for the wire")
	obs.RegisterKind(KindRecordOpen, "record authenticated and decrypted")
	obs.RegisterKind(KindRecordReject, "record failed authentication or framing")
}
