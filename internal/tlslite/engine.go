package tlslite

import (
	"encoding/binary"

	"sgxnet/internal/core"
	"sgxnet/internal/xcall"
)

// RecordEngine hosts a Codec inside an enclave: every seal/open is an
// enclave call, so the record crypto runs with the keys isolated from
// the untrusted endpoint process (the deployment §4.2 sketches for TLS
// terminators). Synchronously each record costs an EENTER/EEXIT pair
// on top of the crypto; with an xcall ring (Config non-nil) records
// are submitted switchlessly and the crossing amortizes over batches —
// the ablation eval.XcallSweep measures.
type RecordEngine struct {
	enc  *core.Enclave
	ring *xcall.CallRing
}

// engine entry-point argument: dir(1) ‖ seq(8) ‖ record bytes.
func engineArg(dir Direction, seq uint64, b []byte) []byte {
	arg := make([]byte, 9+len(b))
	arg[0] = byte(dir)
	binary.BigEndian.PutUint64(arg[1:9], seq)
	copy(arg[9:], b)
	return arg
}

// NewRecordEngine launches the record enclave on plat with the given
// key block. A nil xc keeps every record on the synchronous crossing;
// otherwise seal/open ride a call ring sized by *xc.
func NewRecordEngine(plat *core.Platform, signer *core.Signer, keys Keys, xc *xcall.Config) (*RecordEngine, error) {
	codec := NewCodec(keys)
	codec.Probe = plat.Probe()
	prog := &core.Program{
		Name:    "tls-record-engine",
		Version: "1.0",
		Handlers: map[string]core.Handler{
			"tls.seal": func(env *core.Env, arg []byte) ([]byte, error) {
				if len(arg) < 9 {
					return nil, ErrRecord
				}
				return codec.Seal(env.Meter(), Direction(arg[0]), binary.BigEndian.Uint64(arg[1:9]), arg[9:])
			},
			"tls.open": func(env *core.Env, arg []byte) ([]byte, error) {
				if len(arg) < 9 {
					return nil, ErrRecord
				}
				return codec.Open(env.Meter(), Direction(arg[0]), binary.BigEndian.Uint64(arg[1:9]), arg[9:])
			},
		},
	}
	enc, err := plat.Launch(prog, signer)
	if err != nil {
		return nil, err
	}
	e := &RecordEngine{enc: enc}
	if xc != nil {
		e.ring = xcall.NewCallRing(enc, *xc)
	}
	return e, nil
}

func (e *RecordEngine) call(fn string, arg []byte) ([]byte, error) {
	if e.ring != nil {
		return e.ring.Call(fn, arg)
	}
	return e.enc.Call(fn, arg)
}

// Seal seals one record inside the enclave.
func (e *RecordEngine) Seal(dir Direction, seq uint64, payload []byte) ([]byte, error) {
	return e.call("tls.seal", engineArg(dir, seq, payload))
}

// Open verifies and decrypts one record inside the enclave.
func (e *RecordEngine) Open(dir Direction, seq uint64, raw []byte) ([]byte, error) {
	return e.call("tls.open", engineArg(dir, seq, raw))
}

// Flush drains the engine's ring at a phase boundary (no-op when
// running synchronously).
func (e *RecordEngine) Flush() error {
	if e.ring == nil {
		return nil
	}
	return e.ring.Flush()
}

// XcallStats returns the ring tally (zero when running synchronously).
func (e *RecordEngine) XcallStats() xcall.Stats {
	if e.ring == nil {
		return xcall.Stats{}
	}
	return e.ring.Stats()
}

// Meter returns the engine enclave's meter.
func (e *RecordEngine) Meter() *core.Meter { return e.enc.Meter() }

// Enclave returns the underlying enclave (for attestation of the
// record engine by a peer).
func (e *RecordEngine) Enclave() *core.Enclave { return e.enc }
