package tlslite

import (
	"testing"

	"sgxnet/internal/core"
)

// Fuzzers for the record layer: whatever bytes arrive mid-stream — at
// an endpoint or at a key-provisioned middlebox — parsing either yields
// an authenticated payload or ErrRecord, never a panic and never a
// silently corrupted plaintext.

// fuzzKeys is a fixed key block so records in the corpus authenticate.
func fuzzKeys() Keys {
	var k Keys
	for i := range k.EncC2S {
		k.EncC2S[i], k.EncS2C[i] = byte(i), byte(i+16)
	}
	for i := range k.MacC2S {
		k.MacC2S[i], k.MacS2C[i] = byte(i+32), byte(i+64)
	}
	return k
}

// FuzzOpenAny covers the middlebox entry point, which trusts nothing:
// direction, sequence number, and length all come from the wire.
func FuzzOpenAny(f *testing.F) {
	m := core.NewMeter()
	c := NewCodec(fuzzKeys())
	if rec, err := c.Seal(m, ClientToServer, 0, []byte("hello record")); err == nil {
		f.Add(rec)
		f.Add(rec[:len(rec)-1])
		mut := append([]byte{}, rec...)
		mut[0] ^= 0xff // invalid direction
		f.Add(mut)
	}
	if rec, err := c.Seal(m, ServerToClient, 7, []byte("")); err == nil {
		f.Add(rec)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		meter := core.NewMeter()
		codec := NewCodec(fuzzKeys())
		dir, seq, payload, err := codec.OpenAny(meter, data)
		if err != nil {
			return
		}
		// An accepted record must re-seal to the identical bytes: the
		// header is MAC-bound, so (dir, seq, payload) determines it.
		resealed, err := codec.Seal(meter, dir, seq, payload)
		if err != nil {
			t.Fatalf("reseal of accepted record: %v", err)
		}
		if string(resealed) != string(data) {
			t.Fatalf("accepted record does not round-trip")
		}
	})
}

// FuzzOpen covers the endpoint path with caller-held counters.
func FuzzOpen(f *testing.F) {
	m := core.NewMeter()
	c := NewCodec(fuzzKeys())
	if rec, err := c.Seal(m, ClientToServer, 3, []byte("payload")); err == nil {
		f.Add(rec)
		trunc := rec[:len(rec)-33]
		f.Add(trunc)
	}
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		meter := core.NewMeter()
		codec := NewCodec(fuzzKeys())
		_, _ = codec.Open(meter, ClientToServer, 3, data)
		_, _ = codec.Open(meter, ServerToClient, 0, data)
	})
}

// FuzzUnmarshalKeys covers the exported key-block parser used when
// endpoints hand session keys to an attested middlebox.
func FuzzUnmarshalKeys(f *testing.F) {
	k := fuzzKeys()
	f.Add(k.Marshal())
	f.Add(k.Marshal()[:95])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, ok := UnmarshalKeys(data)
		if !ok {
			return
		}
		if string(parsed.Marshal()) != string(data) {
			t.Fatalf("key block round-trip mismatch")
		}
	})
}
