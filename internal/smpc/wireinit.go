package smpc

import (
	"encoding/gob"
	"io"
)

// gob assigns wire type IDs process-wide in first-encode order, so the
// byte length of an encoded message — and with it every per-byte I/O
// charge downstream — would otherwise depend on which code path reached
// gob first (test order, worker interleaving). Encoding each wire type
// once at init pins the IDs in package-initialization order, which the
// runtime fixes per binary.
func init() {
	enc := gob.NewEncoder(io.Discard)
	for _, v := range []any{
		gmwInputShares{},
		gmwAND{},
		gmwANDPKs{},
		gmwANDEnc{},
		gmwOutputs{},
	} {
		if err := enc.Encode(v); err != nil {
			panic(err)
		}
	}
}
