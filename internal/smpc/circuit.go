// Package smpc is a from-scratch secure multi-party computation engine in
// the GMW style: boolean circuits over XOR-shared bits, XOR gates free,
// AND gates evaluated with 1-out-of-4 oblivious transfer built on the
// metered Diffie-Hellman group.
//
// It exists as the paper's §3.1 comparison point: Gupta et al. [17]
// propose SMPC for privacy-preserving inter-domain routing, and the paper
// argues that "the computational complexity of SMPC is prohibitively
// expensive" next to an SGX enclave computing the same function. The
// ablation benchmarks quantify that gap on private route comparison.
package smpc

import "fmt"

// GateKind enumerates circuit gates.
type GateKind uint8

const (
	// GateXOR is a free gate under XOR sharing.
	GateXOR GateKind = iota
	// GateAND requires one oblivious transfer per evaluation.
	GateAND
	// GateNOT is XOR with the constant-one wire.
	GateNOT
)

// Gate is one circuit gate: Out = A op B (B unused for NOT).
type Gate struct {
	Kind GateKind
	A, B int
	Out  int
}

// Circuit is a boolean circuit in topological order.
type Circuit struct {
	// NumInputs0 and NumInputs1 are the input bit counts of party 0 and
	// party 1; wires [0, NumInputs0) belong to party 0, the next
	// NumInputs1 wires to party 1.
	NumInputs0 int
	NumInputs1 int
	Gates      []Gate
	Outputs    []int
	wires      int
}

// Builder incrementally constructs circuits.
type Builder struct {
	c Circuit
}

// NewBuilder starts a circuit with the given party input widths.
func NewBuilder(in0, in1 int) *Builder {
	b := &Builder{}
	b.c.NumInputs0, b.c.NumInputs1 = in0, in1
	b.c.wires = in0 + in1
	return b
}

// Input0 returns party 0's i-th input wire.
func (b *Builder) Input0(i int) int { return i }

// Input1 returns party 1's i-th input wire.
func (b *Builder) Input1(i int) int { return b.c.NumInputs0 + i }

func (b *Builder) fresh() int {
	w := b.c.wires
	b.c.wires++
	return w
}

// Xor adds a ⊕ b.
func (b *Builder) Xor(a, c int) int {
	out := b.fresh()
	b.c.Gates = append(b.c.Gates, Gate{Kind: GateXOR, A: a, B: c, Out: out})
	return out
}

// And adds a ∧ b.
func (b *Builder) And(a, c int) int {
	out := b.fresh()
	b.c.Gates = append(b.c.Gates, Gate{Kind: GateAND, A: a, B: c, Out: out})
	return out
}

// Not adds ¬a.
func (b *Builder) Not(a int) int {
	out := b.fresh()
	b.c.Gates = append(b.c.Gates, Gate{Kind: GateNOT, A: a, Out: out})
	return out
}

// Or adds a ∨ b = ¬(¬a ∧ ¬b).
func (b *Builder) Or(a, c int) int {
	return b.Not(b.And(b.Not(a), b.Not(c)))
}

// Mux adds sel ? a : b.
func (b *Builder) Mux(sel, a, c int) int {
	// sel·a ⊕ (¬sel)·c  ==  c ⊕ sel·(a⊕c)
	return b.Xor(c, b.And(sel, b.Xor(a, c)))
}

// Gt builds an unsigned greater-than comparator: out = (a > b) where a
// and b are little-endian bit vectors of equal width.
func (b *Builder) Gt(a, c []int) int {
	if len(a) != len(c) {
		panic("smpc: comparator width mismatch")
	}
	// Ripple from LSB: gt_i = a_i·¬b_i ⊕ (a_i ≡ b_i)·gt_{i-1}
	gt := -1
	for i := 0; i < len(a); i++ {
		aNotB := b.And(a[i], b.Not(c[i]))
		if gt < 0 {
			gt = aNotB
			continue
		}
		eq := b.Not(b.Xor(a[i], c[i]))
		gt = b.Xor(aNotB, b.And(eq, gt))
	}
	return gt
}

// Eq builds an equality comparator over equal-width bit vectors.
func (b *Builder) Eq(a, c []int) int {
	out := -1
	for i := range a {
		bitEq := b.Not(b.Xor(a[i], c[i]))
		if out < 0 {
			out = bitEq
		} else {
			out = b.And(out, bitEq)
		}
	}
	return out
}

// Output marks wires as circuit outputs.
func (b *Builder) Output(wires ...int) {
	b.c.Outputs = append(b.c.Outputs, wires...)
}

// Build finalizes the circuit.
func (b *Builder) Build() *Circuit {
	cp := b.c
	cp.Gates = append([]Gate(nil), b.c.Gates...)
	cp.Outputs = append([]int(nil), b.c.Outputs...)
	return &cp
}

// NumWires reports the circuit's wire count.
func (c *Circuit) NumWires() int { return c.wires }

// ANDCount reports the number of AND gates — the SMPC cost driver.
func (c *Circuit) ANDCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind == GateAND {
			n++
		}
	}
	return n
}

// EvalPlain evaluates the circuit in the clear (the correctness oracle
// for the protocol).
func (c *Circuit) EvalPlain(in0, in1 []bool) ([]bool, error) {
	if len(in0) != c.NumInputs0 || len(in1) != c.NumInputs1 {
		return nil, fmt.Errorf("smpc: input widths %d/%d, want %d/%d", len(in0), len(in1), c.NumInputs0, c.NumInputs1)
	}
	w := make([]bool, c.wires)
	copy(w, in0)
	copy(w[c.NumInputs0:], in1)
	for _, g := range c.Gates {
		switch g.Kind {
		case GateXOR:
			w[g.Out] = w[g.A] != w[g.B]
		case GateAND:
			w[g.Out] = w[g.A] && w[g.B]
		case GateNOT:
			w[g.Out] = !w[g.A]
		}
	}
	out := make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = w[o]
	}
	return out, nil
}

// Bits converts an unsigned value to a little-endian bool vector.
func Bits(v uint64, width int) []bool {
	out := make([]bool, width)
	for i := 0; i < width; i++ {
		out[i] = v>>uint(i)&1 == 1
	}
	return out
}

// RoutePreferCircuit builds the private best-route comparator of the
// SMPC-for-interdomain-routing baseline: party 0 holds route A's
// (localpref, pathlen), party 1 holds route B's; the single output bit
// says "A is preferred" under the BGP decision process (higher pref,
// then shorter path), revealing nothing else.
func RoutePreferCircuit(prefBits, lenBits int) *Circuit {
	b := NewBuilder(prefBits+lenBits, prefBits+lenBits)
	prefA := make([]int, prefBits)
	lenA := make([]int, lenBits)
	prefB := make([]int, prefBits)
	lenB := make([]int, lenBits)
	for i := 0; i < prefBits; i++ {
		prefA[i] = b.Input0(i)
		prefB[i] = b.Input1(i)
	}
	for i := 0; i < lenBits; i++ {
		lenA[i] = b.Input0(prefBits + i)
		lenB[i] = b.Input1(prefBits + i)
	}
	prefGt := b.Gt(prefA, prefB)
	prefEq := b.Eq(prefA, prefB)
	lenLt := b.Gt(lenB, lenA)
	b.Output(b.Or(prefGt, b.And(prefEq, lenLt)))
	return b.Build()
}
