package smpc

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"

	"sgxnet/internal/core"
	"sgxnet/internal/sgxcrypto"
)

// 1-out-of-4 oblivious transfer in the Bellare–Micali / Naor–Pinkas
// style over the metered 1024-bit DH group. The receiver learns exactly
// one of the sender's four one-byte messages; the sender learns nothing
// about the choice. Every modular exponentiation charges its calibrated
// instruction cost, which is precisely why GMW's per-AND-gate OT makes
// the SMPC baseline so expensive.

// otTranscript is the message flow of one OT, run in-memory between the
// two party engines (the netsim conn carries its serialized form).
type otMsg1 struct {
	// C is the sender's "no known discrete log" group element.
	C []byte
}

type otMsg2 struct {
	// PK0 is the receiver's first public key; PK_i for i>0 are derived
	// as C^i/PK0 ... we use the standard trick with PK_c = g^k.
	PKs [4][]byte
}

type otMsg3 struct {
	// R is g^r; E[i] are the encrypted messages.
	R []byte
	E [4][]byte
}

var errOT = errors.New("smpc: oblivious transfer failure")

// otSender holds the sender's state across the exchange.
type otSender struct {
	params *sgxcrypto.DHParams
	c      *big.Int
}

// newOTSender creates message 1: a random group element C whose discrete
// log the receiver cannot know.
func newOTSender(m *core.Meter, params *sgxcrypto.DHParams) (*otSender, otMsg1, error) {
	k, err := sgxcrypto.GenerateKey(m, params, nil)
	if err != nil {
		return nil, otMsg1{}, err
	}
	return &otSender{params: params, c: k.Public}, otMsg1{C: k.Public.Bytes()}, nil
}

// otReceive answers message 1 with the four public keys, of which only
// PKs[choice] has a known secret.
type otReceiver struct {
	params *sgxcrypto.DHParams
	choice int
	key    *sgxcrypto.DHKey
}

func newOTReceiver(m *core.Meter, params *sgxcrypto.DHParams, choice int, msg1 otMsg1) (*otReceiver, otMsg2, error) {
	if choice < 0 || choice > 3 {
		return nil, otMsg2{}, fmt.Errorf("%w: choice %d", errOT, choice)
	}
	c := new(big.Int).SetBytes(msg1.C)
	key, err := sgxcrypto.GenerateKey(m, params, nil)
	if err != nil {
		return nil, otMsg2{}, err
	}
	var msg2 otMsg2
	// PK_choice = g^k; PK_i (i≠choice) = C · g^{h_i} with h_i random but
	// *derived from C and PK_choice* so the receiver cannot know their
	// discrete logs relative to g without breaking DH. We use the classic
	// construction PK_i = C / PK_choice rotated per index.
	pkChoice := key.Public
	for i := 0; i < 4; i++ {
		if i == choice {
			msg2.PKs[i] = pkChoice.Bytes()
			continue
		}
		// PK_i = C^{i+1} · PK_choice^{-1} mod p — distinct per slot,
		// discrete log unknown to the receiver.
		ci := new(big.Int).Exp(c, big.NewInt(int64(i+1)), params.P)
		m.ChargeNormal(core.CostDHKeyAgree / 2)
		inv := new(big.Int).ModInverse(pkChoice, params.P)
		if inv == nil {
			return nil, otMsg2{}, errOT
		}
		pki := new(big.Int).Mod(new(big.Int).Mul(ci, inv), params.P)
		msg2.PKs[i] = pki.Bytes()
	}
	return &otReceiver{params: params, choice: choice, key: key}, msg2, nil
}

// otSend produces message 3: each of the four messages encrypted under
// the corresponding public key.
func (s *otSender) send(m *core.Meter, msg2 otMsg2, msgs [4]byte) (otMsg3, error) {
	r, err := sgxcrypto.GenerateKey(m, s.params, nil)
	if err != nil {
		return otMsg3{}, err
	}
	var out otMsg3
	out.R = r.Public.Bytes()
	for i := 0; i < 4; i++ {
		pk := new(big.Int).SetBytes(msg2.PKs[i])
		if pk.Sign() <= 0 || pk.Cmp(s.params.P) >= 0 {
			return otMsg3{}, errOT
		}
		shared, err := r.Shared(m, pk)
		if err != nil {
			return otMsg3{}, err
		}
		pad := otPad(shared, i)
		out.E[i] = []byte{msgs[i] ^ pad}
	}
	return out, nil
}

// otFinish decrypts the chosen message.
func (rcv *otReceiver) finish(m *core.Meter, msg3 otMsg3) (byte, error) {
	shared, err := rcv.key.Shared(m, new(big.Int).SetBytes(msg3.R))
	if err != nil {
		return 0, err
	}
	if len(msg3.E[rcv.choice]) != 1 {
		return 0, errOT
	}
	return msg3.E[rcv.choice][0] ^ otPad(shared, rcv.choice), nil
}

func otPad(shared [32]byte, slot int) byte {
	sum := sha256.Sum256(append(shared[:], byte(slot)))
	return sum[0]
}

// randBit draws a uniform bit.
func randBit() (bool, error) {
	var b [1]byte
	if _, err := rand.Read(b[:]); err != nil {
		return false, err
	}
	return b[0]&1 == 1, nil
}

// bigFromBytes is a test helper-friendly wrapper.
func bigFromBytes(b []byte) *big.Int { return new(big.Int).SetBytes(b) }
