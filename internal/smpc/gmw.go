package smpc

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/sgxcrypto"
)

// Two-party GMW evaluation (semi-honest model, as in the SMPC routing
// proposal this baseline stands in for). Party 0 connects to party 1
// over a netsim connection; wire values are XOR-shared; XOR and NOT
// gates are local; each AND gate costs one 1-out-of-4 oblivious
// transfer, whose public-key operations dominate the instruction count.

// Party identifies a protocol role.
type Party int

// wire protocol messages
type gmwInputShares struct {
	Shares []bool // the other party's shares of my inputs
}

type gmwAND struct {
	Msg1 otMsg1
}

type gmwANDPKs struct {
	Msg2 otMsg2
}

type gmwANDEnc struct {
	Msg3 otMsg3
}

type gmwOutputs struct {
	Shares []bool
}

func sendGob(conn *netsim.Conn, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	return conn.Send(buf.Bytes())
}

func recvGob(conn *netsim.Conn, v any) error {
	raw, err := conn.Recv()
	if err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(raw)).Decode(v)
}

// Engine evaluates circuits as one of the two parties.
type Engine struct {
	party  Party
	conn   *netsim.Conn
	meter  *core.Meter
	params *sgxcrypto.DHParams
}

// NewEngine creates a party engine over an established connection. Both
// parties must use the same circuit and call Run concurrently.
func NewEngine(party Party, conn *netsim.Conn, meter *core.Meter) *Engine {
	return &Engine{party: party, conn: conn, meter: meter, params: sgxcrypto.StandardGroup()}
}

// Run evaluates the circuit on this party's private inputs and returns
// the reconstructed output bits. Both parties receive the outputs.
func (e *Engine) Run(c *Circuit, inputs []bool) ([]bool, error) {
	myWidth, otherWidth := c.NumInputs0, c.NumInputs1
	if e.party == 1 {
		myWidth, otherWidth = otherWidth, myWidth
	}
	if len(inputs) != myWidth {
		return nil, fmt.Errorf("smpc: party %d input width %d, want %d", e.party, len(inputs), myWidth)
	}

	// Share inputs: for each of my input bits, draw a random share for
	// the other party; keep bit ⊕ share.
	myShares := make([]bool, len(inputs))
	theirShareOfMine := make([]bool, len(inputs))
	for i, bit := range inputs {
		r, err := randBit()
		if err != nil {
			return nil, err
		}
		theirShareOfMine[i] = r
		myShares[i] = bit != r
	}
	// Exchange: party 0 sends first (deterministic order avoids
	// deadlock on the synchronous conn).
	var theirs gmwInputShares
	if e.party == 0 {
		if err := sendGob(e.conn, gmwInputShares{Shares: theirShareOfMine}); err != nil {
			return nil, err
		}
		if err := recvGob(e.conn, &theirs); err != nil {
			return nil, err
		}
	} else {
		if err := recvGob(e.conn, &theirs); err != nil {
			return nil, err
		}
		if err := sendGob(e.conn, gmwInputShares{Shares: theirShareOfMine}); err != nil {
			return nil, err
		}
	}
	if len(theirs.Shares) != otherWidth {
		return nil, fmt.Errorf("smpc: peer sent %d input shares, want %d", len(theirs.Shares), otherWidth)
	}

	// Lay out wire shares: inputs of party 0 first, then party 1.
	w := make([]bool, c.NumWires())
	if e.party == 0 {
		copy(w, myShares)
		copy(w[c.NumInputs0:], theirs.Shares)
	} else {
		copy(w, theirs.Shares)
		copy(w[c.NumInputs0:], myShares)
	}

	for _, g := range c.Gates {
		switch g.Kind {
		case GateXOR:
			w[g.Out] = w[g.A] != w[g.B]
		case GateNOT:
			// Exactly one party flips its share.
			if e.party == 0 {
				w[g.Out] = !w[g.A]
			} else {
				w[g.Out] = w[g.A]
			}
		case GateAND:
			out, err := e.andGate(w[g.A], w[g.B])
			if err != nil {
				return nil, fmt.Errorf("smpc: AND gate: %w", err)
			}
			w[g.Out] = out
		}
	}

	// Output reconstruction: exchange output shares.
	mine := gmwOutputs{Shares: make([]bool, len(c.Outputs))}
	for i, o := range c.Outputs {
		mine.Shares[i] = w[o]
	}
	var peer gmwOutputs
	if e.party == 0 {
		if err := sendGob(e.conn, mine); err != nil {
			return nil, err
		}
		if err := recvGob(e.conn, &peer); err != nil {
			return nil, err
		}
	} else {
		if err := recvGob(e.conn, &peer); err != nil {
			return nil, err
		}
		if err := sendGob(e.conn, mine); err != nil {
			return nil, err
		}
	}
	if len(peer.Shares) != len(mine.Shares) {
		return nil, fmt.Errorf("smpc: output share count mismatch")
	}
	out := make([]bool, len(mine.Shares))
	for i := range out {
		out[i] = mine.Shares[i] != peer.Shares[i]
	}
	return out, nil
}

// andGate evaluates one AND under XOR sharing. Party 0 is the OT sender:
// it draws a random output share r and offers the table
// t[x][y] = r ⊕ ((a0⊕x) ∧ (b0⊕y)); party 1 selects with (a1, b1).
func (e *Engine) andGate(a, b bool) (bool, error) {
	if e.party == 0 {
		r, err := randBit()
		if err != nil {
			return false, err
		}
		var table [4]byte
		for x := 0; x < 2; x++ {
			for y := 0; y < 2; y++ {
				v := (a != (x == 1)) && (b != (y == 1))
				bit := r != v
				if bit {
					table[x*2+y] = 1
				}
			}
		}
		sender, msg1, err := newOTSender(e.meter, e.params)
		if err != nil {
			return false, err
		}
		if err := sendGob(e.conn, gmwAND{Msg1: msg1}); err != nil {
			return false, err
		}
		var pks gmwANDPKs
		if err := recvGob(e.conn, &pks); err != nil {
			return false, err
		}
		msg3, err := sender.send(e.meter, pks.Msg2, table)
		if err != nil {
			return false, err
		}
		if err := sendGob(e.conn, gmwANDEnc{Msg3: msg3}); err != nil {
			return false, err
		}
		return r, nil
	}

	// Party 1: receiver with choice (a, b).
	choice := 0
	if a {
		choice += 2
	}
	if b {
		choice++
	}
	var m1 gmwAND
	if err := recvGob(e.conn, &m1); err != nil {
		return false, err
	}
	rcv, msg2, err := newOTReceiver(e.meter, e.params, choice, m1.Msg1)
	if err != nil {
		return false, err
	}
	if err := sendGob(e.conn, gmwANDPKs{Msg2: msg2}); err != nil {
		return false, err
	}
	var m3 gmwANDEnc
	if err := recvGob(e.conn, &m3); err != nil {
		return false, err
	}
	v, err := rcv.finish(e.meter, m3.Msg3)
	if err != nil {
		return false, err
	}
	return v == 1, nil
}

// RoutePrefer runs the private route comparison end to end between two
// hosts: party 0 holds (prefA, lenA), party 1 holds (prefB, lenB), both
// learn only the preference bit. Returns the decision and the combined
// instruction tally of both parties.
func RoutePrefer(net *netsim.Network, host0, host1 *netsim.SimHost,
	prefA, lenA, prefB, lenB uint64, bits int) (bool, core.Tally, error) {
	if bits < 64 {
		for _, v := range []uint64{prefA, lenA, prefB, lenB} {
			if v >= 1<<uint(bits) {
				return false, core.Tally{}, fmt.Errorf("smpc: value %d exceeds %d-bit circuit width", v, bits)
			}
		}
	}
	c := RoutePreferCircuit(bits, bits)
	l, err := host1.Listen("smpc")
	if err != nil {
		return false, core.Tally{}, err
	}
	defer l.Close()

	m0, m1 := core.NewMeter(), core.NewMeter()
	type res struct {
		out []bool
		err error
	}
	ch := make(chan res, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			ch <- res{nil, err}
			return
		}
		eng := NewEngine(1, conn, m1)
		in := append(Bits(prefB, bits), Bits(lenB, bits)...)
		out, err := eng.Run(c, in)
		ch <- res{out, err}
	}()
	conn, err := host0.Dial(host1.Name(), "smpc")
	if err != nil {
		return false, core.Tally{}, err
	}
	defer conn.Close()
	eng := NewEngine(0, conn, m0)
	in := append(Bits(prefA, bits), Bits(lenA, bits)...)
	out0, err := eng.Run(c, in)
	if err != nil {
		return false, core.Tally{}, err
	}
	r := <-ch
	if r.err != nil {
		return false, core.Tally{}, r.err
	}
	if len(out0) != 1 || len(r.out) != 1 || out0[0] != r.out[0] {
		return false, core.Tally{}, fmt.Errorf("smpc: parties disagree on output")
	}
	return out0[0], m0.Snapshot().Add(m1.Snapshot()), nil
}
