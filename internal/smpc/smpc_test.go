package smpc

import (
	"testing"
	"testing/quick"

	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/sgxcrypto"
)

// --- circuits ---

func TestPlainEvalGates(t *testing.T) {
	b := NewBuilder(2, 1)
	x := b.Xor(b.Input0(0), b.Input0(1))
	a := b.And(x, b.Input1(0))
	n := b.Not(a)
	o := b.Or(b.Input0(0), b.Input1(0))
	mux := b.Mux(b.Input0(0), b.Input0(1), b.Input1(0))
	b.Output(x, a, n, o, mux)
	c := b.Build()
	for _, tc := range []struct {
		in0  []bool
		in1  []bool
		want []bool
	}{
		{[]bool{true, false}, []bool{true}, []bool{true, true, false, true, false}},
		{[]bool{false, true}, []bool{false}, []bool{true, false, true, false, false}},
		{[]bool{true, true}, []bool{true}, []bool{false, false, true, true, true}},
	} {
		got, err := c.EvalPlain(tc.in0, tc.in1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("in0=%v in1=%v: output %d = %v, want %v", tc.in0, tc.in1, i, got[i], tc.want[i])
			}
		}
	}
	if _, err := c.EvalPlain([]bool{true}, []bool{true}); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestComparatorCircuits(t *testing.T) {
	const bits = 8
	b := NewBuilder(bits, bits)
	a := make([]int, bits)
	c := make([]int, bits)
	for i := 0; i < bits; i++ {
		a[i], c[i] = b.Input0(i), b.Input1(i)
	}
	b.Output(b.Gt(a, c), b.Eq(a, c))
	circ := b.Build()
	f := func(x, y uint8) bool {
		out, err := circ.EvalPlain(Bits(uint64(x), bits), Bits(uint64(y), bits))
		if err != nil {
			return false
		}
		return out[0] == (x > y) && out[1] == (x == y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoutePreferCircuitPlain(t *testing.T) {
	c := RoutePreferCircuit(8, 8)
	f := func(prefA, lenA, prefB, lenB uint8) bool {
		in0 := append(Bits(uint64(prefA), 8), Bits(uint64(lenA), 8)...)
		in1 := append(Bits(uint64(prefB), 8), Bits(uint64(lenB), 8)...)
		out, err := c.EvalPlain(in0, in1)
		if err != nil {
			return false
		}
		want := prefA > prefB || (prefA == prefB && lenA < lenB)
		return out[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestANDCount(t *testing.T) {
	c := RoutePreferCircuit(8, 8)
	if c.ANDCount() == 0 {
		t.Fatal("comparator without AND gates?")
	}
}

// --- oblivious transfer ---

func TestOTAllChoices(t *testing.T) {
	m := core.NewMeter()
	params := sgxcrypto.StandardGroup()
	msgs := [4]byte{10, 20, 30, 40}
	for choice := 0; choice < 4; choice++ {
		sender, m1, err := newOTSender(m, params)
		if err != nil {
			t.Fatal(err)
		}
		rcv, m2, err := newOTReceiver(m, params, choice, m1)
		if err != nil {
			t.Fatal(err)
		}
		m3, err := sender.send(m, m2, msgs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rcv.finish(m, m3)
		if err != nil {
			t.Fatal(err)
		}
		if got != msgs[choice] {
			t.Fatalf("choice %d: got %d want %d", choice, got, msgs[choice])
		}
		// The receiver cannot decrypt the other slots with its key: the
		// pads differ per slot and per public key.
		for other := 0; other < 4; other++ {
			if other == choice {
				continue
			}
			shared, err := rcv.key.Shared(m, bigFromBytes(m3.R))
			if err != nil {
				t.Fatal(err)
			}
			if m3.E[other][0]^otPad(shared, other) == msgs[other] {
				t.Fatalf("receiver decrypted slot %d with choice-%d key", other, choice)
			}
		}
	}
}

func TestOTRejectsBadChoice(t *testing.T) {
	m := core.NewMeter()
	params := sgxcrypto.StandardGroup()
	_, m1, err := newOTSender(m, params)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := newOTReceiver(m, params, 5, m1); err == nil {
		t.Fatal("choice 5 accepted")
	}
}

// --- GMW protocol ---

func smpcHosts(t *testing.T) (*netsim.Network, *netsim.SimHost, *netsim.SimHost) {
	t.Helper()
	n := netsim.New()
	a, err := n.AddHost("p0", core.PlatformConfig{EPCFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddHost("p1", core.PlatformConfig{EPCFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	return n, a, b
}

func TestGMWMatchesPlainEval(t *testing.T) {
	// A small circuit exercising every gate kind.
	b := NewBuilder(2, 2)
	g1 := b.And(b.Input0(0), b.Input1(0))
	g2 := b.Xor(b.Input0(1), b.Input1(1))
	g3 := b.Not(g1)
	b.Output(g1, g2, g3, b.And(g2, g3))
	circ := b.Build()

	n, h0, h1 := smpcHosts(t)
	_ = n
	cases := [][4]bool{
		{false, false, false, false},
		{true, true, true, true},
		{true, false, false, true},
		{false, true, true, false},
	}
	for ci, tc := range cases {
		in0 := []bool{tc[0], tc[1]}
		in1 := []bool{tc[2], tc[3]}
		want, err := circ.EvalPlain(in0, in1)
		if err != nil {
			t.Fatal(err)
		}
		l, err := h1.Listen("smpc")
		if err != nil {
			t.Fatal(err)
		}
		type res struct {
			out []bool
			err error
		}
		ch := make(chan res, 1)
		go func() {
			conn, err := l.Accept()
			if err != nil {
				ch <- res{nil, err}
				return
			}
			out, err := NewEngine(1, conn, core.NewMeter()).Run(circ, in1)
			ch <- res{out, err}
		}()
		conn, err := h0.Dial("p1", "smpc")
		if err != nil {
			t.Fatal(err)
		}
		out0, err := NewEngine(0, conn, core.NewMeter()).Run(circ, in0)
		if err != nil {
			t.Fatal(err)
		}
		r := <-ch
		if r.err != nil {
			t.Fatal(r.err)
		}
		for i := range want {
			if out0[i] != want[i] || r.out[i] != want[i] {
				t.Fatalf("case %d output %d: p0=%v p1=%v want %v", ci, i, out0[i], r.out[i], want[i])
			}
		}
		conn.Close()
		l.Close()
	}
}

func TestRoutePreferEndToEnd(t *testing.T) {
	n, h0, h1 := smpcHosts(t)
	// Route A: pref 200, len 3. Route B: pref 120, len 1. A preferred.
	prefer, tally, err := RoutePrefer(n, h0, h1, 200, 3, 120, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !prefer {
		t.Fatal("higher-pref route not preferred")
	}
	if tally.Normal == 0 {
		t.Fatal("SMPC charged nothing")
	}
}

// TestSMPCCostDwarfsDirectComparison quantifies the paper's complaint:
// the SMPC evaluation of one route comparison costs orders of magnitude
// more instructions than computing it directly (as the enclave does).
func TestSMPCCostDwarfsDirectComparison(t *testing.T) {
	n, h0, h1 := smpcHosts(t)
	_, tally, err := RoutePrefer(n, h0, h1, 250, 2, 250, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The direct (in-enclave) comparison is a handful of instructions;
	// even granting it a generous 100K (a full route update in our cost
	// model), SMPC must be at least 1000× costlier.
	direct := uint64(100_000)
	if tally.Normal < 1000*direct {
		t.Fatalf("SMPC cost %d is not prohibitive vs direct %d", tally.Normal, direct)
	}
}
