package bgp

import "sgxnet/internal/topo"

// Valley-free validation: a route that respects Gao–Rexford export rules
// traverses zero or more customer→provider ("uphill") links, at most one
// peer link, then zero or more provider→customer ("downhill") links. A
// "valley" (forwarding through a customer back up to a provider, or
// across two peers) means some AS is giving away transit it isn't paid
// for — exactly what the export rules exist to prevent.

// ValleyFree reports whether holder's route satisfies the valley-free
// property on the given topology.
func ValleyFree(t *topo.Topology, holder int, r Route) bool {
	if len(r.Path) == 0 {
		return true // self-originated
	}
	seq := append([]int{holder}, r.Path...)
	const (
		up = iota
		peered
		down
	)
	state := up
	for i := 0; i+1 < len(seq); i++ {
		rel, ok := t.Rel(seq[i], seq[i+1])
		if !ok {
			return false // path uses a non-existent link
		}
		switch rel {
		case topo.RelProvider: // uphill step
			if state != up {
				return false
			}
		case topo.RelPeer:
			if state != up {
				return false
			}
			state = peered
		case topo.RelCustomer: // downhill step
			state = down
		}
	}
	return true
}

// AllValleyFree checks every route in every RIB.
func AllValleyFree(t *topo.Topology, ribs map[int]RIB) bool {
	for holder, rib := range ribs {
		for _, r := range rib {
			if !ValleyFree(t, holder, r) {
				return false
			}
		}
	}
	return true
}

// LoopFree reports whether any path revisits an AS.
func LoopFree(ribs map[int]RIB) bool {
	for holder, rib := range ribs {
		for _, r := range rib {
			seen := map[int]bool{holder: true}
			for _, h := range r.Path {
				if seen[h] {
					return false
				}
				seen[h] = true
			}
		}
	}
	return true
}
