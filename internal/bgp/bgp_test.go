package bgp

import (
	"testing"
	"testing/quick"

	"sgxnet/internal/topo"
)

// lineTopology builds 0—1—2—…—(n−1) with 0 as everyone's transit root:
// each i+1 buys transit from i.
func lineTopology(t *testing.T, n int) *topo.Topology {
	t.Helper()
	tp := topo.NewTopology(n)
	for i := 0; i+1 < n; i++ {
		// From (i+1)'s perspective, i is a provider.
		if err := tp.AddLink(i+1, i, topo.RelProvider); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestBetterDecisionProcess(t *testing.T) {
	hiPref := Route{Dest: 9, Path: []int{1, 2, 3}, LocalPref: 300}
	loPref := Route{Dest: 9, Path: []int{4}, LocalPref: 100}
	if !Better(hiPref, loPref) {
		t.Fatal("local pref must dominate path length")
	}
	short := Route{Dest: 9, Path: []int{5}, LocalPref: 200}
	long := Route{Dest: 9, Path: []int{6, 7}, LocalPref: 200}
	if !Better(short, long) {
		t.Fatal("shorter path must win at equal pref")
	}
	a := Route{Dest: 9, Path: []int{2}, LocalPref: 200}
	b := Route{Dest: 9, Path: []int{3}, LocalPref: 200}
	if !Better(a, b) || Better(b, a) {
		t.Fatal("tie-break by next hop failed")
	}
}

func TestCanExportGaoRexford(t *testing.T) {
	fromCustomer := Route{LearnedFrom: 1, LearnedRel: topo.RelCustomer}
	fromPeer := Route{LearnedFrom: 2, LearnedRel: topo.RelPeer}
	fromProvider := Route{LearnedFrom: 3, LearnedRel: topo.RelProvider}
	self := Route{LearnedFrom: SelfOrigin}
	for _, r := range []Route{fromCustomer, fromPeer, fromProvider, self} {
		if !CanExport(r, topo.RelCustomer) {
			t.Fatal("everything must be exportable to customers")
		}
	}
	for _, to := range []topo.Relationship{topo.RelPeer, topo.RelProvider} {
		if !CanExport(fromCustomer, to) || !CanExport(self, to) {
			t.Fatal("customer/self routes must be exportable upward")
		}
		if CanExport(fromPeer, to) || CanExport(fromProvider, to) {
			t.Fatal("peer/provider routes must not be exportable upward")
		}
	}
}

func TestRouteHelpers(t *testing.T) {
	r := Route{Dest: 5, Path: []int{1, 2, 5}, LearnedFrom: 1}
	if r.NextHop() != 1 || r.Len() != 3 || !r.Contains(2) || r.Contains(9) {
		t.Fatalf("helpers broken: %v", r)
	}
	self := Route{Dest: 7, LearnedFrom: SelfOrigin}
	if self.NextHop() != 7 || !self.IsSelf() {
		t.Fatal("self route helpers broken")
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
	if !r.Equal(r) || r.Equal(self) {
		t.Fatal("Equal broken")
	}
}

func TestComputeAllLine(t *testing.T) {
	tp := lineTopology(t, 4)
	ribs, st := ComputeAll(tp)
	if !FullReach(tp, ribs) {
		t.Fatal("line topology must be fully reachable")
	}
	// AS3's route to AS0 must be the chain 2,1,0.
	r := ribs[3][0]
	if len(r.Path) != 3 || r.Path[0] != 2 || r.Path[1] != 1 || r.Path[2] != 0 {
		t.Fatalf("AS3→AS0 path = %v", r.Path)
	}
	if st.Rounds == 0 || st.Updates == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if !AllValleyFree(tp, ribs) || !LoopFree(ribs) {
		t.Fatal("line routes invalid")
	}
}

// TestPeerRoutesNotTransited: two ASes that peer must not provide transit
// between their respective providers — the classic Gao–Rexford outcome.
func TestPeerRoutesNotTransited(t *testing.T) {
	// 0 and 1 are providers of 2 and 3 respectively; 2 and 3 peer; there
	// is no link between 0 and 1.
	tp := topo.NewTopology(4)
	tp.AddLink(2, 0, topo.RelProvider)
	tp.AddLink(3, 1, topo.RelProvider)
	tp.AddLink(2, 3, topo.RelPeer)
	// Graph is connected (0–2–3–1).
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	ribs, _ := ComputeAll(tp)
	// 2 reaches 1 via its peer 3 (3 exports its provider? no!). Route
	// learned from provider 1 at AS3 must NOT be exported to peer 2, so
	// AS2 has no route to AS1 at all.
	if _, ok := ribs[2][1]; ok {
		t.Fatalf("AS2 obtained a route to AS1 through a peer valley: %v", ribs[2][1])
	}
	if _, ok := ribs[0][1]; ok {
		t.Fatal("AS0 obtained transit through the 2–3 peering")
	}
	// But 2 reaches 3 (direct peer) and 0 reaches 3 (via its customer 2's
	// peer? no — peer routes are not exported upward either).
	if _, ok := ribs[2][3]; !ok {
		t.Fatal("AS2 must reach its direct peer")
	}
	if _, ok := ribs[0][3]; ok {
		t.Fatal("AS0 must not reach AS3 through 2's peering (no-valley)")
	}
}

func TestComputeAllRandomTopologies(t *testing.T) {
	for _, n := range []int{5, 10, 30} {
		tp, err := topo.Random(topo.Config{N: n, Seed: 42, PrefJitter: true})
		if err != nil {
			t.Fatal(err)
		}
		ribs, st := ComputeAll(tp)
		if !FullReach(tp, ribs) {
			t.Fatalf("n=%d: not fully reachable", n)
		}
		if !AllValleyFree(tp, ribs) {
			t.Fatalf("n=%d: valley detected", n)
		}
		if !LoopFree(ribs) {
			t.Fatalf("n=%d: loop detected", n)
		}
		if st.Updates < n {
			t.Fatalf("n=%d: implausible stats %+v", n, st)
		}
	}
}

// TestCentralizedMatchesDistributed is the GNS3-style validation: the
// controller's centralized result equals the converged state of the
// distributed protocol, for several topologies and delivery orders.
func TestCentralizedMatchesDistributed(t *testing.T) {
	for _, n := range []int{4, 8, 15, 30} {
		tp, err := topo.Random(topo.Config{N: n, Seed: int64(n), PrefJitter: true})
		if err != nil {
			t.Fatal(err)
		}
		central, _ := ComputeAll(tp)
		for _, seed := range []int64{1, 99, 2026} {
			dist, st := SimulateDistributed(tp, seed)
			if !RIBsEqual(central, dist) {
				t.Fatalf("n=%d seed=%d: distributed result diverges (processed %d msgs)",
					n, seed, st.MessagesProcessed)
			}
		}
	}
}

// Property: for random small topologies and random delivery seeds, the
// distributed simulation always converges to the centralized result.
func TestConvergenceProperty(t *testing.T) {
	f := func(topoSeed, deliverySeed int64, nRaw uint8) bool {
		n := 3 + int(nRaw%12)
		tp, err := topo.Random(topo.Config{N: n, Seed: topoSeed, PrefJitter: true})
		if err != nil {
			return false
		}
		central, _ := ComputeAll(tp)
		dist, _ := SimulateDistributed(tp, deliverySeed)
		return RIBsEqual(central, dist) && AllValleyFree(tp, central) && LoopFree(central)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestValleyFreeDetectsValleys(t *testing.T) {
	// 1 buys from 0 and 2: path 0←1→2 through customer 1 is a valley.
	tp := topo.NewTopology(3)
	tp.AddLink(1, 0, topo.RelProvider)
	tp.AddLink(1, 2, topo.RelProvider)
	valley := Route{Dest: 2, Path: []int{1, 2}}
	if ValleyFree(tp, 0, valley) {
		t.Fatal("customer valley not detected")
	}
	uphill := Route{Dest: 0, Path: []int{0}}
	if !ValleyFree(tp, 1, uphill) {
		t.Fatal("direct uphill flagged")
	}
	// Nonexistent link.
	ghost := Route{Dest: 2, Path: []int{2}}
	if ValleyFree(tp, 0, ghost) {
		t.Fatal("path over nonexistent link accepted")
	}
}

func TestRIBClone(t *testing.T) {
	rib := RIB{1: Route{Dest: 1, Path: []int{2, 1}}}
	cp := rib.Clone()
	cp[1].Path[0] = 99
	if rib[1].Path[0] == 99 {
		t.Fatal("Clone shares path storage")
	}
}

func TestRIBsEqualNegative(t *testing.T) {
	a := map[int]RIB{0: {1: Route{Dest: 1, Path: []int{1}}}}
	b := map[int]RIB{0: {1: Route{Dest: 1, Path: []int{2, 1}}}}
	if RIBsEqual(a, b) {
		t.Fatal("unequal RIBs compared equal")
	}
	if RIBsEqual(a, map[int]RIB{}) {
		t.Fatal("size mismatch compared equal")
	}
	if !RIBsEqual(a, a) {
		t.Fatal("identical RIBs compared unequal")
	}
}

func BenchmarkComputeAll30(b *testing.B) {
	tp, err := topo.Random(topo.Config{N: 30, Seed: 42, PrefJitter: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ComputeAll(tp)
	}
}

func BenchmarkDistributed30(b *testing.B) {
	tp, err := topo.Random(topo.Config{N: 30, Seed: 42, PrefJitter: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SimulateDistributed(tp, int64(i))
	}
}
