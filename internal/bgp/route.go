// Package bgp implements the BGP-like inter-domain route computation the
// paper's SDN controller performs (§5: "the inter-domain controller then
// computes routing paths for all ASes using the rules of BGP"): routes
// with AS paths and local preference, Gao–Rexford export policies, the
// standard decision process, a centralized all-pairs computation, and an
// independent distributed path-vector simulator used as the correctness
// oracle (the role GNS3 plays in the paper).
package bgp

import (
	"fmt"

	"sgxnet/internal/topo"
)

// SelfOrigin marks a self-originated route's LearnedFrom field.
const SelfOrigin = -1

// Route is one AS's path to a destination AS.
type Route struct {
	// Dest is the destination AS.
	Dest int
	// Path is the AS path from (but excluding) the holder to Dest,
	// inclusive; empty for a self-originated route.
	Path []int
	// LocalPref is the holder's preference for this route (higher wins).
	LocalPref int
	// LearnedFrom is the neighbor the route was learned from, or
	// SelfOrigin.
	LearnedFrom int
	// LearnedRel is the holder's relationship toward LearnedFrom.
	LearnedRel topo.Relationship
}

// Valid reports whether the route is populated (zero Route = no route).
func (r Route) Valid() bool { return r.Dest != 0 || len(r.Path) > 0 || r.LearnedFrom != 0 }

// IsSelf reports whether the route is self-originated.
func (r Route) IsSelf() bool { return r.LearnedFrom == SelfOrigin }

// Len is the AS-path length.
func (r Route) Len() int { return len(r.Path) }

// NextHop returns the first AS on the path, or the destination itself for
// self-originated routes.
func (r Route) NextHop() int {
	if len(r.Path) == 0 {
		return r.Dest
	}
	return r.Path[0]
}

// Contains reports whether the path traverses as (loop detection).
func (r Route) Contains(as int) bool {
	for _, h := range r.Path {
		if h == as {
			return true
		}
	}
	return false
}

// Equal compares routes structurally.
func (r Route) Equal(o Route) bool {
	if r.Dest != o.Dest || r.LocalPref != o.LocalPref ||
		r.LearnedFrom != o.LearnedFrom || len(r.Path) != len(o.Path) {
		return false
	}
	for i := range r.Path {
		if r.Path[i] != o.Path[i] {
			return false
		}
	}
	return true
}

// String renders the route like a looking glass would.
func (r Route) String() string {
	return fmt.Sprintf("→AS%d via %v (pref %d, from %d)", r.Dest, r.Path, r.LocalPref, r.LearnedFrom)
}

// Better implements the BGP decision process used by the controller:
// highest local preference, then shortest AS path, then lowest next hop
// as the deterministic tie-break.
func Better(a, b Route) bool {
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if len(a.Path) != len(b.Path) {
		return len(a.Path) < len(b.Path)
	}
	return a.NextHop() < b.NextHop()
}

// CanExport implements the Gao–Rexford export rule: routes learned from
// customers (and self-originated routes) are exported to everyone; routes
// learned from peers or providers are exported only to customers.
func CanExport(r Route, toRel topo.Relationship) bool {
	if toRel == topo.RelCustomer {
		return true
	}
	return r.IsSelf() || r.LearnedRel == topo.RelCustomer
}

// RIB maps destination AS → best route.
type RIB map[int]Route

// Clone deep-copies the RIB.
func (rib RIB) Clone() RIB {
	out := make(RIB, len(rib))
	for d, r := range rib {
		cp := r
		cp.Path = append([]int(nil), r.Path...)
		out[d] = cp
	}
	return out
}
