package bgp

import (
	"reflect"
	"testing"

	"sgxnet/internal/topo"
)

// The parallel route computation's contract: within one Jacobi round
// every source reads the previous round's RIBs, so the per-source work
// is order-independent and the worker fan-out must reproduce the serial
// RIBs, convergence round count, and evaluation/update statistics
// exactly.

func TestComputeAllWorkersMatchesSerial(t *testing.T) {
	for _, n := range []int{5, 12, 30} {
		tp, err := topo.Random(topo.Config{N: n, Seed: 42, PrefJitter: true})
		if err != nil {
			t.Fatal(err)
		}
		wantRIBs, wantStats := ComputeAllWorkers(tp, 1)
		for _, workers := range []int{2, 8, n + 3} {
			gotRIBs, gotStats := ComputeAllWorkers(tp, workers)
			if gotStats != wantStats {
				t.Errorf("n=%d workers=%d: stats diverge: %+v vs %+v", n, workers, gotStats, wantStats)
			}
			if !reflect.DeepEqual(gotRIBs, wantRIBs) {
				t.Errorf("n=%d workers=%d: RIBs diverge from serial", n, workers)
			}
		}
		// The default entry point must be the same computation.
		defRIBs, defStats := ComputeAll(tp)
		if defStats != wantStats || !reflect.DeepEqual(defRIBs, wantRIBs) {
			t.Errorf("n=%d: ComputeAll diverges from explicit worker counts", n)
		}
	}
}

func TestComputeAllWorkersLineTopology(t *testing.T) {
	tp := lineTopology(t, 9)
	wantRIBs, wantStats := ComputeAllWorkers(tp, 1)
	gotRIBs, gotStats := ComputeAllWorkers(tp, 4)
	if gotStats != wantStats || !reflect.DeepEqual(gotRIBs, wantRIBs) {
		t.Error("parallel line-topology computation diverges from serial")
	}
}
