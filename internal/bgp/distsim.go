package bgp

import (
	"math/rand"

	"sgxnet/internal/topo"
)

// Distributed path-vector simulator: the correctness oracle standing in
// for the paper's GNS3 validation ("we verify the correctness of its
// output using GNS3", §5). Each AS runs the classic BGP machinery —
// Adj-RIB-In per neighbor, decision process, export-filtered
// announcements and withdrawals — over an asynchronous message queue
// whose delivery order is randomized by the seed. Convergence to the same
// RIBs as ComputeAll, for any delivery order, is the property tests
// assert.

type simMsg struct {
	from, to int
	dest     int
	route    Route // zero route = withdrawal
	withdraw bool
}

type simNode struct {
	id    int
	adjIn map[int]map[int]Route // neighbor → dest → last announced route
	rib   RIB
}

// SimStats describes a distributed run.
type SimStats struct {
	MessagesProcessed int
	Announcements     int
	Withdrawals       int
}

// SimulateDistributed runs the distributed protocol to quiescence and
// returns the converged RIBs. Delivery is asynchronous — the scheduler
// picks a random live session each step — but FIFO within each directed
// session, matching BGP-over-TCP semantics (reordering *within* a session
// would let a stale announcement overwrite a newer one, which real BGP
// never experiences).
func SimulateDistributed(t *topo.Topology, seed int64) (map[int]RIB, SimStats) {
	rng := rand.New(rand.NewSource(seed))
	n := t.N()
	nodes := make([]*simNode, n)
	var st SimStats

	// Per-directed-session FIFO queues.
	sessions := make(map[[2]int][]simMsg)
	var live [][2]int // sessions with pending messages, may hold stale entries
	push := func(m simMsg) {
		key := [2]int{m.from, m.to}
		if len(sessions[key]) == 0 {
			live = append(live, key)
		}
		sessions[key] = append(sessions[key], m)
	}

	enqueueBest := func(a int, dest int) {
		// Announce a's current best for dest to each neighbor, filtered
		// by export policy; send withdrawal where not exportable.
		node := nodes[a]
		best, has := node.rib[dest]
		for _, nbr := range t.Neighbors(a) {
			relToNbr, _ := t.Rel(a, nbr)
			if has && CanExport(best, relToNbr) && !best.Contains(nbr) && nbr != dest {
				cp := best
				cp.Path = append([]int(nil), best.Path...)
				push(simMsg{from: a, to: nbr, dest: dest, route: cp})
				st.Announcements++
			} else {
				push(simMsg{from: a, to: nbr, dest: dest, withdraw: true})
				st.Withdrawals++
			}
		}
	}

	for a := 0; a < n; a++ {
		nodes[a] = &simNode{
			id:    a,
			adjIn: make(map[int]map[int]Route),
			rib:   RIB{a: Route{Dest: a, LearnedFrom: SelfOrigin, LocalPref: 1 << 30}},
		}
	}
	for a := 0; a < n; a++ {
		enqueueBest(a, a)
	}

	// decide recomputes node b's best route for dest from Adj-RIB-In.
	decide := func(b int, dest int) bool {
		node := nodes[b]
		if dest == b {
			return false
		}
		var best Route
		have := false
		for _, nbr := range t.Neighbors(b) {
			in := node.adjIn[nbr]
			if in == nil {
				continue
			}
			nr, ok := in[dest]
			if !ok {
				continue
			}
			if nr.Contains(b) || nr.NextHop() == b {
				continue
			}
			relToNbr, _ := t.Rel(b, nbr)
			cand := Route{
				Dest:        dest,
				Path:        append([]int{nbr}, nr.Path...),
				LocalPref:   t.LocalPref(b, nbr),
				LearnedFrom: nbr,
				LearnedRel:  relToNbr,
			}
			if !have || Better(cand, best) {
				best, have = cand, true
			}
		}
		old, had := node.rib[dest]
		switch {
		case have && (!had || !old.Equal(best)):
			node.rib[dest] = best
			return true
		case !have && had:
			delete(node.rib, dest)
			return true
		}
		return false
	}

	for len(live) > 0 {
		// Pick a random live session; pop its head (FIFO per session).
		i := rng.Intn(len(live))
		key := live[i]
		q := sessions[key]
		if len(q) == 0 { // stale liveness entry
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		msg := q[0]
		sessions[key] = q[1:]
		if len(sessions[key]) == 0 {
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		st.MessagesProcessed++

		node := nodes[msg.to]
		in := node.adjIn[msg.from]
		if in == nil {
			in = make(map[int]Route)
			node.adjIn[msg.from] = in
		}
		if msg.withdraw {
			if _, had := in[msg.dest]; !had {
				continue
			}
			delete(in, msg.dest)
		} else {
			if prev, had := in[msg.dest]; had && prev.Equal(msg.route) {
				continue
			}
			in[msg.dest] = msg.route
		}
		if decide(msg.to, msg.dest) {
			enqueueBest(msg.to, msg.dest)
		}
	}

	out := make(map[int]RIB, n)
	for a := 0; a < n; a++ {
		out[a] = nodes[a].rib
	}
	return out, st
}

// RIBsEqual compares two full RIB sets, ignoring fields the distributed
// and centralized engines cannot both know (none today — full equality).
func RIBsEqual(a, b map[int]RIB) bool {
	if len(a) != len(b) {
		return false
	}
	for as, ra := range a {
		rb, ok := b[as]
		if !ok || len(ra) != len(rb) {
			return false
		}
		for d, x := range ra {
			y, ok := rb[d]
			if !ok || !x.Equal(y) {
				return false
			}
		}
	}
	return true
}
