package bgp

import (
	"runtime"
	"sync"

	"sgxnet/internal/topo"
)

// Centralized all-pairs route computation — the inter-domain controller's
// core job (§3.1). A synchronous Jacobi iteration over the AS graph: each
// round, every AS recomputes its best route per destination from its
// neighbors' current bests, subject to export policy and loop detection,
// until a fixpoint. Gao–Rexford relationships plus relationship-respecting
// preferences guarantee a unique stable solution, which the distributed
// simulator (distsim.go) independently converges to.
//
// Because the Jacobi step reads only the previous round's RIBs, the
// per-source computations within a round are independent: ComputeAll
// fans them out across a bounded worker pool and merges the per-source
// results and work counters in source order, so the returned RIBs and
// Stats are bit-identical at any worker count.

// Stats describes the work a computation performed; the controller's
// instruction accounting is driven by these numbers.
type Stats struct {
	// Rounds until fixpoint.
	Rounds int
	// Updates is the number of RIB entry adoptions/changes.
	Updates int
	// Evaluations is the number of candidate routes considered.
	Evaluations int
}

// add folds o into st.
func (st *Stats) add(o Stats) {
	st.Rounds += o.Rounds
	st.Updates += o.Updates
	st.Evaluations += o.Evaluations
}

// ComputeAll computes every AS's RIB, parallelizing across GOMAXPROCS
// workers.
func ComputeAll(t *topo.Topology) (map[int]RIB, Stats) {
	return ComputeAllWorkers(t, 0)
}

// ComputeAllWorkers computes every AS's RIB with the given worker count
// (<= 0 means GOMAXPROCS, 1 forces the serial path). The result is
// identical for every worker count — the parallel/serial equivalence
// tests depend on it.
func ComputeAllWorkers(t *topo.Topology, workers int) (map[int]RIB, Stats) {
	n := t.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	prev := make([]RIB, n)
	var st Stats
	for a := 0; a < n; a++ {
		prev[a] = RIB{a: Route{Dest: a, LearnedFrom: SelfOrigin, LocalPref: 1 << 30}}
		st.Updates++
	}
	next := make([]RIB, n)
	perSrc := make([]Stats, n)
	changedSrc := make([]bool, n)
	for {
		st.Rounds++
		if workers <= 1 {
			for a := 0; a < n; a++ {
				next[a], perSrc[a], changedSrc[a] = computeSource(t, prev, a)
			}
		} else {
			var wg sync.WaitGroup
			var cursor chunkCursor
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						lo, hi, ok := cursor.next(n)
						if !ok {
							return
						}
						for a := lo; a < hi; a++ {
							next[a], perSrc[a], changedSrc[a] = computeSource(t, prev, a)
						}
					}
				}()
			}
			wg.Wait()
		}
		// Deterministic merge: fold per-source counters in source order
		// (integer sums, so any order yields the same totals — the fixed
		// order also keeps future non-commutative merges honest).
		changed := false
		for a := 0; a < n; a++ {
			st.add(perSrc[a])
			changed = changed || changedSrc[a]
		}
		prev, next = next, prev
		if !changed {
			break
		}
	}
	ribs := make(map[int]RIB, n)
	for a := 0; a < n; a++ {
		ribs[a] = prev[a]
	}
	return ribs, st
}

// chunkCursor deals out index ranges to workers. Chunking bounds the
// atomic traffic; which worker gets which chunk never affects results.
type chunkCursor struct {
	mu  sync.Mutex
	off int
}

const sourceChunk = 4

func (c *chunkCursor) next(n int) (lo, hi int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.off >= n {
		return 0, 0, false
	}
	lo = c.off
	hi = lo + sourceChunk
	if hi > n {
		hi = n
	}
	c.off = hi
	return lo, hi, true
}

// computeSource runs one Jacobi step for source a against the previous
// round's RIBs, returning a's next RIB, the work it performed, and
// whether anything changed. It only reads prev and the topology, so
// concurrent calls for distinct sources are race-free.
func computeSource(t *topo.Topology, prev []RIB, a int) (RIB, Stats, bool) {
	n := t.N()
	var st Stats
	changed := false
	next := make(RIB, len(prev[a]))
	next[a] = prev[a][a]
	for dest := 0; dest < n; dest++ {
		if dest == a {
			continue
		}
		var best Route
		haveBest := false
		t.EachNeighbor(a, func(nbr int) {
			nr, ok := prev[nbr][dest]
			if !ok {
				return
			}
			relToNbr, _ := t.Rel(a, nbr)
			// Export decision is taken by the *neighbor*: its
			// relationship toward a is the inverse.
			if !CanExport(nr, relToNbr.Invert()) {
				return
			}
			if nr.Contains(a) || nr.NextHop() == a {
				return // loop
			}
			st.Evaluations++
			cand := Route{
				Dest:        dest,
				Path:        append([]int{nbr}, nr.Path...),
				LocalPref:   t.LocalPref(a, nbr),
				LearnedFrom: nbr,
				LearnedRel:  relToNbr,
			}
			if !haveBest || Better(cand, best) {
				best, haveBest = cand, true
			}
		})
		if haveBest {
			next[dest] = best
			if old, ok := prev[a][dest]; !ok || !old.Equal(best) {
				st.Updates++
				changed = true
			}
		} else if _, had := prev[a][dest]; had {
			st.Updates++
			changed = true
		}
	}
	return next, st, changed
}

// FullReach reports whether every AS has a route to every destination —
// expected for any connected Gao–Rexford topology generated by topo
// (every AS has a chain of providers up to the tier-1 clique).
func FullReach(t *topo.Topology, ribs map[int]RIB) bool {
	for a := 0; a < t.N(); a++ {
		if len(ribs[a]) != t.N() {
			return false
		}
	}
	return true
}
