package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testEPC(frames int) *EPC {
	var key [32]byte
	copy(key[:], "test-mee-key-test-mee-key-test-m")
	return NewEPC(frames, key)
}

func TestEPCAllocReadWrite(t *testing.T) {
	e := testEPC(8)
	idx, err := e.Alloc(1, PageREG, 0x1000, PermR|PermW, []byte("hello enclave"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Read(1, idx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:13], []byte("hello enclave")) {
		t.Fatalf("read back %q", got[:13])
	}
	if err := e.Write(1, idx, []byte("updated")); err != nil {
		t.Fatal(err)
	}
	got, err = e.Read(1, idx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:7], []byte("updated")) {
		t.Fatalf("read back %q", got[:7])
	}
}

func TestEPCCrossEnclaveAccessDenied(t *testing.T) {
	e := testEPC(8)
	idx, err := e.Alloc(1, PageREG, 0, PermR|PermW, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(2, idx); err != ErrEPCAccess {
		t.Fatalf("enclave 2 read of enclave 1 page: err=%v, want ErrEPCAccess", err)
	}
	if err := e.Write(2, idx, []byte("x")); err != ErrEPCAccess {
		t.Fatalf("enclave 2 write: err=%v, want ErrEPCAccess", err)
	}
}

func TestEPCPermissionEnforced(t *testing.T) {
	e := testEPC(8)
	idx, err := e.Alloc(1, PageREG, 0, PermR, []byte("read-only"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Write(1, idx, []byte("x")); err != ErrEPCAccess {
		t.Fatalf("write to r-- page: err=%v, want ErrEPCAccess", err)
	}
}

func TestEPCRawReadSeesCiphertextOnly(t *testing.T) {
	e := testEPC(8)
	secret := []byte("the directory authority signing key")
	idx, err := e.Alloc(1, PageREG, 0, PermR, secret)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := e.ReadRaw(idx)
	if !ok {
		t.Fatal("raw read failed")
	}
	if bytes.Contains(raw, secret) {
		t.Fatal("physical memory inspection revealed enclave plaintext")
	}
}

func TestEPCExhaustion(t *testing.T) {
	e := testEPC(2)
	if _, err := e.Alloc(1, PageREG, 0, PermR, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Alloc(1, PageREG, PageSize, PermR, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Alloc(1, PageREG, 2*PageSize, PermR, nil); err != ErrEPCFull {
		t.Fatalf("err=%v, want ErrEPCFull", err)
	}
}

func TestEPCFreeEnclaveReclaims(t *testing.T) {
	e := testEPC(4)
	for i := 0; i < 3; i++ {
		if _, err := e.Alloc(7, PageREG, uint64(i)*PageSize, PermR, nil); err != nil {
			t.Fatal(err)
		}
	}
	if free := e.FreeCount(); free != 1 {
		t.Fatalf("free=%d, want 1", free)
	}
	if n := e.FreeEnclave(7); n != 3 {
		t.Fatalf("freed %d, want 3", n)
	}
	if free := e.FreeCount(); free != 4 {
		t.Fatalf("free=%d, want 4", free)
	}
}

func TestEPCOversizePageRejected(t *testing.T) {
	e := testEPC(2)
	if _, err := e.Alloc(1, PageREG, 0, PermR, make([]byte, PageSize+1)); err == nil {
		t.Fatal("oversize alloc accepted")
	}
	idx, err := e.Alloc(1, PageREG, 0, PermR|PermW, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Write(1, idx, make([]byte, PageSize+1)); err == nil {
		t.Fatal("oversize write accepted")
	}
}

func TestEPCEntryMetadata(t *testing.T) {
	e := testEPC(2)
	idx, err := e.Alloc(9, PageTCS, 0x42000, PermR|PermW, nil)
	if err != nil {
		t.Fatal(err)
	}
	ent, ok := e.Entry(idx)
	if !ok || ent.EnclaveID != 9 || ent.Type != PageTCS || ent.LinAddr != 0x42000 {
		t.Fatalf("entry = %+v ok=%v", ent, ok)
	}
	if _, ok := e.Entry(99); ok {
		t.Fatal("out-of-range entry reported valid")
	}
}

// Property: seal followed by unseal is the identity for any content, so
// enclaves always read back exactly what they wrote.
func TestEPCRoundTripProperty(t *testing.T) {
	e := testEPC(64)
	var next uint64
	f := func(content []byte) bool {
		if len(content) > PageSize {
			content = content[:PageSize]
		}
		addr := next * PageSize
		next++
		idx, err := e.Alloc(3, PageREG, addr, PermR|PermW, content)
		if err != nil {
			return err == ErrEPCFull // acceptable exhaustion under quick
		}
		got, err := e.Read(3, idx)
		if err != nil {
			return false
		}
		return bytes.Equal(got[:len(content)], content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPageTypeAndPermsString(t *testing.T) {
	if PageSECS.String() != "SECS" || PageTCS.String() != "TCS" || PageREG.String() != "REG" {
		t.Fatal("PageType strings wrong")
	}
	if PageType(9).String() == "" {
		t.Fatal("unknown PageType must still render")
	}
	if got := (PermR | PermX).String(); got != "r-x" {
		t.Fatalf("perms = %q, want r-x", got)
	}
}
