package core

// SampleProbe is the windowed-metrics hook: where Probe reports bare
// occurrence counts, a SampleProbe receives (virtual timestamp, value)
// samples so a time-series layer can bucket them into windows. Like
// Probe it is deliberately structural — one counter method, one gauge
// method — so internal/obs/series.Sampler satisfies it without core
// importing the observability tree.
//
// Timestamps are modeled cycles on whatever virtual clock the wiring
// call supplies (core itself keeps no clock: meters measure work, not
// time-of-day). Implementations must be safe for concurrent use and
// must reduce order-invariantly; a nil SampleProbe is the default and
// costs one pointer check per site.
type SampleProbe interface {
	// CountAt adds n occurrences of the named counter at virtual time t.
	CountAt(name string, t, n uint64)
	// GaugeAt records level v of the named gauge at virtual time t.
	GaugeAt(name string, t, v uint64)
}
