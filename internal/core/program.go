package core

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// A Handler is an enclave entry point: a named function the untrusted
// runtime can invoke with EENTER. The Env gives the handler access to
// trusted services (metering, OCALLs to the host, EREPORT/EGETKEY).
type Handler func(env *Env, arg []byte) ([]byte, error)

// A Program is the code loaded into an enclave. Its identity — and hence
// the enclave's MRENCLAVE — is the canonical byte image produced by Image:
// the program name, version, configuration, and the sorted set of entry
// point names. Two programs differ in measurement iff their images differ;
// a "tampered" build is modelled as a program with a different image
// (reproducing the paper's assumption of deterministic builds, §4).
type Program struct {
	// Name identifies the program (e.g. "tor-or", "interdomain-controller").
	Name string
	// Version participates in the measurement; bumping it models a new
	// release that the community re-verifies.
	Version string
	// Config is build-time configuration baked into the measurement.
	Config []byte
	// Handlers are the enclave's entry points.
	Handlers map[string]Handler
	// Main, if set, runs once at first entry (ECALL "main").
	Main Handler
}

// Image returns the canonical code image measured into MRENCLAVE.
func (p *Program) Image() []byte {
	names := make([]string, 0, len(p.Handlers))
	for n := range p.Handlers {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf []byte
	put := func(b []byte) {
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(b)))
		buf = append(buf, l[:]...)
		buf = append(buf, b...)
	}
	put([]byte("sgxnet-program-v1"))
	put([]byte(p.Name))
	put([]byte(p.Version))
	put(p.Config)
	for _, n := range names {
		put([]byte(n))
	}
	if p.Main != nil {
		put([]byte("main"))
	}
	return buf
}

// Validate reports whether the program is well-formed.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("core: program has no name")
	}
	if len(p.Handlers) == 0 && p.Main == nil {
		return fmt.Errorf("core: program %q has no entry points", p.Name)
	}
	return nil
}
