package core

import (
	"bytes"
	"testing"
)

// FuzzELDU feeds arbitrary bytes to the evicted-page parser. The blob
// an ELDU consumes comes from the untrusted OS, so it is
// attacker-controlled by definition; the invariants are the paging
// threat model's, checked on every input:
//
//   - no panic, ever;
//   - a rejected blob changes nothing — frame accounting, the meter,
//     and the version token are exactly as before, and the genuine
//     blob still reloads afterwards;
//   - an accepted blob is byte-for-byte the genuine latest eviction
//     (MAC under the CPU-held paging key plus the version token leave
//     no other way in), its plaintext survives the round trip, and
//     replaying it immediately fails.
//
// The seal key and eviction nonces are deterministic here, so the
// checked-in corpus under testdata/fuzz/FuzzELDU — the genuine blob
// plus truncated, MAC-flipped, metadata-forged, and version-burned
// variants — stays valid across runs.
func FuzzELDU(f *testing.F) {
	canary := []byte("eldu fuzz canary page")

	// Build the genuine blob once for the seed corpus. fuzzEPC must
	// mirror this setup exactly or the seeds lose their meaning.
	genuine, _, _ := fuzzEPC(f, canary)
	f.Add(append([]byte(nil), genuine.Blob...)) // accepted path
	f.Add(genuine.Blob[:len(genuine.Blob)/2])   // truncated
	flipped := append([]byte(nil), genuine.Blob...)
	flipped[len(flipped)-1] ^= 1 // bit-flipped MAC
	f.Add(flipped)
	forged := append([]byte(nil), genuine.Blob...)
	forged[16] ^= 0xff // forged metadata (owner enclave ID)
	f.Add(forged)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xa5}, evictedBlobLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		genuine, e, m := fuzzEPC(t, canary)
		freeBefore := e.FreeCount()
		tallyBefore := m.Snapshot()

		idx, err := e.ELDU(m, &EvictedPage{Blob: append([]byte(nil), data...)})
		if err != nil {
			// Rejection must be free and leave the EPC untouched.
			if got := e.FreeCount(); got != freeBefore {
				t.Fatalf("failed ELDU moved frame accounting: %d -> %d", freeBefore, got)
			}
			if got := m.Snapshot(); got != tallyBefore {
				t.Fatalf("failed ELDU charged the meter: %+v -> %+v", tallyBefore, got)
			}
			ridx, rerr := e.ELDU(m, genuine)
			if rerr != nil {
				t.Fatalf("genuine blob no longer loads after rejected input: %v", rerr)
			}
			page, rerr := e.Read(7, ridx)
			if rerr != nil || !bytes.Equal(page[:len(canary)], canary) {
				t.Fatalf("page corrupted after rejected input: err=%v content=%q", rerr, page[:len(canary)])
			}
			return
		}

		// Acceptance is only reachable with the genuine bytes.
		if !bytes.Equal(data, genuine.Blob) {
			t.Fatalf("ELDU accepted a non-genuine blob (%d bytes)", len(data))
		}
		page, rerr := e.Read(7, idx)
		if rerr != nil || !bytes.Equal(page[:len(canary)], canary) {
			t.Fatalf("reloaded page lost content: err=%v content=%q", rerr, page[:len(canary)])
		}
		// The version token was consumed: an immediate replay must fail.
		if _, rerr := e.ELDU(m, genuine); rerr != ErrPageVersion {
			t.Fatalf("replay of consumed blob: err=%v, want ErrPageVersion", rerr)
		}
	})
}

// fuzzEPC builds the deterministic fixture every FuzzELDU iteration
// (and the seed corpus) shares: a 4-frame EPC with the test seal key,
// one canary page allocated to enclave 7 at 0x4000 and then evicted.
// Returns the resulting genuine blob, the EPC, and a fresh meter.
func fuzzEPC(tb testing.TB, canary []byte) (*EvictedPage, *EPC, *Meter) {
	tb.Helper()
	e := testEPC(4)
	m := NewMeter()
	idx, err := e.Alloc(7, PageREG, 0x4000, PermR|PermW, canary)
	if err != nil {
		tb.Fatal(err)
	}
	genuine, err := e.EWB(m, idx)
	if err != nil {
		tb.Fatal(err)
	}
	return genuine, e, NewMeter()
}
