package core

import (
	"fmt"
	"sync"
)

// EPC oversubscription. The paper's central resource constraint is that
// the EPC is small: an enclave working set larger than the EPC pays an
// encrypted eviction (EWB) and reload (ELDU) on every capacity miss.
// The Pager is the untrusted OS component that makes oversubscription
// transparent: it sits between enclaves and the EPC, tracks which of
// its managed pages are resident, and on a capacity fault evicts a
// victim under a pluggable replacement policy, reloading evicted pages
// on touch. Every eviction and reload is charged on the *faulting*
// enclave's meter — the tenant whose access forced the paging traffic
// pays for it — which is what lets the multi-tenant sweep attribute
// paging cost per tenant.
//
// The pager manages only pages faulted in through it; enclave
// infrastructure pages (SECS, TCS, measured image) are never victims.
// All decisions are deterministic: CLOCK and LRU by construction,
// random via a seeded xorshift generator, so sweep tallies and paging
// traces are byte-stable across runs and worker counts.

// PageKey names one pager-managed page: an enclave-relative linear
// address within its owning enclave.
type PageKey struct {
	Enclave EnclaveID
	Addr    uint64
}

// VictimPolicy picks which resident page to evict on a capacity fault.
// Implementations are driven under the pager's lock and need no
// internal synchronization; they must be deterministic given the same
// call sequence. The pager guarantees Inserted/Removed pairs bracket a
// page's residency and Touched is only called while resident.
type VictimPolicy interface {
	// Name identifies the policy in tables and traces.
	Name() string
	// Inserted records that k became resident.
	Inserted(k PageKey)
	// Touched records an access to resident page k.
	Touched(k PageKey)
	// Victim returns the page to evict next (false if none resident).
	// The pager follows up with Removed on the returned key.
	Victim() (PageKey, bool)
	// Removed records that k left residency.
	Removed(k PageKey)
}

// --- CLOCK (second chance) — the default ---

type clockEntry struct {
	key PageKey
	ref bool
}

type clockPolicy struct {
	ring []clockEntry
	hand int
	pos  map[PageKey]int
}

// NewClockPolicy returns the CLOCK (second-chance) policy: a ring of
// resident pages with reference bits; the hand sweeps past referenced
// pages (clearing the bit) and evicts the first unreferenced one. The
// standard OS paging compromise between LRU quality and O(1) touches.
func NewClockPolicy() VictimPolicy {
	return &clockPolicy{pos: make(map[PageKey]int)}
}

func (c *clockPolicy) Name() string { return "clock" }

func (c *clockPolicy) Inserted(k PageKey) {
	c.pos[k] = len(c.ring)
	c.ring = append(c.ring, clockEntry{key: k, ref: true})
}

func (c *clockPolicy) Touched(k PageKey) {
	if i, ok := c.pos[k]; ok {
		c.ring[i].ref = true
	}
}

func (c *clockPolicy) Victim() (PageKey, bool) {
	if len(c.ring) == 0 {
		return PageKey{}, false
	}
	for {
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		e := &c.ring[c.hand]
		if e.ref {
			e.ref = false
			c.hand++
			continue
		}
		return e.key, true
	}
}

func (c *clockPolicy) Removed(k PageKey) {
	i, ok := c.pos[k]
	if !ok {
		return
	}
	delete(c.pos, k)
	copy(c.ring[i:], c.ring[i+1:])
	c.ring = c.ring[:len(c.ring)-1]
	for j := i; j < len(c.ring); j++ {
		c.pos[c.ring[j].key] = j
	}
	if c.hand > i {
		c.hand--
	}
}

// --- LRU ---

type lruPolicy struct {
	order []PageKey // front = least recently used
	pos   map[PageKey]int
}

// NewLRUPolicy returns exact least-recently-used replacement — the
// quality ceiling CLOCK approximates, at O(n) per touch here (EPCs in
// the sweep are small; the ablation cares about miss counts, not
// bookkeeping speed).
func NewLRUPolicy() VictimPolicy {
	return &lruPolicy{pos: make(map[PageKey]int)}
}

func (l *lruPolicy) Name() string { return "lru" }

func (l *lruPolicy) Inserted(k PageKey) {
	l.pos[k] = len(l.order)
	l.order = append(l.order, k)
}

func (l *lruPolicy) Touched(k PageKey) {
	i, ok := l.pos[k]
	if !ok || i == len(l.order)-1 {
		return
	}
	copy(l.order[i:], l.order[i+1:])
	l.order[len(l.order)-1] = k
	for j := i; j < len(l.order); j++ {
		l.pos[l.order[j]] = j
	}
}

func (l *lruPolicy) Victim() (PageKey, bool) {
	if len(l.order) == 0 {
		return PageKey{}, false
	}
	return l.order[0], true
}

func (l *lruPolicy) Removed(k PageKey) {
	i, ok := l.pos[k]
	if !ok {
		return
	}
	delete(l.pos, k)
	copy(l.order[i:], l.order[i+1:])
	l.order = l.order[:len(l.order)-1]
	for j := i; j < len(l.order); j++ {
		l.pos[l.order[j]] = j
	}
}

// --- seeded random ---

type randomPolicy struct {
	order []PageKey // insertion order — a deterministic universe to draw from
	pos   map[PageKey]int
	state uint64
}

// NewRandomPolicy returns uniform random replacement driven by a seeded
// xorshift64 generator: the ablation baseline with no recency signal.
// The same seed and fault sequence always evict the same victims, so
// random-policy sweep points stay byte-reproducible.
func NewRandomPolicy(seed uint64) VictimPolicy {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &randomPolicy{pos: make(map[PageKey]int), state: seed}
}

func (r *randomPolicy) Name() string { return "random" }

func (r *randomPolicy) Inserted(k PageKey) {
	r.pos[k] = len(r.order)
	r.order = append(r.order, k)
}

func (r *randomPolicy) Touched(PageKey) {}

func (r *randomPolicy) Victim() (PageKey, bool) {
	if len(r.order) == 0 {
		return PageKey{}, false
	}
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.order[r.state%uint64(len(r.order))], true
}

func (r *randomPolicy) Removed(k PageKey) {
	i, ok := r.pos[k]
	if !ok {
		return
	}
	delete(r.pos, k)
	copy(r.order[i:], r.order[i+1:])
	r.order = r.order[:len(r.order)-1]
	for j := i; j < len(r.order); j++ {
		r.pos[r.order[j]] = j
	}
}

// PagerStats is a snapshot of one pager's (or one enclave's) paging
// counters. Touches = Hits + Faults; Faults = Reloads + DemandZero.
type PagerStats struct {
	Hits       uint64 // accesses to resident pages (free)
	Faults     uint64 // accesses that missed the EPC
	Reloads    uint64 // faults served by ELDU of an evicted page
	DemandZero uint64 // faults served by allocating a fresh zero page
	Evictions  uint64 // victims pushed out via EWB to make room
	Resident   int    // pager-managed pages currently in the EPC
	Peak       int    // high-water mark of Resident
}

type pagerResident struct {
	idx int // EPC frame
}

// Pager provides transparent EPC oversubscription for the data pages of
// one platform's enclaves. Safe for concurrent use: tenants fault
// through a single shared pager.
type Pager struct {
	mu       sync.Mutex
	epc      *EPC
	policy   VictimPolicy
	resident map[PageKey]pagerResident
	evicted  map[PageKey]*EvictedPage // the untrusted OS's blob store
	stats    PagerStats
	byTenant map[EnclaveID]*PagerStats

	// Windowed-metrics hook (nil = off): every fault/evict/reload is
	// sampled at the caller-wired virtual clock, pager-wide and per
	// tenant, plus a residency gauge — the "EPC residency collapses when
	// the antagonist arrives" view the lifetime counters cannot give.
	series      SampleProbe
	seriesClock func() uint64
	tenantNames map[EnclaveID]*pagerTenantNames
}

// pagerTenantNames caches the per-tenant series names so the fault path
// does not format strings per event.
type pagerTenantNames struct {
	fault, evict, reload string
}

// NewPager builds a pager over the given EPC. A nil policy selects
// CLOCK, the default.
func NewPager(epc *EPC, policy VictimPolicy) *Pager {
	if policy == nil {
		policy = NewClockPolicy()
	}
	return &Pager{
		epc:      epc,
		policy:   policy,
		resident: make(map[PageKey]pagerResident),
		evicted:  make(map[PageKey]*EvictedPage),
		byTenant: make(map[EnclaveID]*PagerStats),
	}
}

// Policy returns the active replacement policy.
func (pg *Pager) Policy() VictimPolicy { return pg.policy }

// SetSeries attaches a windowed-metrics probe, stamping samples from
// clock (a virtual cycle clock owned by the caller — typically the load
// engine's request clock or an accumulated-meter reading; the pager
// itself keeps no notion of time). Pass nil to detach. Call before
// driving traffic; the hook is read under pg.mu.
func (pg *Pager) SetSeries(sp SampleProbe, clock func() uint64) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	pg.series = sp
	pg.seriesClock = clock
	if sp != nil && pg.tenantNames == nil {
		pg.tenantNames = make(map[EnclaveID]*pagerTenantNames)
	}
}

// seriesTenant returns the cached per-tenant series names. Caller holds
// pg.mu and has checked pg.series != nil.
func (pg *Pager) seriesTenant(id EnclaveID) *pagerTenantNames {
	tn := pg.tenantNames[id]
	if tn == nil {
		suffix := fmt.Sprintf(".tenant%d", id)
		tn = &pagerTenantNames{
			fault:  "pager.fault" + suffix,
			evict:  "pager.evict" + suffix,
			reload: "pager.reload" + suffix,
		}
		pg.tenantNames[id] = tn
	}
	return tn
}

// ErrPagerNoVictim is returned when the EPC is full and the pager
// manages no resident page it could evict (the EPC is exhausted by
// unmanaged enclave infrastructure pages).
var ErrPagerNoVictim = fmt.Errorf("core: pager: EPC full and no evictable page resident")

// Touch faults the page (owner, addr) into residency if needed and
// records the access with the replacement policy. It returns true when
// the access faulted (the page was not resident). Fault handling — the
// AEX/ERESUME round trip, any eviction to make room, and the reload or
// demand-zero allocation — is charged on m, the faulting enclave's
// meter.
func (pg *Pager) Touch(m *Meter, owner EnclaveID, addr uint64) (bool, error) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	k := PageKey{Enclave: owner, Addr: addr}
	if _, ok := pg.resident[k]; ok {
		pg.policy.Touched(k)
		pg.stats.Hits++
		pg.tenant(owner).Hits++
		pg.epc.observe(KindPagerHit, 1)
		if pg.series != nil {
			pg.series.CountAt("pager.hit", pg.seriesClock(), 1)
		}
		return false, nil
	}
	if err := pg.fault(m, k); err != nil {
		return true, err
	}
	return true, nil
}

// Read faults the page in (if needed) and returns its plaintext on
// behalf of the owning enclave.
func (pg *Pager) Read(m *Meter, owner EnclaveID, addr uint64) ([]byte, error) {
	if _, err := pg.Touch(m, owner, addr); err != nil {
		return nil, err
	}
	pg.mu.Lock()
	defer pg.mu.Unlock()
	r, ok := pg.resident[PageKey{Enclave: owner, Addr: addr}]
	if !ok {
		return nil, ErrEPCAccess
	}
	return pg.epc.Read(owner, r.idx)
}

// Write faults the page in (if needed) and replaces its plaintext on
// behalf of the owning enclave.
func (pg *Pager) Write(m *Meter, owner EnclaveID, addr uint64, data []byte) error {
	if _, err := pg.Touch(m, owner, addr); err != nil {
		return err
	}
	pg.mu.Lock()
	defer pg.mu.Unlock()
	r, ok := pg.resident[PageKey{Enclave: owner, Addr: addr}]
	if !ok {
		return ErrEPCAccess
	}
	return pg.epc.Write(owner, r.idx, data)
}

// fault brings k into residency. Caller holds pg.mu.
func (pg *Pager) fault(m *Meter, k PageKey) error {
	pg.stats.Faults++
	ts := pg.tenant(k.Enclave)
	ts.Faults++
	pg.epc.observe(KindPagerFault, 1)
	var now uint64
	var tn *pagerTenantNames
	if pg.series != nil {
		now = pg.seriesClock()
		tn = pg.seriesTenant(k.Enclave)
		pg.series.CountAt("pager.fault", now, 1)
		pg.series.CountAt(tn.fault, now, 1)
	}
	// The faulting access itself: asynchronous exit out of the enclave,
	// OS fault handler, ERESUME back in.
	m.ChargeSGX(SGXInstPageFault)
	m.ChargeNormal(CostPageFault)

	// Make room. EWB appends the freed frame under the EPC's own lock,
	// and nothing else allocates between our eviction and the reload
	// below while pg.mu is held by us — other pager tenants serialize on
	// it. (Non-pager allocations racing the gap surface as ErrEPCFull
	// from Alloc/ELDU below and propagate to the caller.)
	for pg.epc.FreeCount() == 0 {
		vk, ok := pg.policy.Victim()
		if !ok {
			return ErrPagerNoVictim
		}
		vr := pg.resident[vk]
		ev, err := pg.epc.EWB(m, vr.idx)
		if err != nil {
			return fmt.Errorf("core: pager evict %v: %w", vk, err)
		}
		pg.policy.Removed(vk)
		delete(pg.resident, vk)
		pg.evicted[vk] = ev
		pg.stats.Evictions++
		pg.stats.Resident--
		ts.Evictions++
		pg.epc.observe(KindPagerEvict, 1)
		if pg.series != nil {
			// Attributed like PagerStats: to the faulting tenant whose
			// access forced the eviction, not the victim page's owner.
			pg.series.CountAt("pager.evict", now, 1)
			pg.series.CountAt(tn.evict, now, 1)
		}
	}

	if ev, ok := pg.evicted[k]; ok {
		idx, err := pg.epc.ELDU(m, ev)
		if err != nil {
			return fmt.Errorf("core: pager reload %v: %w", k, err)
		}
		delete(pg.evicted, k)
		pg.resident[k] = pagerResident{idx: idx}
		pg.stats.Reloads++
		ts.Reloads++
		pg.epc.observe(KindPagerReload, 1)
		if pg.series != nil {
			pg.series.CountAt("pager.reload", now, 1)
			pg.series.CountAt(tn.reload, now, 1)
		}
	} else {
		// First touch: demand-zero allocation of a fresh data page,
		// charged like the EADD it models.
		idx, err := pg.epc.Alloc(k.Enclave, PageREG, k.Addr, PermR|PermW, nil)
		if err != nil {
			return fmt.Errorf("core: pager demand-zero %v: %w", k, err)
		}
		m.ChargeNormal(CostPageAdd)
		pg.resident[k] = pagerResident{idx: idx}
		pg.stats.DemandZero++
		ts.DemandZero++
		pg.epc.observe(KindPagerDemandZero, 1)
	}
	pg.policy.Inserted(k)
	pg.stats.Resident++
	if pg.stats.Resident > pg.stats.Peak {
		pg.stats.Peak = pg.stats.Resident
	}
	if pg.series != nil {
		pg.series.GaugeAt("pager.resident", now, uint64(pg.stats.Resident))
	}
	return nil
}

// tenant returns the per-enclave stats record, creating it on first
// use. Caller holds pg.mu.
func (pg *Pager) tenant(id EnclaveID) *PagerStats {
	ts := pg.byTenant[id]
	if ts == nil {
		ts = &PagerStats{}
		pg.byTenant[id] = ts
	}
	return ts
}

// Stats returns a snapshot of the pager-wide counters.
func (pg *Pager) Stats() PagerStats {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	return pg.stats
}

// TenantStats returns the counters attributed to one enclave. Resident
// and Peak are pager-wide quantities and stay zero here.
func (pg *Pager) TenantStats(id EnclaveID) PagerStats {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if ts := pg.byTenant[id]; ts != nil {
		return *ts
	}
	return PagerStats{}
}

// Release drops every page (resident or evicted) belonging to the
// enclave: frames are freed without eviction, blobs are discarded. The
// pager-side half of enclave teardown (EREMOVE frees the frames the
// enclave still holds; Release forgets the pager's bookkeeping).
func (pg *Pager) Release(id EnclaveID) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	for k := range pg.resident {
		if k.Enclave == id {
			pg.policy.Removed(k)
			delete(pg.resident, k)
			pg.stats.Resident--
		}
	}
	for k := range pg.evicted {
		if k.Enclave == id {
			delete(pg.evicted, k)
		}
	}
	pg.epc.FreeEnclave(id)
}
