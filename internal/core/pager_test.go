package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// touchSeq runs a cyclic scan of ws pages per pass through a fresh
// pager and returns its stats.
func touchSeq(t *testing.T, frames, ws, passes int, pol VictimPolicy) PagerStats {
	t.Helper()
	pg := NewPager(testEPC(frames), pol)
	m := NewMeter()
	for p := 0; p < passes; p++ {
		for i := 0; i < ws; i++ {
			if _, err := pg.Touch(m, 1, uint64(i)*PageSize); err != nil {
				t.Fatal(err)
			}
		}
	}
	return pg.Stats()
}

func TestPagerOversubscriptionRoundTrip(t *testing.T) {
	// 4 frames hosting a 10-page working set: content must survive any
	// number of evictions and reloads.
	pg := NewPager(testEPC(4), nil)
	m := NewMeter()
	const ws = 10
	for i := 0; i < ws; i++ {
		if err := pg.Write(m, 1, uint64(i)*PageSize, []byte(fmt.Sprintf("page-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := ws - 1; i >= 0; i-- {
		got, err := pg.Read(m, 1, uint64(i)*PageSize)
		if err != nil {
			t.Fatal(err)
		}
		want := []byte(fmt.Sprintf("page-%d", i))
		if !bytes.Equal(got[:len(want)], want) {
			t.Fatalf("page %d: %q", i, got[:len(want)])
		}
	}
	st := pg.Stats()
	if st.DemandZero != ws {
		t.Fatalf("demand-zero %d, want %d", st.DemandZero, ws)
	}
	if st.Faults != st.Reloads+st.DemandZero {
		t.Fatalf("fault identity broken: %+v", st)
	}
	if st.Resident != 4 || st.Peak != 4 {
		t.Fatalf("residency %d/%d, want 4/4", st.Resident, st.Peak)
	}
	if st.Evictions == 0 || st.Reloads == 0 {
		t.Fatalf("oversubscribed scan never paged: %+v", st)
	}
}

func TestPagerChargesFaultingTenant(t *testing.T) {
	pg := NewPager(testEPC(2), nil)
	mA, mB := NewMeter(), NewMeter()
	// Tenant A faults 3 pages through a 2-frame EPC; tenant B never
	// touches anything.
	for i := 0; i < 3; i++ {
		if _, err := pg.Touch(mA, 1, uint64(i)*PageSize); err != nil {
			t.Fatal(err)
		}
	}
	st := pg.TenantStats(1)
	wantNormal := st.Faults*CostPageFault + st.Evictions*CostPageEvict +
		st.Reloads*CostPageLoad + st.DemandZero*CostPageAdd
	if got := mA.Normal(); got != wantNormal {
		t.Fatalf("tenant A charged %d normal, want %d (%+v)", got, wantNormal, st)
	}
	if got := mA.SGX(); got != st.Faults*SGXInstPageFault {
		t.Fatalf("tenant A charged %d SGX(U), want %d", got, st.Faults*SGXInstPageFault)
	}
	if mB.Normal() != 0 || mB.SGX() != 0 {
		t.Fatal("idle tenant was charged")
	}
}

func TestPagerPoliciesDeterministicAndDistinct(t *testing.T) {
	// A cyclic scan with ws > frames is the classic LRU worst case:
	// every touch after warm-up faults. CLOCK degenerates the same way;
	// seeded random keeps some pages by luck.
	const frames, ws, passes = 4, 6, 5
	for _, mk := range []func() VictimPolicy{
		NewClockPolicy,
		NewLRUPolicy,
		func() VictimPolicy { return NewRandomPolicy(42) },
	} {
		a := touchSeq(t, frames, ws, passes, mk())
		b := touchSeq(t, frames, ws, passes, mk())
		if a != b {
			t.Fatalf("%s: identical runs diverged: %+v vs %+v", mk().Name(), a, b)
		}
	}
	lru := touchSeq(t, frames, ws, passes, NewLRUPolicy())
	if got, want := lru.Faults, uint64(ws*passes); got != want {
		t.Fatalf("LRU cyclic-scan faults %d, want every touch (%d) to miss", got, want)
	}
	rnd := touchSeq(t, frames, ws, passes, NewRandomPolicy(42))
	if rnd.Hits == 0 {
		t.Fatal("random policy never got lucky on a cyclic scan")
	}
}

func TestPagerNeverEvictsUnmanagedPages(t *testing.T) {
	e := testEPC(3)
	// One unmanaged infrastructure page (e.g. a TCS) occupies a frame.
	infra, err := e.Alloc(9, PageTCS, 0, PermR, []byte("TCS"))
	if err != nil {
		t.Fatal(err)
	}
	pg := NewPager(e, nil)
	m := NewMeter()
	for i := 0; i < 6; i++ {
		if _, err := pg.Touch(m, 1, uint64(i)*PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if ent, ok := e.Entry(infra); !ok || ent.Type != PageTCS {
		t.Fatal("pager evicted an unmanaged page")
	}
}

func TestPagerNoVictim(t *testing.T) {
	e := testEPC(1)
	if _, err := e.Alloc(9, PageTCS, 0, PermR, nil); err != nil {
		t.Fatal(err)
	}
	pg := NewPager(e, nil)
	if _, err := pg.Touch(NewMeter(), 1, 0); err != ErrPagerNoVictim {
		t.Fatalf("got %v, want ErrPagerNoVictim", err)
	}
}

func TestPagerRelease(t *testing.T) {
	pg := NewPager(testEPC(2), nil)
	m := NewMeter()
	for i := 0; i < 4; i++ {
		if _, err := pg.Touch(m, 1, uint64(i)*PageSize); err != nil {
			t.Fatal(err)
		}
	}
	pg.Release(1)
	st := pg.Stats()
	if st.Resident != 0 {
		t.Fatalf("resident %d after release", st.Resident)
	}
	// The enclave's pages are gone for good: a re-touch is a fresh
	// demand-zero fault, not a reload of stale state.
	before := pg.Stats().DemandZero
	if _, err := pg.Touch(m, 1, 0); err != nil {
		t.Fatal(err)
	}
	if pg.Stats().DemandZero != before+1 {
		t.Fatal("released page reloaded instead of demand-zeroed")
	}
}

// TestPagerConcurrentTenants drives several tenants faulting through
// one shared pager from separate goroutines. Run under -race in CI.
// With concurrent tenants the interleaving — and so the exact
// fault/evict counts — is scheduling-dependent; the test checks the
// invariants that must hold under every interleaving.
func TestPagerConcurrentTenants(t *testing.T) {
	const tenants, ws, passes, frames = 4, 8, 10, 16
	e := testEPC(frames)
	pg := NewPager(e, nil)
	meters := make([]*Meter, tenants)
	var wg sync.WaitGroup
	errs := make([]error, tenants)
	for tn := 0; tn < tenants; tn++ {
		meters[tn] = NewMeter()
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			owner := EnclaveID(tn + 1)
			for p := 0; p < passes; p++ {
				for i := 0; i < ws; i++ {
					if _, err := pg.Touch(meters[tn], owner, uint64(i)*PageSize); err != nil {
						errs[tn] = err
						return
					}
				}
			}
		}(tn)
	}
	wg.Wait()
	for tn, err := range errs {
		if err != nil {
			t.Fatalf("tenant %d: %v", tn, err)
		}
	}
	st := pg.Stats()
	if st.Hits+st.Faults != tenants*ws*passes {
		t.Fatalf("touch count %d, want %d", st.Hits+st.Faults, tenants*ws*passes)
	}
	if st.Faults != st.Reloads+st.DemandZero {
		t.Fatalf("fault identity broken: %+v", st)
	}
	if st.Resident > frames || st.Peak > frames {
		t.Fatalf("residency exceeds EPC: %+v", st)
	}
	if e.FreeCount()+st.Resident != frames {
		t.Fatalf("frame accounting broken: free=%d resident=%d frames=%d", e.FreeCount(), st.Resident, frames)
	}
	// Per-tenant charges reconcile with per-tenant stats.
	for tn := 0; tn < tenants; tn++ {
		ts := pg.TenantStats(EnclaveID(tn + 1))
		want := ts.Faults*CostPageFault + ts.Evictions*CostPageEvict +
			ts.Reloads*CostPageLoad + ts.DemandZero*CostPageAdd
		if got := meters[tn].Normal(); got != want {
			t.Fatalf("tenant %d charged %d, stats say %d", tn, got, want)
		}
	}
}
