package core

import "sync/atomic"

// Observability hook. A Probe receives fine-grained notifications about
// the modelled SGX instruction stream and platform lifecycle events —
// which ENCLU leaf ran, how many EPC pages were added, when a page was
// evicted — so a metrics layer can explain *where* a Meter's totals came
// from. The Meter itself stays the single source of truth for the
// paper's tables; probes only decompose, never charge.
//
// The interface is deliberately structural (one method) so that
// observability packages can satisfy it without core importing them;
// internal/obs.Registry is the canonical implementation.
//
// Probes must be safe for concurrent use. A nil probe (the default) is
// free: every call site is a single atomic load and a branch, which is
// what keeps the tracing-disabled benchmark budget (<2% on
// BenchmarkFullSweep) honest.

// Probe observes named occurrences: kind is a stable dotted name (e.g.
// "sgx.instr.EENTER", "epc.ewb", "enclave.alloc"), n the occurrence
// count being reported.
type Probe interface {
	Observe(kind string, n uint64)
}

// Stable kind names reported by the platform. Instruction kinds carry
// the "sgx.instr." prefix so a metrics consumer can sum the SGX(U)
// stream by leaf function.
const (
	KindEENTER  = "sgx.instr.EENTER"
	KindEEXIT   = "sgx.instr.EEXIT"
	KindERESUME = "sgx.instr.ERESUME"
	KindEGETKEY = "sgx.instr.EGETKEY"
	KindEREPORT = "sgx.instr.EREPORT"
	KindECREATE = "sgx.instr.ECREATE"
	KindEADD    = "sgx.instr.EADD"
	KindEEXTEND = "sgx.instr.EEXTEND"
	KindEINIT   = "sgx.instr.EINIT"
	KindEWB     = "sgx.instr.EWB"
	KindELDU    = "sgx.instr.ELDU"

	KindEnclaveCall  = "enclave.call"
	KindEnclaveOCall = "enclave.ocall"
	KindEnclaveAlloc = "enclave.alloc"
	KindSeal         = "enclave.seal"
	KindUnseal       = "enclave.unseal"
	KindPageAdd      = "epc.page_add"
	KindPageEvict    = "epc.ewb"
	KindPageLoad     = "epc.eldu"

	// Pager events (EPC oversubscription layer). Fault/hit decompose
	// every pager access; evict/reload/demand_zero decompose how faults
	// were served. Counter identities a metrics consumer can check:
	// pager.fault = pager.reload + pager.demand_zero, and pager.evict ≤
	// pager.fault.
	KindPagerFault      = "pager.fault"
	KindPagerHit        = "pager.hit"
	KindPagerEvict      = "pager.evict"
	KindPagerReload     = "pager.reload"
	KindPagerDemandZero = "pager.demand_zero"
)

// probeHolder wraps a Probe so a nil interface and an absent probe look
// identical through an atomic.Pointer.
type probeHolder struct{ p Probe }

// defaultProbe is inherited by platforms at creation time, so a single
// SetDefaultProbe call before a scenario runs covers every platform the
// scenario builds — the eval rigs construct platforms internally and
// need no per-rig wiring. Set it before creating platforms; it does not
// retroactively attach to existing ones (use Platform.SetProbe there).
var defaultProbe atomic.Pointer[probeHolder]

// SetDefaultProbe installs the process-wide probe that platforms
// created from now on inherit. Pass nil to clear it. Intended for CLI
// entry points and serial tests, not for concurrent scenario setup.
func SetDefaultProbe(pr Probe) {
	if pr == nil {
		defaultProbe.Store(nil)
		return
	}
	defaultProbe.Store(&probeHolder{p: pr})
}

// SetProbe installs (or, with nil, removes) the platform's probe. The
// probe also covers the platform's EPC paging events. Safe to call
// concurrently with running enclaves; notifications race only against
// each other, never against meter charges.
func (p *Platform) SetProbe(pr Probe) {
	if pr == nil {
		p.probe.Store(nil)
		p.epc.probe.Store(nil)
		return
	}
	h := &probeHolder{p: pr}
	p.probe.Store(h)
	p.epc.probe.Store(h)
}

// Probe returns the platform's installed probe, or nil. Subsystems
// layered above core (e.g. internal/xcall's switchless rings) use this
// to report their own kinds through the same stream that carries the
// platform's instruction decomposition.
func (p *Platform) Probe() Probe {
	if h := p.probe.Load(); h != nil {
		return h.p
	}
	return nil
}

// observe notifies the installed probe, if any.
func (p *Platform) observe(kind string, n uint64) {
	if h := p.probe.Load(); h != nil {
		h.p.Observe(kind, n)
	}
}

// observe notifies the EPC's probe (shared with the owning platform).
func (e *EPC) observe(kind string, n uint64) {
	if h := e.probe.Load(); h != nil {
		h.p.Observe(kind, n)
	}
}
