package core

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// Sealed storage: enclaves persist state across restarts by encrypting
// it under an EGETKEY-derived sealing key. MRSIGNER-bound sealing (the
// default here, as in most SGX software) lets any enclave from the same
// vendor unseal — e.g. an upgraded directory authority build reading the
// previous version's relay list — while MRENCLAVE-bound sealing restricts
// unsealing to the identical build.

// SealedBlob layout: nonce(12) ‖ ciphertext ‖ HMAC-SHA256 tag(32).
const sealOverhead = 12 + 32

// ErrUnseal reports a failed unseal (wrong key, tampering, truncation).
var ErrUnseal = errors.New("core: unseal failed")

// SealData encrypts data under the key named by name (KeySeal or
// KeySealEnclave), binding it to this platform and the enclave's signer
// or measurement. Charges the EGETKEY plus symmetric costs.
func (env *Env) SealData(name KeyName, data []byte) ([]byte, error) {
	if name != KeySeal && name != KeySealEnclave {
		return nil, fmt.Errorf("core: SealData: key %q is not a sealing key", name)
	}
	key, err := env.GetKey(name)
	if err != nil {
		return nil, err
	}
	env.ChargeNormal(CostAESKeySchedule + uint64(len(data))*CostAESBlockPerByte + CostHMAC)
	env.e.plat.observe(KindSeal, 1)
	block, err := aes.NewCipher(key[:16])
	if err != nil {
		return nil, err
	}
	var nonce [12]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, err
	}
	out := make([]byte, 12+len(data), 12+len(data)+32)
	copy(out[:12], nonce[:])
	var iv [16]byte
	copy(iv[:], nonce[:])
	cipher.NewCTR(block, iv[:]).XORKeyStream(out[12:], data)
	mac := hmac.New(sha256.New, key[16:])
	mac.Write(out)
	return mac.Sum(out), nil
}

// UnsealData decrypts a sealed blob. It fails for blobs sealed by a
// different signer/measurement (per key name), on a different platform,
// or tampered with in untrusted storage.
func (env *Env) UnsealData(name KeyName, blob []byte) ([]byte, error) {
	if name != KeySeal && name != KeySealEnclave {
		return nil, fmt.Errorf("core: UnsealData: key %q is not a sealing key", name)
	}
	if len(blob) < sealOverhead {
		return nil, ErrUnseal
	}
	key, err := env.GetKey(name)
	if err != nil {
		return nil, err
	}
	env.ChargeNormal(CostAESKeySchedule + uint64(len(blob))*CostAESBlockPerByte + CostHMAC)
	env.e.plat.observe(KindUnseal, 1)
	body, tag := blob[:len(blob)-32], blob[len(blob)-32:]
	mac := hmac.New(sha256.New, key[16:])
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), tag) {
		return nil, ErrUnseal
	}
	block, err := aes.NewCipher(key[:16])
	if err != nil {
		return nil, err
	}
	var iv [16]byte
	copy(iv[:], body[:12])
	out := make([]byte, len(body)-12)
	cipher.NewCTR(block, iv[:]).XORKeyStream(out, body[12:])
	return out, nil
}
