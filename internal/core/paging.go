package core

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// EPC paging (EWB / ELDU): the EPC is small, so the untrusted OS may
// evict enclave pages to ordinary memory. The hardware guarantees the
// paper's threat model holds anyway: evicted pages leave the EPC
// encrypted and MACed under a CPU-held paging key, and a per-eviction
// version token retained inside the CPU defeats replay — the OS cannot
// feed an enclave a stale copy of its own page (rollback protection).

// EvictedPage is the opaque blob the OS stores after EWB. Everything in
// it is ciphertext or integrity-protected metadata.
type EvictedPage struct {
	Blob []byte
}

// Cost of one page eviction/reload: page-sized AES plus MAC.
const (
	CostPageEvict = PageSize*CostAESBlockPerByte + CostHMAC
	CostPageLoad  = PageSize*CostAESBlockPerByte + CostHMAC
)

// evictedBlobLen is the exact wire size of an EWB blob:
// nonce(16) ‖ metadata(18) ‖ ciphertext(PageSize) ‖ HMAC-SHA256(32).
const evictedBlobLen = 16 + 18 + PageSize + 32

// ErrPageVersion is returned by ELDU for replayed or unknown evicted
// pages.
var ErrPageVersion = errors.New("core: evicted-page version check failed (replay or unknown page)")

type versionKey struct {
	owner EnclaveID
	addr  uint64
}

// EWB evicts a frame: the plaintext page is re-encrypted under the
// paging key with a deterministic per-eviction nonce, its EPCM metadata
// is embedded, a version token is retained in the CPU, and the frame is
// freed. The returned blob belongs to the untrusted OS.
//
// The meter is charged — and the EWB probe kinds observed — only after
// the request validates (frame in range, valid, not a SECS page): a
// rejected eviction costs the platform nothing, so failed-path attempts
// cannot skew the tables' tallies or probe coverage.
func (e *EPC) EWB(m *Meter, idx int) (*EvictedPage, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if idx < 0 || idx >= len(e.frames) || !e.epcm[idx].Valid {
		return nil, ErrEPCAccess
	}
	ent := e.epcm[idx]
	if ent.Type == PageSECS {
		return nil, fmt.Errorf("core: EWB: SECS pages are not evictable here")
	}
	m.ChargeNormal(CostPageEvict)
	if h := e.probe.Load(); h != nil {
		h.p.Observe(KindEWB, 1)
		h.p.Observe(KindPageEvict, 1)
	}
	// Recover plaintext from the sealed frame.
	page := make([]byte, PageSize)
	copy(page, e.frames[idx])
	e.seal(idx, page)

	// Deterministic nonce: derived from the platform's paging key and a
	// per-(enclave, address) eviction counter. Distinct evictions of the
	// same page get distinct nonces (the counter), distinct pages get
	// distinct nonces (the address/owner), and two platforms built from
	// the same seed produce byte-identical blobs — the determinism
	// contract the pager traces and sweep goldens rely on. crypto/rand
	// here would be equally safe but nondeterministic across runs.
	pk := e.pagingKey()
	if e.evictSeq == nil {
		e.evictSeq = make(map[versionKey]uint64)
	}
	vk := versionKey{ent.EnclaveID, ent.LinAddr}
	seq := e.evictSeq[vk]
	e.evictSeq[vk] = seq + 1
	nonce := e.evictionNonce(pk, ent.EnclaveID, ent.LinAddr, seq)

	block, err := aes.NewCipher(pk[:16])
	if err != nil {
		return nil, err
	}
	meta := make([]byte, 18)
	binary.LittleEndian.PutUint64(meta[:8], uint64(ent.EnclaveID))
	binary.LittleEndian.PutUint64(meta[8:16], ent.LinAddr)
	meta[16] = byte(ent.Type)
	meta[17] = byte(ent.Perms)

	blob := make([]byte, 0, evictedBlobLen)
	blob = append(blob, nonce[:]...)
	blob = append(blob, meta...)
	ct := make([]byte, PageSize)
	cipher.NewCTR(block, nonce[:]).XORKeyStream(ct, page)
	blob = append(blob, ct...)
	mac := hmac.New(sha256.New, pk[16:])
	mac.Write(blob)
	blob = mac.Sum(blob)

	// Version token: the CPU remembers the MAC of the latest eviction of
	// this (enclave, address); ELDU consumes it.
	if e.versions == nil {
		e.versions = make(map[versionKey][32]byte)
	}
	var tok [32]byte
	copy(tok[:], blob[len(blob)-32:])
	e.versions[vk] = tok

	e.epcm[idx] = EPCMEntry{}
	e.frames[idx] = nil
	e.free = append(e.free, idx)
	return &EvictedPage{Blob: blob}, nil
}

// evictionNonce derives the CTR nonce for one eviction of (owner, addr).
// Caller holds e.mu (or the EPC is otherwise quiescent).
func (e *EPC) evictionNonce(pk [32]byte, owner EnclaveID, addr, seq uint64) [16]byte {
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(owner))
	binary.LittleEndian.PutUint64(buf[8:16], addr)
	binary.LittleEndian.PutUint64(buf[16:24], seq)
	mac := hmac.New(sha256.New, pk[:])
	mac.Write([]byte("sgxnet-ewb-nonce"))
	mac.Write(buf[:])
	var nonce [16]byte
	copy(nonce[:], mac.Sum(nil))
	return nonce
}

// ELDU reloads an evicted page into a free frame, verifying integrity
// and the version token (each eviction loads back exactly once, and only
// its latest version).
//
// Ordering matters twice here. The version token is consumed only after
// a destination frame is secured: a reload attempted against a full EPC
// fails with ErrEPCFull but leaves the token — and therefore the page —
// intact, so the OS can evict something else and retry. And the meter
// charge / probe observation happen only after every validation passes:
// a malformed blob, forged metadata, or replayed token costs nothing
// and reports nothing, keeping failed-path tallies pinned at zero.
func (e *EPC) ELDU(m *Meter, ep *EvictedPage) (int, error) {
	if ep == nil || len(ep.Blob) != evictedBlobLen {
		return 0, ErrPageVersion
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	pk := e.pagingKey()
	body, tag := ep.Blob[:len(ep.Blob)-32], ep.Blob[len(ep.Blob)-32:]
	mac := hmac.New(sha256.New, pk[16:])
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), tag) {
		return 0, ErrPageVersion
	}
	meta := body[16 : 16+18]
	owner := EnclaveID(binary.LittleEndian.Uint64(meta[:8]))
	addr := binary.LittleEndian.Uint64(meta[8:16])
	key := versionKey{owner, addr}
	var tok [32]byte
	copy(tok[:], tag)
	if cur, ok := e.versions[key]; !ok || cur != tok {
		return 0, ErrPageVersion
	}
	if len(e.free) == 0 {
		return 0, ErrEPCFull
	}
	m.ChargeNormal(CostPageLoad)
	if h := e.probe.Load(); h != nil {
		h.p.Observe(KindELDU, 1)
		h.p.Observe(KindPageLoad, 1)
	}
	delete(e.versions, key)

	block, err := aes.NewCipher(pk[:16])
	if err != nil {
		return 0, err
	}
	var nonce [16]byte
	copy(nonce[:], body[:16])
	page := make([]byte, PageSize)
	cipher.NewCTR(block, nonce[:]).XORKeyStream(page, body[16+18:])

	idx := e.free[len(e.free)-1]
	e.free = e.free[:len(e.free)-1]
	e.seal(idx, page)
	e.frames[idx] = page
	e.epcm[idx] = EPCMEntry{
		Valid:     true,
		Type:      PageType(meta[16]),
		EnclaveID: owner,
		LinAddr:   addr,
		Perms:     PagePerms(meta[17]),
	}
	return idx, nil
}

// pagingKey derives the EWB encryption/MAC key from the MEE key.
func (e *EPC) pagingKey() [32]byte {
	h := sha256.New()
	h.Write([]byte("sgxnet-paging-key"))
	h.Write(e.sealKey[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
