package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the SGX enclave page size.
const PageSize = 4096

// PageType identifies what an EPC page holds, mirroring the SGX PT_* types.
type PageType uint8

const (
	// PageSECS holds an enclave's SGX Enclave Control Structure.
	PageSECS PageType = iota
	// PageTCS holds a Thread Control Structure (an enclave entry point).
	PageTCS
	// PageREG holds regular enclave code or data.
	PageREG
)

func (t PageType) String() string {
	switch t {
	case PageSECS:
		return "SECS"
	case PageTCS:
		return "TCS"
	case PageREG:
		return "REG"
	default:
		return fmt.Sprintf("PageType(%d)", uint8(t))
	}
}

// Permissions of an EPC page, as recorded in the EPCM.
type PagePerms uint8

const (
	PermR PagePerms = 1 << iota
	PermW
	PermX
)

func (p PagePerms) String() string {
	buf := []byte("---")
	if p&PermR != 0 {
		buf[0] = 'r'
	}
	if p&PermW != 0 {
		buf[1] = 'w'
	}
	if p&PermX != 0 {
		buf[2] = 'x'
	}
	return string(buf)
}

// EPCMEntry is the per-frame metadata the processor keeps to police access
// to EPC pages (the Enclave Page Cache Map).
type EPCMEntry struct {
	Valid     bool
	Type      PageType
	EnclaveID EnclaveID // owning enclave (0 for SECS pages)
	LinAddr   uint64    // enclave-relative linear address the page maps
	Perms     PagePerms
}

// EPC models the Enclave Page Cache: protected memory whose contents are
// encrypted by the memory encryption engine. Frames store sealed bytes;
// only an access on behalf of the owning enclave yields plaintext. Reads
// from outside (ReadRaw) observe ciphertext, modelling a physical-memory
// inspector.
type EPC struct {
	mu       sync.Mutex
	frames   [][]byte
	epcm     []EPCMEntry
	free     []int
	sealKey  [32]byte                // MEE key; lives only inside the CPU package
	versions map[versionKey][32]byte // EWB version tokens (CPU-held)
	evictSeq map[versionKey]uint64   // per-(enclave,addr) eviction counter (nonce derivation)

	// probe mirrors the owning platform's probe (see Platform.SetProbe)
	// so paging events are observable without a back-pointer.
	probe atomic.Pointer[probeHolder]
}

// ErrEPCFull is returned when no EPC frame is free.
var ErrEPCFull = errors.New("core: EPC full")

// ErrEPCAccess is returned when an access violates the EPCM.
var ErrEPCAccess = errors.New("core: EPCM access violation")

// NewEPC builds an EPC with the given number of 4KiB frames, sealed with
// the supplied memory-encryption key.
func NewEPC(frames int, sealKey [32]byte) *EPC {
	e := &EPC{
		frames:  make([][]byte, frames),
		epcm:    make([]EPCMEntry, frames),
		free:    make([]int, 0, frames),
		sealKey: sealKey,
	}
	for i := frames - 1; i >= 0; i-- {
		e.free = append(e.free, i)
	}
	return e
}

// FrameCount reports the total number of EPC frames.
func (e *EPC) FrameCount() int { return len(e.frames) }

// FreeCount reports the number of unallocated frames.
func (e *EPC) FreeCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.free)
}

// Alloc claims a frame for the given enclave page. The plaintext is sealed
// into the frame. Returns the frame index.
func (e *EPC) Alloc(owner EnclaveID, typ PageType, linAddr uint64, perms PagePerms, plaintext []byte) (int, error) {
	if len(plaintext) > PageSize {
		return 0, fmt.Errorf("core: page content %d bytes exceeds page size", len(plaintext))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.free) == 0 {
		return 0, ErrEPCFull
	}
	idx := e.free[len(e.free)-1]
	e.free = e.free[:len(e.free)-1]
	page := make([]byte, PageSize)
	copy(page, plaintext)
	e.seal(idx, page)
	e.frames[idx] = page
	e.epcm[idx] = EPCMEntry{Valid: true, Type: typ, EnclaveID: owner, LinAddr: linAddr, Perms: perms}
	return idx, nil
}

// Read returns the plaintext of a frame on behalf of the owning enclave.
func (e *EPC) Read(owner EnclaveID, idx int) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.check(owner, idx, PermR); err != nil {
		return nil, err
	}
	page := make([]byte, PageSize)
	copy(page, e.frames[idx])
	e.seal(idx, page) // unseal (XOR keystream is its own inverse)
	return page, nil
}

// Write replaces a frame's plaintext on behalf of the owning enclave.
func (e *EPC) Write(owner EnclaveID, idx int, plaintext []byte) error {
	if len(plaintext) > PageSize {
		return fmt.Errorf("core: page content %d bytes exceeds page size", len(plaintext))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.check(owner, idx, PermW); err != nil {
		return err
	}
	page := make([]byte, PageSize)
	copy(page, plaintext)
	e.seal(idx, page)
	e.frames[idx] = page
	return nil
}

// ReadRaw returns the sealed frame bytes, modelling an attacker with
// physical memory access: the MEE guarantees this never reveals plaintext.
func (e *EPC) ReadRaw(idx int) ([]byte, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if idx < 0 || idx >= len(e.frames) || !e.epcm[idx].Valid {
		return nil, false
	}
	out := make([]byte, PageSize)
	copy(out, e.frames[idx])
	return out, true
}

// Entry returns the EPCM entry for a frame.
func (e *EPC) Entry(idx int) (EPCMEntry, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if idx < 0 || idx >= len(e.epcm) {
		return EPCMEntry{}, false
	}
	return e.epcm[idx], e.epcm[idx].Valid
}

// FreeEnclave releases every frame owned by the enclave (EREMOVE).
func (e *EPC) FreeEnclave(owner EnclaveID) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for i := range e.epcm {
		if e.epcm[i].Valid && e.epcm[i].EnclaveID == owner {
			e.epcm[i] = EPCMEntry{}
			e.frames[i] = nil
			e.free = append(e.free, i)
			n++
		}
	}
	return n
}

func (e *EPC) check(owner EnclaveID, idx int, need PagePerms) error {
	if idx < 0 || idx >= len(e.frames) {
		return ErrEPCAccess
	}
	ent := e.epcm[idx]
	if !ent.Valid || ent.EnclaveID != owner || ent.Perms&need != need {
		return ErrEPCAccess
	}
	return nil
}

// seal XORs the page with a frame-specific keystream derived from the MEE
// key. XOR sealing is an emulation stand-in for AES-XTS memory encryption:
// it is involutive (seal == unseal) and ensures raw frame reads never see
// plaintext, which is the property the threat model needs.
func (e *EPC) seal(idx int, page []byte) {
	ks := e.keystream(idx)
	for i := range page {
		page[i] ^= ks[i%len(ks)]
	}
}

func (e *EPC) keystream(idx int) []byte {
	// A 64-byte keystream mixed from the seal key and the frame index.
	ks := make([]byte, 64)
	for i := range ks {
		ks[i] = e.sealKey[i%32] ^ byte(idx>>uint(8*(i%4))) ^ byte(i*131)
	}
	return ks
}
