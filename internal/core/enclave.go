package core

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Enclave construction and execution.

// EnclaveBuilder drives the ECREATE → EADD/EEXTEND → EINIT sequence.
type EnclaveBuilder struct {
	plat   *Platform
	id     EnclaveID
	m      *measurer
	pages  []int
	nPages int
	inited bool
}

// AddPage performs EADD + EEXTEND for one page of enclave content,
// charging the page-measurement cost to the host meter (enclave build is
// untrusted-side work; the paper excludes it from steady-state numbers but
// we still account it).
func (b *EnclaveBuilder) AddPage(linAddr uint64, typ PageType, perms PagePerms, content []byte) error {
	if b.inited {
		return errors.New("core: EADD after EINIT")
	}
	idx, err := b.plat.epc.Alloc(b.id, typ, linAddr, perms, content)
	if err != nil {
		return fmt.Errorf("core: EADD: %w", err)
	}
	b.pages = append(b.pages, idx)
	b.m.addPage(linAddr, typ, perms, content)
	b.nPages++
	b.plat.HostMeter.ChargeNormal(CostPageAdd)
	if h := b.plat.probe.Load(); h != nil {
		h.p.Observe(KindEADD, 1)
		h.p.Observe(KindEEXTEND, 16) // one EEXTEND per 256-byte chunk
		h.p.Observe(KindPageAdd, 1)
	}
	return nil
}

// AddProgram loads a program image: one TCS page per entry point plus REG
// pages holding the measured code image.
func (b *EnclaveBuilder) AddProgram(prog *Program) error {
	img := prog.Image()
	if err := b.AddPage(0, PageTCS, PermR|PermW, []byte("TCS0")); err != nil {
		return err
	}
	addr := uint64(PageSize)
	for off := 0; off < len(img); off += PageSize {
		end := off + PageSize
		if end > len(img) {
			end = len(img)
		}
		if err := b.AddPage(addr, PageREG, PermR|PermX, img[off:end]); err != nil {
			return err
		}
		addr += PageSize
	}
	// Data/heap pages (unmeasured content, measured metadata).
	for i := 0; i < 4; i++ {
		if err := b.AddPage(addr, PageREG, PermR|PermW, nil); err != nil {
			return err
		}
		addr += PageSize
	}
	return nil
}

// Measurement returns the MRENCLAVE accumulated so far.
func (b *EnclaveBuilder) Measurement() Measurement { return b.m.final() }

// EInit finalizes the enclave. The SIGSTRUCT must carry a valid signature
// over the accumulated measurement; MRSIGNER becomes the digest of the
// signing key. After EINIT no further pages can be added (SGX1: no EDMM).
func (b *EnclaveBuilder) EInit(prog *Program, ss SigStruct) (*Enclave, error) {
	if b.inited {
		return nil, errors.New("core: double EINIT")
	}
	mr := b.m.final()
	if ss.Measurement != mr {
		return nil, fmt.Errorf("core: EINIT: SIGSTRUCT measurement mismatch")
	}
	if !ed25519.Verify(ss.SignerPub, ss.Measurement[:], ss.Sig) {
		return nil, fmt.Errorf("core: EINIT: bad SIGSTRUCT signature")
	}
	b.inited = true
	b.plat.HostMeter.ChargeNormal(CostEnclaveInit)
	b.plat.observe(KindEINIT, 1)

	attrs := Attributes{Debug: ss.Debug}
	signer := sha256.Sum256(ss.SignerPub)
	if Measurement(signer) == b.plat.cfg.ArchSigner && !b.plat.cfg.ArchSigner.IsZero() {
		attrs.Architectural = true
	}

	e := &Enclave{
		id:        b.id,
		plat:      b.plat,
		prog:      prog,
		meter:     NewMeter(),
		mrenclave: mr,
		mrsigner:  Measurement(signer),
		attrs:     attrs,
		pages:     b.pages,
	}
	var keyID [16]byte
	if _, err := rand.Read(keyID[:]); err != nil {
		return nil, err
	}
	e.keyID = keyID

	b.plat.mu.Lock()
	b.plat.enclaves[b.id] = e
	b.plat.mu.Unlock()

	if prog.Main != nil {
		if _, err := e.Call("", nil); err != nil {
			e.Destroy()
			return nil, fmt.Errorf("core: enclave main: %w", err)
		}
	}
	return e, nil
}

// SigStruct is the enclave signature structure checked by EINIT.
type SigStruct struct {
	Measurement Measurement
	SignerPub   ed25519.PublicKey
	Sig         []byte
	Debug       bool
}

// A Signer holds an enclave-signing key. Its MRSIGNER is the SHA-256 of
// the public key.
type Signer struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewSigner generates an enclave-signing keypair.
func NewSigner() (*Signer, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Signer{pub: pub, priv: priv}, nil
}

// MRSigner returns the signer identity (digest of the public key).
func (s *Signer) MRSigner() Measurement { return sha256.Sum256(s.pub) }

// Public returns the signing public key.
func (s *Signer) Public() ed25519.PublicKey { return s.pub }

// Sign produces the SIGSTRUCT for a measured enclave.
func (s *Signer) Sign(m Measurement) SigStruct {
	return SigStruct{
		Measurement: m,
		SignerPub:   s.pub,
		Sig:         ed25519.Sign(s.priv, m[:]),
	}
}

// Host is the untrusted runtime's service surface, reached from inside an
// enclave through OCALLs. Implementations live outside the TCB; enclave
// code must treat results as untrusted input (Iago attacks, §6).
type Host interface {
	OCall(service string, arg []byte) ([]byte, error)
}

// HostFunc adapts a function to the Host interface.
type HostFunc func(service string, arg []byte) ([]byte, error)

// OCall implements Host.
func (f HostFunc) OCall(service string, arg []byte) ([]byte, error) { return f(service, arg) }

// ErrNoHost is returned for OCALLs when no host is bound.
var ErrNoHost = errors.New("core: no host bound to enclave")

// Enclave is a launched, measured, isolated execution container.
type Enclave struct {
	id        EnclaveID
	plat      *Platform
	prog      *Program
	meter     *Meter
	mrenclave Measurement
	mrsigner  Measurement
	attrs     Attributes
	keyID     [16]byte
	pages     []int

	hostMu sync.RWMutex
	host   Host

	// switchlessOCalls suppresses the EEXIT/ERESUME charge in Env.OCall:
	// the enclave's OCALLs ride a shared-memory ring (internal/xcall)
	// whose drains account the amortized crossings instead.
	switchlessOCalls atomic.Bool

	destroyed sync.Once
	dead      bool
}

// ID returns the enclave's platform-local identifier.
func (e *Enclave) ID() EnclaveID { return e.id }

// Platform returns the platform the enclave runs on.
func (e *Enclave) Platform() *Platform { return e.plat }

// MREnclave returns the enclave's content measurement.
func (e *Enclave) MREnclave() Measurement { return e.mrenclave }

// MRSigner returns the enclave's signer identity.
func (e *Enclave) MRSigner() Measurement { return e.mrsigner }

// Attrs returns the enclave attributes.
func (e *Enclave) Attrs() Attributes { return e.attrs }

// Program returns the loaded program.
func (e *Enclave) Program() *Program { return e.prog }

// Meter returns the enclave's instruction meter.
func (e *Enclave) Meter() *Meter { return e.meter }

// BindHost attaches the untrusted host services used by OCALLs.
func (e *Enclave) BindHost(h Host) {
	e.hostMu.Lock()
	e.host = h
	e.hostMu.Unlock()
}

// Call performs EENTER into the named entry point and returns its result
// after EEXIT. An empty name invokes the program's Main. Call charges the
// EENTER/EEXIT pair to the enclave meter.
func (e *Enclave) Call(fn string, arg []byte) ([]byte, error) {
	h, err := e.entry(fn)
	if err != nil {
		return nil, err
	}
	e.meter.ChargeSGX(1) // EENTER
	if hp := e.plat.probe.Load(); hp != nil {
		hp.p.Observe(KindEENTER, 1)
		hp.p.Observe(KindEnclaveCall, 1)
	}
	env := &Env{e: e}
	out, err := h(env, arg)
	e.meter.ChargeSGX(1) // EEXIT
	e.plat.observe(KindEEXIT, 1)
	return out, err
}

// SwitchlessCall invokes an entry point without the EENTER/EEXIT pair:
// the descriptor reached the enclave through a shared-memory ring
// (internal/xcall) and an already-resident worker dispatches it, so no
// crossing happens here. The ring charges the modeled ring operations
// and the per-batch amortized crossing; handler work still lands on the
// enclave meter as usual. Callers must not use this to bypass crossing
// accounting outside the xcall subsystem.
func (e *Enclave) SwitchlessCall(fn string, arg []byte) ([]byte, error) {
	h, err := e.entry(fn)
	if err != nil {
		return nil, err
	}
	env := &Env{e: e}
	return h(env, arg)
}

// entry resolves an entry-point name (empty = Main) against the program.
func (e *Enclave) entry(fn string) (Handler, error) {
	if e.dead {
		return nil, fmt.Errorf("core: enclave %d destroyed", e.id)
	}
	var h Handler
	if fn == "" {
		h = e.prog.Main
	} else {
		h = e.prog.Handlers[fn]
	}
	if h == nil {
		return nil, fmt.Errorf("core: enclave %q has no entry point %q", e.prog.Name, fn)
	}
	return h, nil
}

// SetSwitchlessOCalls toggles switchless OCALL accounting: when on,
// Env.OCall stops charging the EEXIT/ERESUME pair (and stops reporting
// the crossing kinds) because the enclave's host requests ride an xcall
// ring that accounts amortized crossings at drain time. The dispatch
// itself is unchanged — only who pays for the boundary moves.
func (e *Enclave) SetSwitchlessOCalls(on bool) { e.switchlessOCalls.Store(on) }

// Destroy frees the enclave's EPC pages (EREMOVE) and deregisters it. A
// destroyed enclave rejects further calls — the host can always do this
// (denial of service is in the host's power) but can never alter behaviour.
func (e *Enclave) Destroy() {
	e.destroyed.Do(func() {
		e.dead = true
		e.plat.remove(e.id)
	})
}

// Env is the trusted-side view a handler receives: metered computation,
// host OCALLs, and the SGX key/report instructions.
type Env struct {
	e *Enclave
}

// Enclave returns the executing enclave.
func (env *Env) Enclave() *Enclave { return env.e }

// Meter returns the enclave meter (for charging modelled work).
func (env *Env) Meter() *Meter { return env.e.meter }

// ChargeNormal records modelled normal-instruction work.
func (env *Env) ChargeNormal(n uint64) { env.e.meter.ChargeNormal(n) }

// OCall leaves the enclave (EEXIT), invokes the untrusted host service,
// and re-enters (ERESUME). The two ENCLU instructions are charged here;
// services charge their own payload costs.
func (env *Env) OCall(service string, arg []byte) ([]byte, error) {
	env.e.hostMu.RLock()
	h := env.e.host
	env.e.hostMu.RUnlock()
	if h == nil {
		return nil, ErrNoHost
	}
	if !env.e.switchlessOCalls.Load() {
		env.e.meter.ChargeSGX(2) // EEXIT + ERESUME
		if hp := env.e.plat.probe.Load(); hp != nil {
			hp.p.Observe(KindEEXIT, 1)
			hp.p.Observe(KindERESUME, 1)
			hp.p.Observe(KindEnclaveOCall, 1)
		}
	}
	return h.OCall(service, arg)
}

// Alloc models in-enclave dynamic memory allocation. SGX1 cannot grow the
// heap without an enclave round-trip, which the paper identifies as a main
// source of Table 4's overhead; each call charges that surcharge.
func (env *Env) Alloc(n int) []byte {
	env.ChargeAllocs(1)
	return make([]byte, n)
}

// ChargeAllocs records n in-enclave dynamic allocations without
// materializing buffers — used by application code that tracks its
// allocation count in bulk (e.g. one allocation per adopted route).
func (env *Env) ChargeAllocs(n uint64) {
	env.e.meter.ChargeSGX(n * SGXInstEnclaveAlloc)
	env.e.meter.ChargeNormal(n * CostEnclaveAllocFixed)
	env.e.plat.observe(KindEnclaveAlloc, n)
}

// KeyName selects which key EGETKEY derives.
type KeyName string

const (
	// KeyReport is the key used to MAC reports targeted at this enclave.
	KeyReport KeyName = "report"
	// KeySeal is bound to MRSIGNER: any enclave from the same signer on
	// this platform derives the same sealing key.
	KeySeal KeyName = "seal"
	// KeySealEnclave is bound to MRENCLAVE.
	KeySealEnclave KeyName = "seal-enclave"
)

// GetKey executes EGETKEY, deriving a key bound to this platform and (per
// key name) this enclave's identity.
func (env *Env) GetKey(name KeyName) ([32]byte, error) {
	env.e.meter.ChargeSGX(1) // EGETKEY
	env.e.plat.observe(KindEGETKEY, 1)
	switch name {
	case KeyReport:
		return env.e.plat.deriveKey("report", env.e.mrenclave), nil
	case KeySeal:
		return env.e.plat.deriveKey("seal", env.e.mrsigner), nil
	case KeySealEnclave:
		return env.e.plat.deriveKey("seal-enclave", env.e.mrenclave), nil
	default:
		return [32]byte{}, fmt.Errorf("core: EGETKEY: unknown key name %q", name)
	}
}

// AttestationKey returns the platform attestation private key — only for
// architectural enclaves (the quoting enclave).
func (env *Env) AttestationKey() (ed25519.PrivateKey, error) {
	return env.e.plat.attestationKeyFor(env.e)
}
