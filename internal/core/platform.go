package core

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"
)

// EnclaveID identifies an enclave on its platform.
type EnclaveID uint64

// Attributes are the SECS attributes that participate in reports.
type Attributes struct {
	// Debug enclaves can be inspected; production attestation policies
	// reject them.
	Debug bool
	// Architectural marks Intel-provisioned enclaves (the quoting
	// enclave). Only architectural enclaves can obtain the platform
	// attestation key.
	Architectural bool
}

func (a Attributes) encode() byte {
	var b byte
	if a.Debug {
		b |= 1
	}
	if a.Architectural {
		b |= 2
	}
	return b
}

// PlatformConfig parameterizes a simulated SGX platform.
type PlatformConfig struct {
	// EPCFrames is the number of 4KiB EPC frames (default 1024 ≈ 4MiB,
	// a contemporary SGX1 PRM size after metadata).
	EPCFrames int
	// ArchSigner is the MRSIGNER allowed to launch architectural
	// enclaves (the "Intel" signer). Zero means none.
	ArchSigner Measurement
	// Seed, when non-empty, derives the platform's fused secrets (the
	// key-derivation root, the MEE key, and the attestation keypair)
	// deterministically instead of from crypto/rand. Two platforms built
	// from the same seed are byte-for-byte interchangeable — same sealed
	// blobs, same evicted-page blobs — which is what lets paging traces
	// and the EPC sweep goldens pin exact bytes. Production platforms
	// leave it empty; determinism-sensitive harnesses set it.
	Seed []byte
}

// Platform models one SGX-enabled machine: a CPU package holding fused
// secrets, an EPC, and the enclaves launched on it. Everything outside —
// including the code that drives the platform — is untrusted.
type Platform struct {
	Name string

	mu       sync.Mutex
	cfg      PlatformConfig
	epc      *EPC
	secret   [32]byte // fused key-derivation root (never leaves the CPU)
	attPriv  ed25519.PrivateKey
	attPub   ed25519.PublicKey
	enclaves map[EnclaveID]*Enclave
	nextID   EnclaveID

	// HostMeter tallies instructions executed by untrusted host code on
	// this platform (the "w/o SGX" side of comparisons).
	HostMeter *Meter

	// probe, when set, observes the platform's instruction stream and
	// lifecycle events (see SetProbe). Nil by default and on the hot
	// path costs one atomic load.
	probe atomic.Pointer[probeHolder]
}

// NewPlatform creates a platform with freshly generated fused secrets and
// attestation keys.
func NewPlatform(name string, cfg PlatformConfig) (*Platform, error) {
	if cfg.EPCFrames <= 0 {
		cfg.EPCFrames = 1024
	}
	var secret, sealKey [32]byte
	var pub ed25519.PublicKey
	var priv ed25519.PrivateKey
	if len(cfg.Seed) > 0 {
		secret = seedDerive("sgxnet-platform-secret", cfg.Seed)
		sealKey = seedDerive("sgxnet-mee-key", cfg.Seed)
		att := seedDerive("sgxnet-attestation-key", cfg.Seed)
		priv = ed25519.NewKeyFromSeed(att[:])
		pub = priv.Public().(ed25519.PublicKey)
	} else {
		if _, err := rand.Read(secret[:]); err != nil {
			return nil, fmt.Errorf("core: platform secret: %w", err)
		}
		if _, err := rand.Read(sealKey[:]); err != nil {
			return nil, fmt.Errorf("core: MEE key: %w", err)
		}
		var err error
		pub, priv, err = ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("core: attestation key: %w", err)
		}
	}
	p := &Platform{
		Name:      name,
		cfg:       cfg,
		epc:       NewEPC(cfg.EPCFrames, sealKey),
		secret:    secret,
		attPriv:   priv,
		attPub:    pub,
		enclaves:  make(map[EnclaveID]*Enclave),
		nextID:    1,
		HostMeter: NewMeter(),
	}
	if h := defaultProbe.Load(); h != nil {
		p.probe.Store(h)
		p.epc.probe.Store(h)
	}
	return p, nil
}

// EPC exposes the platform's enclave page cache (host-visible; contents
// are sealed).
func (p *Platform) EPC() *EPC { return p.epc }

// AttestationPublicKey returns the platform's public attestation key — the
// verification key challengers use on QUOTEs (the paper's "remote
// platform's public key", EPID stand-in).
func (p *Platform) AttestationPublicKey() ed25519.PublicKey {
	out := make(ed25519.PublicKey, len(p.attPub))
	copy(out, p.attPub)
	return out
}

// attestationKeyFor hands the private attestation key to an architectural
// enclave. Any other caller is refused: this is the hardware property that
// "only the quoting enclave can access the processor key used for
// attestation" (§2.2).
func (p *Platform) attestationKeyFor(e *Enclave) (ed25519.PrivateKey, error) {
	if e == nil || e.plat != p || !e.attrs.Architectural {
		return nil, fmt.Errorf("core: attestation key restricted to architectural enclaves")
	}
	return p.attPriv, nil
}

// Enclave returns a launched enclave by ID.
func (p *Platform) Enclave(id EnclaveID) (*Enclave, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.enclaves[id]
	return e, ok
}

// Enclaves returns all live enclaves on the platform.
func (p *Platform) Enclaves() []*Enclave {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Enclave, 0, len(p.enclaves))
	for _, e := range p.enclaves {
		out = append(out, e)
	}
	return out
}

// seedDerive expands a deterministic platform seed into one fused
// secret, domain-separated by label.
func seedDerive(label string, seed []byte) [32]byte {
	mac := hmac.New(sha256.New, seed)
	mac.Write([]byte(label))
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// deriveKey implements the CPU's key-derivation for EGETKEY: a PRF over
// the fused secret, the key name, and the binding measurement.
func (p *Platform) deriveKey(name string, bind Measurement) [32]byte {
	mac := hmac.New(sha256.New, p.secret[:])
	mac.Write([]byte(name))
	mac.Write(bind[:])
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// ECreate begins construction of an enclave (the privileged ECREATE
// instruction): it allocates the SECS page and returns a builder through
// which the untrusted runtime adds pages and finally EINITs.
func (p *Platform) ECreate(sizeHint int) (*EnclaveBuilder, error) {
	p.mu.Lock()
	id := p.nextID
	p.nextID++
	p.mu.Unlock()

	secs := make([]byte, 64)
	copy(secs, "SECS")
	if _, err := p.epc.Alloc(0, PageSECS, 0, PermR, secs); err != nil {
		return nil, fmt.Errorf("core: ECREATE: %w", err)
	}
	p.observe(KindECREATE, 1)
	return &EnclaveBuilder{
		plat: p,
		id:   id,
		m:    newMeasurer(uint64(sizeHint)),
	}, nil
}

// Launch is the convenience path: ECREATE, EADD every image page, EINIT
// with the given signer's SIGSTRUCT. It returns a running enclave.
func (p *Platform) Launch(prog *Program, signer *Signer) (*Enclave, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	b, err := p.ECreate(len(prog.Image()))
	if err != nil {
		return nil, err
	}
	if err := b.AddProgram(prog); err != nil {
		return nil, err
	}
	ss := signer.Sign(b.Measurement())
	return b.EInit(prog, ss)
}

// remove deregisters an enclave and frees its EPC frames.
func (p *Platform) remove(id EnclaveID) {
	p.mu.Lock()
	delete(p.enclaves, id)
	p.mu.Unlock()
	p.epc.FreeEnclave(id)
}
