package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// meterStripes is the number of counter stripes per Meter (a power of
// two). Concurrent scenario runs charge many meters from many
// goroutines; striping keeps two writers from bouncing the same cache
// line between cores, and padding keeps adjacent stripes — and adjacent
// Meters embedded in larger structs — from false sharing.
const meterStripes = 8

// meterStripe is one padded counter pair. The two counters occupy 16
// bytes; the padding rounds the stripe up to a 64-byte cache line.
type meterStripe struct {
	sgxU   atomic.Uint64
	normal atomic.Uint64
	_      [48]byte
}

// stripeSeq hands out round-robin stripe assignments to stripeHint's
// per-P pool entries. The hint is pure placement: every stripe folds
// into the same totals on read, so which stripe a goroutine lands on
// never changes any observable tally.
var stripeSeq atomic.Uint32

var stripeHint = sync.Pool{New: func() any {
	h := new(uint32)
	*h = stripeSeq.Add(1)
	return h
}}

// stripeIndex picks a stripe for the calling goroutine. sync.Pool is
// per-P under the hood, so repeated charges from the same goroutine
// land on the same stripe without any contended shared state.
func stripeIndex() uint32 {
	h := stripeHint.Get().(*uint32)
	i := *h
	stripeHint.Put(h)
	return i & (meterStripes - 1)
}

// A Meter tallies the two quantities the paper's evaluation is built on:
// SGX usermode instructions and normal instructions. Meters are safe for
// concurrent use; every enclave owns one, and hosts aggregate them.
// Counters are sharded across padded stripes and folded on read, so
// parallel scenario runs never contend on a single cache line.
type Meter struct {
	stripes [meterStripes]meterStripe
}

// NewMeter returns a zeroed Meter. The zero value is also ready to use.
func NewMeter() *Meter { return &Meter{} }

// ChargeSGX records n SGX usermode instructions.
func (m *Meter) ChargeSGX(n uint64) {
	if m == nil {
		return
	}
	m.stripes[stripeIndex()].sgxU.Add(n)
}

// ChargeNormal records n normal instructions.
func (m *Meter) ChargeNormal(n uint64) {
	if m == nil {
		return
	}
	m.stripes[stripeIndex()].normal.Add(n)
}

// SGX returns the SGX usermode instruction count so far.
func (m *Meter) SGX() uint64 {
	if m == nil {
		return 0
	}
	var sum uint64
	for i := range m.stripes {
		sum += m.stripes[i].sgxU.Load()
	}
	return sum
}

// Normal returns the normal instruction count so far.
func (m *Meter) Normal() uint64 {
	if m == nil {
		return 0
	}
	var sum uint64
	for i := range m.stripes {
		sum += m.stripes[i].normal.Load()
	}
	return sum
}

// Cycles returns the estimated CPU cycles for the current tallies using the
// paper's conversion formula.
func (m *Meter) Cycles() uint64 { return CyclesOf(m.SGX(), m.Normal()) }

// Snapshot captures the current tallies, folding all stripes. With
// concurrent chargers the result is a consistent point-in-time value
// per counter but the SGXU/Normal pair is not atomic as a whole: a
// charge that lands between the two folds appears in Normal but not
// SGXU (or vice versa). Callers that need an exact period — everything
// charged since the last boundary, each charge in exactly one period —
// must quiesce chargers first or use SnapshotAndReset.
func (m *Meter) Snapshot() Tally {
	if m == nil {
		return Tally{}
	}
	return Tally{SGXU: m.SGX(), Normal: m.Normal()}
}

// Reset zeroes both counters. Like Snapshot, Reset is not atomic with
// respect to concurrent Charge* calls: the classic Snapshot-then-Reset
// sequence silently drops any charge that lands between the two calls,
// and a charge racing Reset itself may survive into the next period on
// one stripe while its sibling is zeroed. Use SnapshotAndReset when the
// tallies must partition exactly across period boundaries.
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	for i := range m.stripes {
		m.stripes[i].sgxU.Store(0)
		m.stripes[i].normal.Store(0)
	}
}

// SnapshotAndReset atomically drains the meter: it returns everything
// charged since the previous boundary and leaves the meter zeroed,
// using an atomic swap per counter so that every concurrent charge
// lands in exactly one period — either the returned tally or the next
// one, never both and never neither. This is the correct primitive for
// phase accounting (the eval runner's steady-state boundary) where the
// per-phase tallies must sum to the run's total.
func (m *Meter) SnapshotAndReset() Tally {
	if m == nil {
		return Tally{}
	}
	var t Tally
	for i := range m.stripes {
		t.SGXU += m.stripes[i].sgxU.Swap(0)
		t.Normal += m.stripes[i].normal.Swap(0)
	}
	return t
}

// AddTally folds a tally into the meter (used when aggregating per-enclave
// meters into a host meter).
func (m *Meter) AddTally(t Tally) {
	if m == nil {
		return
	}
	i := stripeIndex()
	m.stripes[i].sgxU.Add(t.SGXU)
	m.stripes[i].normal.Add(t.Normal)
}

// A Tally is an immutable snapshot of a Meter.
type Tally struct {
	SGXU   uint64 // SGX usermode instructions
	Normal uint64 // normal instructions
}

// Sub returns the element-wise difference t−o, saturating at zero.
func (t Tally) Sub(o Tally) Tally {
	d := Tally{}
	if t.SGXU > o.SGXU {
		d.SGXU = t.SGXU - o.SGXU
	}
	if t.Normal > o.Normal {
		d.Normal = t.Normal - o.Normal
	}
	return d
}

// Add returns the element-wise sum of t and o.
func (t Tally) Add(o Tally) Tally {
	return Tally{SGXU: t.SGXU + o.SGXU, Normal: t.Normal + o.Normal}
}

// Cycles converts the tally to estimated CPU cycles.
func (t Tally) Cycles() uint64 { return CyclesOf(t.SGXU, t.Normal) }

// String renders the tally in the style of the paper's tables.
func (t Tally) String() string {
	return fmt.Sprintf("SGX(U)=%d normal=%d (≈%d cycles)", t.SGXU, t.Normal, t.Cycles())
}
