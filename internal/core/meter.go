package core

import (
	"fmt"
	"sync/atomic"
)

// A Meter tallies the two quantities the paper's evaluation is built on:
// SGX usermode instructions and normal instructions. Meters are safe for
// concurrent use; every enclave owns one, and hosts aggregate them.
type Meter struct {
	sgxU   atomic.Uint64
	normal atomic.Uint64
}

// NewMeter returns a zeroed Meter. The zero value is also ready to use.
func NewMeter() *Meter { return &Meter{} }

// ChargeSGX records n SGX usermode instructions.
func (m *Meter) ChargeSGX(n uint64) {
	if m == nil {
		return
	}
	m.sgxU.Add(n)
}

// ChargeNormal records n normal instructions.
func (m *Meter) ChargeNormal(n uint64) {
	if m == nil {
		return
	}
	m.normal.Add(n)
}

// SGX returns the SGX usermode instruction count so far.
func (m *Meter) SGX() uint64 {
	if m == nil {
		return 0
	}
	return m.sgxU.Load()
}

// Normal returns the normal instruction count so far.
func (m *Meter) Normal() uint64 {
	if m == nil {
		return 0
	}
	return m.normal.Load()
}

// Cycles returns the estimated CPU cycles for the current tallies using the
// paper's conversion formula.
func (m *Meter) Cycles() uint64 { return CyclesOf(m.SGX(), m.Normal()) }

// Snapshot captures the current tallies.
func (m *Meter) Snapshot() Tally {
	if m == nil {
		return Tally{}
	}
	return Tally{SGXU: m.sgxU.Load(), Normal: m.normal.Load()}
}

// Reset zeroes both counters.
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	m.sgxU.Store(0)
	m.normal.Store(0)
}

// AddTally folds a tally into the meter (used when aggregating per-enclave
// meters into a host meter).
func (m *Meter) AddTally(t Tally) {
	if m == nil {
		return
	}
	m.sgxU.Add(t.SGXU)
	m.normal.Add(t.Normal)
}

// A Tally is an immutable snapshot of a Meter.
type Tally struct {
	SGXU   uint64 // SGX usermode instructions
	Normal uint64 // normal instructions
}

// Sub returns the element-wise difference t−o, saturating at zero.
func (t Tally) Sub(o Tally) Tally {
	d := Tally{}
	if t.SGXU > o.SGXU {
		d.SGXU = t.SGXU - o.SGXU
	}
	if t.Normal > o.Normal {
		d.Normal = t.Normal - o.Normal
	}
	return d
}

// Add returns the element-wise sum of t and o.
func (t Tally) Add(o Tally) Tally {
	return Tally{SGXU: t.SGXU + o.SGXU, Normal: t.Normal + o.Normal}
}

// Cycles converts the tally to estimated CPU cycles.
func (t Tally) Cycles() uint64 { return CyclesOf(t.SGXU, t.Normal) }

// String renders the tally in the style of the paper's tables.
func (t Tally) String() string {
	return fmt.Sprintf("SGX(U)=%d normal=%d (≈%d cycles)", t.SGXU, t.Normal, t.Cycles())
}
