package core

import (
	"crypto/sha256"
	"encoding/binary"
)

// Measurement is a SHA-256 digest identifying enclave contents (MRENCLAVE)
// or an enclave signer (MRSIGNER).
type Measurement [32]byte

// IsZero reports whether the measurement is all zeroes.
func (m Measurement) IsZero() bool { return m == Measurement{} }

// measurer accumulates MRENCLAVE exactly the way SGX does: a running
// SHA-256 over a log of ECREATE/EADD/EEXTEND records. Every EADD
// contributes the page's metadata; every EEXTEND contributes a 256-byte
// chunk of page content.
type measurer struct {
	h interface {
		Write(p []byte) (int, error)
		Sum(b []byte) []byte
	}
}

const extendChunk = 256

func newMeasurer(size uint64) *measurer {
	m := &measurer{h: sha256.New()}
	var rec [64]byte
	copy(rec[:8], "ECREATE\x00")
	binary.LittleEndian.PutUint64(rec[8:16], size)
	m.h.Write(rec[:])
	return m
}

// addPage folds an EADD record and the page's EEXTEND chunks into the
// measurement.
func (m *measurer) addPage(linAddr uint64, typ PageType, perms PagePerms, content []byte) {
	var rec [64]byte
	copy(rec[:8], "EADD\x00\x00\x00\x00")
	binary.LittleEndian.PutUint64(rec[8:16], linAddr)
	rec[16] = byte(typ)
	rec[17] = byte(perms)
	m.h.Write(rec[:])

	page := make([]byte, PageSize)
	copy(page, content)
	for off := 0; off < PageSize; off += extendChunk {
		var ext [16]byte
		copy(ext[:8], "EEXTEND\x00")
		binary.LittleEndian.PutUint64(ext[8:16], linAddr+uint64(off))
		m.h.Write(ext[:])
		m.h.Write(page[off : off+extendChunk])
	}
}

// final returns MRENCLAVE.
func (m *measurer) final() Measurement {
	var out Measurement
	copy(out[:], m.h.Sum(nil))
	return out
}

// MeasureProgram computes the MRENCLAVE a program will have when loaded
// with EnclaveBuilder.AddProgram — the value a verifier who builds the
// program deterministically (§4) expects from remote attestation. It must
// mirror AddProgram's page layout exactly.
func MeasureProgram(prog *Program) Measurement {
	img := prog.Image()
	m := newMeasurer(uint64(len(img)))
	m.addPage(0, PageTCS, PermR|PermW, []byte("TCS0"))
	addr := uint64(PageSize)
	for off := 0; off < len(img); off += PageSize {
		end := off + PageSize
		if end > len(img) {
			end = len(img)
		}
		m.addPage(addr, PageREG, PermR|PermX, img[off:end])
		addr += PageSize
	}
	for i := 0; i < 4; i++ {
		m.addPage(addr, PageREG, PermR|PermW, nil)
		addr += PageSize
	}
	return m.final()
}
