package core

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

// --- sealed storage ---

func sealerProgram(name string) *Program {
	return &Program{
		Name:    name,
		Version: "1",
		Handlers: map[string]Handler{
			"seal": func(env *Env, arg []byte) ([]byte, error) {
				return env.SealData(KeySeal, arg)
			},
			"unseal": func(env *Env, arg []byte) ([]byte, error) {
				return env.UnsealData(KeySeal, arg)
			},
			"seal-mr": func(env *Env, arg []byte) ([]byte, error) {
				return env.SealData(KeySealEnclave, arg)
			},
			"unseal-mr": func(env *Env, arg []byte) ([]byte, error) {
				return env.UnsealData(KeySealEnclave, arg)
			},
		},
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	p := testPlatform(t)
	e, err := p.Launch(sealerProgram("sealer"), mustSigner(t))
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("directory authority signing key material")
	blob, err := e.Call("seal", secret)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, secret) {
		t.Fatal("sealed blob leaks plaintext")
	}
	got, err := e.Call("unseal", blob)
	if err != nil || !bytes.Equal(got, secret) {
		t.Fatalf("%q %v", got, err)
	}
}

func TestSealSurvivesEnclaveRestart(t *testing.T) {
	p := testPlatform(t)
	s := mustSigner(t)
	e1, err := p.Launch(sealerProgram("sealer"), s)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := e1.Call("seal", []byte("state"))
	if err != nil {
		t.Fatal(err)
	}
	e1.Destroy()
	// Same build, same signer, fresh enclave: MRSIGNER sealing unseals.
	e2, err := p.Launch(sealerProgram("sealer"), s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e2.Call("unseal", blob)
	if err != nil || string(got) != "state" {
		t.Fatalf("restart unseal: %q %v", got, err)
	}
}

func TestSealSignerAndMeasurementBinding(t *testing.T) {
	p := testPlatform(t)
	s1, s2 := mustSigner(t), mustSigner(t)
	a, err := p.Launch(sealerProgram("app-a"), s1)
	if err != nil {
		t.Fatal(err)
	}
	bSameSigner, err := p.Launch(sealerProgram("app-b"), s1)
	if err != nil {
		t.Fatal(err)
	}
	cOtherSigner, err := p.Launch(sealerProgram("app-c"), s2)
	if err != nil {
		t.Fatal(err)
	}
	// MRSIGNER-bound: same-vendor enclave unseals, other vendor cannot.
	blob, err := a.Call("seal", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bSameSigner.Call("unseal", blob); err != nil {
		t.Fatalf("same-signer unseal failed: %v", err)
	}
	if _, err := cOtherSigner.Call("unseal", blob); err == nil {
		t.Fatal("foreign-signer unseal succeeded")
	}
	// MRENCLAVE-bound: only the identical build unseals.
	blobMR, err := a.Call("seal-mr", []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bSameSigner.Call("unseal-mr", blobMR); err == nil {
		t.Fatal("different build unsealed an MRENCLAVE-bound blob")
	}
	if got, err := a.Call("unseal-mr", blobMR); err != nil || string(got) != "y" {
		t.Fatalf("self unseal-mr: %q %v", got, err)
	}
}

func TestSealPlatformBinding(t *testing.T) {
	p1, p2 := testPlatform(t), testPlatform(t)
	s := mustSigner(t)
	a, err := p1.Launch(sealerProgram("sealer"), s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p2.Launch(sealerProgram("sealer"), s)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := a.Call("seal", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Call("unseal", blob); err == nil {
		t.Fatal("cross-platform unseal succeeded")
	}
}

func TestSealTamperDetected(t *testing.T) {
	p := testPlatform(t)
	e, err := p.Launch(sealerProgram("sealer"), mustSigner(t))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := e.Call("seal", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(blob); i += 9 {
		cp := append([]byte{}, blob...)
		cp[i] ^= 1
		if _, err := e.Call("unseal", cp); err == nil {
			t.Fatalf("tampered byte %d unsealed", i)
		}
	}
	if _, err := e.Call("unseal", blob[:10]); err == nil {
		t.Fatal("truncated blob unsealed")
	}
}

func TestSealPropertyRoundTrip(t *testing.T) {
	p := testPlatform(t)
	e, err := p.Launch(sealerProgram("sealer"), mustSigner(t))
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte) bool {
		blob, err := e.Call("seal", data)
		if err != nil {
			return false
		}
		got, err := e.Call("unseal", blob)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSealRejectsNonSealingKey(t *testing.T) {
	p := testPlatform(t)
	prog := &Program{
		Name:    "badseal",
		Version: "1",
		Handlers: map[string]Handler{
			"x": func(env *Env, arg []byte) ([]byte, error) {
				if _, err := env.SealData(KeyReport, arg); err == nil {
					return nil, nil
				}
				if _, err := env.UnsealData(KeyReport, arg); err == nil {
					return nil, nil
				}
				return []byte("refused"), nil
			},
		},
	}
	e, err := p.Launch(prog, mustSigner(t))
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Call("x", []byte("d"))
	if err != nil || string(out) != "refused" {
		t.Fatalf("%q %v", out, err)
	}
}

// --- EPC paging ---

func TestEWBELDURoundTrip(t *testing.T) {
	e := testEPC(4)
	m := NewMeter()
	idx, err := e.Alloc(5, PageREG, 0x7000, PermR|PermW, []byte("page content"))
	if err != nil {
		t.Fatal(err)
	}
	freeBefore := e.FreeCount()
	ev, err := e.EWB(m, idx)
	if err != nil {
		t.Fatal(err)
	}
	if e.FreeCount() != freeBefore+1 {
		t.Fatal("EWB did not free the frame")
	}
	if bytes.Contains(ev.Blob, []byte("page content")) {
		t.Fatal("evicted blob leaks plaintext")
	}
	idx2, err := e.ELDU(m, ev)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Read(5, idx2)
	if err != nil || !bytes.Equal(got[:12], []byte("page content")) {
		t.Fatalf("%q %v", got[:12], err)
	}
	ent, _ := e.Entry(idx2)
	if ent.LinAddr != 0x7000 || ent.EnclaveID != 5 || ent.Perms != PermR|PermW {
		t.Fatalf("metadata lost: %+v", ent)
	}
	if m.Normal() != CostPageEvict+CostPageLoad {
		t.Fatalf("charged %d", m.Normal())
	}
}

func TestELDURejectsReplay(t *testing.T) {
	e := testEPC(4)
	m := NewMeter()
	idx, _ := e.Alloc(5, PageREG, 0x1000, PermR|PermW, []byte("v1"))
	ev1, err := e.EWB(m, idx)
	if err != nil {
		t.Fatal(err)
	}
	// Load, modify, evict again → ev2 is the current version.
	idx, err = e.ELDU(m, ev1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Write(5, idx, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	ev2, err := e.EWB(m, idx)
	if err != nil {
		t.Fatal(err)
	}
	// Rollback attack: the OS replays the stale v1 blob.
	if _, err := e.ELDU(m, ev1); err != ErrPageVersion {
		t.Fatalf("stale page accepted: %v", err)
	}
	// The genuine latest version loads.
	idx, err = e.ELDU(m, ev2)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := e.Read(5, idx)
	if !bytes.Equal(got[:2], []byte("v2")) {
		t.Fatalf("got %q", got[:2])
	}
	// Double-load of the same blob also fails (token consumed).
	if _, err := e.ELDU(m, ev2); err != ErrPageVersion {
		t.Fatalf("double load accepted: %v", err)
	}
}

func TestELDURejectsTamperedBlob(t *testing.T) {
	e := testEPC(4)
	m := NewMeter()
	idx, _ := e.Alloc(5, PageREG, 0x1000, PermR, []byte("data"))
	ev, err := e.EWB(m, idx)
	if err != nil {
		t.Fatal(err)
	}
	cp := append([]byte{}, ev.Blob...)
	cp[40] ^= 1
	if _, err := e.ELDU(m, &EvictedPage{Blob: cp}); err != ErrPageVersion {
		t.Fatalf("tampered blob accepted: %v", err)
	}
	if _, err := e.ELDU(m, &EvictedPage{Blob: cp[:30]}); err != ErrPageVersion {
		t.Fatalf("short blob accepted: %v", err)
	}
	if _, err := e.ELDU(m, nil); err != ErrPageVersion {
		t.Fatalf("nil blob accepted: %v", err)
	}
}

func TestEWBEnablesOvercommit(t *testing.T) {
	// An EPC with 2 frames can still host 5 pages' worth of state via
	// OS-driven paging.
	e := testEPC(2)
	m := NewMeter()
	blobs := make(map[int]*EvictedPage)
	for i := 0; i < 5; i++ {
		idx, err := e.Alloc(1, PageREG, uint64(i)*PageSize, PermR|PermW, []byte{byte(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		ev, err := e.EWB(m, idx)
		if err != nil {
			t.Fatal(err)
		}
		blobs[i] = ev
	}
	for i := 4; i >= 0; i-- {
		idx, err := e.ELDU(m, blobs[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Read(1, idx)
		if err != nil || got[0] != byte(i+1) {
			t.Fatalf("page %d: %v %v", i, got[0], err)
		}
		ev, err := e.EWB(m, idx)
		if err != nil {
			t.Fatal(err)
		}
		blobs[i] = ev
	}
}

func TestEWBRejectsInvalidAndSECS(t *testing.T) {
	e := testEPC(4)
	m := NewMeter()
	if _, err := e.EWB(m, 99); err != ErrEPCAccess {
		t.Fatalf("out-of-range EWB: %v", err)
	}
	idx, _ := e.Alloc(0, PageSECS, 0, PermR, []byte("SECS"))
	if _, err := e.EWB(m, idx); err == nil {
		t.Fatal("SECS page evicted")
	}
}

// TestELDUFullEPCPreservesToken is the regression test for the
// token-consumption ordering bug: a reload attempted against a full EPC
// must fail with ErrEPCFull but keep the version token, so the same
// blob loads successfully once a frame frees up. The buggy ordering
// consumed the token first, permanently destroying the page (every
// retry then failed ErrPageVersion).
func TestELDUFullEPCPreservesToken(t *testing.T) {
	e := testEPC(2)
	m := NewMeter()
	idx, err := e.Alloc(1, PageREG, 0x1000, PermR|PermW, []byte("survivor"))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := e.EWB(m, idx)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the EPC so the reload has nowhere to go.
	f1, err := e.Alloc(2, PageREG, 0x2000, PermR, []byte("filler1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Alloc(2, PageREG, 0x3000, PermR, []byte("filler2")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ELDU(m, ev); err != ErrEPCFull {
		t.Fatalf("reload into full EPC: got %v, want ErrEPCFull", err)
	}
	// Every retry while still full must keep failing the same way — not
	// ErrPageVersion, which would mean the token was consumed.
	if _, err := e.ELDU(m, ev); err != ErrEPCFull {
		t.Fatalf("retry into full EPC: got %v, want ErrEPCFull", err)
	}
	// Free a frame and retry: the token must have survived.
	if _, err := e.EWB(m, f1); err != nil {
		t.Fatal(err)
	}
	idx2, err := e.ELDU(m, ev)
	if err != nil {
		t.Fatalf("retry after freeing a frame: %v", err)
	}
	got, err := e.Read(1, idx2)
	if err != nil || !bytes.Equal(got[:8], []byte("survivor")) {
		t.Fatalf("%q %v", got[:8], err)
	}
}

// tallyProbe counts probe observations, for pinning failed-path
// coverage at zero.
type tallyProbe struct {
	mu     sync.Mutex
	counts map[string]uint64
}

func (p *tallyProbe) Observe(kind string, n uint64) {
	p.mu.Lock()
	if p.counts == nil {
		p.counts = make(map[string]uint64)
	}
	p.counts[kind] += n
	p.mu.Unlock()
}

func (p *tallyProbe) get(kind string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[kind]
}

// TestFailedPagingChargesNothing pins the failed-path meter tally and
// probe coverage at zero: rejected EWB/ELDU calls must not charge
// CostPageEvict/CostPageLoad or observe the EWB/ELDU kinds, or
// adversarial garbage would skew the tables and the trace attribution.
func TestFailedPagingChargesNothing(t *testing.T) {
	e := testEPC(2)
	pr := &tallyProbe{}
	e.probe.Store(&probeHolder{p: pr})
	m := NewMeter()

	// Failed EWB paths: out of range, invalid frame, SECS page.
	if _, err := e.EWB(m, -1); err == nil {
		t.Fatal("negative index evicted")
	}
	if _, err := e.EWB(m, 0); err == nil { // frame 0 not allocated
		t.Fatal("invalid frame evicted")
	}
	sidx, _ := e.Alloc(0, PageSECS, 0, PermR, []byte("SECS"))
	if _, err := e.EWB(m, sidx); err == nil {
		t.Fatal("SECS page evicted")
	}

	// Failed ELDU paths: nil, short, tampered, replayed, full EPC.
	idx, _ := e.Alloc(1, PageREG, 0x1000, PermR|PermW, []byte("x"))
	ev, err := e.EWB(m, idx)
	if err != nil {
		t.Fatal(err)
	}
	evictCharge := m.Normal() // the one legitimate EWB
	if evictCharge != CostPageEvict {
		t.Fatalf("good EWB charged %d, want %d", evictCharge, CostPageEvict)
	}
	if _, err := e.ELDU(m, nil); err != ErrPageVersion {
		t.Fatalf("nil blob: %v", err)
	}
	if _, err := e.ELDU(m, &EvictedPage{Blob: ev.Blob[:40]}); err != ErrPageVersion {
		t.Fatalf("short blob: %v", err)
	}
	cp := append([]byte{}, ev.Blob...)
	cp[20] ^= 1
	if _, err := e.ELDU(m, &EvictedPage{Blob: cp}); err != ErrPageVersion {
		t.Fatalf("tampered blob: %v", err)
	}
	// Fill the EPC; a structurally valid reload with no free frame also
	// charges nothing.
	if _, err := e.Alloc(2, PageREG, 0x2000, PermR, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ELDU(m, ev); err != ErrEPCFull {
		t.Fatalf("full EPC: %v", err)
	}

	if got := m.Normal(); got != evictCharge {
		t.Fatalf("failed paging paths charged %d extra normal instructions", got-evictCharge)
	}
	if pr.get(KindEWB) != 1 || pr.get(KindPageEvict) != 1 {
		t.Fatalf("failed EWB paths observed: EWB=%d evict=%d, want 1/1", pr.get(KindEWB), pr.get(KindPageEvict))
	}
	if pr.get(KindELDU) != 0 || pr.get(KindPageLoad) != 0 {
		t.Fatalf("failed ELDU paths observed: ELDU=%d load=%d, want 0/0", pr.get(KindELDU), pr.get(KindPageLoad))
	}
}

// TestEWBNonceDeterministic checks the determinism contract of evicted
// blobs: identical platforms (same MEE key) performing identical
// alloc/evict sequences produce byte-identical blobs, and re-evictions
// of the same page advance the per-(enclave, addr) counter so their
// nonces — and blobs — differ.
func TestEWBNonceDeterministic(t *testing.T) {
	run := func() ([]byte, []byte, []byte) {
		e := testEPC(4)
		m := NewMeter()
		idx, _ := e.Alloc(7, PageREG, 0x5000, PermR|PermW, []byte("det"))
		ev1, err := e.EWB(m, idx)
		if err != nil {
			t.Fatal(err)
		}
		idx, err = e.ELDU(m, ev1)
		if err != nil {
			t.Fatal(err)
		}
		ev2, err := e.EWB(m, idx) // second eviction of the same page
		if err != nil {
			t.Fatal(err)
		}
		idxB, _ := e.Alloc(7, PageREG, 0x6000, PermR|PermW, []byte("det"))
		evB, err := e.EWB(m, idxB) // same content, different address
		if err != nil {
			t.Fatal(err)
		}
		return ev1.Blob, ev2.Blob, evB.Blob
	}
	a1, a2, aB := run()
	b1, b2, bB := run()
	if !bytes.Equal(a1, b1) || !bytes.Equal(a2, b2) || !bytes.Equal(aB, bB) {
		t.Fatal("identical eviction sequences produced different blobs")
	}
	if bytes.Equal(a1[:16], a2[:16]) {
		t.Fatal("re-eviction reused the nonce")
	}
	if bytes.Equal(a1[:16], aB[:16]) {
		t.Fatal("distinct pages share a nonce")
	}
}

// TestSeededPlatformDeterministic checks PlatformConfig.Seed: two
// platforms built from the same seed share fused secrets — same
// attestation key, same sealed bytes, same evicted-page blobs.
func TestSeededPlatformDeterministic(t *testing.T) {
	mk := func() *Platform {
		p, err := NewPlatform("det", PlatformConfig{EPCFrames: 8, Seed: []byte("epc-sweep-seed")})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1, p2 := mk(), mk()
	if !bytes.Equal(p1.AttestationPublicKey(), p2.AttestationPublicKey()) {
		t.Fatal("seeded platforms disagree on attestation key")
	}
	m := NewMeter()
	evict := func(p *Platform) []byte {
		idx, err := p.EPC().Alloc(3, PageREG, 0x9000, PermR|PermW, []byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		ev, err := p.EPC().EWB(m, idx)
		if err != nil {
			t.Fatal(err)
		}
		return ev.Blob
	}
	if !bytes.Equal(evict(p1), evict(p2)) {
		t.Fatal("seeded platforms produced different evicted blobs")
	}
	// Unseeded platforms must keep fresh random secrets.
	q1, err := NewPlatform("r1", PlatformConfig{EPCFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := NewPlatform("r2", PlatformConfig{EPCFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(q1.AttestationPublicKey(), q2.AttestationPublicKey()) {
		t.Fatal("unseeded platforms share an attestation key")
	}
}
