// Package core implements a software model of Intel SGX: a commodity
// trusted execution environment exposing enclaves, an Enclave Page Cache
// (EPC), SHA-256 software measurement, local report generation
// (EREPORT/EGETKEY), and an instruction-accounting model.
//
// The package plays the role OpenSGX plays in the paper "A First Step
// Towards Leveraging Commodity Trusted Execution Environments for Network
// Applications" (HotNets 2015): it is not an x86 emulator, but it executes
// the same SGX instruction sequence an SGX application would execute and
// charges each instruction — and each metered "normal" operation — to a
// Meter, so that the paper's evaluation methodology (counting SGX usermode
// instructions and normal instructions, then converting to cycles via
// cycles = 10,000·SGX(U) + 1.8·normal) can be reproduced exactly.
//
// # Threat model
//
// As in SGX, everything outside the CPU package is untrusted: the host may
// inspect EPC frames (it sees only sealed bytes), may refuse service
// (denial of service is out of scope), but cannot read or modify enclave
// state without changing the enclave's measurement. Code running inside an
// enclave is identified by MRENCLAVE (a SHA-256 digest accumulated over the
// pages added at build time) and MRSIGNER (the digest of the public key
// that signed the enclave).
//
// # Execution model
//
// Enclave "code" is a set of named Go functions registered by a Program.
// The program's identity is its canonical code image — the bytes measured
// into MRENCLAVE. Entering the enclave (EENTER) dispatches to a registered
// function; host services (I/O, time) are reached through OCALLs which
// leave and re-enter the enclave, charging the corresponding context-switch
// costs. This mirrors how OpenSGX ran network applications: real protocol
// logic, emulated trusted hardware.
package core
