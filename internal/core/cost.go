package core

// Instruction cost model.
//
// The paper measures two quantities for every operation: the number of SGX
// usermode instructions (SGX(U)) and the number of "normal" x86
// instructions, obtained from OpenSGX's QEMU-based tracer. This file holds
// the calibrated normal-instruction costs of the operations that dominate
// the paper's evaluation. Constants are solved from the paper's own tables
// (see DESIGN.md §4):
//
//   - Table 1 (remote attestation): target 20 / quoting 17 / challenger 8
//     SGX(U) instructions; 154M / 125M / 124M base normal instructions;
//     the DH-1024 exchange adds 4184M to the target (safe-prime parameter
//     generation) and 224M to the challenger (modular exponentiation).
//   - Table 2 (packet I/O): a single in-enclave send costs 6 SGX(U) and
//     13K normal instructions; a 100-packet batch costs 204 SGX(U) and
//     136K normal. Solving: 2 SGX(U) + ~1.36K normal per batched packet,
//     plus a fixed 4 SGX(U) + ~11.6K normal per I/O call. With AES-ECB-128
//     the cipher context setup (key schedule) costs 76.4K and each MTU
//     encryption 7.6K: 1 packet → 84K extra, 100 packets → 836K extra,
//     matching the table.
//   - Table 4 / Figure 3: running inside the enclave inflates the
//     controller's normal instruction count by ~82% (inter-domain) and
//     ~69% (AS-local), attributed by the paper to in-enclave I/O and
//     dynamic memory allocation forcing enclave exits.
//
// Cycle conversion (paper footnote 6): the measured average IPC is 1.8 and
// each SGX instruction is assumed to take 10K cycles; the paper computes
//
//	cycles = 10,000 × #SGX(U) + 1.8 × #normal
//
// (e.g. challenger: 8×10K + 1.8×348M ≈ 626M cycles — the number quoted in
// §5). CyclesOf applies the same formula.
const (
	// SGXInstructionCycles is the assumed cost of one SGX usermode
	// instruction, from [7] (Haven) via the paper's §5.
	SGXInstructionCycles = 10_000

	// CyclesPerNormalInstruction is the paper's measured conversion factor
	// ("IPC" 1.8, applied multiplicatively exactly as the paper does).
	// Expressed as a rational (×10/10) to keep all accounting integral.
	cyclesPerNormalNum = 18
	cyclesPerNormalDen = 10
)

// Calibrated normal-instruction costs. All values are instruction counts.
const (
	// --- Crypto (Table 1 deltas) ---

	// CostDHParamGen is the cost of generating fresh 1024-bit
	// Diffie-Hellman parameters (safe-prime search). Dominates the target
	// enclave's "w/ DH" column: 4338M − 154M(base) − 224M(key agreement,
	// which the target also performs).
	CostDHParamGen = 3_960_000_000

	// CostDHKeyAgree is the cost of one side's DH public-key computation
	// plus shared-secret derivation (two 1024-bit modexps):
	// challenger "w/ DH" − "w/o DH" = 348M − 124M.
	CostDHKeyAgree = 224_000_000

	// CostAESKeySchedule is the AES-128 key schedule (cipher context
	// setup), solved from Table 2 (see package comment).
	CostAESKeySchedule = 76_400

	// CostAESBlockPerByte approximates AES-ECB encryption cost per byte;
	// one MTU (1500 B) packet costs ~7.6K instructions.
	CostAESBlockPerByte = 5

	// CostSHA256PerByte is the software SHA-256 cost per input byte,
	// consistent with the measurement phase being negligible next to DH.
	CostSHA256PerByte = 15

	// CostSigSign and CostSigVerify model the QUOTE signature (the paper
	// uses EPID; we use a platform signature — see DESIGN.md). Folded into
	// the quoting enclave's 125M base in Table 1; kept separate so
	// non-attestation uses of signatures are still charged.
	CostSigSign   = 2_000_000
	CostSigVerify = 4_000_000

	// CostHMAC is the fixed cost of a report MAC computation over the
	// 432-byte REPORT body.
	CostHMAC = 20_000

	// --- Attestation skeletons (Table 1 base columns) ---

	// CostAttestTargetBase is the target enclave's normal-instruction
	// count for remote attestation excluding DH (REPORT construction,
	// message handling, intra-attestation with the quoting enclave).
	CostAttestTargetBase = 154_000_000

	// CostAttestQuotingBase is the quoting enclave's count (REPORT
	// verification + QUOTE signing). DH does not involve the quoting
	// enclave, so this column is identical with and without DH.
	CostAttestQuotingBase = 125_000_000

	// CostAttestChallengerBase is the challenger enclave's count (QUOTE
	// signature verification + identity check).
	CostAttestChallengerBase = 124_000_000

	// --- SGX(U) instruction budgets during remote attestation (Table 1) ---

	SGXInstAttestTarget     = 20
	SGXInstAttestQuoting    = 17
	SGXInstAttestChallenger = 8

	// --- Enclave I/O (Table 2) ---

	// CostIOCallFixed is the fixed normal-instruction overhead of one
	// in-enclave I/O call (marshalling, OCALL frame setup, host syscall
	// shim), independent of how many packets the call batches. Solved
	// with CostIOPerPacket from Table 2's w/o-crypto rows:
	// fixed + 1·per = 13K, fixed + 100·per = 136K.
	CostIOCallFixed = 11_758

	// CostIOPerPacket is the per-packet normal-instruction cost within a
	// batch (copy out of the enclave, descriptor bookkeeping).
	CostIOPerPacket = 1_242

	// SGXInstIOCallFixed is the fixed SGX(U) budget of one send call:
	// EENTER + EEXIT around the ECALL plus the EEXIT/ERESUME pair of the
	// OCALL — these four arise structurally from Enclave.Call + Env.OCall
	// and are listed here only for documentation. SGXInstIOPerPacket is
	// charged per packet by the I/O shim (per-packet boundary crossing),
	// reproducing Table 2's 6 SGX(U) for one packet and 204 for a
	// 100-packet batch.
	SGXInstIOCallFixed = 4
	SGXInstIOPerPacket = 2

	// --- Enclave-mode execution surcharge (Table 4 / Figure 3) ---

	// CostEnclaveAllocFixed is charged per dynamic allocation performed
	// inside an enclave: SGX1 has no EDMM, so heap growth forces an
	// enclave exit to the untrusted runtime, page bookkeeping, and a
	// sanity-checked re-entry (the paper names dynamic memory allocation
	// as a main overhead source for Table 4). Calibrated together with
	// the controller's allocation rate so the 30-AS inter-domain
	// controller lands on Table 4's +82%.
	CostEnclaveAllocFixed = 100_000

	// SGXInstEnclaveAlloc is the EEXIT/ERESUME pair per in-enclave
	// allocation that spills to the untrusted allocator.
	SGXInstEnclaveAlloc = 2

	// --- Enclave lifecycle (one-time; excluded from steady-state tables,
	// reported separately) ---

	CostPageAdd     = 1_800 // EADD + 16×EEXTEND measurement of one 4KiB page
	CostEnclaveInit = 9_000 // EINIT signature check bookkeeping

	// --- EPC oversubscription (pager) ---

	// CostPageFault is the fixed normal-instruction cost of one EPC
	// capacity fault excluding the page crypto itself: the asynchronous
	// exit's state save, the OS fault handler's lookup and dispatch, and
	// the sanity checks on re-entry. EWB/ELDU charge their own
	// CostPageEvict/CostPageLoad on top.
	CostPageFault = 12_000

	// SGXInstPageFault is the AEX + ERESUME pair every EPC fault forces,
	// mirroring the paper's observation that enclave exits — not the
	// in-enclave work — are where SGX overhead concentrates.
	SGXInstPageFault = 2

	// --- Switchless calls (xcall rings, DESIGN.md §10) ---
	//
	// The switchless-call subsystem (internal/xcall) replaces the
	// per-call EENTER/EEXIT pair with bounded shared-memory rings: the
	// caller writes a descriptor, an enclave-resident worker drains
	// descriptors in batches, and only the batch boundary pays a
	// crossing. These constants are the modeled ring operations; the
	// amortized crossing itself is SGXInstRingDrain per drained batch.

	// CostRingEnqueue is the producer side of one descriptor: the slot
	// claim, the descriptor write, the release fence, and the doorbell
	// word check.
	CostRingEnqueue = 350

	// CostRingDequeue is the worker side of one descriptor: the
	// acquire-load, the descriptor parse, and the completion-slot write
	// the caller spins on.
	CostRingDequeue = 250

	// CostRingSpinPoll is one poll of the ring head by the spinning
	// in-enclave worker. Charged once per submission while the worker is
	// hot — the modeled price of keeping a core busy-waiting inside the
	// enclave instead of crossing.
	CostRingSpinPoll = 60

	// SGXInstRingDrain is the amortized EEXIT/ERESUME pair per drained
	// batch: the worker yields between batches, so N descriptors cost
	// one crossing instead of N (HotCalls-style accounting).
	SGXInstRingDrain = 2

	// --- Fault tolerance (this repo's extension beyond the paper) ---
	//
	// The paper's protocols assume a benign scheduler; hardening them
	// against loss, delay, and crashes adds instructions that the tables
	// must account for, or robustness would look free. These are charged
	// by the retry/timeout machinery in attest, sdnctl, and tor.

	// CostRecvTimeout is charged when a receive deadline expires: timer
	// arming, the fruitless wakeup, and the error path back out of the
	// OCALL frame.
	CostRecvTimeout = 8_000

	// CostRetryAttempt is charged per protocol retry: tearing down the
	// failed attempt's state, backoff bookkeeping, and redialing.
	CostRetryAttempt = 50_000

	// CostSessionReestablish is charged when an expired attested session
	// is detected and scheduled for re-establishment (table lookup,
	// expiry check, teardown) — the attestation itself then charges its
	// own Table 1 costs again.
	CostSessionReestablish = 20_000

	// --- Attested channels (RA-TLS, DESIGN.md §15) ---

	// CostQuoteCacheLookup is one warm hit in the RA-TLS verification
	// cache: the certificate digest, the shard lock, and the map probe
	// that stand in for a full quote re-verification. Two signature
	// checks (~2×CostSigVerify) collapse to this, which is what makes N
	// connections from the same attested peer cost ~1 verification.
	CostQuoteCacheLookup = 6_000

	// --- Trusted NF chains (DESIGN.md §16) ---
	//
	// Chained network functions evaluate a routing rule table at every
	// hop, so rule-engine work scales with (rules × hops × packets) and
	// competes directly with the enclave-crossing tax that batching
	// amortizes. The per-stage costs below model the non-crypto part of
	// each stage body; crypto-bearing stages (DPI decrypt, re-encrypt)
	// additionally pay the tlslite/sgxcrypto costs they invoke.

	// CostRuleEval is charged per rule examined by the in-enclave rule
	// engine: the scope check, field comparisons against the packet's
	// flow tuple and tag, and the walk to the next entry. A linear table
	// of R rules costs up to R of these per packet per hop.
	CostRuleEval = 400

	// CostChainClassify is one classification pass over a packet's
	// headers: protocol/port demux and the tag write.
	CostChainClassify = 600

	// CostChainFilter is one header-filter pass: deny-list membership
	// probe on the destination port plus the tag write on a hit.
	CostChainFilter = 300

	// CostChainScanPerByte is the DPI stage's per-byte pattern-match
	// cost over the recovered plaintext (the automaton step, not the
	// record decryption — that charges tlslite's own costs).
	CostChainScanPerByte = 10

	// CostChainRewritePerByte is the transform stage's per-byte cost of
	// copying a packet through the header-rewrite path.
	CostChainRewritePerByte = 2
)

// MTUBytes is the packet size used throughout the I/O evaluation.
const MTUBytes = 1500

// CyclesOf converts an instruction tally to estimated CPU cycles using the
// paper's formula: 10,000 cycles per SGX usermode instruction plus 1.8
// cycles per normal instruction.
func CyclesOf(sgxU, normal uint64) uint64 {
	return sgxU*SGXInstructionCycles + normal*cyclesPerNormalNum/cyclesPerNormalDen
}
