package core

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

// EREPORT / report verification: the hardware primitive underlying local
// (intra-platform) attestation, §2.2.

// TargetInfo names the enclave a report is destined for. Only that enclave
// (on the same platform) can derive the report key that verifies the MAC.
type TargetInfo struct {
	Measurement Measurement
}

// ReportData is the 64-byte user payload bound into a report — attestation
// protocols put channel-binding material (e.g. a Diffie-Hellman public key
// digest) here.
type ReportData [64]byte

// ReportDataFrom hashes arbitrary bytes into a ReportData value.
func ReportDataFrom(b []byte) ReportData {
	var d ReportData
	sum := sha256.Sum256(b)
	copy(d[:], sum[:])
	return d
}

// Report is the EREPORT output: the issuing enclave's identities plus user
// data, MACed with the target's report key.
type Report struct {
	MREnclave  Measurement
	MRSigner   Measurement
	Attributes Attributes
	Data       ReportData
	KeyID      [16]byte
	MAC        [32]byte
}

func (r *Report) body() []byte {
	buf := make([]byte, 0, 32+32+1+64+16)
	buf = append(buf, r.MREnclave[:]...)
	buf = append(buf, r.MRSigner[:]...)
	buf = append(buf, r.Attributes.encode())
	buf = append(buf, r.Data[:]...)
	buf = append(buf, r.KeyID[:]...)
	return buf
}

// Marshal serializes the report for transport.
func (r *Report) Marshal() []byte {
	buf := make([]byte, 0, 32+32+1+64+16+32)
	buf = append(buf, r.body()...)
	buf = append(buf, r.MAC[:]...)
	return buf
}

// UnmarshalReport parses a serialized report.
func UnmarshalReport(b []byte) (Report, bool) {
	const n = 32 + 32 + 1 + 64 + 16 + 32
	if len(b) != n {
		return Report{}, false
	}
	var r Report
	copy(r.MREnclave[:], b[:32])
	copy(r.MRSigner[:], b[32:64])
	attr := b[64]
	r.Attributes = Attributes{Debug: attr&1 != 0, Architectural: attr&2 != 0}
	copy(r.Data[:], b[65:129])
	copy(r.KeyID[:], b[129:145])
	copy(r.MAC[:], b[145:177])
	return r, true
}

// EReport executes the EREPORT instruction: it builds a report about the
// calling enclave, MACed with the target enclave's report key (which the
// instruction derives inside the CPU; the calling enclave never sees it).
func (env *Env) EReport(target TargetInfo, data ReportData) Report {
	e := env.e
	e.meter.ChargeSGX(1) // EREPORT
	e.meter.ChargeNormal(CostHMAC)
	e.plat.observe(KindEREPORT, 1)
	r := Report{
		MREnclave:  e.mrenclave,
		MRSigner:   e.mrsigner,
		Attributes: e.attrs,
		Data:       data,
		KeyID:      e.keyID,
	}
	key := e.plat.deriveKey("report", target.Measurement)
	mac := hmac.New(sha256.New, key[:])
	mac.Write(r.body())
	copy(r.MAC[:], mac.Sum(nil))
	return r
}

// VerifyReport checks a report addressed to the calling enclave: it
// derives this enclave's report key via EGETKEY and recomputes the MAC. A
// true result proves the reporting enclave runs on the same platform and
// has the identities the report claims.
func (env *Env) VerifyReport(r Report) bool {
	key, err := env.GetKey(KeyReport) // charges the EGETKEY
	if err != nil {
		return false
	}
	env.ChargeNormal(CostHMAC)
	mac := hmac.New(sha256.New, key[:])
	mac.Write(r.body())
	var want [32]byte
	copy(want[:], mac.Sum(nil))
	return hmac.Equal(want[:], r.MAC[:])
}

// Nonce is a convenience for protocols: a 64-bit counter rendered into
// ReportData alongside a payload digest.
func NonceData(nonce uint64, payload []byte) ReportData {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], nonce)
	return ReportDataFrom(append(buf[:], payload...))
}
