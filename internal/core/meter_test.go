package core

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestMeterZeroValue(t *testing.T) {
	var m Meter
	if m.SGX() != 0 || m.Normal() != 0 {
		t.Fatalf("zero meter not zero: %v", m.Snapshot())
	}
	m.ChargeSGX(3)
	m.ChargeNormal(7)
	if m.SGX() != 3 || m.Normal() != 7 {
		t.Fatalf("got %v", m.Snapshot())
	}
}

func TestMeterNilSafe(t *testing.T) {
	var m *Meter
	m.ChargeSGX(1)
	m.ChargeNormal(1)
	m.Reset()
	m.AddTally(Tally{SGXU: 1})
	if m.SGX() != 0 || m.Normal() != 0 || m.Cycles() != 0 {
		t.Fatal("nil meter must read zero")
	}
	if (m.Snapshot() != Tally{}) {
		t.Fatal("nil meter snapshot must be zero")
	}
}

func TestMeterConcurrent(t *testing.T) {
	m := NewMeter()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.ChargeSGX(1)
				m.ChargeNormal(2)
			}
		}()
	}
	wg.Wait()
	if m.SGX() != 16000 || m.Normal() != 32000 {
		t.Fatalf("lost updates: %v", m.Snapshot())
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter()
	m.ChargeSGX(5)
	m.ChargeNormal(5)
	m.Reset()
	if m.SGX() != 0 || m.Normal() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCyclesFormulaMatchesPaper(t *testing.T) {
	// §5: the challenger enclave consumes 626M cycles:
	// 8 SGX(U) instructions and 348M normal instructions.
	got := CyclesOf(8, 348_000_000)
	want := uint64(8*10_000 + 348_000_000*18/10)
	if got != want {
		t.Fatalf("CyclesOf = %d, want %d", got, want)
	}
	if got < 626_000_000 || got > 627_000_000 {
		t.Fatalf("challenger cycles %d, paper reports ≈626M", got)
	}
	// Remote platform (target w/ DH + quoting): ≈8033M cycles.
	remote := CyclesOf(20, 4_338_000_000) + CyclesOf(17, 125_000_000)
	if remote < 8_020_000_000 || remote > 8_060_000_000 {
		t.Fatalf("remote platform cycles %d, paper reports ≈8033M", remote)
	}
}

func TestTallyArithmetic(t *testing.T) {
	a := Tally{SGXU: 10, Normal: 100}
	b := Tally{SGXU: 4, Normal: 40}
	if d := a.Sub(b); d.SGXU != 6 || d.Normal != 60 {
		t.Fatalf("Sub = %v", d)
	}
	if d := b.Sub(a); d.SGXU != 0 || d.Normal != 0 {
		t.Fatalf("Sub must saturate, got %v", d)
	}
	if s := a.Add(b); s.SGXU != 14 || s.Normal != 140 {
		t.Fatalf("Add = %v", s)
	}
}

func TestTallyPropertySubAddInverse(t *testing.T) {
	f := func(aS, aN, bS, bN uint32) bool {
		a := Tally{SGXU: uint64(aS), Normal: uint64(aN)}
		b := Tally{SGXU: uint64(bS), Normal: uint64(bN)}
		// (a+b) − b == a always (no saturation possible on this path).
		return a.Add(b).Sub(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeterAddTally(t *testing.T) {
	m := NewMeter()
	m.AddTally(Tally{SGXU: 2, Normal: 3})
	m.AddTally(Tally{SGXU: 5, Normal: 7})
	if m.SGX() != 7 || m.Normal() != 10 {
		t.Fatalf("got %v", m.Snapshot())
	}
}

func TestTallyString(t *testing.T) {
	s := Tally{SGXU: 1, Normal: 10}.String()
	if s == "" {
		t.Fatal("empty String")
	}
}

// TestSnapshotAndResetPartitionsExactly drives concurrent chargers
// across repeated period boundaries and requires that the per-period
// tallies plus the final drain sum to exactly what was charged — the
// guarantee Snapshot-then-Reset cannot give (a charge landing between
// the two calls is silently dropped).
func TestSnapshotAndResetPartitionsExactly(t *testing.T) {
	m := NewMeter()
	const (
		chargers   = 8
		perCharger = 5000
	)
	var wg sync.WaitGroup
	for i := 0; i < chargers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perCharger; j++ {
				m.ChargeSGX(1)
				m.ChargeNormal(3)
			}
		}()
	}
	var periods Tally
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		periods = periods.Add(m.SnapshotAndReset())
		select {
		case <-done:
			periods = periods.Add(m.SnapshotAndReset())
			want := Tally{SGXU: chargers * perCharger, Normal: 3 * chargers * perCharger}
			if periods != want {
				t.Fatalf("periods sum to %+v, want %+v", periods, want)
			}
			if got := m.Snapshot(); got != (Tally{}) {
				t.Fatalf("meter not drained: %+v", got)
			}
			return
		default:
		}
	}
}

func TestSnapshotAndResetNilSafe(t *testing.T) {
	var m *Meter
	if got := m.SnapshotAndReset(); got != (Tally{}) {
		t.Fatalf("nil meter drained to %+v", got)
	}
}
