package core

import (
	"sync"
	"testing"
)

// countProbe is a threadsafe Probe recording per-kind totals.
type countProbe struct {
	mu     sync.Mutex
	counts map[string]uint64
}

func newCountProbe() *countProbe { return &countProbe{counts: make(map[string]uint64)} }

func (p *countProbe) Observe(kind string, n uint64) {
	p.mu.Lock()
	p.counts[kind] += n
	p.mu.Unlock()
}

func (p *countProbe) get(kind string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[kind]
}

// launchProbed builds a platform with the probe attached and an enclave
// with one echo handler.
func launchProbed(t *testing.T, pr Probe) *Enclave {
	t.Helper()
	plat, err := NewPlatform("probe-host", PlatformConfig{EPCFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	if pr != nil {
		plat.SetProbe(pr)
	}
	signer, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	prog := &Program{Name: "probed", Version: "1", Handlers: map[string]Handler{
		"echo": func(env *Env, arg []byte) ([]byte, error) { return arg, nil },
	}}
	enc, err := plat.Launch(prog, signer)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestProbeObservesInstructionStream(t *testing.T) {
	pr := newCountProbe()
	enc := launchProbed(t, pr)
	if pr.get(KindECREATE) != 1 || pr.get(KindEINIT) != 1 {
		t.Errorf("launch: ECREATE=%d EINIT=%d, want 1/1", pr.get(KindECREATE), pr.get(KindEINIT))
	}
	if pr.get(KindEADD) == 0 || pr.get(KindEEXTEND) != 16*pr.get(KindEADD) {
		t.Errorf("launch: EADD=%d EEXTEND=%d, want 16 EEXTEND per EADD", pr.get(KindEADD), pr.get(KindEEXTEND))
	}
	before := pr.get(KindEENTER)
	if _, err := enc.Call("echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if pr.get(KindEENTER) != before+1 || pr.get(KindEEXIT) == 0 {
		t.Errorf("call did not observe EENTER/EEXIT (EENTER %d→%d)", before, pr.get(KindEENTER))
	}
	if pr.get(KindEnclaveCall) != 1 {
		t.Errorf("enclave.call = %d, want 1", pr.get(KindEnclaveCall))
	}
}

// TestProbeNeverCharges is the core invariant the golden tables rest
// on: attaching a probe decomposes costs but never changes them.
func TestProbeNeverCharges(t *testing.T) {
	plain := launchProbed(t, nil)
	probed := launchProbed(t, newCountProbe())
	for _, enc := range []*Enclave{plain, probed} {
		if _, err := enc.Call("echo", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := plain.Meter().Snapshot(), probed.Meter().Snapshot(); a != b {
		t.Errorf("probe changed tallies: %+v vs %+v", a, b)
	}
}

func TestDefaultProbeInheritedAtCreation(t *testing.T) {
	pr := newCountProbe()
	SetDefaultProbe(pr)
	defer SetDefaultProbe(nil)
	enc := launchProbed(t, nil) // no explicit SetProbe — inherits
	_ = enc
	if pr.get(KindECREATE) == 0 {
		t.Error("platform did not inherit the default probe")
	}
	n := pr.get(KindECREATE)
	SetDefaultProbe(nil)
	enc2 := launchProbed(t, nil)
	_ = enc2
	if pr.get(KindECREATE) != n {
		t.Error("cleared default probe still observed a new platform")
	}
}
