package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func testPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform("test-host", PlatformConfig{EPCFrames: 256})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func echoProgram() *Program {
	return &Program{
		Name:    "echo",
		Version: "1.0",
		Handlers: map[string]Handler{
			"echo": func(env *Env, arg []byte) ([]byte, error) {
				return append([]byte("echo:"), arg...), nil
			},
		},
	}
}

func mustSigner(t *testing.T) *Signer {
	t.Helper()
	s, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLaunchAndCall(t *testing.T) {
	p := testPlatform(t)
	e, err := p.Launch(echoProgram(), mustSigner(t))
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Call("echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "echo:hi" {
		t.Fatalf("out = %q", out)
	}
	if e.Meter().SGX() != 2 { // EENTER + EEXIT
		t.Fatalf("SGX(U) = %d, want 2", e.Meter().SGX())
	}
}

func TestMeasurementDeterministicAcrossPlatforms(t *testing.T) {
	p1 := testPlatform(t)
	p2 := testPlatform(t)
	s := mustSigner(t)
	e1, err := p1.Launch(echoProgram(), s)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := p2.Launch(echoProgram(), s)
	if err != nil {
		t.Fatal(err)
	}
	if e1.MREnclave() != e2.MREnclave() {
		t.Fatal("identical programs must measure identically on any platform")
	}
	if e1.MRSigner() != e2.MRSigner() || e1.MRSigner() != s.MRSigner() {
		t.Fatal("MRSIGNER mismatch")
	}
}

func TestTamperedProgramChangesMeasurement(t *testing.T) {
	p := testPlatform(t)
	s := mustSigner(t)
	good, err := p.Launch(echoProgram(), s)
	if err != nil {
		t.Fatal(err)
	}
	tampered := echoProgram()
	tampered.Config = []byte("exfiltrate=true") // malicious rebuild
	bad, err := p.Launch(tampered, s)
	if err != nil {
		t.Fatal(err)
	}
	if good.MREnclave() == bad.MREnclave() {
		t.Fatal("tampered program measured identically — attestation would not catch it")
	}
}

func TestEInitRejectsBadSignature(t *testing.T) {
	p := testPlatform(t)
	prog := echoProgram()
	b, err := p.ECreate(len(prog.Image()))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddProgram(prog); err != nil {
		t.Fatal(err)
	}
	s := mustSigner(t)
	ss := s.Sign(b.Measurement())
	ss.Sig[0] ^= 0xff
	if _, err := b.EInit(prog, ss); err == nil {
		t.Fatal("EINIT accepted forged SIGSTRUCT")
	}
}

func TestEInitRejectsWrongMeasurement(t *testing.T) {
	p := testPlatform(t)
	prog := echoProgram()
	b, err := p.ECreate(len(prog.Image()))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddProgram(prog); err != nil {
		t.Fatal(err)
	}
	s := mustSigner(t)
	var wrong Measurement
	wrong[0] = 1
	ss := s.Sign(wrong) // signature valid, but over the wrong measurement
	if _, err := b.EInit(prog, ss); err == nil {
		t.Fatal("EINIT accepted SIGSTRUCT for a different measurement")
	}
}

func TestDoubleEInitRejected(t *testing.T) {
	p := testPlatform(t)
	prog := echoProgram()
	b, err := p.ECreate(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddProgram(prog); err != nil {
		t.Fatal(err)
	}
	s := mustSigner(t)
	if _, err := b.EInit(prog, s.Sign(b.Measurement())); err != nil {
		t.Fatal(err)
	}
	if _, err := b.EInit(prog, s.Sign(b.Measurement())); err == nil {
		t.Fatal("double EINIT accepted")
	}
	if err := b.AddPage(0x99000, PageREG, PermR, nil); err == nil {
		t.Fatal("EADD after EINIT accepted (SGX1 has no EDMM)")
	}
}

func TestCallUnknownEntryPoint(t *testing.T) {
	p := testPlatform(t)
	e, err := p.Launch(echoProgram(), mustSigner(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("nope", nil); err == nil {
		t.Fatal("call to unknown entry point succeeded")
	}
}

func TestMainRunsOnce(t *testing.T) {
	p := testPlatform(t)
	ran := 0
	prog := &Program{
		Name:    "with-main",
		Version: "1",
		Main: func(env *Env, arg []byte) ([]byte, error) {
			ran++
			return nil, nil
		},
		Handlers: map[string]Handler{},
	}
	if _, err := p.Launch(prog, mustSigner(t)); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("main ran %d times", ran)
	}
}

func TestMainFailureAbortsLaunch(t *testing.T) {
	p := testPlatform(t)
	prog := &Program{
		Name:    "bad-main",
		Version: "1",
		Main: func(env *Env, arg []byte) ([]byte, error) {
			return nil, errors.New("boom")
		},
	}
	if _, err := p.Launch(prog, mustSigner(t)); err == nil {
		t.Fatal("launch succeeded despite failing main")
	}
	if len(p.Enclaves()) != 0 {
		t.Fatal("failed enclave left registered")
	}
}

func TestDestroyFreesEPCAndBlocksCalls(t *testing.T) {
	p := testPlatform(t)
	before := p.EPC().FreeCount()
	e, err := p.Launch(echoProgram(), mustSigner(t))
	if err != nil {
		t.Fatal(err)
	}
	if p.EPC().FreeCount() >= before {
		t.Fatal("launch consumed no EPC frames")
	}
	e.Destroy()
	e.Destroy() // idempotent
	if _, err := e.Call("echo", nil); err == nil {
		t.Fatal("destroyed enclave accepted a call")
	}
	// SECS page remains accounted to enclave 0; program pages come back.
	if p.EPC().FreeCount() < before-1 {
		t.Fatalf("EPC frames not reclaimed: before=%d after=%d", before, p.EPC().FreeCount())
	}
}

func TestOCallRequiresHostAndChargesExit(t *testing.T) {
	p := testPlatform(t)
	prog := &Program{
		Name:    "io",
		Version: "1",
		Handlers: map[string]Handler{
			"do": func(env *Env, arg []byte) ([]byte, error) {
				return env.OCall("svc", arg)
			},
		},
	}
	e, err := p.Launch(prog, mustSigner(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("do", nil); !errors.Is(err, ErrNoHost) {
		t.Fatalf("err = %v, want ErrNoHost", err)
	}
	e.BindHost(HostFunc(func(service string, arg []byte) ([]byte, error) {
		return append([]byte(service+":"), arg...), nil
	}))
	e.Meter().Reset()
	out, err := e.Call("do", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "svc:x" {
		t.Fatalf("out = %q", out)
	}
	// EENTER + EEXIT(call) + EEXIT/ERESUME (ocall) = 4.
	if got := e.Meter().SGX(); got != 4 {
		t.Fatalf("SGX(U) = %d, want 4", got)
	}
}

func TestAllocChargesSurcharge(t *testing.T) {
	p := testPlatform(t)
	prog := &Program{
		Name:    "alloc",
		Version: "1",
		Handlers: map[string]Handler{
			"a": func(env *Env, arg []byte) ([]byte, error) {
				buf := env.Alloc(128)
				return buf[:1], nil
			},
		},
	}
	e, err := p.Launch(prog, mustSigner(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("a", nil); err != nil {
		t.Fatal(err)
	}
	if got := e.Meter().SGX(); got != 2+SGXInstEnclaveAlloc {
		t.Fatalf("SGX(U) = %d, want %d", got, 2+SGXInstEnclaveAlloc)
	}
	if got := e.Meter().Normal(); got != CostEnclaveAllocFixed {
		t.Fatalf("normal = %d, want %d", got, CostEnclaveAllocFixed)
	}
}

func TestGetKeyBindings(t *testing.T) {
	p := testPlatform(t)
	s := mustSigner(t)
	launch := func(prog *Program) *Enclave {
		e, err := p.Launch(prog, s)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	keyOf := func(e *Enclave, name KeyName) [32]byte {
		var got [32]byte
		if _, err := e.Call("k", []byte(name)); err != nil {
			t.Fatal(err)
		}
		return got
	}
	_ = keyOf
	var k1seal, k2seal, k1enc, k2enc [32]byte
	mk := func(name string, seal, enc *[32]byte) *Program {
		return &Program{
			Name:    name,
			Version: "1",
			Handlers: map[string]Handler{
				"k": func(env *Env, arg []byte) ([]byte, error) {
					ks, err := env.GetKey(KeySeal)
					if err != nil {
						return nil, err
					}
					ke, err := env.GetKey(KeySealEnclave)
					if err != nil {
						return nil, err
					}
					*seal, *enc = ks, ke
					return nil, nil
				},
			},
		}
	}
	e1 := launch(mk("prog-a", &k1seal, &k1enc))
	e2 := launch(mk("prog-b", &k2seal, &k2enc))
	if _, err := e1.Call("k", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Call("k", nil); err != nil {
		t.Fatal(err)
	}
	if k1seal != k2seal {
		t.Fatal("same-signer enclaves must share the MRSIGNER seal key")
	}
	if k1enc == k2enc {
		t.Fatal("different programs must derive different MRENCLAVE seal keys")
	}
	if _, err := e1.Call("k", nil); err != nil {
		t.Fatal(err)
	}
}

func TestGetKeyUnknownName(t *testing.T) {
	p := testPlatform(t)
	prog := &Program{
		Name:    "badkey",
		Version: "1",
		Handlers: map[string]Handler{
			"k": func(env *Env, arg []byte) ([]byte, error) {
				_, err := env.GetKey("nonsense")
				return nil, err
			},
		},
	}
	e, err := p.Launch(prog, mustSigner(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("k", nil); err == nil {
		t.Fatal("unknown key name accepted")
	}
}

func TestAttestationKeyRestricted(t *testing.T) {
	p := testPlatform(t)
	prog := &Program{
		Name:    "wannabe-quoting",
		Version: "1",
		Handlers: map[string]Handler{
			"steal": func(env *Env, arg []byte) ([]byte, error) {
				_, err := env.AttestationKey()
				return nil, err
			},
		},
	}
	e, err := p.Launch(prog, mustSigner(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("steal", nil); err == nil {
		t.Fatal("non-architectural enclave obtained the platform attestation key")
	}
}

func TestArchitecturalEnclaveViaArchSigner(t *testing.T) {
	arch := mustSigner(t)
	p, err := NewPlatform("h", PlatformConfig{EPCFrames: 128, ArchSigner: arch.MRSigner()})
	if err != nil {
		t.Fatal(err)
	}
	prog := &Program{
		Name:    "quoting",
		Version: "1",
		Handlers: map[string]Handler{
			"key": func(env *Env, arg []byte) ([]byte, error) {
				_, err := env.AttestationKey()
				return nil, err
			},
		},
	}
	e, err := p.Launch(prog, arch)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Attrs().Architectural {
		t.Fatal("arch-signed enclave not marked architectural")
	}
	if _, err := e.Call("key", nil); err != nil {
		t.Fatalf("architectural enclave denied attestation key: %v", err)
	}
	// Same program signed by someone else is not architectural.
	e2, err := p.Launch(prog, mustSigner(t))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Attrs().Architectural {
		t.Fatal("non-arch signer produced architectural enclave")
	}
}

func TestProgramImageSensitivity(t *testing.T) {
	base := echoProgram()
	variants := []*Program{
		{Name: "echo2", Version: base.Version, Handlers: base.Handlers},
		{Name: base.Name, Version: "1.1", Handlers: base.Handlers},
		{Name: base.Name, Version: base.Version, Config: []byte("x"), Handlers: base.Handlers},
		{Name: base.Name, Version: base.Version, Handlers: map[string]Handler{"other": base.Handlers["echo"]}},
	}
	img := base.Image()
	for i, v := range variants {
		if bytes.Equal(img, v.Image()) {
			t.Fatalf("variant %d has identical image", i)
		}
	}
	// Handler *order* must not matter (map iteration is randomized).
	h := base.Handlers["echo"]
	a := &Program{Name: "m", Version: "1", Handlers: map[string]Handler{"a": h, "b": h, "c": h}}
	b := &Program{Name: "m", Version: "1", Handlers: map[string]Handler{"c": h, "b": h, "a": h}}
	if !bytes.Equal(a.Image(), b.Image()) {
		t.Fatal("image depends on map iteration order")
	}
}

func TestProgramValidate(t *testing.T) {
	if err := (&Program{}).Validate(); err == nil {
		t.Fatal("nameless program validated")
	}
	if err := (&Program{Name: "x"}).Validate(); err == nil {
		t.Fatal("entry-point-less program validated")
	}
	if err := echoProgram().Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: any two programs whose images differ produce different
// measurements (collision would require breaking SHA-256).
func TestMeasurementInjectivityProperty(t *testing.T) {
	p := testPlatform(t)
	s := mustSigner(t)
	seen := map[Measurement]string{}
	f := func(name, version string, config []byte) bool {
		if name == "" {
			name = "n"
		}
		prog := &Program{Name: name, Version: version, Config: config,
			Handlers: map[string]Handler{"h": func(*Env, []byte) ([]byte, error) { return nil, nil }}}
		e, err := p.Launch(prog, s)
		if err != nil {
			return true // EPC exhaustion acceptable
		}
		key := string(prog.Image())
		if prev, dup := seen[e.MREnclave()]; dup && prev != key {
			return false
		}
		seen[e.MREnclave()] = key
		e.Destroy()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentEnclaveCalls: the runtime must tolerate concurrent
// ECALLs into the same enclave (the controller serves many AS
// connections at once) without losing meter updates.
func TestConcurrentEnclaveCalls(t *testing.T) {
	p := testPlatform(t)
	e, err := p.Launch(echoProgram(), mustSigner(t))
	if err != nil {
		t.Fatal(err)
	}
	const workers, calls = 8, 50
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < calls; i++ {
				out, err := e.Call("echo", []byte{byte(w)})
				if err != nil {
					errs <- err
					return
				}
				if len(out) != 6 || out[5] != byte(w) {
					errs <- errors.New("cross-talk between concurrent calls")
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// EENTER+EEXIT per call, none lost.
	if got := e.Meter().SGX(); got != 2*workers*calls {
		t.Fatalf("SGX(U)=%d, want %d", got, 2*workers*calls)
	}
}
