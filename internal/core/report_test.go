package core

import (
	"testing"
	"testing/quick"
)

// launchPair launches two enclaves (A, B) on the same platform plus a
// helper for cross-verifying reports.
func launchPair(t *testing.T) (*Platform, *Enclave, *Enclave) {
	t.Helper()
	p := testPlatform(t)
	s := mustSigner(t)
	mk := func(name string) *Program {
		return &Program{
			Name:    name,
			Version: "1",
			Handlers: map[string]Handler{
				"report": func(env *Env, arg []byte) ([]byte, error) {
					var ti TargetInfo
					copy(ti.Measurement[:], arg[:32])
					r := env.EReport(ti, ReportDataFrom(arg[32:]))
					return r.Marshal(), nil
				},
				"verify": func(env *Env, arg []byte) ([]byte, error) {
					r, ok := UnmarshalReport(arg)
					if !ok {
						return []byte{0}, nil
					}
					if env.VerifyReport(r) {
						return []byte{1}, nil
					}
					return []byte{0}, nil
				},
			},
		}
	}
	a, err := p.Launch(mk("prog-a"), s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Launch(mk("prog-b"), s)
	if err != nil {
		t.Fatal(err)
	}
	return p, a, b
}

func makeReport(t *testing.T, from, to *Enclave, payload []byte) Report {
	t.Helper()
	target := to.MREnclave()
	arg := append(append([]byte{}, target[:]...), payload...)
	out, err := from.Call("report", arg)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := UnmarshalReport(out)
	if !ok {
		t.Fatal("bad report encoding")
	}
	return r
}

func verifyReport(t *testing.T, in *Enclave, r Report) bool {
	t.Helper()
	out, err := in.Call("verify", r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	return out[0] == 1
}

func TestLocalAttestationRoundTrip(t *testing.T) {
	_, a, b := launchPair(t)
	r := makeReport(t, a, b, []byte("dh-pub"))
	if r.MREnclave != a.MREnclave() || r.MRSigner != a.MRSigner() {
		t.Fatal("report carries wrong identities")
	}
	if !verifyReport(t, b, r) {
		t.Fatal("target rejected genuine report")
	}
}

func TestReportNotVerifiableByThirdEnclave(t *testing.T) {
	_, a, b := launchPair(t)
	r := makeReport(t, a, b, nil)
	// a itself is not the target: its report key differs.
	if verifyReport(t, a, r) {
		t.Fatal("non-target enclave verified a report not addressed to it")
	}
}

func TestReportTamperDetected(t *testing.T) {
	_, a, b := launchPair(t)
	r := makeReport(t, a, b, []byte("x"))
	cases := []func(*Report){
		func(r *Report) { r.MREnclave[0] ^= 1 },
		func(r *Report) { r.MRSigner[0] ^= 1 },
		func(r *Report) { r.Data[0] ^= 1 },
		func(r *Report) { r.MAC[0] ^= 1 },
		func(r *Report) { r.Attributes.Debug = !r.Attributes.Debug },
		func(r *Report) { r.KeyID[0] ^= 1 },
	}
	for i, mutate := range cases {
		rr := r
		mutate(&rr)
		if verifyReport(t, b, rr) {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestReportCrossPlatformRejected(t *testing.T) {
	_, a1, b1 := launchPair(t)
	_, _, b2 := launchPair(t) // different platform, same programs
	if a1.MREnclave() == b1.MREnclave() {
		t.Fatal("setup: distinct programs expected")
	}
	// Report from platform-1's A targeted at "prog-b" measurement; B on
	// platform 2 has the same measurement but a different platform secret.
	r := makeReport(t, a1, b2, nil)
	if verifyReport(t, b2, r) {
		t.Fatal("report verified across platforms — local attestation must be platform-bound")
	}
	if !verifyReport(t, b1, r) {
		t.Fatal("same-platform target rejected genuine report")
	}
}

func TestUnmarshalReportLengthCheck(t *testing.T) {
	if _, ok := UnmarshalReport(nil); ok {
		t.Fatal("nil parsed")
	}
	if _, ok := UnmarshalReport(make([]byte, 10)); ok {
		t.Fatal("short buffer parsed")
	}
}

func TestReportMarshalRoundTripProperty(t *testing.T) {
	f := func(mre, mrs [32]byte, data [64]byte, keyID [16]byte, mac [32]byte, debug, arch bool) bool {
		r := Report{
			MREnclave:  mre,
			MRSigner:   mrs,
			Attributes: Attributes{Debug: debug, Architectural: arch},
			Data:       data,
			KeyID:      keyID,
			MAC:        mac,
		}
		got, ok := UnmarshalReport(r.Marshal())
		return ok && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReportDataFromDeterministic(t *testing.T) {
	a := ReportDataFrom([]byte("hello"))
	b := ReportDataFrom([]byte("hello"))
	c := ReportDataFrom([]byte("hellp"))
	if a != b {
		t.Fatal("not deterministic")
	}
	if a == c {
		t.Fatal("distinct inputs collided")
	}
}

func TestNonceDataBindsNonce(t *testing.T) {
	if NonceData(1, []byte("p")) == NonceData(2, []byte("p")) {
		t.Fatal("nonce not bound")
	}
	if NonceData(1, []byte("p")) == NonceData(1, []byte("q")) {
		t.Fatal("payload not bound")
	}
}

func TestEReportChargesInstructions(t *testing.T) {
	_, a, b := launchPair(t)
	a.Meter().Reset()
	makeReport(t, a, b, nil)
	// EENTER + EEXIT + EREPORT = 3 SGX(U).
	if got := a.Meter().SGX(); got != 3 {
		t.Fatalf("SGX(U) = %d, want 3", got)
	}
	b.Meter().Reset()
	r := makeReport(t, a, b, nil)
	b.Meter().Reset()
	verifyReport(t, b, r)
	// EENTER + EEXIT + EGETKEY = 3 SGX(U).
	if got := b.Meter().SGX(); got != 3 {
		t.Fatalf("verify SGX(U) = %d, want 3", got)
	}
}
