package sgxcrypto

import (
	"math/rand"
	"testing"

	"sgxnet/internal/core"
)

// The cache's invariant: wall clock is the only thing it may change.
// Every logical generation still charges CostDHParamGen, so Table 1's
// tallies are bit-identical with and without a warm cache.

func TestParamCacheChargesEveryGeneration(t *testing.T) {
	ResetParamCache()
	defer ResetParamCache()
	m := core.NewMeter()
	p1, err := GenerateParams(m, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := m.Snapshot().Normal
	if first == 0 {
		t.Fatal("generation charged nothing")
	}
	p2, err := GenerateParams(m, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().Normal; got != 2*first {
		t.Errorf("cached generation charged %d, want %d (same as a fresh one)", got-first, first)
	}
	if p1.P.Cmp(p2.P) != 0 {
		t.Error("second system-entropy generation did not reuse the cached prime")
	}
	if p1.P == p2.P {
		t.Error("cache handed out an aliased big.Int; callers could corrupt it")
	}
}

func TestParamCacheCopiesAreIsolated(t *testing.T) {
	ResetParamCache()
	defer ResetParamCache()
	m := core.NewMeter()
	p1, err := GenerateParams(m, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := p1.P.String()
	p1.P.SetInt64(7) // a hostile caller scribbling on its copy
	p2, err := GenerateParams(m, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p2.P.String() != want {
		t.Error("mutating a returned copy corrupted the cache")
	}
}

// TestParamCacheBypassedForCallerReaders: a caller-supplied entropy
// source is a fixture whose byte consumption is contractual, so it must
// hit the real prime search every time, never the cache. (Prime values
// themselves cannot be compared across calls — crypto/rand.Prime
// deliberately consumes reader bytes nondeterministically.)
func TestParamCacheBypassedForCallerReaders(t *testing.T) {
	ResetParamCache()
	defer ResetParamCache()
	m := core.NewMeter()
	cached, err := GenerateParams(m, 512, nil) // warm the cache
	if err != nil {
		t.Fatal(err)
	}
	fromReader, err := GenerateParams(m, 512, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if fromReader.P.Cmp(cached.P) == 0 {
		t.Error("caller-supplied reader was served from the cache")
	}
}
