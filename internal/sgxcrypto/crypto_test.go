package sgxcrypto

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"

	"sgxnet/internal/core"
)

func TestDHAgreementStandardGroup(t *testing.T) {
	m := core.NewMeter()
	g := StandardGroup()
	a, err := GenerateKey(m, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKey(m, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := a.Shared(m, b.Public)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Shared(m, a.Public)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatal("shared secrets differ")
	}
	// 2 keygens + 2 shared = 2 full agreements = 2 × CostDHKeyAgree.
	if got := m.Normal(); got != 2*core.CostDHKeyAgree {
		t.Fatalf("charged %d, want %d", got, 2*core.CostDHKeyAgree)
	}
}

func TestDHAgreementProperty(t *testing.T) {
	g := StandardGroup()
	m := core.NewMeter()
	f := func(seed uint8) bool {
		a, err := GenerateKey(m, g, nil)
		if err != nil {
			return false
		}
		b, err := GenerateKey(m, g, nil)
		if err != nil {
			return false
		}
		sa, ea := a.Shared(m, b.Public)
		sb, eb := b.Shared(m, a.Public)
		return ea == nil && eb == nil && sa == sb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestDHRejectsBadPublic(t *testing.T) {
	m := core.NewMeter()
	g := StandardGroup()
	k, err := GenerateKey(m, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []*big.Int{
		nil,
		big.NewInt(0),
		big.NewInt(1),
		new(big.Int).Sub(g.P, big.NewInt(1)),
		new(big.Int).Add(g.P, big.NewInt(5)),
	} {
		if _, err := k.Shared(m, bad); err != ErrBadPublic {
			t.Fatalf("public %v accepted (err=%v)", bad, err)
		}
	}
}

func TestGenerateParamsChargesAndWorks(t *testing.T) {
	m := core.NewMeter()
	p, err := GenerateParams(m, 256, rand.Reader) // small for test speed
	if err != nil {
		t.Fatal(err)
	}
	if !p.P.ProbablyPrime(20) {
		t.Fatal("modulus not prime")
	}
	if m.Normal() == 0 {
		t.Fatal("param generation charged nothing")
	}
	// At the calibration point the charge equals the paper's constant.
	m2 := core.NewMeter()
	if _, err := GenerateParams(m2, 1024, rand.Reader); err != nil {
		t.Fatal(err)
	}
	if m2.Normal() != core.CostDHParamGen {
		t.Fatalf("1024-bit param gen charged %d, want %d", m2.Normal(), core.CostDHParamGen)
	}
	if _, err := GenerateParams(m, 8, nil); err == nil {
		t.Fatal("tiny modulus accepted")
	}
}

func TestScaleCost(t *testing.T) {
	if got := scaleCost(1000, 1024, 1024, 3); got != 1000 {
		t.Fatalf("identity scale = %d", got)
	}
	if got := scaleCost(1000, 512, 1024, 3); got != 125 {
		t.Fatalf("half-size cubic = %d, want 125", got)
	}
	if got := scaleCost(1, 8, 1024, 3); got != 1 {
		t.Fatalf("floor = %d, want 1", got)
	}
}

func TestAESKeyScheduleCharge(t *testing.T) {
	m := core.NewMeter()
	if _, err := NewAES(m, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if m.Normal() != core.CostAESKeySchedule {
		t.Fatalf("charged %d, want %d", m.Normal(), core.CostAESKeySchedule)
	}
	if _, err := NewAES(m, make([]byte, 8)); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestECBRoundTrip(t *testing.T) {
	m := core.NewMeter()
	c, err := NewAES(m, []byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range [][]byte{nil, []byte("x"), []byte("exactly 16 bytes"), bytes.Repeat([]byte("p"), 1500)} {
		ct := c.SealECB(m, msg)
		if len(msg) > 0 && bytes.Contains(ct, msg) {
			t.Fatal("ciphertext contains plaintext")
		}
		pt, err := c.OpenECB(m, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pt, msg) {
			t.Fatalf("round trip failed for %d bytes", len(msg))
		}
	}
}

func TestECBRejectsBadInput(t *testing.T) {
	m := core.NewMeter()
	c, _ := NewAES(m, make([]byte, 16))
	if _, err := c.OpenECB(m, []byte("short")); err == nil {
		t.Fatal("unaligned ciphertext accepted")
	}
	if _, err := c.OpenECB(m, nil); err == nil {
		t.Fatal("empty ciphertext accepted")
	}
	// Corrupt padding byte.
	ct := c.SealECB(m, []byte("hello"))
	ct[len(ct)-1] ^= 0xff
	if _, err := c.OpenECB(m, ct); err == nil {
		// Corruption may still produce valid-looking padding by chance for
		// a fixed key/plaintext — but with this pair it must not.
		t.Fatal("corrupted padding accepted")
	}
}

func TestECBChargeProportionalToBytes(t *testing.T) {
	m := core.NewMeter()
	c, _ := NewAES(m, make([]byte, 16))
	m.Reset()
	c.SealECB(m, make([]byte, core.MTUBytes))
	perPacket := m.Normal()
	// ~7.6K per MTU packet per the Table 2 calibration.
	if perPacket < 7000 || perPacket > 8100 {
		t.Fatalf("MTU encryption charged %d, want ≈7.6K", perPacket)
	}
}

func TestCTRInvolutive(t *testing.T) {
	m := core.NewMeter()
	c, _ := NewAES(m, []byte("0123456789abcdef"))
	var iv [16]byte
	iv[0] = 9
	msg := []byte("counter mode message")
	ct := make([]byte, len(msg))
	c.XORKeyStreamCTR(m, iv, ct, msg)
	pt := make([]byte, len(ct))
	c.XORKeyStreamCTR(m, iv, pt, ct)
	if !bytes.Equal(pt, msg) {
		t.Fatal("CTR round trip failed")
	}
}

func TestChannelSealOpen(t *testing.T) {
	m := core.NewMeter()
	var secret [32]byte
	copy(secret[:], "shared-secret-from-dh-exchange!!")
	a, err := NewChannel(m, secret)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewChannel(m, secret)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("policies: prefer customer routes")
	sealed, err := a.Seal(m, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Open(m, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("channel round trip failed")
	}
}

func TestChannelRejectsTampering(t *testing.T) {
	m := core.NewMeter()
	var secret [32]byte
	ch, _ := NewChannel(m, secret)
	sealed, _ := ch.Seal(m, []byte("payload"))
	for i := 0; i < len(sealed); i += 7 {
		cp := append([]byte{}, sealed...)
		cp[i] ^= 0x01
		if _, err := ch.Open(m, cp); err != ErrChannelAuth {
			t.Fatalf("tamper at byte %d accepted", i)
		}
	}
	if _, err := ch.Open(m, sealed[:10]); err != ErrChannelAuth {
		t.Fatal("truncated message accepted")
	}
}

func TestChannelWrongKeyRejected(t *testing.T) {
	m := core.NewMeter()
	var s1, s2 [32]byte
	s2[0] = 1
	a, _ := NewChannel(m, s1)
	b, _ := NewChannel(m, s2)
	sealed, _ := a.Seal(m, []byte("x"))
	if _, err := b.Open(m, sealed); err != ErrChannelAuth {
		t.Fatal("wrong-key open succeeded")
	}
}

func TestChannelPropertyRoundTrip(t *testing.T) {
	m := core.NewMeter()
	var secret [32]byte
	secret[5] = 42
	ch, err := NewChannel(m, secret)
	if err != nil {
		t.Fatal(err)
	}
	f := func(msg []byte) bool {
		sealed, err := ch.Seal(m, msg)
		if err != nil {
			return false
		}
		got, err := ch.Open(m, sealed)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSignVerifyMetered(t *testing.T) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewMeter()
	msg := []byte("quote body")
	sig := Sign(m, priv, msg)
	if m.Normal() < core.CostSigSign {
		t.Fatal("sign undercharged")
	}
	if !Verify(m, pub, msg, sig) {
		t.Fatal("genuine signature rejected")
	}
	if Verify(m, pub, append(msg, 'x'), sig) {
		t.Fatal("forged message accepted")
	}
}

func TestMACDistinctKeys(t *testing.T) {
	m := core.NewMeter()
	a := MAC(m, []byte("k1"), []byte("data"))
	b := MAC(m, []byte("k2"), []byte("data"))
	c := MAC(m, []byte("k1"), []byte("data"))
	if a == b {
		t.Fatal("different keys produced same MAC")
	}
	if a != c {
		t.Fatal("MAC not deterministic")
	}
}

// TestChannelRejectChargesZero is the validate-then-charge regression
// test for Channel.OpenAppend: a message that fails authentication (or
// framing) must leave the meter untouched — only an authenticated open
// pays the metered MAC and cipher costs.
func TestChannelRejectChargesZero(t *testing.T) {
	setup := core.NewMeter()
	var secret [32]byte
	secret[0] = 7
	ch, err := NewChannel(setup, secret)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := ch.Seal(setup, []byte("trusted payload"))
	if err != nil {
		t.Fatal(err)
	}

	flip := func(i int) []byte {
		bad := append([]byte(nil), sealed...)
		bad[i] ^= 1
		return bad
	}
	for name, bad := range map[string][]byte{
		"short":     sealed[:Overhead-1],
		"tag flip":  flip(len(sealed) - 1),
		"body flip": flip(Overhead),
	} {
		m := core.NewMeter()
		if _, err := ch.Open(m, bad); err != ErrChannelAuth {
			t.Fatalf("%s: err = %v, want ErrChannelAuth", name, err)
		}
		if m.Normal() != 0 || m.SGX() != 0 {
			t.Fatalf("%s: rejected open charged normal=%d sgx=%d, want zero", name, m.Normal(), m.SGX())
		}
	}

	// The successful path still pays the full metered bill: one MAC over
	// the body plus the CTR pass over the ciphertext.
	m := core.NewMeter()
	out, err := ch.Open(m, sealed)
	if err != nil || string(out) != "trusted payload" {
		t.Fatalf("genuine open failed: %q %v", out, err)
	}
	body := len(sealed) - 32
	want := core.CostHMAC + uint64(body)*core.CostSHA256PerByte +
		uint64(len(sealed)-Overhead)*core.CostAESBlockPerByte
	if m.Normal() != want {
		t.Fatalf("genuine open charged %d, want %d", m.Normal(), want)
	}
}
