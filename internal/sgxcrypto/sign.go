package sgxcrypto

import (
	"crypto/ed25519"

	"sgxnet/internal/core"
)

// Metered signature operations. The paper's quoting enclave signs QUOTEs
// with the processor's attestation key (EPID in real SGX; an Ed25519
// platform key here — footnote 2 of the paper itself describes the scheme
// as "a signature ... verified using the remote platform's public key").

// Sign produces a metered signature.
func Sign(m *core.Meter, priv ed25519.PrivateKey, msg []byte) []byte {
	m.ChargeNormal(core.CostSigSign + uint64(len(msg))*core.CostSHA256PerByte)
	return ed25519.Sign(priv, msg)
}

// Verify checks a metered signature.
func Verify(m *core.Meter, pub ed25519.PublicKey, msg, sig []byte) bool {
	m.ChargeNormal(core.CostSigVerify + uint64(len(msg))*core.CostSHA256PerByte)
	return ed25519.Verify(pub, msg, sig)
}
