package sgxcrypto

import (
	"math/big"
	"sync"
)

// Process-wide Diffie-Hellman parameter cache.
//
// The paper attributes ~90% of attestation cycles to the DH exchange,
// and almost all of that to the safe-prime parameter search the target
// enclave repeats on every attestation (§5). The *charged* cost is the
// measurement the tables report; the *wall-clock* prime search is pure
// emulation overhead, so the harness may reuse a previously found prime
// as long as every logical generation still charges its full cost.
// GenerateParams therefore charges CostDHParamGen on every call — Table
// 1 and Table 4 tallies are unchanged to the bit — and consults this
// cache before searching. Cache keys are (bits, entropy source): only
// the system-entropy path (rnd == nil) is cached, because a
// caller-supplied reader is a deterministic test fixture whose byte
// consumption is part of its contract.

type paramCacheKey struct {
	bits int
}

var (
	paramCacheMu sync.Mutex
	paramCache   = make(map[paramCacheKey]*DHParams)
)

// cachedParams returns a private copy of the cached group for bits, if
// one exists. Copies keep callers from aliasing (and mutating) the
// cached big.Ints.
func cachedParams(bits int) (*DHParams, bool) {
	paramCacheMu.Lock()
	defer paramCacheMu.Unlock()
	p, ok := paramCache[paramCacheKey{bits: bits}]
	if !ok {
		return nil, false
	}
	return &DHParams{P: new(big.Int).Set(p.P), G: new(big.Int).Set(p.G)}, true
}

// storeParams records a freshly generated group. The stored copy is
// private to the cache. First writer wins; a racing generator's result
// is simply not stored (both are valid groups, and the charged cost —
// the measured quantity — is identical either way).
func storeParams(bits int, p *DHParams) {
	paramCacheMu.Lock()
	defer paramCacheMu.Unlock()
	key := paramCacheKey{bits: bits}
	if _, dup := paramCache[key]; dup {
		return
	}
	paramCache[key] = &DHParams{P: new(big.Int).Set(p.P), G: new(big.Int).Set(p.G)}
}

// ResetParamCache drops every cached group — for tests that need to
// observe the generation path itself.
func ResetParamCache() {
	paramCacheMu.Lock()
	defer paramCacheMu.Unlock()
	paramCache = make(map[paramCacheKey]*DHParams)
}
