// Package sgxcrypto provides the metered cryptographic primitives the
// paper's prototype uses (polarssl in the original): 1024-bit finite-field
// Diffie-Hellman, AES-128 (ECB, as in the paper's Table 1 setup, plus CTR
// for the record channels), HMAC report MACs, and Ed25519 signatures
// standing in for EPID (see DESIGN.md §1).
//
// Every operation charges its calibrated normal-instruction cost to a
// *core.Meter, so instruction tallies reflect where the paper says the
// cycles go (e.g. "the Diffie-Hellman key exchange takes up 90% of the
// cycles", §5).
package sgxcrypto

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"sgxnet/internal/core"
)

// DHParams is a finite-field Diffie-Hellman group.
type DHParams struct {
	P *big.Int // prime modulus
	G *big.Int // generator
}

// Bits returns the modulus size in bits.
func (p *DHParams) Bits() int { return p.P.BitLen() }

// oakley2 is the 1024-bit MODP group from RFC 2409 §6.2 (Oakley group 2),
// the customary fixed DH-1024 group.
const oakley2Hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74" +
	"020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437" +
	"4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF"

var oakley2P, _ = new(big.Int).SetString(oakley2Hex, 16)

// StandardGroup returns the fixed 1024-bit MODP group. Using a fixed group
// skips parameter generation; the paper's target enclave instead generates
// fresh parameters, which is what makes its "w/ DH" column so expensive.
func StandardGroup() *DHParams {
	return &DHParams{P: new(big.Int).Set(oakley2P), G: big.NewInt(2)}
}

// GenerateParams generates fresh DH parameters of the given size, charging
// the safe-prime-search cost the paper measured (CostDHParamGen for
// 1024-bit parameters, scaled cubically for other sizes). The emulation
// uses a probabilistic prime search — the charged instruction count, not
// the wall clock, is the measured quantity — so system-entropy calls
// (rnd == nil) may satisfy the search from the process-wide parameter
// cache (paramcache.go): the full cost is charged on every call, only
// the redundant wall-clock search is skipped. A caller-supplied rnd
// bypasses the cache and always consumes the reader.
func GenerateParams(m *core.Meter, bits int, rnd io.Reader) (*DHParams, error) {
	if bits < 64 {
		return nil, fmt.Errorf("sgxcrypto: DH modulus %d bits too small", bits)
	}
	m.ChargeNormal(scaleCost(core.CostDHParamGen, bits, 1024, 3))
	useCache := rnd == nil
	if useCache {
		if p, ok := cachedParams(bits); ok {
			return p, nil
		}
		rnd = rand.Reader
	}
	p, err := rand.Prime(rnd, bits)
	if err != nil {
		return nil, fmt.Errorf("sgxcrypto: DH prime: %w", err)
	}
	params := &DHParams{P: p, G: big.NewInt(2)}
	if useCache {
		storeParams(bits, params)
	}
	return params, nil
}

// scaleCost scales a cost calibrated at refBits to bits, with the given
// polynomial degree (modexp is roughly cubic in operand size).
func scaleCost(base uint64, bits, refBits, degree int) uint64 {
	c := float64(base)
	r := float64(bits) / float64(refBits)
	for i := 0; i < degree; i++ {
		c *= r
	}
	if c < 1 {
		c = 1
	}
	return uint64(c)
}

// DHKey is one party's ephemeral DH keypair.
type DHKey struct {
	Params *DHParams
	Public *big.Int
	x      *big.Int
}

// GenerateKey creates an ephemeral keypair in the group, charging half the
// key-agreement cost (one modular exponentiation).
func GenerateKey(m *core.Meter, params *DHParams, rnd io.Reader) (*DHKey, error) {
	if params == nil || params.P == nil || params.G == nil {
		return nil, errors.New("sgxcrypto: nil DH params")
	}
	if rnd == nil {
		rnd = rand.Reader
	}
	m.ChargeNormal(scaleCost(core.CostDHKeyAgree/2, params.Bits(), 1024, 3))
	// x ∈ [2, P−2]
	max := new(big.Int).Sub(params.P, big.NewInt(3))
	x, err := rand.Int(rnd, max)
	if err != nil {
		return nil, err
	}
	x.Add(x, big.NewInt(2))
	return &DHKey{
		Params: params,
		Public: new(big.Int).Exp(params.G, x, params.P),
		x:      x,
	}, nil
}

// ErrBadPublic reports an out-of-range peer public value — the sanity
// check the paper's §6 (Iago attacks) demands on externally supplied data.
var ErrBadPublic = errors.New("sgxcrypto: peer DH public value out of range")

// Shared computes the shared secret with the peer's public value, charging
// the other half of the key-agreement cost. The returned secret is the
// SHA-256 of the raw group element, giving a uniform 32-byte key.
func (k *DHKey) Shared(m *core.Meter, peerPub *big.Int) ([32]byte, error) {
	var out [32]byte
	if peerPub == nil || peerPub.Cmp(big.NewInt(2)) < 0 ||
		peerPub.Cmp(new(big.Int).Sub(k.Params.P, big.NewInt(1))) >= 0 {
		return out, ErrBadPublic
	}
	m.ChargeNormal(scaleCost(core.CostDHKeyAgree/2, k.Params.Bits(), 1024, 3))
	z := new(big.Int).Exp(peerPub, k.x, k.Params.P)
	out = sha256.Sum256(z.Bytes())
	return out, nil
}
