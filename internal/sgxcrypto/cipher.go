package sgxcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"

	"sgxnet/internal/core"
)

// AES symmetric channel cipher. The paper's evaluation uses AES-ECB-128
// (§5, Table 1 setup); applications that need semantic security use the
// CTR+HMAC mode. Creating a Cipher charges the key-schedule cost; every
// encryption charges the per-byte cost — reproducing Table 2's "the cipher
// context setup amortizes over a batch" effect.

// Cipher is a metered AES-128 cipher context.
type Cipher struct {
	block cipher.Block
	key   [16]byte
}

// NewAES builds an AES-128 context from the first 16 bytes of key,
// charging the key-schedule cost.
func NewAES(m *core.Meter, key []byte) (*Cipher, error) {
	if len(key) < 16 {
		return nil, fmt.Errorf("sgxcrypto: AES key %d bytes, need ≥16", len(key))
	}
	m.ChargeNormal(core.CostAESKeySchedule)
	c := &Cipher{}
	copy(c.key[:], key[:16])
	b, err := aes.NewCipher(c.key[:])
	if err != nil {
		return nil, err
	}
	c.block = b
	return c, nil
}

// chargeBytes charges the per-byte symmetric cost for n bytes.
func chargeBytes(m *core.Meter, n int) {
	m.ChargeNormal(uint64(n) * core.CostAESBlockPerByte)
}

// pkcs7Pad pads src to the AES block size.
func pkcs7Pad(src []byte) []byte {
	pad := aes.BlockSize - len(src)%aes.BlockSize
	out := make([]byte, len(src)+pad)
	copy(out, src)
	for i := len(src); i < len(out); i++ {
		out[i] = byte(pad)
	}
	return out
}

func pkcs7Unpad(src []byte) ([]byte, error) {
	if len(src) == 0 || len(src)%aes.BlockSize != 0 {
		return nil, errors.New("sgxcrypto: bad padded length")
	}
	pad := int(src[len(src)-1])
	if pad == 0 || pad > aes.BlockSize || pad > len(src) {
		return nil, errors.New("sgxcrypto: bad padding")
	}
	for _, b := range src[len(src)-pad:] {
		if int(b) != pad {
			return nil, errors.New("sgxcrypto: bad padding")
		}
	}
	return src[:len(src)-pad], nil
}

// SealECB encrypts src in ECB mode with PKCS#7 padding (the paper's mode).
func (c *Cipher) SealECB(m *core.Meter, src []byte) []byte {
	padded := pkcs7Pad(src)
	chargeBytes(m, len(padded))
	out := make([]byte, len(padded))
	for i := 0; i < len(padded); i += aes.BlockSize {
		c.block.Encrypt(out[i:i+aes.BlockSize], padded[i:i+aes.BlockSize])
	}
	return out
}

// OpenECB decrypts an ECB ciphertext and strips padding.
func (c *Cipher) OpenECB(m *core.Meter, src []byte) ([]byte, error) {
	if len(src) == 0 || len(src)%aes.BlockSize != 0 {
		return nil, errors.New("sgxcrypto: ciphertext not block-aligned")
	}
	chargeBytes(m, len(src))
	out := make([]byte, len(src))
	for i := 0; i < len(src); i += aes.BlockSize {
		c.block.Decrypt(out[i:i+aes.BlockSize], src[i:i+aes.BlockSize])
	}
	return pkcs7Unpad(out)
}

// XORKeyStreamCTR runs AES-CTR over src with the given 16-byte IV. CTR is
// involutive: the same call decrypts.
func (c *Cipher) XORKeyStreamCTR(m *core.Meter, iv [16]byte, dst, src []byte) {
	chargeBytes(m, len(src))
	cipher.NewCTR(c.block, iv[:]).XORKeyStream(dst, src)
}

// MAC computes a metered HMAC-SHA256 tag.
func MAC(m *core.Meter, key, data []byte) [32]byte {
	ChargeMAC(m, len(data))
	return RawMAC(key, data)
}

// RawMAC computes an HMAC-SHA256 tag without charging any meter. It is
// the verify-side primitive for validate-then-charge paths: compute the
// candidate tag unmetered, compare, and charge ChargeMAC only when the
// message authenticates — so an attacker feeding garbage cannot make
// the victim's cost tables show work that was never trusted.
func RawMAC(key, data []byte) [32]byte {
	h := hmac.New(sha256.New, key)
	h.Write(data)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// ChargeMAC charges the metered cost of one HMAC-SHA256 over n bytes.
func ChargeMAC(m *core.Meter, n int) {
	m.ChargeNormal(core.CostHMAC + uint64(n)*core.CostSHA256PerByte)
}

// A Channel is an authenticated bidirectional secure channel keyed by a DH
// shared secret — what remote attestation bootstraps ("similar to TLS
// handshaking", §2.2). Seal produces IV‖ciphertext‖tag; Open verifies and
// decrypts.
type Channel struct {
	enc    *Cipher
	macKey [32]byte
}

// NewChannel derives a channel from a 32-byte shared secret: the first 16
// bytes key AES, a separate HMAC key is derived for integrity.
func NewChannel(m *core.Meter, secret [32]byte) (*Channel, error) {
	c, err := NewAES(m, secret[:16])
	if err != nil {
		return nil, err
	}
	mk := sha256.Sum256(append([]byte("sgxnet-channel-mac"), secret[:]...))
	return &Channel{enc: c, macKey: mk}, nil
}

// Overhead is the per-message byte overhead of Seal.
const Overhead = 16 + 32 // IV + HMAC tag

// Seal encrypts and authenticates msg.
func (ch *Channel) Seal(m *core.Meter, msg []byte) ([]byte, error) {
	return ch.SealAppendParts(m, nil, msg)
}

// SealAppendParts seals the concatenation of parts, appending the wire
// form (IV‖ciphertext‖tag) to dst and returning the extended slice.
// Passing a reused buffer as dst makes sealing allocation-free on the
// hot paths (onion layering, record encryption); parts must not alias
// dst. The keystream runs continuously across parts, so the result is
// identical to sealing the concatenated message.
func (ch *Channel) SealAppendParts(m *core.Meter, dst []byte, parts ...[]byte) ([]byte, error) {
	var iv [16]byte
	if _, err := rand.Read(iv[:]); err != nil {
		return nil, err
	}
	start := len(dst)
	dst = append(dst, iv[:]...)
	ctr := cipher.NewCTR(ch.enc.block, iv[:])
	for _, p := range parts {
		off := len(dst)
		dst = append(dst, p...)
		ctr.XORKeyStream(dst[off:], p)
		chargeBytes(m, len(p))
	}
	tag := MAC(m, ch.macKey[:], dst[start:])
	return append(dst, tag[:]...), nil
}

// ErrChannelAuth reports a failed channel authentication check.
var ErrChannelAuth = errors.New("sgxcrypto: channel message authentication failed")

// Open verifies and decrypts a sealed message.
func (ch *Channel) Open(m *core.Meter, sealed []byte) ([]byte, error) {
	out, err := ch.OpenAppend(m, nil, sealed)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// OpenAppend verifies sealed and appends the plaintext to dst,
// returning the extended slice. sealed must not alias dst. The reused
// dst buffer makes layer-by-layer unwrapping allocation-free.
//
// Rejected messages charge nothing: the MAC check runs unmetered and
// the metered MAC cost lands only once the tag authenticates
// (validate-then-charge) — so the successful-path tally is unchanged
// while a flood of forgeries costs the victim zero modeled work.
func (ch *Channel) OpenAppend(m *core.Meter, dst, sealed []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, ErrChannelAuth
	}
	body, tag := sealed[:len(sealed)-32], sealed[len(sealed)-32:]
	want := RawMAC(ch.macKey[:], body)
	if !hmac.Equal(want[:], tag) {
		return nil, ErrChannelAuth
	}
	ChargeMAC(m, len(body))
	var iv [16]byte
	copy(iv[:], body[:16])
	off := len(dst)
	dst = append(dst, body[16:]...)
	ch.enc.XORKeyStreamCTR(m, iv, dst[off:], body[16:])
	return dst, nil
}
