package sdnctl

import (
	"sgxnet/internal/attest"
	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/ratls"
	"sgxnet/internal/topo"
)

// Attested controller↔AS channels (DESIGN.md §15). The RA-TLS variant
// of the deployment has the controller enclave mint a certificate at
// launch — its channel key quoted by the controller host's quoting
// infrastructure — and every AS-local controller admit that certificate
// through a shared verification cache before dialing. The first AS pays
// one full verification (two signature checks); the other N−1 hit the
// warm path at core.CostQuoteCacheLookup each, which is the
// amortization the -ratls-sweep quantifies.

// ControllerProgramRATLS is ControllerProgram plus the RA-TLS subject
// handlers. The handlers participate in the measurement, so the RATLS
// deployment pins a distinct identity — a build without certificate
// support cannot masquerade as one with it.
func ControllerProgramRATLS(st *ControllerState) *core.Program {
	prog := ControllerProgram(st)
	ratls.AddSubjectHandlers(prog)
	return prog
}

// ControllerMeasurementRATLS is the identity AS-local controllers pin
// in the RATLS deployment.
func ControllerMeasurementRATLS(n int) core.Measurement {
	return core.MeasureProgram(ControllerProgramRATLS(NewControllerState(n)))
}

// LaunchControllerRATLS launches the controller with certificate
// support measured in.
func LaunchControllerRATLS(host *netsim.SimHost, signer *core.Signer, n int) (*Controller, error) {
	st := NewControllerState(n)
	return launchController(host, signer, st, ControllerProgramRATLS(st))
}

// ratlsConfig switches runSGX to certificate admission.
type ratlsConfig struct {
	// Shards sizes the shared verification cache (default 4).
	Shards int
}

func (c *ratlsConfig) shards() int {
	if c.Shards < 1 {
		return 4
	}
	return c.Shards
}

// certInvalidator adapts an AS-local controller's re-establishment hook
// to the verification cache: when the attested channel dies, the cached
// verdict for the controller's certificate dies with it, so the fresh
// attestation cannot be satisfied by a stale cache entry.
type certInvalidator struct {
	v      *ratls.Verifier
	digest [32]byte
}

func (ci certInvalidator) InvalidatePeer(uint32) { ci.v.Invalidate(ci.digest) }

// RunSGXRATLS is RunSGX with attested controller↔AS channels: the
// controller's RA-TLS certificate gates every connection, verified once
// cold and amortized across the remaining ASes by the shared cache. The
// report's RATLSCold/RATLSWarm carry the split.
func RunSGXRATLS(t *topo.Topology, shards int) (*RunReport, error) {
	return runSGX(t, nil, nil, nil, nil, "", nil, &ratlsConfig{Shards: shards})
}

// RunSGXRATLSFaulted is RunSGXRATLS under a fault schedule with the
// retry policy armed — lost channels re-attest, and each
// re-establishment purges the certificate's cached verdict first.
func RunSGXRATLSFaulted(t *topo.Topology, fs *netsim.FaultSchedule, pol attest.RetryPolicy, shards int) (*RunReport, error) {
	return runSGX(t, fs, &pol, nil, nil, "", nil, &ratlsConfig{Shards: shards})
}
