package sdnctl

import (
	"encoding/gob"
	"io"

	"sgxnet/internal/bgp"
)

// gob assigns wire type IDs process-wide in first-encode order, so the
// byte length of an encoded message — and with it every per-byte seal
// and I/O charge downstream — would otherwise depend on which code path
// reached gob first (test order, worker interleaving). Encoding each
// wire type once at init pins the IDs in package-initialization order,
// which the runtime fixes per binary. Pointer fields are populated so
// the nested types' IDs are assigned here too.
func init() {
	enc := gob.NewEncoder(io.Discard)
	for _, v := range []any{
		PolicyMsg{Neighbors: []NeighborPolicy{{}}},
		RoutesMsg{Routes: []bgp.Route{{}}},
		Request{Policy: &PolicyMsg{}, Register: &Predicate{}},
		Response{Routes: &RoutesMsg{}, Verdict: &Verdict{}},
	} {
		if err := enc.Encode(v); err != nil {
			panic(err)
		}
	}
}
