package sdnctl

import (
	"sync"
	"sync/atomic"

	"sgxnet/internal/bgp"
	"sgxnet/internal/netsim"
)

// Native (non-SGX) deployment: the same controller protocol over plain
// connections, with no enclaves, no attestation, and no channel crypto.
// This is the "w/o SGX" baseline of Table 4 and Figure 3. All work is
// charged to the hosts' meters.

// NativeController is the baseline inter-domain controller.
type NativeController struct {
	Host     *netsim.SimHost
	State    *ControllerState
	listener *netsim.Listener
	wg       sync.WaitGroup

	// connIDs allocates per-connection session IDs. Per-controller (not
	// package-level) so concurrent independent deployments share no
	// state whatsoever — the ID sequence a run observes depends only on
	// that run.
	connIDs atomic.Uint32
}

// LaunchNativeController starts the plain controller service.
func LaunchNativeController(host *netsim.SimHost, n int) (*NativeController, error) {
	l, err := host.Listen(ControllerService)
	if err != nil {
		return nil, err
	}
	c := &NativeController{Host: host, State: NewControllerState(n), listener: l}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		l.Serve(c.serveConn)
	}()
	return c, nil
}

func (c *NativeController) serveConn(conn *netsim.Conn) {
	cid := c.connIDs.Add(1)
	m := c.Host.Platform().HostMeter
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		var req Request
		if err := DecodeMsg(raw, &req); err != nil {
			conn.Close()
			return
		}
		resp := c.State.dispatch(m, cid, &req)
		out, err := EncodeMsg(resp)
		if err != nil {
			conn.Close()
			return
		}
		if err := conn.Send(out); err != nil {
			return
		}
	}
}

// Compute runs the centralized computation on the untrusted host.
func (c *NativeController) Compute() error {
	_, err := c.State.computeRoutes(c.Host.Platform().HostMeter)
	return err
}

// Close stops the controller.
func (c *NativeController) Close() { c.listener.Close() }

// NativeASLocal is the baseline AS-local controller: plain process on its
// host.
type NativeASLocal struct {
	ASN    int
	Host   *netsim.SimHost
	policy *PolicyMsg
	conn   *netsim.Conn

	mu        sync.Mutex
	installed []bgp.Route
}

// NewNativeASLocal creates the baseline AS-local controller.
func NewNativeASLocal(host *netsim.SimHost, policy *PolicyMsg) *NativeASLocal {
	return &NativeASLocal{ASN: policy.ASN, Host: host, policy: policy}
}

// Connect dials the controller (no attestation in the baseline).
func (a *NativeASLocal) Connect(controllerHost string) error {
	conn, err := a.Host.Dial(controllerHost, ControllerService)
	if err != nil {
		return err
	}
	a.conn = conn
	return nil
}

func (a *NativeASLocal) roundTrip(req *Request) (*Response, error) {
	raw, err := EncodeMsg(req)
	if err != nil {
		return nil, err
	}
	out, err := a.conn.Request(raw)
	if err != nil {
		return nil, err
	}
	var resp Response
	if err := DecodeMsg(out, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Upload sends the policy, charging the assembly work.
func (a *NativeASLocal) Upload() error {
	m := a.Host.Platform().HostMeter
	m.ChargeNormal(uint64(len(a.policy.Neighbors)) * CostPolicyBuild)
	resp, err := a.roundTrip(&Request{From: a.ASN, Policy: a.policy})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errResponse(resp.Err)
	}
	return nil
}

// Fetch retrieves and installs routes. The native controller is trusted
// by assumption, so no Iago validation pass runs here — one of the two
// places the enclave deployment pays extra.
func (a *NativeASLocal) Fetch() error {
	m := a.Host.Platform().HostMeter
	resp, err := a.roundTrip(&Request{From: a.ASN, GetRoutes: true})
	if err != nil {
		return err
	}
	if resp.Err != "" || resp.Routes == nil {
		return errResponse(resp.Err)
	}
	m.ChargeNormal(uint64(len(resp.Routes.Routes)) * CostRouteInstall)
	a.mu.Lock()
	a.installed = resp.Routes.Routes
	a.mu.Unlock()
	return nil
}

// Installed returns the installed routes.
func (a *NativeASLocal) Installed() []bgp.Route {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]bgp.Route(nil), a.installed...)
}

// Close tears down the connection.
func (a *NativeASLocal) Close() {
	if a.conn != nil {
		a.conn.Close()
	}
}

type errResponse string

func (e errResponse) Error() string { return "sdnctl: controller error: " + string(e) }
