package sdnctl

// Application-level instruction costs, calibrated so the canonical
// workload of the paper's §5 — a 30-AS random topology with business
// relationships and local preferences, seed 42 — reproduces Table 4:
//
//	inter-domain controller: 74M normal instructions natively,
//	135M (+82%) with 1448 SGX(U) inside the enclave;
//	AS-local controller:     13M natively, 24M (+69%) with 42 SGX(U).
//
// At that workload the centralized computation performs 1158 route-entry
// updates and 8107 candidate evaluations over 30 policies, which fixes
// the constants below (see DESIGN.md §4). All scale organically with the
// AS count, producing Figure 3's growth.
const (
	// CostRouteUpdate is charged per RIB-entry adoption or change during
	// path computation.
	CostRouteUpdate = 20_000

	// CostRouteEval is charged per candidate route considered by the
	// decision process.
	CostRouteEval = 6_000

	// CostPolicyIngest is charged per AS policy parsed and installed
	// into the controller's policy store.
	CostPolicyIngest = 70_000

	// CostPolicyBuild is charged per neighbor entry when an AS-local
	// controller assembles its policy message.
	CostPolicyBuild = 350_000

	// CostRouteInstall is charged per route the AS-local controller
	// installs into its local FIB.
	CostRouteInstall = 400_000

	// CostRouteValidate is the in-enclave-only sanity check per installed
	// route: enclave code must not trust data crossing the boundary
	// (Iago attacks, §6), so the SGX AS-local controller validates every
	// route it receives before installing it.
	CostRouteValidate = 250_000

	// CostPredicateEval is charged per route examined while verifying a
	// policy predicate (§3.1 "the inter-domain controller verifies this
	// over all routes that A receives").
	CostPredicateEval = 8_000

	// allocsPerEvals is the controller's allocation rate: one heap
	// refill per this many candidate evaluations (scratch path buffers
	// are pool-allocated). Together with core.CostEnclaveAllocFixed this
	// reproduces Table 4's SGX(U) count for the inter-domain controller.
	allocsPerEvals = 14

	// allocsPerRoutes is the AS-local controller's allocation rate while
	// installing routes (route entries are allocated two per chunk).
	allocsPerRoutes = 2
)
