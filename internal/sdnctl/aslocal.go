package sdnctl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"sgxnet/internal/attest"
	"sgxnet/internal/bgp"
	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
)

// ASLocalState is an AS-local controller's enclave-private state: its own
// policy (the secret it refuses to disclose outside enclaves) and the
// routes installed after computation.
type ASLocalState struct {
	Attest *attest.ChallengerState

	mu        sync.Mutex
	policy    *PolicyMsg
	installed []bgp.Route
	ctlConn   uint32
}

// NewASLocalState creates state around the AS's private policy. The
// acceptance policy pins the community-verified controller measurement.
func NewASLocalState(policy *PolicyMsg, controllerMR core.Measurement) *ASLocalState {
	return &ASLocalState{
		Attest: attest.NewChallengerState(attest.Policy{
			AllowedEnclaves: []core.Measurement{controllerMR},
			RejectDebug:     true,
		}),
		policy: policy,
	}
}

// Installed returns the routes installed so far.
func (st *ASLocalState) Installed() []bgp.Route {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]bgp.Route(nil), st.installed...)
}

// ASLocalProgram builds the AS-local controller enclave program. Note the
// program identity is independent of the private policy: the policy is
// runtime data (uploaded into the enclave), not code, so every AS runs
// the same measured build without revealing anything through MRENCLAVE.
func ASLocalProgram(st *ASLocalState) *core.Program {
	prog := &core.Program{
		Name:    "aslocal-controller",
		Version: ControllerVersion,
		Handlers: map[string]core.Handler{
			"aslocal.upload":   st.upload,
			"aslocal.fetch":    st.fetch,
			"aslocal.reconfig": st.reconfig,
		},
	}
	attest.AddChallengerHandlers(prog, st.Attest)
	return prog
}

// reconfig replaces the enclave's local policy (the operator updated a
// peering agreement or a link failed). arg: gob(PolicyMsg).
func (st *ASLocalState) reconfig(env *core.Env, arg []byte) ([]byte, error) {
	var p PolicyMsg
	if err := DecodeMsg(arg, &p); err != nil {
		return nil, err
	}
	st.mu.Lock()
	if st.policy != nil && p.ASN != st.policy.ASN {
		st.mu.Unlock()
		return nil, fmt.Errorf("sdnctl: reconfig may not change the ASN")
	}
	st.policy = &p
	st.mu.Unlock()
	return nil, nil
}

// upload assembles and uploads this AS's policy over the attested
// channel, then waits for the controller's sealed acknowledgement.
// arg: connID(4).
func (st *ASLocalState) upload(env *core.Env, arg []byte) ([]byte, error) {
	if len(arg) < 4 {
		return nil, fmt.Errorf("sdnctl: short upload arg")
	}
	cid := binary.LittleEndian.Uint32(arg[:4])
	st.mu.Lock()
	st.ctlConn = cid
	pol := st.policy
	st.mu.Unlock()

	env.ChargeNormal(uint64(len(pol.Neighbors)) * CostPolicyBuild)
	resp, err := st.roundTrip(env, cid, &Request{From: pol.ASN, Policy: pol})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("sdnctl: controller rejected policy: %s", resp.Err)
	}
	return nil, nil
}

// fetch retrieves, validates, and installs this AS's routes. arg:
// connID(4).
func (st *ASLocalState) fetch(env *core.Env, arg []byte) ([]byte, error) {
	if len(arg) < 4 {
		return nil, fmt.Errorf("sdnctl: short fetch arg")
	}
	cid := binary.LittleEndian.Uint32(arg[:4])
	st.mu.Lock()
	asn := st.policy.ASN
	nbrs := st.policy.Neighbors
	st.mu.Unlock()

	resp, err := st.roundTrip(env, cid, &Request{From: asn, GetRoutes: true})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" || resp.Routes == nil {
		return nil, fmt.Errorf("sdnctl: fetch failed: %s", resp.Err)
	}
	// Iago discipline: everything that crossed the boundary is validated
	// before installation — the next hop must be a real neighbor (or the
	// route self-originated), and the path must not loop through us.
	valid := resp.Routes.Routes[:0]
	for _, r := range resp.Routes.Routes {
		env.ChargeNormal(CostRouteValidate)
		if r.Contains(asn) {
			return nil, fmt.Errorf("sdnctl: controller handed AS%d a looping route %v", asn, r)
		}
		if !r.IsSelf() && len(r.Path) > 0 {
			known := false
			for _, nb := range nbrs {
				if nb.Neighbor == r.NextHop() {
					known = true
					break
				}
			}
			if !known {
				return nil, fmt.Errorf("sdnctl: route via unknown next hop AS%d", r.NextHop())
			}
		}
		env.ChargeNormal(CostRouteInstall)
		valid = append(valid, r)
	}
	env.ChargeAllocs(uint64(len(valid) / allocsPerRoutes))
	st.mu.Lock()
	st.installed = valid
	st.mu.Unlock()
	return nil, nil
}

// roundTrip seals a request, sends it, and opens the sealed response —
// all inside the enclave (one msg.send and one msg.recv OCALL).
func (st *ASLocalState) roundTrip(env *core.Env, cid uint32, req *Request) (*Response, error) {
	raw, err := EncodeMsg(req)
	if err != nil {
		return nil, err
	}
	sealed, err := st.Attest.Seal(env.Meter(), cid, raw)
	if err != nil {
		return nil, err
	}
	if _, err := env.OCall("msg.send", netsim.EncodeSend(cid, sealed)); err != nil {
		return nil, err
	}
	respSealed, err := env.OCall("msg.recv", netsim.EncodeSend(cid, nil))
	if err != nil {
		return nil, err
	}
	plain, err := st.Attest.Open(env.Meter(), cid, respSealed)
	if err != nil {
		return nil, err
	}
	var resp Response
	if err := DecodeMsg(plain, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// request is the generic command path used for predicates (outside the
// Table 4 measurement window). arg: connID(4) ‖ gob(Request).
func (st *ASLocalState) request(env *core.Env, arg []byte) ([]byte, error) {
	if len(arg) < 4 {
		return nil, fmt.Errorf("sdnctl: short request arg")
	}
	cid := binary.LittleEndian.Uint32(arg[:4])
	var req Request
	if err := DecodeMsg(arg[4:], &req); err != nil {
		return nil, err
	}
	st.mu.Lock()
	req.From = st.policy.ASN
	st.mu.Unlock()
	resp, err := st.roundTrip(env, cid, &req)
	if err != nil {
		return nil, err
	}
	return EncodeMsg(resp)
}

// ASLocal bundles a launched AS-local controller with its runtime.
type ASLocal struct {
	ASN     int
	Host    *netsim.SimHost
	Enclave *core.Enclave
	State   *ASLocalState
	Shim    *netsim.IOShim

	conn    *netsim.Conn
	connID  uint32
	ctlHost string

	// retry, when set, arms every operation with deadlines and automatic
	// re-attestation (see SetRetryPolicy).
	retry *attest.RetryPolicy

	// inv, when set, is purged on every channel re-establishment —
	// verification state cached outside the session table (an RA-TLS
	// verification cache, an admission ledger) derived from the
	// controller's previous attestation (see attest.Invalidator).
	inv attest.Invalidator

	// Retries counts attestation retries; Reattests counts full channel
	// re-establishments after a loss. Driver-side bookkeeping — read them
	// between operations, not concurrently with one.
	Retries   int
	Reattests int
}

// SetRetryPolicy makes the AS-local controller fault-tolerant: dials and
// attestations retry with backoff, enclave receives time out instead of
// blocking forever, and operations that die with the channel re-attest
// the controller and run again. Without it, behavior is the seed's:
// block, and fail permanently on the first lost message.
func (a *ASLocal) SetRetryPolicy(pol attest.RetryPolicy) {
	a.retry = &pol
	a.Shim.SetRecvTimeout(pol.RecvTimeout)
}

// SetInvalidator registers the cache-purge hook re-establishment calls
// before re-attesting: any verdict cached from the controller's old
// quote must die with the old session, or a revoked controller could be
// readmitted from the cache without re-verification.
func (a *ASLocal) SetInvalidator(inv attest.Invalidator) { a.inv = inv }

// LaunchASLocal launches the AS-local controller enclave.
func LaunchASLocal(host *netsim.SimHost, signer *core.Signer, policy *PolicyMsg, controllerMR core.Measurement) (*ASLocal, error) {
	st := NewASLocalState(policy, controllerMR)
	prog := ASLocalProgram(st)
	prog.Handlers["aslocal.request"] = st.request
	enc, err := host.Platform().Launch(prog, signer)
	if err != nil {
		return nil, err
	}
	shim := netsim.NewMsgShim(host, enc.Meter())
	var mh netsim.MultiHost
	mh.Mount("msg.", shim)
	enc.BindHost(&mh)
	return &ASLocal{ASN: policy.ASN, Host: host, Enclave: enc, State: st, Shim: shim}, nil
}

// Connect dials the controller and remote-attests it (with DH: the
// secure channel carries everything that follows). With a retry policy
// set, the dial and the 9-message protocol retry under faults.
func (a *ASLocal) Connect(controllerHost string) error {
	a.ctlHost = controllerHost
	if a.retry != nil {
		conn, cid, _, retries, err := attest.ChallengeRetry(a.Enclave, a.Shim, a.State.Attest,
			func() (*netsim.Conn, error) { return a.Host.Dial(controllerHost, ControllerService) },
			true, *a.retry)
		a.Retries += retries
		if err != nil {
			return fmt.Errorf("sdnctl: AS%d attestation of controller failed: %w", a.ASN, err)
		}
		a.conn, a.connID = conn, cid
		return nil
	}
	conn, err := a.Host.Dial(controllerHost, ControllerService)
	if err != nil {
		return err
	}
	cid, _, err := attest.Challenge(a.Enclave, a.Shim, conn, true)
	if err != nil {
		return fmt.Errorf("sdnctl: AS%d attestation of controller failed: %w", a.ASN, err)
	}
	a.conn, a.connID = conn, cid
	return nil
}

// reconnectable classifies operation failures that a fresh attested
// channel can cure: the transport died, a receive timed out, or the
// session aged out. Controller-side refusals (policy mismatch, stale
// routes) pass through untouched.
func reconnectable(err error) bool {
	return errors.Is(err, netsim.ErrClosed) || errors.Is(err, netsim.ErrTimeout) ||
		errors.Is(err, netsim.ErrHostDown) || errors.Is(err, netsim.ErrNoRoute) ||
		errors.Is(err, attest.ErrNoSession) || errors.Is(err, attest.ErrSessionExpired)
}

// withReconnect runs op; if it dies with the channel and a retry policy
// is set, the channel is torn down through attest.Reestablish — pending
// protocol state, the stored session, and any Invalidator-cached
// verdicts are destroyed before the fresh challenge runs — and op is
// retried: the session-expiry/crash recovery loop. Each cycle charges
// core.CostRetryAttempt plus the re-establishment's own cost (the op's
// instructions are charged by the op).
func (a *ASLocal) withReconnect(op func() error) error {
	err := op()
	if a.retry == nil || err == nil || !reconnectable(err) {
		return err
	}
	for attempt := 1; attempt < a.retry.Attempts; attempt++ {
		a.Enclave.Meter().ChargeNormal(core.CostRetryAttempt)
		if a.conn != nil {
			a.conn.Close()
		}
		conn, cid, _, retries, cerr := attest.Reestablish(nil, "", a.Enclave, a.Shim, a.State.Attest,
			a.connID, a.inv,
			func() (*netsim.Conn, error) { return a.Host.Dial(a.ctlHost, ControllerService) },
			true, *a.retry)
		a.Retries += retries
		if cerr != nil {
			return fmt.Errorf("sdnctl: AS%d re-attestation of controller failed: %w", a.ASN, cerr)
		}
		a.conn, a.connID = conn, cid
		a.Reattests++
		if err = op(); err == nil || !reconnectable(err) {
			return err
		}
	}
	return err
}

// Upload sends the AS policy.
func (a *ASLocal) Upload() error {
	return a.withReconnect(func() error {
		arg := make([]byte, 4)
		binary.LittleEndian.PutUint32(arg, a.connID)
		_, err := a.Enclave.Call("aslocal.upload", arg)
		return err
	})
}

// Fetch retrieves and installs this AS's routes.
func (a *ASLocal) Fetch() error {
	return a.withReconnect(func() error {
		arg := make([]byte, 4)
		binary.LittleEndian.PutUint32(arg, a.connID)
		_, err := a.Enclave.Call("aslocal.fetch", arg)
		return err
	})
}

// Reconfigure installs a new local policy into the enclave and uploads
// it — the dynamic-topology path (link failures, changed agreements).
// The controller invalidates its computed routes until the next Compute.
func (a *ASLocal) Reconfigure(p *PolicyMsg) error {
	raw, err := EncodeMsg(p)
	if err != nil {
		return err
	}
	if _, err := a.Enclave.Call("aslocal.reconfig", raw); err != nil {
		return err
	}
	return a.Upload()
}

// Do issues an arbitrary request (predicate registration/verification).
func (a *ASLocal) Do(req *Request) (*Response, error) {
	raw, err := EncodeMsg(req)
	if err != nil {
		return nil, err
	}
	var resp *Response
	err = a.withReconnect(func() error {
		arg := make([]byte, 4+len(raw))
		binary.LittleEndian.PutUint32(arg[:4], a.connID)
		copy(arg[4:], raw)
		out, err := a.Enclave.Call("aslocal.request", arg)
		if err != nil {
			return err
		}
		var r Response
		if err := DecodeMsg(out, &r); err != nil {
			return err
		}
		resp = &r
		return nil
	})
	return resp, err
}

// Close tears down the controller connection and the enclave.
func (a *ASLocal) Close() {
	if a.conn != nil {
		a.conn.Close()
	}
	a.Enclave.Destroy()
}
