// Package sdnctl implements the paper's §3.1 application: SGX-enabled
// software-defined inter-domain routing. AS-local controllers and a
// logically centralized inter-domain controller run inside enclaves;
// every AS remote-attests the controller's community-verified code before
// uploading its private policy over the attestation-bootstrapped secure
// channel; the controller computes BGP-style routes for all ASes and
// pushes each AS its own routes; and predicate verification (§3.1
// "Policy verification", in the spirit of SPIDeR) answers agreed-upon
// Boolean queries about routing promises without leaking anything else.
//
// A native (non-SGX) deployment of the same protocol is the baseline for
// Table 4 and Figure 3.
package sdnctl

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"sgxnet/internal/bgp"
	"sgxnet/internal/topo"
)

// NeighborPolicy is one row of an AS's private policy: the neighbor, the
// business relationship, and the local preference.
type NeighborPolicy struct {
	Neighbor  int
	Rel       topo.Relationship
	LocalPref int
}

// PolicyMsg is an AS-local controller's policy and local-topology upload
// — the private information that must never leave the enclaves.
type PolicyMsg struct {
	ASN       int
	Neighbors []NeighborPolicy
}

// RoutesMsg is the controller's route push-back: only the recipient's own
// routes.
type RoutesMsg struct {
	ASN    int
	Routes []bgp.Route
}

// PredicateKind enumerates the verifiable promises.
type PredicateKind uint8

const (
	// PredPrefers: "is the route announced by A the most preferred by B
	// wherever A announces one?" — the paper's own example.
	PredPrefers PredicateKind = iota
	// PredAvoids: "do B's selected paths avoid transit AS X?"
	PredAvoids
	// PredExportsAll: "does A export to B every customer-learned route A
	// selects?" (a transit agreement).
	PredExportsAll
)

func (k PredicateKind) String() string {
	switch k {
	case PredPrefers:
		return "prefers"
	case PredAvoids:
		return "avoids"
	case PredExportsAll:
		return "exports-all"
	default:
		return fmt.Sprintf("PredicateKind(%d)", uint8(k))
	}
}

// Predicate is a Boolean condition two ASes agreed to verify. The
// controller evaluates it only after both parties registered an
// identical copy, so neither side can smuggle a broader query.
type Predicate struct {
	ID   string
	ASa  int // the AS that made the promise
	ASb  int // the AS the promise was made to
	Kind PredicateKind
	// Arg is the predicate parameter (e.g. the AS to avoid).
	Arg int
}

// Equal compares predicates field-wise.
func (p Predicate) Equal(o Predicate) bool { return p == o }

// Request/response envelope for the controller's command stream. Exactly
// one request field is set.
type Request struct {
	Policy    *PolicyMsg
	GetRoutes bool
	Register  *Predicate
	Verify    string // predicate ID
	From      int    // requesting ASN (bound to the channel at attestation)
}

// Response is the controller's reply.
type Response struct {
	Routes  *RoutesMsg
	Verdict *Verdict
	OK      bool
	Err     string

	// Degraded marks a response served while some ASes are disconnected
	// from the controller (crash, partition): the routes are the last
	// valid computation, not reflective of whatever the unreachable ASes
	// would upload next. Routes invalidated by a policy change are never
	// served, degraded or not.
	Degraded bool
}

// Verdict is a predicate-verification result: the Boolean outcome and
// nothing else, preserving policy privacy.
type Verdict struct {
	PredicateID string
	Holds       bool
}

// EncodeMsg gob-encodes a message.
func EncodeMsg(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("sdnctl: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeMsg gob-decodes a message.
func DecodeMsg(b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("sdnctl: decode: %w", err)
	}
	return nil
}

// BuildTopology assembles the global topology from uploaded policies,
// cross-checking that both sides of every link declared consistent
// relationships (an AS claiming a phantom or inconsistent link is
// rejected — the controller never trusts a single AS's word for a link).
func BuildTopology(n int, policies map[int]*PolicyMsg) (*topo.Topology, error) {
	if len(policies) != n {
		return nil, fmt.Errorf("sdnctl: have %d policies, want %d", len(policies), n)
	}
	t := topo.NewTopology(n)
	for asn, p := range policies {
		if p.ASN != asn {
			return nil, fmt.Errorf("sdnctl: policy ASN %d filed under %d", p.ASN, asn)
		}
		for _, nb := range p.Neighbors {
			other, ok := policies[nb.Neighbor]
			if !ok {
				return nil, fmt.Errorf("sdnctl: AS%d names unknown neighbor AS%d", asn, nb.Neighbor)
			}
			var reciprocal *NeighborPolicy
			for i := range other.Neighbors {
				if other.Neighbors[i].Neighbor == asn {
					reciprocal = &other.Neighbors[i]
					break
				}
			}
			if reciprocal == nil {
				return nil, fmt.Errorf("sdnctl: AS%d claims link to AS%d, which does not reciprocate", asn, nb.Neighbor)
			}
			if reciprocal.Rel != nb.Rel.Invert() {
				return nil, fmt.Errorf("sdnctl: AS%d and AS%d disagree on their relationship", asn, nb.Neighbor)
			}
			if asn < nb.Neighbor { // add each link once
				if err := t.AddLink(asn, nb.Neighbor, nb.Rel); err != nil {
					return nil, err
				}
			}
			t.SetLocalPref(asn, nb.Neighbor, nb.LocalPref)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// PoliciesFromTopology derives each AS's PolicyMsg from a topology — the
// workload generator for the evaluation.
func PoliciesFromTopology(t *topo.Topology) map[int]*PolicyMsg {
	out := make(map[int]*PolicyMsg, t.N())
	for a := 0; a < t.N(); a++ {
		p := &PolicyMsg{ASN: a}
		for _, nb := range t.Neighbors(a) {
			rel, _ := t.Rel(a, nb)
			p.Neighbors = append(p.Neighbors, NeighborPolicy{
				Neighbor:  nb,
				Rel:       rel,
				LocalPref: t.LocalPref(a, nb),
			})
		}
		out[a] = p
	}
	return out
}

// sortedDests returns a RIB's destinations in ascending order. The
// predicate scans below examine routes until a verdict — and charge
// CostPredicateEval per route examined — so the scan order must not
// depend on map iteration, or a failing predicate would charge a
// different instruction count every run.
func sortedDests(r bgp.RIB) []int {
	out := make([]int, 0, len(r))
	for d := range r {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// EvaluatePredicate checks a predicate against the computed routes and
// the uploaded policies. Returns the verdict and the number of routes
// examined (for cost accounting).
func EvaluatePredicate(p Predicate, t *topo.Topology, ribs map[int]bgp.RIB) (bool, int) {
	examined := 0
	switch p.Kind {
	case PredPrefers:
		// For every destination B routes to, if B has any route whose
		// next hop is A available... the controller knows only selected
		// routes; the promise holds if whenever B selected a route to a
		// destination that A also selected a route to (and would export
		// to B), B's selected route goes via A OR B's selected route has
		// strictly higher preference than A's announcement would get.
		rel, ok := t.Rel(p.ASb, p.ASa)
		if !ok {
			return false, 0
		}
		prefViaA := t.LocalPref(p.ASb, p.ASa)
		for _, dest := range sortedDests(ribs[p.ASb]) {
			rb := ribs[p.ASb][dest]
			if dest == p.ASb {
				continue
			}
			ra, ok := ribs[p.ASa][dest]
			if !ok {
				continue
			}
			// Would A export this route to B?
			if !bgp.CanExport(ra, rel.Invert()) || ra.Contains(p.ASb) {
				continue
			}
			examined++
			if rb.NextHop() == p.ASa {
				continue // promise satisfied directly
			}
			if rb.LocalPref < prefViaA {
				return false, examined // B preferred something it ranks lower
			}
		}
		return true, examined
	case PredAvoids:
		for _, dest := range sortedDests(ribs[p.ASb]) {
			examined++
			if ribs[p.ASb][dest].Contains(p.Arg) {
				return false, examined
			}
		}
		return true, examined
	case PredExportsAll:
		// A's customer-learned selected routes must be visible to B:
		// either B's route for that destination goes via A, or B holds a
		// route at least as short as the one A would announce — a
		// conservative check that never reveals A's actual paths.
		for _, dest := range sortedDests(ribs[p.ASa]) {
			ra := ribs[p.ASa][dest]
			if ra.LearnedRel != topo.RelCustomer && !ra.IsSelf() {
				continue
			}
			if ra.Contains(p.ASb) {
				continue
			}
			examined++
			rb, ok := ribs[p.ASb][dest]
			if !ok {
				return false, examined
			}
			if rb.NextHop() != p.ASa && rb.Len() > ra.Len()+1 {
				return false, examined
			}
		}
		return true, examined
	default:
		return false, 0
	}
}
