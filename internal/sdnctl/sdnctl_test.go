package sdnctl

import (
	"strings"
	"testing"

	"sgxnet/internal/bgp"
	"sgxnet/internal/topo"
)

func canonicalTopo(t testing.TB, n int) *topo.Topology {
	t.Helper()
	tp, err := topo.Random(topo.Config{N: n, Seed: 42, PrefJitter: true})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestPoliciesRoundTripThroughBuildTopology(t *testing.T) {
	tp := canonicalTopo(t, 12)
	pols := PoliciesFromTopology(tp)
	rebuilt, err := BuildTopology(12, pols)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Links() != tp.Links() {
		t.Fatalf("links %d != %d", rebuilt.Links(), tp.Links())
	}
	for a := 0; a < 12; a++ {
		for _, nb := range tp.Neighbors(a) {
			r1, _ := tp.Rel(a, nb)
			r2, ok := rebuilt.Rel(a, nb)
			if !ok || r1 != r2 {
				t.Fatalf("AS%d–AS%d relationship lost", a, nb)
			}
			if tp.LocalPref(a, nb) != rebuilt.LocalPref(a, nb) {
				t.Fatalf("AS%d pref toward %d lost", a, nb)
			}
		}
	}
}

func TestBuildTopologyRejectsInconsistentClaims(t *testing.T) {
	tp := canonicalTopo(t, 5)
	pols := PoliciesFromTopology(tp)
	// Missing policy.
	if _, err := BuildTopology(5, map[int]*PolicyMsg{0: pols[0]}); err == nil {
		t.Fatal("short policy set accepted")
	}
	// Phantom link: AS0 claims a neighbor that doesn't reciprocate.
	bad := *pols[0]
	bad.Neighbors = append(append([]NeighborPolicy{}, bad.Neighbors...),
		NeighborPolicy{Neighbor: 4, Rel: topo.RelCustomer, LocalPref: 100})
	if _, hasLink := tp.Rel(0, 4); hasLink {
		t.Skip("seed produced a 0–4 link; pick another pair")
	}
	mod := map[int]*PolicyMsg{}
	for k, v := range pols {
		mod[k] = v
	}
	mod[0] = &bad
	if _, err := BuildTopology(5, mod); err == nil {
		t.Fatal("phantom link accepted")
	}
	// Relationship disagreement.
	mod2 := map[int]*PolicyMsg{}
	for k, v := range pols {
		cp := *v
		cp.Neighbors = append([]NeighborPolicy{}, v.Neighbors...)
		mod2[k] = &cp
	}
	n0 := mod2[0].Neighbors[0].Neighbor
	mod2[0].Neighbors[0].Rel = topo.RelPeer
	// unless it was already peer, flip it
	if orig, _ := tp.Rel(0, n0); orig == topo.RelPeer {
		mod2[0].Neighbors[0].Rel = topo.RelCustomer
	}
	if _, err := BuildTopology(5, mod2); err == nil {
		t.Fatal("inconsistent relationship accepted")
	}
}

func TestNativeDeploymentComputesCorrectRoutes(t *testing.T) {
	tp := canonicalTopo(t, 10)
	rep, err := RunNative(tp)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := bgp.ComputeAll(tp)
	if !bgp.RIBsEqual(rep.RIBs, want) {
		t.Fatal("controller routes differ from direct computation")
	}
	for asn, routes := range rep.Installed {
		if len(routes) != len(want[asn]) {
			t.Fatalf("AS%d installed %d routes, want %d", asn, len(routes), len(want[asn]))
		}
	}
	if rep.Attestations != 0 {
		t.Fatal("native run performed attestations")
	}
}

func TestSGXDeploymentEndToEnd(t *testing.T) {
	tp := canonicalTopo(t, 8)
	rep, err := RunSGX(tp)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := bgp.ComputeAll(tp)
	if !bgp.RIBsEqual(rep.RIBs, want) {
		t.Fatal("SGX controller routes differ from direct computation")
	}
	if rep.Attestations != 8 {
		t.Fatalf("attestations = %d, want 8 (one per AS controller, Table 3)", rep.Attestations)
	}
	for asn, routes := range rep.Installed {
		if len(routes) != len(want[asn]) {
			t.Fatalf("AS%d installed %d routes, want %d", asn, len(routes), len(want[asn]))
		}
		for _, r := range routes {
			if got := want[asn][r.Dest]; !got.Equal(r) {
				t.Fatalf("AS%d route to %d differs: %v vs %v", asn, r.Dest, r, got)
			}
		}
	}
}

// TestTable4 reproduces Table 4 on the paper's workload: a 30-AS random
// topology with business relationships. Normal-instruction totals must
// land within 5% of the paper's columns and SGX(U) counts within 10%.
func TestTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("30-AS deployment is slow in -short mode")
	}
	tp := canonicalTopo(t, 30)
	native, err := RunNative(tp)
	if err != nil {
		t.Fatal(err)
	}
	sgx, err := RunSGX(tp)
	if err != nil {
		t.Fatal(err)
	}
	within := func(name string, got, want, pctTol uint64) {
		lo := want * (100 - pctTol) / 100
		hi := want * (100 + pctTol) / 100
		if got < lo || got > hi {
			t.Errorf("%s = %d, want %d ±%d%%", name, got, want, pctTol)
		}
	}
	within("native inter-domain normal", native.InterDomain.Normal, 74_000_000, 5)
	within("SGX inter-domain normal", sgx.InterDomain.Normal, 135_000_000, 5)
	within("native AS-local normal", native.ASLocalAvg().Normal, 13_000_000, 8)
	within("SGX AS-local normal", sgx.ASLocalAvg().Normal, 24_000_000, 12)
	within("SGX inter-domain SGX(U)", sgx.InterDomain.SGXU, 1448, 10)
	within("SGX AS-local SGX(U)", sgx.ASLocalAvg().SGXU, 42, 10)
	if native.InterDomain.SGXU != 0 {
		t.Error("native controller executed SGX instructions")
	}
	// Overheads: +82% / +69% in the paper.
	ratio := float64(sgx.InterDomain.Normal) / float64(native.InterDomain.Normal)
	if ratio < 1.70 || ratio > 1.95 {
		t.Errorf("inter-domain overhead ratio = %.2f, paper reports 1.82", ratio)
	}
	ratioAS := float64(sgx.ASLocalAvg().Normal) / float64(native.ASLocalAvg().Normal)
	if ratioAS < 1.55 || ratioAS > 1.85 {
		t.Errorf("AS-local overhead ratio = %.2f, paper reports 1.69", ratioAS)
	}
}

func TestPredicateVerificationFlow(t *testing.T) {
	tp := canonicalTopo(t, 6)
	// Deploy SGX run manually to keep the locals alive for predicates.
	rep, err := RunSGXWithPredicates(tp, func(_ *Controller, locals []*ASLocal) error {
		// AS1 promises AS2 its routes avoid AS0; both register, AS2 verifies.
		pred := Predicate{ID: "avoid-0", ASa: 1, ASb: 2, Kind: PredAvoids, Arg: 0}
		if resp, err := locals[1].Do(&Request{Register: &pred}); err != nil || resp.Err != "" {
			t.Fatalf("register by AS1: %v %s", err, resp.Err)
		}
		// Verification before both parties agreed must fail.
		if resp, err := locals[2].Do(&Request{Verify: "avoid-0"}); err != nil {
			t.Fatal(err)
		} else if resp.Err == "" {
			t.Fatal("verification allowed before both parties registered")
		}
		if resp, err := locals[2].Do(&Request{Register: &pred}); err != nil || resp.Err != "" {
			t.Fatalf("register by AS2: %v %s", err, resp.Err)
		}
		resp, err := locals[2].Do(&Request{Verify: "avoid-0"})
		if err != nil || resp.Verdict == nil {
			t.Fatalf("verify: %v %+v", err, resp)
		}
		// Cross-check the verdict against ground truth.
		ribs, _ := bgp.ComputeAll(tp)
		want, _ := EvaluatePredicate(pred, tp, ribs)
		if resp.Verdict.Holds != want {
			t.Fatalf("verdict %v, ground truth %v", resp.Verdict.Holds, want)
		}
		// A non-party cannot verify.
		if resp, err := locals[3].Do(&Request{Verify: "avoid-0"}); err != nil {
			t.Fatal(err)
		} else if resp.Err == "" {
			t.Fatal("non-party verified a predicate")
		}
		// A non-party cannot register someone else's predicate.
		if resp, err := locals[3].Do(&Request{Register: &pred}); err != nil {
			t.Fatal(err)
		} else if resp.Err == "" {
			t.Fatal("non-party registered a predicate")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("nil report")
	}
}

func TestEvaluatePredicateKinds(t *testing.T) {
	tp := canonicalTopo(t, 10)
	ribs, _ := bgp.ComputeAll(tp)
	// Avoids: pick an AS on some path → must be false; pick an AS on no
	// path of AS b → true.
	onPath := -1
	var holder int
	for h, rib := range ribs {
		for _, r := range rib {
			if len(r.Path) >= 2 {
				holder, onPath = h, r.Path[0]
				break
			}
		}
		if onPath >= 0 {
			break
		}
	}
	if onPath < 0 {
		t.Skip("no multi-hop path in topology")
	}
	holds, examined := EvaluatePredicate(Predicate{Kind: PredAvoids, ASb: holder, Arg: onPath}, tp, ribs)
	if holds {
		t.Fatal("avoids-predicate true despite transit")
	}
	if examined == 0 {
		t.Fatal("no routes examined")
	}
	// Prefers between directly linked ASes at least runs and is
	// consistent under swap of ground truth recomputation.
	a := 0
	bs := tp.Neighbors(0)
	if len(bs) == 0 {
		t.Fatal("AS0 has no neighbors")
	}
	h1, _ := EvaluatePredicate(Predicate{Kind: PredPrefers, ASa: a, ASb: bs[0]}, tp, ribs)
	h2, _ := EvaluatePredicate(Predicate{Kind: PredPrefers, ASa: a, ASb: bs[0]}, tp, ribs)
	if h1 != h2 {
		t.Fatal("prefers-predicate not deterministic")
	}
	// Unknown kind.
	if holds, _ := EvaluatePredicate(Predicate{Kind: PredicateKind(99)}, tp, ribs); holds {
		t.Fatal("unknown predicate kind held")
	}
	if PredPrefers.String() != "prefers" || PredAvoids.String() != "avoids" ||
		PredExportsAll.String() != "exports-all" || !strings.Contains(PredicateKind(9).String(), "9") {
		t.Fatal("kind strings wrong")
	}
}

func TestASNBindingEnforced(t *testing.T) {
	tp := canonicalTopo(t, 4)
	_, err := RunSGXWithPredicates(tp, func(_ *Controller, locals []*ASLocal) error {
		// AS3 tries to fetch AS1's routes by lying about From. The
		// enclave-side request path always stamps the true ASN, so we
		// simulate a compromised AS-local *host* instead: it cannot forge
		// sealed messages at all (no channel key). Here we check the
		// controller-side guard directly through the generic path.
		resp, err := locals[3].Do(&Request{GetRoutes: true})
		if err != nil || resp.Routes == nil {
			t.Fatalf("legit fetch failed: %v %+v", err, resp)
		}
		if resp.Routes.ASN != 3 {
			t.Fatalf("controller returned AS%d's routes to AS3", resp.Routes.ASN)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChargeScaling(t *testing.T) {
	// Figure 3's underlying property: controller work grows with N for
	// both deployments, and the SGX run stays consistently above native.
	var prevNative, prevSGX uint64
	for _, n := range []int{5, 15, 25} {
		tp := canonicalTopo(t, n)
		nat, err := RunNative(tp)
		if err != nil {
			t.Fatal(err)
		}
		sgx, err := RunSGX(tp)
		if err != nil {
			t.Fatal(err)
		}
		natC := nat.InterDomain.Cycles()
		sgxC := sgx.InterDomain.Cycles()
		if natC <= prevNative || sgxC <= prevSGX {
			t.Fatalf("n=%d: cycles did not grow (native %d, sgx %d)", n, natC, sgxC)
		}
		if sgxC <= natC {
			t.Fatalf("n=%d: SGX not above native", n)
		}
		prevNative, prevSGX = natC, sgxC
	}
}
