package sdnctl

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sgxnet/internal/attest"
	"sgxnet/internal/bgp"
	"sgxnet/internal/netsim"
)

// Fault-tolerance tests for the SGX deployment: the fault schedule
// disturbs every link touching the controller (attestation, policy
// upload, and route push-back all cross it), and the retry policy must
// carry the run to the same routing state a clean run produces.

// ctlFaults disturbs both directions of every controller link: latency
// with jitter, message loss, and occasional reordering. Corruption is
// deliberately absent here — the channel MACs turn a flipped bit into a
// permanent authentication failure, which is the netsim/attest layers'
// test subject, not the deployment driver's.
func ctlFaults(seed int64, drop float64) *netsim.FaultSchedule {
	f := netsim.LinkFaults{
		Latency:     200 * time.Microsecond,
		Jitter:      200 * time.Microsecond,
		DropProb:    drop,
		ReorderProb: 0.02,
	}
	in, out := f, f
	in.To = "controller"
	out.From = "controller"
	return netsim.NewFaultSchedule(seed).AddLink(in).AddLink(out)
}

func faultPolicy() attest.RetryPolicy {
	return attest.RetryPolicy{Attempts: 10, RecvTimeout: 150 * time.Millisecond,
		Backoff: 2 * time.Millisecond, BackoffMax: 20 * time.Millisecond}
}

// waitBound blocks until the controller's live-channel count reaches
// want — the release of a dead channel races the test's next request.
func waitBound(t *testing.T, ctl *Controller, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for ctl.State.BoundASes() != want {
		if time.Now().After(deadline) {
			t.Fatalf("controller sees %d bound ASes, want %d", ctl.State.BoundASes(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRunSGXFaultedConvergesUnderFaults(t *testing.T) {
	tp := canonicalTopo(t, 5)
	fs := ctlFaults(7, 0.05)
	rep, err := RunSGXFaulted(tp, fs, faultPolicy())
	if err != nil {
		t.Fatalf("faulted run (replay: %s): %v", fs, err)
	}
	want, _ := bgp.ComputeAll(tp)
	if !bgp.RIBsEqual(rep.RIBs, want) {
		t.Fatalf("faulted run diverged from clean computation (replay: %s)", fs)
	}
	for a := 0; a < 5; a++ {
		if len(rep.Installed[a]) != len(want[a]) {
			t.Fatalf("AS%d installed %d routes, want %d", a, len(rep.Installed[a]), len(want[a]))
		}
	}
	st := fs.Stats()
	if st.Delayed == 0 {
		t.Fatalf("schedule never intervened: %+v", st)
	}
	t.Logf("converged despite %+v; retries=%d reattests=%d", st, rep.Retries, rep.Reattests)
}

func TestReattestAfterChannelLoss(t *testing.T) {
	tp := canonicalTopo(t, 4)
	_, err := RunSGXWithPredicates(tp, func(ctl *Controller, locals []*ASLocal) error {
		locals[0].SetRetryPolicy(faultPolicy())
		// Kill the attested channel under the AS; the next operation must
		// re-attest the controller and then succeed transparently.
		locals[0].conn.Close()
		waitBound(t, ctl, 3)
		resp, err := locals[0].Do(&Request{GetRoutes: true})
		if err != nil {
			t.Fatalf("Do after channel loss: %v", err)
		}
		if resp.Err != "" || resp.Routes == nil {
			t.Fatalf("bad response after re-attest: %+v", resp)
		}
		if locals[0].Reattests != 1 {
			t.Fatalf("Reattests = %d, want 1", locals[0].Reattests)
		}
		if resp.Degraded {
			t.Fatal("fully reconnected deployment reported degraded")
		}
		// The re-established channel holds a session the controller knows.
		if ctl.State.BoundASes() != 4 {
			t.Fatalf("BoundASes = %d after re-attest, want 4", ctl.State.BoundASes())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDegradedRouteServingOnASLoss(t *testing.T) {
	tp := canonicalTopo(t, 4)
	pol := faultPolicy()
	_, err := RunSGXWithPredicates(tp, func(ctl *Controller, locals []*ASLocal) error {
		net := locals[0].Host.Network()

		// An AS host crashes: its channel dies, the controller releases the
		// binding, and the survivors keep being served — flagged degraded.
		net.Crash("as3")
		waitBound(t, ctl, 3)
		resp, err := locals[0].Do(&Request{GetRoutes: true})
		if err != nil {
			t.Fatalf("Do during outage: %v", err)
		}
		if resp.Err != "" || resp.Routes == nil {
			t.Fatalf("survivor was refused service during outage: %+v", resp)
		}
		if !resp.Degraded {
			t.Fatal("response during an AS outage not flagged degraded")
		}

		// The crashed AS comes back, re-attests, and the flag clears.
		net.Restart("as3")
		locals[3].SetRetryPolicy(pol)
		if err := locals[3].Connect("controller"); err != nil {
			t.Fatalf("reconnect after restart: %v", err)
		}
		back, err := locals[3].Do(&Request{GetRoutes: true})
		if err != nil {
			t.Fatalf("Do after restart: %v", err)
		}
		if back.Err != "" || back.Routes == nil {
			t.Fatalf("restarted AS not served: %+v", back)
		}
		resp, err = locals[0].Do(&Request{GetRoutes: true})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Degraded {
			t.Fatal("degraded flag stuck after full recovery")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuickFaultedEquivalence is the property test: for random fault
// schedules, the SGX deployment still converges to the same RIBs as the
// distributed path-vector oracle — the paper's centralized-vs-distributed
// equivalence, now quantified over network disturbance.
func TestQuickFaultedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow under -short")
	}
	tp := canonicalTopo(t, 4)
	oracle, _ := bgp.SimulateDistributed(tp, 99)
	prop := func(schedSeed int64) bool {
		fs := ctlFaults(schedSeed, 0.04)
		rep, err := RunSGXFaulted(tp, fs, faultPolicy())
		if err != nil {
			t.Logf("seed %d (replay: %s): %v", schedSeed, fs, err)
			return false
		}
		if !bgp.RIBsEqual(rep.RIBs, oracle) {
			t.Logf("seed %d: faulted centralized RIBs != distributed oracle", schedSeed)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 3, Rand: rand.New(rand.NewSource(4242))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
