package sdnctl

import (
	"testing"

	"sgxnet/internal/topo"
	"sgxnet/internal/xcall"
)

// TestSwitchlessQuoteServingAmortizes pins the tentpole claim for the
// quote-serving app: with serve ECALLs and message OCALLs on rings at
// batch 16, the quoting enclave's crossing tally drops ≥2× versus the
// synchronous 17-SGX(U)-per-quote baseline, and the route computation
// itself is unchanged.
func TestSwitchlessQuoteServingAmortizes(t *testing.T) {
	tp, err := topo.Random(topo.Config{N: 8, Seed: 42, PrefJitter: true})
	if err != nil {
		t.Fatal(err)
	}
	syncRep, err := RunSGX(tp)
	if err != nil {
		t.Fatal(err)
	}
	if syncRep.QuoteXcall != (xcall.Stats{}) {
		t.Fatalf("sync run produced ring stats: %+v", syncRep.QuoteXcall)
	}
	if syncRep.QuoteServing.SGXU == 0 {
		t.Fatal("sync run reported no quote-serving crossings")
	}
	swlRep, err := RunSGXSwitchlessQuotes(tp, xcall.Config{Batch: 16, SpinBudget: 64})
	if err != nil {
		t.Fatal(err)
	}
	if swlRep.QuoteServing.SGXU*2 > syncRep.QuoteServing.SGXU {
		t.Fatalf("switchless %d SGX vs sync %d: less than 2× reduction",
			swlRep.QuoteServing.SGXU, syncRep.QuoteServing.SGXU)
	}
	st := swlRep.QuoteXcall
	if st.Calls == 0 || st.Drains == 0 || st.Fallbacks == 0 {
		t.Fatalf("ring counters incomplete: %+v", st)
	}
	// Switchless quote serving must not perturb the measured workload.
	if swlRep.InterDomain != syncRep.InterDomain || swlRep.Attestations != syncRep.Attestations {
		t.Fatalf("steady state changed: %+v vs %+v", swlRep.InterDomain, syncRep.InterDomain)
	}
}

// TestSwitchlessQuoteServingDeterministic pins run-to-run stability of
// the switchless quote tallies.
func TestSwitchlessQuoteServingDeterministic(t *testing.T) {
	tp, err := topo.Random(topo.Config{N: 6, Seed: 7, PrefJitter: true})
	if err != nil {
		t.Fatal(err)
	}
	xc := xcall.Config{Batch: 4, SpinBudget: 4}
	r1, err := RunSGXSwitchlessQuotes(tp, xc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSGXSwitchlessQuotes(tp, xc)
	if err != nil {
		t.Fatal(err)
	}
	if r1.QuoteServing != r2.QuoteServing || r1.QuoteXcall != r2.QuoteXcall {
		t.Fatalf("nondeterministic: %+v/%+v vs %+v/%+v",
			r1.QuoteServing, r1.QuoteXcall, r2.QuoteServing, r2.QuoteXcall)
	}
}
