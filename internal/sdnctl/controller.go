package sdnctl

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"sgxnet/internal/attest"
	"sgxnet/internal/bgp"
	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/topo"
)

// ControllerService is the netsim service the inter-domain controller
// listens on.
const ControllerService = "sdn.ctl"

// ControllerVersion participates in the controller enclave's measurement;
// ASes verify exactly this community-reviewed build (§3.1, §4).
const ControllerVersion = "1.0"

// ControllerState is the inter-domain controller's enclave-private state:
// every AS's policy, the computed routes, and the predicate registry.
// None of it ever leaves the enclave except through per-AS sealed
// responses.
type ControllerState struct {
	Attest *attest.TargetState

	mu         sync.Mutex
	n          int
	policies   map[int]*PolicyMsg
	connASN    map[uint32]int
	asnConn    map[int]uint32
	topology   *topo.Topology
	ribs       map[int]bgp.RIB
	stats      bgp.Stats
	computed   bool
	predicates map[string]map[int]Predicate // id → registering ASN → copy
}

// NewControllerState creates state expecting n ASes.
func NewControllerState(n int) *ControllerState {
	return &ControllerState{
		Attest:     attest.NewTargetState(),
		n:          n,
		policies:   make(map[int]*PolicyMsg),
		connASN:    make(map[uint32]int),
		asnConn:    make(map[int]uint32),
		predicates: make(map[string]map[int]Predicate),
	}
}

// PolicyCount reports how many policies have been uploaded.
func (st *ControllerState) PolicyCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.policies)
}

// Computed reports whether routes have been computed.
func (st *ControllerState) Computed() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.computed
}

// BoundASes reports how many ASes currently hold a live attested channel
// binding — the controller's own view of deployment health, and what the
// Degraded response flag is computed from.
func (st *ControllerState) BoundASes() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.asnConn)
}

// Stats returns the last computation's work statistics.
func (st *ControllerState) Stats() bgp.Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// ControllerProgram builds the inter-domain controller enclave program:
// the attestation target role plus the command handlers. Its measurement
// is the identity every AS-local controller pins.
func ControllerProgram(st *ControllerState) *core.Program {
	prog := &core.Program{
		Name:    "interdomain-controller",
		Version: ControllerVersion,
		Handlers: map[string]core.Handler{
			"sdn.handle":  st.handle,
			"sdn.compute": st.compute,
		},
	}
	attest.AddTargetHandlers(prog, st.Attest)
	return prog
}

// ControllerMeasurement is the well-known measurement of the controller
// program — what AS-local controllers whitelist.
func ControllerMeasurement(n int) core.Measurement {
	return core.MeasureProgram(ControllerProgram(NewControllerState(n)))
}

// handle processes one sealed request. arg: connID(4) ‖ sealed request.
// The untrusted runtime sees only ciphertext; the response is sent back
// through the message shim, also sealed.
func (st *ControllerState) handle(env *core.Env, arg []byte) ([]byte, error) {
	if len(arg) < 4 {
		return nil, fmt.Errorf("sdnctl: short handle arg")
	}
	cid := binary.LittleEndian.Uint32(arg[:4])
	plain, err := st.Attest.Open(env.Meter(), cid, arg[4:])
	if err != nil {
		return nil, fmt.Errorf("sdnctl: opening request: %w", err)
	}
	var req Request
	if err := DecodeMsg(plain, &req); err != nil {
		return nil, err
	}
	resp := st.dispatch(env.Meter(), cid, &req)
	out, err := EncodeMsg(resp)
	if err != nil {
		return nil, err
	}
	sealed, err := st.Attest.Seal(env.Meter(), cid, out)
	if err != nil {
		return nil, err
	}
	if _, err := env.OCall("msg.send", netsim.EncodeSend(cid, sealed)); err != nil {
		return nil, err
	}
	return nil, nil
}

func (st *ControllerState) dispatch(m *core.Meter, cid uint32, req *Request) *Response {
	st.mu.Lock()
	defer st.mu.Unlock()

	// Bind the claimed ASN to this attested channel on first use.
	if bound, ok := st.connASN[cid]; ok {
		if bound != req.From {
			return &Response{Err: "ASN does not match channel binding"}
		}
	} else {
		if other, taken := st.asnConn[req.From]; taken && other != cid {
			return &Response{Err: "ASN already bound to another channel"}
		}
		st.connASN[cid] = req.From
		st.asnConn[req.From] = cid
	}

	switch {
	case req.Policy != nil:
		if req.Policy.ASN != req.From {
			return &Response{Err: "policy ASN mismatch"}
		}
		m.ChargeNormal(CostPolicyIngest)
		st.policies[req.Policy.ASN] = req.Policy
		st.computed = false
		return &Response{OK: true}

	case req.GetRoutes:
		if !st.computed {
			return &Response{Err: "routes not computed yet"}
		}
		rib := st.ribs[req.From]
		msg := &RoutesMsg{ASN: req.From}
		// Sorted destination order: map iteration would put the wire
		// bytes — and every AS's installed route order — at the mercy of
		// Go's map hashing. Same routes, same count, deterministic order.
		dests := make([]int, 0, len(rib))
		for d := range rib {
			dests = append(dests, d)
		}
		sort.Ints(dests)
		for _, d := range dests {
			msg.Routes = append(msg.Routes, rib[d])
		}
		// Degraded mode: the computation is still valid, but not every AS
		// holds a live attested channel right now (crash, partition). The
		// surviving ASes keep routing on the last good computation and are
		// told so, rather than being refused service by an outage they are
		// not part of.
		return &Response{OK: true, Routes: msg, Degraded: len(st.asnConn) < st.n}

	case req.Register != nil:
		p := *req.Register
		if req.From != p.ASa && req.From != p.ASb {
			return &Response{Err: "registrant is not a party to the predicate"}
		}
		if st.predicates[p.ID] == nil {
			st.predicates[p.ID] = make(map[int]Predicate)
		}
		if prev, dup := st.predicates[p.ID][req.From]; dup && !prev.Equal(p) {
			return &Response{Err: "conflicting re-registration"}
		}
		st.predicates[p.ID][req.From] = p
		return &Response{OK: true}

	case req.Verify != "":
		if !st.computed {
			return &Response{Err: "routes not computed yet"}
		}
		copies := st.predicates[req.Verify]
		if len(copies) == 0 {
			return &Response{Err: "unknown predicate"}
		}
		var ref Predicate
		first := true
		for _, c := range copies {
			if first {
				ref, first = c, false
			} else if !ref.Equal(c) {
				return &Response{Err: "parties registered different predicates"}
			}
		}
		if req.From != ref.ASa && req.From != ref.ASb {
			return &Response{Err: "requester is not a party"}
		}
		// Both parties must have agreed (registered) before anything is
		// evaluated — "the controller ensures that only the predicates
		// agreed upon by the two ASes are verified".
		if _, okA := copies[ref.ASa]; !okA {
			return &Response{Err: "promise-maker has not agreed to this predicate"}
		}
		if _, okB := copies[ref.ASb]; !okB {
			return &Response{Err: "beneficiary has not agreed to this predicate"}
		}
		holds, examined := EvaluatePredicate(ref, st.topology, st.ribs)
		m.ChargeNormal(uint64(examined) * CostPredicateEval)
		return &Response{OK: true, Verdict: &Verdict{PredicateID: ref.ID, Holds: holds}}

	default:
		return &Response{Err: "empty request"}
	}
}

// compute builds the global topology from the uploaded policies and runs
// the all-pairs path computation, charging the calibrated work and the
// in-enclave allocation surcharge.
func (st *ControllerState) compute(env *core.Env, _ []byte) ([]byte, error) {
	stats, err := st.computeRoutes(env.Meter())
	if err != nil {
		return nil, err
	}
	env.ChargeAllocs(uint64(stats.Evaluations / allocsPerEvals))
	return nil, nil
}

// computeRoutes is the engine shared by the enclave and native paths.
func (st *ControllerState) computeRoutes(m *core.Meter) (bgp.Stats, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	t, err := BuildTopology(st.n, st.policies)
	if err != nil {
		return bgp.Stats{}, err
	}
	ribs, stats := bgp.ComputeAll(t)
	ChargeComputeWork(m, stats)
	st.topology, st.ribs, st.stats, st.computed = t, ribs, stats, true
	return stats, nil
}

// RIBs exposes the computed routes — an evaluation/testing hook standing
// in for the omniscient view a simulation has; a production controller
// never discloses another AS's routes.
func (st *ControllerState) RIBs() map[int]bgp.RIB {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[int]bgp.RIB, len(st.ribs))
	for a, r := range st.ribs {
		out[a] = r.Clone()
	}
	return out
}

// ChargeComputeWork charges the route-computation instruction model to a
// meter — shared by the enclave and native paths so the algorithmic work
// is identical and only the SGX surcharges differ.
func ChargeComputeWork(m *core.Meter, stats bgp.Stats) {
	m.ChargeNormal(uint64(stats.Updates)*CostRouteUpdate + uint64(stats.Evaluations)*CostRouteEval)
}

// Controller bundles the launched controller enclave with its untrusted
// runtime.
type Controller struct {
	Host    *netsim.SimHost
	Enclave *core.Enclave
	State   *ControllerState
	Shim    *netsim.IOShim

	listener *netsim.Listener
	wg       sync.WaitGroup
}

// LaunchController launches the controller enclave on the host and starts
// accepting AS-local connections: each is served by one remote
// attestation (the target role) followed by the sealed command loop.
func LaunchController(host *netsim.SimHost, signer *core.Signer, n int) (*Controller, error) {
	st := NewControllerState(n)
	return launchController(host, signer, st, ControllerProgram(st))
}

func launchController(host *netsim.SimHost, signer *core.Signer, st *ControllerState, prog *core.Program) (*Controller, error) {
	enc, err := host.Platform().Launch(prog, signer)
	if err != nil {
		return nil, err
	}
	shim := netsim.NewMsgShim(host, enc.Meter())
	var mh netsim.MultiHost
	mh.Mount("msg.", shim)
	enc.BindHost(&mh)
	l, err := host.Listen(ControllerService)
	if err != nil {
		enc.Destroy()
		return nil, err
	}
	c := &Controller{Host: host, Enclave: enc, State: st, Shim: shim, listener: l}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		l.Serve(c.serveConn)
	}()
	return c, nil
}

// Release unbinds a dead connection's ASN and forgets its session and
// any pending attestation, so the AS can reconnect and re-attest on a
// fresh channel. The computed routes stay valid — losing a channel is an
// outage, not a policy change.
func (st *ControllerState) Release(cid uint32) {
	st.Attest.Abort(cid)
	st.Attest.Drop(cid)
	st.mu.Lock()
	if asn, ok := st.connASN[cid]; ok {
		delete(st.connASN, cid)
		if st.asnConn[asn] == cid {
			delete(st.asnConn, asn)
		}
	}
	st.mu.Unlock()
}

// SetRecvTimeout bounds the controller enclave's receives — required when
// a fault schedule can kill an AS mid-attestation, or the responder would
// block forever inside a half-finished protocol run.
func (c *Controller) SetRecvTimeout(d time.Duration) { c.Shim.SetRecvTimeout(d) }

func (c *Controller) serveConn(conn *netsim.Conn) {
	cid, err := attest.Respond(c.Enclave, c.Shim, c.Host, conn)
	if err != nil {
		conn.Close()
		return
	}
	defer c.State.Release(cid)
	for {
		sealed, err := conn.Recv()
		if err != nil {
			return
		}
		arg := make([]byte, 4+len(sealed))
		binary.LittleEndian.PutUint32(arg[:4], cid)
		copy(arg[4:], sealed)
		if _, err := c.Enclave.Call("sdn.handle", arg); err != nil {
			conn.Close()
			return
		}
	}
}

// Compute triggers the in-enclave route computation (the untrusted
// runtime schedules it once all policies are in; the enclave re-checks).
func (c *Controller) Compute() error {
	_, err := c.Enclave.Call("sdn.compute", nil)
	return err
}

// Close stops the controller.
func (c *Controller) Close() {
	c.listener.Close()
	c.Enclave.Destroy()
}
