package sdnctl

import (
	"testing"

	"sgxnet/internal/bgp"
	"sgxnet/internal/topo"
)

// removableLink finds a provider link whose removal keeps the topology
// connected: an AS with at least two providers, dropping one of them.
func removableLink(t *testing.T, tp *topo.Topology) (a, b int) {
	t.Helper()
	for as := 0; as < tp.N(); as++ {
		providers := 0
		var last int
		for _, nb := range tp.Neighbors(as) {
			if rel, _ := tp.Rel(as, nb); rel == topo.RelProvider {
				providers++
				last = nb
			}
		}
		if providers >= 2 {
			return as, last
		}
	}
	t.Skip("no multi-homed AS in this topology")
	return 0, 0
}

func dropNeighbor(p *PolicyMsg, nbr int) *PolicyMsg {
	out := &PolicyMsg{ASN: p.ASN}
	for _, n := range p.Neighbors {
		if n.Neighbor != nbr {
			out.Neighbors = append(out.Neighbors, n)
		}
	}
	return out
}

// TestDynamicLinkFailure drives the full reconfiguration loop: a link
// fails, both endpoint ASes reconfigure their enclave policies and
// re-upload, the controller recomputes, and everyone's refreshed routes
// avoid the dead link — matching a from-scratch computation on the
// reduced topology.
func TestDynamicLinkFailure(t *testing.T) {
	tp := canonicalTopo(t, 10)
	a, b := removableLink(t, tp)

	// Expected post-failure state: recompute on a rebuilt topology
	// without the a–b link.
	reduced := topo.NewTopology(tp.N())
	for x := 0; x < tp.N(); x++ {
		for _, nb := range tp.Neighbors(x) {
			if x < nb && !(x == a && nb == b) && !(x == b && nb == a) {
				rel, _ := tp.Rel(x, nb)
				if err := reduced.AddLink(x, nb, rel); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for x := 0; x < tp.N(); x++ {
		for _, nb := range reduced.Neighbors(x) {
			reduced.SetLocalPref(x, nb, tp.LocalPref(x, nb))
		}
	}
	if !reduced.Connected() {
		t.Skip("removal disconnects this topology")
	}
	wantRIBs, _ := bgp.ComputeAll(reduced)

	_, err := RunSGXWithPredicates(tp, func(ctl *Controller, locals []*ASLocal) error {
		pols := PoliciesFromTopology(tp)
		// The link fails: both sides reconfigure and re-upload.
		if err := locals[a].Reconfigure(dropNeighbor(pols[a], b)); err != nil {
			return err
		}
		if err := locals[b].Reconfigure(dropNeighbor(pols[b], a)); err != nil {
			return err
		}
		// Routes were invalidated by the re-uploads: the controller must
		// refuse fetches until the next compute.
		if resp, err := locals[a].Do(&Request{GetRoutes: true}); err != nil {
			return err
		} else if resp.Err == "" {
			t.Fatal("controller served stale routes after a policy change")
		}
		if err := ctl.Compute(); err != nil {
			return err
		}
		for _, l := range locals {
			if err := l.Fetch(); err != nil {
				return err
			}
			for _, r := range l.State.Installed() {
				want, ok := wantRIBs[l.ASN][r.Dest]
				if !ok || !want.Equal(r) {
					t.Fatalf("AS%d route to %d after failure: %v, want %v", l.ASN, r.Dest, r, want)
				}
			}
			if len(l.State.Installed()) != len(wantRIBs[l.ASN]) {
				t.Fatalf("AS%d has %d routes, want %d", l.ASN, len(l.State.Installed()), len(wantRIBs[l.ASN]))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReconfigRejectsASNChange: an enclave refuses a reconfiguration
// that would let the operator impersonate another AS.
func TestReconfigRejectsASNChange(t *testing.T) {
	tp := canonicalTopo(t, 4)
	_, err := RunSGXWithPredicates(tp, func(_ *Controller, locals []*ASLocal) error {
		bad := &PolicyMsg{ASN: 2}
		if err := locals[1].Reconfigure(bad); err == nil {
			t.Fatal("ASN change accepted by the enclave")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
