package sdnctl

import (
	"testing"

	"sgxnet/internal/bgp"
)

// TestRunSGXRATLSAmortizes: the certificate-gated deployment converges
// to the same routes as the plain SGX run, and the controller's
// certificate is verified cold exactly once — every other AS hits the
// shared cache.
func TestRunSGXRATLSAmortizes(t *testing.T) {
	tp := canonicalTopo(t, 6)
	rep, err := RunSGXRATLS(tp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RATLSCold != 1 {
		t.Fatalf("RATLSCold = %d, want 1 (one full verification for N connections)", rep.RATLSCold)
	}
	if rep.RATLSWarm != uint64(rep.N-1) {
		t.Fatalf("RATLSWarm = %d, want %d", rep.RATLSWarm, rep.N-1)
	}
	if rep.Attestations != rep.N {
		t.Fatalf("Attestations = %d, want %d", rep.Attestations, rep.N)
	}
	want, _ := bgp.ComputeAll(tp)
	if !bgp.RIBsEqual(rep.RIBs, want) {
		t.Fatal("RATLS deployment diverged from clean computation")
	}
	for a := 0; a < rep.N; a++ {
		if len(rep.Installed[a]) != len(want[a]) {
			t.Fatalf("AS%d installed %d routes, want %d", a, len(rep.Installed[a]), len(want[a]))
		}
	}
}

// TestRunSGXRATLSPlainRunUnaffected: without the RATLS option the
// deployment keeps the seed identity and reports no certificate
// traffic — the option is strictly additive.
func TestRunSGXRATLSPlainRunUnaffected(t *testing.T) {
	if ControllerMeasurementRATLS(4) == ControllerMeasurement(4) {
		t.Fatal("RATLS handlers do not show in the controller measurement")
	}
	rep, err := RunSGX(canonicalTopo(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.RATLSCold != 0 || rep.RATLSWarm != 0 {
		t.Fatalf("plain run reports certificate traffic: cold=%d warm=%d", rep.RATLSCold, rep.RATLSWarm)
	}
}

// recordingInvalidator captures re-establishment purges.
type recordingInvalidator struct{ calls []uint32 }

func (r *recordingInvalidator) InvalidatePeer(cid uint32) { r.calls = append(r.calls, cid) }

// TestReattestInvalidatesCachedVerdicts: when a channel dies and the
// AS-local controller re-attests, the Invalidator fires — with the old
// connection's ID — before the fresh challenge runs, so verification
// caches keyed to the old attestation cannot satisfy the new one.
func TestReattestInvalidatesCachedVerdicts(t *testing.T) {
	tp := canonicalTopo(t, 4)
	_, err := RunSGXWithPredicates(tp, func(ctl *Controller, locals []*ASLocal) error {
		rec := &recordingInvalidator{}
		locals[0].SetRetryPolicy(faultPolicy())
		locals[0].SetInvalidator(rec)
		oldConn := locals[0].connID
		locals[0].conn.Close()
		waitBound(t, ctl, 3)
		if _, err := locals[0].Do(&Request{GetRoutes: true}); err != nil {
			t.Fatalf("Do after channel loss: %v", err)
		}
		if locals[0].Reattests != 1 {
			t.Fatalf("Reattests = %d, want 1", locals[0].Reattests)
		}
		if len(rec.calls) != 1 || rec.calls[0] != oldConn {
			t.Fatalf("invalidator calls %v, want exactly one for conn %d", rec.calls, oldConn)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
