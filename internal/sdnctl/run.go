package sdnctl

import (
	"fmt"

	"sgxnet/internal/attest"
	"sgxnet/internal/bgp"
	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/obs"
	"sgxnet/internal/ratls"
	"sgxnet/internal/topo"
	"sgxnet/internal/xcall"
)

// End-to-end deployment drivers for the evaluation: RunSGX and RunNative
// execute the identical workload (policy upload → compute → route
// push-back) and report per-controller instruction tallies for the
// steady state, with launch and attestation excluded exactly as the
// paper's Table 4 does.

// RunReport is the outcome of one deployment run.
type RunReport struct {
	N int
	// InterDomain is the inter-domain controller's steady-state tally.
	InterDomain core.Tally
	// ASLocal holds each AS-local controller's steady-state tally.
	ASLocal []core.Tally
	// Attestations is the number of remote attestations performed
	// (Table 3: equals the number of AS controllers in the SGX run).
	Attestations int
	// Stats is the route computation's work profile.
	Stats bgp.Stats
	// RIBs is the computed routing state (evaluation hook).
	RIBs map[int]bgp.RIB
	// Installed maps ASN → routes the AS-local controller installed.
	Installed map[int][]bgp.Route

	// Retries and Reattests total the attestation retries and channel
	// re-establishments across all AS-local controllers (zero for clean
	// runs). FaultStats snapshots the schedule's interventions.
	Retries    int
	Reattests  int
	FaultStats netsim.FaultStats

	// QuoteServing is the controller-host quoting enclave's tally over
	// the attestation phase — quote serving only, launch excluded. It is
	// the crossing-cost metric the xcall ablation compares: every quote
	// costs 17 SGX(U) synchronously (Table 1), fewer when the serve
	// ECALLs and message OCALLs ride rings (RunSGXSwitchlessQuotes).
	QuoteServing core.Tally
	// QuoteXcall is the quoting agent's ring tally when quote serving
	// runs switchlessly; zero otherwise.
	QuoteXcall xcall.Stats

	// RATLSCold and RATLSWarm split controller-certificate verifications
	// when admission runs over attested channels (RunSGXRATLS): one cold
	// full verification, warm cache hits for every other AS. Zero when
	// the run does not use RA-TLS.
	RATLSCold, RATLSWarm uint64
}

// ASLocalAvg averages the AS-local tallies.
func (r *RunReport) ASLocalAvg() core.Tally {
	if len(r.ASLocal) == 0 {
		return core.Tally{}
	}
	var sum core.Tally
	for _, t := range r.ASLocal {
		sum = sum.Add(t)
	}
	return core.Tally{SGXU: sum.SGXU / uint64(len(r.ASLocal)), Normal: sum.Normal / uint64(len(r.ASLocal))}
}

// RunSGX deploys the SGX-enabled design on the given topology: one
// controller host plus one host per AS, all SGX platforms with quoting
// enclaves; every AS-local controller remote-attests the inter-domain
// controller (with DH) before uploading its policy.
func RunSGX(t *topo.Topology) (*RunReport, error) {
	return RunSGXWithPredicates(t, nil)
}

// RunSGXWithPredicates runs the SGX deployment and, after routes are
// installed (and after the Table 4 measurement window closes), hands the
// live controller and AS-local controllers to extra — for predicate
// registration/verification (§3.1) or dynamic reconfiguration.
func RunSGXWithPredicates(t *topo.Topology, extra func(ctl *Controller, locals []*ASLocal) error) (*RunReport, error) {
	return runSGX(t, nil, nil, extra, nil, "", nil, nil)
}

// RunSGXTraced is RunSGX with spans on the given track: a "setup" span
// for everything before the steady-state boundary (drained with
// Meter.SnapshotAndReset so setup and steady tallies partition exactly),
// then "phase.upload" / "phase.compute" / "phase.fetch" spans over the
// controller and AS-local meters, and a "run.total" record carrying the
// tallies the report publishes. The quoting enclave on the controller
// host gets its own "<track>/qe" track. The track must be private to
// this run.
func RunSGXTraced(t *topo.Topology, tr *obs.Trace, track string) (*RunReport, error) {
	return runSGX(t, nil, nil, nil, tr, track, nil, nil)
}

// RunSGXSwitchlessQuotes is RunSGX with the controller host's quoting
// enclave serving switchlessly: serve ECALLs and the QE's message
// OCALLs ride xcall rings sized by xc, and the message shim charges in
// batched windows. The report's QuoteServing/QuoteXcall fields carry
// the amortized crossing tally the -xcall-sweep ablation compares
// against the synchronous 17-SGX(U)-per-quote baseline.
func RunSGXSwitchlessQuotes(t *topo.Topology, xc xcall.Config) (*RunReport, error) {
	return runSGX(t, nil, nil, nil, nil, "", &xc, nil)
}

// RunSGXFaulted runs the SGX deployment under a fault schedule with every
// controller armed by the retry policy: attestations retry with backoff,
// receives time out, and lost channels are re-attested. The schedule is
// installed before the attestation phase, so it disturbs the entire run.
func RunSGXFaulted(t *topo.Topology, fs *netsim.FaultSchedule, pol attest.RetryPolicy) (*RunReport, error) {
	return runSGX(t, fs, &pol, nil, nil, "", nil, nil)
}

// RunSGXFaultedTraced is RunSGXFaulted with tracing: in addition to the
// phase spans, the fault schedule's replay recipe is recorded as a
// "fault.schedule" event and every engine intervention as a
// "fault.<kind>" event on "<track>/faults", so the trace of a failing
// run alone reproduces it (the recipe rebuilds the decision streams,
// the ticks pin each intervention to the message clock).
func RunSGXFaultedTraced(t *topo.Topology, fs *netsim.FaultSchedule, pol attest.RetryPolicy, tr *obs.Trace, track string) (*RunReport, error) {
	if tr != nil && fs != nil {
		rec := &obs.FaultRecorder{T: tr, Track: track + "/faults"}
		rec.RecordSchedule(fs.Seed(), fs.String())
		fs.SetObserver(rec)
	}
	return runSGX(t, fs, &pol, nil, tr, track, nil, nil)
}

func runSGX(t *topo.Topology, fs *netsim.FaultSchedule, pol *attest.RetryPolicy, extra func(ctl *Controller, locals []*ASLocal) error, tr *obs.Trace, track string, xc *xcall.Config, ra *ratlsConfig) (*RunReport, error) {
	n := t.N()
	net := netsim.New()
	arch, err := core.NewSigner()
	if err != nil {
		return nil, err
	}
	newHost := func(name string) (*netsim.SimHost, error) {
		plat, err := core.NewPlatform(name, core.PlatformConfig{EPCFrames: 4096, ArchSigner: arch.MRSigner()})
		if err != nil {
			return nil, err
		}
		return net.AddHostWithPlatform(name, plat)
	}
	ctlHost, err := newHost("controller")
	if err != nil {
		return nil, err
	}
	agent, err := attest.NewAgent(ctlHost, arch)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		// The AS-local controllers attest serially, so the controller-host
		// quoting enclave serves one request at a time — safe on one track.
		agent.SetTrace(tr, track+"/qe")
	}
	if xc != nil {
		agent.SetXcall(*xc)
	}
	// QuoteServing measures serving only: drain whatever quoting-enclave
	// launch charged before any requester connects.
	agent.QE.Meter().Reset()
	signer, err := core.NewSigner()
	if err != nil {
		return nil, err
	}
	launch, ctlMR := LaunchController, ControllerMeasurement(n)
	if ra != nil {
		launch, ctlMR = LaunchControllerRATLS, ControllerMeasurementRATLS(n)
	}
	ctl, err := launch(ctlHost, signer, n)
	if err != nil {
		return nil, err
	}
	defer ctl.Close()

	// RATLS deployments mint the controller's certificate at launch and
	// share one verification cache across every AS — the per-connection
	// amortization the report's RATLSCold/RATLSWarm split shows.
	var raCert []byte
	var raVerifier *ratls.Verifier
	if ra != nil {
		mt, err := ratls.NewMinter(ctlHost.Platform(), arch)
		if err != nil {
			return nil, err
		}
		_, raCert, err = mt.Mint(ctl.Enclave)
		if err != nil {
			return nil, err
		}
		raVerifier = ratls.NewVerifier(attest.Policy{
			AllowedEnclaves: []core.Measurement{ctlMR},
			RejectDebug:     true,
		}, ra.shards())
	}
	policies := PoliciesFromTopology(t)
	locals := make([]*ASLocal, n)
	for a := 0; a < n; a++ {
		host, err := newHost(fmt.Sprintf("as%d", a))
		if err != nil {
			return nil, err
		}
		asl, err := LaunchASLocal(host, signer, policies[a], ctlMR)
		if err != nil {
			return nil, err
		}
		locals[a] = asl
		defer asl.Close()
	}

	// Arm the deployment and install the disturbance plan before any
	// protocol traffic, so the whole run — attestation included — is
	// exposed to it.
	if pol != nil {
		ctl.SetRecvTimeout(pol.RecvTimeout)
		for _, asl := range locals {
			asl.SetRetryPolicy(*pol)
		}
	}
	if fs != nil {
		net.SetFaults(fs)
	}

	// Attestation phase (one remote attestation per AS controller). In
	// the RATLS deployment each connection is gated by certificate
	// admission first — cold for the first AS, warm for the rest — and
	// every AS's re-establishment hook purges the certificate's cached
	// verdict, so a lost channel forces a full re-verification.
	attestations := 0
	for _, asl := range locals {
		if raVerifier != nil {
			if _, err := raVerifier.Admit(asl.Enclave.Meter(), raCert, "controller"); err != nil {
				return nil, fmt.Errorf("sdnctl: AS%d refused controller certificate: %w", asl.ASN, err)
			}
			asl.SetInvalidator(certInvalidator{v: raVerifier, digest: ratls.Digest(raCert)})
		}
		if err := asl.Connect("controller"); err != nil {
			return nil, err
		}
		attestations++
		tr.Event(track, "attest.established", map[string]string{"as": fmt.Sprint(asl.ASN)})
	}
	var raStats ratls.Stats
	if raVerifier != nil {
		raStats = raVerifier.Stats()
	}
	// The attestation phase is the quoting enclave's whole workload:
	// drain its rings at the boundary and capture its serving tally.
	if err := agent.FlushXcall(); err != nil {
		return nil, err
	}
	quoteServing := agent.QE.Meter().Snapshot()
	quoteXcall := agent.XcallStats()

	// Steady state begins here: drain every meter so launch/attestation
	// costs are excluded, as in Table 4. SnapshotAndReset (not
	// Snapshot+Reset) guarantees setup and steady tallies partition the
	// meters' lifetime consumption exactly, which is what lets the trace
	// attribute the whole run; the drained tallies become the "setup"
	// span.
	var setup core.Tally
	setup = setup.Add(ctl.Enclave.Meter().SnapshotAndReset())
	for _, asl := range locals {
		setup = setup.Add(asl.Enclave.Meter().SnapshotAndReset())
	}
	tr.RecordSpan(track, "setup", setup)

	// The steady-state phase spans watch every reported meter, so their
	// three deltas sum exactly to the tallies the report publishes.
	meters := make([]*core.Meter, 0, n+1)
	meters = append(meters, ctl.Enclave.Meter())
	for _, asl := range locals {
		meters = append(meters, asl.Enclave.Meter())
	}

	sp := tr.Begin(track, "phase.upload", meters...)
	for _, asl := range locals {
		if err := asl.Upload(); err != nil {
			return nil, err
		}
	}
	sp.End()
	sp = tr.Begin(track, "phase.compute", meters...)
	if err := ctl.Compute(); err != nil {
		return nil, err
	}
	sp.End()
	sp = tr.Begin(track, "phase.fetch", meters...)
	for _, asl := range locals {
		if err := asl.Fetch(); err != nil {
			return nil, err
		}
	}
	sp.End()

	rep := &RunReport{
		N:            n,
		InterDomain:  ctl.Enclave.Meter().Snapshot(),
		Attestations: attestations,
		Stats:        ctl.State.Stats(),
		RIBs:         ctl.State.RIBs(),
		Installed:    make(map[int][]bgp.Route, n),
		QuoteServing: quoteServing,
		QuoteXcall:   quoteXcall,
		RATLSCold:    raStats.Cold,
		RATLSWarm:    raStats.Warm,
	}
	for _, asl := range locals {
		rep.ASLocal = append(rep.ASLocal, asl.Enclave.Meter().Snapshot())
		rep.Installed[asl.ASN] = asl.State.Installed()
		rep.Retries += asl.Retries
		rep.Reattests += asl.Reattests
	}
	if tr != nil {
		// The independently-reported total the analyzer attributes spans
		// against: everything the published meters consumed, setup
		// included.
		total := setup.Add(rep.InterDomain)
		for _, t := range rep.ASLocal {
			total = total.Add(t)
		}
		tr.Total(track, "run.total", total)
	}
	if fs != nil {
		rep.FaultStats = fs.Stats()
	}
	if extra != nil {
		if err := extra(ctl, locals); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// RunNative deploys the baseline on the same workload.
func RunNative(t *topo.Topology) (*RunReport, error) {
	return RunNativeTraced(t, nil, "")
}

// RunNativeTraced is RunNative with the same span structure as
// RunSGXTraced (setup drain, three phase spans over the reported host
// meters, run.total record) so native and SGX legs compare phase by
// phase in sgxnet-trace.
func RunNativeTraced(t *topo.Topology, tr *obs.Trace, track string) (*RunReport, error) {
	n := t.N()
	net := netsim.New()
	ctlHost, err := net.AddHost("controller", core.PlatformConfig{EPCFrames: 64})
	if err != nil {
		return nil, err
	}
	ctl, err := LaunchNativeController(ctlHost, n)
	if err != nil {
		return nil, err
	}
	defer ctl.Close()

	policies := PoliciesFromTopology(t)
	locals := make([]*NativeASLocal, n)
	for a := 0; a < n; a++ {
		host, err := net.AddHost(fmt.Sprintf("as%d", a), core.PlatformConfig{EPCFrames: 64})
		if err != nil {
			return nil, err
		}
		locals[a] = NewNativeASLocal(host, policies[a])
		defer locals[a].Close()
	}
	for _, asl := range locals {
		if err := asl.Connect("controller"); err != nil {
			return nil, err
		}
	}

	var setup core.Tally
	setup = setup.Add(ctlHost.Platform().HostMeter.SnapshotAndReset())
	for _, asl := range locals {
		setup = setup.Add(asl.Host.Platform().HostMeter.SnapshotAndReset())
	}
	tr.RecordSpan(track, "setup", setup)

	meters := make([]*core.Meter, 0, n+1)
	meters = append(meters, ctlHost.Platform().HostMeter)
	for _, asl := range locals {
		meters = append(meters, asl.Host.Platform().HostMeter)
	}

	sp := tr.Begin(track, "phase.upload", meters...)
	for _, asl := range locals {
		if err := asl.Upload(); err != nil {
			return nil, err
		}
	}
	sp.End()
	sp = tr.Begin(track, "phase.compute", meters...)
	if err := ctl.Compute(); err != nil {
		return nil, err
	}
	sp.End()
	sp = tr.Begin(track, "phase.fetch", meters...)
	for _, asl := range locals {
		if err := asl.Fetch(); err != nil {
			return nil, err
		}
	}
	sp.End()

	rep := &RunReport{
		N:           n,
		InterDomain: ctlHost.Platform().HostMeter.Snapshot(),
		Stats:       ctl.State.Stats(),
		RIBs:        ctl.State.RIBs(),
		Installed:   make(map[int][]bgp.Route, n),
	}
	for _, asl := range locals {
		rep.ASLocal = append(rep.ASLocal, asl.Host.Platform().HostMeter.Snapshot())
		rep.Installed[asl.ASN] = asl.Installed()
	}
	if tr != nil {
		total := setup.Add(rep.InterDomain)
		for _, t := range rep.ASLocal {
			total = total.Add(t)
		}
		tr.Total(track, "run.total", total)
	}
	return rep, nil
}
