package ratls

import (
	"fmt"
	"sync"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
	"sgxnet/internal/sgxcrypto"
)

// The minter is this package's stand-in for the quoting enclave in the
// certificate flow: an architectural enclave that verifies a subject's
// EREPORT (intra-attestation) and signs the resulting quote with the
// platform attestation key. It lives on the same platform as the
// subject, exactly like attest's quoting agent — but it speaks ECALLs,
// not the netsim message protocol, because certificate minting happens
// at launch time on the subject's own machine, not over a network.

// minterVersion participates in the minter's measurement.
const minterVersion = "1.0"

// minterProgram builds the minter enclave program.
func minterProgram() *core.Program {
	return &core.Program{
		Name:    "ratls-minter",
		Version: minterVersion,
		Handlers: map[string]core.Handler{
			// sign verifies a subject report and returns
			// platformPub(32) ‖ quoteSig(64). arg: report(177).
			"sign": func(env *core.Env, arg []byte) ([]byte, error) {
				rep, ok := core.UnmarshalReport(arg)
				if !ok {
					return nil, fmt.Errorf("ratls: minter: malformed report")
				}
				if !env.VerifyReport(rep) { // EGETKEY + MAC check
					return nil, fmt.Errorf("ratls: minter: report verification failed")
				}
				priv, err := env.AttestationKey()
				if err != nil {
					return nil, err
				}
				q := attest.Quote{
					Identity: attest.Identity{
						MREnclave: rep.MREnclave,
						MRSigner:  rep.MRSigner,
						Debug:     rep.Attributes.Debug,
					},
					Data:        rep.Data,
					PlatformPub: env.Enclave().Platform().AttestationPublicKey(),
				}
				q.Sig = sgxcrypto.Sign(env.Meter(), priv, q.SignedBody())
				out := make([]byte, 0, 32+64)
				out = append(out, q.PlatformPub...)
				out = append(out, q.Sig...)
				return out, nil
			},
		},
	}
}

var (
	minterMROnce sync.Once
	minterMR     core.Measurement
)

// MinterMeasurement is the well-known minter identity subjects direct
// their REPORTs at (mirroring attest.QuotingMeasurement).
func MinterMeasurement() core.Measurement {
	minterMROnce.Do(func() {
		minterMR = core.MeasureProgram(minterProgram())
	})
	return minterMR
}

// Minter is a launched minter enclave.
type Minter struct {
	Enclave *core.Enclave
}

// NewMinter launches the minter on a platform. The signer must be the
// platform's architectural signer — the attestation key is hardware-
// restricted to architectural enclaves.
func NewMinter(plat *core.Platform, archSigner *core.Signer) (*Minter, error) {
	enc, err := plat.Launch(minterProgram(), archSigner)
	if err != nil {
		return nil, fmt.Errorf("ratls: launching minter: %w", err)
	}
	if !enc.Attrs().Architectural {
		enc.Destroy()
		return nil, fmt.Errorf("ratls: minter not architectural — platform ArchSigner mismatch")
	}
	return &Minter{Enclave: enc}, nil
}

// Close destroys the minter enclave.
func (mt *Minter) Close() { mt.Enclave.Destroy() }

// Mint produces a certificate for a subject enclave on the minter's
// platform. The subject's program must carry AddSubjectHandlers. The
// subject's ECALL charges land on the subject meter, the quote signing
// on the minter meter — the same split the quoting agent produces.
// Returns the parsed certificate and its wire bytes.
func (mt *Minter) Mint(subject *core.Enclave) (*Certificate, []byte, error) {
	out, err := subject.Call(HandlerReport, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("ratls: subject report: %w", err)
	}
	if len(out) != reportRespLen {
		return nil, nil, fmt.Errorf("ratls: subject returned %d bytes, want %d", len(out), reportRespLen)
	}
	repRaw := out[:177]
	pub := append([]byte(nil), out[177:209]...)
	var inst [16]byte
	copy(inst[:], out[209:225])
	pop := append([]byte(nil), out[225:289]...)

	sigOut, err := mt.Enclave.Call("sign", repRaw)
	if err != nil {
		return nil, nil, err
	}
	if len(sigOut) != 32+64 {
		return nil, nil, fmt.Errorf("ratls: minter returned %d bytes, want %d", len(sigOut), 32+64)
	}
	rep, _ := core.UnmarshalReport(repRaw)
	cert := &Certificate{
		Pub:        pub,
		InstanceID: inst,
		Quote: attest.Quote{
			Identity: attest.Identity{
				MREnclave: rep.MREnclave,
				MRSigner:  rep.MRSigner,
				Debug:     rep.Attributes.Debug,
			},
			Data:        rep.Data,
			PlatformPub: append([]byte(nil), sigOut[:32]...),
			Sig:         append([]byte(nil), sigOut[32:]...),
		},
		PopSig: pop,
	}
	return cert, cert.Marshal(), nil
}
