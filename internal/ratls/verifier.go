package ratls

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
)

// ErrRejected is wrapped by every admission refusal.
var ErrRejected = errors.New("ratls: certificate rejected")

// entry is one cached verification verdict.
type entry struct {
	epoch uint64 // policy epoch the verdict was computed under
	id    attest.Identity
	inst  [16]byte
}

// shard is one lock-striped slice of the cache.
type shard struct {
	mu sync.Mutex
	m  map[[32]byte]entry
}

// Stats is a point-in-time snapshot of verifier activity.
type Stats struct {
	Cold    uint64 // full verifications (cache misses)
	Warm    uint64 // cache hits
	Rejects uint64 // refused admissions
	Entries int    // cached verdicts (any epoch)
}

// HitRate is warm admissions over all admissions, in [0,1].
func (s Stats) HitRate() float64 {
	total := s.Cold + s.Warm
	if total == 0 {
		return 0
	}
	return float64(s.Warm) / float64(total)
}

// Verifier admits peers by RA-TLS certificate: full verification on
// first sight, a sharded digest cache afterwards. Revocation works by
// policy epoch — SetPolicy bumps the epoch, so every cached verdict
// silently expires and the next admission re-verifies against the new
// whitelist. The instance table rejects Sybil re-registration: one
// enclave instance may register under exactly one peer name.
//
// All methods are safe for concurrent use; the meter passed to Admit is
// the caller's (each admitting endpoint charges its own verification).
type Verifier struct {
	// Probe, when non-nil, is notified once per admission attempt (the
	// Kind* constants in kinds.go). Observations ride outside the meter.
	Probe core.Probe

	epoch  atomic.Uint64
	shards []shard

	mu   sync.Mutex
	pol  attest.Policy
	inst map[[16]byte]string // instance ID → registered peer name

	cold    atomic.Uint64
	warm    atomic.Uint64
	rejects atomic.Uint64
}

// NewVerifier builds a verifier over `shards` lock stripes (minimum 1).
func NewVerifier(pol attest.Policy, shards int) *Verifier {
	if shards < 1 {
		shards = 1
	}
	v := &Verifier{
		pol:    pol,
		shards: make([]shard, shards),
		inst:   make(map[[16]byte]string),
	}
	for i := range v.shards {
		v.shards[i].m = make(map[[32]byte]entry)
	}
	return v
}

// SetPolicy replaces the acceptance policy and revokes every cached
// verdict by bumping the epoch — a relay admitted under the old
// whitelist is fully re-verified on its next connection (the paper's
// release-registry revocation, §4). Instance registrations survive: a
// revoked instance stays bound to its name.
func (v *Verifier) SetPolicy(pol attest.Policy) {
	v.mu.Lock()
	v.pol = pol
	v.mu.Unlock()
	v.epoch.Add(1)
}

// Invalidate drops one cached verdict by certificate digest.
func (v *Verifier) Invalidate(digest [32]byte) {
	sh := &v.shards[int(digest[0])%len(v.shards)]
	sh.mu.Lock()
	delete(sh.m, digest)
	sh.mu.Unlock()
}

// InvalidateAll revokes every cached verdict without changing policy.
func (v *Verifier) InvalidateAll() { v.epoch.Add(1) }

// Stats snapshots the verifier counters.
func (v *Verifier) Stats() Stats {
	s := Stats{
		Cold:    v.cold.Load(),
		Warm:    v.warm.Load(),
		Rejects: v.rejects.Load(),
	}
	for i := range v.shards {
		v.shards[i].mu.Lock()
		s.Entries += len(v.shards[i].m)
		v.shards[i].mu.Unlock()
	}
	return s
}

func (v *Verifier) observe(kind string) {
	if v.Probe != nil {
		v.Probe.Observe(kind, 1)
	}
}

func (v *Verifier) reject(format string, args ...any) error {
	v.rejects.Add(1)
	v.observe(KindReject)
	return fmt.Errorf("%w: %s", ErrRejected, fmt.Sprintf(format, args...))
}

// rejectErr wraps a causal error (e.g. *attest.ErrPolicy) so callers
// can still errors.As into it.
func (v *Verifier) rejectErr(err error) error {
	v.rejects.Add(1)
	v.observe(KindReject)
	return fmt.Errorf("%w: %w", ErrRejected, err)
}

// bindInstance enforces one peer name per enclave instance. Caller
// holds no shard lock.
func (v *Verifier) bindInstance(inst [16]byte, peer string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	prev, ok := v.inst[inst]
	if !ok {
		v.inst[inst] = peer
		return nil
	}
	if prev != peer {
		return fmt.Errorf("instance already registered as %q (Sybil re-registration)", prev)
	}
	return nil
}

// Admit verifies a serialized certificate for the named peer and
// returns the attested identity. Cost model, following the
// validate-then-charge discipline (DESIGN.md §14): each signature check
// charges only after it passes, so a forged certificate costs the
// verifier nothing on the meter; a warm hit charges exactly
// core.CostQuoteCacheLookup.
func (v *Verifier) Admit(m *core.Meter, raw []byte, peer string) (attest.Identity, error) {
	digest := Digest(raw)
	sh := &v.shards[int(digest[0])%len(v.shards)]
	ep := v.epoch.Load()

	sh.mu.Lock()
	e, hit := sh.m[digest]
	sh.mu.Unlock()
	if hit && e.epoch == ep {
		// The verdict is current, but the Sybil check still runs: the
		// same cached certificate presented under a second name is the
		// re-registration attack, not a cache hit.
		if err := v.bindInstance(e.inst, peer); err != nil {
			return attest.Identity{}, v.reject("%v", err)
		}
		m.ChargeNormal(core.CostQuoteCacheLookup)
		v.warm.Add(1)
		v.observe(KindVerifyWarm)
		return e.id, nil
	}

	cert, err := Unmarshal(raw)
	if err != nil {
		return attest.Identity{}, v.reject("%v", err)
	}
	// The quote must bind this exact key and instance ID — otherwise a
	// valid quote lifted from another certificate would transplant.
	if cert.Quote.Data != BindingData(cert.Pub, cert.InstanceID) {
		return attest.Identity{}, v.reject("quote does not bind the certificate key")
	}
	// Proof of possession: the presenter holds the channel private key.
	pop := popBody(cert.Pub, cert.InstanceID)
	if !ed25519.Verify(cert.Pub, pop, cert.PopSig) {
		return attest.Identity{}, v.reject("bad proof-of-possession signature")
	}
	m.ChargeNormal(core.CostSigVerify + uint64(len(pop))*core.CostSHA256PerByte)
	// Quote signature under the embedded platform attestation key.
	if len(cert.Quote.PlatformPub) != ed25519.PublicKeySize {
		return attest.Identity{}, v.reject("bad platform key length")
	}
	body := cert.Quote.SignedBody()
	if !ed25519.Verify(ed25519.PublicKey(cert.Quote.PlatformPub), body, cert.Quote.Sig) {
		return attest.Identity{}, v.reject("bad quote signature")
	}
	m.ChargeNormal(core.CostSigVerify + uint64(len(body))*core.CostSHA256PerByte)

	v.mu.Lock()
	pol := v.pol
	v.mu.Unlock()
	if perr := pol.Check(&cert.Quote); perr != nil {
		return attest.Identity{}, v.rejectErr(perr)
	}
	if err := v.bindInstance(cert.InstanceID, peer); err != nil {
		return attest.Identity{}, v.reject("%v", err)
	}

	sh.mu.Lock()
	sh.m[digest] = entry{epoch: ep, id: cert.Quote.Identity, inst: cert.InstanceID}
	sh.mu.Unlock()
	v.cold.Add(1)
	v.observe(KindVerifyCold)
	return cert.Quote.Identity, nil
}
