package ratls

import "sgxnet/internal/obs"

// Verifier probe kinds, observed once per admission attempt.
const (
	// KindVerifyCold is a full certificate verification: parse, proof of
	// possession, quote signature, policy, and instance registration.
	KindVerifyCold = "ratls.verify.cold"
	// KindVerifyWarm is a cache hit: the certificate digest matched a
	// verdict recorded under the current policy epoch.
	KindVerifyWarm = "ratls.verify.warm"
	// KindReject is an admission refused — malformed certificate, bad
	// signature, policy miss, or instance-ID replay.
	KindReject = "ratls.reject"
)

// Register the verifier's probe kinds so a strict obs.Registry can vouch
// that every kind this package fires is documented (obs never imports
// ratls, so the import is cycle-free).
func init() {
	obs.RegisterKind(KindVerifyCold, "RA-TLS certificate fully verified (cache miss)")
	obs.RegisterKind(KindVerifyWarm, "RA-TLS certificate admitted from the verification cache")
	obs.RegisterKind(KindReject, "RA-TLS certificate rejected")
}
