// Package ratls implements attested channels in the RA-TLS style: a TLS
// certificate that carries an EREPORT-derived quote, so the handshake
// itself proves the peer's channel key terminates inside a whitelisted
// enclave. The paper sketches this for its network applications — Tor
// relay admission (§3.2) and controller↔AS channels (§3.1) — where the
// expensive step is not the TLS key exchange but the quote verification
// every new connection would otherwise repeat. A sharded verification
// cache (verifier.go) amortizes that: N connections presenting the same
// certificate cost one full verification plus N−1 cache lookups.
package ratls

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
	"sgxnet/internal/sgxcrypto"
)

const (
	// certMagic versions the fixed certificate layout.
	certMagic = "sgxnet-ratls-cert-v1"
	// bindingLabel domain-separates the report data that ties the
	// channel key and instance ID into the quote.
	bindingLabel = "sgxnet-ratls-v1"
	// popLabel domain-separates the proof-of-possession signature.
	popLabel = "sgxnet-ratls-pop-v1"
)

// CertSize is the exact wire size of a certificate: magic(20) ‖ pub(32)
// ‖ instanceID(16) ‖ MRENCLAVE(32) ‖ MRSIGNER(32) ‖ debug(1) ‖
// quoteData(64) ‖ platformPub(32) ‖ quoteSig(64) ‖ popSig(64).
const CertSize = len(certMagic) + 32 + 16 + 32 + 32 + 1 + 64 + 32 + 64 + 64

// Certificate is an RA-TLS certificate: an ed25519 channel key, a
// per-instance identifier, and a quote whose report data binds both —
// so presenting the certificate proves the key belongs to the attested
// enclave instance, not to a man in the middle who verified it once.
type Certificate struct {
	// Pub is the channel public key the certificate attests.
	Pub ed25519.PublicKey
	// InstanceID identifies the enclave *instance* (derived inside the
	// enclave from its seal key and launch ID). Two relays presenting
	// the same InstanceID are one enclave registering twice — the Sybil
	// re-registration the verifier rejects.
	InstanceID [16]byte
	// Quote is the platform-signed attestation; Quote.Data must equal
	// BindingData(Pub, InstanceID).
	Quote attest.Quote
	// PopSig is the proof of possession: a self-signature over the key
	// and instance ID with the private half of Pub.
	PopSig []byte
}

// BindingData is the report data a subject enclave binds into its
// EREPORT: a digest of the channel key and instance ID, so the quote
// attests this exact certificate and nothing else.
func BindingData(pub ed25519.PublicKey, instanceID [16]byte) core.ReportData {
	b := make([]byte, 0, len(bindingLabel)+32+16)
	b = append(b, bindingLabel...)
	b = append(b, pub...)
	b = append(b, instanceID[:]...)
	return core.ReportDataFrom(b)
}

// popBody is the byte string the certificate key self-signs.
func popBody(pub ed25519.PublicKey, instanceID [16]byte) []byte {
	b := make([]byte, 0, len(popLabel)+32+16)
	b = append(b, popLabel...)
	b = append(b, pub...)
	b = append(b, instanceID[:]...)
	return b
}

// Marshal serializes the certificate into its fixed layout.
func (c *Certificate) Marshal() []byte {
	out := make([]byte, 0, CertSize)
	out = append(out, certMagic...)
	out = append(out, c.Pub...)
	out = append(out, c.InstanceID[:]...)
	out = append(out, c.Quote.Identity.MREnclave[:]...)
	out = append(out, c.Quote.Identity.MRSigner[:]...)
	if c.Quote.Identity.Debug {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = append(out, c.Quote.Data[:]...)
	out = append(out, c.Quote.PlatformPub...)
	out = append(out, c.Quote.Sig...)
	out = append(out, c.PopSig...)
	return out
}

// Unmarshal strictly parses a certificate: exact length, exact magic,
// and a canonical debug byte. Anything else is rejected before any
// cryptography runs.
func Unmarshal(raw []byte) (*Certificate, error) {
	if len(raw) != CertSize {
		return nil, fmt.Errorf("ratls: certificate is %d bytes, want %d", len(raw), CertSize)
	}
	if string(raw[:len(certMagic)]) != certMagic {
		return nil, fmt.Errorf("ratls: bad certificate magic")
	}
	p := len(certMagic)
	c := &Certificate{Pub: append(ed25519.PublicKey(nil), raw[p:p+32]...)}
	p += 32
	copy(c.InstanceID[:], raw[p:p+16])
	p += 16
	copy(c.Quote.Identity.MREnclave[:], raw[p:p+32])
	p += 32
	copy(c.Quote.Identity.MRSigner[:], raw[p:p+32])
	p += 32
	switch raw[p] {
	case 0:
	case 1:
		c.Quote.Identity.Debug = true
	default:
		return nil, fmt.Errorf("ratls: non-canonical debug byte %#x", raw[p])
	}
	p++
	copy(c.Quote.Data[:], raw[p:p+64])
	p += 64
	c.Quote.PlatformPub = append([]byte(nil), raw[p:p+32]...)
	p += 32
	c.Quote.Sig = append([]byte(nil), raw[p:p+64]...)
	p += 64
	c.PopSig = append([]byte(nil), raw[p:p+64]...)
	return c, nil
}

// Digest is the cache key for a serialized certificate.
func Digest(raw []byte) [32]byte { return sha256.Sum256(raw) }

// HandlerReport is the ECALL AddSubjectHandlers installs: it derives the
// enclave's channel key and instance ID and EREPORTs them at the minter.
const HandlerReport = "ratls.report"

// reportRespLen is report(177) ‖ pub(32) ‖ instanceID(16) ‖ popSig(64).
const reportRespLen = 177 + 32 + 16 + 64

// AddSubjectHandlers adds the certificate-request handler to a program.
// It participates in the program's measurement, so deployments that
// enable RA-TLS whitelist the measurement of the program *with* these
// handlers — exactly like attest.AddTargetHandlers.
func AddSubjectHandlers(prog *core.Program) {
	prog.Handlers[HandlerReport] = subjectReport
}

// subjectReport runs inside the subject enclave. The channel key is
// derived from the seal key (EGETKEY) — deterministic for the enclave
// identity and never visible to the host — and the instance ID from the
// seal key plus the launch ID, so each live instance registers exactly
// one identity. It returns report ‖ pub ‖ instanceID ‖ popSig.
func subjectReport(env *core.Env, arg []byte) ([]byte, error) {
	k, err := env.GetKey(core.KeySealEnclave)
	if err != nil {
		return nil, err
	}
	seed := sha256.Sum256(append([]byte("sgxnet-ratls-key:"), k[:]...))
	priv := ed25519.NewKeyFromSeed(seed[:])
	pub := priv.Public().(ed25519.PublicKey)

	var idb [8]byte
	binary.LittleEndian.PutUint64(idb[:], uint64(env.Enclave().ID()))
	ih := sha256.Sum256(append(append([]byte("sgxnet-ratls-instance:"), k[:]...), idb[:]...))
	var inst [16]byte
	copy(inst[:], ih[:16])

	rep := env.EReport(core.TargetInfo{Measurement: MinterMeasurement()}, BindingData(pub, inst))
	pop := sgxcrypto.Sign(env.Meter(), priv, popBody(pub, inst))

	out := make([]byte, 0, reportRespLen)
	out = append(out, rep.Marshal()...)
	out = append(out, pub...)
	out = append(out, inst[:]...)
	out = append(out, pop...)
	return out, nil
}
