package ratls

import (
	"bytes"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"sgxnet/internal/core"
	"sgxnet/internal/tlslite"
)

// The attested-channel layer: once both peers' certificates are
// admitted, the channel keys are derived from the two attested channel
// keys. The asymmetric cost RA-TLS adds over vanilla TLS — and the cost
// this package's cache amortizes — is the quote verification in Admit;
// key derivation here is the symmetric tail of the handshake.

// channelHMACs is the number of HMAC invocations ChannelKeys models:
// one extract plus the four directional expansions.
const channelHMACs = 5

// ChannelKeys derives a tlslite key block for an attested channel from
// the two admitted certificate keys. Both peers derive identical keys
// (the inputs are ordered canonically), so either side can build the
// record codec. The derivation is metered as five HMACs over the key
// material.
func ChannelKeys(m *core.Meter, localPub, peerPub ed25519.PublicKey) (tlslite.Keys, error) {
	if len(localPub) != ed25519.PublicKeySize || len(peerPub) != ed25519.PublicKeySize {
		return tlslite.Keys{}, fmt.Errorf("ratls: bad channel key length")
	}
	lo, hi := localPub, peerPub
	if bytes.Compare(lo, hi) > 0 {
		lo, hi = hi, lo
	}
	seed := make([]byte, 0, 24+2*ed25519.PublicKeySize)
	seed = append(seed, "sgxnet-ratls-master-v1"...)
	seed = append(seed, lo...)
	seed = append(seed, hi...)
	master := sha256.Sum256(seed)
	m.ChargeNormal(channelHMACs*core.CostHMAC + uint64(len(seed))*core.CostSHA256PerByte)

	expand := func(label string) []byte {
		h := hmac.New(sha256.New, master[:])
		h.Write([]byte(label))
		return h.Sum(nil)
	}
	var k tlslite.Keys
	copy(k.EncC2S[:], expand("ratls enc c2s"))
	copy(k.EncS2C[:], expand("ratls enc s2c"))
	copy(k.MacC2S[:], expand("ratls mac c2s"))
	copy(k.MacS2C[:], expand("ratls mac s2c"))
	return k, nil
}

// GateService is the ECALL name GateProgram serves admissions on.
const GateService = "ratls.admit"

// EncodeAdmit frames a gate ECALL argument: peerLen(2) ‖ peer ‖ cert.
func EncodeAdmit(peer string, cert []byte) []byte {
	out := make([]byte, 2, 2+len(peer)+len(cert))
	binary.LittleEndian.PutUint16(out, uint16(len(peer)))
	out = append(out, peer...)
	out = append(out, cert...)
	return out
}

// GateProgram hosts a verifier inside an enclave: each admission is one
// ECALL, so the verifying endpoint itself runs under SGX and every
// connection pays the EENTER/EEXIT crossing on top of the verification
// — the deployment shape of an SGX directory authority or controller.
// The handler returns MRENCLAVE ‖ MRSIGNER of the admitted peer.
func GateProgram(v *Verifier) *core.Program {
	return &core.Program{
		Name:    "ratls-gate",
		Version: "1.0",
		Handlers: map[string]core.Handler{
			GateService: func(env *core.Env, arg []byte) ([]byte, error) {
				if len(arg) < 2 {
					return nil, fmt.Errorf("ratls: short admit arg")
				}
				n := int(binary.LittleEndian.Uint16(arg[:2]))
				if len(arg) < 2+n {
					return nil, fmt.Errorf("ratls: truncated admit peer")
				}
				peer := string(arg[2 : 2+n])
				id, err := v.Admit(env.Meter(), arg[2+n:], peer)
				if err != nil {
					return nil, err
				}
				out := make([]byte, 0, 64)
				out = append(out, id.MREnclave[:]...)
				out = append(out, id.MRSigner[:]...)
				return out, nil
			},
		},
	}
}
