package ratls

import (
	"errors"
	"sync"
	"testing"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
	"sgxnet/internal/obs"
	"sgxnet/internal/tlslite"
)

// rig is one SGX platform with a minter and a launched subject enclave.
type rig struct {
	plat    *core.Platform
	minter  *Minter
	subject *core.Enclave
}

// subjectProgram is the test's attested application build.
func subjectProgram() *core.Program {
	prog := &core.Program{
		Name:    "ratls-subject",
		Version: "1.0",
		Handlers: map[string]core.Handler{
			"noop": func(env *core.Env, arg []byte) ([]byte, error) { return arg, nil },
		},
	}
	AddSubjectHandlers(prog)
	return prog
}

func newRig(t *testing.T, seed string) *rig {
	t.Helper()
	arch, err := core.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	plat, err := core.NewPlatform("ratls-"+seed, core.PlatformConfig{
		EPCFrames: 512, ArchSigner: arch.MRSigner(), Seed: []byte(seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := NewMinter(plat, arch)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := core.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := plat.Launch(subjectProgram(), signer)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{plat: plat, minter: mt, subject: enc}
}

// whitelist returns a policy admitting exactly the rig's subject build.
func (r *rig) whitelist() attest.Policy {
	return attest.Policy{
		AllowedEnclaves: []core.Measurement{r.subject.MREnclave()},
		RejectDebug:     true,
	}
}

// coldCost is the exact meter charge of one full verification: the
// proof-of-possession check plus the quote-signature check.
func coldCost() uint64 {
	popLen := uint64(len(popLabel) + 32 + 16)
	quoteLen := uint64(len("sgxnet-quote-v1") + 32 + 32 + 1 + 64 + 32)
	return 2*core.CostSigVerify + (popLen+quoteLen)*core.CostSHA256PerByte
}

func TestMintAndAdmit(t *testing.T) {
	r := newRig(t, "mint-admit")
	cert, raw, err := r.minter.Mint(r.subject)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != CertSize {
		t.Fatalf("cert is %d bytes, want %d", len(raw), CertSize)
	}
	if cert.Quote.Data != BindingData(cert.Pub, cert.InstanceID) {
		t.Fatalf("minted quote does not bind the certificate key")
	}

	reg := obs.NewRegistry()
	v := NewVerifier(r.whitelist(), 4)
	v.Probe = reg
	m := core.NewMeter()

	id, err := v.Admit(m, raw, "relay-a")
	if err != nil {
		t.Fatalf("cold admit: %v", err)
	}
	if id.MREnclave != r.subject.MREnclave() {
		t.Fatalf("admitted identity mismatch")
	}
	if got := m.Normal(); got != coldCost() {
		t.Fatalf("cold admit charged %d, want %d", got, coldCost())
	}

	m.Reset()
	if _, err := v.Admit(m, raw, "relay-a"); err != nil {
		t.Fatalf("warm admit: %v", err)
	}
	if got := m.Normal(); got != core.CostQuoteCacheLookup {
		t.Fatalf("warm admit charged %d, want %d", got, core.CostQuoteCacheLookup)
	}
	if reg.Get(KindVerifyCold) != 1 || reg.Get(KindVerifyWarm) != 1 || reg.Get(KindReject) != 0 {
		t.Fatalf("probe counts cold=%d warm=%d reject=%d, want 1/1/0",
			reg.Get(KindVerifyCold), reg.Get(KindVerifyWarm), reg.Get(KindReject))
	}
	st := v.Stats()
	if st.Cold != 1 || st.Warm != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want cold=1 warm=1 entries=1", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", st.HitRate())
	}
}

// TestTamperedCertRejected: every tampered byte region fails closed,
// and checks that fail before any signature verifies charge zero.
func TestTamperedCertRejected(t *testing.T) {
	r := newRig(t, "tamper")
	_, raw, err := r.minter.Mint(r.subject)
	if err != nil {
		t.Fatal(err)
	}
	popOff := CertSize - 64       // self-signature
	quoteSigOff := CertSize - 128 // platform signature
	cases := []struct {
		name       string
		mutate     func([]byte) []byte
		zeroCharge bool // reject happens before any charge
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)-1] }, true},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, true},
		{"non-canonical debug", func(b []byte) []byte { b[len(certMagic)+32+16+64] = 7; return b }, true},
		{"key swap breaks binding", func(b []byte) []byte { b[len(certMagic)] ^= 1; return b }, true},
		{"pop sig flip", func(b []byte) []byte { b[popOff] ^= 1; return b }, true},
		// A flipped quote signature is found after the pop check passed,
		// so the pop verification is (correctly) charged.
		{"quote sig flip", func(b []byte) []byte { b[quoteSigOff] ^= 1; return b }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := NewVerifier(r.whitelist(), 1)
			m := core.NewMeter()
			mutated := tc.mutate(append([]byte(nil), raw...))
			if _, err := v.Admit(m, mutated, "relay"); !errors.Is(err, ErrRejected) {
				t.Fatalf("tampered cert admitted (err=%v)", err)
			}
			if tc.zeroCharge && m.Normal() != 0 {
				t.Fatalf("pre-verification reject charged %d, want 0", m.Normal())
			}
			if st := v.Stats(); st.Rejects != 1 || st.Entries != 0 {
				t.Fatalf("stats %+v, want rejects=1 entries=0", st)
			}
		})
	}
}

func TestPolicyRejectsUnknownBuild(t *testing.T) {
	r := newRig(t, "policy")
	_, raw, err := r.minter.Mint(r.subject)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(attest.Policy{
		AllowedEnclaves: []core.Measurement{{0xba, 0xad}},
		RejectDebug:     true,
	}, 1)
	_, err = v.Admit(core.NewMeter(), raw, "relay")
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("non-whitelisted build admitted (err=%v)", err)
	}
	var perr *attest.ErrPolicy
	if !errors.As(err, &perr) {
		t.Fatalf("rejection does not carry the policy error: %v", err)
	}
}

// TestSybilReRegistrationRejected: one enclave instance may register
// under exactly one peer name — on the warm path and on the cold path.
func TestSybilReRegistrationRejected(t *testing.T) {
	r := newRig(t, "sybil")
	_, raw, err := r.minter.Mint(r.subject)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(r.whitelist(), 2)
	if _, err := v.Admit(core.NewMeter(), raw, "relay-a"); err != nil {
		t.Fatal(err)
	}
	// Warm path: the cached certificate under a second name.
	if _, err := v.Admit(core.NewMeter(), raw, "relay-b"); !errors.Is(err, ErrRejected) {
		t.Fatalf("warm Sybil re-registration admitted (err=%v)", err)
	}
	// Cold path: evict the verdict, then re-present under a third name.
	v.Invalidate(Digest(raw))
	if _, err := v.Admit(core.NewMeter(), raw, "relay-c"); !errors.Is(err, ErrRejected) {
		t.Fatalf("cold Sybil re-registration admitted (err=%v)", err)
	}
	// The original name still works.
	if _, err := v.Admit(core.NewMeter(), raw, "relay-a"); err != nil {
		t.Fatalf("legitimate re-admission failed: %v", err)
	}
}

// TestRevocationEpoch: SetPolicy revokes cached verdicts — a peer
// admitted under the old whitelist is re-verified and rejected, and
// restoring the whitelist requires a fresh full verification.
func TestRevocationEpoch(t *testing.T) {
	r := newRig(t, "revoke")
	_, raw, err := r.minter.Mint(r.subject)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(r.whitelist(), 1)
	if _, err := v.Admit(core.NewMeter(), raw, "relay"); err != nil {
		t.Fatal(err)
	}
	v.SetPolicy(attest.Policy{AllowedEnclaves: []core.Measurement{{0xde}}, RejectDebug: true})
	m := core.NewMeter()
	if _, err := v.Admit(m, raw, "relay"); !errors.Is(err, ErrRejected) {
		t.Fatalf("revoked build admitted from cache (err=%v)", err)
	}
	v.SetPolicy(r.whitelist())
	m.Reset()
	if _, err := v.Admit(m, raw, "relay"); err != nil {
		t.Fatalf("re-admission after restore failed: %v", err)
	}
	if m.Normal() != coldCost() {
		t.Fatalf("post-revocation admit charged %d, want full %d (stale verdict must not warm-hit)",
			m.Normal(), coldCost())
	}
}

// TestShardedCacheConcurrent hammers one verifier from many goroutines
// (run under -race in CI's ratls-smoke job). Counters must balance and
// every admission must succeed.
func TestShardedCacheConcurrent(t *testing.T) {
	r := newRig(t, "concurrent")
	_, raw, err := r.minter.Mint(r.subject)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 200
	v := NewVerifier(r.whitelist(), 8)
	m := core.NewMeter()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := v.Admit(m, raw, "relay"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := v.Stats()
	if st.Cold+st.Warm != workers*per || st.Rejects != 0 {
		t.Fatalf("stats %+v, want cold+warm=%d rejects=0", st, workers*per)
	}
	// Racing first admissions may each verify cold, but never more than
	// one per goroutine.
	if st.Cold < 1 || st.Cold > workers {
		t.Fatalf("cold count %d outside [1,%d]", st.Cold, workers)
	}
	if want := st.Cold*coldCost() + st.Warm*core.CostQuoteCacheLookup; m.Normal() != want {
		t.Fatalf("meter %d, want %d (cold=%d warm=%d)", m.Normal(), want, st.Cold, st.Warm)
	}
}

// TestChannelKeys: both peers derive identical keys regardless of
// argument order, and the derived block drives a working record codec.
func TestChannelKeys(t *testing.T) {
	r := newRig(t, "channel")
	certA, _, err := r.minter.Mint(r.subject)
	if err != nil {
		t.Fatal(err)
	}
	signer, _ := core.NewSigner()
	other, err := r.plat.Launch(subjectProgram(), signer)
	if err != nil {
		t.Fatal(err)
	}
	certB, _, err := r.minter.Mint(other)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewMeter()
	k1, err := ChannelKeys(m, certA.Pub, certB.Pub)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ChannelKeys(m, certB.Pub, certA.Pub)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("peers derived different channel keys")
	}
	client, server := tlslite.NewCodec(k1), tlslite.NewCodec(k2)
	rec, err := client.Seal(m, tlslite.ClientToServer, 1, []byte("attested payload"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := server.Open(m, tlslite.ClientToServer, 1, rec)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "attested payload" {
		t.Fatalf("roundtrip produced %q", got)
	}
}

// TestGateProgram: an enclave-hosted verifier admits via ECALL, paying
// the EENTER/EEXIT crossing per connection on top of the verification.
func TestGateProgram(t *testing.T) {
	r := newRig(t, "gate")
	_, raw, err := r.minter.Mint(r.subject)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(r.whitelist(), 2)
	signer, _ := core.NewSigner()
	gate, err := r.plat.Launch(GateProgram(v), signer)
	if err != nil {
		t.Fatal(err)
	}
	gate.Meter().Reset()
	out, err := gate.Call(GateService, EncodeAdmit("relay", raw))
	if err != nil {
		t.Fatalf("gated cold admit: %v", err)
	}
	wantMR := r.subject.MREnclave()
	if string(out[:32]) != string(wantMR[:]) {
		t.Fatalf("gate returned wrong identity")
	}
	if sgx := gate.Meter().SGX(); sgx != 2 {
		t.Fatalf("cold gated admit used %d SGX(U), want 2 (EENTER+EEXIT)", sgx)
	}
	before := gate.Meter().Snapshot()
	if _, err := gate.Call(GateService, EncodeAdmit("relay", raw)); err != nil {
		t.Fatalf("gated warm admit: %v", err)
	}
	d := gate.Meter().Snapshot().Sub(before)
	if d.SGXU != 2 || d.Normal != core.CostQuoteCacheLookup {
		t.Fatalf("warm gated admit cost %d SGX(U) + %d normal, want 2 + %d",
			d.SGXU, d.Normal, core.CostQuoteCacheLookup)
	}
}
