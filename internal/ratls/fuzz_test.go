package ratls

import (
	"errors"
	"sync"
	"testing"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
)

// FuzzRATLSCert fuzzes the full admission path — parse, binding check,
// both signature verifications, policy, instance registration — with
// arbitrary certificate bytes. Invariants:
//
//   - Admit never panics;
//   - only the byte-exact genuine certificate is admitted (any mutation
//     must be rejected — no malleability);
//   - a rejected admission never charges more than one full
//     verification's worth of instructions;
//   - a genuine certificate replayed under a second peer name is
//     rejected (instance-ID Sybil defense).
//
// Seeds cover the interesting mutations: truncation, a flipped quote
// signature (the MAC-flip analog), a wrong MRENCLAVE, and a corrupted
// binding. testdata/fuzz holds structural probes.
var (
	fuzzOnce    sync.Once
	fuzzRaw     []byte
	fuzzMR      core.Measurement
	fuzzSetupOK bool
)

func fuzzSetup() {
	fuzzOnce.Do(func() {
		arch, err := core.NewSigner()
		if err != nil {
			return
		}
		plat, err := core.NewPlatform("ratls-fuzz", core.PlatformConfig{
			EPCFrames: 512, ArchSigner: arch.MRSigner(), Seed: []byte("ratls-fuzz"),
		})
		if err != nil {
			return
		}
		mt, err := NewMinter(plat, arch)
		if err != nil {
			return
		}
		signer, err := core.NewSigner()
		if err != nil {
			return
		}
		enc, err := plat.Launch(subjectProgram(), signer)
		if err != nil {
			return
		}
		_, raw, err := mt.Mint(enc)
		if err != nil {
			return
		}
		fuzzRaw, fuzzMR, fuzzSetupOK = raw, enc.MREnclave(), true
	})
}

func FuzzRATLSCert(f *testing.F) {
	fuzzSetup()
	if !fuzzSetupOK {
		f.Fatal("fuzz rig setup failed")
	}
	mut := func(mutate func([]byte)) []byte {
		b := append([]byte(nil), fuzzRaw...)
		mutate(b)
		return b
	}
	f.Add(append([]byte(nil), fuzzRaw...))                      // genuine
	f.Add(fuzzRaw[:CertSize/2])                                 // truncated
	f.Add(mut(func(b []byte) { b[CertSize-128] ^= 1 }))         // quote-sig flip
	f.Add(mut(func(b []byte) { b[CertSize-64] ^= 1 }))          // pop-sig flip
	f.Add(mut(func(b []byte) { b[len(certMagic)+32+16] ^= 1 })) // wrong MRENCLAVE
	f.Add(mut(func(b []byte) { b[len(certMagic)] ^= 1 }))       // broken key binding
	f.Add(mut(func(b []byte) { b[len(certMagic)+32] ^= 1 }))    // replayed-into-new instance ID
	f.Add([]byte(certMagic))                                    // magic only
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzSetup()
		pol := attest.Policy{AllowedEnclaves: []core.Measurement{fuzzMR}, RejectDebug: true}
		v := NewVerifier(pol, 2)
		m := core.NewMeter()
		id, err := v.Admit(m, data, "fuzz-peer")
		if err != nil {
			if !errors.Is(err, ErrRejected) {
				t.Fatalf("rejection without ErrRejected: %v", err)
			}
			if m.Normal() > coldCost() {
				t.Fatalf("reject charged %d, more than a full verification %d", m.Normal(), coldCost())
			}
			return
		}
		// Admission implies a structurally perfect certificate whose
		// quote genuinely verifies and whose identity is whitelisted.
		// (Byte-equality with fuzzRaw is NOT the invariant: fuzz workers
		// run in separate processes whose rigs draw a fresh enclave
		// signer, so a sibling process's genuine certificate is a valid
		// admission here too.)
		if id.MREnclave != fuzzMR {
			t.Fatalf("admitted identity is not the whitelisted build")
		}
		cert, cerr := Unmarshal(data)
		if cerr != nil {
			t.Fatalf("admitted certificate fails strict re-parse: %v", cerr)
		}
		if cert.Quote.Data != BindingData(cert.Pub, cert.InstanceID) {
			t.Fatalf("admitted certificate does not bind its key")
		}
		if !cert.Quote.Verify(core.NewMeter()) {
			t.Fatalf("admitted certificate carries an unverifiable quote")
		}
		// Instance-ID replay: the same certificate under a second peer
		// name must be refused, warm path or cold.
		if _, err := v.Admit(core.NewMeter(), data, "fuzz-peer-2"); !errors.Is(err, ErrRejected) {
			t.Fatalf("instance re-registration admitted (err=%v)", err)
		}
	})
}
