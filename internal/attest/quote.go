// Package attest implements SGX attestation as the paper uses it (§2.2):
// local (intra-platform) attestation via EREPORT/EGETKEY, remote
// attestation through a quoting enclave that signs REPORTs with the
// platform attestation key, and the bootstrap of a secure channel by
// embedding Diffie-Hellman material in the attestation messages ("similar
// to TLS handshaking").
//
// The remote protocol follows Figure 1:
//
//	challenger                    target                quoting enclave
//	    │── 1 challenge (nonce) ──▶ │                         │
//	    │                           │── 2 REPORT ────────────▶│ verify REPORT
//	    │                           │                         │ (intra-attestation)
//	    │                           │◀─ 3 QUOTE + REPORT_Q ───│ sign with CPU key
//	    │◀─ 4 QUOTE, platform pub, ─│  verify REPORT_Q        │
//	    │     DH params + pub       │  (mutual intra-attest.) │
//	    │── 5 confirm (DH pub, ────▶│                         │
//	    │     key confirmation)     │                         │
//	    │◀─ 6 ack (sealed "OK") ────│                         │
//
// Instruction accounting reproduces Table 1: the SGX(U) instruction trace
// of each role and the normal-instruction totals (the protocol-skeleton
// residual is topped up to the calibrated per-role base so tallies match
// the paper's measurements; the Diffie-Hellman costs are charged by the
// metered crypto operations themselves and dominate, as in §5).
package attest

import (
	"bytes"
	"crypto/ed25519"
	"encoding/gob"
	"fmt"

	"sgxnet/internal/core"
	"sgxnet/internal/sgxcrypto"
)

// Identity is the attested identity of an enclave.
type Identity struct {
	MREnclave core.Measurement
	MRSigner  core.Measurement
	Debug     bool
}

// IdentityOf extracts the identity of a live enclave (used when the
// verifier knows the expected program and computes its measurement
// locally — the paper's "deterministic compilation" assumption, §4).
func IdentityOf(e *core.Enclave) Identity {
	return Identity{MREnclave: e.MREnclave(), MRSigner: e.MRSigner(), Debug: e.Attrs().Debug}
}

// Quote is the quoting enclave's signed attestation of a REPORT: the
// reported identities and user data, signed with the platform attestation
// key (EPID in real SGX; see DESIGN.md).
type Quote struct {
	Identity    Identity
	Data        core.ReportData
	PlatformPub []byte // ed25519.PublicKey
	Sig         []byte
}

// SignedBody is the byte string the platform attestation key signs:
// a version label, the reported identity, the user data, and the
// platform public key. Exported for the RA-TLS minter and verifier
// (internal/ratls), which play the quoting enclave's and challenger's
// roles for certificate-embedded quotes.
func (q *Quote) SignedBody() []byte {
	var buf bytes.Buffer
	buf.WriteString("sgxnet-quote-v1")
	buf.Write(q.Identity.MREnclave[:])
	buf.Write(q.Identity.MRSigner[:])
	if q.Identity.Debug {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	buf.Write(q.Data[:])
	buf.Write(q.PlatformPub)
	return buf.Bytes()
}

// Verify checks the quote's signature with the embedded platform key and
// reports whether it is internally consistent. Trust in the platform key
// itself is a separate policy decision (see Policy.TrustPlatform).
func (q *Quote) Verify(m *core.Meter) bool {
	if len(q.PlatformPub) != ed25519.PublicKeySize {
		return false
	}
	return sgxcrypto.Verify(m, ed25519.PublicKey(q.PlatformPub), q.SignedBody(), q.Sig)
}

// Policy is the challenger's acceptance policy for a quote.
type Policy struct {
	// AllowedEnclaves, if non-empty, whitelists MRENCLAVE values (the
	// community-verified program identities, §3.2).
	AllowedEnclaves []core.Measurement
	// AllowedSigners, if non-empty, whitelists MRSIGNER values (e.g. the
	// Tor foundation's signing key, §3.2).
	AllowedSigners []core.Measurement
	// RejectDebug refuses debug enclaves.
	RejectDebug bool
	// TrustPlatform, if non-nil, decides whether a platform attestation
	// key is genuine (the role Intel's verification service plays). Nil
	// trusts any well-signed quote.
	TrustPlatform func(pub ed25519.PublicKey) bool
}

// ErrPolicy describes a quote rejected by policy.
type ErrPolicy struct{ Reason string }

func (e *ErrPolicy) Error() string { return "attest: policy rejected quote: " + e.Reason }

// Check evaluates the policy against a verified quote.
func (p *Policy) Check(q *Quote) error {
	if p.RejectDebug && q.Identity.Debug {
		return &ErrPolicy{"debug enclave"}
	}
	if len(p.AllowedEnclaves) > 0 && !containsMeasurement(p.AllowedEnclaves, q.Identity.MREnclave) {
		return &ErrPolicy{"MRENCLAVE not in allowed set (tampered or unknown program)"}
	}
	if len(p.AllowedSigners) > 0 && !containsMeasurement(p.AllowedSigners, q.Identity.MRSigner) {
		return &ErrPolicy{"MRSIGNER not in allowed set"}
	}
	if p.TrustPlatform != nil && !p.TrustPlatform(ed25519.PublicKey(q.PlatformPub)) {
		return &ErrPolicy{"untrusted platform attestation key"}
	}
	return nil
}

func containsMeasurement(set []core.Measurement, m core.Measurement) bool {
	for _, x := range set {
		if x == m {
			return true
		}
	}
	return false
}

// Wire messages. Control-plane messages use gob encoding: self-describing,
// stdlib, and irrelevant to the instruction model (I/O costs are charged
// by the message shim, not derived from encoding sizes).

// MsgChallenge is message 1: the challenger's attestation request.
type MsgChallenge struct {
	Nonce  [32]byte
	WantDH bool
}

// MsgEvidence is message 4: QUOTE, platform public key, and (w/ DH) the
// target-generated group parameters and the target's public value.
type MsgEvidence struct {
	Quote     Quote
	DHPrime   []byte // nil when DH not requested
	DHGen     []byte
	TargetPub []byte
}

// MsgConfirm is message 5: the challenger's DH public value plus key
// confirmation (w/ DH), or a plain acknowledgement (w/o DH).
type MsgConfirm struct {
	ChallengerPub []byte
	KeyConfirm    []byte // channel-sealed confirmation, empty w/o DH
}

// MsgAck is message 6: the target's sealed acknowledgement.
type MsgAck struct {
	Ack []byte
	Err string
}

func encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("attest: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func decode(b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("attest: decode: %w", err)
	}
	return nil
}
