package attest

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"

	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/obs"
	"sgxnet/internal/sgxcrypto"
)

// Remote attestation protocol: target and challenger roles. The entry
// points are in-enclave handlers (merged into an application program with
// AddTargetHandlers / AddChallengerHandlers); the Respond and Challenge
// drivers are the untrusted runtime's orchestration around them.
//
// The ENCLU traces reproduce Table 1 exactly:
//
//	challenger — begin: EENTER, msg-send OCALL, EEXIT (4);
//	             finish: EENTER, msg-send OCALL, EEXIT (4) → 8 SGX(U)
//	target     — prepare: EENTER, msg-recv, EREPORT, msg-send, EEXIT (7);
//	             evidence: EENTER, msg-recv, EGETKEY, msg-send, EEXIT (7);
//	             finish: EENTER, msg-recv, msg-send, EEXIT (6) → 20 SGX(U)
//	quoting    — see quotingProgram → 17 SGX(U)

// keyConfirmLabel domain-separates the key-confirmation message.
const keyConfirmLabel = "sgxnet-key-confirm"

// expectedQuoteData binds the quote to this protocol run: the challenger
// recomputes it from the nonce and the target's DH material.
func expectedQuoteData(nonce [32]byte, prime, gen, targetPub []byte) core.ReportData {
	var buf bytes.Buffer
	buf.Write(nonce[:])
	buf.Write(prime)
	buf.Write(gen)
	buf.Write(targetPub)
	return core.ReportDataFrom(buf.Bytes())
}

// ---------------------------------------------------------------------------
// Target role

type targetPending struct {
	start    core.Tally
	wantDH   bool
	nonce    [32]byte
	dhParams *sgxcrypto.DHParams
	dhKey    *sgxcrypto.DHKey
	quoteID  uint32
}

// TargetState is the in-enclave state of an attestation target: pending
// protocol runs and established sessions.
type TargetState struct {
	SessionTable
	pmu     sync.Mutex
	pending map[uint32]*targetPending
}

// NewTargetState creates an empty target state.
func NewTargetState() *TargetState {
	return &TargetState{pending: make(map[uint32]*targetPending)}
}

func (st *TargetState) take(connID uint32) (*targetPending, error) {
	st.pmu.Lock()
	defer st.pmu.Unlock()
	p, ok := st.pending[connID]
	if !ok {
		return nil, fmt.Errorf("attest: no pending attestation on conn %d", connID)
	}
	return p, nil
}

func parseIDs(arg []byte) (cid, qid uint32, err error) {
	if len(arg) < 8 {
		return 0, 0, fmt.Errorf("attest: short handler argument")
	}
	return binary.LittleEndian.Uint32(arg[:4]), binary.LittleEndian.Uint32(arg[4:8]), nil
}

// AddTargetHandlers merges the target-role entry points into a program.
// The handlers close over st, which becomes enclave-private state.
func AddTargetHandlers(prog *core.Program, st *TargetState) {
	if prog.Handlers == nil {
		prog.Handlers = make(map[string]core.Handler)
	}
	prog.Handlers["attest.t.prepare"] = st.prepare
	prog.Handlers["attest.t.evidence"] = st.evidence
	prog.Handlers["attest.t.finish"] = st.finish
}

// prepare receives the challenge, generates DH material if requested, and
// sends a REPORT to the quoting enclave.
func (st *TargetState) prepare(env *core.Env, arg []byte) ([]byte, error) {
	cid, qid, err := parseIDs(arg)
	if err != nil {
		return nil, err
	}
	p := &targetPending{start: env.Meter().Snapshot(), quoteID: qid}

	raw, err := env.OCall("msg.recv", netsim.EncodeSend(cid, nil))
	if err != nil {
		return nil, err
	}
	var ch MsgChallenge
	if err := decode(raw, &ch); err != nil {
		return nil, err
	}
	p.nonce, p.wantDH = ch.Nonce, ch.WantDH

	var prime, gen, pub []byte
	if ch.WantDH {
		// The target generates fresh DH parameters — the dominant cost of
		// Table 1's "w/ DH" target column.
		params, err := sgxcrypto.GenerateParams(env.Meter(), 1024, nil)
		if err != nil {
			return nil, err
		}
		key, err := sgxcrypto.GenerateKey(env.Meter(), params, nil)
		if err != nil {
			return nil, err
		}
		p.dhParams, p.dhKey = params, key
		prime, gen, pub = params.P.Bytes(), params.G.Bytes(), key.Public.Bytes()
	}
	rep := env.EReport(core.TargetInfo{Measurement: QuotingMeasurement()},
		expectedQuoteData(ch.Nonce, prime, gen, pub))

	st.pmu.Lock()
	st.pending[cid] = p
	st.pmu.Unlock()

	if _, err := env.OCall("msg.send", netsim.EncodeSend(qid, rep.Marshal())); err != nil {
		return nil, err
	}
	return nil, nil
}

// evidence receives the QUOTE from the quoting enclave, verifies the
// quoting enclave's mutual report, and forwards the evidence to the
// challenger.
func (st *TargetState) evidence(env *core.Env, arg []byte) ([]byte, error) {
	cid, qid, err := parseIDs(arg)
	if err != nil {
		return nil, err
	}
	p, err := st.take(cid)
	if err != nil {
		return nil, err
	}
	raw, err := env.OCall("msg.recv", netsim.EncodeSend(qid, nil))
	if err != nil {
		return nil, err
	}
	var resp msgQuoteResp
	if err := decode(raw, &resp); err != nil {
		return nil, err
	}
	repQ, ok := core.UnmarshalReport(resp.ReportQ)
	if !ok {
		return nil, fmt.Errorf("attest: malformed quoting report")
	}
	if !env.VerifyReport(repQ) || repQ.MREnclave != QuotingMeasurement() {
		return nil, fmt.Errorf("attest: quoting enclave failed mutual intra-attestation")
	}
	ev := MsgEvidence{Quote: resp.Quote}
	if p.wantDH {
		ev.DHPrime = p.dhParams.P.Bytes()
		ev.DHGen = p.dhParams.G.Bytes()
		ev.TargetPub = p.dhKey.Public.Bytes()
	}
	enc, err := encode(ev)
	if err != nil {
		return nil, err
	}
	if _, err := env.OCall("msg.send", netsim.EncodeSend(cid, enc)); err != nil {
		return nil, err
	}
	return nil, nil
}

// finish receives the challenger's confirmation, derives the channel, and
// acknowledges.
func (st *TargetState) finish(env *core.Env, arg []byte) ([]byte, error) {
	cid, _, err := parseIDs(arg)
	if err != nil {
		return nil, err
	}
	p, err := st.take(cid)
	if err != nil {
		return nil, err
	}
	defer func() {
		st.pmu.Lock()
		delete(st.pending, cid)
		st.pmu.Unlock()
	}()

	raw, err := env.OCall("msg.recv", netsim.EncodeSend(cid, nil))
	if err != nil {
		return nil, err
	}
	var conf MsgConfirm
	if err := decode(raw, &conf); err != nil {
		return nil, err
	}
	sess := &Session{}
	var ackBody []byte
	if p.wantDH {
		pub := new(big.Int).SetBytes(conf.ChallengerPub)
		secret, err := p.dhKey.Shared(env.Meter(), pub)
		if err != nil {
			return nil, err
		}
		ch, err := sgxcrypto.NewChannel(env.Meter(), secret)
		if err != nil {
			return nil, err
		}
		// Key confirmation: the challenger proves possession by sealing
		// the label+nonce under the derived channel.
		kc, err := ch.Open(env.Meter(), conf.KeyConfirm)
		if err != nil || !bytes.Equal(kc, append([]byte(keyConfirmLabel), p.nonce[:]...)) {
			return nil, fmt.Errorf("attest: key confirmation failed")
		}
		sess.Secret, sess.Channel = secret, ch
		ackBody, err = ch.Seal(env.Meter(), []byte("OK"))
		if err != nil {
			return nil, err
		}
	} else {
		ackBody = []byte("OK")
	}
	st.put(cid, sess)

	ack, err := encode(MsgAck{Ack: ackBody})
	if err != nil {
		return nil, err
	}
	if _, err := env.OCall("msg.send", netsim.EncodeSend(cid, ack)); err != nil {
		return nil, err
	}
	want := uint64(core.CostAttestTargetBase)
	if p.wantDH {
		want += core.CostDHParamGen + core.CostDHKeyAgree
	}
	topUp(env.Meter(), p.start, want)
	return nil, nil
}

// Respond drives the target side of one remote attestation over conn: it
// opens the local quoting-enclave connection, performs the untrusted
// hello/done framing, and enters the enclave for the three protocol
// steps. On success the enclave holds a session for the returned connID.
func Respond(enc *core.Enclave, shim *netsim.IOShim, host *netsim.SimHost, conn *netsim.Conn) (uint32, error) {
	return RespondTrace(nil, "", enc, shim, host, conn)
}

// RespondTrace is Respond with an optional trace: each protocol round
// becomes a span on the given track carrying the target enclave's tally
// delta for that round. A nil trace makes it identical to Respond. The
// track must be private to this (sequential) driver flow.
func RespondTrace(tr *obs.Trace, track string, enc *core.Enclave, shim *netsim.IOShim, host *netsim.SimHost, conn *netsim.Conn) (uint32, error) {
	all := tr.Begin(track, "attest.respond", enc.Meter())
	defer all.End()
	cid := shim.Adopt(conn)
	qconn, err := host.Dial(host.Name(), QuoteService)
	if err != nil {
		return 0, fmt.Errorf("attest: dialing quoting enclave: %w", err)
	}
	defer qconn.Close()
	if err := qconn.Send([]byte("hello")); err != nil {
		return 0, err
	}
	if _, err := qconn.Recv(); err != nil { // qe-hello
		return 0, err
	}
	qid := shim.Adopt(qconn)
	arg := make([]byte, 8)
	binary.LittleEndian.PutUint32(arg[:4], cid)
	binary.LittleEndian.PutUint32(arg[4:], qid)

	round := func(name string) error {
		s := tr.Begin(track, name, enc.Meter())
		_, err := enc.Call(name, arg)
		s.End()
		return err
	}
	if err := round("attest.t.prepare"); err != nil {
		return 0, err
	}
	if err := round("attest.t.evidence"); err != nil {
		return 0, err
	}
	if err := qconn.Send([]byte("done")); err != nil {
		return 0, err
	}
	if _, err := qconn.Recv(); err != nil { // qe-bye
		return 0, err
	}
	if err := round("attest.t.finish"); err != nil {
		return 0, err
	}
	return cid, nil
}

// ---------------------------------------------------------------------------
// Challenger role

type challengerPending struct {
	start  core.Tally
	wantDH bool
	nonce  [32]byte
}

// ChallengerState is the in-enclave state of an attestation challenger.
// The acceptance policy is part of the enclave's trusted configuration;
// it may be replaced at runtime through SetPolicy when the enclave
// follows a community release registry (§4) whose whitelist evolves.
type ChallengerState struct {
	SessionTable

	polMu  sync.RWMutex
	policy Policy

	pmu     sync.Mutex
	pending map[uint32]*challengerPending
}

// NewChallengerState creates a challenger state with the given policy.
func NewChallengerState(policy Policy) *ChallengerState {
	return &ChallengerState{policy: policy, pending: make(map[uint32]*challengerPending)}
}

// Policy returns the current acceptance policy.
func (st *ChallengerState) Policy() Policy {
	st.polMu.RLock()
	defer st.polMu.RUnlock()
	return st.policy
}

// SetPolicy replaces the acceptance policy (e.g. after a registry
// update revokes a build).
func (st *ChallengerState) SetPolicy(p Policy) {
	st.polMu.Lock()
	st.policy = p
	st.polMu.Unlock()
}

// AddChallengerHandlers merges the challenger-role entry points into a
// program.
func AddChallengerHandlers(prog *core.Program, st *ChallengerState) {
	if prog.Handlers == nil {
		prog.Handlers = make(map[string]core.Handler)
	}
	prog.Handlers["attest.c.begin"] = st.begin
	prog.Handlers["attest.c.finish"] = st.finish
}

// begin sends the challenge. arg: connID(4) ‖ wantDH(1).
func (st *ChallengerState) begin(env *core.Env, arg []byte) ([]byte, error) {
	if len(arg) < 5 {
		return nil, fmt.Errorf("attest: short begin argument")
	}
	cid := binary.LittleEndian.Uint32(arg[:4])
	p := &challengerPending{start: env.Meter().Snapshot(), wantDH: arg[4] == 1}
	if _, err := rand.Read(p.nonce[:]); err != nil {
		return nil, err
	}
	st.pmu.Lock()
	st.pending[cid] = p
	st.pmu.Unlock()

	msg, err := encode(MsgChallenge{Nonce: p.nonce, WantDH: p.wantDH})
	if err != nil {
		return nil, err
	}
	if _, err := env.OCall("msg.send", netsim.EncodeSend(cid, msg)); err != nil {
		return nil, err
	}
	return nil, nil
}

// finish verifies the evidence and sends the confirmation.
// arg: connID(4) ‖ MsgEvidence bytes (received by the untrusted runtime —
// evidence is public; its integrity comes from the quote signature).
func (st *ChallengerState) finish(env *core.Env, arg []byte) ([]byte, error) {
	if len(arg) < 4 {
		return nil, fmt.Errorf("attest: short finish argument")
	}
	cid := binary.LittleEndian.Uint32(arg[:4])
	st.pmu.Lock()
	p, ok := st.pending[cid]
	delete(st.pending, cid)
	st.pmu.Unlock()
	if !ok {
		return nil, fmt.Errorf("attest: no pending challenge on conn %d", cid)
	}
	var ev MsgEvidence
	if err := decode(arg[4:], &ev); err != nil {
		return nil, err
	}
	if !ev.Quote.Verify(env.Meter()) {
		return nil, fmt.Errorf("attest: quote signature invalid")
	}
	pol := st.Policy()
	if err := pol.Check(&ev.Quote); err != nil {
		return nil, err
	}
	if ev.Quote.Data != expectedQuoteData(p.nonce, ev.DHPrime, ev.DHGen, ev.TargetPub) {
		return nil, fmt.Errorf("attest: quote not bound to this challenge (replay?)")
	}

	sess := &Session{Peer: ev.Quote.Identity}
	conf := MsgConfirm{}
	if p.wantDH {
		if len(ev.DHPrime) == 0 || len(ev.TargetPub) == 0 {
			return nil, fmt.Errorf("attest: target omitted DH material")
		}
		params := &sgxcrypto.DHParams{
			P: new(big.Int).SetBytes(ev.DHPrime),
			G: new(big.Int).SetBytes(ev.DHGen),
		}
		if params.Bits() < 1024 {
			// Iago-style downgrade: refuse weak parameters.
			return nil, fmt.Errorf("attest: DH parameters below 1024 bits")
		}
		key, err := sgxcrypto.GenerateKey(env.Meter(), params, nil)
		if err != nil {
			return nil, err
		}
		secret, err := key.Shared(env.Meter(), new(big.Int).SetBytes(ev.TargetPub))
		if err != nil {
			return nil, err
		}
		ch, err := sgxcrypto.NewChannel(env.Meter(), secret)
		if err != nil {
			return nil, err
		}
		kc, err := ch.Seal(env.Meter(), append([]byte(keyConfirmLabel), p.nonce[:]...))
		if err != nil {
			return nil, err
		}
		conf.ChallengerPub = key.Public.Bytes()
		conf.KeyConfirm = kc
		sess.Secret, sess.Channel = secret, ch
	}
	st.put(cid, sess)

	enc, err := encode(conf)
	if err != nil {
		return nil, err
	}
	if _, err := env.OCall("msg.send", netsim.EncodeSend(cid, enc)); err != nil {
		return nil, err
	}
	want := uint64(core.CostAttestChallengerBase)
	if p.wantDH {
		want += core.CostDHKeyAgree
	}
	topUp(env.Meter(), p.start, want)
	return marshalIdentity(ev.Quote.Identity), nil
}

func marshalIdentity(id Identity) []byte {
	out := make([]byte, 65)
	copy(out[:32], id.MREnclave[:])
	copy(out[32:64], id.MRSigner[:])
	if id.Debug {
		out[64] = 1
	}
	return out
}

// UnmarshalIdentity parses the identity returned by the finish handler.
func UnmarshalIdentity(b []byte) (Identity, bool) {
	if len(b) != 65 {
		return Identity{}, false
	}
	var id Identity
	copy(id.MREnclave[:], b[:32])
	copy(id.MRSigner[:], b[32:64])
	id.Debug = b[64] == 1
	return id, true
}

// Abort discards the pending protocol run on a connection, releasing the
// enclave-held state of an attestation that will never finish (peer died,
// receive timed out, driver gave up). Established sessions are untouched.
func (st *TargetState) Abort(connID uint32) {
	st.pmu.Lock()
	delete(st.pending, connID)
	st.pmu.Unlock()
}

// Abort discards the pending challenge on a connection (see
// TargetState.Abort).
func (st *ChallengerState) Abort(connID uint32) {
	st.pmu.Lock()
	delete(st.pending, connID)
	st.pmu.Unlock()
}

// Challenge drives the challenger side of one remote attestation over
// conn. On success the enclave holds a session for the returned connID
// and the attested peer identity is returned. On failure the connection
// is closed so the remote side unblocks.
func Challenge(enc *core.Enclave, shim *netsim.IOShim, conn *netsim.Conn, wantDH bool) (uint32, Identity, error) {
	return ChallengeTrace(nil, "", enc, shim, conn, wantDH)
}

// ChallengeTrace is Challenge with an optional trace: the whole run and
// each enclave round become spans on the given track carrying the
// challenger enclave's tally deltas. A nil trace makes it identical to
// Challenge. The track must be private to this (sequential) flow.
func ChallengeTrace(tr *obs.Trace, track string, enc *core.Enclave, shim *netsim.IOShim, conn *netsim.Conn, wantDH bool) (uint32, Identity, error) {
	all := tr.Begin(track, "attest.challenge", enc.Meter())
	cid, id, err := challengeOnce(tr, track, enc, shim, conn, wantDH, 0)
	all.End()
	if err != nil {
		return 0, Identity{}, err
	}
	return cid, id, nil
}

// challengeOnce is one attestation attempt with an optional deadline on
// the two untrusted receives (0 blocks forever). Unlike Challenge it
// returns the connID even on failure so the caller can Abort the pending
// enclave state before retrying. A timed-out receive charges
// core.CostRecvTimeout to the challenger enclave's meter: the enclave is
// re-entered just to learn the attempt is dead.
func challengeOnce(tr *obs.Trace, track string, enc *core.Enclave, shim *netsim.IOShim, conn *netsim.Conn, wantDH bool, recvTimeout time.Duration) (uint32, Identity, error) {
	cid := shim.Adopt(conn)
	fail := func(err error) (uint32, Identity, error) {
		if errors.Is(err, netsim.ErrTimeout) {
			enc.Meter().ChargeNormal(core.CostRecvTimeout)
			tr.Event(track, "attest.recv_timeout", nil)
		}
		conn.Close()
		return cid, Identity{}, err
	}
	arg := make([]byte, 5)
	binary.LittleEndian.PutUint32(arg[:4], cid)
	if wantDH {
		arg[4] = 1
	}
	sb := tr.Begin(track, "attest.c.begin", enc.Meter())
	_, err := enc.Call("attest.c.begin", arg)
	sb.End()
	if err != nil {
		return fail(err)
	}
	ev, err := conn.RecvTimeout(recvTimeout) // untrusted receive of public evidence
	if err != nil {
		return fail(err)
	}
	sf := tr.Begin(track, "attest.c.finish", enc.Meter())
	idRaw, err := enc.Call("attest.c.finish", append(arg[:4:4], ev...))
	sf.End()
	if err != nil {
		return fail(err)
	}
	ackRaw, err := conn.RecvTimeout(recvTimeout)
	if err != nil {
		return fail(err)
	}
	var ack MsgAck
	if err := decode(ackRaw, &ack); err != nil {
		return fail(err)
	}
	if ack.Err != "" {
		return fail(fmt.Errorf("attest: target error: %s", ack.Err))
	}
	id, ok := UnmarshalIdentity(idRaw)
	if !ok {
		return fail(fmt.Errorf("attest: bad identity from finish"))
	}
	return cid, id, nil
}
