package attest

import (
	"crypto/ed25519"
	"errors"
	"strings"
	"sync"
	"testing"

	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/sgxcrypto"
)

// fixture wires a two-host network with quoting enclaves, one target
// enclave and one challenger enclave.
type fixture struct {
	net        *netsim.Network
	arch       *core.Signer
	hostT      *netsim.SimHost
	hostC      *netsim.SimHost
	agentT     *Agent
	agentC     *Agent
	target     *core.Enclave
	challenger *core.Enclave
	tShim      *netsim.IOShim
	cShim      *netsim.IOShim
	tState     *TargetState
	cState     *ChallengerState
}

func targetProgram(st *TargetState) *core.Program {
	prog := &core.Program{Name: "demo-target", Version: "1", Handlers: map[string]core.Handler{}}
	AddTargetHandlers(prog, st)
	return prog
}

func challengerProgram(st *ChallengerState) *core.Program {
	prog := &core.Program{Name: "demo-challenger", Version: "1", Handlers: map[string]core.Handler{}}
	AddChallengerHandlers(prog, st)
	return prog
}

func addSGXHost(t *testing.T, n *netsim.Network, name string, arch *core.Signer) (*netsim.SimHost, *Agent) {
	t.Helper()
	plat, err := core.NewPlatform(name, core.PlatformConfig{EPCFrames: 512, ArchSigner: arch.MRSigner()})
	if err != nil {
		t.Fatal(err)
	}
	h, err := n.AddHostWithPlatform(name, plat)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(h, arch)
	if err != nil {
		t.Fatal(err)
	}
	return h, agent
}

func newFixture(t *testing.T, policy Policy) *fixture {
	t.Helper()
	f := &fixture{net: netsim.New()}
	arch, err := core.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	f.arch = arch
	f.hostT, f.agentT = addSGXHost(t, f.net, "target-host", arch)
	f.hostC, f.agentC = addSGXHost(t, f.net, "challenger-host", arch)

	signer, err := core.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	f.tState = NewTargetState()
	f.target, err = f.hostT.Platform().Launch(targetProgram(f.tState), signer)
	if err != nil {
		t.Fatal(err)
	}
	f.tShim = netsim.NewMsgShim(f.hostT, f.target.Meter())
	var mhT netsim.MultiHost
	mhT.Mount("msg.", f.tShim)
	f.target.BindHost(&mhT)

	f.cState = NewChallengerState(policy)
	f.challenger, err = f.hostC.Platform().Launch(challengerProgram(f.cState), signer)
	if err != nil {
		t.Fatal(err)
	}
	f.cShim = netsim.NewMsgShim(f.hostC, f.challenger.Meter())
	var mhC netsim.MultiHost
	mhC.Mount("msg.", f.cShim)
	f.challenger.BindHost(&mhC)
	return f
}

// run performs one attestation and returns (challenger connID, target
// connID, challenger error, target error).
func (f *fixture) run(t *testing.T, wantDH bool) (uint32, uint32, error, error) {
	t.Helper()
	l, err := f.hostT.Listen("app")
	if err != nil {
		// listener may persist across runs within a test
		t.Fatal(err)
	}
	defer l.Close()
	var (
		wg         sync.WaitGroup
		tid        uint32
		targetErr  error
		serverConn *netsim.Conn
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		serverConn, targetErr = l.Accept()
		if targetErr != nil {
			return
		}
		tid, targetErr = Respond(f.target, f.tShim, f.hostT, serverConn)
	}()
	conn, err := f.hostC.Dial("target-host", "app")
	if err != nil {
		t.Fatal(err)
	}
	cid, _, challErr := Challenge(f.challenger, f.cShim, conn, wantDH)
	wg.Wait()
	return cid, tid, challErr, targetErr
}

func TestRemoteAttestationNoDH(t *testing.T) {
	f := newFixture(t, Policy{})
	cid, tid, ce, te := f.run(t, false)
	if ce != nil || te != nil {
		t.Fatalf("challenger err=%v target err=%v", ce, te)
	}
	cs, ok := f.cState.Session(cid)
	if !ok {
		t.Fatal("challenger has no session")
	}
	if cs.Peer.MREnclave != f.target.MREnclave() {
		t.Fatal("attested identity is not the target's")
	}
	if cs.Channel != nil {
		t.Fatal("no-DH attestation produced a channel")
	}
	if _, ok := f.tState.Session(tid); !ok {
		t.Fatal("target has no session")
	}
}

func TestRemoteAttestationWithDHChannel(t *testing.T) {
	f := newFixture(t, Policy{})
	cid, tid, ce, te := f.run(t, true)
	if ce != nil || te != nil {
		t.Fatalf("challenger err=%v target err=%v", ce, te)
	}
	cs, _ := f.cState.Session(cid)
	ts, _ := f.tState.Session(tid)
	if cs == nil || ts == nil || cs.Channel == nil || ts.Channel == nil {
		t.Fatal("missing channel")
	}
	if cs.Secret != ts.Secret {
		t.Fatal("shared secrets differ")
	}
	// The channels interoperate.
	m := core.NewMeter()
	sealed, err := cs.Channel.Seal(m, []byte("policy: prefer customer"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ts.Channel.Open(m, sealed)
	if err != nil || string(got) != "policy: prefer customer" {
		t.Fatalf("channel broken: %q %v", got, err)
	}
}

// TestTable1RemoteAttestation reproduces Table 1: exact SGX(U) counts and
// exact normal-instruction totals for all three enclaves, with and
// without DH.
func TestTable1RemoteAttestation(t *testing.T) {
	cases := []struct {
		wantDH                               bool
		targetN, quotingN, challengerN       uint64
		targetSGX, quotingSGX, challengerSGX uint64
	}{
		{false, 154_000_000, 125_000_000, 124_000_000, 20, 17, 8},
		{true, 4_338_000_000, 125_000_000, 348_000_000, 20, 17, 8},
	}
	for _, c := range cases {
		f := newFixture(t, Policy{})
		f.target.Meter().Reset()
		f.challenger.Meter().Reset()
		f.agentT.QE.Meter().Reset()
		_, _, ce, te := f.run(t, c.wantDH)
		if ce != nil || te != nil {
			t.Fatalf("dh=%v: challenger err=%v target err=%v", c.wantDH, ce, te)
		}
		check := func(role string, m *core.Meter, wantSGX, wantN uint64) {
			if m.SGX() != wantSGX {
				t.Errorf("dh=%v %s: SGX(U)=%d, want %d", c.wantDH, role, m.SGX(), wantSGX)
			}
			if m.Normal() != wantN {
				t.Errorf("dh=%v %s: normal=%d, want %d", c.wantDH, role, m.Normal(), wantN)
			}
		}
		check("target", f.target.Meter(), c.targetSGX, c.targetN)
		check("quoting", f.agentT.QE.Meter(), c.quotingSGX, c.quotingN)
		check("challenger", f.challenger.Meter(), c.challengerSGX, c.challengerN)
	}
}

// TestDHDominatesCycles verifies the §5 claim that the DH exchange takes
// up ~90% of the attestation cycles.
func TestDHDominatesCycles(t *testing.T) {
	f := newFixture(t, Policy{})
	f.target.Meter().Reset()
	f.challenger.Meter().Reset()
	f.agentT.QE.Meter().Reset()
	if _, _, ce, te := f.run(t, true); ce != nil || te != nil {
		t.Fatalf("ce=%v te=%v", ce, te)
	}
	total := f.target.Meter().Cycles() + f.agentT.QE.Meter().Cycles() + f.challenger.Meter().Cycles()
	dh := core.CyclesOf(0, core.CostDHParamGen+2*core.CostDHKeyAgree)
	frac := float64(dh) / float64(total)
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("DH fraction = %.2f, paper says ≈0.90", frac)
	}
}

func TestTamperedTargetRejected(t *testing.T) {
	// Policy pins the expected (community-verified) target measurement.
	st := NewTargetState()
	goodMR := core.MeasureProgram(targetProgram(st))
	f := newFixture(t, Policy{AllowedEnclaves: []core.Measurement{goodMR}})

	// Replace the target with a tampered build (different version).
	tampered := targetProgram(f.tState)
	tampered.Version = "1-malicious"
	signer, _ := core.NewSigner()
	enc, err := f.hostT.Platform().Launch(tampered, signer)
	if err != nil {
		t.Fatal(err)
	}
	shim := netsim.NewMsgShim(f.hostT, enc.Meter())
	var mh netsim.MultiHost
	mh.Mount("msg.", shim)
	enc.BindHost(&mh)
	f.target, f.tShim = enc, shim

	_, _, ce, _ := f.run(t, true)
	if ce == nil {
		t.Fatal("challenger accepted tampered target")
	}
	var pe *ErrPolicy
	if !errors.As(ce, &pe) && !strings.Contains(ce.Error(), "policy") {
		t.Fatalf("unexpected rejection: %v", ce)
	}
}

func TestWrongSignerRejected(t *testing.T) {
	trusted, _ := core.NewSigner()
	f := newFixture(t, Policy{AllowedSigners: []core.Measurement{trusted.MRSigner()}})
	// The fixture's target was signed by an untrusted signer.
	_, _, ce, _ := f.run(t, false)
	if ce == nil {
		t.Fatal("challenger accepted wrong signer")
	}
}

func TestUntrustedPlatformRejected(t *testing.T) {
	f := newFixture(t, Policy{TrustPlatform: func(pub ed25519.PublicKey) bool { return false }})
	_, _, ce, _ := f.run(t, false)
	if ce == nil {
		t.Fatal("challenger trusted an unknown platform key")
	}
}

func TestTrustedPlatformRegistry(t *testing.T) {
	var f *fixture
	policy := Policy{TrustPlatform: func(pub ed25519.PublicKey) bool {
		return pub.Equal(f.hostT.Platform().AttestationPublicKey())
	}}
	f = newFixture(t, policy)
	_, _, ce, te := f.run(t, false)
	if ce != nil || te != nil {
		t.Fatalf("ce=%v te=%v", ce, te)
	}
}

func TestForgedQuoteRejected(t *testing.T) {
	// A host without the real attestation key forges a quote; the
	// challenger must reject the signature.
	f := newFixture(t, Policy{})
	q := Quote{
		Identity:    IdentityOf(f.target),
		PlatformPub: f.hostT.Platform().AttestationPublicKey(),
		Sig:         make([]byte, ed25519.SignatureSize),
	}
	if q.Verify(core.NewMeter()) {
		t.Fatal("zero signature verified")
	}
	// Sign with the *wrong* key (attacker's own platform).
	wrongPriv := f.hostC.Platform() // has its own key, inaccessible anyway
	_ = wrongPriv
	signer, _ := core.NewSigner()
	q.Sig = sgxcrypto.Sign(core.NewMeter(), signerPriv(t, signer), q.SignedBody())
	if q.Verify(core.NewMeter()) {
		t.Fatal("quote signed by non-platform key verified")
	}
}

// signerPriv extracts a private key for forgery tests by generating a
// fresh one (core.Signer does not expose its key, which is the point).
func signerPriv(t *testing.T, _ *core.Signer) ed25519.PrivateKey {
	t.Helper()
	_, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	return priv
}

func TestQuotingEnclaveRefusesForeignReport(t *testing.T) {
	// A report MACed for a different target (not the quoting enclave)
	// must be refused by the quoting enclave.
	f := newFixture(t, Policy{})
	prog := &core.Program{
		Name:    "self-reporter",
		Version: "1",
		Handlers: map[string]core.Handler{
			"rep": func(env *core.Env, arg []byte) ([]byte, error) {
				// Report targeted at *itself*, not the quoting enclave.
				r := env.EReport(core.TargetInfo{Measurement: env.Enclave().MREnclave()}, core.ReportData{})
				return r.Marshal(), nil
			},
		},
	}
	signer, _ := core.NewSigner()
	enc, err := f.hostT.Platform().Launch(prog, signer)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := enc.Call("rep", nil)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := f.hostT.Dial("target-host", QuoteService)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Send([]byte("hello"))
	conn.Recv()
	conn.Send(rep)
	if _, err := conn.Recv(); err == nil {
		t.Fatal("quoting enclave quoted a report not addressed to it")
	}
}

func TestSessionTableOps(t *testing.T) {
	var tbl SessionTable
	m := core.NewMeter()
	if _, err := tbl.Seal(m, 1, nil); err != ErrNoSession {
		t.Fatalf("err=%v", err)
	}
	tbl.put(1, &Session{})
	if _, err := tbl.Seal(m, 1, nil); err != ErrNoChannel {
		t.Fatalf("err=%v", err)
	}
	if _, err := tbl.Open(m, 1, nil); err != ErrNoChannel {
		t.Fatalf("err=%v", err)
	}
	if _, err := tbl.Open(m, 9, nil); err != ErrNoSession {
		t.Fatalf("err=%v", err)
	}
	var secret [32]byte
	ch, err := sgxcrypto.NewChannel(m, secret)
	if err != nil {
		t.Fatal(err)
	}
	tbl.put(2, &Session{Channel: ch})
	sealed, err := tbl.Seal(m, 2, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := tbl.Open(m, 2, sealed); err != nil || string(got) != "x" {
		t.Fatalf("got %q err %v", got, err)
	}
	if tbl.Count() != 2 {
		t.Fatalf("count=%d", tbl.Count())
	}
	tbl.Drop(1)
	if tbl.Count() != 1 {
		t.Fatalf("count after drop=%d", tbl.Count())
	}
}

func TestQuotingMeasurementStable(t *testing.T) {
	a := QuotingMeasurement()
	b := QuotingMeasurement()
	if a != b || a.IsZero() {
		t.Fatal("quoting measurement unstable or zero")
	}
	if a != core.MeasureProgram(quotingProgram()) {
		t.Fatal("measurement mismatch with MeasureProgram")
	}
}

func TestAgentRequiresArchSigner(t *testing.T) {
	n := netsim.New()
	h, err := n.AddHost("plain", core.PlatformConfig{EPCFrames: 128}) // no ArchSigner
	if err != nil {
		t.Fatal(err)
	}
	arch, _ := core.NewSigner()
	if _, err := NewAgent(h, arch); err == nil {
		t.Fatal("agent launched without architectural provisioning")
	}
}

func TestPolicyCheckTable(t *testing.T) {
	var mr1, mr2 core.Measurement
	mr1[0], mr2[0] = 1, 2
	q := &Quote{Identity: Identity{MREnclave: mr1, MRSigner: mr2, Debug: true}}
	if err := (&Policy{RejectDebug: true}).Check(q); err == nil {
		t.Fatal("debug accepted")
	}
	if err := (&Policy{AllowedEnclaves: []core.Measurement{mr2}}).Check(q); err == nil {
		t.Fatal("wrong MRENCLAVE accepted")
	}
	if err := (&Policy{AllowedSigners: []core.Measurement{mr1}}).Check(q); err == nil {
		t.Fatal("wrong MRSIGNER accepted")
	}
	if err := (&Policy{AllowedEnclaves: []core.Measurement{mr1}, AllowedSigners: []core.Measurement{mr2}}).Check(q); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
}

func TestMeasureProgramMatchesLaunch(t *testing.T) {
	st := NewTargetState()
	prog := targetProgram(st)
	want := core.MeasureProgram(prog)
	plat, err := core.NewPlatform("x", core.PlatformConfig{EPCFrames: 128})
	if err != nil {
		t.Fatal(err)
	}
	signer, _ := core.NewSigner()
	e, err := plat.Launch(prog, signer)
	if err != nil {
		t.Fatal(err)
	}
	if e.MREnclave() != want {
		t.Fatal("MeasureProgram disagrees with Launch")
	}
}

// TestEvidenceTamperingRejected: an on-path attacker altering message 4
// (quote + DH material) is caught — either the quote signature breaks or
// the quote's challenge binding no longer matches.
func TestEvidenceTamperingRejected(t *testing.T) {
	f := newFixture(t, Policy{})
	l, err := f.hostT.Listen("app")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		sc, err := l.Accept()
		if err != nil {
			return
		}
		Respond(f.target, f.tShim, f.hostT, sc) // will fail when the client aborts
	}()
	conn, err := f.hostC.Dial("target-host", "app")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the evidence (message 4), which travels target→challenger:
	// inject on the *server-side* conn is not reachable here, so corrupt
	// the challenger's view by flipping the received bytes via the fault
	// hook on the reverse direction: InjectCorrupt applies to sends from
	// this end, so instead tamper manually through a relay.
	cid := f.cShim.Adopt(conn)
	arg := make([]byte, 5)
	arg[0], arg[1], arg[2], arg[3] = byte(cid), byte(cid>>8), byte(cid>>16), byte(cid>>24)
	arg[4] = 1 // DH
	if _, err := f.challenger.Call("attest.c.begin", arg); err != nil {
		t.Fatal(err)
	}
	ev, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ev[len(ev)/3] ^= 0x10 // tamper mid-evidence
	if _, err := f.challenger.Call("attest.c.finish", append(arg[:4:4], ev...)); err == nil {
		t.Fatal("challenger accepted tampered evidence")
	}
	conn.Close()
}

// TestReplayedEvidenceRejected: evidence from one protocol run cannot be
// replayed into another (the quote binds the challenger's nonce).
func TestReplayedEvidenceRejected(t *testing.T) {
	f := newFixture(t, Policy{})
	capture := func() []byte {
		l, err := f.hostT.Listen("app")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func() {
			sc, err := l.Accept()
			if err != nil {
				return
			}
			Respond(f.target, f.tShim, f.hostT, sc)
		}()
		conn, err := f.hostC.Dial("target-host", "app")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		cid := f.cShim.Adopt(conn)
		arg := make([]byte, 5)
		arg[0], arg[1], arg[2], arg[3] = byte(cid), byte(cid>>8), byte(cid>>16), byte(cid>>24)
		if _, err := f.challenger.Call("attest.c.begin", arg); err != nil {
			t.Fatal(err)
		}
		ev, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	oldEvidence := capture()

	// New run, new nonce: replaying the old evidence must fail.
	l, err := f.hostT.Listen("app")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		sc, err := l.Accept()
		if err != nil {
			return
		}
		Respond(f.target, f.tShim, f.hostT, sc)
	}()
	conn, err := f.hostC.Dial("target-host", "app")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cid := f.cShim.Adopt(conn)
	arg := make([]byte, 5)
	arg[0], arg[1], arg[2], arg[3] = byte(cid), byte(cid>>8), byte(cid>>16), byte(cid>>24)
	if _, err := f.challenger.Call("attest.c.begin", arg); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil { // discard the genuine evidence
		t.Fatal(err)
	}
	if _, err := f.challenger.Call("attest.c.finish", append(arg[:4:4], oldEvidence...)); err == nil {
		t.Fatal("challenger accepted replayed evidence")
	}
}
