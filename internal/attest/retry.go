package attest

import (
	"errors"
	"fmt"
	"time"

	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/obs"
)

// Retry driver for remote attestation under a faulty network. The paper's
// 9-message flow assumes every message arrives; against the adversary's
// residual powers — delay, loss, reordering, denial of service — the
// challenger needs deadlines and bounded retries. Each retry restarts the
// whole protocol on a fresh connection with a fresh nonce (partial runs
// cannot be resumed: the quote binds the nonce), and each charges the
// challenger enclave's meter, so robustness shows up in the cost tables
// rather than looking free.

// RetryPolicy bounds the attestation retry loop.
type RetryPolicy struct {
	// Attempts is the total number of protocol runs tried (first attempt
	// included) before giving up.
	Attempts int

	// RecvTimeout is the deadline on each untrusted receive in the
	// driver; it is also the natural value for the server-side shim's
	// SetRecvTimeout. Zero blocks forever (the pre-hardening behavior).
	RecvTimeout time.Duration

	// Backoff is the sleep before the second attempt; it doubles per
	// retry, capped at BackoffMax.
	Backoff    time.Duration
	BackoffMax time.Duration
}

// DefaultRetryPolicy is tuned for the simulator's time scale: fault
// schedules delay links by milliseconds, so a 250ms deadline separates
// "lost" from "slow" with wide margin while keeping tests fast.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 4, RecvTimeout: 250 * time.Millisecond,
		Backoff: 10 * time.Millisecond, BackoffMax: 200 * time.Millisecond}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.Attempts <= 0 {
		p.Attempts = d.Attempts
	}
	if p.RecvTimeout <= 0 {
		p.RecvTimeout = d.RecvTimeout
	}
	if p.Backoff <= 0 {
		p.Backoff = d.Backoff
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = d.BackoffMax
	}
	return p
}

// Transient reports whether an attestation failure is worth retrying.
// Policy rejections are final — the peer's build is not on the whitelist,
// and dialing again will not change its measurement. Everything else
// (timeouts, closed connections, crashed hosts, corrupted or truncated
// messages) is attributed to the network adversary, whose interference a
// fresh run can outlast.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	var pe *ErrPolicy
	return !errors.As(err, &pe)
}

// ChallengeRetry runs the challenger side with deadlines and bounded
// exponential backoff. dial opens a fresh connection per attempt — the
// application owns addressing and any preamble it must send before the
// protocol (e.g. a service banner). On success it returns the live
// connection, its connID (holding the established session), the attested
// identity, and how many retries were needed. Pending enclave state of
// failed attempts is aborted, and each retry charges
// core.CostRetryAttempt to the challenger enclave's meter.
func ChallengeRetry(enc *core.Enclave, shim *netsim.IOShim, st *ChallengerState,
	dial func() (*netsim.Conn, error), wantDH bool, pol RetryPolicy) (*netsim.Conn, uint32, Identity, int, error) {
	return ChallengeRetryTrace(nil, "", enc, shim, st, dial, wantDH, pol)
}

// ChallengeRetryTrace is ChallengeRetry with an optional trace: every
// retry records an "attest.retry" instant event (with the attempt
// number and the error that forced it), and the enclave rounds of each
// attempt become spans, so a trace shows exactly how much of an
// attestation's cost the network adversary caused. A nil trace makes it
// identical to ChallengeRetry.
func ChallengeRetryTrace(tr *obs.Trace, track string, enc *core.Enclave, shim *netsim.IOShim, st *ChallengerState,
	dial func() (*netsim.Conn, error), wantDH bool, pol RetryPolicy) (*netsim.Conn, uint32, Identity, int, error) {
	pol = pol.withDefaults()
	backoff := pol.Backoff
	var lastErr error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			enc.Meter().ChargeNormal(core.CostRetryAttempt)
			tr.Event(track, "attest.retry", map[string]string{
				"attempt": fmt.Sprint(attempt),
				"cause":   lastErr.Error(),
			})
			time.Sleep(backoff)
			backoff *= 2
			if backoff > pol.BackoffMax {
				backoff = pol.BackoffMax
			}
		}
		conn, err := dial()
		if err != nil {
			lastErr = err
			if !Transient(err) {
				break
			}
			continue
		}
		cid, id, err := challengeOnce(tr, track, enc, shim, conn, wantDH, pol.RecvTimeout)
		if err == nil {
			return conn, cid, id, attempt, nil
		}
		st.Abort(cid)
		// finish may have stored a session before the ack was lost; the
		// connection is dead, so the session goes with it.
		st.Drop(cid)
		lastErr = err
		if !Transient(err) {
			break
		}
	}
	return nil, 0, Identity{}, pol.Attempts - 1,
		fmt.Errorf("attest: attestation failed after %d attempts: %w", pol.Attempts, lastErr)
}

// An Invalidator purges verification state cached outside the session
// table — a quote-verification cache, an admission ledger — that was
// derived from the peer's previous attestation. Re-establishment must
// call it before the fresh challenge runs: a cache entry keyed to the
// old quote would otherwise let a replayed stale quote satisfy the new
// connection without ever being re-verified against the current policy.
type Invalidator interface {
	InvalidatePeer(connID uint32)
}

// Reestablish replaces an expired (or revoked) session with a freshly
// attested one, in the only safe order: first every trace of the old
// attestation is destroyed — the pending protocol state and stored
// session on the old connection, plus whatever the Invalidator cached
// from the old quote — and only then does a new ChallengeRetry run. The
// scheduling work is what core.CostSessionReestablish prices, so it is
// charged here (once per re-establishment, before the retry loop adds
// its own per-attempt costs); detection of the expiry itself, in
// SessionTable.live, charges nothing. A fresh attestation of a
// since-revoked peer fails the challenger's current Policy, because no
// cached verdict survives to shortcut the check.
func Reestablish(tr *obs.Trace, track string, enc *core.Enclave, shim *netsim.IOShim, st *ChallengerState,
	oldConnID uint32, inv Invalidator, dial func() (*netsim.Conn, error), wantDH bool, pol RetryPolicy) (*netsim.Conn, uint32, Identity, int, error) {
	st.Abort(oldConnID)
	st.Drop(oldConnID)
	if inv != nil {
		inv.InvalidatePeer(oldConnID)
	}
	enc.Meter().ChargeNormal(core.CostSessionReestablish)
	tr.Event(track, "attest.reestablish", map[string]string{
		"conn": fmt.Sprint(oldConnID),
	})
	return ChallengeRetryTrace(tr, track, enc, shim, st, dial, wantDH, pol)
}
