package attest

import (
	"fmt"
	"sync"

	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
	"sgxnet/internal/obs"
	"sgxnet/internal/sgxcrypto"
	"sgxnet/internal/xcall"
)

// QuoteService is the netsim service name the quoting enclave's untrusted
// runtime listens on. Attestation targets dial it on their own host.
const QuoteService = "sgx.quote"

// quotingVersion participates in the quoting enclave's measurement.
const quotingVersion = "1.0"

// msgQuoteResp carries message 3 of Figure 1: the QUOTE plus the quoting
// enclave's own REPORT targeted at the requesting enclave (the mutual
// direction of intra-attestation, §2.2).
type msgQuoteResp struct {
	Quote   Quote
	ReportQ []byte
}

// quotingProgram builds the quoting enclave program. The handler executes
// the per-request ENCLU trace of Table 1's "Quoting" column: one EENTER,
// six message OCALLs (hello/hello-ack framing, REPORT in, QUOTE out,
// done/bye teardown), EGETKEY to verify the inbound REPORT, EGETKEY to
// unseal the platform attestation key blob, EREPORT for the mutual
// report, and the closing EEXIT — 17 SGX(U) instructions.
func quotingProgram() *core.Program {
	return &core.Program{
		Name:    "sgx-quoting-enclave",
		Version: quotingVersion,
		Handlers: map[string]core.Handler{
			// serve handles one quote request on an adopted connection.
			// arg: 4-byte connID.
			"serve": func(env *core.Env, arg []byte) ([]byte, error) {
				start := env.Meter().Snapshot()
				if _, err := env.OCall("msg.recv", arg); err != nil { // hello
					return nil, err
				}
				if _, err := env.OCall("msg.send", netsim.EncodeSend(connID(arg), []byte("qe-hello"))); err != nil {
					return nil, err
				}
				raw, err := env.OCall("msg.recv", arg) // REPORT_T
				if err != nil {
					return nil, err
				}
				rep, ok := core.UnmarshalReport(raw)
				if !ok {
					return nil, fmt.Errorf("attest: quoting: malformed report")
				}
				if !env.VerifyReport(rep) { // EGETKEY + MAC check
					// Intra-attestation failed: the reporter is not a
					// genuine enclave on this platform.
					return nil, fmt.Errorf("attest: quoting: report verification failed")
				}
				// Unseal the attestation key blob (EGETKEY), then obtain
				// the key — hardware refuses non-architectural callers.
				if _, err := env.GetKey(core.KeySealEnclave); err != nil {
					return nil, err
				}
				priv, err := env.AttestationKey()
				if err != nil {
					return nil, err
				}
				q := Quote{
					Identity: Identity{
						MREnclave: rep.MREnclave,
						MRSigner:  rep.MRSigner,
						Debug:     rep.Attributes.Debug,
					},
					Data:        rep.Data,
					PlatformPub: env.Enclave().Platform().AttestationPublicKey(),
				}
				q.Sig = sgxcrypto.Sign(env.Meter(), priv, q.SignedBody())
				// Mutual intra-attestation: report back at the requester.
				repQ := env.EReport(core.TargetInfo{Measurement: rep.MREnclave}, rep.Data)
				resp, err := encode(msgQuoteResp{Quote: q, ReportQ: repQ.Marshal()})
				if err != nil {
					return nil, err
				}
				if _, err := env.OCall("msg.send", netsim.EncodeSend(connID(arg), resp)); err != nil {
					return nil, err
				}
				if _, err := env.OCall("msg.recv", arg); err != nil { // done
					return nil, err
				}
				if _, err := env.OCall("msg.send", netsim.EncodeSend(connID(arg), []byte("qe-bye"))); err != nil {
					return nil, err
				}
				topUp(env.Meter(), start, core.CostAttestQuotingBase)
				return nil, nil
			},
		},
	}
}

func connID(arg []byte) uint32 {
	return uint32(arg[0]) | uint32(arg[1])<<8 | uint32(arg[2])<<16 | uint32(arg[3])<<24
}

// topUp charges the residual protocol-skeleton instructions so the role's
// normal-instruction total since start matches the calibrated base (plus
// whatever metered crypto already charged beyond it — DH costs land on
// top of the base, exactly as in Table 1).
func topUp(m *core.Meter, start core.Tally, base uint64) {
	spent := m.Snapshot().Sub(start).Normal
	if spent < base {
		m.ChargeNormal(base - spent)
	}
}

// Agent is a host's attestation runtime: the launched quoting enclave and
// the untrusted service loop that feeds it quote requests.
type Agent struct {
	Host *netsim.SimHost
	QE   *core.Enclave

	shim *netsim.IOShim
	mh   *netsim.MultiHost
	l    *netsim.Listener

	// Switchless quote serving (SetXcall): serve requests enter through
	// callRing instead of Enclave.Call, and the QE's message OCALLs ride
	// ocallRing instead of paying EEXIT/ERESUME each.
	callRing  *xcall.CallRing
	ocallRing *xcall.OCallRing

	trMu    sync.Mutex
	trace   *obs.Trace
	trTrack string
}

// SetXcall switches the agent to switchless quote serving: ECALLs into
// the quoting enclave and its message OCALLs both ride xcall rings
// sized by cfg, and the message shim's sends use windowed batched
// accounting. Call it right after NewAgent, before any requester
// connects — the rings are installed without synchronization against
// in-flight serves.
func (a *Agent) SetXcall(cfg xcall.Config) {
	cfg = cfg.WithDefaults()
	a.callRing = xcall.NewCallRing(a.QE, cfg)
	a.ocallRing = xcall.NewOCallRing(a.QE, a.mh, cfg)
	a.QE.BindHost(a.ocallRing)
	a.QE.SetSwitchlessOCalls(true)
	a.shim.SetBatched(cfg.Batch)
}

// FlushXcall drains the agent's rings and closes the shim's send
// window at a phase boundary. No-op when running synchronously.
func (a *Agent) FlushXcall() error {
	if a.callRing == nil {
		return nil
	}
	if err := a.callRing.Flush(); err != nil {
		return err
	}
	if err := a.ocallRing.Flush(); err != nil {
		return err
	}
	a.shim.FlushBatch()
	return nil
}

// XcallStats sums the agent's ring tallies (zero when synchronous).
func (a *Agent) XcallStats() xcall.Stats {
	if a.callRing == nil {
		return xcall.Stats{}
	}
	return a.callRing.Stats().Add(a.ocallRing.Stats())
}

// SetTrace makes the agent record a span per served quote request on
// the given track, carrying the quoting enclave's tally delta. Set it
// before traffic starts and give the agent its own track. Spans are
// derived from meter snapshots around each serve — no lock is held
// while a request is in flight (a quote exchange can block arbitrarily
// long under a fault schedule), so overlapping serves each record a
// span but their deltas may include each other's charges; the traced
// evaluation flows serve one request at a time.
func (a *Agent) SetTrace(tr *obs.Trace, track string) {
	a.trMu.Lock()
	a.trace, a.trTrack = tr, track
	a.trMu.Unlock()
}

// NewAgent launches the quoting enclave on the host (its platform must
// have been created with the architectural signer) and starts serving
// QuoteService.
func NewAgent(host *netsim.SimHost, archSigner *core.Signer) (*Agent, error) {
	qe, err := host.Platform().Launch(quotingProgram(), archSigner)
	if err != nil {
		return nil, fmt.Errorf("attest: launching quoting enclave: %w", err)
	}
	if !qe.Attrs().Architectural {
		qe.Destroy()
		return nil, fmt.Errorf("attest: quoting enclave not architectural — platform ArchSigner mismatch")
	}
	shim := netsim.NewMsgShim(host, qe.Meter())
	mh := &netsim.MultiHost{}
	mh.Mount("msg.", shim)
	qe.BindHost(mh)
	l, err := host.Listen(QuoteService)
	if err != nil {
		qe.Destroy()
		return nil, err
	}
	a := &Agent{Host: host, QE: qe, shim: shim, mh: mh, l: l}
	go l.Serve(a.serveConn)
	return a, nil
}

func (a *Agent) serveConn(c *netsim.Conn) {
	defer c.Close()
	id := a.shim.Adopt(c)
	arg := netsim.EncodeSend(id, nil)
	a.trMu.Lock()
	tr, track := a.trace, a.trTrack
	a.trMu.Unlock()
	before := a.QE.Meter().Snapshot()
	var err error
	if a.callRing != nil {
		_, err = a.callRing.Call("serve", arg)
	} else {
		_, err = a.QE.Call("serve", arg)
	}
	if tr != nil {
		tr.RecordSpan(track, "attest.quote", a.QE.Meter().Snapshot().Sub(before))
	}
	if err != nil {
		// Refused (e.g. forged report): the requester sees the closed
		// connection. Denial is always in the host's power; wrong quotes
		// are not.
		return
	}
	// Linger until the requester closes: under a fault schedule the final
	// qe-bye may still be in flight (delayed), and closing now would race
	// its delivery. The requester closes as soon as it has read it.
	for {
		if _, err := c.Recv(); err != nil {
			return
		}
	}
}

// Close stops the agent and destroys the quoting enclave.
func (a *Agent) Close() {
	a.l.Close()
	a.QE.Destroy()
}

var (
	quotingMROnce sync.Once
	quotingMR     core.Measurement
)

// QuotingMeasurement returns the well-known measurement of the quoting
// enclave ("a specially provisioned enclave ... whose identity is
// well-known", §2.2). Targets use it to direct their REPORTs.
func QuotingMeasurement() core.Measurement {
	quotingMROnce.Do(func() {
		quotingMR = core.MeasureProgram(quotingProgram())
	})
	return quotingMR
}
