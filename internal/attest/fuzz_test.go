package attest

import (
	"bytes"
	"testing"

	"sgxnet/internal/core"
)

// Fuzzers for everything the attestation protocol deserializes off the
// wire. The invariant is uniform: arbitrary bytes produce an error (or
// an ok=false), never a panic — a malformed message from the network
// adversary must not kill an enclave's host process. Seed corpora are
// checked in under testdata/fuzz; CI runs each target briefly.

// fuzzEvidence builds a structurally valid message 4 for the corpus.
func fuzzEvidence() MsgEvidence {
	q := Quote{
		Identity: Identity{
			MREnclave: core.Measurement{1, 2, 3},
			MRSigner:  core.Measurement{4, 5, 6},
			Debug:     true,
		},
		Data:        core.ReportDataFrom([]byte("corpus")),
		PlatformPub: bytes.Repeat([]byte{7}, 32),
		Sig:         bytes.Repeat([]byte{8}, 64),
	}
	return MsgEvidence{
		Quote:     q,
		DHPrime:   []byte{0xff, 0xfb},
		DHGen:     []byte{2},
		TargetPub: []byte{0x42},
	}
}

// FuzzDecodeEvidence covers the challenger's parse of the QUOTE-bearing
// evidence message: gob decode, signature verification, policy check.
func FuzzDecodeEvidence(f *testing.F) {
	if seed, err := encode(fuzzEvidence()); err == nil {
		f.Add(seed)
		f.Add(seed[:len(seed)/2])
		f.Add(append(append([]byte{}, seed...), 0xde, 0xad))
	}
	f.Add([]byte{})
	f.Add([]byte{0x03, 0xff, 0x81})
	f.Fuzz(func(t *testing.T, data []byte) {
		var ev MsgEvidence
		if err := decode(data, &ev); err != nil {
			return
		}
		m := core.NewMeter()
		_ = ev.Quote.Verify(m)
		pol := Policy{RejectDebug: true}
		_ = pol.Check(&ev.Quote)
	})
}

// FuzzDecodeChallenge covers the target's parse of message 1.
func FuzzDecodeChallenge(f *testing.F) {
	if seed, err := encode(MsgChallenge{Nonce: [32]byte{9}, WantDH: true}); err == nil {
		f.Add(seed)
		f.Add(seed[:3])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var c MsgChallenge
		_ = decode(data, &c)
	})
}

// FuzzDecodeQuoteResp covers the target's parse of the quoting enclave's
// response (message 3): gob decode plus the nested REPORT unmarshal.
func FuzzDecodeQuoteResp(f *testing.F) {
	rep := core.Report{MREnclave: core.Measurement{1}, Data: core.ReportDataFrom([]byte("q"))}
	if seed, err := encode(msgQuoteResp{Quote: fuzzEvidence().Quote, ReportQ: rep.Marshal()}); err == nil {
		f.Add(seed)
		f.Add(seed[:len(seed)-7])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var qr msgQuoteResp
		if err := decode(data, &qr); err != nil {
			return
		}
		if r, ok := core.UnmarshalReport(qr.ReportQ); ok {
			// A parse that claims success must survive re-serialization
			// (attribute bytes are normalized, so compare structurally).
			if r2, ok2 := core.UnmarshalReport(r.Marshal()); !ok2 || r2 != r {
				t.Fatalf("report round-trip mismatch")
			}
		}
	})
}

// FuzzUnmarshalReport covers the fixed-layout REPORT parser directly.
func FuzzUnmarshalReport(f *testing.F) {
	rep := core.Report{
		MREnclave:  core.Measurement{0xaa},
		MRSigner:   core.Measurement{0xbb},
		Attributes: core.Attributes{Debug: true, Architectural: true},
		Data:       core.ReportDataFrom([]byte("r")),
		KeyID:      [16]byte{0xcc},
		MAC:        [32]byte{0xdd},
	}
	f.Add(rep.Marshal())
	f.Add(rep.Marshal()[:100])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, ok := core.UnmarshalReport(data)
		if !ok {
			return
		}
		if r2, ok2 := core.UnmarshalReport(r.Marshal()); !ok2 || r2 != r {
			t.Fatalf("report round-trip mismatch")
		}
	})
}

// FuzzUnmarshalIdentity covers the identity blob handed back to
// untrusted application code after a successful attestation.
func FuzzUnmarshalIdentity(f *testing.F) {
	f.Add(marshalIdentity(Identity{MREnclave: core.Measurement{1}, Debug: true}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xee}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		id, ok := UnmarshalIdentity(data)
		if !ok {
			return
		}
		if id2, ok2 := UnmarshalIdentity(marshalIdentity(id)); !ok2 || id2 != id {
			t.Fatalf("identity round-trip mismatch")
		}
	})
}
