package attest

import (
	"errors"
	"testing"
	"time"

	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
)

// serveAttest keeps responding to attestation requests on the target
// host, tolerating failed runs (the fault engine kills some mid-flight).
func serveAttest(t *testing.T, f *fixture) *netsim.Listener {
	t.Helper()
	l, err := f.hostT.Listen("app")
	if err != nil {
		t.Fatal(err)
	}
	go l.Serve(func(c *netsim.Conn) {
		_, _ = Respond(f.target, f.tShim, f.hostT, c)
	})
	return l
}

func TestChallengeRetrySurvivesDrops(t *testing.T) {
	f := newFixture(t, Policy{})
	// Lossy in both directions between the hosts; local (quoting) links
	// untouched. Server-side receives must time out or failed runs would
	// wedge the responder forever.
	fs := netsim.NewFaultSchedule(1).
		AddLink(netsim.LinkFaults{From: "challenger-host", To: "target-host", DropProb: 0.3}).
		AddLink(netsim.LinkFaults{From: "target-host", To: "challenger-host", DropProb: 0.3})
	f.net.SetFaults(fs)
	f.tShim.SetRecvTimeout(60 * time.Millisecond)
	l := serveAttest(t, f)
	defer l.Close()

	pol := RetryPolicy{Attempts: 12, RecvTimeout: 80 * time.Millisecond}
	conn, cid, id, retries, err := ChallengeRetry(f.challenger, f.cShim, f.cState,
		func() (*netsim.Conn, error) { return f.hostC.Dial("target-host", "app") }, false, pol)
	if err != nil {
		t.Fatalf("attestation never survived the loss (schedule %v): %v", fs, err)
	}
	defer conn.Close()
	if id.MREnclave != f.target.MREnclave() {
		t.Fatal("attested identity is not the target's")
	}
	if _, ok := f.cState.Session(cid); !ok {
		t.Fatal("no session on the surviving connection")
	}
	if fs.Stats().Dropped == 0 {
		t.Fatal("schedule never dropped anything — test exercises nothing")
	}
	if retries == 0 {
		t.Fatalf("expected at least one retry under 30%% loss (seed %d)", fs.Seed())
	}
	if f.cState.Count() != 1 {
		t.Fatalf("%d sessions after retries, want exactly 1", f.cState.Count())
	}
}

func TestRetryChargesTheMeter(t *testing.T) {
	f := newFixture(t, Policy{})
	// No listener at all: every attempt dies on ErrNoRoute.
	f.challenger.Meter().Reset()
	pol := RetryPolicy{Attempts: 3, RecvTimeout: 20 * time.Millisecond,
		Backoff: time.Millisecond, BackoffMax: 2 * time.Millisecond}
	_, _, _, _, err := ChallengeRetry(f.challenger, f.cShim, f.cState,
		func() (*netsim.Conn, error) { return f.hostC.Dial("target-host", "app") }, false, pol)
	if !errors.Is(err, netsim.ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
	if got, want := f.challenger.Meter().Normal(), uint64(2*core.CostRetryAttempt); got != want {
		t.Fatalf("meter normal = %d, want %d (2 retries)", got, want)
	}
}

func TestChallengeTimesOutAgainstSilentTarget(t *testing.T) {
	f := newFixture(t, Policy{})
	l, err := f.hostT.Listen("app")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go l.Serve(func(c *netsim.Conn) { /* accept and say nothing */ })

	f.challenger.Meter().Reset()
	pol := RetryPolicy{Attempts: 2, RecvTimeout: 30 * time.Millisecond,
		Backoff: time.Millisecond, BackoffMax: time.Millisecond}
	_, _, _, _, err = ChallengeRetry(f.challenger, f.cShim, f.cState,
		func() (*netsim.Conn, error) { return f.hostC.Dial("target-host", "app") }, false, pol)
	if !errors.Is(err, netsim.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// 2 timed-out receives + 1 retry, on top of two begin-handler runs.
	if got := f.challenger.Meter().Normal(); got < 2*core.CostRecvTimeout+core.CostRetryAttempt {
		t.Fatalf("meter normal = %d, timeouts/retries not charged", got)
	}
	// Both attempts' pending challenges were aborted.
	f.cState.pmu.Lock()
	n := len(f.cState.pending)
	f.cState.pmu.Unlock()
	if n != 0 {
		t.Fatalf("%d pending challenges leaked after aborts", n)
	}
}

func TestPolicyRejectionIsNotRetried(t *testing.T) {
	var wrong core.Measurement
	wrong[0] = 0xee
	f := newFixture(t, Policy{AllowedEnclaves: []core.Measurement{wrong}})
	l := serveAttest(t, f)
	defer l.Close()

	dials := 0
	pol := RetryPolicy{Attempts: 5, RecvTimeout: 200 * time.Millisecond,
		Backoff: time.Millisecond, BackoffMax: time.Millisecond}
	_, _, _, _, err := ChallengeRetry(f.challenger, f.cShim, f.cState,
		func() (*netsim.Conn, error) { dials++; return f.hostC.Dial("target-host", "app") }, false, pol)
	if err == nil {
		t.Fatal("policy rejection vanished")
	}
	var pe *ErrPolicy
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want ErrPolicy", err)
	}
	if dials != 1 {
		t.Fatalf("permanent failure retried: %d dials", dials)
	}
}

func TestSessionExpiry(t *testing.T) {
	f := newFixture(t, Policy{})
	f.cState.SetTTL(time.Hour)
	cid, _, ce, te := f.run(t, true)
	if ce != nil || te != nil {
		t.Fatalf("ce=%v te=%v", ce, te)
	}
	s, ok := f.cState.Session(cid)
	if !ok || s.Expires.IsZero() {
		t.Fatal("TTL did not stamp an expiry")
	}
	m := core.NewMeter()
	if _, err := f.cState.Seal(m, cid, []byte("x")); err != nil {
		t.Fatalf("fresh session unusable: %v", err)
	}

	f.cState.Expire(cid)
	if _, err := f.cState.Seal(m, cid, []byte("x")); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("err = %v, want ErrSessionExpired", err)
	}
	if m.Normal() < core.CostSessionReestablish {
		t.Fatal("expiry detection not charged")
	}
	// Evicted: further use reports no session, and the table is clean for
	// the re-attestation that must follow.
	if _, err := f.cState.Open(m, cid, nil); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v, want ErrNoSession after eviction", err)
	}
	if _, ok := f.cState.Session(cid); ok {
		t.Fatal("expired session still listed")
	}
}

func TestTransientClassification(t *testing.T) {
	for _, err := range []error{netsim.ErrTimeout, netsim.ErrClosed, netsim.ErrHostDown, netsim.ErrNoRoute} {
		if !Transient(err) {
			t.Fatalf("%v should be transient", err)
		}
	}
	if Transient(&ErrPolicy{Reason: "revoked build"}) {
		t.Fatal("policy rejection classified transient")
	}
	if Transient(nil) {
		t.Fatal("nil error classified transient")
	}
}
