package attest

import (
	"errors"
	"testing"
	"time"

	"sgxnet/internal/core"
	"sgxnet/internal/netsim"
)

// serveAttest keeps responding to attestation requests on the target
// host, tolerating failed runs (the fault engine kills some mid-flight).
func serveAttest(t *testing.T, f *fixture) *netsim.Listener {
	t.Helper()
	l, err := f.hostT.Listen("app")
	if err != nil {
		t.Fatal(err)
	}
	go l.Serve(func(c *netsim.Conn) {
		_, _ = Respond(f.target, f.tShim, f.hostT, c)
	})
	return l
}

func TestChallengeRetrySurvivesDrops(t *testing.T) {
	f := newFixture(t, Policy{})
	// Lossy in both directions between the hosts; local (quoting) links
	// untouched. Server-side receives must time out or failed runs would
	// wedge the responder forever.
	fs := netsim.NewFaultSchedule(1).
		AddLink(netsim.LinkFaults{From: "challenger-host", To: "target-host", DropProb: 0.3}).
		AddLink(netsim.LinkFaults{From: "target-host", To: "challenger-host", DropProb: 0.3})
	f.net.SetFaults(fs)
	f.tShim.SetRecvTimeout(60 * time.Millisecond)
	l := serveAttest(t, f)
	defer l.Close()

	pol := RetryPolicy{Attempts: 12, RecvTimeout: 80 * time.Millisecond}
	conn, cid, id, retries, err := ChallengeRetry(f.challenger, f.cShim, f.cState,
		func() (*netsim.Conn, error) { return f.hostC.Dial("target-host", "app") }, false, pol)
	if err != nil {
		t.Fatalf("attestation never survived the loss (schedule %v): %v", fs, err)
	}
	defer conn.Close()
	if id.MREnclave != f.target.MREnclave() {
		t.Fatal("attested identity is not the target's")
	}
	if _, ok := f.cState.Session(cid); !ok {
		t.Fatal("no session on the surviving connection")
	}
	if fs.Stats().Dropped == 0 {
		t.Fatal("schedule never dropped anything — test exercises nothing")
	}
	if retries == 0 {
		t.Fatalf("expected at least one retry under 30%% loss (seed %d)", fs.Seed())
	}
	if f.cState.Count() != 1 {
		t.Fatalf("%d sessions after retries, want exactly 1", f.cState.Count())
	}
}

func TestRetryChargesTheMeter(t *testing.T) {
	f := newFixture(t, Policy{})
	// No listener at all: every attempt dies on ErrNoRoute.
	f.challenger.Meter().Reset()
	pol := RetryPolicy{Attempts: 3, RecvTimeout: 20 * time.Millisecond,
		Backoff: time.Millisecond, BackoffMax: 2 * time.Millisecond}
	_, _, _, _, err := ChallengeRetry(f.challenger, f.cShim, f.cState,
		func() (*netsim.Conn, error) { return f.hostC.Dial("target-host", "app") }, false, pol)
	if !errors.Is(err, netsim.ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
	if got, want := f.challenger.Meter().Normal(), uint64(2*core.CostRetryAttempt); got != want {
		t.Fatalf("meter normal = %d, want %d (2 retries)", got, want)
	}
}

func TestChallengeTimesOutAgainstSilentTarget(t *testing.T) {
	f := newFixture(t, Policy{})
	l, err := f.hostT.Listen("app")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go l.Serve(func(c *netsim.Conn) { /* accept and say nothing */ })

	f.challenger.Meter().Reset()
	pol := RetryPolicy{Attempts: 2, RecvTimeout: 30 * time.Millisecond,
		Backoff: time.Millisecond, BackoffMax: time.Millisecond}
	_, _, _, _, err = ChallengeRetry(f.challenger, f.cShim, f.cState,
		func() (*netsim.Conn, error) { return f.hostC.Dial("target-host", "app") }, false, pol)
	if !errors.Is(err, netsim.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// 2 timed-out receives + 1 retry, on top of two begin-handler runs.
	if got := f.challenger.Meter().Normal(); got < 2*core.CostRecvTimeout+core.CostRetryAttempt {
		t.Fatalf("meter normal = %d, timeouts/retries not charged", got)
	}
	// Both attempts' pending challenges were aborted.
	f.cState.pmu.Lock()
	n := len(f.cState.pending)
	f.cState.pmu.Unlock()
	if n != 0 {
		t.Fatalf("%d pending challenges leaked after aborts", n)
	}
}

func TestPolicyRejectionIsNotRetried(t *testing.T) {
	var wrong core.Measurement
	wrong[0] = 0xee
	f := newFixture(t, Policy{AllowedEnclaves: []core.Measurement{wrong}})
	l := serveAttest(t, f)
	defer l.Close()

	dials := 0
	pol := RetryPolicy{Attempts: 5, RecvTimeout: 200 * time.Millisecond,
		Backoff: time.Millisecond, BackoffMax: time.Millisecond}
	_, _, _, _, err := ChallengeRetry(f.challenger, f.cShim, f.cState,
		func() (*netsim.Conn, error) { dials++; return f.hostC.Dial("target-host", "app") }, false, pol)
	if err == nil {
		t.Fatal("policy rejection vanished")
	}
	var pe *ErrPolicy
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want ErrPolicy", err)
	}
	if dials != 1 {
		t.Fatalf("permanent failure retried: %d dials", dials)
	}
}

func TestSessionExpiry(t *testing.T) {
	f := newFixture(t, Policy{})
	f.cState.SetTTL(time.Hour)
	cid, _, ce, te := f.run(t, true)
	if ce != nil || te != nil {
		t.Fatalf("ce=%v te=%v", ce, te)
	}
	s, ok := f.cState.Session(cid)
	if !ok || s.Expires.IsZero() {
		t.Fatal("TTL did not stamp an expiry")
	}
	m := core.NewMeter()
	if _, err := f.cState.Seal(m, cid, []byte("x")); err != nil {
		t.Fatalf("fresh session unusable: %v", err)
	}

	f.cState.Expire(cid)
	beforeN, beforeSGX := m.Normal(), m.SGX()
	if _, err := f.cState.Seal(m, cid, []byte("x")); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("err = %v, want ErrSessionExpired", err)
	}
	// Validate-then-charge: detecting the expired session is a failed
	// validation and must cost zero — the re-establishment cost belongs
	// to the Reestablish driver, not the detection site.
	if m.Normal() != beforeN || m.SGX() != beforeSGX {
		t.Fatalf("expiry detection charged the meter (normal %d→%d, sgx %d→%d); failed validation must cost zero",
			beforeN, m.Normal(), beforeSGX, m.SGX())
	}
	// Evicted: further use reports no session, and the table is clean for
	// the re-attestation that must follow.
	if _, err := f.cState.Open(m, cid, nil); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v, want ErrNoSession after eviction", err)
	}
	if _, ok := f.cState.Session(cid); ok {
		t.Fatal("expired session still listed")
	}
}

// recordingInvalidator captures which peers had their cached
// verification state purged, and when relative to the session table.
type recordingInvalidator struct {
	calls       []uint32
	staleAtCall []bool // whether the stale session still existed when invalidated
	st          *ChallengerState
}

func (r *recordingInvalidator) InvalidatePeer(connID uint32) {
	r.calls = append(r.calls, connID)
	_, ok := r.st.Session(connID)
	r.staleAtCall = append(r.staleAtCall, ok)
}

// TestReestablishInvalidatesAndCharges: the re-establishment driver must
// (a) purge the stale session and the invalidator's cached state before
// dialing, and (b) carry the CostSessionReestablish charge that the
// detection site no longer pays.
func TestReestablishInvalidatesAndCharges(t *testing.T) {
	f := newFixture(t, Policy{})
	f.cState.SetTTL(time.Hour)
	l := serveAttest(t, f)
	dial := func() (*netsim.Conn, error) { return f.hostC.Dial("target-host", "app") }
	pol := RetryPolicy{Attempts: 2, RecvTimeout: 200 * time.Millisecond,
		Backoff: time.Millisecond, BackoffMax: time.Millisecond}
	conn, cid, _, _, err := ChallengeRetry(f.challenger, f.cShim, f.cState, dial, true, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	f.cState.Expire(cid)
	l.Close() // next dial fails: isolates the driver's own charge

	inv := &recordingInvalidator{st: f.cState}
	f.challenger.Meter().Reset()
	deadDial := func() (*netsim.Conn, error) { return f.hostC.Dial("no-such-host", "app") }
	if _, _, _, _, err := Reestablish(nil, "", f.challenger, f.cShim, f.cState,
		cid, inv, deadDial, true, RetryPolicy{Attempts: 1, RecvTimeout: 20 * time.Millisecond,
			Backoff: time.Millisecond, BackoffMax: time.Millisecond}); err == nil {
		t.Fatal("re-establishment against a dead host succeeded")
	}
	if got, want := f.challenger.Meter().Normal(), uint64(core.CostSessionReestablish); got != want {
		t.Fatalf("re-establishment charged %d, want exactly CostSessionReestablish (%d)", got, want)
	}
	if len(inv.calls) != 1 || inv.calls[0] != cid {
		t.Fatalf("invalidator calls = %v, want exactly [%d]", inv.calls, cid)
	}
	if _, ok := f.cState.Session(cid); ok {
		t.Fatal("stale session survived re-establishment")
	}
}

// TestRevokedThenRetriedPeerAlwaysRejected is the satellite property
// test: however many times an attested-then-revoked peer is retried
// through the re-establishment path, it must always be rejected with a
// policy error — no cached session or quote state may survive
// Reestablish to satisfy a fresh challenge.
func TestRevokedThenRetriedPeerAlwaysRejected(t *testing.T) {
	f := newFixture(t, Policy{})
	f.cState.SetTTL(time.Hour)
	l := serveAttest(t, f)
	defer l.Close()
	dial := func() (*netsim.Conn, error) { return f.hostC.Dial("target-host", "app") }
	pol := RetryPolicy{Attempts: 2, RecvTimeout: 200 * time.Millisecond,
		Backoff: time.Millisecond, BackoffMax: time.Millisecond}
	var revoked core.Measurement
	revoked[0] = 0xba
	for i := 0; i < 5; i++ {
		f.cState.SetPolicy(Policy{}) // peer currently trusted
		conn, cid, id, _, err := ChallengeRetry(f.challenger, f.cShim, f.cState, dial, true, pol)
		if err != nil {
			t.Fatalf("iteration %d: establishment failed: %v", i, err)
		}
		if id.MREnclave != f.target.MREnclave() {
			t.Fatalf("iteration %d: wrong peer attested", i)
		}
		// Revoke the peer's build, then expire its session: the next use
		// must force a full re-attestation, which the new policy rejects.
		f.cState.SetPolicy(Policy{AllowedEnclaves: []core.Measurement{revoked}})
		f.cState.Expire(cid)
		if _, err := f.cState.Seal(core.NewMeter(), cid, []byte("x")); !errors.Is(err, ErrSessionExpired) {
			t.Fatalf("iteration %d: expired session still usable: %v", i, err)
		}
		_, _, _, _, rerr := Reestablish(nil, "", f.challenger, f.cShim, f.cState,
			cid, nil, dial, true, pol)
		var pe *ErrPolicy
		if rerr == nil || !errors.As(rerr, &pe) {
			t.Fatalf("iteration %d: revoked-then-retried peer not policy-rejected: %v", i, rerr)
		}
		if f.cState.Count() != 0 {
			t.Fatalf("iteration %d: revoked peer holds %d sessions", i, f.cState.Count())
		}
		conn.Close()
	}
}

func TestTransientClassification(t *testing.T) {
	for _, err := range []error{netsim.ErrTimeout, netsim.ErrClosed, netsim.ErrHostDown, netsim.ErrNoRoute} {
		if !Transient(err) {
			t.Fatalf("%v should be transient", err)
		}
	}
	if Transient(&ErrPolicy{Reason: "revoked build"}) {
		t.Fatal("policy rejection classified transient")
	}
	if Transient(nil) {
		t.Fatal("nil error classified transient")
	}
}
