package attest

import (
	"errors"
	"sync"
	"time"

	"sgxnet/internal/core"
	"sgxnet/internal/sgxcrypto"
)

// A Session is the outcome of a successful remote attestation: the peer's
// attested identity and, when Diffie-Hellman was exchanged, the secure
// channel bootstrapped from the shared secret. Sessions live inside the
// enclave that ran the protocol.
type Session struct {
	Peer    Identity
	Secret  [32]byte
	Channel *sgxcrypto.Channel // nil when attestation ran without DH
	Expires time.Time          // zero = no expiry
}

// SessionTable tracks sessions by the connection they were established
// on. It is embedded in both protocol states.
type SessionTable struct {
	mu  sync.Mutex
	m   map[uint32]*Session
	ttl time.Duration
}

// ErrNoSession is returned for connections without an attested session.
var ErrNoSession = errors.New("attest: no attested session on this connection")

// ErrNoChannel is returned when a session was established without DH and
// therefore has no secure channel.
var ErrNoChannel = errors.New("attest: session has no secure channel (attested without DH)")

// ErrSessionExpired is returned when a session has outlived the table's
// TTL; the session is evicted and the peer must re-attest. Freshness
// bounds how long a since-compromised (or since-revoked) peer can keep
// using an old attestation.
var ErrSessionExpired = errors.New("attest: session expired; re-attest to continue")

// SetTTL bounds the lifetime of sessions established after the call;
// zero (the default) disables expiry.
func (t *SessionTable) SetTTL(d time.Duration) {
	t.mu.Lock()
	t.ttl = d
	t.mu.Unlock()
}

func (t *SessionTable) put(connID uint32, s *Session) {
	t.mu.Lock()
	if t.m == nil {
		t.m = make(map[uint32]*Session)
	}
	if t.ttl > 0 && s.Expires.IsZero() {
		s.Expires = time.Now().Add(t.ttl)
	}
	t.m[connID] = s
	t.mu.Unlock()
}

// expired reports whether the session has a deadline in the past.
// Caller holds t.mu (Expires is written under it by Expire).
func (s *Session) expired() bool {
	return !s.Expires.IsZero() && time.Now().After(s.Expires)
}

// Expire force-ends a session's validity immediately (revocation, or a
// test standing in for the passage of time). The entry stays until its
// next use reports ErrSessionExpired, mirroring how real expiry is only
// observed lazily.
func (t *SessionTable) Expire(connID uint32) {
	t.mu.Lock()
	if s, ok := t.m[connID]; ok {
		s.Expires = time.Unix(1, 0)
	}
	t.mu.Unlock()
}

// Session returns the session established on a connection. Expired
// sessions are evicted and reported as absent.
func (t *SessionTable) Session(connID uint32) (*Session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.m[connID]
	if ok && s.expired() {
		delete(t.m, connID)
		return nil, false
	}
	return s, ok
}

// live fetches a session for use, evicting it with ErrSessionExpired
// when it has aged out. Detection itself charges nothing: a rejected use
// is a validation failure, and the validate-then-charge rule (DESIGN.md
// §8) says failed validation costs zero. The re-establishment cost
// (core.CostSessionReestablish) is charged by the driver that actually
// schedules the re-attestation — Reestablish in retry.go.
func (t *SessionTable) live(connID uint32) (*Session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.m[connID]
	if !ok {
		return nil, ErrNoSession
	}
	if s.expired() {
		delete(t.m, connID)
		return nil, ErrSessionExpired
	}
	return s, nil
}

// Drop forgets a session.
func (t *SessionTable) Drop(connID uint32) {
	t.mu.Lock()
	delete(t.m, connID)
	t.mu.Unlock()
}

// Count reports the number of live sessions.
func (t *SessionTable) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// Seal encrypts a message on the session's secure channel, charging the
// enclave meter.
func (t *SessionTable) Seal(m *core.Meter, connID uint32, msg []byte) ([]byte, error) {
	s, err := t.live(connID)
	if err != nil {
		return nil, err
	}
	if s.Channel == nil {
		return nil, ErrNoChannel
	}
	return s.Channel.Seal(m, msg)
}

// Open authenticates and decrypts a channel message.
func (t *SessionTable) Open(m *core.Meter, connID uint32, sealed []byte) ([]byte, error) {
	s, err := t.live(connID)
	if err != nil {
		return nil, err
	}
	if s.Channel == nil {
		return nil, ErrNoChannel
	}
	return s.Channel.Open(m, sealed)
}
