package attest

import (
	"errors"
	"sync"

	"sgxnet/internal/core"
	"sgxnet/internal/sgxcrypto"
)

// A Session is the outcome of a successful remote attestation: the peer's
// attested identity and, when Diffie-Hellman was exchanged, the secure
// channel bootstrapped from the shared secret. Sessions live inside the
// enclave that ran the protocol.
type Session struct {
	Peer    Identity
	Secret  [32]byte
	Channel *sgxcrypto.Channel // nil when attestation ran without DH
}

// SessionTable tracks sessions by the connection they were established
// on. It is embedded in both protocol states.
type SessionTable struct {
	mu sync.Mutex
	m  map[uint32]*Session
}

// ErrNoSession is returned for connections without an attested session.
var ErrNoSession = errors.New("attest: no attested session on this connection")

// ErrNoChannel is returned when a session was established without DH and
// therefore has no secure channel.
var ErrNoChannel = errors.New("attest: session has no secure channel (attested without DH)")

func (t *SessionTable) put(connID uint32, s *Session) {
	t.mu.Lock()
	if t.m == nil {
		t.m = make(map[uint32]*Session)
	}
	t.m[connID] = s
	t.mu.Unlock()
}

// Session returns the session established on a connection.
func (t *SessionTable) Session(connID uint32) (*Session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.m[connID]
	return s, ok
}

// Drop forgets a session.
func (t *SessionTable) Drop(connID uint32) {
	t.mu.Lock()
	delete(t.m, connID)
	t.mu.Unlock()
}

// Count reports the number of live sessions.
func (t *SessionTable) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// Seal encrypts a message on the session's secure channel, charging the
// enclave meter.
func (t *SessionTable) Seal(m *core.Meter, connID uint32, msg []byte) ([]byte, error) {
	s, ok := t.Session(connID)
	if !ok {
		return nil, ErrNoSession
	}
	if s.Channel == nil {
		return nil, ErrNoChannel
	}
	return s.Channel.Seal(m, msg)
}

// Open authenticates and decrypts a channel message.
func (t *SessionTable) Open(m *core.Meter, connID uint32, sealed []byte) ([]byte, error) {
	s, ok := t.Session(connID)
	if !ok {
		return nil, ErrNoSession
	}
	if s.Channel == nil {
		return nil, ErrNoChannel
	}
	return s.Channel.Open(m, sealed)
}
