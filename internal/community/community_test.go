package community

import (
	"errors"
	"testing"

	"sgxnet/internal/core"
)

func mustFoundation(t *testing.T) *Foundation {
	t.Helper()
	f, err := NewFoundation("tor")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mr(b byte) core.Measurement {
	var m core.Measurement
	m[0] = b
	return m
}

func TestPublishAndFollow(t *testing.T) {
	f := mustFoundation(t)
	if _, err := f.Publish("1.0", mr(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Publish("1.1", mr(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Publish("1.0", mr(9)); err == nil {
		t.Fatal("duplicate version published")
	}
	h, err := Follow("tor", f.HistoryPublicKey(), f.Chain(), f.Head())
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 {
		t.Fatalf("len=%d", h.Len())
	}
	cur := h.Current()
	if len(cur) != 2 || cur[0] != mr(1) || cur[1] != mr(2) {
		t.Fatalf("current = %v", cur)
	}
	if r, ok := h.Version("1.1"); !ok || r.Measurement != mr(2) {
		t.Fatal("version lookup failed")
	}
	if _, ok := h.Version("9.9"); ok {
		t.Fatal("phantom version")
	}
}

func TestFollowRejectsForgedHead(t *testing.T) {
	f := mustFoundation(t)
	f.Publish("1.0", mr(1))
	head := f.Head()
	head.Sig[0] ^= 1
	if _, err := Follow("tor", f.HistoryPublicKey(), f.Chain(), head); err == nil {
		t.Fatal("forged head accepted")
	}
	// Wrong key.
	other := mustFoundation(t)
	if _, err := Follow("tor", other.HistoryPublicKey(), f.Chain(), f.Head()); err == nil {
		t.Fatal("head verified with wrong foundation key")
	}
}

func TestFollowRejectsBrokenChain(t *testing.T) {
	f := mustFoundation(t)
	f.Publish("1.0", mr(1))
	f.Publish("1.1", mr(2))
	chain := f.Chain()
	// Tamper with an intermediate release's measurement: the chain hash
	// of its successor no longer matches.
	chain[0].Measurement = mr(99)
	if _, err := Follow("tor", f.HistoryPublicKey(), chain, f.Head()); err == nil {
		t.Fatal("tampered chain accepted")
	}
	// Dropped release.
	if _, err := Follow("tor", f.HistoryPublicKey(), f.Chain()[1:], f.Head()); err == nil {
		t.Fatal("truncated chain accepted")
	}
}

func TestUpdateDetectsRewrite(t *testing.T) {
	f := mustFoundation(t)
	f.Publish("1.0", mr(1))
	h, err := Follow("tor", f.HistoryPublicKey(), f.Chain(), f.Head())
	if err != nil {
		t.Fatal(err)
	}
	// Legitimate extension.
	f.Publish("1.1", mr(2))
	if err := h.Update(f.Chain(), f.Head()); err != nil {
		t.Fatal(err)
	}
	// A compromised foundation key rewrites history: a new chain that
	// does not extend the old one. Build a parallel foundation with the
	// same key by publishing a different 1.0... simulate by constructing
	// a fork directly.
	evil := mustFoundation(t)
	evilChain := []Release{{Project: "tor", Version: "1.0", Measurement: mr(66)}}
	evilChain = append(evilChain, Release{
		Project: "tor", Version: "1.1", Measurement: mr(67), PrevHash: evilChain[0].Hash(),
	})
	_ = evil
	// Sign the fork with the REAL key (worst case: key compromise).
	forkHead := signHeadWith(f, evilChain)
	err = h.Update(evilChain, forkHead)
	if !errors.Is(err, ErrHistoryRewritten) {
		t.Fatalf("fork not detected: %v", err)
	}
	// Shorter (rolled-back) history is also flagged.
	shortHead := signHeadWith(f, f.Chain()[:1])
	if err := h.Update(f.Chain()[:1], shortHead); !errors.Is(err, ErrHistoryRewritten) {
		t.Fatalf("rollback not detected: %v", err)
	}
}

// signHeadWith signs an arbitrary chain head with the foundation's key —
// modelling a compromised maintainer key, which history comparison still
// catches.
func signHeadWith(f *Foundation, chain []Release) SignedHead {
	sh := SignedHead{Project: f.Project, Seq: len(chain)}
	if len(chain) > 0 {
		sh.HeadHash = chain[len(chain)-1].Hash()
	}
	// Reuse Foundation.Head()'s signing path by temporarily swapping the
	// chain is invasive; sign directly instead.
	sh.Sig = signBody(f, sh.signedBody())
	return sh
}

func signBody(f *Foundation, body []byte) []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return ed25519Sign(f.histKey, body)
}

func TestRevocationShrinksWhitelist(t *testing.T) {
	f := mustFoundation(t)
	f.Publish("1.0", mr(1))
	f.Publish("1.1", mr(2))
	// 1.2 revokes the vulnerable 1.0.
	f.Publish("1.2", mr(3), "1.0")
	h, err := Follow("tor", f.HistoryPublicKey(), f.Chain(), f.Head())
	if err != nil {
		t.Fatal(err)
	}
	cur := h.Current()
	if len(cur) != 2 {
		t.Fatalf("current = %v", cur)
	}
	for _, m := range cur {
		if m == mr(1) {
			t.Fatal("revoked build still whitelisted")
		}
	}
	pol := h.Policy(f.EnclaveSigner().MRSigner())
	if len(pol.AllowedEnclaves) != 2 || len(pol.AllowedSigners) != 1 || !pol.RejectDebug {
		t.Fatalf("policy = %+v", pol)
	}
}

func TestPolicyGatesAttestation(t *testing.T) {
	// End-to-end: an enclave built from release 1.0 passes the
	// registry-derived policy; after revocation it fails.
	f := mustFoundation(t)
	prog := &core.Program{
		Name:    "tor-or",
		Version: "1.0",
		Handlers: map[string]core.Handler{
			"noop": func(*core.Env, []byte) ([]byte, error) { return nil, nil },
		},
	}
	m10 := core.MeasureProgram(prog)
	f.Publish("1.0", m10)
	h, err := Follow("tor", f.HistoryPublicKey(), f.Chain(), f.Head())
	if err != nil {
		t.Fatal(err)
	}
	pol := h.Policy(f.EnclaveSigner().MRSigner())

	plat, err := core.NewPlatform("volunteer", core.PlatformConfig{EPCFrames: 128})
	if err != nil {
		t.Fatal(err)
	}
	// The volunteer launches the build signed with the foundation's
	// published key (§4's open attestation key).
	enc, err := plat.Launch(prog, f.EnclaveSigner())
	if err != nil {
		t.Fatal(err)
	}
	quoteLike := struct {
		mre, mrs core.Measurement
	}{enc.MREnclave(), enc.MRSigner()}
	okNow := containsM(pol.AllowedEnclaves, quoteLike.mre) && containsM(pol.AllowedSigners, quoteLike.mrs)
	if !okNow {
		t.Fatal("release 1.0 build rejected by its own registry policy")
	}

	// The community discovers a bug; 1.1 revokes 1.0.
	prog2 := &core.Program{Name: "tor-or", Version: "1.1", Handlers: prog.Handlers}
	f.Publish("1.1", core.MeasureProgram(prog2), "1.0")
	if err := h.Update(f.Chain(), f.Head()); err != nil {
		t.Fatal(err)
	}
	pol = h.Policy(f.EnclaveSigner().MRSigner())
	if containsM(pol.AllowedEnclaves, quoteLike.mre) {
		t.Fatal("revoked build still accepted after registry update")
	}
}

func containsM(set []core.Measurement, m core.Measurement) bool {
	for _, x := range set {
		if x == m {
			return true
		}
	}
	return false
}
