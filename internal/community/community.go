// Package community implements the paper's §4, "Secure Execution of
// Shared Code": open-source projects whose integrity anyone can validate
// by comparing release histories (the git analogy of §4), combined with
// an "open" attestation signing key published by the project's
// foundation.
//
// A Foundation maintains a hash-chained, signed release history mapping
// versions to deterministic-build measurements. Verifiers follow the
// history like a git remote: every update must extend the prefix they
// already hold — a rewritten history ("an unauthorized change to the
// program's history") is detected immediately, and users "can promptly
// flag the fraud". The current, non-revoked measurements become the
// attestation whitelist (attest.Policy) that relays, clients, and
// controllers pin; the foundation's published enclave-signing key makes
// every volunteer's build carry the same MRSIGNER.
package community

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
)

// Release is one entry in a project's release history.
type Release struct {
	Project string
	Version string
	// Measurement is the deterministic-build MRENCLAVE of this release.
	Measurement core.Measurement
	// Revokes lists earlier versions this release withdraws (e.g. a
	// vulnerable build).
	Revokes []string
	// PrevHash chains the history (zero for the first release).
	PrevHash [32]byte
}

// Hash computes the release's chain hash.
func (r *Release) Hash() [32]byte {
	h := sha256.New()
	put := func(b []byte) {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(b)))
		h.Write(l[:])
		h.Write(b)
	}
	put([]byte("sgxnet-release-v1"))
	put([]byte(r.Project))
	put([]byte(r.Version))
	put(r.Measurement[:])
	for _, v := range r.Revokes {
		put([]byte(v))
	}
	h.Write(r.PrevHash[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// SignedHead is the foundation's signature over the current chain head.
type SignedHead struct {
	Project  string
	Seq      int // number of releases in the chain
	HeadHash [32]byte
	Sig      []byte
}

func (sh *SignedHead) signedBody() []byte {
	var buf bytes.Buffer
	buf.WriteString("sgxnet-head-v1")
	buf.WriteString(sh.Project)
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], uint64(sh.Seq))
	buf.Write(seq[:])
	buf.Write(sh.HeadHash[:])
	return buf.Bytes()
}

// Foundation is a project's maintainer: it holds the history signing key
// and the published ("open") enclave-signing key.
type Foundation struct {
	Project string

	mu      sync.Mutex
	histPub ed25519.PublicKey
	histKey ed25519.PrivateKey
	signer  *core.Signer
	chain   []Release
}

// NewFoundation creates a foundation for a project.
func NewFoundation(project string) (*Foundation, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	signer, err := core.NewSigner()
	if err != nil {
		return nil, err
	}
	return &Foundation{Project: project, histPub: pub, histKey: priv, signer: signer}, nil
}

// HistoryPublicKey is the well-known key verifiers pin.
func (f *Foundation) HistoryPublicKey() ed25519.PublicKey {
	out := make(ed25519.PublicKey, len(f.histPub))
	copy(out, f.histPub)
	return out
}

// EnclaveSigner returns the project's published enclave-signing key —
// the "open private attestation key" of §4 that lets any volunteer
// build, launch, and sign the project's enclaves ("Tor nodes can be
// launched, executed and verified by anyone who has the private key").
func (f *Foundation) EnclaveSigner() *core.Signer { return f.signer }

// Publish appends a release for a measured build and re-signs the head.
func (f *Foundation) Publish(version string, measurement core.Measurement, revokes ...string) (Release, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.chain {
		if r.Version == version {
			return Release{}, fmt.Errorf("community: version %q already released", version)
		}
	}
	rel := Release{
		Project:     f.Project,
		Version:     version,
		Measurement: measurement,
		Revokes:     append([]string(nil), revokes...),
	}
	if n := len(f.chain); n > 0 {
		rel.PrevHash = f.chain[n-1].Hash()
	}
	f.chain = append(f.chain, rel)
	return rel, nil
}

// Chain returns a copy of the full release history.
func (f *Foundation) Chain() []Release {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Release(nil), f.chain...)
}

// Head returns the signed chain head.
func (f *Foundation) Head() SignedHead {
	f.mu.Lock()
	defer f.mu.Unlock()
	sh := SignedHead{Project: f.Project, Seq: len(f.chain)}
	if len(f.chain) > 0 {
		sh.HeadHash = f.chain[len(f.chain)-1].Hash()
	}
	sh.Sig = ed25519.Sign(f.histKey, sh.signedBody())
	return sh
}

// Errors surfaced by verification.
var (
	ErrBadHistory = errors.New("community: history verification failed")
	// ErrHistoryRewritten reports a fork: the fetched history does not
	// extend the locally known prefix — the fraud §4 says users promptly
	// flag.
	ErrHistoryRewritten = errors.New("community: history rewritten (fork detected)")
)

// History is a verifier's replica of a project's release history.
type History struct {
	project string
	pub     ed25519.PublicKey

	mu    sync.Mutex
	chain []Release
}

// Follow verifies a fetched chain + signed head against the pinned
// foundation key and returns a replica.
func Follow(project string, pub ed25519.PublicKey, chain []Release, head SignedHead) (*History, error) {
	h := &History{project: project, pub: append(ed25519.PublicKey(nil), pub...)}
	if err := h.verify(chain, head); err != nil {
		return nil, err
	}
	h.chain = append([]Release(nil), chain...)
	return h, nil
}

func (h *History) verify(chain []Release, head SignedHead) error {
	if head.Project != h.project {
		return fmt.Errorf("%w: head for project %q", ErrBadHistory, head.Project)
	}
	if !ed25519.Verify(h.pub, head.signedBody(), head.Sig) {
		return fmt.Errorf("%w: bad head signature", ErrBadHistory)
	}
	if head.Seq != len(chain) {
		return fmt.Errorf("%w: head seq %d over %d releases", ErrBadHistory, head.Seq, len(chain))
	}
	var prev [32]byte
	for i, r := range chain {
		if r.Project != h.project {
			return fmt.Errorf("%w: release %d for project %q", ErrBadHistory, i, r.Project)
		}
		if r.PrevHash != prev {
			return fmt.Errorf("%w: broken chain at release %d (%s)", ErrBadHistory, i, r.Version)
		}
		prev = r.Hash()
	}
	if len(chain) > 0 && head.HeadHash != prev {
		return fmt.Errorf("%w: head hash mismatch", ErrBadHistory)
	}
	return nil
}

// Update applies a fetched newer history. It must verify AND extend the
// locally known prefix; any divergence is a rewrite.
func (h *History) Update(chain []Release, head SignedHead) error {
	if err := h.verify(chain, head); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(chain) < len(h.chain) {
		return fmt.Errorf("%w: fetched history shorter than local", ErrHistoryRewritten)
	}
	for i, local := range h.chain {
		if chain[i].Hash() != local.Hash() {
			return fmt.Errorf("%w: divergence at release %d (%s vs %s)",
				ErrHistoryRewritten, i, local.Version, chain[i].Version)
		}
	}
	h.chain = append([]Release(nil), chain...)
	return nil
}

// Current returns the latest non-revoked measurements — the attestation
// whitelist.
func (h *History) Current() []core.Measurement {
	h.mu.Lock()
	defer h.mu.Unlock()
	revoked := map[string]bool{}
	for _, r := range h.chain {
		for _, v := range r.Revokes {
			revoked[v] = true
		}
	}
	var out []core.Measurement
	for _, r := range h.chain {
		if !revoked[r.Version] {
			out = append(out, r.Measurement)
		}
	}
	return out
}

// Version looks up a release by version string.
func (h *History) Version(v string) (Release, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, r := range h.chain {
		if r.Version == v {
			return r, true
		}
	}
	return Release{}, false
}

// Len reports the number of releases known locally.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.chain)
}

// Policy builds the attestation policy pinning the project's current
// builds and the foundation's signer.
func (h *History) Policy(foundationSigner core.Measurement) attest.Policy {
	return attest.Policy{
		AllowedEnclaves: h.Current(),
		AllowedSigners:  []core.Measurement{foundationSigner},
		RejectDebug:     true,
	}
}

// ed25519Sign is an internal alias used by the test helpers.
func ed25519Sign(priv ed25519.PrivateKey, body []byte) []byte { return ed25519.Sign(priv, body) }
