package eval

import (
	"fmt"
	"io"
	"sync"

	"sgxnet/internal/attest"
	"sgxnet/internal/core"
	"sgxnet/internal/obs"
	"sgxnet/internal/obs/series"
	"sgxnet/internal/ratls"
)

// RA-TLS attested-channel sweep (DESIGN.md §15): the amortization
// experiment behind the verification cache. An attested endpoint
// admits N client connections from a fixed population of distinct
// peers; the first sight of each certificate is a cold full
// verification (two signature checks over the quote and the proof of
// possession), every later connection is a warm cache hit priced at
// core.CostQuoteCacheLookup. The sweep scales N across four decades
// and reports the per-connection cost split — cold, warm, and
// amortized — in native mode (the verifier runs in the untrusted
// runtime) and SGX mode (the verifier lives in a gate enclave and
// every admission pays an EENTER/EEXIT crossing on top). The
// acceptance bar the golden pins: at 10^6 clients the warm
// per-connection cost is well under 5% of the cold cost.

// ratlsSweepGrid is the canonical sweep.
var ratlsSweepGrid = struct {
	modes   []string
	shards  []int
	clients []int
}{
	modes:   []string{"native", "sgx"},
	shards:  []int{1, 8},
	clients: []int{1_000, 10_000, 100_000, 1_000_000},
}

// ratlsSweepPeers is the distinct attested population per cell: each
// peer enclave mints its own certificate, so every cell pays exactly
// this many cold verifications and admits the rest warm.
const ratlsSweepPeers = 16

// RATLSSweepPoint is one (mode, shards, clients) cell.
type RATLSSweepPoint struct {
	Mode    string // "native" or "sgx"
	Shards  int    // verification-cache lock stripes
	Clients int    // admitted connections
	Peers   int    // distinct certificates (= cold verifications)

	Cold    uint64  // full verifications
	Warm    uint64  // cache hits
	HitRate float64 // warm / (cold + warm)

	ColdCycles uint64 // total cycles of the cold phase
	WarmCycles uint64 // total cycles of the warm phase

	ColdPerConn  uint64 // cold-phase cycles per first-sight connection
	WarmPerConn  uint64 // warm-phase cycles per cached connection
	AmortPerConn uint64 // whole-cell cycles over all N connections

	// WarmOverCold is WarmPerConn over ColdPerConn — the amortization
	// ratio the acceptance bar bounds (≤ 0.05 at 10^6 clients).
	WarmOverCold float64
}

// RATLSSweep runs the full grid on the default pool.
func RATLSSweep() ([]RATLSSweepPoint, error) {
	return defaultRunner().RATLSSweep()
}

// RATLSSweep runs every grid point as an independent scenario on the
// pool. Each point builds its own platform, peer enclaves, and
// verifier, so the merged results are byte-identical at any worker
// count.
func (r *Runner) RATLSSweep() ([]RATLSSweepPoint, error) {
	type cell struct {
		mode    string
		shards  int
		clients int
	}
	var cells []cell
	for _, mode := range ratlsSweepGrid.modes {
		for _, s := range ratlsSweepGrid.shards {
			for _, c := range ratlsSweepGrid.clients {
				cells = append(cells, cell{mode: mode, shards: s, clients: c})
			}
		}
	}
	return mapOrdered(r, len(cells), func(i int) (RATLSSweepPoint, error) {
		c := cells[i]
		return ratlsSweepPoint(r.trace, r.series, c.mode, c.shards, c.clients)
	})
}

// ratlsSweepSubject is the attested application build the sweep's
// peers run: a minimal program carrying the RA-TLS subject handlers.
func ratlsSweepSubject() *core.Program {
	prog := &core.Program{
		Name:    "ratls-sweep-peer",
		Version: "1.0",
		Handlers: map[string]core.Handler{
			"noop": func(env *core.Env, arg []byte) ([]byte, error) { return arg, nil },
		},
	}
	ratls.AddSubjectHandlers(prog)
	return prog
}

// ratlsSweepPoint measures one cell. The rig mints ratlsSweepPeers
// certificates on a seeded platform, then drives the admission
// workload in two phases over the verifying endpoint's meter: a serial
// cold phase (first sight of every certificate) and a warm phase of
// the remaining connections fanned across min(shards, 8) goroutines —
// the sharded cache's concurrency is exercised, and because meters and
// verifier counters are atomic the tallies are independent of
// interleaving. With a series set attached, cache occupancy and
// hit-rate gauges are sampled at the phase boundaries on a
// meter-derived clock.
func ratlsSweepPoint(tr *obs.Trace, set *series.Set, mode string, shards, clients int) (RATLSSweepPoint, error) {
	pt := RATLSSweepPoint{Mode: mode, Shards: shards, Clients: clients, Peers: ratlsSweepPeers}
	if clients < ratlsSweepPeers {
		return pt, fmt.Errorf("eval: ratls sweep needs at least %d clients, got %d", ratlsSweepPeers, clients)
	}
	track := fmt.Sprintf("ratls-sweep/mode=%s/shards=%d/clients=%d", mode, shards, clients)

	arch, err := core.NewSigner()
	if err != nil {
		return pt, err
	}
	plat, err := core.NewPlatform("ratls-sweep", core.PlatformConfig{
		EPCFrames: 1024, ArchSigner: arch.MRSigner(), Seed: []byte(track),
	})
	if err != nil {
		return pt, err
	}
	mt, err := ratls.NewMinter(plat, arch)
	if err != nil {
		return pt, err
	}
	signer, err := core.NewSigner()
	if err != nil {
		return pt, err
	}
	prog := ratlsSweepSubject()
	certs := make([][]byte, ratlsSweepPeers)
	for i := range certs {
		enc, err := plat.Launch(prog, signer)
		if err != nil {
			return pt, err
		}
		if _, certs[i], err = mt.Mint(enc); err != nil {
			return pt, err
		}
	}

	v := ratls.NewVerifier(attest.Policy{
		AllowedEnclaves: []core.Measurement{core.MeasureProgram(prog)},
		RejectDebug:     true,
	}, shards)
	if tr != nil {
		v.Probe = tr.Registry()
	}

	// The verifying endpoint: a bare meter in native mode, a gate
	// enclave (one ECALL per admission) in SGX mode. Launch costs are
	// drained so the phases measure admission only.
	var meter *core.Meter
	admit := func(peer string, cert []byte) error {
		_, err := v.Admit(meter, cert, peer)
		return err
	}
	switch mode {
	case "native":
		meter = core.NewMeter()
	case "sgx":
		gate, err := plat.Launch(ratls.GateProgram(v), signer)
		if err != nil {
			return pt, err
		}
		meter = gate.Meter()
		meter.Reset()
		admit = func(peer string, cert []byte) error {
			_, err := gate.Call(ratls.GateService, ratls.EncodeAdmit(peer, cert))
			return err
		}
	default:
		return pt, fmt.Errorf("eval: unknown ratls mode %q", mode)
	}

	mc := &meterClock{}
	mc.bind(meter)
	sm := set.Sampler(track)
	sample := func() {
		if sm == nil {
			return
		}
		st := v.Stats()
		now := mc.Now()
		sm.GaugeAt("ratls.cache.entries", now, uint64(st.Entries))
		sm.GaugeAt("ratls.cache.hitrate.pct", now, uint64(st.HitRate()*100))
	}

	peerName := func(i int) string { return fmt.Sprintf("peer-%d", i%ratlsSweepPeers) }

	// Cold phase: first sight of every certificate, serially.
	sp := tr.Begin(track, "ratls.cold", meter)
	for i := 0; i < ratlsSweepPeers; i++ {
		if err := admit(peerName(i), certs[i%ratlsSweepPeers]); err != nil {
			return pt, fmt.Errorf("eval: cold admission %d: %w", i, err)
		}
	}
	sp.End()
	cold := meter.SnapshotAndReset()
	pt.ColdCycles = cold.Cycles()
	sample()

	// Warm phase: the remaining connections, fanned across the cache's
	// stripes. Each worker owns a residue class of the connection index,
	// so the work partition is deterministic; the shared meter and
	// verifier counters are atomic, so the totals are too.
	warmConns := clients - ratlsSweepPeers
	workers := shards
	if workers > 8 {
		workers = 8
	}
	sp = tr.Begin(track, "ratls.warm", meter)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < warmConns; i += workers {
				j := ratlsSweepPeers + i
				if err := admit(peerName(j), certs[j%ratlsSweepPeers]); err != nil {
					errs[w] = fmt.Errorf("eval: warm admission %d: %w", j, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	sp.End()
	for _, err := range errs {
		if err != nil {
			return pt, err
		}
	}
	warm := meter.SnapshotAndReset()
	pt.WarmCycles = warm.Cycles()
	sample()

	st := v.Stats()
	pt.Cold, pt.Warm, pt.HitRate = st.Cold, st.Warm, st.HitRate()
	pt.ColdPerConn = pt.ColdCycles / uint64(ratlsSweepPeers)
	if warmConns > 0 {
		pt.WarmPerConn = pt.WarmCycles / uint64(warmConns)
	}
	pt.AmortPerConn = (pt.ColdCycles + pt.WarmCycles) / uint64(clients)
	if pt.ColdPerConn > 0 {
		pt.WarmOverCold = float64(pt.WarmPerConn) / float64(pt.ColdPerConn)
	}

	tr.Total(track, "run.total", cold.Add(warm))
	if reg := tr.Registry(); reg != nil {
		reg.Add("ratls.sweep.cold", st.Cold)
		reg.Add("ratls.sweep.warm", st.Warm)
		reg.Add("ratls.sweep.rejects", st.Rejects)
	}
	return pt, nil
}

// RenderRATLSSweep prints the sweep in its canonical order.
func RenderRATLSSweep(w io.Writer, pts []RATLSSweepPoint) {
	fmt.Fprintln(w, "Attested channels (RA-TLS): per-connection verification cost, cold vs warm")
	fmt.Fprintf(w, "(%d distinct attested peers per cell; the verification cache admits the rest warm)\n", ratlsSweepPeers)
	tw := newTab(w)
	fmt.Fprintln(tw, "mode\tshards\tclients\tcold\twarm\thit-rate\tcold/conn\twarm/conn\tamortized/conn\twarm÷cold")
	for _, p := range pts {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.4f\t%s\t%s\t%s\t%.4f%%\n",
			p.Mode, p.Shards, p.Clients, p.Cold, p.Warm, p.HitRate,
			fmtM(p.ColdPerConn), fmtM(p.WarmPerConn), fmtM(p.AmortPerConn),
			p.WarmOverCold*100)
	}
	tw.Flush()
}
