package eval

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sgxnet/internal/core"
	"sgxnet/internal/obs"
	"sgxnet/internal/xcall"
)

var updateTrace = flag.Bool("update-trace", false, "rewrite the golden trace file")

// traceRun records the reference workload — the Table 4 row at the
// canonical 30 ASes, one Figure 3 point, one oversubscribed EPC sweep
// point (so the pager's spans and pager.* counters are pinned too),
// one switchless xcall sweep point (so the xcall.* probe kinds and
// ring counters are pinned), one small open-loop load sweep point
// (so the per-request RecordSpanAt spans, the load.calibrate record,
// and the load.sweep.* counters are pinned), and one small
// discrete-event scale sweep point (so the scale.native/scale.sgx
// spans and scale.sweep.* counters are pinned), and one small SGX-mode
// RA-TLS sweep point (so the ratls.cold/ratls.warm spans and the
// ratls.verify.* probe kinds are pinned) — into a fresh trace and
// returns its JSONL export. The registry is installed as the default
// probe so the metrics track exercises the instruction-kind counters.
func traceRun(t *testing.T, workers int) []byte {
	t.Helper()
	reg := obs.NewRegistry()
	tr := obs.New(reg)
	core.SetDefaultProbe(reg)
	defer core.SetDefaultProbe(nil)
	r := NewRunner(workers)
	r.SetTrace(tr)
	if _, err := r.Table4At(30); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Figure3([]int{10}); err != nil {
		t.Fatal(err)
	}
	if _, err := epcSweepPoint(tr, nil, 2, 2.0, "clock"); err != nil {
		t.Fatal(err)
	}
	if _, err := xcallSweepPoint(tr, nil, "tls", &xcall.Config{Batch: 16, SpinBudget: 64}); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSweepPoint(tr, nil, loadCell{"tls", "poisson", 0.8, "xcall=16"}, 48); err != nil {
		t.Fatal(err)
	}
	if _, err := scaleSweepPoint(tr, nil, "sdn:ases=8,updates=2,rate=100,seed=42,edges=0-1|1-2"); err != nil {
		t.Fatal(err)
	}
	if _, err := ratlsSweepPoint(tr, nil, "sgx", 2, 1_000); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := obs.WriteJSONL(&b, tr.Events()); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestTraceGolden pins the reference trace byte for byte: timestamps
// come from the message clock and instruction tallies, never wall
// clock, so the export must not move between runs or machines.
func TestTraceGolden(t *testing.T) {
	got := traceRun(t, 1)
	path := filepath.Join("testdata", "trace.golden")
	if *updateTrace {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (rerun with -update-trace): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace diverges from %s (rerun with -update-trace if intended)", path)
	}
}

// TestTraceParallelSerialEquivalence is the tracing arm of the engine's
// determinism gate: the exported trace must be byte-identical whether
// the scenarios ran serially or fanned out across eight workers.
// Concurrent legs write to distinct tracks and the exporter orders by
// (track, seq), so interleaving cannot show through.
func TestTraceParallelSerialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("records the reference workload twice; slow under -short")
	}
	serial := traceRun(t, 1)
	parallel := traceRun(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Error("-workers 8 trace diverges from -workers 1")
	}
}

// TestTraceAttribution is the acceptance criterion for the analyzer:
// the trace must be well-formed, and named spans must explain at least
// 95% of the independently reported run totals (the phase spans and
// the setup record partition the meters exactly, so in practice the
// residual is zero).
func TestTraceAttribution(t *testing.T) {
	events, err := obs.ReadJSONL(bytes.NewReader(traceRun(t, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if errs := obs.Check(events); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
	}
	a := obs.Analyze(events)
	if a.CoveredTotal.Cycles() == 0 {
		t.Fatal("no track reported a run total — nothing to attribute against")
	}
	if c := a.Coverage(); c < 0.95 {
		t.Errorf("spans attribute %.1f%% of reported totals, want >= 95%%", 100*c)
	}
	for _, tr := range a.Tracks {
		if tr.HasTotal {
			if res := tr.Residual(); res.SGXU != 0 || res.Normal != 0 {
				t.Logf("track %s residual %+v (allowed, but should stay small)", tr.Name, res)
			}
		}
	}
}

// TestTable1TracedMatchesUntraced checks that attaching a trace never
// perturbs the measured tallies — probes and spans observe, they do
// not charge.
func TestTable1TracedMatchesUntraced(t *testing.T) {
	plain, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(obs.NewRegistry())
	traced, err := Table1Traced(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(traced) {
		t.Fatalf("row count diverges: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Errorf("row %d diverges with tracing: %+v vs %+v", i, plain[i], traced[i])
		}
	}
	if len(tr.Events()) == 0 {
		t.Error("traced run recorded no events")
	}
}
