package load

import (
	"testing"
)

// FuzzArrivalSchedule holds the spec parser to its contract on
// arbitrary input: parse either rejects with an error or yields a spec
// that (a) validates, (b) round-trips through its canonical String
// form, and (c) generates a monotone, ceiling-bounded schedule — no
// panics, no NaN-poisoned or overflowing timestamps, ever.
func FuzzArrivalSchedule(f *testing.F) {
	seeds := []string{
		"poisson:rate=33.5,n=600,seed=7",
		"bursty:rate=2,n=64,seed=9,period=4096,duty=0.25",
		"fixed:rate=1000,n=128",
		"poisson:rate=0.001,n=16,seed=18446744073709551615",
		"bursty:rate=1e9,n=2097152,seed=1,period=1099511627776,duty=1",
		// Rejections the parser must produce, not panic over:
		"poisson:rate=0,n=4,seed=1",     // zero rate
		"poisson:rate=1e308,n=4,seed=1", // overflow rate
		"poisson:rate=NaN,n=4,seed=1",   // NaN rate
		"bursty:rate=1,n=4,seed=1,period=0,duty=2",
		"fixed:rate=1,n=4,seed=9", // key not allowed
		"poisson:rate=1,n=4,rate=2",
		"::,=,",
		"poisson:rate=+Inf,n=1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseArrivalSpec(in)
		if err != nil {
			return // rejected input: the only other acceptable outcome
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("parsed spec fails Validate: %q -> %+v: %v", in, s, err)
		}
		rt, err := ParseArrivalSpec(s.String())
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %q -> %q: %v", in, s.String(), err)
		}
		if rt != s {
			t.Fatalf("round trip diverged: %q -> %+v -> %+v", in, s, rt)
		}
		// Cap the schedule length so the fuzzer's throughput stays high;
		// the generator's per-step math is independent of N.
		capped := s
		if capped.N > 4096 {
			capped.N = 4096
		}
		times, err := capped.Times()
		if err != nil {
			t.Fatalf("valid spec failed to schedule: %q: %v", in, err)
		}
		if len(times) != capped.N {
			t.Fatalf("schedule length %d, want %d", len(times), capped.N)
		}
		for i, ts := range times {
			if ts > MaxScheduleCycles {
				t.Fatalf("timestamp %d exceeds ceiling: %d", i, ts)
			}
			if i > 0 && ts < times[i-1] {
				t.Fatalf("non-monotone schedule at %d: %d < %d", i, ts, times[i-1])
			}
		}
	})
}
